module SM = Swapdev.Swap_manager
module D = Swapdev.Device

let make () =
  let dev = Swapdev.Zram.create ~rng:(Engine.Rng.create 1) () in
  SM.create ~device:dev ~seed:9

let test_out_in_release () =
  let m = make () in
  let slot, c = SM.swap_out m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:5 in
  Alcotest.(check bool) "write completion in future" true (c.D.finish_ns > 0);
  Alcotest.(check bool) "slot in use" true (SM.slot_in_use m slot);
  Alcotest.(check int) "used" 1 (SM.used_slots m);
  (* swap_in keeps the slot (swap cache) *)
  let _c2 = SM.swap_in m ~now:100 ~slot in
  Alcotest.(check bool) "still in use" true (SM.slot_in_use m slot);
  Alcotest.(check int) "ins" 1 (SM.swap_ins m);
  SM.release m ~slot;
  Alcotest.(check bool) "released" false (SM.slot_in_use m slot);
  Alcotest.(check int) "used back to zero" 0 (SM.used_slots m)

let test_slot_reuse () =
  let m = make () in
  let s1, _ = SM.swap_out m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:1 in
  SM.release m ~slot:s1;
  let s2, _ = SM.swap_out m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:2 in
  Alcotest.(check int) "freed slot reused" s1 s2

let test_bad_slot_ops () =
  let m = make () in
  Alcotest.check_raises "swap_in bad slot"
    (Invalid_argument "Swap_manager.swap_in: slot not in use") (fun () ->
      ignore (SM.swap_in m ~now:0 ~slot:3));
  Alcotest.check_raises "release bad slot"
    (Invalid_argument "Swap_manager.release: slot not in use") (fun () ->
      SM.release m ~slot:3)

let test_peak_tracking () =
  let m = make () in
  let slots =
    List.init 5 (fun i ->
        fst (SM.swap_out m ~now:0 ~klass:Swapdev.Compress.Kv_item ~page_key:i))
  in
  List.iter (fun slot -> SM.release m ~slot) slots;
  Alcotest.(check int) "peak" 5 (SM.peak_slots m);
  Alcotest.(check int) "now zero" 0 (SM.used_slots m)

let test_compressed_accounting () =
  let m = make () in
  let slot, _ = SM.swap_out m ~now:0 ~klass:Swapdev.Compress.Columnar ~page_key:7 in
  let bytes = SM.compressed_bytes m in
  Alcotest.(check bool) "positive and under a page" true (bytes > 0.0 && bytes < 4096.0);
  SM.release m ~slot;
  Alcotest.(check (float 1e-6)) "empty pool" 0.0 (SM.compressed_bytes m)

let test_many_slots_grow () =
  let m = make () in
  for i = 0 to 4999 do
    ignore (SM.swap_out m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:i)
  done;
  Alcotest.(check int) "all live" 5000 (SM.used_slots m);
  Alcotest.(check int) "outs counted" 5000 (SM.swap_outs m)

let prop_used_never_negative =
  QCheck.Test.make ~name:"slot accounting stays consistent" ~count:100
    QCheck.(list bool)
    (fun ops ->
      let m = make () in
      let live = ref [] in
      List.iter
        (fun out ->
          if out then
            live := fst (SM.swap_out m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:0) :: !live
          else
            match !live with
            | slot :: rest ->
              SM.release m ~slot;
              live := rest
            | [] -> ())
        ops;
      SM.used_slots m = List.length !live)

let () =
  Alcotest.run "swap_manager"
    [
      ( "unit",
        [
          Alcotest.test_case "out/in/release" `Quick test_out_in_release;
          Alcotest.test_case "slot reuse" `Quick test_slot_reuse;
          Alcotest.test_case "bad slot ops" `Quick test_bad_slot_ops;
          Alcotest.test_case "peak tracking" `Quick test_peak_tracking;
          Alcotest.test_case "compressed accounting" `Quick test_compressed_accounting;
          Alcotest.test_case "many slots" `Quick test_many_slots_grow;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_used_never_negative ]);
    ]
