module B = Policy.Belady

let test_classic_example () =
  (* A textbook OPT example: trace 1 2 3 4 1 2 5 1 2 3 4 5, capacity 3 ->
     7 faults for OPT. *)
  let trace = [| 1; 2; 3; 4; 1; 2; 5; 1; 2; 3; 4; 5 |] in
  let r = B.simulate ~capacity:3 ~trace in
  Alcotest.(check int) "OPT faults" 7 r.B.faults;
  Alcotest.(check int) "cold faults" 5 r.B.cold_faults;
  Alcotest.(check int) "accesses" 12 r.B.accesses

let test_belady_anomaly_immune () =
  (* FIFO shows Belady's anomaly on this trace; OPT must not. *)
  let trace = [| 1; 2; 3; 4; 1; 2; 5; 1; 2; 3; 4; 5 |] in
  let f3 = (B.simulate ~capacity:3 ~trace).B.faults in
  let f4 = (B.simulate ~capacity:4 ~trace).B.faults in
  Alcotest.(check bool) "monotone in capacity" true (f4 <= f3);
  (* And FIFO actually exhibits the anomaly here (9 -> 10). *)
  let fifo3 = (B.fifo_simulate ~capacity:3 ~trace).B.faults in
  let fifo4 = (B.fifo_simulate ~capacity:4 ~trace).B.faults in
  Alcotest.(check int) "fifo cap 3" 9 fifo3;
  Alcotest.(check int) "fifo cap 4" 10 fifo4

let test_lru_simulate () =
  let trace = [| 1; 2; 3; 1; 4 |] in
  (* capacity 3: faults 1,2,3 cold; hit 1; fault 4 evicting LRU(2). *)
  let r = B.lru_simulate ~capacity:3 ~trace in
  Alcotest.(check int) "faults" 4 r.B.faults

let test_sequential_flood () =
  (* Cyclic trace longer than capacity: LRU faults on everything, OPT
     does much better. *)
  let n = 10 in
  let trace = Array.init 50 (fun i -> i mod n) in
  let opt = (B.simulate ~capacity:5 ~trace).B.faults in
  let lru = (B.lru_simulate ~capacity:5 ~trace).B.faults in
  Alcotest.(check int) "LRU pathological" 50 lru;
  Alcotest.(check bool) (Printf.sprintf "OPT %d much better" opt) true (opt <= 32)

let test_capacity_one () =
  let trace = [| 1; 1; 2; 2; 1 |] in
  let r = B.simulate ~capacity:1 ~trace in
  Alcotest.(check int) "faults" 3 r.B.faults

let test_infinite_capacity () =
  let trace = Array.init 100 (fun i -> i mod 7) in
  let r = B.simulate ~capacity:1000 ~trace in
  Alcotest.(check int) "only cold faults" 7 r.B.faults

let test_validation () =
  Alcotest.check_raises "capacity" (Invalid_argument "Belady.simulate: capacity must be positive")
    (fun () -> ignore (B.simulate ~capacity:0 ~trace:[| 1 |]))

let prop_opt_lower_bounds_lru_and_fifo =
  QCheck.Test.make ~name:"OPT <= LRU and OPT <= FIFO" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(1 -- 200) (int_bound 20)))
    (fun (capacity, trace) ->
      let trace = Array.of_list trace in
      let opt = (B.simulate ~capacity ~trace).B.faults in
      let lru = (B.lru_simulate ~capacity ~trace).B.faults in
      let fifo = (B.fifo_simulate ~capacity ~trace).B.faults in
      opt <= lru && opt <= fifo)

let prop_cold_faults_are_distinct_pages =
  QCheck.Test.make ~name:"cold faults = distinct pages" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 30))
    (fun trace ->
      let trace = Array.of_list trace in
      let distinct = Hashtbl.create 16 in
      Array.iter (fun p -> Hashtbl.replace distinct p ()) trace;
      (B.simulate ~capacity:4 ~trace).B.cold_faults = Hashtbl.length distinct)

let () =
  Alcotest.run "belady"
    [
      ( "unit",
        [
          Alcotest.test_case "classic example" `Quick test_classic_example;
          Alcotest.test_case "anomaly immunity" `Quick test_belady_anomaly_immune;
          Alcotest.test_case "lru simulate" `Quick test_lru_simulate;
          Alcotest.test_case "sequential flood" `Quick test_sequential_flood;
          Alcotest.test_case "capacity one" `Quick test_capacity_one;
          Alcotest.test_case "infinite capacity" `Quick test_infinite_capacity;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_opt_lower_bounds_lru_and_fifo; prop_cold_faults_are_distinct_pages ] );
    ]
