module R = Structures.Ring

let test_push_within_capacity () =
  let r = R.create ~capacity:4 ~dummy:0 in
  R.push r 1;
  R.push r 2;
  Alcotest.(check int) "length" 2 (R.length r);
  Alcotest.(check (option int)) "oldest" (Some 1) (R.oldest r);
  Alcotest.(check (option int)) "newest" (Some 2) (R.newest r)

let test_eviction () =
  let r = R.create ~capacity:3 ~dummy:0 in
  List.iter (R.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "capped" 3 (R.length r);
  Alcotest.(check (list int)) "window" [ 3; 4; 5 ] (R.to_list r)

let test_get_bounds () =
  let r = R.create ~capacity:2 ~dummy:0 in
  R.push r 9;
  Alcotest.(check int) "get 0" 9 (R.get r 0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Ring.get: index out of range") (fun () -> ignore (R.get r 1))

let test_clear () =
  let r = R.create ~capacity:2 ~dummy:0 in
  R.push r 1;
  R.clear r;
  Alcotest.(check int) "empty" 0 (R.length r);
  R.push r 5;
  Alcotest.(check (list int)) "usable" [ 5 ] (R.to_list r)

let test_fold () =
  let r = R.create ~capacity:3 ~dummy:0 in
  List.iter (R.push r) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "sum of window" 9 (R.fold ( + ) 0 r)

let prop_window_is_suffix =
  QCheck.Test.make ~name:"ring holds the last capacity elements" ~count:200
    QCheck.(pair (int_range 1 8) (list small_int))
    (fun (cap, xs) ->
      let r = R.create ~capacity:cap ~dummy:0 in
      List.iter (R.push r) xs;
      let expected =
        let n = List.length xs in
        List.filteri (fun i _ -> i >= n - cap) xs
      in
      R.to_list r = expected)

let () =
  Alcotest.run "ring"
    [
      ( "unit",
        [
          Alcotest.test_case "push within capacity" `Quick test_push_within_capacity;
          Alcotest.test_case "eviction" `Quick test_eviction;
          Alcotest.test_case "get bounds" `Quick test_get_bounds;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "fold" `Quick test_fold;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_window_is_suffix ]);
    ]
