module S = Workload.Script
module C = Workload.Chunk
module T = Workload.Trace

let test_script_replay () =
  let steps =
    [|
      [| C.Chunk (C.chunk (C.Single 1)); C.Barrier |];
      [| C.Barrier; C.Chunk (C.chunk (C.Single 2)) |];
    |]
  in
  let s = S.create steps in
  Alcotest.(check int) "threads" 2 (S.threads s);
  Alcotest.(check int) "remaining" 2 (S.remaining s ~tid:0);
  (match S.next s ~tid:0 with
  | C.Chunk c -> Alcotest.(check int) "first step" 1 (C.page_count c.C.pages)
  | _ -> Alcotest.fail "expected chunk");
  Alcotest.(check bool) "then barrier" true (S.next s ~tid:0 = C.Barrier);
  Alcotest.(check bool) "then finished" true (S.next s ~tid:0 = C.Finished);
  Alcotest.(check bool) "finished stays finished" true (S.next s ~tid:0 = C.Finished);
  Alcotest.(check int) "thread 1 untouched" 2 (S.remaining s ~tid:1)

let test_script_bad_tid () =
  let s = S.create [| [||] |] in
  Alcotest.check_raises "bad tid" (Invalid_argument "Script.next: bad thread id")
    (fun () -> ignore (S.next s ~tid:1))

let test_chunk_helpers () =
  let r = C.Range { start = 10; len = 4; stride = 2 } in
  Alcotest.(check int) "range count" 4 (C.page_count r);
  let acc = ref [] in
  C.iter_pages (fun p -> acc := p :: !acc) r;
  Alcotest.(check (list int)) "stride expansion" [ 16; 14; 12; 10 ] !acc;
  Alcotest.(check int) "single count" 1 (C.page_count (C.Single 5));
  Alcotest.(check int) "pages count" 3 (C.page_count (C.Pages [| 1; 2; 3 |]))

let test_chunk_defaults () =
  let c = C.chunk (C.Single 0) in
  Alcotest.(check bool) "read by default" false c.C.write;
  Alcotest.(check int) "not a request" (-1) c.C.latency_class;
  Alcotest.(check int) "no read prefix" 0 c.C.read_prefix

let test_trace_of_page_lists () =
  let w = T.of_page_lists ~footprint:100 [ [| 1; 2 |]; [| 3 |] ] in
  Alcotest.(check int) "one thread" 1 (T.threads w);
  Alcotest.(check int) "footprint" 100 (T.footprint_pages w);
  (match T.next w ~tid:0 with
  | C.Chunk c -> Alcotest.(check int) "first chunk" 2 (C.page_count c.C.pages)
  | _ -> Alcotest.fail "expected chunk");
  (match T.next w ~tid:0 with
  | C.Chunk c -> Alcotest.(check int) "second chunk" 1 (C.page_count c.C.pages)
  | _ -> Alcotest.fail "expected chunk");
  Alcotest.(check bool) "finished" true (T.next w ~tid:0 = C.Finished)

let test_trace_custom_config () =
  let w =
    T.create
      {
        T.steps = [| [| C.Barrier |]; [| C.Barrier |] |];
        footprint = 10;
        klass = (fun _ -> Swapdev.Compress.Random);
        file_backed_pages = (fun p -> p = 3);
      }
  in
  Alcotest.(check int) "threads" 2 (T.threads w);
  Alcotest.(check bool) "klass" true (T.page_klass w 0 = Swapdev.Compress.Random);
  Alcotest.(check bool) "file_backed" true (T.file_backed w 3);
  Alcotest.(check bool) "not file_backed" false (T.file_backed w 4)

let test_packed_interface () =
  let w = T.of_page_lists ~footprint:10 [ [| 1 |] ] in
  let packed = C.Packed ((module T), w) in
  Alcotest.(check string) "name" "trace" (C.packed_name packed);
  Alcotest.(check int) "threads" 1 (C.packed_threads packed);
  Alcotest.(check int) "footprint" 10 (C.packed_footprint packed)

let () =
  Alcotest.run "script_trace"
    [
      ( "unit",
        [
          Alcotest.test_case "script replay" `Quick test_script_replay;
          Alcotest.test_case "script bad tid" `Quick test_script_bad_tid;
          Alcotest.test_case "chunk helpers" `Quick test_chunk_helpers;
          Alcotest.test_case "chunk defaults" `Quick test_chunk_defaults;
          Alcotest.test_case "trace of page lists" `Quick test_trace_of_page_lists;
          Alcotest.test_case "trace custom config" `Quick test_trace_custom_config;
          Alcotest.test_case "packed interface" `Quick test_packed_interface;
        ] );
    ]
