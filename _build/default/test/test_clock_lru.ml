module CL = Policy.Clock_lru
module PI = Policy.Policy_intf

let make ?(frames = 16) ?(pages = 64) () =
  let world = Testsupport.Harness.make_world ~frames ~pages () in
  let policy = CL.create_with world.Testsupport.Harness.env in
  let packed = PI.Packed ((module CL), policy) in
  (world, policy, packed)

let test_new_pages_active () =
  let world, policy, packed = make () in
  ignore (Testsupport.Harness.map_page world packed 0);
  ignore (Testsupport.Harness.map_page world packed 1);
  Alcotest.(check int) "active" 2 (CL.active_size policy);
  Alcotest.(check int) "inactive" 0 (CL.inactive_size policy);
  CL.check_invariants policy

let test_speculative_pages_inactive () =
  let world, policy, packed = make () in
  ignore (Testsupport.Harness.map_page world packed ~speculative:true 0);
  Alcotest.(check int) "inactive" 1 (CL.inactive_size policy)

let test_direct_reclaim_frees () =
  let world, _policy, packed = make ~frames:8 ~pages:32 () in
  for vpn = 0 to 7 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  (* Memory is full; the next map must reclaim. *)
  ignore (Testsupport.Harness.map_page world packed 20);
  Alcotest.(check int) "one page was evicted" 1
    (List.length world.Testsupport.Harness.reclaimed);
  Alcotest.(check int) "residency stays at capacity" 8
    (Testsupport.Harness.resident world)

let test_second_chance () =
  let world, policy, packed = make ~frames:4 ~pages:32 () in
  for vpn = 0 to 3 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  (* Map-in set accessed bits for all; clear them except page 0's, which
     we re-touch so its bit is freshly set. *)
  for vpn = 1 to 3 do
    Mem.Page_table.set world.Testsupport.Harness.pt vpn
      (Mem.Pte.clear_accessed (Mem.Page_table.get world.Testsupport.Harness.pt vpn))
  done;
  let stats = CL.direct_reclaim policy ~want:2 in
  Alcotest.(check bool) "freed something" true (stats.PI.freed >= 2);
  (* Page 0 survived thanks to its accessed bit. *)
  Alcotest.(check bool) "page 0 resident" true
    (Mem.Pte.present (Mem.Page_table.get world.Testsupport.Harness.pt 0));
  CL.check_invariants policy

let test_reclaim_under_all_accessed () =
  (* Priority escalation must free pages even when everything looks hot. *)
  let world, policy, packed = make ~frames:4 ~pages:16 () in
  for vpn = 0 to 3 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  List.iter (fun vpn -> Testsupport.Harness.touch world packed vpn) [ 0; 1; 2; 3 ];
  let stats = CL.direct_reclaim policy ~want:1 in
  Alcotest.(check bool) "freed despite accessed bits" true (stats.PI.freed >= 1)

let test_rmap_cost_charged () =
  let world, policy, packed = make ~frames:4 ~pages:16 () in
  for vpn = 0 to 3 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  let stats = CL.direct_reclaim policy ~want:1 in
  Alcotest.(check bool) "rmap walks counted" true (stats.PI.rmap_walks > 0);
  Alcotest.(check bool) "cpu charged covers rmap" true
    (stats.PI.cpu_ns
    >= stats.PI.rmap_walks * Mem.Costs.default.Mem.Costs.rmap_walk_ns)

let test_kswapd_balances_and_sleeps () =
  let world, policy, packed = make ~frames:32 ~pages:64 () in
  for vpn = 0 to 31 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  Testsupport.Harness.run_kthreads world packed;
  (* Free memory should be at or above the high watermark afterwards. *)
  Alcotest.(check bool) "kswapd reclaimed to high watermark" true
    (Mem.Phys_mem.free_count world.Testsupport.Harness.mem
    >= Mem.Phys_mem.high_watermark world.Testsupport.Harness.mem);
  CL.check_invariants policy

let test_eviction_order_lru_ish () =
  let world, _policy, packed = make ~frames:8 ~pages:64 () in
  for vpn = 0 to 7 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  (* Clear all accessed bits, then touch 4..7 making 0..3 the cold set. *)
  for vpn = 0 to 7 do
    Mem.Page_table.set world.Testsupport.Harness.pt vpn
      (Mem.Pte.clear_accessed (Mem.Page_table.get world.Testsupport.Harness.pt vpn))
  done;
  for vpn = 4 to 7 do
    Testsupport.Harness.touch world packed vpn
  done;
  for vpn = 8 to 11 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  (* The evicted pages should be drawn from the cold set. *)
  List.iter
    (fun vpn ->
      Alcotest.(check bool) (Printf.sprintf "vpn %d was cold" vpn) true (vpn < 4))
    world.Testsupport.Harness.reclaimed_vpns

let test_stats_exposed () =
  let world, policy, packed = make () in
  ignore (Testsupport.Harness.map_page world packed 0);
  let stats = CL.stats policy in
  Alcotest.(check bool) "has active counter" true (List.mem_assoc "active" stats);
  Alcotest.(check bool) "has evictions counter" true (List.mem_assoc "evictions" stats)

let () =
  Alcotest.run "clock_lru"
    [
      ( "unit",
        [
          Alcotest.test_case "new pages active" `Quick test_new_pages_active;
          Alcotest.test_case "speculative inactive" `Quick test_speculative_pages_inactive;
          Alcotest.test_case "direct reclaim frees" `Quick test_direct_reclaim_frees;
          Alcotest.test_case "second chance" `Quick test_second_chance;
          Alcotest.test_case "escalation" `Quick test_reclaim_under_all_accessed;
          Alcotest.test_case "rmap cost charged" `Quick test_rmap_cost_charged;
          Alcotest.test_case "kswapd balances" `Quick test_kswapd_balances_and_sleeps;
          Alcotest.test_case "evicts cold set" `Quick test_eviction_order_lru_ish;
          Alcotest.test_case "stats exposed" `Quick test_stats_exposed;
        ] );
    ]
