module R = Repro_core.Runner

(* These tests force the fast profile via the environment to stay quick;
   the profile is memoized, so set it before anything reads it. *)
let () =
  Unix.putenv "REPRO_FAST" "1";
  Unix.putenv "REPRO_TRIALS" "2";
  Unix.putenv "REPRO_YCSB_TRIALS" "1"

let test_profile_env () =
  let p = R.profile () in
  Alcotest.(check bool) "fast" true p.R.fast;
  Alcotest.(check int) "trials" 2 p.R.trials;
  Alcotest.(check int) "ycsb trials" 1 p.R.ycsb_trials;
  Alcotest.(check int) "trials_for tpch" 2 (R.trials_for R.Tpch);
  Alcotest.(check int) "trials_for ycsb" 1 (R.trials_for (R.Ycsb Workload.Ycsb.A))

let test_names () =
  Alcotest.(check string) "tpch" "tpch" (R.workload_kind_name R.Tpch);
  Alcotest.(check string) "ycsb" "ycsb-b" (R.workload_kind_name (R.Ycsb Workload.Ycsb.B));
  Alcotest.(check string) "swap" "zram" (R.swap_name R.Zram);
  Alcotest.(check int) "five workloads" 5 (List.length R.all_workloads)

let test_workload_seeds_paired () =
  (* Same (kind, trial) must build identical workloads regardless of
     policy: check footprints and first steps match. *)
  let w1 = R.make_workload R.Tpch ~trial:3 in
  let w2 = R.make_workload R.Tpch ~trial:3 in
  Alcotest.(check int) "same footprint" (Workload.Chunk.packed_footprint w1)
    (Workload.Chunk.packed_footprint w2);
  let s1 = Workload.Chunk.packed_next w1 ~tid:0 in
  let s2 = Workload.Chunk.packed_next w2 ~tid:0 in
  Alcotest.(check bool) "same first step" true (s1 = s2)

let test_run_exp_cached () =
  let e = { R.workload = R.Tpch; policy = Policy.Registry.Clock; ratio = 0.5;
            swap = R.Ssd; trial = 0 } in
  let r1 = R.run_exp e in
  let r2 = R.run_exp e in
  Alcotest.(check bool) "cache returns same result" true (r1 == r2);
  R.clear_cache ();
  let r3 = R.run_exp e in
  Alcotest.(check bool) "recomputed deterministically" true
    (r3.Repro_core.Machine.runtime_ns = r1.Repro_core.Machine.runtime_ns)

let test_run_cell () =
  let results =
    R.run_cell ~workload:R.Tpch ~policy:Policy.Registry.Clock ~ratio:0.5 ~swap:R.Ssd
  in
  Alcotest.(check int) "trials per profile" 2 (List.length results);
  let rts = R.runtimes_s results in
  Alcotest.(check bool) "runtimes positive" true (Array.for_all (fun x -> x > 0.0) rts);
  Alcotest.(check bool) "mean positive" true (R.mean_runtime_s results > 0.0);
  Alcotest.(check bool) "faults positive" true (R.mean_faults results > 0.0)

let test_capacity_scales_with_ratio () =
  let small =
    R.run_exp
      { R.workload = R.Tpch; policy = Policy.Registry.Clock; ratio = 0.5;
        swap = R.Ssd; trial = 0 }
  in
  let large =
    R.run_exp
      { R.workload = R.Tpch; policy = Policy.Registry.Clock; ratio = 0.9;
        swap = R.Ssd; trial = 0 }
  in
  Alcotest.(check bool) "more memory, fewer faults" true
    (large.Repro_core.Machine.major_faults < small.Repro_core.Machine.major_faults)

let test_pooled_latencies () =
  let results =
    R.run_cell ~workload:(R.Ycsb Workload.Ycsb.A) ~policy:Policy.Registry.Clock
      ~ratio:0.5 ~swap:R.Zram
  in
  let reads = R.pooled_read_latencies results in
  let writes = R.pooled_write_latencies results in
  Alcotest.(check bool) "reads recorded" true (Array.length reads > 1000);
  Alcotest.(check bool) "writes recorded" true (Array.length writes > 100);
  Alcotest.(check bool) "mean read positive" true (R.mean_read_latency_ns results > 0.0)

let () =
  Alcotest.run "runner"
    [
      ( "unit",
        [
          Alcotest.test_case "profile env" `Quick test_profile_env;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "paired seeds" `Quick test_workload_seeds_paired;
          Alcotest.test_case "cache" `Quick test_run_exp_cached;
          Alcotest.test_case "run_cell" `Quick test_run_cell;
          Alcotest.test_case "ratio scaling" `Quick test_capacity_scales_with_ratio;
          Alcotest.test_case "pooled latencies" `Quick test_pooled_latencies;
        ] );
    ]
