module T = Stats.Ttest

let test_student_cdf_known_values () =
  (* t=0 -> 0.5 for any df *)
  Alcotest.(check (float 1e-6)) "cdf(0)" 0.5 (T.student_cdf 0.0 ~df:5.0);
  (* For df=1 (Cauchy), cdf(1) = 0.75 *)
  Alcotest.(check (float 1e-4)) "cauchy cdf(1)" 0.75 (T.student_cdf 1.0 ~df:1.0);
  (* Large df approximates the normal: cdf(1.96) ~ 0.975 *)
  Alcotest.(check (float 2e-3)) "normal limit" 0.975 (T.student_cdf 1.96 ~df:1000.0);
  (* Symmetry *)
  let p = T.student_cdf 1.3 ~df:7.0 in
  Alcotest.(check (float 1e-9)) "symmetry" (1.0 -. p) (T.student_cdf (-1.3) ~df:7.0)

let test_identical_samples_not_significant () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  let r = T.welch a a in
  Alcotest.(check (float 1e-9)) "t" 0.0 r.T.t_stat;
  Alcotest.(check (float 1e-9)) "p" 1.0 r.T.p_value

let test_clearly_different () =
  let rng = Engine.Rng.create 3 in
  let a = Array.init 30 (fun _ -> Engine.Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let b = Array.init 30 (fun _ -> Engine.Rng.gaussian rng ~mu:5.0 ~sigma:1.0) in
  let r = T.welch a b in
  Alcotest.(check bool) "significant" true (r.T.p_value < 0.001);
  Alcotest.(check bool) "direction" true (r.T.t_stat < 0.0);
  Alcotest.(check bool) "helper agrees" true (T.significant a b)

let test_same_distribution_usually_insignificant () =
  (* Not flaky: fixed seed. *)
  let rng = Engine.Rng.create 11 in
  let a = Array.init 25 (fun _ -> Engine.Rng.gaussian rng ~mu:10.0 ~sigma:2.0) in
  let b = Array.init 25 (fun _ -> Engine.Rng.gaussian rng ~mu:10.0 ~sigma:2.0) in
  let r = T.welch a b in
  Alcotest.(check bool) (Printf.sprintf "p=%.3f > 0.01" r.T.p_value) true
    (r.T.p_value > 0.01)

let test_small_shift_needs_power () =
  let rng = Engine.Rng.create 13 in
  let a = Array.init 200 (fun _ -> Engine.Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let b = Array.init 200 (fun _ -> Engine.Rng.gaussian rng ~mu:0.5 ~sigma:1.0) in
  Alcotest.(check bool) "detected with n=200" true (T.significant ~alpha:0.05 a b)

let test_degenerate_zero_variance () =
  let r = T.welch [| 2.0; 2.0 |] [| 3.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "p = 0 for distinct constants" 0.0 r.T.p_value;
  let r2 = T.welch [| 2.0; 2.0 |] [| 2.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "p = 1 for equal constants" 1.0 r2.T.p_value

let test_too_small_rejected () =
  Alcotest.check_raises "n < 2"
    (Invalid_argument "Ttest.welch: need at least 2 points per sample") (fun () ->
      ignore (T.welch [| 1.0 |] [| 1.0; 2.0 |]))

let prop_p_value_valid =
  QCheck.Test.make ~name:"p-value in [0,1] and symmetric" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(2 -- 20) (float_range 0.0 10.0))
        (list_of_size Gen.(2 -- 20) (float_range 0.0 10.0)))
    (fun (xs, ys) ->
      let a = Array.of_list xs and b = Array.of_list ys in
      let r1 = T.welch a b and r2 = T.welch b a in
      r1.T.p_value >= 0.0 && r1.T.p_value <= 1.0
      && Float.abs (r1.T.p_value -. r2.T.p_value) < 1e-9)

let () =
  Alcotest.run "ttest"
    [
      ( "unit",
        [
          Alcotest.test_case "student cdf" `Quick test_student_cdf_known_values;
          Alcotest.test_case "identical samples" `Quick test_identical_samples_not_significant;
          Alcotest.test_case "clearly different" `Quick test_clearly_different;
          Alcotest.test_case "same distribution" `Quick test_same_distribution_usually_insignificant;
          Alcotest.test_case "small shift, large n" `Quick test_small_shift_needs_power;
          Alcotest.test_case "degenerate variance" `Quick test_degenerate_zero_variance;
          Alcotest.test_case "too small rejected" `Quick test_too_small_rejected;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_p_value_valid ]);
    ]
