module B = Structures.Bloom

let test_create () =
  let b = B.create ~bits:1000 ~seed:1 () in
  Alcotest.(check int) "rounded to pow2" 1024 (B.bits b);
  Alcotest.(check int) "hashes" 2 (B.hashes b);
  Alcotest.(check int) "population" 0 (B.population b)

let test_membership () =
  let b = B.create ~bits:4096 ~seed:7 () in
  for k = 0 to 99 do
    B.add b (k * 3)
  done;
  for k = 0 to 99 do
    Alcotest.(check bool)
      (Printf.sprintf "member %d" (k * 3))
      true
      (B.mem b (k * 3))
  done

let test_clear () =
  let b = B.create ~bits:1024 ~seed:7 () in
  B.add b 42;
  B.clear b;
  Alcotest.(check int) "population" 0 (B.population b);
  Alcotest.(check bool) "cleared" false (B.mem b 42)

let test_false_positive_rate () =
  (* With 128 keys in 4096 bits the FP rate should be well under 10%. *)
  let b = B.create ~bits:4096 ~seed:11 () in
  for k = 0 to 127 do
    B.add b k
  done;
  let fp = ref 0 in
  for k = 1000 to 1999 do
    if B.mem b k then incr fp
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fp rate %d/1000 < 100" !fp)
    true (!fp < 100);
  Alcotest.(check bool) "estimate sane" true (B.false_positive_estimate b < 0.2)

let test_fill_ratio_monotone () =
  let b = B.create ~bits:1024 ~seed:3 () in
  let prev = ref 0.0 in
  for k = 0 to 50 do
    B.add b (k * 17);
    let r = B.fill_ratio b in
    Alcotest.(check bool) "monotone" true (r >= !prev);
    prev := r
  done

let test_seeds_differ () =
  let b1 = B.create ~bits:1024 ~seed:1 () in
  let b2 = B.create ~bits:1024 ~seed:2 () in
  (* Same keys give different bit patterns under different seeds: find a
     probe key that distinguishes them. *)
  for k = 0 to 9 do
    B.add b1 k;
    B.add b2 k
  done;
  let differs = ref false in
  for k = 100 to 4000 do
    if B.mem b1 k <> B.mem b2 k then differs := true
  done;
  Alcotest.(check bool) "seeded differently" true !differs

let prop_no_false_negatives =
  QCheck.Test.make ~name:"no false negatives" ~count:200
    QCheck.(pair small_int (list small_nat))
    (fun (seed, keys) ->
      let b = B.create ~bits:512 ~seed () in
      List.iter (B.add b) keys;
      List.for_all (B.mem b) keys)

let prop_population_bounded =
  QCheck.Test.make ~name:"population <= hashes * adds and <= bits" ~count:200
    QCheck.(list small_nat)
    (fun keys ->
      let b = B.create ~bits:256 ~seed:5 () in
      List.iter (B.add b) keys;
      B.population b <= 2 * List.length keys && B.population b <= B.bits b)

let () =
  Alcotest.run "bloom"
    [
      ( "unit",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "membership" `Quick test_membership;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "false positive rate" `Quick test_false_positive_rate;
          Alcotest.test_case "fill ratio monotone" `Quick test_fill_ratio_monotone;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_no_false_negatives; prop_population_bounded ] );
    ]
