module T = Workload.Tpch
module C = Workload.Chunk

let small_config =
  {
    T.default_config with
    T.table_pages = 800;
    shuffle_pages = 500;
    hash_pages = 200;
    dimension_pages = 150;
    threads = 4;
    queries = 3;
  }

let make seed = T.create ~config:small_config ~rng:(Engine.Rng.create seed) ()

let test_geometry () =
  let w = make 1 in
  Alcotest.(check int) "threads" 4 (T.threads w);
  Alcotest.(check int) "footprint" 1500 (T.footprint_pages w);
  Alcotest.(check int) "shuffle base" 800 (T.shuffle_base w);
  Alcotest.(check int) "hash base" 1300 (T.hash_base w)

let count_steps w tid =
  let chunks = ref 0 and barriers = ref 0 in
  let rec go () =
    match T.next w ~tid with
    | C.Finished -> ()
    | C.Barrier ->
      incr barriers;
      go ()
    | C.Chunk _ ->
      incr chunks;
      go ()
  in
  go ();
  (!chunks, !barriers)

let test_stage_barriers () =
  let w = make 2 in
  let chunks0, barriers0 = count_steps w 0 in
  let chunks1, barriers1 = count_steps w 1 in
  (* All threads see the same barrier count (stages are global). *)
  Alcotest.(check int) "same barrier count" barriers0 barriers1;
  Alcotest.(check bool) "2-4 stages per query" true
    (barriers0 >= 2 * small_config.T.queries && barriers0 <= 4 * small_config.T.queries);
  Alcotest.(check bool) "work is balanced" true
    (abs (chunks0 - chunks1) * 10 < max chunks0 chunks1 + 10)

let test_pages_in_footprint () =
  let w = make 3 in
  let fp = T.footprint_pages w in
  for tid = 0 to 3 do
    let rec go () =
      match T.next w ~tid with
      | C.Finished -> ()
      | C.Barrier -> go ()
      | C.Chunk c ->
        C.iter_pages
          (fun p -> if p < 0 || p >= fp then Alcotest.fail "page out of range")
          c.C.pages;
        go ()
    in
    go ()
  done

let test_touches_all_regions () =
  let w = make 4 in
  let table = ref 0 and shuffle = ref 0 and hash = ref 0 in
  let rec go () =
    match T.next w ~tid:0 with
    | C.Finished -> ()
    | C.Barrier -> go ()
    | C.Chunk c ->
      C.iter_pages
        (fun p ->
          if p < T.shuffle_base w then incr table
          else if p < T.hash_base w then incr shuffle
          else incr hash)
        c.C.pages;
      go ()
  in
  go ();
  Alcotest.(check bool) "table touched" true (!table > 0);
  Alcotest.(check bool) "shuffle touched" true (!shuffle > 0);
  Alcotest.(check bool) "hash touched" true (!hash > 0)

let test_shuffle_written_then_read () =
  let w = make 5 in
  let writes = ref 0 and reads = ref 0 in
  let rec go () =
    match T.next w ~tid:1 with
    | C.Finished -> ()
    | C.Barrier -> go ()
    | C.Chunk c ->
      C.iter_pages
        (fun p ->
          if p >= T.shuffle_base w && p < T.hash_base w then
            if c.C.write then incr writes else incr reads)
        c.C.pages;
      go ()
  in
  go ();
  Alcotest.(check bool) "shuffle written" true (!writes > 0);
  Alcotest.(check bool) "shuffle re-read" true (!reads > 0)

let test_seeds_vary_plans () =
  let total seed =
    let w = make seed in
    let acc = ref 0 in
    let rec go () =
      match T.next w ~tid:0 with
      | C.Finished -> ()
      | C.Barrier -> go ()
      | C.Chunk c ->
        acc := !acc + C.page_count c.C.pages;
        go ()
    in
    go ();
    !acc
  in
  Alcotest.(check bool) "window draws differ" true (total 10 <> total 11)

let test_klass () =
  let w = make 6 in
  Alcotest.(check bool) "table is columnar" true
    (T.page_klass w 0 = Swapdev.Compress.Columnar);
  Alcotest.(check bool) "hash is numeric" true
    (T.page_klass w (T.hash_base w) = Swapdev.Compress.Numeric)

let () =
  Alcotest.run "tpch"
    [
      ( "unit",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "stage barriers" `Quick test_stage_barriers;
          Alcotest.test_case "pages in footprint" `Quick test_pages_in_footprint;
          Alcotest.test_case "touches all regions" `Quick test_touches_all_regions;
          Alcotest.test_case "shuffle reuse" `Quick test_shuffle_written_then_read;
          Alcotest.test_case "seeds vary plans" `Quick test_seeds_vary_plans;
          Alcotest.test_case "compressibility classes" `Quick test_klass;
        ] );
    ]
