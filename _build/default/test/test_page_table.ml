module PT = Mem.Page_table

let test_geometry () =
  let pt = PT.create ~region_size:64 ~asid:3 ~pages:1000 () in
  Alcotest.(check int) "asid" 3 (PT.asid pt);
  Alcotest.(check int) "pages" 1000 (PT.pages pt);
  Alcotest.(check int) "region size" 64 (PT.region_size pt);
  Alcotest.(check int) "regions" 16 (PT.regions pt)

let test_get_set () =
  let pt = PT.create ~asid:0 ~pages:10 () in
  Alcotest.(check bool) "initially empty" true (PT.get pt 5 = Mem.Pte.empty);
  PT.set pt 5 (Mem.Pte.mapped ~pfn:2 ~file_backed:false);
  Alcotest.(check int) "set/get" 2 (Mem.Pte.pfn (PT.get pt 5));
  Alcotest.check_raises "out of range" (Invalid_argument "Page_table: vpn out of range")
    (fun () -> ignore (PT.get pt 10))

let test_region_of_and_bounds () =
  let pt = PT.create ~region_size:16 ~asid:0 ~pages:40 () in
  Alcotest.(check int) "region of 0" 0 (PT.region_of pt 0);
  Alcotest.(check int) "region of 16" 1 (PT.region_of pt 16);
  Alcotest.(check (pair int int)) "bounds 0" (0, 15) (PT.region_bounds pt 0);
  (* Last region is short. *)
  Alcotest.(check (pair int int)) "bounds last" (32, 39) (PT.region_bounds pt 2);
  Alcotest.check_raises "bad region" (Invalid_argument "Page_table.region_bounds")
    (fun () -> ignore (PT.region_bounds pt 3))

let test_resident () =
  let pt = PT.create ~asid:0 ~pages:20 () in
  Alcotest.(check int) "empty" 0 (PT.resident pt);
  PT.set pt 1 (Mem.Pte.mapped ~pfn:0 ~file_backed:false);
  PT.set pt 2 (Mem.Pte.mapped ~pfn:1 ~file_backed:false);
  PT.set pt 3 (Mem.Pte.to_swapped Mem.Pte.empty ~slot:7);
  Alcotest.(check int) "two resident" 2 (PT.resident pt)

let test_iter_region () =
  let pt = PT.create ~region_size:8 ~asid:0 ~pages:20 () in
  PT.set pt 9 (Mem.Pte.mapped ~pfn:1 ~file_backed:false);
  let seen = ref [] in
  PT.iter_region pt 1 (fun vpn pte -> if Mem.Pte.present pte then seen := vpn :: !seen);
  Alcotest.(check (list int)) "found the mapped page" [ 9 ] !seen;
  let count = ref 0 in
  PT.iter_region pt 2 (fun _ _ -> incr count);
  Alcotest.(check int) "short last region" 4 !count

let prop_region_partition =
  QCheck.Test.make ~name:"regions partition the vpn space" ~count:100
    QCheck.(pair (int_range 1 64) (int_range 1 500))
    (fun (region_size, pages) ->
      let pt = PT.create ~region_size ~asid:0 ~pages () in
      let covered = Array.make pages 0 in
      for r = 0 to PT.regions pt - 1 do
        PT.iter_region pt r (fun vpn _ -> covered.(vpn) <- covered.(vpn) + 1)
      done;
      Array.for_all (fun c -> c = 1) covered)

let () =
  Alcotest.run "page_table"
    [
      ( "unit",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "regions" `Quick test_region_of_and_bounds;
          Alcotest.test_case "resident" `Quick test_resident;
          Alcotest.test_case "iter_region" `Quick test_iter_region;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_region_partition ]);
    ]
