module M = Mem.Phys_mem

let test_alloc_free () =
  let m = M.create ~frames:4 () in
  Alcotest.(check int) "free" 4 (M.free_count m);
  let a = Option.get (M.alloc m) in
  let b = Option.get (M.alloc m) in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check int) "used" 2 (M.used_count m);
  M.free m a;
  Alcotest.(check int) "free again" 3 (M.free_count m);
  Alcotest.(check bool) "is_free" true (M.is_free m a);
  Alcotest.(check bool) "not free" false (M.is_free m b)

let test_exhaustion () =
  let m = M.create ~frames:2 () in
  ignore (M.alloc m);
  ignore (M.alloc m);
  Alcotest.(check (option int)) "exhausted" None (M.alloc m)

let test_double_free_rejected () =
  let m = M.create ~frames:2 () in
  let a = Option.get (M.alloc m) in
  M.free m a;
  Alcotest.check_raises "double free" (Invalid_argument "Phys_mem.free: double free")
    (fun () -> M.free m a)

let test_watermarks () =
  let m = M.create ~frames:100 ~low_watermark:10 ~high_watermark:20 () in
  Alcotest.(check int) "low" 10 (M.low_watermark m);
  Alcotest.(check int) "high" 20 (M.high_watermark m);
  Alcotest.(check bool) "above high initially" true (M.above_high m);
  let held = ref [] in
  for _ = 1 to 95 do
    held := Option.get (M.alloc m) :: !held
  done;
  Alcotest.(check bool) "below low at 5 free" true (M.below_low m);
  Alcotest.(check bool) "not above high" false (M.above_high m);
  List.iter (M.free m) !held;
  Alcotest.(check bool) "recovered" true (M.above_high m)

let test_default_watermarks_ordered () =
  let m = M.create ~frames:10_000 () in
  Alcotest.(check bool) "0 < low <= high" true
    (M.low_watermark m > 0 && M.low_watermark m <= M.high_watermark m)

let test_bad_watermarks () =
  Alcotest.check_raises "low > high" (Invalid_argument "Phys_mem.create: bad watermarks")
    (fun () -> ignore (M.create ~frames:10 ~low_watermark:5 ~high_watermark:2 ()))

let prop_conservation =
  QCheck.Test.make ~name:"free + used = total under random ops" ~count:200
    QCheck.(list bool)
    (fun ops ->
      let m = M.create ~frames:8 () in
      let held = ref [] in
      List.iter
        (fun alloc ->
          if alloc then (
            match M.alloc m with Some pfn -> held := pfn :: !held | None -> ())
          else
            match !held with
            | pfn :: rest ->
              M.free m pfn;
              held := rest
            | [] -> ())
        ops;
      M.free_count m + M.used_count m = M.frames m
      && M.used_count m = List.length !held)

let prop_alloc_unique =
  QCheck.Test.make ~name:"allocations are unique" ~count:100
    QCheck.(int_range 1 64)
    (fun n ->
      let m = M.create ~frames:n () in
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      for _ = 1 to n do
        match M.alloc m with
        | Some pfn ->
          if Hashtbl.mem seen pfn then ok := false;
          Hashtbl.add seen pfn ()
        | None -> ok := false
      done;
      !ok)

let () =
  Alcotest.run "phys_mem"
    [
      ( "unit",
        [
          Alcotest.test_case "alloc/free" `Quick test_alloc_free;
          Alcotest.test_case "exhaustion" `Quick test_exhaustion;
          Alcotest.test_case "double free" `Quick test_double_free_rejected;
          Alcotest.test_case "watermarks" `Quick test_watermarks;
          Alcotest.test_case "default watermarks" `Quick test_default_watermarks_ordered;
          Alcotest.test_case "bad watermarks" `Quick test_bad_watermarks;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_conservation; prop_alloc_unique ] );
    ]
