let test_empty () =
  let v = Structures.Vec.create ~dummy:0 () in
  Alcotest.(check int) "length" 0 (Structures.Vec.length v);
  Alcotest.(check bool) "is_empty" true (Structures.Vec.is_empty v);
  Alcotest.(check (option int)) "pop" None (Structures.Vec.pop v)

let test_push_get () =
  let v = Structures.Vec.create ~capacity:2 ~dummy:0 () in
  for i = 0 to 99 do
    Structures.Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Structures.Vec.length v);
  Alcotest.(check int) "get 0" 0 (Structures.Vec.get v 0);
  Alcotest.(check int) "get 99" 9801 (Structures.Vec.get v 99);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Structures.Vec.get v 100))

let test_set () =
  let v = Structures.Vec.of_array ~dummy:0 [| 1; 2; 3 |] in
  Structures.Vec.set v 1 42;
  Alcotest.(check int) "set" 42 (Structures.Vec.get v 1);
  Alcotest.check_raises "set out of bounds"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      Structures.Vec.set v 3 0)

let test_pop_clear () =
  let v = Structures.Vec.of_array ~dummy:0 [| 1; 2; 3 |] in
  Alcotest.(check (option int)) "pop" (Some 3) (Structures.Vec.pop v);
  Alcotest.(check int) "length after pop" 2 (Structures.Vec.length v);
  Structures.Vec.clear v;
  Alcotest.(check int) "length after clear" 0 (Structures.Vec.length v);
  Structures.Vec.push v 7;
  Alcotest.(check int) "usable after clear" 7 (Structures.Vec.get v 0)

let test_iter_fold () =
  let v = Structures.Vec.of_array ~dummy:0 [| 1; 2; 3; 4 |] in
  let sum = Structures.Vec.fold ( + ) 0 v in
  Alcotest.(check int) "fold" 10 sum;
  let acc = ref [] in
  Structures.Vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "iter order" [ 4; 3; 2; 1 ] !acc

let test_sort () =
  let v = Structures.Vec.of_array ~dummy:0 [| 3; 1; 2 |] in
  Structures.Vec.sort compare v;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3 |] (Structures.Vec.to_array v)

let prop_roundtrip =
  QCheck.Test.make ~name:"push-then-to_array roundtrips" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Structures.Vec.create ~dummy:0 () in
      List.iter (Structures.Vec.push v) xs;
      Structures.Vec.to_array v = Array.of_list xs)

let prop_pop_inverts_push =
  QCheck.Test.make ~name:"pop inverts push" ~count:200
    QCheck.(pair (list int) int)
    (fun (xs, x) ->
      let v = Structures.Vec.of_array ~dummy:0 (Array.of_list xs) in
      Structures.Vec.push v x;
      Structures.Vec.pop v = Some x
      && Structures.Vec.length v = List.length xs)

let () =
  Alcotest.run "vec"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "push/get" `Quick test_push_get;
          Alcotest.test_case "set" `Quick test_set;
          Alcotest.test_case "pop/clear" `Quick test_pop_clear;
          Alcotest.test_case "iter/fold" `Quick test_iter_fold;
          Alcotest.test_case "sort" `Quick test_sort;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_pop_inverts_push ]
      );
    ]
