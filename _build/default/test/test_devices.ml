module D = Swapdev.Device

let submit_read dev ~now = dev.D.submit ~now ~op:D.Read ~size_fraction:0.5

let test_ssd_service_time () =
  let dev = Swapdev.Ssd.create ~rng:(Engine.Rng.create 1) () in
  let c = submit_read dev ~now:0 in
  let base = Swapdev.Ssd.default_config.Swapdev.Ssd.read_ns in
  Alcotest.(check bool) "service near 7.5ms" true
    (c.D.finish_ns > base * 9 / 10 && c.D.finish_ns < base * 11 / 10);
  Alcotest.(check int) "reads counted" 1 (dev.D.reads ())

let test_ssd_queueing () =
  let config = { Swapdev.Ssd.default_config with Swapdev.Ssd.channels = 1; jitter = 0.0 } in
  let dev = Swapdev.Ssd.create ~config ~rng:(Engine.Rng.create 1) () in
  let c1 = submit_read dev ~now:0 in
  let c2 = submit_read dev ~now:0 in
  Alcotest.(check int) "second queues behind first"
    (2 * config.Swapdev.Ssd.read_ns) c2.D.finish_ns;
  Alcotest.(check int) "first on time" config.Swapdev.Ssd.read_ns c1.D.finish_ns

let test_ssd_parallel_channels () =
  let config = { Swapdev.Ssd.default_config with Swapdev.Ssd.channels = 4; jitter = 0.0 } in
  let dev = Swapdev.Ssd.create ~config ~rng:(Engine.Rng.create 1) () in
  let finishes = List.init 4 (fun _ -> (submit_read dev ~now:0).D.finish_ns) in
  List.iter
    (fun f -> Alcotest.(check int) "all run in parallel" config.Swapdev.Ssd.read_ns f)
    finishes

let test_ssd_idle_gap () =
  let config = { Swapdev.Ssd.default_config with Swapdev.Ssd.channels = 1; jitter = 0.0 } in
  let dev = Swapdev.Ssd.create ~config ~rng:(Engine.Rng.create 1) () in
  ignore (submit_read dev ~now:0);
  let c = submit_read dev ~now:100_000_000 in
  Alcotest.(check int) "no queueing after idle"
    (100_000_000 + config.Swapdev.Ssd.read_ns) c.D.finish_ns

let test_zram_much_faster () =
  let ssd = Swapdev.Ssd.create ~rng:(Engine.Rng.create 1) () in
  let zram = Swapdev.Zram.create ~rng:(Engine.Rng.create 1) () in
  let cs = submit_read ssd ~now:0 in
  let cz = submit_read zram ~now:0 in
  Alcotest.(check bool) "two orders of magnitude" true
    (cz.D.finish_ns * 100 < cs.D.finish_ns)

let test_zram_write_slower_than_read () =
  let config = { Swapdev.Zram.default_config with Swapdev.Zram.jitter = 0.0 } in
  let dev = Swapdev.Zram.create ~config ~rng:(Engine.Rng.create 1) () in
  let r = dev.D.submit ~now:0 ~op:D.Read ~size_fraction:0.5 in
  let w = dev.D.submit ~now:0 ~op:D.Write ~size_fraction:0.5 in
  Alcotest.(check bool) "write > read" true (w.D.finish_ns - 0 > r.D.finish_ns - 0)

let test_zram_cpu_coupled () =
  let dev = Swapdev.Zram.create ~rng:(Engine.Rng.create 1) () in
  let c = dev.D.submit ~now:0 ~op:D.Read ~size_fraction:0.5 in
  Alcotest.(check int) "compression runs on the CPU" c.D.finish_ns c.D.cpu_ns;
  let ssd = Swapdev.Ssd.create ~rng:(Engine.Rng.create 1) () in
  let cs = ssd.D.submit ~now:0 ~op:D.Read ~size_fraction:0.5 in
  Alcotest.(check bool) "ssd cpu tiny" true (cs.D.cpu_ns * 100 < cs.D.finish_ns)

let test_zram_size_sensitivity () =
  let config = { Swapdev.Zram.default_config with Swapdev.Zram.jitter = 0.0 } in
  let dev = Swapdev.Zram.create ~config ~rng:(Engine.Rng.create 1) () in
  let small = dev.D.submit ~now:0 ~op:D.Read ~size_fraction:0.1 in
  let dev2 = Swapdev.Zram.create ~config ~rng:(Engine.Rng.create 1) () in
  let big = dev2.D.submit ~now:0 ~op:D.Read ~size_fraction:1.0 in
  Alcotest.(check bool) "compressible pages faster" true
    (small.D.finish_ns < big.D.finish_ns)

let test_stored_bytes_estimate () =
  Alcotest.(check int) "estimate" (4096 * 25)
    (Swapdev.Zram.stored_bytes_estimate ~pages:100 ~mean_ratio:0.25)

let () =
  Alcotest.run "devices"
    [
      ( "ssd",
        [
          Alcotest.test_case "service time" `Quick test_ssd_service_time;
          Alcotest.test_case "queueing" `Quick test_ssd_queueing;
          Alcotest.test_case "parallel channels" `Quick test_ssd_parallel_channels;
          Alcotest.test_case "idle gap" `Quick test_ssd_idle_gap;
        ] );
      ( "zram",
        [
          Alcotest.test_case "much faster than ssd" `Quick test_zram_much_faster;
          Alcotest.test_case "write slower than read" `Quick test_zram_write_slower_than_read;
          Alcotest.test_case "cpu coupled" `Quick test_zram_cpu_coupled;
          Alcotest.test_case "size sensitivity" `Quick test_zram_size_sensitivity;
          Alcotest.test_case "stored bytes" `Quick test_stored_bytes_estimate;
        ] );
    ]
