module K = Workload.Kv_store

let test_geometry () =
  let s = K.create ~items_per_page:8 ~items:1000 () in
  Alcotest.(check int) "items" 1000 (K.items s);
  Alcotest.(check int) "item pages" 125 (K.item_pages s);
  Alcotest.(check bool) "meta region exists" true (K.meta_pages s >= 1);
  Alcotest.(check int) "footprint"
    (K.meta_pages s + K.item_pages s)
    (K.footprint_pages s)

let test_item_page_layout () =
  let s = K.create ~items_per_page:4 ~items:100 () in
  (* Slab order: consecutive items share pages. *)
  Alcotest.(check int) "item 0 and 3 same page" (K.item_page s 0) (K.item_page s 3);
  Alcotest.(check bool) "item 4 next page" true (K.item_page s 4 > K.item_page s 3);
  Alcotest.(check bool) "items after meta region" true
    (K.item_page s 0 >= K.meta_pages s);
  Alcotest.check_raises "out of range" (Invalid_argument "Kv_store.item_page: out of range")
    (fun () -> ignore (K.item_page s 100))

let test_meta_page_range () =
  let s = K.create ~items:10_000 () in
  for key = 0 to 999 do
    let p = K.meta_page s ~key in
    Alcotest.(check bool) "meta page in meta region" true (K.is_meta_page s p)
  done

let test_meta_hash_spreads () =
  let s = K.create ~items:10_000 () in
  let seen = Hashtbl.create 64 in
  for key = 0 to 999 do
    Hashtbl.replace seen (K.meta_page s ~key) ()
  done;
  Alcotest.(check bool) "uses many meta pages" true
    (Hashtbl.length seen > K.meta_pages s / 2)

let test_validation () =
  Alcotest.check_raises "items" (Invalid_argument "Kv_store.create: items must be positive")
    (fun () -> ignore (K.create ~items:0 ()))

let prop_every_item_has_a_page =
  QCheck.Test.make ~name:"every item maps inside the footprint" ~count:100
    QCheck.(pair (int_range 1 5_000) (int_range 1 16))
    (fun (items, per_page) ->
      let s = K.create ~items_per_page:per_page ~items () in
      let ok = ref true in
      for i = 0 to items - 1 do
        let p = K.item_page s i in
        if p < 0 || p >= K.footprint_pages s then ok := false
      done;
      !ok)

let () =
  Alcotest.run "kv_store"
    [
      ( "unit",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "item layout" `Quick test_item_page_layout;
          Alcotest.test_case "meta range" `Quick test_meta_page_range;
          Alcotest.test_case "meta spreads" `Quick test_meta_hash_spreads;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_every_item_has_a_page ]);
    ]
