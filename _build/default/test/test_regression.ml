module R = Stats.Regression

let test_perfect_line () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = Array.map (fun v -> 2.0 +. (3.0 *. v)) x in
  let f = R.fit ~x ~y in
  Alcotest.(check (float 1e-9)) "slope" 3.0 f.R.slope;
  Alcotest.(check (float 1e-9)) "intercept" 2.0 f.R.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 f.R.r2;
  Alcotest.(check (float 1e-9)) "pearson" 1.0 f.R.pearson

let test_negative_slope () =
  let x = [| 0.0; 1.0; 2.0 |] in
  let y = [| 4.0; 2.0; 0.0 |] in
  let f = R.fit ~x ~y in
  Alcotest.(check (float 1e-9)) "slope" (-2.0) f.R.slope;
  Alcotest.(check (float 1e-9)) "pearson" (-1.0) f.R.pearson;
  Alcotest.(check (float 1e-9)) "r2 still 1" 1.0 f.R.r2

let test_noise_degrades_r2 () =
  let rng = Engine.Rng.create 7 in
  let n = 200 in
  let x = Array.init n float_of_int in
  let y_clean = Array.map (fun v -> 1.0 +. (0.5 *. v)) x in
  let y_noisy =
    Array.map (fun v -> v +. Engine.Rng.gaussian rng ~mu:0.0 ~sigma:30.0) y_clean
  in
  let f_clean = R.fit ~x ~y:y_clean in
  let f_noisy = R.fit ~x ~y:y_noisy in
  Alcotest.(check bool) "clean r2 = 1" true (f_clean.R.r2 > 0.999);
  Alcotest.(check bool) "noisy r2 lower" true (f_noisy.R.r2 < f_clean.R.r2);
  Alcotest.(check bool) "slope roughly recovered" true
    (Float.abs (f_noisy.R.slope -. 0.5) < 0.15)

let test_constant_x () =
  let f = R.fit ~x:[| 2.0; 2.0; 2.0 |] ~y:[| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "slope 0" 0.0 f.R.slope;
  Alcotest.(check (float 1e-9)) "r2 0" 0.0 f.R.r2;
  Alcotest.(check (float 1e-9)) "intercept = mean y" 2.0 f.R.intercept

let test_constant_y () =
  let f = R.fit ~x:[| 1.0; 2.0; 3.0 |] ~y:[| 5.0; 5.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "slope 0" 0.0 f.R.slope;
  Alcotest.(check (float 1e-9)) "r2 1 (perfectly explained)" 1.0 f.R.r2

let test_bad_inputs () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Regression.fit: length mismatch") (fun () ->
      ignore (R.fit ~x:[| 1.0 |] ~y:[| 1.0; 2.0 |]));
  Alcotest.check_raises "too few"
    (Invalid_argument "Regression.fit: need at least 2 points") (fun () ->
      ignore (R.fit ~x:[| 1.0 |] ~y:[| 1.0 |]))

let test_predict () =
  let f = R.fit ~x:[| 0.0; 1.0 |] ~y:[| 1.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "predict" 5.0 (R.predict f 2.0)

let prop_r2_in_unit_interval =
  QCheck.Test.make ~name:"r2 in [0,1]" ~count:300
    QCheck.(
      list_of_size
        Gen.(2 -- 30)
        (pair (float_range (-100.0) 100.0) (float_range (-100.0) 100.0)))
    (fun pts ->
      let x = Array.of_list (List.map fst pts) in
      let y = Array.of_list (List.map snd pts) in
      let f = R.fit ~x ~y in
      f.R.r2 >= -1e-9 && f.R.r2 <= 1.0 +. 1e-9)

let () =
  Alcotest.run "regression"
    [
      ( "unit",
        [
          Alcotest.test_case "perfect line" `Quick test_perfect_line;
          Alcotest.test_case "negative slope" `Quick test_negative_slope;
          Alcotest.test_case "noise degrades r2" `Quick test_noise_degrades_r2;
          Alcotest.test_case "constant x" `Quick test_constant_x;
          Alcotest.test_case "constant y" `Quick test_constant_y;
          Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
          Alcotest.test_case "predict" `Quick test_predict;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_r2_in_unit_interval ]);
    ]
