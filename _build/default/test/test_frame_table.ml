module F = Mem.Frame_table

let test_basic () =
  let f = F.create ~frames:8 in
  Alcotest.(check int) "frames" 8 (F.frames f);
  Alcotest.(check int) "mapped" 0 (F.mapped_count f);
  Alcotest.(check (option (pair int int))) "owner" None (F.owner f 3);
  F.set_owner f ~pfn:3 ~asid:1 ~vpn:42;
  Alcotest.(check (option (pair int int))) "owner set" (Some (1, 42)) (F.owner f 3);
  Alcotest.(check bool) "is_mapped" true (F.is_mapped f 3);
  Alcotest.(check int) "mapped count" 1 (F.mapped_count f)

let test_remap_does_not_double_count () =
  let f = F.create ~frames:4 in
  F.set_owner f ~pfn:0 ~asid:0 ~vpn:1;
  F.set_owner f ~pfn:0 ~asid:0 ~vpn:2;
  Alcotest.(check int) "still one" 1 (F.mapped_count f);
  Alcotest.(check (option (pair int int))) "latest owner" (Some (0, 2)) (F.owner f 0)

let test_clear () =
  let f = F.create ~frames:4 in
  F.set_owner f ~pfn:2 ~asid:0 ~vpn:9;
  F.clear_owner f ~pfn:2;
  Alcotest.(check (option (pair int int))) "cleared" None (F.owner f 2);
  Alcotest.(check int) "count back to zero" 0 (F.mapped_count f);
  (* double clear is a no-op *)
  F.clear_owner f ~pfn:2;
  Alcotest.(check int) "still zero" 0 (F.mapped_count f)

let test_bounds () =
  let f = F.create ~frames:4 in
  Alcotest.check_raises "out of range" (Invalid_argument "Frame_table: pfn out of range")
    (fun () -> ignore (F.owner f 4))

let prop_count_matches_scan =
  QCheck.Test.make ~name:"mapped_count matches a full scan" ~count:200
    QCheck.(list (pair (int_bound 15) bool))
    (fun ops ->
      let f = F.create ~frames:16 in
      List.iter
        (fun (pfn, set) ->
          if set then F.set_owner f ~pfn ~asid:0 ~vpn:pfn
          else F.clear_owner f ~pfn)
        ops;
      let scan = ref 0 in
      for pfn = 0 to 15 do
        if F.is_mapped f pfn then incr scan
      done;
      !scan = F.mapped_count f)

let () =
  Alcotest.run "frame_table"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "remap" `Quick test_remap_does_not_double_count;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "bounds" `Quick test_bounds;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_count_matches_scan ]);
    ]
