module G = Workload.Graph

let small_config =
  { G.n = 2_000; avg_degree = 4; deg_exponent = 0.9; target_exponent = 1.2 }

let test_basic_counts () =
  let g = G.generate ~config:small_config ~seed:1 () in
  Alcotest.(check int) "n" 2000 (G.n g);
  Alcotest.(check bool) "m near n * avg_degree" true
    (G.m g >= 2000 * 2 && G.m g <= 2000 * 8);
  Alcotest.(check int) "offsets end at m" (G.m g) (G.offset g 2000);
  Alcotest.(check int) "offsets start at 0" 0 (G.offset g 0)

let test_degrees_positive_and_consistent () =
  let g = G.generate ~config:small_config ~seed:2 () in
  let sum = ref 0 in
  for v = 0 to G.n g - 1 do
    let d = G.degree g v in
    Alcotest.(check bool) "degree >= 1" true (d >= 1);
    Alcotest.(check int) "offset diff = degree" d (G.offset g (v + 1) - G.offset g v);
    sum := !sum + d
  done;
  Alcotest.(check int) "degrees sum to m" (G.m g) !sum

let test_power_law_skew () =
  let g = G.generate ~config:small_config ~seed:3 () in
  let avg = G.m g / G.n g in
  Alcotest.(check bool)
    (Printf.sprintf "max degree %d >> avg %d" (G.max_degree g) avg)
    true
    (G.max_degree g > 10 * avg)

let test_neighbors_deterministic () =
  let g = G.generate ~config:small_config ~seed:4 () in
  let collect v =
    let acc = ref [] in
    G.iter_in_neighbors g v (fun u -> acc := u :: !acc);
    !acc
  in
  Alcotest.(check (list int)) "same every call" (collect 17) (collect 17);
  Alcotest.(check int) "count = degree" (G.degree g 17) (List.length (collect 17))

let test_neighbors_in_range () =
  let g = G.generate ~config:small_config ~seed:5 () in
  for v = 0 to 99 do
    G.iter_in_neighbors g v (fun u ->
        if u < 0 || u >= G.n g then Alcotest.fail "neighbour out of range")
  done

let test_hubs_at_low_ids () =
  (* Target sampling is zipfian over raw ids: low ids should be read far
     more often (the hot rank-page head). *)
  let g = G.generate ~config:small_config ~seed:6 () in
  let low = ref 0 and high = ref 0 in
  for v = 0 to 499 do
    G.iter_in_neighbors g v (fun u ->
        if u < G.n g / 10 then incr low
        else if u >= G.n g / 2 then incr high)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "low-id reads %d > high-id reads %d" !low !high)
    true (!low > !high)

let test_seeds_give_different_graphs () =
  let g1 = G.generate ~config:small_config ~seed:7 () in
  let g2 = G.generate ~config:small_config ~seed:8 () in
  let differs = ref false in
  for v = 0 to G.n g1 - 1 do
    if G.degree g1 v <> G.degree g2 v then differs := true
  done;
  Alcotest.(check bool) "degree placement differs" true !differs

let prop_offsets_monotone =
  QCheck.Test.make ~name:"offsets monotone" ~count:20
    QCheck.(pair (int_range 10 500) small_int)
    (fun (n, seed) ->
      let g = G.generate ~config:{ small_config with G.n } ~seed () in
      let ok = ref true in
      for v = 0 to n - 1 do
        if G.offset g (v + 1) < G.offset g v then ok := false
      done;
      !ok)

let () =
  Alcotest.run "graph"
    [
      ( "unit",
        [
          Alcotest.test_case "basic counts" `Quick test_basic_counts;
          Alcotest.test_case "degrees consistent" `Quick test_degrees_positive_and_consistent;
          Alcotest.test_case "power law skew" `Quick test_power_law_skew;
          Alcotest.test_case "neighbours deterministic" `Quick test_neighbors_deterministic;
          Alcotest.test_case "neighbours in range" `Quick test_neighbors_in_range;
          Alcotest.test_case "hubs at low ids" `Quick test_hubs_at_low_ids;
          Alcotest.test_case "seeds differ" `Quick test_seeds_give_different_graphs;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_offsets_monotone ]);
    ]
