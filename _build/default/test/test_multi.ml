module M = Workload.Multi
module C = Workload.Chunk

let tenant_a () =
  C.Packed
    ((module Workload.Trace),
     Workload.Trace.of_page_lists ~footprint:100 [ [| 0; 1 |]; [| 2 |] ])

let tenant_b () =
  C.Packed
    ((module Workload.Trace),
     Workload.Trace.of_page_lists ~footprint:50 [ [| 0 |] ])

let test_geometry () =
  let m = M.create [ tenant_a (); tenant_b () ] in
  Alcotest.(check int) "tenants" 2 (M.tenants m);
  Alcotest.(check int) "threads merged" 2 (M.threads m);
  Alcotest.(check int) "footprint summed" 150 (M.footprint_pages m);
  Alcotest.(check (pair int int)) "tenant 0 range" (0, 99) (M.tenant_page_range m 0);
  Alcotest.(check (pair int int)) "tenant 1 range" (100, 149) (M.tenant_page_range m 1);
  Alcotest.(check (array int)) "barrier groups" [| 0; 1 |] (M.barrier_groups m);
  Alcotest.(check int) "thread 1 belongs to tenant 1" 1 (M.tenant_of_thread m 1)

let test_page_translation () =
  let m = M.create [ tenant_a (); tenant_b () ] in
  (* Tenant 0's pages pass through unshifted. *)
  (match M.next m ~tid:0 with
  | C.Chunk c ->
    (match c.C.pages with
    | C.Pages [| 0; 1 |] -> ()
    | _ -> Alcotest.fail "tenant 0 pages should be unshifted")
  | _ -> Alcotest.fail "expected chunk");
  (* Tenant 1's page 0 lands at its base, 100. *)
  (match M.next m ~tid:1 with
  | C.Chunk c ->
    (match c.C.pages with
    | C.Pages [| 100 |] -> ()
    | _ -> Alcotest.fail "tenant 1 pages should shift by 100")
  | _ -> Alcotest.fail "expected chunk");
  Alcotest.(check bool) "tenant 1 finishes" true (M.next m ~tid:1 = C.Finished)

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Multi.create: no tenants")
    (fun () -> ignore (M.create []))

let test_runs_on_machine () =
  let m = M.create [ tenant_a (); tenant_b () ] in
  let cfg =
    {
      (Repro_core.Machine.default_config ~capacity_frames:64 ~seed:3) with
      Repro_core.Machine.barrier_groups = Some (M.barrier_groups m);
      kthread_jitter_ns = 0;
    }
  in
  let r =
    Repro_core.Machine.run cfg
      ~policy:(Policy.Registry.create Policy.Registry.Clock)
      ~workload:(C.Packed ((module M), m))
  in
  Alcotest.(check int) "four distinct pages touched" 4
    r.Repro_core.Machine.minor_faults;
  Alcotest.(check int) "both threads finished" 2
    (Array.length r.Repro_core.Machine.per_thread_finish)

let test_klass_delegates () =
  let custom =
    Workload.Trace.create
      {
        Workload.Trace.steps = [| [||] |];
        footprint = 10;
        klass = (fun _ -> Swapdev.Compress.Random);
        file_backed_pages = (fun _ -> false);
      }
  in
  let m =
    M.create [ tenant_a (); C.Packed ((module Workload.Trace), custom) ]
  in
  Alcotest.(check bool) "tenant 0 klass" true
    (M.page_klass m 5 = Swapdev.Compress.Numeric);
  Alcotest.(check bool) "tenant 1 klass shifted" true
    (M.page_klass m 105 = Swapdev.Compress.Random)

let () =
  Alcotest.run "multi"
    [
      ( "unit",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "page translation" `Quick test_page_translation;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "runs on machine" `Quick test_runs_on_machine;
          Alcotest.test_case "klass delegates" `Quick test_klass_delegates;
        ] );
    ]
