module S = Engine.Sim

let test_runs_in_order () =
  let sim = S.create () in
  let log = ref [] in
  S.schedule sim ~delay:20 (fun _ -> log := "b" :: !log);
  S.schedule sim ~delay:10 (fun _ -> log := "a" :: !log);
  S.schedule sim ~delay:30 (fun _ -> log := "c" :: !log);
  S.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "time advanced" 30 (S.now sim)

let test_nested_scheduling () =
  let sim = S.create () in
  let fired = ref 0 in
  S.schedule sim ~delay:5 (fun sim ->
      S.schedule sim ~delay:5 (fun _ -> fired := S.now sim));
  S.run sim;
  Alcotest.(check int) "nested event time" 10 !fired

let test_until_bound () =
  let sim = S.create () in
  let fired = ref false in
  S.schedule sim ~delay:100 (fun _ -> fired := true);
  S.run ~until:50 sim;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check int) "pending" 1 (S.pending sim);
  S.run sim;
  Alcotest.(check bool) "fired on resume" true !fired

let test_stop () =
  let sim = S.create () in
  let count = ref 0 in
  let rec tick sim =
    incr count;
    if !count = 3 then S.stop sim else S.schedule sim ~delay:1 tick
  in
  S.schedule sim ~delay:1 tick;
  S.run sim;
  Alcotest.(check int) "stopped after 3" 3 !count

let test_negative_delay_clamped () =
  let sim = S.create () in
  let at = ref (-1) in
  S.schedule sim ~delay:5 (fun sim ->
      S.schedule sim ~delay:(-10) (fun sim -> at := S.now sim));
  S.run sim;
  Alcotest.(check int) "clamped to now" 5 !at

let test_schedule_at () =
  let sim = S.create () in
  let at = ref 0 in
  S.schedule_at sim ~time:42 (fun sim -> at := S.now sim);
  S.run sim;
  Alcotest.(check int) "absolute time" 42 !at

let test_time_never_goes_backward () =
  let sim = S.create () in
  let monotone = ref true in
  let last = ref 0 in
  for i = 0 to 99 do
    S.schedule sim ~delay:(100 - i) (fun sim ->
        if S.now sim < !last then monotone := false;
        last := S.now sim)
  done;
  S.run sim;
  Alcotest.(check bool) "monotone" true !monotone

let () =
  Alcotest.run "sim"
    [
      ( "unit",
        [
          Alcotest.test_case "runs in order" `Quick test_runs_in_order;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "until bound" `Quick test_until_bound;
          Alcotest.test_case "stop" `Quick test_stop;
          Alcotest.test_case "negative delay clamped" `Quick test_negative_delay_clamped;
          Alcotest.test_case "schedule_at" `Quick test_schedule_at;
          Alcotest.test_case "monotone time" `Quick test_time_never_goes_backward;
        ] );
    ]
