test/support/harness.ml: Engine List Mem Policy
