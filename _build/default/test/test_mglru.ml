module M = Policy.Mglru
module PI = Policy.Policy_intf

let make ?(config = M.default_config) ?(frames = 16) ?(pages = 64) () =
  let world = Testsupport.Harness.make_world ~frames ~pages () in
  let policy = M.create_with ~config world.Testsupport.Harness.env in
  let packed = PI.Packed ((module M), policy) in
  (world, policy, packed)

let test_initial_window () =
  let _, policy, _ = make () in
  Alcotest.(check int) "window starts at min_gens" M.default_config.M.min_gens
    (M.nr_gens policy);
  M.check_invariants policy

let test_new_pages_young () =
  let world, policy, packed = make () in
  ignore (Testsupport.Harness.map_page world packed 0);
  Alcotest.(check int) "youngest gen holds it" 1 (M.gen_size policy (M.max_seq policy));
  M.check_invariants policy

let test_speculative_pages_old () =
  let world, policy, packed = make () in
  ignore (Testsupport.Harness.map_page world packed ~speculative:true 0);
  (* With the initial 2-generation window, "one above the eviction
     generation" coincides with the youngest; the invariant is that the
     page never lands below min_seq + 1. *)
  let old_seq = min (M.min_seq policy + 1) (M.max_seq policy) in
  Alcotest.(check int) "placed at min_seq+1" 1 (M.gen_size policy old_seq);
  Alcotest.(check int) "eviction gen empty" 0 (M.gen_size policy (M.min_seq policy));
  M.check_invariants policy

let test_direct_reclaim_frees () =
  let world, policy, packed = make ~frames:8 ~pages:32 () in
  for vpn = 0 to 7 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  ignore (Testsupport.Harness.map_page world packed 20);
  Alcotest.(check int) "one eviction" 1 (List.length world.Testsupport.Harness.reclaimed);
  M.check_invariants policy

let test_eviction_prefers_cold () =
  let world, policy, packed = make ~frames:8 ~pages:64 () in
  for vpn = 0 to 7 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  (* Cold set 0..3: clear accessed bits; hot set keeps them. *)
  for vpn = 0 to 3 do
    Mem.Page_table.set world.Testsupport.Harness.pt vpn
      (Mem.Pte.clear_accessed (Mem.Page_table.get world.Testsupport.Harness.pt vpn))
  done;
  let stats = M.direct_reclaim policy ~want:2 in
  Alcotest.(check bool) "freed" true (stats.PI.freed >= 1);
  List.iter
    (fun vpn ->
      Alcotest.(check bool) (Printf.sprintf "vpn %d cold" vpn) true (vpn < 4))
    world.Testsupport.Harness.reclaimed_vpns;
  M.check_invariants policy

let test_accessed_candidate_promoted () =
  let world, policy, packed = make ~frames:4 ~pages:16 () in
  for vpn = 0 to 3 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  (* All accessed: reclaim must still free (escalation) but should
     promote at least one page first. *)
  let stats = M.direct_reclaim policy ~want:1 in
  Alcotest.(check bool) "freed" true (stats.PI.freed >= 1);
  Alcotest.(check bool) "promotions or forced evictions happened" true
    (stats.PI.promoted > 0 || List.mem_assoc "forced_evictions" (M.stats policy));
  M.check_invariants policy

let test_aging_pass_rotates_generations () =
  let world, policy, packed = make ~frames:8 ~pages:32 () in
  for vpn = 0 to 7 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  let seq_before = M.max_seq policy in
  (* Force the window to the bottom by reclaiming repeatedly, then run
     the kernel threads so a requested aging pass completes. *)
  ignore (M.direct_reclaim policy ~want:4);
  Testsupport.Harness.run_kthreads world packed;
  Alcotest.(check bool) "max_seq advanced" true (M.max_seq policy >= seq_before);
  M.check_invariants policy

let test_aging_clears_accessed_bits () =
  let config = { M.default_config with M.scan_mode = M.Scan_all } in
  let world, policy, packed = make ~config ~frames:8 ~pages:32 () in
  for vpn = 0 to 7 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  (* Drain the window so an aging pass is requested, then run it. *)
  ignore (M.direct_reclaim policy ~want:6);
  Testsupport.Harness.run_kthreads world packed;
  let still_accessed = ref 0 in
  for vpn = 0 to 7 do
    let pte = Mem.Page_table.get world.Testsupport.Harness.pt vpn in
    if Mem.Pte.present pte && Mem.Pte.accessed pte then incr still_accessed
  done;
  Alcotest.(check int) "scan-all pass cleared every accessed bit" 0 !still_accessed

let test_scan_none_never_scans () =
  let config = { M.default_config with M.scan_mode = M.Scan_none } in
  let world, policy, packed = make ~config ~frames:8 ~pages:64 () in
  for vpn = 0 to 20 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  Testsupport.Harness.run_kthreads world packed;
  Alcotest.(check int) "no aging PTE scans" 0
    (List.assoc "regions_scanned" (M.stats policy))

let test_gen14_can_always_grow () =
  let config = M.gen14_config in
  let world, policy, packed = make ~config ~frames:8 ~pages:64 () in
  for vpn = 0 to 30 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  Testsupport.Harness.run_kthreads world packed;
  Alcotest.(check int) "never stuck at the cap" 0
    (List.assoc "stuck_full_window" (M.stats policy));
  M.check_invariants policy

let test_window_bounded () =
  let world, policy, packed = make ~frames:8 ~pages:64 () in
  for round = 0 to 5 do
    for vpn = 0 to 20 do
      ignore (Testsupport.Harness.map_page world packed ((round * 7 mod 3) + vpn))
    done;
    Testsupport.Harness.run_kthreads world packed
  done;
  Alcotest.(check bool) "window within max_gens" true
    (M.nr_gens policy <= M.default_config.M.max_gens);
  M.check_invariants policy

let test_refault_distance_placement () =
  let world, policy, packed = make ~frames:4 ~pages:32 () in
  (* Fill memory; vpn 0 gets evicted. *)
  for vpn = 0 to 3 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  for vpn = 0 to 3 do
    Mem.Page_table.set world.Testsupport.Harness.pt vpn
      (Mem.Pte.clear_accessed (Mem.Page_table.get world.Testsupport.Harness.pt vpn))
  done;
  ignore (Testsupport.Harness.map_page world packed 10);
  let evicted = List.hd world.Testsupport.Harness.reclaimed_vpns in
  (* Immediate refault: distance is small, so it should land young. *)
  let young_before = M.gen_size policy (M.max_seq policy) in
  ignore (Testsupport.Harness.map_page world packed evicted);
  Alcotest.(check bool) "refault placed young" true
    (M.gen_size policy (M.max_seq policy) >= young_before);
  M.check_invariants policy

let test_spatial_scan_promotes_neighbors () =
  let config = { M.default_config with M.scan_mode = M.Scan_none } in
  let world, policy, packed = make ~config ~frames:12 ~pages:64 () in
  (* Map 8 pages in one region; make them all accessed. *)
  for vpn = 0 to 7 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  (* Reclaim: the walker sees accessed candidates and the spatial scan
     should promote several neighbours per rmap walk. *)
  let stats = M.direct_reclaim policy ~want:1 in
  ignore stats;
  Alcotest.(check bool) "spatial promotions happened" true
    (List.assoc "spatial_promotions" (M.stats policy) > 0)

let test_registry_variants_construct () =
  List.iter
    (fun spec ->
      let world = Testsupport.Harness.make_world () in
      let packed = Policy.Registry.create spec world.Testsupport.Harness.env in
      Alcotest.(check bool)
        (Policy.Registry.name spec ^ " constructs")
        true
        (String.length (PI.packed_name packed) > 0))
    Policy.Registry.all_paper_specs

let () =
  Alcotest.run "mglru"
    [
      ( "unit",
        [
          Alcotest.test_case "initial window" `Quick test_initial_window;
          Alcotest.test_case "new pages young" `Quick test_new_pages_young;
          Alcotest.test_case "speculative old" `Quick test_speculative_pages_old;
          Alcotest.test_case "direct reclaim" `Quick test_direct_reclaim_frees;
          Alcotest.test_case "evicts cold" `Quick test_eviction_prefers_cold;
          Alcotest.test_case "promotes accessed" `Quick test_accessed_candidate_promoted;
          Alcotest.test_case "aging rotates" `Quick test_aging_pass_rotates_generations;
          Alcotest.test_case "aging clears bits" `Quick test_aging_clears_accessed_bits;
          Alcotest.test_case "scan-none never scans" `Quick test_scan_none_never_scans;
          Alcotest.test_case "gen14 never capped" `Quick test_gen14_can_always_grow;
          Alcotest.test_case "window bounded" `Quick test_window_bounded;
          Alcotest.test_case "refault distance" `Quick test_refault_distance_placement;
          Alcotest.test_case "spatial scan" `Quick test_spatial_scan_promotes_neighbors;
          Alcotest.test_case "registry variants" `Quick test_registry_variants_construct;
        ] );
    ]
