module PI = Policy.Policy_intf

let make_fifo ?(frames = 8) ?(pages = 32) () =
  let world = Testsupport.Harness.make_world ~frames ~pages () in
  let p = Policy.Fifo.create world.Testsupport.Harness.env in
  (world, PI.Packed ((module Policy.Fifo), p))

let make_random ?(frames = 8) ?(pages = 32) () =
  let world = Testsupport.Harness.make_world ~frames ~pages () in
  let p = Policy.Random_policy.create world.Testsupport.Harness.env in
  (world, PI.Packed ((module Policy.Random_policy), p))

let make_lru ?(frames = 8) ?(pages = 32) () =
  let world = Testsupport.Harness.make_world ~frames ~pages () in
  let p = Policy.Lru_exact.create world.Testsupport.Harness.env in
  (world, PI.Packed ((module Policy.Lru_exact), p))

let fill world packed n =
  for vpn = 0 to n - 1 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done

let test_fifo_evicts_in_arrival_order () =
  let world, packed = make_fifo () in
  fill world packed 8;
  (* Touch page 0 heavily; FIFO must ignore recency. *)
  Testsupport.Harness.touch world packed 0;
  ignore (Testsupport.Harness.map_page world packed 20);
  ignore (Testsupport.Harness.map_page world packed 21);
  Alcotest.(check (list int)) "evicts 0 then 1" [ 1; 0 ]
    world.Testsupport.Harness.reclaimed_vpns

let test_fifo_kswapd () =
  let world, packed = make_fifo ~frames:32 () in
  fill world packed 32;
  Testsupport.Harness.run_kthreads world packed;
  Alcotest.(check bool) "restored watermark" true
    (Mem.Phys_mem.free_count world.Testsupport.Harness.mem
    >= Mem.Phys_mem.high_watermark world.Testsupport.Harness.mem)

let test_random_frees () =
  let world, packed = make_random () in
  fill world packed 8;
  ignore (Testsupport.Harness.map_page world packed 20);
  Alcotest.(check int) "one eviction" 1
    (List.length world.Testsupport.Harness.reclaimed_vpns);
  Alcotest.(check int) "memory conserved" 8 (Testsupport.Harness.resident world)

let test_random_covers_frames () =
  (* Over many evictions, random should hit many different frames. *)
  let world, packed = make_random ~frames:8 ~pages:512 () in
  fill world packed 8;
  for vpn = 8 to 200 do
    ignore (Testsupport.Harness.map_page world packed vpn)
  done;
  let distinct = Hashtbl.create 16 in
  List.iter (fun pfn -> Hashtbl.replace distinct pfn ()) world.Testsupport.Harness.reclaimed;
  Alcotest.(check bool) "many frames hit" true (Hashtbl.length distinct >= 6)

let test_lru_exact_uses_touch_oracle () =
  let world, packed = make_lru () in
  fill world packed 8;
  (* Re-touch 0..3 making 4..7 the LRU side. *)
  for vpn = 0 to 3 do
    Testsupport.Harness.touch world packed vpn
  done;
  ignore (Testsupport.Harness.map_page world packed 20);
  ignore (Testsupport.Harness.map_page world packed 21);
  List.iter
    (fun vpn ->
      Alcotest.(check bool) (Printf.sprintf "vpn %d from LRU side" vpn) true (vpn >= 4))
    world.Testsupport.Harness.reclaimed_vpns

let test_lru_exact_beats_fifo_on_skew () =
  (* Replay the same skewed trace through both; exact LRU should fault
     less because it keeps the hot page resident. *)
  let run make =
    let world, packed = make ?frames:(Some 4) ?pages:(Some 64) () in
    let faults = ref 0 in
    let rng = Engine.Rng.create 11 in
    for _ = 1 to 400 do
      let vpn = if Engine.Rng.bool rng 0.5 then 0 else Engine.Rng.int rng 40 in
      let pte = Mem.Page_table.get world.Testsupport.Harness.pt vpn in
      if Mem.Pte.present pte then Testsupport.Harness.touch world packed vpn
      else begin
        incr faults;
        ignore (Testsupport.Harness.map_page world packed vpn)
      end
    done;
    !faults
  in
  let lru = run make_lru and fifo = run make_fifo in
  Alcotest.(check bool) (Printf.sprintf "lru %d < fifo %d" lru fifo) true (lru < fifo)

let () =
  Alcotest.run "baselines"
    [
      ( "fifo",
        [
          Alcotest.test_case "arrival order" `Quick test_fifo_evicts_in_arrival_order;
          Alcotest.test_case "kswapd" `Quick test_fifo_kswapd;
        ] );
      ( "random",
        [
          Alcotest.test_case "frees" `Quick test_random_frees;
          Alcotest.test_case "covers frames" `Quick test_random_covers_frames;
        ] );
      ( "lru-exact",
        [
          Alcotest.test_case "touch oracle" `Quick test_lru_exact_uses_touch_oracle;
          Alcotest.test_case "beats fifo on skew" `Quick test_lru_exact_beats_fifo_on_skew;
        ] );
    ]
