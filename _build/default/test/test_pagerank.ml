module P = Workload.Pagerank
module C = Workload.Chunk

let small_config =
  {
    P.default_config with
    P.graph =
      { Workload.Graph.n = 8_192; avg_degree = 4; deg_exponent = 0.9; target_exponent = 1.2 };
    threads = 4;
    iterations = 3;
    block_vertices = 1_024;
  }

let make seed = P.create ~config:small_config ~seed ()

let test_geometry () =
  let w = make 1 in
  Alcotest.(check int) "threads" 4 (P.threads w);
  Alcotest.(check bool) "footprint positive" true (P.footprint_pages w > 0);
  Alcotest.(check bool) "rank pages sized" true (P.rank_pages w >= 16);
  Alcotest.(check int) "graph n" 8192 (Workload.Graph.n (P.graph_of w))

let drain w tid =
  let chunks = ref 0 and barriers = ref 0 and writes = ref 0 in
  let rec go () =
    match P.next w ~tid with
    | C.Finished -> ()
    | C.Barrier ->
      incr barriers;
      go ()
    | C.Chunk c ->
      incr chunks;
      if c.C.write then incr writes;
      go ()
  in
  go ();
  (!chunks, !barriers, !writes)

let test_iteration_structure () =
  let w = make 2 in
  let _chunks, barriers, writes = drain w 0 in
  Alcotest.(check int) "one barrier per iteration" 3 barriers;
  Alcotest.(check bool) "each block writes its dst ranks" true (writes > 0)

let test_pages_in_footprint () =
  let w = make 3 in
  let fp = P.footprint_pages w in
  for tid = 0 to 3 do
    let rec go () =
      match P.next w ~tid with
      | C.Finished -> ()
      | C.Barrier -> go ()
      | C.Chunk c ->
        C.iter_pages
          (fun p -> if p < 0 || p >= fp then Alcotest.fail "page out of range")
          c.C.pages;
        go ()
    in
    go ()
  done

let test_plan_cache_reused () =
  let w1 = make 5 in
  let w2 = make 5 in
  (* Same seed gives physically equal cached plans. *)
  Alcotest.(check bool) "same graph object" true (P.graph_of w1 == P.graph_of w2)

let test_work_imbalance_varies_by_seed () =
  (* Thread edge loads vary across seeds via the degree permutation. *)
  let imbalance seed =
    let w = make seed in
    let cpu = Array.make 4 0 in
    for tid = 0 to 3 do
      let rec go () =
        match P.next w ~tid with
        | C.Finished -> ()
        | C.Barrier -> go ()
        | C.Chunk c ->
          cpu.(tid) <- cpu.(tid) + c.C.cpu_ns;
          go ()
      in
      go ()
    done;
    let mx = Array.fold_left max 0 cpu and mn = Array.fold_left min max_int cpu in
    float_of_int mx /. float_of_int (max 1 mn)
  in
  let a = imbalance 10 and b = imbalance 20 in
  Alcotest.(check bool) "some imbalance exists" true (a > 1.01 || b > 1.01);
  Alcotest.(check bool) "imbalance differs across seeds" true
    (Float.abs (a -. b) > 1e-6)

let test_rank_region_alternates () =
  (* Iterations alternate src/dst rank regions: collect write ranges per
     iteration and check they alternate between two bases. *)
  let w = make 7 in
  let bases = ref [] in
  let rec go iter_writes =
    match P.next w ~tid:0 with
    | C.Finished -> ()
    | C.Barrier ->
      (match iter_writes with
      | first :: _ -> bases := first :: !bases
      | [] -> ());
      go []
    | C.Chunk c ->
      (match c.C.pages with
      | C.Range { start; _ } when c.C.write -> go (start :: iter_writes)
      | _ -> go iter_writes)
  in
  go [];
  match List.rev !bases with
  | a :: b :: _ -> Alcotest.(check bool) "dst alternates" true (a <> b)
  | _ -> Alcotest.fail "expected at least two iterations"

let () =
  Alcotest.run "pagerank"
    [
      ( "unit",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "iteration structure" `Quick test_iteration_structure;
          Alcotest.test_case "pages in footprint" `Quick test_pages_in_footprint;
          Alcotest.test_case "plan cache" `Quick test_plan_cache_reused;
          Alcotest.test_case "imbalance varies" `Quick test_work_imbalance_varies_by_seed;
          Alcotest.test_case "rank regions alternate" `Quick test_rank_region_alternates;
        ] );
    ]
