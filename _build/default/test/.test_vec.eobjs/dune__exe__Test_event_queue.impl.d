test/test_event_queue.ml: Alcotest Engine List QCheck QCheck_alcotest
