test/test_regression.ml: Alcotest Array Engine Float Gen List QCheck QCheck_alcotest Stats
