test/test_zipf.mli:
