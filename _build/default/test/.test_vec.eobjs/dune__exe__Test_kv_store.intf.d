test/test_kv_store.mli:
