test/test_dlist.ml: Alcotest List QCheck QCheck_alcotest Structures
