test/test_policy_properties.ml: Alcotest Gen List Mem Policy Printf QCheck QCheck_alcotest Testsupport
