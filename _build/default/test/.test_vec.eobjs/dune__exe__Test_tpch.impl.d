test/test_tpch.ml: Alcotest Engine Swapdev Workload
