test/test_swap_manager.ml: Alcotest Engine List QCheck QCheck_alcotest Swapdev
