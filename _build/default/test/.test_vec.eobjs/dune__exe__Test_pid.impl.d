test/test_pid.ml: Alcotest Float QCheck QCheck_alcotest Structures
