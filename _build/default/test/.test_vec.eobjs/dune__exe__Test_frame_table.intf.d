test/test_frame_table.mli:
