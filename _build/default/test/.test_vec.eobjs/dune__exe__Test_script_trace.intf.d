test/test_script_trace.mli:
