test/test_multi.ml: Alcotest Array Policy Repro_core Swapdev Workload
