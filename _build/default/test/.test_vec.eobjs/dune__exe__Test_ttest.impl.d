test/test_ttest.ml: Alcotest Array Engine Float Gen Printf QCheck QCheck_alcotest Stats
