test/test_devices.ml: Alcotest Engine List Swapdev
