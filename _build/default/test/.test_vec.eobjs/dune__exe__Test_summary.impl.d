test/test_summary.ml: Alcotest Float Gen List QCheck QCheck_alcotest Stats
