test/test_script_trace.ml: Alcotest Swapdev Workload
