test/test_tiering.mli:
