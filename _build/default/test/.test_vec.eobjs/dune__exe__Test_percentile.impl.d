test/test_percentile.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Stats
