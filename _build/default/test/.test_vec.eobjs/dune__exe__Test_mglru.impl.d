test/test_mglru.ml: Alcotest List Mem Policy Printf String Testsupport
