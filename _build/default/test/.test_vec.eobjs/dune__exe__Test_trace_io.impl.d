test/test_trace_io.ml: Alcotest Array Engine Filename Fun List Policy Repro_core Sys Workload
