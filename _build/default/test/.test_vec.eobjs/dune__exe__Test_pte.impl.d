test/test_pte.ml: Alcotest List Mem QCheck QCheck_alcotest
