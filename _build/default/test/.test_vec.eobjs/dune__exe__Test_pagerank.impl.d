test/test_pagerank.ml: Alcotest Array Float List Workload
