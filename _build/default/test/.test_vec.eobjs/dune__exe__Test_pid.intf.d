test/test_pid.mli:
