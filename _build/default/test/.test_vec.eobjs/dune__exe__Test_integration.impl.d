test/test_integration.ml: Alcotest Array Float List Policy Printf Repro_core Stats Unix Workload
