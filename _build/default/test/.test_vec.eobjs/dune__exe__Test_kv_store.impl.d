test/test_kv_store.ml: Alcotest Hashtbl QCheck QCheck_alcotest Workload
