test/test_counter.mli:
