test/test_cpu.ml: Alcotest Engine QCheck QCheck_alcotest
