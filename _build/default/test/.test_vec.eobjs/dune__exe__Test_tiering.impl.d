test/test_tiering.ml: Alcotest Array List Printf Swapdev Tiering Workload
