test/test_phys_mem.ml: Alcotest Hashtbl List Mem Option QCheck QCheck_alcotest
