test/test_clock_lru.mli:
