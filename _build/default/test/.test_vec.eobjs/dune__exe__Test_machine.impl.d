test/test_machine.ml: Alcotest Array List Policy Printf Repro_core Swapdev Workload
