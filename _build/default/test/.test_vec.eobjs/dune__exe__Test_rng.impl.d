test/test_rng.ml: Alcotest Array Engine Float Printf QCheck QCheck_alcotest
