test/test_belady.mli:
