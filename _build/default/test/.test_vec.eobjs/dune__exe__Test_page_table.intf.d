test/test_page_table.mli:
