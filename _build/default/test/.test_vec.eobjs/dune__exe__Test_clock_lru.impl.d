test/test_clock_lru.ml: Alcotest List Mem Policy Printf Testsupport
