test/test_dlist.mli:
