test/test_ttest.mli:
