test/test_counter.ml: Alcotest Engine
