test/test_report.ml: Alcotest Filename Fun List Repro_core String Sys Unix
