test/test_vec.ml: Alcotest Array List QCheck QCheck_alcotest Structures
