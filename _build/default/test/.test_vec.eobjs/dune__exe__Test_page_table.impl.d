test/test_page_table.ml: Alcotest Array Mem QCheck QCheck_alcotest
