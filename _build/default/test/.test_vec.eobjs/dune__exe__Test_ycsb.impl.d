test/test_ycsb.ml: Alcotest Array Engine Float Hashtbl Option Printf Workload
