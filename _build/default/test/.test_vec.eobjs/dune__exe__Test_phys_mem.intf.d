test/test_phys_mem.mli:
