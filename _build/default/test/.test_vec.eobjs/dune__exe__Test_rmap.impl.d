test/test_rmap.ml: Alcotest List Mem
