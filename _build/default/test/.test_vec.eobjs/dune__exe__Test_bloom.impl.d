test/test_bloom.ml: Alcotest List Printf QCheck QCheck_alcotest Structures
