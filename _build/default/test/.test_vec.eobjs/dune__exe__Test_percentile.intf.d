test/test_percentile.mli:
