test/test_mglru.mli:
