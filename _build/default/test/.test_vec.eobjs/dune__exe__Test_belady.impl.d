test/test_belady.ml: Alcotest Array Gen Hashtbl List Policy Printf QCheck QCheck_alcotest
