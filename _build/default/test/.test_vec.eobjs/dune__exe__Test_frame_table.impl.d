test/test_frame_table.ml: Alcotest List Mem QCheck QCheck_alcotest
