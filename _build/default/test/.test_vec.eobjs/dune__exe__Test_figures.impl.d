test/test_figures.ml: Alcotest Filename Fun List Policy Repro_core Sys Unix Workload
