test/test_pte.mli:
