test/test_runner.ml: Alcotest Array List Policy Repro_core Unix Workload
