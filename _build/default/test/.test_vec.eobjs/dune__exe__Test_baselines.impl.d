test/test_baselines.ml: Alcotest Engine Hashtbl List Mem Policy Printf Testsupport
