test/test_zipf.ml: Alcotest Array Engine Float Printf QCheck QCheck_alcotest Workload
