test/test_compress.ml: Alcotest Float Hashtbl List Printf Swapdev
