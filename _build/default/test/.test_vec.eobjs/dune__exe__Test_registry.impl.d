test/test_registry.ml: Alcotest List Option Policy String Testsupport
