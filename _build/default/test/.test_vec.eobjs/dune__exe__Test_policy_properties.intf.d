test/test_policy_properties.mli:
