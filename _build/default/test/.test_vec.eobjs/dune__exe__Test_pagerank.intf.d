test/test_pagerank.mli:
