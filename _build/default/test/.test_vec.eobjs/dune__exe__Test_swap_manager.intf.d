test/test_swap_manager.mli:
