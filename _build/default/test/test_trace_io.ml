module C = Workload.Chunk
module T = Workload.Trace
module IO = Workload.Trace_io

let sample_steps =
  [|
    [|
      C.Chunk (C.chunk ~cpu_ns:500 (C.Range { start = 0; len = 8; stride = 2 }));
      C.Barrier;
      C.Chunk
        (C.chunk ~write:true ~read_prefix:1 ~latency_class:1 (C.Pages [| 3; 7; 11 |]));
    |];
    [| C.Barrier; C.Chunk (C.chunk (C.Single 42)) |];
  |]

let roundtrip steps footprint =
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      IO.save_file path ~footprint steps;
      IO.load_file path)

let drain w tid =
  let acc = ref [] in
  let rec go () =
    match T.next w ~tid with
    | C.Finished -> ()
    | s ->
      acc := s :: !acc;
      go ()
  in
  go ();
  List.rev !acc

let test_roundtrip () =
  let w = roundtrip sample_steps 100 in
  Alcotest.(check int) "threads" 2 (T.threads w);
  Alcotest.(check int) "footprint" 100 (T.footprint_pages w);
  Alcotest.(check bool) "thread 0 stream preserved" true
    (drain w 0 = Array.to_list sample_steps.(0));
  Alcotest.(check bool) "thread 1 stream preserved" true
    (drain w 1 = Array.to_list sample_steps.(1))

let test_capture_then_save () =
  (* Capture a real workload, serialize it, reload it: the replay must
     behave identically on the machine. *)
  let fresh () =
    Workload.Ycsb.create
      ~config:
        { Workload.Ycsb.default_config with Workload.Ycsb.items = 2_000;
          requests = 8_000; threads = 2 }
      ~variant:Workload.Ycsb.A
      ~rng:(Engine.Rng.create 5) ()
  in
  let captured =
    IO.capture (C.Packed ((module Workload.Ycsb), fresh ()))
  in
  let footprint = Workload.Ycsb.footprint_pages (fresh ()) in
  let replay = roundtrip captured footprint in
  let run workload =
    let cfg =
      {
        (Repro_core.Machine.default_config ~capacity_frames:(footprint / 2) ~seed:1)
        with
        Repro_core.Machine.kthread_jitter_ns = 0;
      }
    in
    Repro_core.Machine.run cfg
      ~policy:(Policy.Registry.create Policy.Registry.Clock)
      ~workload
  in
  let a = run (C.Packed ((module Workload.Ycsb), fresh ())) in
  let b = run (C.Packed ((module T), replay)) in
  Alcotest.(check int) "same faults" a.Repro_core.Machine.major_faults
    b.Repro_core.Machine.major_faults;
  Alcotest.(check int) "same runtime" a.Repro_core.Machine.runtime_ns
    b.Repro_core.Machine.runtime_ns

let test_malformed_rejected () =
  let check_fails content =
    let path = Filename.temp_file "trace" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let out = open_out path in
        output_string out content;
        close_out out;
        match IO.load_file path with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail ("should reject: " ^ content))
  in
  check_fails "0 chunk write=1 prefix=0 cpu=0 lat=-1 range 1 2 3\n";
  (* no headers *)
  check_fails "footprint 10\nthreads 1\n0 chunk write=x prefix=0 cpu=0 lat=-1 single 1\n";
  check_fails "footprint 10\nthreads 1\n5 barrier\n";
  check_fails "threads 1\n"

let test_comments_and_blanks_ignored () =
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let out = open_out path in
      output_string out "# hello\n\nfootprint 5\nthreads 1\n\n# mid\n0 barrier\n";
      close_out out;
      let w = IO.load_file path in
      Alcotest.(check bool) "one barrier" true (T.next w ~tid:0 = C.Barrier))

let () =
  Alcotest.run "trace_io"
    [
      ( "unit",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "capture/save/replay" `Quick test_capture_then_save;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
          Alcotest.test_case "comments ignored" `Quick test_comments_and_blanks_ignored;
        ] );
    ]
