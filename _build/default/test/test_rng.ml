module R = Engine.Rng

let test_determinism () =
  let a = R.create 123 and b = R.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (R.bits64 a) (R.bits64 b)
  done

let test_seeds_differ () =
  let a = R.create 1 and b = R.create 2 in
  Alcotest.(check bool) "different streams" true (R.bits64 a <> R.bits64 b)

let test_copy_independent () =
  let a = R.create 9 in
  let b = R.copy a in
  Alcotest.(check int64) "copy aligned" (R.bits64 a) (R.bits64 b);
  ignore (R.bits64 a);
  (* b not advanced by a's draw *)
  let a2 = R.bits64 a and b2 = R.bits64 b in
  Alcotest.(check bool) "diverged" true (a2 <> b2)

let test_int_range () =
  let rng = R.create 5 in
  for _ = 1 to 10_000 do
    let v = R.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (R.int rng 0))

let test_int_in () =
  let rng = R.create 5 in
  for _ = 1 to 1000 do
    let v = R.int_in rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "inclusive range" true (v >= -5 && v <= 5)
  done

let test_int_uniformity () =
  (* Chi-square-ish sanity: 10 buckets, 100k draws, each within 20% of
     expectation. *)
  let rng = R.create 77 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = R.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d count %d" i c)
        true
        (c > n / 10 * 8 / 10 && c < n / 10 * 12 / 10))
    counts

let test_float_range () =
  let rng = R.create 11 in
  for _ = 1 to 10_000 do
    let v = R.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bool_probability () =
  let rng = R.create 13 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if R.bool rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "rate %.3f near 0.3" rate) true
    (Float.abs (rate -. 0.3) < 0.01)

let test_gaussian_moments () =
  let rng = R.create 17 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> R.gaussian rng ~mu:3.0 ~sigma:2.0) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs /. float_of_int n
  in
  Alcotest.(check bool) "mean" true (Float.abs (mean -. 3.0) < 0.05);
  Alcotest.(check bool) "variance" true (Float.abs (var -. 4.0) < 0.15)

let test_exponential_mean () =
  let rng = R.create 19 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = R.exponential rng ~mean:5.0 in
    Alcotest.(check bool) "nonnegative" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.0) < 0.2)

let test_jitter_bounds () =
  let rng = R.create 23 in
  for _ = 1 to 1000 do
    let v = R.jitter rng 0.1 in
    Alcotest.(check bool) "in [0.9, 1.1)" true (v >= 0.9 && v < 1.1)
  done

let test_shuffle_permutes () =
  let rng = R.create 29 in
  let a = Array.init 100 (fun i -> i) in
  R.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 (fun i -> i)) sorted;
  Alcotest.(check bool) "actually moved" true (a <> Array.init 100 (fun i -> i))

let test_split_independent () =
  let parent = R.create 31 in
  let c1 = R.split parent in
  let c2 = R.split parent in
  Alcotest.(check bool) "children differ" true (R.bits64 c1 <> R.bits64 c2)

let prop_int_nonnegative =
  QCheck.Test.make ~name:"int is in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = R.create seed in
      let v = R.int rng bound in
      v >= 0 && v < bound)

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "bool probability" `Quick test_bool_probability;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
          Alcotest.test_case "split independent" `Quick test_split_independent;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_int_nonnegative ]);
    ]
