module P = Mem.Pte

let test_empty () =
  Alcotest.(check bool) "not present" false (P.present P.empty);
  Alcotest.(check bool) "not swapped" false (P.swapped P.empty);
  Alcotest.(check bool) "not accessed" false (P.accessed P.empty)

let test_mapped () =
  let pte = P.mapped ~pfn:123 ~file_backed:true in
  Alcotest.(check bool) "present" true (P.present pte);
  Alcotest.(check int) "pfn" 123 (P.pfn pte);
  Alcotest.(check bool) "file" true (P.file_backed pte);
  Alcotest.(check bool) "clean" false (P.dirty pte);
  Alcotest.(check bool) "idle" false (P.accessed pte)

let test_accessed_dirty_bits () =
  let pte = P.mapped ~pfn:5 ~file_backed:false in
  let pte = P.set_accessed pte in
  Alcotest.(check bool) "accessed" true (P.accessed pte);
  let pte = P.set_dirty pte in
  Alcotest.(check bool) "dirty" true (P.dirty pte);
  let pte = P.clear_accessed pte in
  Alcotest.(check bool) "accessed cleared" false (P.accessed pte);
  Alcotest.(check bool) "dirty preserved" true (P.dirty pte);
  Alcotest.(check int) "pfn preserved" 5 (P.pfn (P.clear_dirty pte))

let test_swap_roundtrip () =
  let pte = P.set_dirty (P.set_accessed (P.mapped ~pfn:77 ~file_backed:true)) in
  let swapped = P.to_swapped pte ~slot:999 in
  Alcotest.(check bool) "swapped" true (P.swapped swapped);
  Alcotest.(check bool) "not present" false (P.present swapped);
  Alcotest.(check int) "slot" 999 (P.swap_slot swapped);
  Alcotest.(check bool) "file flag survives" true (P.file_backed swapped);
  Alcotest.(check bool) "accessed cleared" false (P.accessed swapped);
  Alcotest.(check bool) "dirty cleared" false (P.dirty swapped);
  let back = P.to_mapped swapped ~pfn:42 in
  Alcotest.(check int) "remapped pfn" 42 (P.pfn back);
  Alcotest.(check bool) "file flag still there" true (P.file_backed back)

let test_wrong_state_raises () =
  Alcotest.check_raises "pfn of empty" (Invalid_argument "Pte.pfn: entry not present")
    (fun () -> ignore (P.pfn P.empty));
  Alcotest.check_raises "slot of mapped"
    (Invalid_argument "Pte.swap_slot: entry not swapped") (fun () ->
      ignore (P.swap_slot (P.mapped ~pfn:1 ~file_backed:false)))

let test_large_payload () =
  let pte = P.mapped ~pfn:123_456_789 ~file_backed:false in
  Alcotest.(check int) "big pfn" 123_456_789 (P.pfn pte)

let prop_flags_independent =
  QCheck.Test.make ~name:"bit operations touch only their flag" ~count:300
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (pfn, fb) ->
      let pte = P.mapped ~pfn ~file_backed:fb in
      let pte = P.set_accessed pte in
      P.pfn pte = pfn && P.file_backed pte = fb && not (P.dirty pte)
      && P.accessed (P.set_dirty pte)
      && not (P.accessed (P.clear_accessed pte)))

let prop_swap_preserves_slot =
  QCheck.Test.make ~name:"swap slot roundtrips" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (pfn, slot) ->
      let pte = P.mapped ~pfn ~file_backed:false in
      P.swap_slot (P.to_swapped pte ~slot) = slot)

let () =
  Alcotest.run "pte"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "mapped" `Quick test_mapped;
          Alcotest.test_case "accessed/dirty" `Quick test_accessed_dirty_bits;
          Alcotest.test_case "swap roundtrip" `Quick test_swap_roundtrip;
          Alcotest.test_case "wrong state raises" `Quick test_wrong_state_raises;
          Alcotest.test_case "large payload" `Quick test_large_payload;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_flags_independent; prop_swap_preserves_slot ] );
    ]
