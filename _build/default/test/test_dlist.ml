module D = Structures.Dlist

let test_basic () =
  let d = D.create ~nodes:8 ~lists:2 in
  Alcotest.(check int) "nodes" 8 (D.nodes d);
  Alcotest.(check int) "lists" 2 (D.lists d);
  Alcotest.(check bool) "empty" true (D.is_empty d 0);
  D.push_head d ~list:0 ~node:3;
  D.push_head d ~list:0 ~node:5;
  Alcotest.(check int) "size" 2 (D.size d 0);
  Alcotest.(check (option int)) "head" (Some 5) (D.head d 0);
  Alcotest.(check (option int)) "tail" (Some 3) (D.tail d 0);
  Alcotest.(check (option int)) "list_of" (Some 0) (D.list_of d 3);
  D.check_invariants d

let test_push_tail_order () =
  let d = D.create ~nodes:4 ~lists:1 in
  D.push_tail d ~list:0 ~node:0;
  D.push_tail d ~list:0 ~node:1;
  D.push_tail d ~list:0 ~node:2;
  Alcotest.(check (option int)) "head" (Some 0) (D.head d 0);
  Alcotest.(check (option int)) "pop tail" (Some 2) (D.pop_tail d 0);
  Alcotest.(check (option int)) "pop tail again" (Some 1) (D.pop_tail d 0);
  D.check_invariants d

let test_remove_middle () =
  let d = D.create ~nodes:4 ~lists:1 in
  List.iter (fun node -> D.push_tail d ~list:0 ~node) [ 0; 1; 2; 3 ];
  D.remove d ~node:2;
  Alcotest.(check int) "size" 3 (D.size d 0);
  Alcotest.(check (option int)) "list_of removed" None (D.list_of d 2);
  Alcotest.(check (option int)) "pop" (Some 3) (D.pop_tail d 0);
  Alcotest.(check (option int)) "pop" (Some 1) (D.pop_tail d 0);
  D.check_invariants d

let test_double_insert_rejected () =
  let d = D.create ~nodes:4 ~lists:2 in
  D.push_head d ~list:0 ~node:1;
  Alcotest.check_raises "reinsert"
    (Invalid_argument "Dlist.push_head: node already on a list") (fun () ->
      D.push_head d ~list:1 ~node:1)

let test_move_between_lists () =
  let d = D.create ~nodes:4 ~lists:2 in
  D.push_head d ~list:0 ~node:1;
  D.move_head d ~list:1 ~node:1;
  Alcotest.(check int) "src empty" 0 (D.size d 0);
  Alcotest.(check (option int)) "dst" (Some 1) (D.head d 1);
  (* moving a detached node is an insert *)
  D.move_tail d ~list:1 ~node:2;
  Alcotest.(check (option int)) "tail" (Some 2) (D.tail d 1);
  D.check_invariants d

let test_iter_from_tail () =
  let d = D.create ~nodes:4 ~lists:1 in
  List.iter (fun node -> D.push_tail d ~list:0 ~node) [ 0; 1; 2 ];
  let order = ref [] in
  D.iter_from_tail d ~list:0 (fun n -> order := n :: !order);
  Alcotest.(check (list int)) "tail-to-head" [ 0; 1; 2 ] !order

let test_next_towards_head () =
  let d = D.create ~nodes:4 ~lists:1 in
  List.iter (fun node -> D.push_tail d ~list:0 ~node) [ 0; 1; 2 ];
  Alcotest.(check (option int)) "neighbour of 2" (Some 1) (D.next_towards_head d 2);
  Alcotest.(check (option int)) "neighbour of 0" None (D.next_towards_head d 0)

let test_splice () =
  let d = D.create ~nodes:6 ~lists:2 in
  List.iter (fun node -> D.push_tail d ~list:0 ~node) [ 0; 1; 2 ];
  List.iter (fun node -> D.push_tail d ~list:1 ~node) [ 3; 4 ];
  D.splice_all d ~src:0 ~dst:1;
  Alcotest.(check int) "src drained" 0 (D.size d 0);
  Alcotest.(check int) "dst grew" 5 (D.size d 1);
  D.check_invariants d

(* Random operation sequences keep the structure consistent. *)
let prop_random_ops =
  QCheck.Test.make ~name:"random ops preserve invariants" ~count:100
    QCheck.(list (pair (int_bound 3) (pair (int_bound 15) (int_bound 3))))
    (fun ops ->
      let d = D.create ~nodes:16 ~lists:4 in
      List.iter
        (fun (op, (node, list)) ->
          match op with
          | 0 -> D.move_head d ~list ~node
          | 1 -> D.move_tail d ~list ~node
          | 2 -> D.remove d ~node
          | _ -> ignore (D.pop_tail d list))
        ops;
      D.check_invariants d;
      (* Total population equals nodes attached to some list. *)
      let total = List.init 4 (D.size d) |> List.fold_left ( + ) 0 in
      let attached = ref 0 in
      for n = 0 to 15 do
        if D.list_of d n <> None then incr attached
      done;
      total = !attached)

let () =
  Alcotest.run "dlist"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "push_tail order" `Quick test_push_tail_order;
          Alcotest.test_case "remove middle" `Quick test_remove_middle;
          Alcotest.test_case "double insert rejected" `Quick test_double_insert_rejected;
          Alcotest.test_case "move between lists" `Quick test_move_between_lists;
          Alcotest.test_case "iter from tail" `Quick test_iter_from_tail;
          Alcotest.test_case "next towards head" `Quick test_next_towards_head;
          Alcotest.test_case "splice" `Quick test_splice;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_ops ]);
    ]
