module P = Structures.Pid

let test_proportional () =
  let pid = P.create ~kp:2.0 ~setpoint:10.0 () in
  let out = P.update pid ~measurement:6.0 ~dt:1.0 in
  Alcotest.(check (float 1e-9)) "kp * error" 8.0 out;
  Alcotest.(check (float 1e-9)) "output stored" 8.0 (P.output pid)

let test_integral_accumulates () =
  let pid = P.create ~kp:0.0 ~ki:1.0 ~setpoint:1.0 () in
  let o1 = P.update pid ~measurement:0.0 ~dt:1.0 in
  let o2 = P.update pid ~measurement:0.0 ~dt:1.0 in
  Alcotest.(check (float 1e-9)) "first" 1.0 o1;
  Alcotest.(check (float 1e-9)) "second" 2.0 o2

let test_integral_windup_clamped () =
  let pid = P.create ~kp:0.0 ~ki:1.0 ~integral_limit:3.0 ~setpoint:1.0 () in
  for _ = 1 to 100 do
    ignore (P.update pid ~measurement:0.0 ~dt:1.0)
  done;
  Alcotest.(check (float 1e-9)) "clamped" 3.0 (P.output pid)

let test_derivative () =
  let pid = P.create ~kp:0.0 ~kd:1.0 ~setpoint:0.0 () in
  ignore (P.update pid ~measurement:0.0 ~dt:1.0);
  let out = P.update pid ~measurement:(-2.0) ~dt:1.0 in
  (* error went 0 -> 2, derivative = 2 *)
  Alcotest.(check (float 1e-9)) "derivative" 2.0 out

let test_reset () =
  let pid = P.create ~kp:1.0 ~ki:1.0 ~setpoint:5.0 () in
  ignore (P.update pid ~measurement:0.0 ~dt:1.0);
  P.reset pid;
  Alcotest.(check (float 1e-9)) "output reset" 0.0 (P.output pid);
  let out = P.update pid ~measurement:0.0 ~dt:1.0 in
  Alcotest.(check (float 1e-9)) "fresh integral" 10.0 out

let test_setpoint_change () =
  let pid = P.create ~setpoint:1.0 () in
  P.set_setpoint pid 3.0;
  Alcotest.(check (float 1e-9)) "setpoint" 3.0 (P.setpoint pid);
  let out = P.update pid ~measurement:1.0 ~dt:1.0 in
  Alcotest.(check (float 1e-9)) "error uses new setpoint" 2.0 out

let test_bad_dt () =
  let pid = P.create ~setpoint:0.0 () in
  Alcotest.check_raises "dt must be positive"
    (Invalid_argument "Pid.update: dt must be positive") (fun () ->
      ignore (P.update pid ~measurement:0.0 ~dt:0.0))

(* A pure-P controller drives a simple first-order plant toward the
   setpoint. *)
let test_converges_on_plant () =
  let pid = P.create ~kp:0.5 ~setpoint:1.0 () in
  let state = ref 0.0 in
  for _ = 1 to 200 do
    let u = P.update pid ~measurement:!state ~dt:1.0 in
    state := !state +. (0.5 *. u)
  done;
  Alcotest.(check bool) "converged" true (Float.abs (!state -. 1.0) < 0.01)

let prop_zero_error_zero_p_output =
  QCheck.Test.make ~name:"measurement at setpoint gives zero P output" ~count:100
    QCheck.(float_bound_exclusive 100.0)
    (fun sp ->
      let pid = P.create ~kp:3.0 ~setpoint:sp () in
      Float.abs (P.update pid ~measurement:sp ~dt:1.0) < 1e-9)

let () =
  Alcotest.run "pid"
    [
      ( "unit",
        [
          Alcotest.test_case "proportional" `Quick test_proportional;
          Alcotest.test_case "integral accumulates" `Quick test_integral_accumulates;
          Alcotest.test_case "windup clamped" `Quick test_integral_windup_clamped;
          Alcotest.test_case "derivative" `Quick test_derivative;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "setpoint change" `Quick test_setpoint_change;
          Alcotest.test_case "bad dt" `Quick test_bad_dt;
          Alcotest.test_case "converges on plant" `Quick test_converges_on_plant;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_zero_error_zero_p_output ]);
    ]
