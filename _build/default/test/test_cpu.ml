module C = Engine.Cpu

let test_no_contention () =
  let cpu = C.create ~hw_threads:4 in
  C.run_begin cpu;
  Alcotest.(check int) "runnable" 1 (C.runnable cpu);
  Alcotest.(check int) "no stretch" 1000 (C.scale cpu 1000);
  Alcotest.(check (float 1e-9)) "load" 1.0 (C.load cpu);
  C.run_end cpu

let test_contention_stretches () =
  let cpu = C.create ~hw_threads:2 in
  for _ = 1 to 6 do
    C.run_begin cpu
  done;
  Alcotest.(check (float 1e-9)) "load 3x" 3.0 (C.load cpu);
  Alcotest.(check int) "stretched" 3000 (C.scale cpu 1000);
  for _ = 1 to 6 do
    C.run_end cpu
  done;
  Alcotest.(check int) "empty again" 0 (C.runnable cpu)

let test_at_capacity_no_stretch () =
  let cpu = C.create ~hw_threads:12 in
  for _ = 1 to 12 do
    C.run_begin cpu
  done;
  Alcotest.(check int) "exactly at capacity" 500 (C.scale cpu 500)

let test_underflow_rejected () =
  let cpu = C.create ~hw_threads:1 in
  Alcotest.check_raises "underflow"
    (Invalid_argument "Cpu.run_end: no runnable entities") (fun () -> C.run_end cpu)

let test_busy_accounting () =
  let cpu = C.create ~hw_threads:2 in
  C.charge cpu 100;
  C.charge cpu 250;
  C.charge cpu (-5);
  Alcotest.(check int) "busy" 350 (C.busy_ns cpu)

let test_zero_work () =
  let cpu = C.create ~hw_threads:2 in
  C.run_begin cpu;
  Alcotest.(check int) "zero" 0 (C.scale cpu 0);
  Alcotest.(check int) "negative clamps" 0 (C.scale cpu (-10));
  C.run_end cpu

let test_bad_create () =
  Alcotest.check_raises "zero threads"
    (Invalid_argument "Cpu.create: hw_threads must be positive") (fun () ->
      ignore (C.create ~hw_threads:0))

let prop_scale_monotone_in_load =
  QCheck.Test.make ~name:"more runnable never shrinks wall time" ~count:200
    QCheck.(pair (int_range 1 8) (int_range 1 1_000_000))
    (fun (hw, work) ->
      let cpu = C.create ~hw_threads:hw in
      let prev = ref 0 in
      let ok = ref true in
      for _ = 1 to 3 * hw do
        C.run_begin cpu;
        let w = C.scale cpu work in
        if w < !prev then ok := false;
        prev := w
      done;
      !ok)

let () =
  Alcotest.run "cpu"
    [
      ( "unit",
        [
          Alcotest.test_case "no contention" `Quick test_no_contention;
          Alcotest.test_case "contention stretches" `Quick test_contention_stretches;
          Alcotest.test_case "at capacity" `Quick test_at_capacity_no_stretch;
          Alcotest.test_case "underflow rejected" `Quick test_underflow_rejected;
          Alcotest.test_case "busy accounting" `Quick test_busy_accounting;
          Alcotest.test_case "zero work" `Quick test_zero_work;
          Alcotest.test_case "bad create" `Quick test_bad_create;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_scale_monotone_in_load ]);
    ]
