module TM = Tiering.Tier_machine
module TR = Tiering.Tier_registry
module MI = Tiering.Migration_intf
module C = Workload.Chunk

let trace_workload ?(footprint = 128) lists =
  C.Packed
    ((module Workload.Trace), Workload.Trace.of_page_lists ~footprint lists)

let config ?(fast = 32) ?(slow = 128) () =
  {
    (TM.default_config ~fast_frames:fast ~slow_frames:slow ~seed:11) with
    TM.kthread_jitter_ns = 0;
  }

let run ?fast ?slow ~policy lists =
  TM.run (config ?fast ?slow ()) ~policy:(TR.create policy)
    ~workload:(trace_workload lists)

let seq n = Array.init n (fun i -> i)

let test_static_placement () =
  (* 48 pages, 32 fast frames: first 32 land fast, the rest slow. *)
  let r = run ~policy:TR.Static [ seq 48; seq 48 ] in
  Alcotest.(check int) "cold touches" 48 r.TM.cold_touches;
  Alcotest.(check int) "fast resident" 32 r.TM.fast_resident;
  Alcotest.(check int) "slow resident" 16 r.TM.slow_resident;
  Alcotest.(check int) "no migrations" 0 (r.TM.promotions + r.TM.demotions);
  (* Second pass: 32 fast + 16 slow touches. *)
  Alcotest.(check int) "fast touches" 32 r.TM.fast_touches;
  Alcotest.(check int) "slow touches" 16 r.TM.slow_touches

let test_slow_touches_cost_more () =
  let all_fast = run ~fast:128 ~slow:64 ~policy:TR.Static [ seq 48; seq 48 ] in
  let half_slow = run ~fast:24 ~slow:128 ~policy:TR.Static [ seq 48; seq 48 ] in
  Alcotest.(check bool) "slow placement slower" true
    (half_slow.TM.runtime_ns > all_fast.TM.runtime_ns)

let test_capacity_check () =
  Alcotest.check_raises "tiers too small"
    (Invalid_argument "Tier_machine.run: tiers smaller than the footprint")
    (fun () ->
      ignore
        (TM.run (config ~fast:4 ~slow:4 ()) ~policy:(TR.create TR.Static)
           ~workload:(trace_workload ~footprint:128 [ seq 16 ])))

(* A skewed workload: 16 hot pages touched constantly, 100 cold pages
   touched once after placement fills the fast tier with cold pages. *)
let skew_steps =
  (* Cold pages 16..115 first (fill fast with junk), then hot 0..15
     hammered repeatedly. *)
  Array.init 100 (fun i -> 16 + i)
  :: List.concat_map
       (fun _ -> [ Array.init 16 (fun i -> i) ])
       (List.init 60 (fun i -> i))

let test_tpp_promotes_hot_set () =
  let static = run ~fast:32 ~slow:128 ~policy:TR.Static skew_steps in
  let tpp = run ~fast:32 ~slow:128 ~policy:TR.Tpp skew_steps in
  Alcotest.(check bool) "tpp promoted something" true (tpp.TM.promotions > 0);
  Alcotest.(check bool) "tpp demoted to make room" true (tpp.TM.demotions > 0);
  Alcotest.(check bool)
    (Printf.sprintf "tpp slow share %.2f < static %.2f" (TM.slow_fraction tpp)
       (TM.slow_fraction static))
    true
    (TM.slow_fraction tpp < TM.slow_fraction static);
  Alcotest.(check bool) "tpp faster" true (tpp.TM.runtime_ns < static.TM.runtime_ns)

let test_thermostat_migrates () =
  (* Thermostat is epoch-based, so the trial must span several epochs of
     virtual time: attach compute to each hot pass. *)
  (* Hot pages 0-15 get their own page-table region; the cold filler
     lives in regions of its own (Thermostat classifies per region). *)
  let steps =
    [|
      Array.of_list
        (C.Chunk (C.chunk (C.Pages (Array.init 100 (fun i -> 64 + i))))
        :: List.init 120 (fun _ ->
               C.Chunk
                 (C.chunk ~cpu_ns:2_000_000 (C.Pages (Array.init 16 (fun i -> i))))));
    |]
  in
  let w =
    Workload.Trace.create
      {
        Workload.Trace.steps;
        footprint = 192;
        klass = (fun _ -> Swapdev.Compress.Numeric);
        file_backed_pages = (fun _ -> false);
      }
  in
  let r =
    TM.run (config ~fast:32 ~slow:192 ()) ~policy:(TR.create TR.Thermostat)
      ~workload:(C.Packed ((module Workload.Trace), w))
  in
  Alcotest.(check bool) "sampled" true (List.assoc "samples_armed" r.TM.policy_stats > 0);
  Alcotest.(check bool) "hint faults observed" true (r.TM.hint_faults > 0);
  Alcotest.(check bool) "promoted hot regions" true (r.TM.promotions > 0)

let test_autonuma_cannot_demote () =
  let r = run ~fast:32 ~slow:128 ~policy:TR.Autonuma skew_steps in
  Alcotest.(check int) "no demotions ever" 0 r.TM.demotions;
  (* Fast tier was filled by cold pages; promotions must fail. *)
  Alcotest.(check int) "no promotions possible" 0 r.TM.promotions;
  Alcotest.(check bool) "failed promotions recorded" true (r.TM.failed_promotions > 0)

let test_conservation () =
  List.iter
    (fun policy ->
      let r = run ~fast:32 ~slow:128 ~policy skew_steps in
      Alcotest.(check int)
        (TR.name policy ^ ": residency = footprint")
        116
        (r.TM.fast_resident + r.TM.slow_resident);
      Alcotest.(check bool)
        (TR.name policy ^ ": fast within capacity")
        true (r.TM.fast_resident <= 32))
    TR.all

let test_registry () =
  List.iter
    (fun n ->
      match TR.of_name n with
      | Some spec -> Alcotest.(check string) n n (TR.name spec)
      | None -> Alcotest.fail n)
    TR.known_names;
  Alcotest.(check bool) "unknown" true (TR.of_name "nope" = None)

let test_determinism () =
  let a = run ~policy:TR.Tpp skew_steps in
  let b = run ~policy:TR.Tpp skew_steps in
  Alcotest.(check int) "same runtime" a.TM.runtime_ns b.TM.runtime_ns;
  Alcotest.(check int) "same promotions" a.TM.promotions b.TM.promotions

let () =
  Alcotest.run "tiering"
    [
      ( "machine",
        [
          Alcotest.test_case "static placement" `Quick test_static_placement;
          Alcotest.test_case "slow cost" `Quick test_slow_touches_cost_more;
          Alcotest.test_case "capacity check" `Quick test_capacity_check;
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "policies",
        [
          Alcotest.test_case "tpp promotes hot set" `Quick test_tpp_promotes_hot_set;
          Alcotest.test_case "thermostat migrates" `Quick test_thermostat_migrates;
          Alcotest.test_case "autonuma cannot demote" `Quick test_autonuma_cannot_demote;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
    ]
