module Y = Workload.Ycsb
module C = Workload.Chunk

let small_config =
  { Y.default_config with Y.items = 800; requests = 4_000; threads = 4 }

let make variant = Y.create ~config:small_config ~variant ~rng:(Engine.Rng.create 3) ()

(* Drain one thread, returning (#load chunks, #requests by class, barriers). *)
let drain w tid =
  let loads = ref 0 and reads = ref 0 and writes = ref 0 and barriers = ref 0 in
  let rec go () =
    match Y.next w ~tid with
    | C.Finished -> ()
    | C.Barrier ->
      incr barriers;
      go ()
    | C.Chunk c ->
      if c.C.latency_class = C.read_class then incr reads
      else if c.C.latency_class = C.write_class then incr writes
      else incr loads;
      go ()
  in
  go ();
  (!loads, !reads, !writes, !barriers)

let test_structure () =
  let w = make Y.A in
  Alcotest.(check int) "threads" 4 (Y.threads w);
  Alcotest.(check bool) "footprint sane" true (Y.footprint_pages w > 0);
  let loads, reads, writes, barriers = drain w 0 in
  Alcotest.(check bool) "load phase present" true (loads > 0);
  Alcotest.(check int) "one barrier after load" 1 barriers;
  Alcotest.(check int) "requests per thread" 1000 (reads + writes)

let test_update_fractions () =
  Alcotest.(check (float 1e-9)) "A" 0.5 (Y.update_fraction Y.A);
  Alcotest.(check (float 1e-9)) "B" 0.05 (Y.update_fraction Y.B);
  Alcotest.(check (float 1e-9)) "C" 0.0 (Y.update_fraction Y.C)

let test_mix_matches_variant () =
  let check variant expected tolerance =
    let w = make variant in
    let _, reads, writes, _ = drain w 1 in
    let frac = float_of_int writes /. float_of_int (reads + writes) in
    Alcotest.(check bool)
      (Printf.sprintf "%s write frac %.3f ~ %.2f" (Y.variant_name variant) frac expected)
      true
      (Float.abs (frac -. expected) < tolerance)
  in
  check Y.A 0.5 0.05;
  check Y.B 0.05 0.03;
  check Y.C 0.0 0.0001

let test_requests_touch_meta_then_item () =
  let w = make Y.C in
  (* skip load phase *)
  let rec to_requests () =
    match Y.next w ~tid:2 with
    | C.Chunk c when c.C.latency_class >= 0 -> c
    | C.Finished -> failwith "no requests"
    | _ -> to_requests ()
  in
  let c = to_requests () in
  (match c.C.pages with
  | C.Pages [| meta; item |] ->
    Alcotest.(check bool) "meta page" true (Workload.Kv_store.is_meta_page (Y.store w) meta);
    Alcotest.(check bool) "item page" true
      (not (Workload.Kv_store.is_meta_page (Y.store w) item))
  | _ -> Alcotest.fail "request should touch exactly two pages");
  Alcotest.(check int) "meta page read-only on update" 1 c.C.read_prefix

let test_zipf_skew_in_requests () =
  let w = make Y.C in
  let counts = Hashtbl.create 256 in
  let rec go n =
    if n > 0 then
      match Y.next w ~tid:3 with
      | C.Chunk c when c.C.latency_class >= 0 ->
        (match c.C.pages with
        | C.Pages pages ->
          let item_page = pages.(1) in
          Hashtbl.replace counts item_page
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts item_page))
        | _ -> ());
        go (n - 1)
      | C.Finished -> ()
      | _ -> go n
  in
  go 1000;
  let max_count = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  (* zipf: the hottest page gets far more than uniform share *)
  let uniform = 1000 / (small_config.Y.items / small_config.Y.items_per_page) in
  Alcotest.(check bool)
    (Printf.sprintf "hot page %d >> uniform %d" max_count uniform)
    true
    (max_count > 3 * uniform)

let test_all_pages_in_footprint () =
  let w = make Y.A in
  let fp = Y.footprint_pages w in
  for tid = 0 to 3 do
    let rec go () =
      match Y.next w ~tid with
      | C.Finished -> ()
      | C.Barrier -> go ()
      | C.Chunk c ->
        C.iter_pages
          (fun p -> if p < 0 || p >= fp then Alcotest.fail "page out of range")
          c.C.pages;
        go ()
    in
    go ()
  done

let () =
  Alcotest.run "ycsb"
    [
      ( "unit",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "update fractions" `Quick test_update_fractions;
          Alcotest.test_case "mix matches variant" `Quick test_mix_matches_variant;
          Alcotest.test_case "request pages" `Quick test_requests_touch_meta_then_item;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew_in_requests;
          Alcotest.test_case "pages in footprint" `Quick test_all_pages_in_footprint;
        ] );
    ]
