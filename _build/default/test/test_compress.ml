module C = Swapdev.Compress

let all_klasses = C.[ Zero; Columnar; Graph_csr; Numeric; Kv_item; Random ]

let test_ratios_in_range () =
  List.iter
    (fun k ->
      for page = 0 to 999 do
        let r = C.ratio k ~page_key:page ~seed:7 in
        Alcotest.(check bool)
          (Printf.sprintf "%s page %d in (0,1]" (C.klass_name k) page)
          true
          (r > 0.0 && r <= 1.0)
      done)
    all_klasses

let test_deterministic () =
  let r1 = C.ratio C.Columnar ~page_key:42 ~seed:3 in
  let r2 = C.ratio C.Columnar ~page_key:42 ~seed:3 in
  Alcotest.(check (float 1e-12)) "same" r1 r2

let test_varies_by_page () =
  let distinct = Hashtbl.create 16 in
  for page = 0 to 99 do
    Hashtbl.replace distinct (C.ratio C.Numeric ~page_key:page ~seed:1) ()
  done;
  Alcotest.(check bool) "many distinct ratios" true (Hashtbl.length distinct > 10)

let test_class_ordering () =
  (* Averages should respect the content-class ordering. *)
  let avg k =
    let sum = ref 0.0 in
    for page = 0 to 999 do
      sum := !sum +. C.ratio k ~page_key:page ~seed:9
    done;
    !sum /. 1000.0
  in
  let zero = avg C.Zero and col = avg C.Columnar and rand = avg C.Random in
  Alcotest.(check bool) "zero < columnar" true (zero < col);
  Alcotest.(check bool) "columnar < random" true (col < rand);
  Alcotest.(check bool) "random incompressible" true (rand > 0.9)

let test_empirical_mean_matches () =
  List.iter
    (fun k ->
      let sum = ref 0.0 in
      let n = 2000 in
      for page = 0 to n - 1 do
        sum := !sum +. C.ratio k ~page_key:page ~seed:5
      done;
      let mean = !sum /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "%s mean %.3f near %.3f" (C.klass_name k) mean (C.mean_ratio k))
        true
        (Float.abs (mean -. C.mean_ratio k) < 0.05))
    all_klasses

let () =
  Alcotest.run "compress"
    [
      ( "unit",
        [
          Alcotest.test_case "ratios in range" `Quick test_ratios_in_range;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "varies by page" `Quick test_varies_by_page;
          Alcotest.test_case "class ordering" `Quick test_class_ordering;
          Alcotest.test_case "empirical means" `Quick test_empirical_mean_matches;
        ] );
    ]
