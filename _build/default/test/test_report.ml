module R = Repro_core.Report

let test_formatters () =
  Alcotest.(check string) "f2" "3.14" (R.f2 3.14159);
  Alcotest.(check string) "f3" "0.042" (R.f3 0.0419);
  Alcotest.(check string) "fnorm" "1.25x" (R.fnorm 1.2501);
  Alcotest.(check string) "fsec large" "120s" (R.fsec 120.4);
  Alcotest.(check string) "fsec mid" "3.5s" (R.fsec 3.5);
  Alcotest.(check string) "fsec small" "0.123s" (R.fsec 0.1234)

let test_fcount_separators () =
  Alcotest.(check string) "small" "999" (R.fcount 999.0);
  Alcotest.(check string) "thousands" "1,000" (R.fcount 1000.0);
  Alcotest.(check string) "millions" "12,345,678" (R.fcount 12345678.0)

let test_fns_units () =
  Alcotest.(check string) "ns" "250ns" (R.fns 250.0);
  Alcotest.(check string) "us" "2.5us" (R.fns 2500.0);
  Alcotest.(check string) "ms" "7.50ms" (R.fns 7.5e6);
  Alcotest.(check string) "s" "1.20s" (R.fns 1.2e9)

(* The table renderer goes to stdout; capture it via a temp redirect. *)
let capture f =
  let path = Filename.temp_file "report" ".txt" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    f;
  let inc = open_in path in
  let n = in_channel_length inc in
  let s = really_input_string inc n in
  close_in inc;
  Sys.remove path;
  s

let test_table_alignment () =
  let out =
    capture (fun () ->
        R.table ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "longer"; "22" ] ])
  in
  let lines = String.split_on_char '\n' (String.trim out) in
  (match lines with
  | header :: sep :: _ ->
    Alcotest.(check int) "separator width matches header" (String.length header)
      (String.length sep)
  | _ -> Alcotest.fail "expected at least header + separator");
  Alcotest.(check int) "four lines" 4 (List.length lines)

let test_table_ragged_rows () =
  (* Rows narrower than the header must not crash. *)
  let out = capture (fun () -> R.table ~header:[ "a"; "b"; "c" ] [ [ "x" ] ]) in
  Alcotest.(check bool) "rendered" true (String.length out > 0)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_section_banner () =
  let out = capture (fun () -> R.section "Hello") in
  Alcotest.(check bool) "contains title" true
    (contains_substring out "=== Hello ===")

let () =
  Alcotest.run "report"
    [
      ( "unit",
        [
          Alcotest.test_case "formatters" `Quick test_formatters;
          Alcotest.test_case "fcount" `Quick test_fcount_separators;
          Alcotest.test_case "fns units" `Quick test_fns_units;
          Alcotest.test_case "table alignment" `Quick test_table_alignment;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
          Alcotest.test_case "section banner" `Quick test_section_banner;
        ] );
    ]
