type variant = A | B | C

let variant_name = function A -> "ycsb-a" | B -> "ycsb-b" | C -> "ycsb-c"

let update_fraction = function A -> 0.5 | B -> 0.05 | C -> 0.0

type config = {
  items : int;
  requests : int;
  threads : int;
  zipf_exponent : float;
  items_per_page : int;
  request_cpu_ns : int;
  load_batch : int;
}

let default_config =
  {
    items = 110_000;
    requests = 1_100_000;
    threads = 4;
    zipf_exponent = 0.99;
    items_per_page = 8;
    request_cpu_ns = 400_000;
    load_batch = 64;
  }

type phase = Loading of int (* next item in this thread's slice *) | Running | Done

type thread_state = {
  mutable phase : phase;
  mutable remaining : int; (* requests left in the run phase *)
  slice_lo : int;
  slice_hi : int; (* exclusive *)
  rng : Engine.Rng.t;
}

type t = {
  config : config;
  variant : variant;
  store : Kv_store.t;
  zipf : Zipf.t;
  states : thread_state array;
}

let workload_name = "ycsb"

let create ?(config = default_config) ~variant ~rng () =
  let store = Kv_store.create ~items_per_page:config.items_per_page ~items:config.items () in
  let zipf = Zipf.create ~n:config.items ~exponent:config.zipf_exponent in
  let per_thread = config.items / config.threads in
  let req_per_thread = config.requests / config.threads in
  let states =
    Array.init config.threads (fun tid ->
        let slice_lo = tid * per_thread in
        let slice_hi =
          if tid = config.threads - 1 then config.items else slice_lo + per_thread
        in
        {
          phase = Loading slice_lo;
          remaining = req_per_thread;
          slice_lo;
          slice_hi;
          rng = Engine.Rng.split rng;
        })
  in
  { config; variant; store; zipf; states }

let store t = t.store

let threads t = t.config.threads

let footprint_pages t = Kv_store.footprint_pages t.store

let page_klass t page =
  if Kv_store.is_meta_page t.store page then Swapdev.Compress.Numeric
  else Swapdev.Compress.Kv_item

let file_backed _t _page = false

(* One load chunk: insert a batch of consecutive items (slab append) and
   touch their metadata pages. *)
let load_chunk t st next_item =
  let batch = min t.config.load_batch (st.slice_hi - next_item) in
  let pages = Hashtbl.create 16 in
  for i = next_item to next_item + batch - 1 do
    Hashtbl.replace pages (Kv_store.item_page t.store i) ();
    Hashtbl.replace pages (Kv_store.meta_page t.store ~key:i) ()
  done;
  let page_list = Hashtbl.fold (fun p () acc -> p :: acc) pages [] in
  st.phase <- Loading (next_item + batch);
  Chunk.chunk ~write:true
    ~cpu_ns:(batch * t.config.request_cpu_ns / 4)
    (Chunk.Pages (Array.of_list (List.sort compare page_list)))

let request_chunk t st =
  let item = Zipf.sample t.zipf st.rng in
  let is_update = Engine.Rng.bool st.rng (update_fraction t.variant) in
  st.remaining <- st.remaining - 1;
  if st.remaining <= 0 then st.phase <- Done;
  let pages =
    [| Kv_store.meta_page t.store ~key:item; Kv_store.item_page t.store item |]
  in
  (* An update rewrites the item in place but only reads the hash page. *)
  Chunk.chunk ~write:is_update ~read_prefix:1 ~cpu_ns:t.config.request_cpu_ns
    ~latency_class:(if is_update then Chunk.write_class else Chunk.read_class)
    (Chunk.Pages pages)

let next t ~tid =
  let st = t.states.(tid) in
  match st.phase with
  | Loading next_item ->
    if next_item >= st.slice_hi then begin
      st.phase <- Running;
      (* Rendezvous: measurement starts when every thread finishes loading. *)
      Chunk.Barrier
    end
    else Chunk.Chunk (load_chunk t st next_item)
  | Running ->
    if st.remaining <= 0 then begin
      st.phase <- Done;
      Chunk.Finished
    end
    else Chunk.Chunk (request_chunk t st)
  | Done -> Chunk.Finished
