(** Memcached-like slab layout: maps items to virtual pages.

    Models the memory geometry that matters for paging: items pack
    several to a page in slab order (inserted sequentially at load time),
    and each request also touches a hash-table metadata page determined
    by the key's hash.  No actual values are stored — only the page
    arithmetic the machine needs. *)

type t

val create : ?items_per_page:int -> ?meta_fraction:float -> items:int -> unit -> t
(** [items_per_page] defaults to 8 (512-byte items in 4 KB pages);
    [meta_fraction] (default 0.06) sizes the hash-table region relative
    to the item region. *)

val items : t -> int

val footprint_pages : t -> int

val meta_pages : t -> int

val item_pages : t -> int

val item_page : t -> int -> int
(** Page holding an item id.  @raise Invalid_argument when out of
    range. *)

val meta_page : t -> key:int -> int
(** Hash-table page consulted when looking up [key]. *)

val is_meta_page : t -> int -> bool
