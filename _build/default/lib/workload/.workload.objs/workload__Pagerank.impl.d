lib/workload/pagerank.ml: Array Chunk Graph Hashtbl List Script Swapdev
