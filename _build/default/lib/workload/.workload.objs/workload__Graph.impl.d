lib/workload/graph.ml: Array Engine Zipf
