lib/workload/multi.ml: Array Chunk List
