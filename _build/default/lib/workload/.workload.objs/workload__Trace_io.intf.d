lib/workload/trace_io.mli: Chunk Trace
