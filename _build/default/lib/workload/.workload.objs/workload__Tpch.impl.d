lib/workload/tpch.ml: Array Chunk Engine List Script Swapdev Zipf
