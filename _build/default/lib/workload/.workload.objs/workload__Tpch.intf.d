lib/workload/tpch.mli: Chunk Engine
