lib/workload/graph.mli:
