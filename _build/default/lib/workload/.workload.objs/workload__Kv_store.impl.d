lib/workload/kv_store.ml:
