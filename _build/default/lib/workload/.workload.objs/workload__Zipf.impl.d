lib/workload/zipf.ml: Engine Float
