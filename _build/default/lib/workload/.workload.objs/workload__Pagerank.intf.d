lib/workload/pagerank.mli: Chunk Graph
