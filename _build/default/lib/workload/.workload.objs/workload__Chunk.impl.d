lib/workload/chunk.ml: Array Swapdev
