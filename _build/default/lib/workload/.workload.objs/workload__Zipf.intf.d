lib/workload/zipf.mli: Engine
