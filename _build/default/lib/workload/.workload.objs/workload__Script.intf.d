lib/workload/script.mli: Chunk
