lib/workload/ycsb.mli: Chunk Engine Kv_store
