lib/workload/trace.ml: Array Chunk List Script Swapdev
