lib/workload/kv_store.mli:
