lib/workload/script.ml: Array Chunk
