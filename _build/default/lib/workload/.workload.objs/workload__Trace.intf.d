lib/workload/trace.mli: Chunk Swapdev
