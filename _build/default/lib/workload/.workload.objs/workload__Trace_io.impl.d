lib/workload/trace_io.ml: Array Chunk Fun List Option Printf String Swapdev Trace
