lib/workload/ycsb.ml: Array Chunk Engine Hashtbl Kv_store List Swapdev Zipf
