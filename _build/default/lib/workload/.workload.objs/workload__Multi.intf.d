lib/workload/multi.mli: Chunk
