type config = {
  n : int;
  avg_degree : int;
  deg_exponent : float;
  target_exponent : float;
}

let default_config =
  { n = 524_288; avg_degree = 8; deg_exponent = 0.9; target_exponent = 1.2 }

type t = {
  config : config;
  degree : int array;
  offsets : int array; (* length n+1 *)
  perm : int array;    (* zipf rank -> vertex id *)
  target_zipf : Zipf.t;
  seed : int;
  m : int;
  max_degree : int;
}

let generate ?(config = default_config) ~seed () =
  if config.n <= 0 then invalid_arg "Graph.generate: n must be positive";
  if config.avg_degree <= 0 then invalid_arg "Graph.generate: avg_degree";
  let rng = Engine.Rng.create seed in
  let n = config.n in
  (* Random permutation: which vertex ids are the hubs. *)
  let perm = Array.init n (fun i -> i) in
  Engine.Rng.shuffle rng perm;
  (* In-degree of the vertex at zipf rank r: c / (r+1)^theta, with c set
     so the total lands on n * avg_degree. *)
  let theta = config.deg_exponent in
  let harmonic = ref 0.0 in
  for r = 1 to n do
    harmonic := !harmonic +. (1.0 /. (float_of_int r ** theta))
  done;
  let m_target = n * config.avg_degree in
  let c = float_of_int m_target /. !harmonic in
  let degree = Array.make n 0 in
  for r = 0 to n - 1 do
    let d = max 1 (int_of_float (c /. (float_of_int (r + 1) ** theta))) in
    degree.(perm.(r)) <- d
  done;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + degree.(v)
  done;
  let max_degree = Array.fold_left max 0 degree in
  {
    config;
    degree;
    offsets;
    perm;
    target_zipf = Zipf.create ~n ~exponent:config.target_exponent;
    seed;
    m = offsets.(n);
    max_degree;
  }

let n t = t.config.n

let m t = t.m

let degree t v =
  if v < 0 || v >= t.config.n then invalid_arg "Graph.degree: vertex out of range";
  t.degree.(v)

let offset t v =
  if v < 0 || v > t.config.n then invalid_arg "Graph.offset: vertex out of range";
  t.offsets.(v)

let max_degree t = t.max_degree

(* Neighbour endpoints are zipfian over raw vertex ids: out-hubs cluster
   at low ids, as in datasets ordered by popularity or crawl time.  This
   gives the rank array a hot head and a long lukewarm tail — the pages
   whose eviction timing drives PageRank's runtime variance.  (In-degree
   hubs, i.e. where the *work* lands, are permuted per trial.) *)
let iter_in_neighbors t v f =
  let d = degree t v in
  let rng = Engine.Rng.create (t.seed lxor ((v + 1) * 0x5DEECE66D)) in
  for _ = 1 to d do
    f (Zipf.sample t.target_zipf rng)
  done
