(** PageRank over a synthetic power-law graph (GAP-style, paper §IV).

    Pull-based iterations: each thread owns contiguous vertex blocks; a
    block's work streams its CSR slice, gathers the source ranks of its
    in-neighbours (irregular reads into the rank array), and writes its
    destination ranks.  An iteration ends with a global barrier, so an
    iteration's duration is the {e maximum} over threads — faults on the
    critical (high-degree) thread hurt disproportionately, the paper's
    explanation for PageRank's fault/runtime decoupling.

    Source and destination rank arrays swap roles every iteration.

    Layout: [offsets | neighbours | rank A | rank B].  Plans (block →
    pages touched) are cached per [(config, seed)] so the 25 trials of a
    configuration rebuild nothing. *)

type config = {
  graph : Graph.config;
  threads : int;
  iterations : int;
  block_vertices : int;
  cpu_per_edge_ns : int;
  rank_bytes : int;
  edge_bytes : int;
  page_bytes : int;
}

val default_config : config
(** 524 288 vertices, ~4.2 M edges, 12 threads, 10 iterations:
    a ~11.5 k-page (≈45 MB at 4 KB) footprint — the paper's 12–16 GB
    scaled by 1/256. *)

include Chunk.WORKLOAD

val create : ?config:config -> seed:int -> unit -> t

val graph_of : t -> Graph.t

val rank_pages : t -> int
(** Pages of one rank array. *)
