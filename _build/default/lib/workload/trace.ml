type config = {
  steps : Chunk.step array array;
  footprint : int;
  klass : int -> Swapdev.Compress.klass;
  file_backed_pages : int -> bool;
}

type t = {
  config : config;
  script : Script.t;
}

let workload_name = "trace"

let create config = { config; script = Script.create config.steps }

let of_page_lists ?(write = false) ~footprint lists =
  let steps =
    [|
      Array.of_list
        (List.map (fun pages -> Chunk.Chunk (Chunk.chunk ~write (Chunk.Pages pages))) lists);
    |]
  in
  create
    {
      steps;
      footprint;
      klass = (fun _ -> Swapdev.Compress.Numeric);
      file_backed_pages = (fun _ -> false);
    }

let threads t = Script.threads t.script

let footprint_pages t = t.config.footprint

let page_klass t page = t.config.klass page

let file_backed t page = t.config.file_backed_pages page

let next t ~tid = Script.next t.script ~tid
