(** Multi-tenant composition: several workloads sharing one machine.

    The paper's future-work section (§VI-D) calls out multi-tenancy as an
    untested axis.  This combinator lays the tenants' address spaces side
    by side in one virtual address space, merges their thread streams,
    and exposes per-tenant barrier groups so one tenant's barriers never
    block another (pass {!barrier_groups} to the machine config). *)

type t

include Chunk.WORKLOAD with type t := t

val create : Chunk.packed list -> t
(** @raise Invalid_argument on an empty list. *)

val tenants : t -> int

val barrier_groups : t -> int array
(** Global thread index -> tenant index. *)

val tenant_of_thread : t -> int -> int

val tenant_page_range : t -> int -> int * int
(** [(first_page, last_page)] of a tenant's slice of the shared address
    space, inclusive. *)
