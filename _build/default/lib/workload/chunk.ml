(** The access-granularity contract between workloads and the machine.

    Workloads emit {e chunks} — batches of page touches plus attached
    compute — rather than individual references, so trials with hundreds
    of thousands of faults simulate in well under a second.  The machine
    touches each page (setting PTE accessed/dirty bits), services faults
    through the swap device, and charges the chunk's compute through the
    contention model.

    A thread's stream is a sequence of {!step}s: [Chunk] to execute,
    [Barrier] to rendezvous with every other thread of the workload (how
    PageRank iterations and Spark stages synchronize), [Finished] when
    the thread is done. *)

type pages =
  | Range of { start : int; len : int; stride : int }
      (** [len] pages starting at [start], [stride] pages apart *)
  | Pages of int array  (** explicit page list, touched in order *)
  | Single of int

type t = {
  pages : pages;
  write : bool;        (** touches set the dirty bit *)
  read_prefix : int;   (** this many leading pages stay read-only even
                           when [write] is set (e.g. an index page
                           consulted before an in-place update) *)
  cpu_ns : int;        (** compute attached to this chunk *)
  latency_class : int; (** [-1]: not a request; [0]: read request;
                           [1]: write request — the machine records the
                           chunk's latency under this class *)
}

type step =
  | Chunk of t
  | Barrier
  | Finished

let read_class = 0
let write_class = 1

let chunk ?(write = false) ?(read_prefix = 0) ?(cpu_ns = 0) ?(latency_class = -1) pages =
  { pages; write; read_prefix; cpu_ns; latency_class }

let page_count = function
  | Range { len; _ } -> len
  | Pages a -> Array.length a
  | Single _ -> 1

let iter_pages f = function
  | Range { start; len; stride } ->
    for i = 0 to len - 1 do
      f (start + (i * stride))
    done
  | Pages a -> Array.iter f a
  | Single p -> f p

(** A workload drives [threads] concurrent streams over a virtual
    address space of [footprint_pages] pages. *)
module type WORKLOAD = sig
  type t

  val workload_name : string

  val threads : t -> int

  val footprint_pages : t -> int

  val page_klass : t -> int -> Swapdev.Compress.klass
  (** Compressibility class of a page, for ZRAM modelling. *)

  val file_backed : t -> int -> bool
  (** Whether a page belongs to the page cache (drives MG-LRU's tier
      logic).  The paper's workloads are effectively anonymous-only. *)

  val next : t -> tid:int -> step
  (** Produce thread [tid]'s next step.  Must be called again only after
      the machine finishes the previous step (or the barrier clears). *)
end

type packed = Packed : (module WORKLOAD with type t = 'a) * 'a -> packed

let packed_name (Packed ((module W), _)) = W.workload_name

let packed_threads (Packed ((module W), w)) = W.threads w

let packed_footprint (Packed ((module W), w)) = W.footprint_pages w

let packed_klass (Packed ((module W), w)) page = W.page_klass w page

let packed_file_backed (Packed ((module W), w)) page = W.file_backed w page

let packed_next (Packed ((module W), w)) ~tid = W.next w ~tid
