let write_pages out = function
  | Chunk.Range { start; len; stride } -> Printf.fprintf out "range %d %d %d" start len stride
  | Chunk.Pages a ->
    Printf.fprintf out "pages %s"
      (String.concat "," (Array.to_list (Array.map string_of_int a)))
  | Chunk.Single p -> Printf.fprintf out "single %d" p

let save out ~footprint steps =
  Printf.fprintf out "# pagerepl-trace v1\n";
  Printf.fprintf out "footprint %d\n" footprint;
  Printf.fprintf out "threads %d\n" (Array.length steps);
  Array.iteri
    (fun tid stream ->
      Array.iter
        (fun step ->
          match step with
          | Chunk.Barrier -> Printf.fprintf out "%d barrier\n" tid
          | Chunk.Finished -> ()
          | Chunk.Chunk c ->
            Printf.fprintf out "%d chunk write=%d prefix=%d cpu=%d lat=%d " tid
              (if c.Chunk.write then 1 else 0)
              c.Chunk.read_prefix c.Chunk.cpu_ns c.Chunk.latency_class;
            write_pages out c.Chunk.pages;
            output_char out '\n')
        stream)
    steps

let save_file path ~footprint steps =
  let out = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out out)
    (fun () -> save out ~footprint steps)

let fail_line lineno msg = failwith (Printf.sprintf "Trace_io: line %d: %s" lineno msg)

let parse_kv lineno s key =
  match String.split_on_char '=' s with
  | [ k; v ] when k = key -> (
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail_line lineno ("bad integer in " ^ s))
  | _ -> fail_line lineno (Printf.sprintf "expected %s=<int>, got %s" key s)

let parse_pages lineno words =
  match words with
  | [ "range"; start; len; stride ] -> (
    match (int_of_string_opt start, int_of_string_opt len, int_of_string_opt stride) with
    | Some start, Some len, Some stride -> Chunk.Range { start; len; stride }
    | _ -> fail_line lineno "bad range")
  | [ "pages"; csv ] ->
    let parts = String.split_on_char ',' csv in
    Chunk.Pages
      (Array.of_list
         (List.map
            (fun s ->
              match int_of_string_opt s with
              | Some n -> n
              | None -> fail_line lineno ("bad page id " ^ s))
            parts))
  | [ "single"; p ] -> (
    match int_of_string_opt p with
    | Some p -> Chunk.Single p
    | None -> fail_line lineno "bad single page")
  | _ -> fail_line lineno "unknown pages spec"

let load inc =
  let footprint = ref (-1) and threads = ref (-1) in
  let streams = ref [||] in
  let lineno = ref 0 in
  (try
     while true do
       incr lineno;
       let line = String.trim (input_line inc) in
       if line = "" || String.length line > 0 && line.[0] = '#' then ()
       else begin
         match String.split_on_char ' ' line with
         | [ "footprint"; n ] ->
           footprint := Option.value ~default:(-1) (int_of_string_opt n)
         | [ "threads"; n ] ->
           threads := Option.value ~default:(-1) (int_of_string_opt n);
           if !threads < 0 then fail_line !lineno "bad thread count";
           streams := Array.make !threads []
         | tid :: rest -> (
           let tid =
             match int_of_string_opt tid with
             | Some t when t >= 0 && t < Array.length !streams -> t
             | _ -> fail_line !lineno "bad thread id (or missing threads header)"
           in
           match rest with
           | [ "barrier" ] -> !streams.(tid) <- Chunk.Barrier :: !streams.(tid)
           | "chunk" :: w :: prefix :: cpu :: lat :: pages_spec ->
             let write = parse_kv !lineno w "write" = 1 in
             let read_prefix = parse_kv !lineno prefix "prefix" in
             let cpu_ns = parse_kv !lineno cpu "cpu" in
             let latency_class = parse_kv !lineno lat "lat" in
             let pages = parse_pages !lineno pages_spec in
             !streams.(tid) <-
               Chunk.Chunk
                 (Chunk.chunk ~write ~read_prefix ~cpu_ns ~latency_class pages)
               :: !streams.(tid)
           | _ -> fail_line !lineno "unknown directive")
         | [] -> ()
       end
     done
   with End_of_file -> ());
  if !footprint <= 0 then failwith "Trace_io: missing or bad footprint header";
  if !threads < 0 then failwith "Trace_io: missing threads header";
  {
    Trace.steps = Array.map (fun l -> Array.of_list (List.rev l)) !streams;
    footprint = !footprint;
    klass = (fun _ -> Swapdev.Compress.Numeric);
    file_backed_pages = (fun _ -> false);
  }

let load_file path =
  let inc = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in inc)
    (fun () -> Trace.create (load inc))

let capture packed =
  let threads = Chunk.packed_threads packed in
  Array.init threads (fun tid ->
      let acc = ref [] in
      let rec go () =
        match Chunk.packed_next packed ~tid with
        | Chunk.Finished -> ()
        | step ->
          acc := step :: !acc;
          go ()
      in
      go ();
      Array.of_list (List.rev !acc))
