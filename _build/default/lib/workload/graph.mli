(** Synthetic power-law graphs in implicit CSR form.

    In-degrees follow a zipfian law over a per-trial random permutation
    of vertex ids (so which thread owns the hubs varies across trials,
    like real graph orderings), and each vertex's in-neighbour list is
    regenerated deterministically on demand — the simulator only needs
    to know which rank pages a vertex's gather touches, so the edge list
    is never materialized.

    The degree skew is what gives PageRank the paper's signature
    behaviour: per-thread work varies with vertex degree, so iteration
    time is governed by straggler threads rather than total work
    (§V-B). *)

type t

type config = {
  n : int;               (** vertices *)
  avg_degree : int;
  deg_exponent : float;  (** zipf exponent of the in-degree law *)
  target_exponent : float;
      (** zipf exponent used when sampling neighbour endpoints *)
}

val default_config : config

val generate : ?config:config -> seed:int -> unit -> t

val n : t -> int

val m : t -> int
(** Total edges (sum of in-degrees). *)

val degree : t -> int -> int

val offset : t -> int -> int
(** Prefix sum of degrees: index of vertex [v]'s first edge; [offset t
    (n t)] = [m t]. *)

val max_degree : t -> int

val iter_in_neighbors : t -> int -> (int -> unit) -> unit
(** Stream vertex [v]'s in-neighbours; deterministic for a given
    [(seed, v)]. *)
