(** Precomputed per-thread step sequences.

    TPC-H and PageRank unfold into a fixed per-trial schedule of chunks
    and barriers at creation time; this cursor structure replays one
    sequence per thread. *)

type t

val create : Chunk.step array array -> t
(** One step array per thread.  A [Finished] sentinel is implicit at the
    end of each array. *)

val threads : t -> int

val next : t -> tid:int -> Chunk.step

val remaining : t -> tid:int -> int
