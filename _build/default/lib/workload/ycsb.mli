(** YCSB core workloads A, B, C over the slab KV store.

    Matches the paper's setup (§IV): load the cache with items, then
    issue a fixed number of zipfian-distributed requests from the
    server's worker threads, recording per-request latency so the
    harness can build the tail distributions of Figures 3, 8 and 12.

    - A: 50 % reads / 50 % updates
    - B: 95 % reads / 5 % updates
    - C: 100 % reads

    Scaled 1/100 from the paper's 11 M items / 110 M requests by
    default. *)

type variant = A | B | C

val variant_name : variant -> string

val update_fraction : variant -> float

type config = {
  items : int;
  requests : int;        (** total across all threads *)
  threads : int;         (** memcached default: 4 workers *)
  zipf_exponent : float; (** YCSB default 0.99 *)
  items_per_page : int;
  request_cpu_ns : int;  (** service compute per request *)
  load_batch : int;      (** items inserted per load-phase chunk *)
}

val default_config : config

include Chunk.WORKLOAD

val create : ?config:config -> variant:variant -> rng:Engine.Rng.t -> unit -> t

val store : t -> Kv_store.t
