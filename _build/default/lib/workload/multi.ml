type t = {
  parts : Chunk.packed array;
  page_base : int array;   (* tenant -> first page *)
  thread_map : (int * int) array; (* global tid -> (tenant, local tid) *)
  groups : int array;
  footprint : int;
}

let workload_name = "multi"

let create parts =
  if parts = [] then invalid_arg "Multi.create: no tenants";
  let parts = Array.of_list parts in
  let n = Array.length parts in
  let page_base = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun i p ->
      page_base.(i) <- !total;
      total := !total + Chunk.packed_footprint p)
    parts;
  let thread_map =
    Array.concat
      (List.init n (fun i ->
           Array.init (Chunk.packed_threads parts.(i)) (fun local -> (i, local))))
  in
  let groups = Array.map fst thread_map in
  { parts; page_base; thread_map; groups; footprint = !total }

let tenants t = Array.length t.parts

let threads t = Array.length t.thread_map

let footprint_pages t = t.footprint

let barrier_groups t = Array.copy t.groups

let tenant_of_thread t tid = fst t.thread_map.(tid)

let tenant_page_range t i =
  let last =
    if i + 1 < Array.length t.parts then t.page_base.(i + 1) - 1 else t.footprint - 1
  in
  (t.page_base.(i), last)

let tenant_of_page t page =
  (* Tenants are few; a linear scan is fine. *)
  let rec go i =
    if i + 1 >= Array.length t.page_base then i
    else if page < t.page_base.(i + 1) then i
    else go (i + 1)
  in
  go 0

let page_klass t page =
  let i = tenant_of_page t page in
  Chunk.packed_klass t.parts.(i) (page - t.page_base.(i))

let file_backed t page =
  let i = tenant_of_page t page in
  Chunk.packed_file_backed t.parts.(i) (page - t.page_base.(i))

let shift_pages base = function
  | Chunk.Range { start; len; stride } -> Chunk.Range { start = start + base; len; stride }
  | Chunk.Pages a -> Chunk.Pages (Array.map (fun p -> p + base) a)
  | Chunk.Single p -> Chunk.Single (p + base)

let next t ~tid =
  let tenant, local = t.thread_map.(tid) in
  match Chunk.packed_next t.parts.(tenant) ~tid:local with
  | Chunk.Finished -> Chunk.Finished
  | Chunk.Barrier -> Chunk.Barrier
  | Chunk.Chunk c ->
    Chunk.Chunk { c with Chunk.pages = shift_pages t.page_base.(tenant) c.Chunk.pages }
