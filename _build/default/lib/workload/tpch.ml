type config = {
  table_pages : int;
  shuffle_pages : int;
  hash_pages : int;
  threads : int;
  queries : int;
  scan_chunk_pages : int;
  cpu_per_page_ns : int;
  probe_batch : int;
  window_min : float;
  hash_skew : float;
  sort_passes : int;
  dimension_pages : int;
      (** dimension tables at the front of the table region: small,
          zipf-probed by every stage of every query, so their warmth
          spans the whole spectrum from blazing to barely-reused *)
}

let default_config =
  {
    table_pages = 7_000;
    shuffle_pages = 4_500;
    hash_pages = 2_000;
    threads = 12;
    queries = 6;
    scan_chunk_pages = 32;
    cpu_per_page_ns = 12_000_000;
    probe_batch = 24;
    window_min = 0.6;
    hash_skew = 0.7;
    sort_passes = 2;
    dimension_pages = 1_200;
  }

type t = {
  config : config;
  script : Script.t;
  shuffle_base : int;
  hash_base : int;
  footprint : int;
}

let workload_name = "tpch"

(* Spark-SQL-style query plan: a scan stage streams the columnar table
   and materializes a shuffle partition; a sort/build stage makes
   [sort_passes] passes over that partition while building a hash table;
   a probe stage re-streams the table against the hash table and shuffle
   data; some queries end with an aggregation pass.  The shuffle
   partition and hash table are the reusable working set the replacement
   policy must protect from the table stream — per-thread work is
   balanced and stages end in barriers, which is why TPC-H runtime
   tracks its fault count so linearly (paper §V-A). *)
type stage_kind = Scan_shuffle | Sort_build | Probe | Aggregate

let stages_of_query qi =
  if qi mod 3 = 1 then [ Scan_shuffle; Sort_build; Probe; Aggregate ]
  else if qi mod 3 = 2 then [ Scan_shuffle; Probe ]
  else [ Scan_shuffle; Sort_build; Probe ]

type query_plan = {
  window_lo : int;
  window_len : int;
  shuffle_lo : int;   (* relative to the shuffle region *)
  shuffle_len : int;
  stages : stage_kind list;
}

(* Probe traffic interleaved with a scan chunk: half hash-table lookups,
   a quarter dimension-table lookups, a quarter revisits of this query's
   shuffle partition.  The zipf skews give these regions a continuous
   spectrum of reuse distances for the policies to discriminate. *)
let probe_chunk config rng ~zipfs ~shuffle_base ~hash_base ~plan ~write =
  let hash_zipf, dim_zipf = zipfs in
  let q = config.probe_batch / 4 in
  let pages =
    Array.init config.probe_batch (fun i ->
        if i < 2 * q then hash_base + Zipf.sample hash_zipf rng
        else if i < 3 * q then Zipf.sample dim_zipf rng
        else
          shuffle_base
          + ((plan.shuffle_lo + Engine.Rng.int rng plan.shuffle_len)
            mod config.shuffle_pages))
  in
  Chunk.chunk ~write
    ~cpu_ns:(config.probe_batch * config.cpu_per_page_ns / 8)
    (Chunk.Pages pages)

(* Emit chunks for a sequential pass over [lo, lo+len) (wrapping within
   [base, base+modulus)), interleaving [between] after each chunk. *)
let sequential_pass config ~push ~base ~modulus ~lo ~len ~write ?(between = fun () -> ())
    () =
  let pos = ref lo and remaining = ref len in
  while !remaining > 0 do
    let chunk_len = min config.scan_chunk_pages !remaining in
    let start = base + (!pos mod modulus) in
    let chunk_len = min chunk_len (modulus - (!pos mod modulus)) in
    push
      (Chunk.Chunk
         (Chunk.chunk ~write
            ~cpu_ns:(chunk_len * config.cpu_per_page_ns)
            (Chunk.Range { start; len = chunk_len; stride = 1 })));
    between ();
    pos := !pos + chunk_len;
    remaining := !remaining - chunk_len
  done

let stage_steps config rng ~zipfs ~shuffle_base ~hash_base ~plan ~tid kind =
  let acc = ref [] in
  let push s = acc := s :: !acc in
  let table_slice = plan.window_len / config.threads in
  let table_lo = plan.window_lo + (tid * table_slice) in
  let shuffle_slice = max 1 (plan.shuffle_len / config.threads) in
  let shuffle_lo = plan.shuffle_lo + (tid * shuffle_slice) in
  let probes ~write () =
    push
      (Chunk.Chunk
         (probe_chunk config rng ~zipfs ~shuffle_base ~hash_base ~plan ~write))
  in
  (match kind with
  | Scan_shuffle ->
    (* Stream the table slice with dimension/hash probes, then
       materialize the shuffle partition. *)
    sequential_pass config ~push ~base:0 ~modulus:config.table_pages ~lo:table_lo
      ~len:table_slice ~write:false ~between:(probes ~write:false) ();
    sequential_pass config ~push ~base:shuffle_base ~modulus:config.shuffle_pages
      ~lo:shuffle_lo ~len:shuffle_slice ~write:true ()
  | Sort_build ->
    (* Repeated passes over the shuffle partition (external-sort style),
       building the hash table as we go. *)
    for _pass = 1 to config.sort_passes do
      sequential_pass config ~push ~base:shuffle_base ~modulus:config.shuffle_pages
        ~lo:shuffle_lo ~len:shuffle_slice ~write:true ~between:(probes ~write:true) ()
    done
  | Probe ->
    (* Re-stream the table slice against the hash table, dimension
       tables and the shuffle partition. *)
    sequential_pass config ~push ~base:0 ~modulus:config.table_pages ~lo:table_lo
      ~len:table_slice ~write:false ~between:(probes ~write:false) ();
    sequential_pass config ~push ~base:shuffle_base ~modulus:config.shuffle_pages
      ~lo:shuffle_lo ~len:shuffle_slice ~write:false ()
  | Aggregate ->
    sequential_pass config ~push ~base:shuffle_base ~modulus:config.shuffle_pages
      ~lo:shuffle_lo ~len:shuffle_slice ~write:true ~between:(probes ~write:false) ());
  push Chunk.Barrier;
  List.rev !acc

let create ?(config = default_config) ~rng () =
  let shuffle_base = config.table_pages in
  let hash_base = shuffle_base + config.shuffle_pages in
  let footprint = hash_base + config.hash_pages in
  let zipfs =
    ( Zipf.create ~n:config.hash_pages ~exponent:config.hash_skew,
      Zipf.create ~n:(min config.dimension_pages config.table_pages) ~exponent:0.8 )
  in
  let queries =
    Array.init config.queries (fun qi ->
        let frac =
          config.window_min +. Engine.Rng.float rng (1.0 -. config.window_min)
        in
        let window_len = int_of_float (float_of_int config.table_pages *. frac) in
        let shuffle_len =
          min config.shuffle_pages (max config.threads (window_len / 2))
        in
        {
          window_lo = Engine.Rng.int rng config.table_pages;
          window_len;
          shuffle_lo = Engine.Rng.int rng config.shuffle_pages;
          shuffle_len;
          stages = stages_of_query qi;
        })
  in
  let thread_rngs = Array.init config.threads (fun _ -> Engine.Rng.split rng) in
  let steps =
    Array.init config.threads (fun tid ->
        let acc = ref [] in
        Array.iter
          (fun plan ->
            List.iter
              (fun kind ->
                acc :=
                  List.rev_append
                    (stage_steps config thread_rngs.(tid) ~zipfs ~shuffle_base
                       ~hash_base ~plan ~tid kind)
                    !acc)
              plan.stages)
          queries;
        Array.of_list (List.rev !acc))
  in
  { config; script = Script.create steps; shuffle_base; hash_base; footprint }

let threads t = t.config.threads

let footprint_pages t = t.footprint

let page_klass t page =
  if page < t.shuffle_base then Swapdev.Compress.Columnar
  else if page < t.hash_base then Swapdev.Compress.Columnar
  else Swapdev.Compress.Numeric

let file_backed _t _page = false

let next t ~tid = Script.next t.script ~tid

let hash_base t = t.hash_base

let shuffle_base t = t.shuffle_base
