(** Trace-replay workload: drive the machine from explicit step lists.

    Used by tests (deterministic access patterns against known-good
    fault counts) and by downstream users who want to replay their own
    application traces through the simulator. *)

type config = {
  steps : Chunk.step array array; (** one stream per thread *)
  footprint : int;
  klass : int -> Swapdev.Compress.klass;
  file_backed_pages : int -> bool;
}

include Chunk.WORKLOAD

val create : config -> t

val of_page_lists : ?write:bool -> footprint:int -> int array list -> t
(** Single-threaded convenience: each array becomes one read (or write)
    chunk, no barriers. *)
