type t = {
  steps : Chunk.step array array;
  cursors : int array;
}

let create steps = { steps; cursors = Array.make (Array.length steps) 0 }

let threads t = Array.length t.steps

let next t ~tid =
  if tid < 0 || tid >= threads t then invalid_arg "Script.next: bad thread id";
  let pos = t.cursors.(tid) in
  if pos >= Array.length t.steps.(tid) then Chunk.Finished
  else begin
    t.cursors.(tid) <- pos + 1;
    t.steps.(tid).(pos)
  end

let remaining t ~tid =
  if tid < 0 || tid >= threads t then invalid_arg "Script.remaining: bad thread id";
  max 0 (Array.length t.steps.(tid) - t.cursors.(tid))
