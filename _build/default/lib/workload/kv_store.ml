type t = {
  items : int;
  items_per_page : int;
  meta_pages : int;
  item_pages : int;
}

let create ?(items_per_page = 8) ?(meta_fraction = 0.06) ~items () =
  if items <= 0 then invalid_arg "Kv_store.create: items must be positive";
  if items_per_page <= 0 then invalid_arg "Kv_store.create: items_per_page";
  let item_pages = (items + items_per_page - 1) / items_per_page in
  let meta_pages = max 1 (int_of_float (float_of_int item_pages *. meta_fraction)) in
  { items; items_per_page; meta_pages; item_pages }

let items t = t.items

let meta_pages t = t.meta_pages

let item_pages t = t.item_pages

let footprint_pages t = t.meta_pages + t.item_pages

let item_page t item =
  if item < 0 || item >= t.items then invalid_arg "Kv_store.item_page: out of range";
  t.meta_pages + (item / t.items_per_page)

let hash_key key =
  let z = key * 0x45D9F3B in
  let z = (z lxor (z lsr 16)) * 0x45D9F3B in
  (z lxor (z lsr 16)) land max_int

let meta_page t ~key = hash_key key mod t.meta_pages

let is_meta_page t page = page >= 0 && page < t.meta_pages
