(** Plain-text serialization of workload traces.

    Lets downstream users capture a workload's step streams once and
    replay them later (or hand-author traces from an external profiler).
    Format, one line per step:

    {v
    # pagerepl-trace v1
    footprint 1024
    threads 2
    0 chunk write=0 prefix=0 cpu=4000 lat=-1 range 0 32 1
    0 chunk write=1 prefix=1 cpu=250 lat=1 pages 5,9,13
    0 barrier
    v}

    Thread ids must be in [0, threads); unlisted threads simply finish
    immediately. *)

val save : out_channel -> footprint:int -> Chunk.step array array -> unit

val save_file : string -> footprint:int -> Chunk.step array array -> unit

val load : in_channel -> Trace.config
(** @raise Failure on malformed input, with a line number. *)

val load_file : string -> Trace.t

val capture : Chunk.packed -> Chunk.step array array
(** Drain a workload into explicit step arrays (consumes the workload's
    cursors). *)
