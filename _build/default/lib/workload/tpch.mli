(** TPC-H-like analytics on a Spark-SQL-style stage engine (paper §IV).

    Queries decompose into barrier-separated stages of balanced parallel
    tasks — the execution structure the paper credits for TPC-H's tight
    faults↔runtime coupling: work per thread is nearly equal and
    synchronization is cheap, so total fault time divides evenly across
    threads and runtime tracks the fault count linearly (§V-A).

    Memory layout: [table | hash | scratch].  Each query scans a random
    contiguous window of the columnar table; {e build} stages write a
    hash region partition, {e probe} stages re-scan while reading hashed
    pages, and a short {e aggregate} stage touches scratch.

    Scaled 1/256 from the paper's 12–16 GB footprint. *)

type config = {
  table_pages : int;
  shuffle_pages : int;     (** intermediate (shuffle/sort) region *)
  hash_pages : int;        (** join hash-table region *)
  threads : int;
  queries : int;
  scan_chunk_pages : int;  (** pages per sequential scan chunk *)
  cpu_per_page_ns : int;   (** compute per scanned page *)
  probe_batch : int;       (** hash pages touched per interleaved chunk *)
  window_min : float;      (** min fraction of the table a query scans *)
  hash_skew : float;       (** zipf exponent of probe targets *)
  sort_passes : int;       (** passes over the shuffle partition per sort *)
  dimension_pages : int;   (** dimension tables at the front of the table
                               region, zipf-probed by every stage *)
}

val default_config : config
(** 7 000 table pages + 4 500 shuffle + 2 000 hash (~13.5 k pages,
    ≈53 MB), 12 threads, 6 queries. *)

include Chunk.WORKLOAD

val create : ?config:config -> rng:Engine.Rng.t -> unit -> t

val hash_base : t -> int

val shuffle_base : t -> int
