type t = int

let flag_present = 1
let flag_accessed = 2
let flag_dirty = 4
let flag_file = 8
let flag_swapped = 16
let payload_shift = 8
let flags_mask = (1 lsl payload_shift) - 1

let empty = 0

let present t = t land flag_present <> 0

let accessed t = t land flag_accessed <> 0

let dirty t = t land flag_dirty <> 0

let file_backed t = t land flag_file <> 0

let swapped t = t land flag_swapped <> 0

let payload t = t lsr payload_shift

let pfn t =
  if not (present t) then invalid_arg "Pte.pfn: entry not present";
  payload t

let swap_slot t =
  if not (swapped t) then invalid_arg "Pte.swap_slot: entry not swapped";
  payload t

let mapped ~pfn ~file_backed =
  (pfn lsl payload_shift) lor flag_present lor (if file_backed then flag_file else 0)

let set_accessed t = t lor flag_accessed

let clear_accessed t = t land lnot flag_accessed

let set_dirty t = t lor flag_dirty

let clear_dirty t = t land lnot flag_dirty

let to_swapped t ~slot =
  (slot lsl payload_shift) lor flag_swapped lor (t land flag_file)

let to_mapped t ~pfn =
  (pfn lsl payload_shift) lor flag_present lor (t land flag_file)

let pp fmt t =
  if present t then
    Format.fprintf fmt "pfn=%d%s%s%s" (pfn t)
      (if accessed t then " A" else "")
      (if dirty t then " D" else "")
      (if file_backed t then " F" else "")
  else if swapped t then Format.fprintf fmt "swap=%d" (swap_slot t)
  else Format.fprintf fmt "empty";
  ignore flags_mask
