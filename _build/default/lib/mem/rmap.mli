(** Reverse-map walks with cost accounting.

    Clock scans accessed bits by iterating physical frames and resolving
    each back to its PTE through the reverse map — an expensive
    pointer-based walk (paper §III-B).  MG-LRU's eviction walker pays the
    same price per candidate but amortizes it by spatially scanning the
    surrounding page-table region.  Every call returns the owning mapping
    along with the modelled cost so callers charge it to the CPU. *)

type result = {
  mapping : (int * int) option; (** (asid, vpn), if the frame is mapped *)
  cost_ns : int;
}

val walk : Frame_table.t -> costs:Costs.t -> pfn:int -> result

val walk_many : Frame_table.t -> costs:Costs.t -> pfns:int list -> result list * int
(** Batch walk; returns per-frame results and the summed cost. *)
