(** Page table entries as packed integers.

    Layout (one OCaml int per PTE):
    - bit 0: present (mapped to a physical frame)
    - bit 1: accessed — set by simulated hardware on every touch, cleared
      by policy scans, exactly like the x86 A bit the paper's policies
      consume (§II-A)
    - bit 2: dirty
    - bit 3: file-backed (page cache rather than anonymous)
    - bit 4: swapped (contents live in a swap slot)
    - bits 8+: payload — the physical frame number while present, the
      swap slot while swapped

    A PTE that is neither present nor swapped has never been populated:
    touching it is a zero-fill minor fault with no device I/O. *)

type t = int

val empty : t

val present : t -> bool

val accessed : t -> bool

val dirty : t -> bool

val file_backed : t -> bool

val swapped : t -> bool

val payload : t -> int
(** Frame number or swap slot, depending on state. *)

val pfn : t -> int
(** @raise Invalid_argument when not present. *)

val swap_slot : t -> int
(** @raise Invalid_argument when not swapped. *)

val mapped : pfn:int -> file_backed:bool -> t
(** Fresh present entry, accessed and dirty clear. *)

val set_accessed : t -> t

val clear_accessed : t -> t

val set_dirty : t -> t

val clear_dirty : t -> t

val to_swapped : t -> slot:int -> t
(** Unmap a present entry, recording its swap slot.  Keeps the
    file-backed flag; clears accessed/dirty. *)

val to_mapped : t -> pfn:int -> t
(** Map a swapped (or empty) entry to a frame.  Keeps the file-backed
    flag; accessed/dirty start clear. *)

val pp : Format.formatter -> t -> unit
