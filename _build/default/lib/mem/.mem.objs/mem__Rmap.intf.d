lib/mem/rmap.mli: Costs Frame_table
