lib/mem/frame_table.ml: Array
