lib/mem/phys_mem.ml: Array
