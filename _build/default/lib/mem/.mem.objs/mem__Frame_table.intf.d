lib/mem/frame_table.mli:
