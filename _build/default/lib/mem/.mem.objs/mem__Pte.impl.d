lib/mem/pte.ml: Format
