lib/mem/costs.ml: Format
