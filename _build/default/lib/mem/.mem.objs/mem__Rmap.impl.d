lib/mem/rmap.ml: Costs Frame_table List
