lib/mem/costs.mli: Format
