type result = {
  mapping : (int * int) option;
  cost_ns : int;
}

let walk frames ~costs ~pfn =
  { mapping = Frame_table.owner frames pfn; cost_ns = costs.Costs.rmap_walk_ns }

let walk_many frames ~costs ~pfns =
  let results = List.map (fun pfn -> walk frames ~costs ~pfn) pfns in
  let total = List.fold_left (fun acc r -> acc + r.cost_ns) 0 results in
  (results, total)
