let workloads = [ Runner.Tpch; Runner.Pagerank ]

let cells ~policy =
  List.map
    (fun workload ->
      let results = Runner.run_cell ~workload ~policy ~ratio:0.5 ~swap:Runner.Ssd in
      (workload, Runner.mean_runtime_s results, Runner.mean_faults results))
    workloads

let sweep_table ~rows =
  let header =
    "configuration"
    :: List.concat_map
         (fun w ->
           [ Runner.workload_kind_name w ^ " rt"; Runner.workload_kind_name w ^ " faults" ])
         workloads
  in
  Report.table ~header rows

let row_of label cell_list =
  label
  :: List.concat_map
       (fun (_w, rt, faults) -> [ Report.fsec rt; Report.fcount faults ])
       cell_list

let mglru_sweep ~label_of configs =
  List.map
    (fun config ->
      let policy = Policy.Registry.Mglru_custom config in
      row_of (label_of config) (cells ~policy))
    configs

let generations () =
  Report.section "Ablation: generation-window cap (SSD, 50%)";
  let configs =
    List.map
      (fun max_gens -> { Policy.Mglru.default_config with Policy.Mglru.max_gens })
      [ 2; 4; 8; 16; 1 lsl 14 ]
  in
  sweep_table
    ~rows:
      (row_of "clock (2 lists)" (cells ~policy:Policy.Registry.Clock)
      :: mglru_sweep
           ~label_of:(fun c ->
             Printf.sprintf "mglru max_gens=%d" c.Policy.Mglru.max_gens)
           configs);
  Report.note "Paper SV-B: the cap barely moves the means because promotion and";
  Report.note "eviction rules are unchanged - only the recency resolution grows."

let bloom_density () =
  Report.section "Ablation: Bloom-filter admission density (SSD, 50%)";
  let configs =
    List.map
      (fun shift ->
        { Policy.Mglru.default_config with Policy.Mglru.bloom_density_shift = shift })
      [ 0; 1; 3; 5 ]
  in
  sweep_table
    ~rows:
      (mglru_sweep
         ~label_of:(fun c ->
           Printf.sprintf "density >= 1/%d of region"
             (1 lsl c.Policy.Mglru.bloom_density_shift))
         configs);
  Report.note "Shift 0 admits only fully-accessed regions (filter nearly empty);";
  Report.note "large shifts admit everything (converging on Scan-All behaviour)."

let spatial_scan () =
  Report.section "Ablation: eviction-side spatial scan (SSD, 50%)";
  let configs =
    [
      ("look-around on", { Policy.Mglru.default_config with Policy.Mglru.spatial_scan = true });
      ("look-around off", { Policy.Mglru.default_config with Policy.Mglru.spatial_scan = false });
    ]
  in
  sweep_table
    ~rows:
      (List.map
         (fun (label, config) ->
           row_of label (cells ~policy:(Policy.Registry.Mglru_custom config)))
         configs);
  Report.note "Without the look-around, every rescue costs a full rmap walk - the";
  Report.note "Clock cost structure the paper says MG-LRU amortizes (SIII-C)."

let readahead () =
  Report.section "Ablation: swap readahead window (machine-level, SSD, 50%)";
  (* Readahead is a machine knob, so bypass the cached runner. *)
  let rows =
    List.map
      (fun window ->
        let cells =
          List.map
            (fun kind ->
              let workload = Runner.make_workload kind ~trial:0 in
              let footprint = Workload.Chunk.packed_footprint workload in
              let cfg =
                {
                  (Machine.default_config
                     ~capacity_frames:(footprint / 2)
                     ~seed:4242)
                  with
                  Machine.readahead = window;
                }
              in
              let r =
                Machine.run cfg
                  ~policy:(Policy.Registry.create Policy.Registry.Mglru_default)
                  ~workload
              in
              ( kind,
                float_of_int r.Machine.runtime_ns /. 1e9,
                float_of_int r.Machine.major_faults ))
            workloads
        in
        row_of (Printf.sprintf "window=%d" window) cells)
      [ 0; 2; 8; 32 ]
  in
  sweep_table ~rows;
  Report.note "Sequential regions benefit; the per-zone success heuristic keeps";
  Report.note "random regions from being polluted even at large windows."

let scan_probability () =
  Report.section "Ablation: Scan-Rand probability (SSD, 50%)";
  let configs =
    List.map
      (fun p ->
        Policy.Mglru.with_mode (Policy.Mglru.Scan_rand p) Policy.Mglru.default_config)
      [ 0.1; 0.25; 0.5; 0.75; 0.9 ]
  in
  sweep_table
    ~rows:
      (mglru_sweep
         ~label_of:(fun c ->
           match c.Policy.Mglru.scan_mode with
           | Policy.Mglru.Scan_rand p -> Printf.sprintf "p=%.2f" p
           | _ -> "?")
         configs);
  Report.note "The paper fixes p=0.5 and asks (SVI-C) whether principled randomness";
  Report.note "can replace the Bloom filter outright."

let run_all () =
  generations ();
  bloom_density ();
  spatial_scan ();
  readahead ();
  scan_probability ()
