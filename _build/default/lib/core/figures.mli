(** Reproductions of the paper's Figures 1-12.

    Each [figN] runs (or fetches from the trial cache) the grid cells the
    corresponding figure needs and prints the same series the paper
    plots: normalized means, joint runtime/fault distributions, tail
    latencies, quartile boxes.  [run_all] regenerates the entire
    evaluation section.  EXPERIMENTS.md records the paper-vs-measured
    comparison for every figure.

    Numeric data is also returned so tests and the bench harness can
    assert the paper's qualitative shapes without re-parsing text. *)

type cell = {
  workload : Runner.workload_kind;
  policy : Policy.Registry.spec;
  ratio : float;
  swap : Runner.swap_medium;
  results : Machine.result list;
  perf : float;
      (** mean runtime (s) for TPC-H/PageRank; mean request latency (ns)
          for YCSB — the metric Figure 1 normalizes *)
  mean_faults : float;
}

val cell :
  workload:Runner.workload_kind -> policy:Policy.Registry.spec -> ratio:float ->
  swap:Runner.swap_medium -> cell

val fig1 : unit -> (string * float * float) list
(** [(workload, mglru_perf/clock_perf, mglru_faults/clock_faults)] —
    SSD, 50 % ratio. *)

val fig2 : unit -> unit

val fig3 : unit -> unit

val fig4 : unit -> (string * string * float * float) list
(** [(workload, variant, perf/default, faults/default)]. *)

val fig5 : unit -> unit

val fig6 : unit -> unit

val fig7 : unit -> unit

val fig8 : unit -> unit

val fig9 : unit -> (string * string * float) list
(** [(workload, policy, perf/mglru)] under ZRAM at 50 %. *)

val fig10 : unit -> (string * string * float) list

val fig11 : unit -> (string * float * float) list
(** [(workload, runtime_zram/runtime_ssd, faults_zram/faults_ssd)] for
    default MG-LRU. *)

val fig12 : unit -> unit

val run : int -> unit
(** Run one figure by number.  @raise Invalid_argument outside 1-12. *)

val run_all : unit -> unit
