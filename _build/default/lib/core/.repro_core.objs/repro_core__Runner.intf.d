lib/core/runner.mli: Machine Policy Workload
