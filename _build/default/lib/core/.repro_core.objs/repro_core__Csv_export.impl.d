lib/core/csv_export.ml: Array Figures Filename Float Fun List Machine Policy Printf Runner Stats String Sys Workload
