lib/core/tier_study.ml: List Printf Report Runner Tiering Workload
