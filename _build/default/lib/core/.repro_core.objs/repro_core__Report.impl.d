lib/core/report.ml: Buffer Float List Printf String
