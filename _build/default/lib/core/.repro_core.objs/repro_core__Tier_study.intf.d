lib/core/tier_study.mli: Runner Tiering
