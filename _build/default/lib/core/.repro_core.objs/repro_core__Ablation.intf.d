lib/core/ablation.mli:
