lib/core/runner.ml: Array Engine Hashtbl List Machine Policy Printf String Sys Workload
