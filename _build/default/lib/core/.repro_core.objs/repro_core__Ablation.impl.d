lib/core/ablation.ml: List Machine Policy Printf Report Runner Workload
