lib/core/figures.mli: Machine Policy Runner
