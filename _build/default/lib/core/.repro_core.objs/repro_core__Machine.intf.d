lib/core/machine.mli: Mem Policy Swapdev Workload
