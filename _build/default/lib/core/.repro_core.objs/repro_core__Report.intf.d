lib/core/report.mli:
