lib/core/figures.ml: Array Float List Machine Policy Printf Report Runner Stats Workload
