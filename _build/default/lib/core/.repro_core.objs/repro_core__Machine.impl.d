lib/core/machine.ml: Array Engine List Mem Policy Structures Swapdev Workload
