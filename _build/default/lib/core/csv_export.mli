(** CSV export of every figure's underlying data, for external plotting.

    [export_all ~dir ()] writes one file per figure family into [dir]
    (created if missing):

    - [fig1.csv], [fig4.csv], [fig6.csv], [fig9.csv], [fig10.csv],
      [fig11.csv] — normalized means;
    - [fig2_points.csv], [fig5_points.csv] — per-trial (runtime, faults)
      joint-distribution points;
    - [fig3_tails.csv], [fig8_tails.csv], [fig12_tails.csv] — tail
      latency landmarks;
    - [fig7_box.csv] — per-policy fault-count quartile boxes.

    Cells come from the shared trial cache, so exporting after a figure
    run reuses its results. *)

val write : path:string -> header:string list -> string list list -> unit
(** Minimal CSV writer with quoting of commas/quotes/newlines. *)

val export_all : dir:string -> unit
