(** Seeded Bloom filters over integer keys.

    MG-LRU keeps two small Bloom filters per memory control group and uses
    them to remember which page-table regions contained recently-accessed
    entries, so the next aging pass can skip the rest of the address space
    (see paper §III-B).  This is a faithful stand-alone implementation:
    [k] independent hash functions derived from a seed, a power-of-two bit
    array, no deletions. *)

type t

val create : ?hashes:int -> bits:int -> seed:int -> unit -> t
(** [create ~bits ~seed ()] makes a filter with at least [bits] bits
    (rounded up to a power of two) and [hashes] hash functions
    (default 2, as in the kernel's implementation). *)

val bits : t -> int
(** Actual number of bits after rounding. *)

val hashes : t -> int

val add : t -> int -> unit

val mem : t -> int -> bool
(** Never returns [false] for a key that was [add]ed (no false
    negatives); may return [true] for keys never added. *)

val clear : t -> unit

val population : t -> int
(** Number of set bits. *)

val fill_ratio : t -> float
(** Fraction of bits set, in [0, 1]. *)

val false_positive_estimate : t -> float
(** [(fill_ratio t) ^ hashes]: the classic estimate of the current
    false-positive probability. *)
