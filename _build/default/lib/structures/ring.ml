type 'a t = {
  data : 'a array;
  mutable start : int; (* index of oldest element *)
  mutable len : int;
}

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity dummy; start = 0; len = 0 }

let capacity t = Array.length t.data

let length t = t.len

let push t x =
  let cap = capacity t in
  if t.len < cap then begin
    t.data.((t.start + t.len) mod cap) <- x;
    t.len <- t.len + 1
  end
  else begin
    t.data.(t.start) <- x;
    t.start <- (t.start + 1) mod cap
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get: index out of range";
  t.data.((t.start + i) mod capacity t)

let newest t = if t.len = 0 then None else Some (get t (t.len - 1))

let oldest t = if t.len = 0 then None else Some (get t 0)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let clear t =
  t.start <- 0;
  t.len <- 0

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)
