type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    let x = v.data.(v.len) in
    v.data.(v.len) <- v.dummy;
    Some x
  end

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len

let of_array ~dummy a =
  let n = Array.length a in
  let data = Array.make (max n 1) dummy in
  Array.blit a 0 data 0 n;
  { data; len = n; dummy }

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
