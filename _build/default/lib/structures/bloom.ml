type t = {
  data : Bytes.t;
  mask : int; (* bits - 1, bits a power of two *)
  hashes : int;
  seed : int;
  mutable population : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(hashes = 2) ~bits ~seed () =
  if bits <= 0 then invalid_arg "Bloom.create: bits must be positive";
  if hashes <= 0 then invalid_arg "Bloom.create: hashes must be positive";
  let bits = next_pow2 bits in
  { data = Bytes.make (bits / 8 + 1) '\000'; mask = bits - 1; hashes; seed; population = 0 }

let bits t = t.mask + 1

let hashes t = t.hashes

(* SplitMix64-style mixer (constants truncated to OCaml's 63-bit ints);
   cheap and well distributed even for sequential keys. *)
let mix seed key i =
  let z = (key + (0x9E3779B9 * (i + 1))) lxor seed in
  let z = (z lxor (z lsr 33)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 29)) * 0x1B873593 in
  (z lxor (z lsr 32)) land max_int

let bit_pos t key i = mix t.seed key i land t.mask

let get_bit t pos =
  Char.code (Bytes.get t.data (pos lsr 3)) land (1 lsl (pos land 7)) <> 0

let set_bit t pos =
  if not (get_bit t pos) then begin
    let byte = pos lsr 3 in
    let v = Char.code (Bytes.get t.data byte) lor (1 lsl (pos land 7)) in
    Bytes.set t.data byte (Char.chr v);
    t.population <- t.population + 1
  end

let add t key =
  for i = 0 to t.hashes - 1 do
    set_bit t (bit_pos t key i)
  done

let mem t key =
  let rec go i = i >= t.hashes || (get_bit t (bit_pos t key i) && go (i + 1)) in
  go 0

let clear t =
  Bytes.fill t.data 0 (Bytes.length t.data) '\000';
  t.population <- 0

let population t = t.population

let fill_ratio t = float_of_int t.population /. float_of_int (bits t)

let false_positive_estimate t = fill_ratio t ** float_of_int t.hashes
