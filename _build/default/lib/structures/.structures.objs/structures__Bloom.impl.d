lib/structures/bloom.ml: Bytes Char
