lib/structures/dlist.ml: Array
