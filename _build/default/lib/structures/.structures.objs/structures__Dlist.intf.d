lib/structures/dlist.mli:
