lib/structures/bloom.mli:
