lib/structures/vec.ml: Array
