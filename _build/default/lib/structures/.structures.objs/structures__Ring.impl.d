lib/structures/ring.ml: Array List
