lib/structures/pid.mli:
