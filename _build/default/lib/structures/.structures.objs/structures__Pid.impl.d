lib/structures/pid.ml:
