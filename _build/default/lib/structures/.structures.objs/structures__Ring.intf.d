lib/structures/ring.mli:
