lib/structures/vec.mli:
