(** Growable arrays (dynamic vectors).

    A cheap, mutable, amortized-O(1)-append vector used throughout the
    simulator for metric accumulation and work lists.  Elements are stored
    contiguously; [get]/[set] are bounds-checked. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector.  [dummy] fills unused slots and
    is never observable through the API. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append one element, growing the backing store as needed. *)

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument if out of bounds. *)

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val clear : 'a t -> unit
(** Reset the length to zero (capacity retained). *)

val iter : ('a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array
(** Fresh array holding exactly the current elements. *)

val of_array : dummy:'a -> 'a array -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live elements. *)
