(** Fixed-capacity ring buffers (sliding windows).

    Used for short histories of refault rates and scan throughput when a
    policy or the harness needs a windowed average. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t

val capacity : 'a t -> int

val length : 'a t -> int
(** Number of live elements, at most [capacity]. *)

val push : 'a t -> 'a -> unit
(** Append, evicting the oldest element when full. *)

val get : 'a t -> int -> 'a
(** [get t 0] is the oldest live element, [get t (length t - 1)] the
    newest.  @raise Invalid_argument if out of range. *)

val newest : 'a t -> 'a option

val oldest : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest to newest. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Oldest first. *)
