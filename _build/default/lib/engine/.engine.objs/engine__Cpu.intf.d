lib/engine/cpu.mli:
