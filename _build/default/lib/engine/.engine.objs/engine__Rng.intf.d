lib/engine/rng.mli:
