lib/engine/sim.mli:
