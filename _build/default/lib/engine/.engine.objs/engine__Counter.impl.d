lib/engine/counter.ml: Hashtbl List String
