lib/engine/counter.mli:
