lib/engine/cpu.ml:
