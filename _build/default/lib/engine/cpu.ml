type t = {
  hw_threads : int;
  mutable runnable : int;
  mutable busy_ns : int;
}

let create ~hw_threads =
  if hw_threads <= 0 then invalid_arg "Cpu.create: hw_threads must be positive";
  { hw_threads; runnable = 0; busy_ns = 0 }

let hw_threads t = t.hw_threads

let runnable t = t.runnable

let run_begin t = t.runnable <- t.runnable + 1

let run_end t =
  if t.runnable <= 0 then invalid_arg "Cpu.run_end: no runnable entities";
  t.runnable <- t.runnable - 1

let load t =
  if t.runnable <= t.hw_threads then 1.0
  else float_of_int t.runnable /. float_of_int t.hw_threads

let scale t work =
  if work <= 0 then 0
  else int_of_float (float_of_int work *. load t)

let busy_ns t = t.busy_ns

let charge t work = if work > 0 then t.busy_ns <- t.busy_ns + work
