(** Deterministic pseudo-random number generation.

    Every source of nondeterminism in a trial (workload draws, graph
    structure, Bloom-filter hash seeds, scheduling jitter, device timing)
    is driven by streams derived from a single trial seed, which makes
    trials exactly reproducible: the simulator's analogue of the paper's
    reboot-per-execution protocol.

    The generator is xoshiro256++ seeded through SplitMix64.  [split]
    derives statistically independent child streams, so subsystems never
    share a stream and adding draws in one subsystem does not perturb
    another. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** Derive an independent child generator.  Advances the parent. *)

val copy : t -> t
(** Duplicate the exact current state. *)

val bits64 : t -> int64
(** 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate (Box–Muller). *)

val jitter : t -> float -> float
(** [jitter t eps] is uniform in [1 - eps, 1 + eps]; multiply a duration
    by it to model timing noise. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
