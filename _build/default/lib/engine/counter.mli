(** Named integer counters for simulation metrics.

    A lightweight metrics registry: policies and devices report how many
    PTEs they scanned, rmap walks they performed, pages they promoted,
    and so on.  Hot-path counts inside the machine itself use plain
    mutable fields; this registry is for everything else. *)

type t

val create : unit -> t

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val get : t -> string -> int
(** 0 for counters never touched. *)

val reset : t -> unit

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val merge_into : src:t -> dst:t -> unit
(** Add every counter of [src] into [dst]. *)
