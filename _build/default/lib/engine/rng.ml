type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand seeds into xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tt = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* OCaml ints hold 62 value bits; keep the top two off. *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = nonneg t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits mapped to [0, 1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (r /. 9007199254740992.0)

let bool t p = float t 1.0 < p

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let jitter t eps = 1.0 -. eps +. float t (2.0 *. eps)

let exponential t ~mean =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  -.mean *. log (nonzero ())

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
