(** Priority queue of timestamped events.

    A binary min-heap keyed by [(time, sequence)]: events at equal times
    pop in insertion order, which keeps trials deterministic. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> time:int -> 'a -> unit
(** @raise Invalid_argument if [time] is negative. *)

val peek_time : 'a t -> int option
(** Timestamp of the next event without removing it. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)]. *)

val clear : 'a t -> unit
