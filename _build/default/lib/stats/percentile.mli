(** Quantiles and tail-latency extraction.

    The paper reports request latency distributions up to the 99.99th
    percentile (Figures 3, 8, 12); these helpers compute them with linear
    interpolation between order statistics. *)

val quantile_sorted : float array -> float -> float
(** [quantile_sorted xs q] with [xs] already ascending and [q] in
    [0, 1].  @raise Invalid_argument on an empty array or [q] outside
    [0, 1]. *)

val quantile : float array -> float -> float
(** Copies and sorts, then {!quantile_sorted}. *)

val quantiles : float array -> float list -> float list
(** One sort amortized over many quantiles. *)

val quartiles : float array -> float * float * float
(** [(q1, median, q3)]. *)

val iqr : float array -> float
(** Interquartile range [q3 - q1]. *)

type tail = {
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  p9999 : float;
  max : float;
}
(** The latency landmarks plotted in the paper's tail figures. *)

val tail_of : float array -> tail

val pp_tail : Format.formatter -> tail -> unit
