type result = { t_stat : float; df : float; p_value : float }

(* Lanczos approximation of ln Gamma. *)
let gammaln x =
  let cof =
    [| 76.18009172947146; -86.50532032941677; 24.01409824083091;
       -1.231739572450155; 0.1208650973866179e-2; -0.5395239384953e-5 |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.0;
      ser := !ser +. (c /. !y))
    cof;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

(* Continued fraction for the incomplete beta function (Numerical Recipes). *)
let betacf a b x =
  let max_it = 200 and eps = 3e-12 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if abs_float !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let finished = ref false in
  while (not !finished) && !m <= max_it do
    let fm = float_of_int !m in
    let m2 = 2.0 *. fm in
    let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.0) < eps then finished := true;
    incr m
  done;
  !h

let betai a b x =
  if x < 0.0 || x > 1.0 then invalid_arg "betai: x outside [0,1]";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else begin
    let bt =
      exp
        (gammaln (a +. b) -. gammaln a -. gammaln b +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then bt *. betacf a b x /. a
    else 1.0 -. (bt *. betacf b a (1.0 -. x) /. b)
  end

let student_cdf t ~df =
  let x = df /. (df +. (t *. t)) in
  let p = 0.5 *. betai (df /. 2.0) 0.5 x in
  if t >= 0.0 then 1.0 -. p else p

let welch a b =
  let na = Array.length a and nb = Array.length b in
  if na < 2 || nb < 2 then invalid_arg "Ttest.welch: need at least 2 points per sample";
  let sa = Summary.of_array a and sb = Summary.of_array b in
  let va = sa.Summary.variance /. float_of_int na in
  let vb = sb.Summary.variance /. float_of_int nb in
  if va +. vb = 0.0 then
    if sa.Summary.mean = sb.Summary.mean then
      { t_stat = 0.0; df = float_of_int (na + nb - 2); p_value = 1.0 }
    else { t_stat = infinity; df = float_of_int (na + nb - 2); p_value = 0.0 }
  else begin
    let t_stat = (sa.Summary.mean -. sb.Summary.mean) /. sqrt (va +. vb) in
    let df =
      ((va +. vb) ** 2.0)
      /. ((va ** 2.0) /. float_of_int (na - 1) +. ((vb ** 2.0) /. float_of_int (nb - 1)))
    in
    let p_value = 2.0 *. (1.0 -. student_cdf (abs_float t_stat) ~df) in
    { t_stat; df; p_value = min 1.0 (max 0.0 p_value) }
  end

let significant ?(alpha = 0.05) a b = (welch a b).p_value < alpha
