(** Ordinary least squares for two variables.

    The paper regresses execution time on page-fault count and reports
    r² > 0.98 for TPC-H on SSD swap (§V-A); {!fit} reproduces that
    analysis. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;       (** coefficient of determination *)
  n : int;
  pearson : float;  (** correlation coefficient, signed *)
}

val fit : x:float array -> y:float array -> fit
(** @raise Invalid_argument when the arrays differ in length or hold
    fewer than 2 points.  When x has zero variance the slope is 0 and
    r² is 0. *)

val predict : fit -> float -> float

val pp : Format.formatter -> fit -> unit
