(** Descriptive statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  variance : float;  (** unbiased sample variance (0 when [n < 2]) *)
  stddev : float;
  min : float;
  max : float;
  sum : float;
}

val of_array : float array -> t
(** @raise Invalid_argument on an empty array. *)

val of_list : float list -> t

val of_ints : int array -> t

val cv : t -> float
(** Coefficient of variation, [stddev / mean] (0 when the mean is 0). *)

val spread : t -> float
(** [max / min]: the paper's "factor between fastest and slowest
    execution" (infinite when [min = 0]). *)

val pp : Format.formatter -> t -> unit
