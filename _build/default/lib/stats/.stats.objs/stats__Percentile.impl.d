lib/stats/percentile.ml: Array Format List
