lib/stats/ttest.mli:
