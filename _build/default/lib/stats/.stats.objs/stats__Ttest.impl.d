lib/stats/ttest.ml: Array Summary
