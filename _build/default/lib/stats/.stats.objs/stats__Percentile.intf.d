lib/stats/percentile.mli: Format
