lib/stats/histogram.mli:
