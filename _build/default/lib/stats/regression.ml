type fit = {
  slope : float;
  intercept : float;
  r2 : float;
  n : int;
  pearson : float;
}

let fit ~x ~y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Regression.fit: length mismatch";
  if n < 2 then invalid_arg "Regression.fit: need at least 2 points";
  let fn = float_of_int n in
  let mean xs = Array.fold_left ( +. ) 0.0 xs /. fn in
  let mx = mean x and my = mean y in
  let sxx = ref 0.0 and syy = ref 0.0 and sxy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = x.(i) -. mx and dy = y.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy);
    sxy := !sxy +. (dx *. dy)
  done;
  if !sxx = 0.0 then { slope = 0.0; intercept = my; r2 = 0.0; n; pearson = 0.0 }
  else begin
    let slope = !sxy /. !sxx in
    let intercept = my -. (slope *. mx) in
    let r2, pearson =
      if !syy = 0.0 then (1.0, if !sxy >= 0.0 then 1.0 else -1.0)
      else begin
        let r = !sxy /. sqrt (!sxx *. !syy) in
        (r *. r, r)
      end
    in
    { slope; intercept; r2; n; pearson }
  end

let predict f x = f.intercept +. (f.slope *. x)

let pp fmt f =
  Format.fprintf fmt "y = %.4g + %.4g x (r2=%.4f, n=%d)" f.intercept f.slope
    f.r2 f.n
