(** Streaming histograms with logarithmically spaced bins.

    Request latencies in the YCSB experiments span five orders of
    magnitude (cache hit → queued SSD fault), so log-spaced bins give
    constant relative error for tail quantiles without retaining every
    sample. *)

type t

val create : ?buckets_per_decade:int -> lo:float -> hi:float -> unit -> t
(** Bins cover [lo, hi] (both positive) with [buckets_per_decade]
    (default 20) bins per factor of 10; samples outside the range land in
    underflow/overflow bins. *)

val add : t -> float -> unit

val count : t -> int

val quantile : t -> float -> float
(** Approximate quantile (geometric midpoint of the containing bin).
    @raise Invalid_argument when empty or [q] outside [0, 1]. *)

val mean : t -> float
(** Exact running mean of all added samples. *)

val max_seen : t -> float

val min_seen : t -> float

val merge : t -> t -> t
(** Pointwise sum; both histograms must have identical bin layout.
    @raise Invalid_argument otherwise. *)

val bins : t -> (float * float * int) list
(** Non-empty bins as [(lower_bound, upper_bound, count)], ascending. *)
