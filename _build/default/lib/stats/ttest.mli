(** Welch's unequal-variance t-test.

    The paper reports that Clock's 2–5 % wins over MG-LRU at relaxed
    memory pressure are significant (p < 0.01) while the Gen-14
    differences are not (p > 0.05) (§V-B, §V-C); this module reproduces
    those significance calls. *)

type result = {
  t_stat : float;
  df : float;      (** Welch–Satterthwaite degrees of freedom *)
  p_value : float; (** two-sided *)
}

val welch : float array -> float array -> result
(** @raise Invalid_argument when either sample has fewer than 2 points.
    Degenerate zero-variance identical samples give [p_value = 1.0]. *)

val significant : ?alpha:float -> float array -> float array -> bool
(** [significant a b] is [true] when the two-sided p-value is below
    [alpha] (default 0.05). *)

val student_cdf : float -> df:float -> float
(** CDF of Student's t distribution; exposed for tests. *)
