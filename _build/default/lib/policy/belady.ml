type result = {
  faults : int;
  cold_faults : int;
  accesses : int;
}

module Pair_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

let simulate ~capacity ~trace =
  if capacity <= 0 then invalid_arg "Belady.simulate: capacity must be positive";
  let n = Array.length trace in
  (* next_use.(i) = position of the next access to trace.(i) after i,
     or n when there is none. *)
  let next_use = Array.make n n in
  let last_pos = Hashtbl.create 1024 in
  for i = n - 1 downto 0 do
    let page = trace.(i) in
    (match Hashtbl.find_opt last_pos page with
    | Some j -> next_use.(i) <- j
    | None -> next_use.(i) <- n);
    Hashtbl.replace last_pos page i
  done;
  (* Resident set as a max-heap on next use, realized as a map keyed by
     (next_use, page) plus a residency table for lazy deletion. *)
  let heap = ref Pair_map.empty in
  let heap_add pos page = heap := Pair_map.add (pos, page) page !heap in
  let resident = Hashtbl.create 1024 in (* page -> current next_use *)
  let faults = ref 0 and cold = ref 0 and size = ref 0 in
  let seen = Hashtbl.create 1024 in
  for i = 0 to n - 1 do
    let page = trace.(i) in
    (match Hashtbl.find_opt resident page with
    | Some _ ->
      (* Hit: refresh its priority. *)
      Hashtbl.replace resident page next_use.(i);
      heap_add next_use.(i) page
    | None ->
      incr faults;
      if not (Hashtbl.mem seen page) then incr cold;
      if !size >= capacity then begin
        (* Evict the live entry with the farthest next use (lazy pops). *)
        let rec evict () =
          match Pair_map.max_binding_opt !heap with
          | None -> ()
          | Some (((pos, _) as key), victim) ->
            heap := Pair_map.remove key !heap;
            (match Hashtbl.find_opt resident victim with
            | Some cur when cur = pos ->
              Hashtbl.remove resident victim;
              decr size
            | Some _ | None -> evict ())
        in
        evict ()
      end;
      Hashtbl.replace resident page next_use.(i);
      heap_add next_use.(i) page;
      incr size);
    Hashtbl.replace seen page ()
  done;
  { faults = !faults; cold_faults = !cold; accesses = n }

let list_cache_simulate ~capacity ~trace ~touch_moves_front =
  if capacity <= 0 then invalid_arg "Belady: capacity must be positive";
  let n = Array.length trace in
  (* Doubly linked list over page ids via hashtables. *)
  let next = Hashtbl.create 1024 and prev = Hashtbl.create 1024 in
  let front = ref (-1) and back = ref (-1) and size = ref 0 in
  let resident = Hashtbl.create 1024 in
  let seen = Hashtbl.create 1024 in
  let faults = ref 0 and cold = ref 0 in
  let unlink page =
    let p = try Hashtbl.find prev page with Not_found -> -1 in
    let nx = try Hashtbl.find next page with Not_found -> -1 in
    if p <> -1 then Hashtbl.replace next p nx else front := nx;
    if nx <> -1 then Hashtbl.replace prev nx p else back := p;
    Hashtbl.remove prev page;
    Hashtbl.remove next page
  in
  let push_front page =
    Hashtbl.replace prev page (-1);
    Hashtbl.replace next page !front;
    if !front <> -1 then Hashtbl.replace prev !front page else back := page;
    front := page
  in
  Array.iter
    (fun page ->
      if Hashtbl.mem resident page then begin
        if touch_moves_front then begin
          unlink page;
          push_front page
        end
      end
      else begin
        incr faults;
        if not (Hashtbl.mem seen page) then incr cold;
        if !size >= capacity then begin
          let victim = !back in
          unlink victim;
          Hashtbl.remove resident victim;
          decr size
        end;
        push_front page;
        Hashtbl.replace resident page ();
        incr size
      end;
      Hashtbl.replace seen page ())
    trace;
  { faults = !faults; cold_faults = !cold; accesses = n }

let lru_simulate ~capacity ~trace =
  list_cache_simulate ~capacity ~trace ~touch_moves_front:true

let fifo_simulate ~capacity ~trace =
  list_cache_simulate ~capacity ~trace ~touch_moves_front:false
