(** Random replacement: evict a uniformly random mapped frame.

    The memoryless baseline the paper's discussion of principled
    randomness (§VI-C) is measured against. *)

include Policy_intf.S
