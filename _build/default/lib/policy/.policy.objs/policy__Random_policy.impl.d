lib/policy/random_policy.ml: Engine Mem Policy_intf
