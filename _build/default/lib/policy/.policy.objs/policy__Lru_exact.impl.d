lib/policy/lru_exact.ml: Mem Policy_intf Structures
