lib/policy/registry.ml: Clock_lru Fifo Lru_exact Mglru Policy_intf Random_policy
