lib/policy/policy_intf.ml: Engine Mem
