lib/policy/fifo.ml: Mem Policy_intf Structures
