lib/policy/fifo.mli: Policy_intf
