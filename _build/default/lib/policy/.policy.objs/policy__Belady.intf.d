lib/policy/belady.mli:
