lib/policy/belady.ml: Array Hashtbl Map
