lib/policy/random_policy.mli: Policy_intf
