lib/policy/lru_exact.mli: Policy_intf
