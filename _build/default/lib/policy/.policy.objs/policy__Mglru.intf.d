lib/policy/mglru.mli: Policy_intf
