lib/policy/mglru.ml: Array Engine Float Hashtbl List Mem Policy_intf Structures
