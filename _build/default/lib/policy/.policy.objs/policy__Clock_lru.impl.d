lib/policy/clock_lru.ml: Mem Policy_intf Structures
