lib/policy/clock_lru.mli: Policy_intf
