lib/policy/registry.mli: Mglru Policy_intf
