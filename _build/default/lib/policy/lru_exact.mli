(** Exact LRU: an oracle baseline with per-access recency.

    Uses the [on_page_touched] oracle hook, which no hardware-realistic
    policy can (accessed bits only say "touched since last scan").  It
    bounds how much of Clock's and MG-LRU's behaviour is approximation
    error versus inherent to LRU ordering itself — e.g. on YCSB's zipfian
    traffic exact LRU is still mediocre, supporting the paper's §V-B
    remark. *)

include Policy_intf.S
