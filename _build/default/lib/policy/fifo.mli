(** FIFO replacement: evict in arrival order, never consult accessed bits.

    The paper notes (§V-B) that production key-value caches favour
    FIFO-family eviction for zipfian traffic; this baseline lets the
    harness test that observation against the LRU approximations. *)

include Policy_intf.S
