(** Belady's OPT: offline optimal replacement over a reference trace.

    Not a machine policy (it needs the future); a cache simulation used
    by tests and examples to lower-bound the fault counts of the online
    policies on the same reference string. *)

type result = {
  faults : int;        (** misses, including cold misses *)
  cold_faults : int;   (** first-touch misses *)
  accesses : int;
}

val simulate : capacity:int -> trace:int array -> result
(** Classic OPT: on a miss with a full cache of [capacity] pages, evict
    the resident page whose next use is farthest in the future.
    @raise Invalid_argument when [capacity <= 0]. *)

val lru_simulate : capacity:int -> trace:int array -> result
(** Exact-LRU cache simulation on the same trace, for comparison. *)

val fifo_simulate : capacity:int -> trace:int array -> result
