(** Clock-LRU: the classic Linux two-list second-chance policy.

    The active list is meant to hold the working set; the inactive list
    holds eviction candidates (paper §II-B).  kswapd periodically rebalances
    by scanning accessed bits at the tail of the active list — resolving
    each physical frame to its PTE through a reverse-map walk, the cost the
    paper identifies as Clock's fundamental handicap — and reclaim scans the
    inactive tail, giving accessed pages a second chance on the active
    list. *)

type config = {
  scan_batch : int;       (** pages examined per kswapd step *)
  inactive_ratio : int;   (** keep inactive >= active / ratio *)
  new_page_active : bool; (** map new pages to the active list *)
}

val default_config : config

include Policy_intf.S

val create_with : ?config:config -> Policy_intf.env -> t

val active_size : t -> int

val inactive_size : t -> int
