(** Multi-Generational LRU, after Linux 6.x (paper §III).

    Pages live on one of up to [max_gens] generation lists identified by a
    monotonically increasing sequence number; [min_seq] is the oldest
    (eviction) generation and [max_seq] the youngest.  Two walkers do the
    work:

    - the {b aging} walker linearly scans page tables region by region,
      clearing accessed bits and promoting accessed pages to the youngest
      generation, then increments [max_seq] (creating a new generation)
      when the generation window is below [max_gens].  A pair of Bloom
      filters remembers which regions contained densely accessed PTEs so
      the next pass can skip the rest;
    - the {b eviction} walker pops candidates from the oldest generation,
      resolves each through the reverse map, gives accessed pages another
      generation of life, and — unlike Clock — spatially scans the
      candidate's whole page-table region, promoting its accessed
      neighbours and feeding the region back into the Bloom filter.

    File-backed pages are promoted by access {i tier} within their
    generation instead of jumping to the youngest generation, with a PID
    controller balancing tier refault rates (§III-D).

    The [scan_mode] knob reproduces the paper's variants: [Bloom] is the
    default MG-LRU; [Scan_all], [Scan_none] and [Scan_rand 0.5] are the
    §V-B configurations that disable the Bloom filter in three different
    ways.  [max_gens = 16384] reproduces {i Gen-14}. *)

type scan_mode =
  | Bloom_filtered
  | Scan_all
  | Scan_none
  | Scan_rand of float  (** scan each region with this probability *)

type config = {
  max_gens : int;               (** generation window; kernel default 4 *)
  min_gens : int;               (** eviction keeps at least this many; 2 *)
  scan_mode : scan_mode;
  bloom_bits : int;
  bloom_hashes : int;
  bloom_density_shift : int;
      (** a region enters the filter when it has at least
          [region_size lsr shift] accessed PTEs; 3 matches the kernel's
          "one accessed PTE per cache line" *)
  tiers : int;
  tier_protection : bool;       (** enable the PID-driven tier shield *)
  evict_batch : int;            (** candidates per kswapd step *)
  aging_regions_per_step : int; (** regions walked per aging step *)
  spatial_scan : bool;          (** eviction-side neighbourhood scan *)
}

val default_config : config

val gen14_config : config
(** [default_config] with [max_gens = 16384] (the paper's Gen-14). *)

val with_mode : scan_mode -> config -> config

include Policy_intf.S

val create_with : ?config:config -> Policy_intf.env -> t

val max_seq : t -> int

val min_seq : t -> int

val nr_gens : t -> int

val gen_size : t -> int -> int
(** Population of the generation with the given sequence number. *)

val protected_tiers : t -> int
(** Current PID-controlled tier shield level. *)

val config_of : t -> config
