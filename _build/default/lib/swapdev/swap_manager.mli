(** Swap-slot management over a device.

    Allocates slots for swapped-out pages, remembers each slot's
    compressed-size fraction (relevant for ZRAM service time and pool
    accounting), and forwards the I/O to the underlying device.

    Slots survive {!swap_in} — the machine keeps them as a swap cache so
    clean pages can be evicted again without a writeback (as the kernel
    does) — and are freed explicitly with {!release}. *)

type t

val create : device:Device.t -> seed:int -> t

val device : t -> Device.t

val swap_out :
  t -> now:int -> klass:Compress.klass -> page_key:int -> int * Device.completion
(** Allocate a slot, write the page; returns [(slot, completion)]. *)

val swap_in : t -> now:int -> slot:int -> Device.completion
(** Read a slot's page back.  The slot stays allocated (swap cache).
    @raise Invalid_argument on a slot not currently in use. *)

val release : t -> slot:int -> unit
(** Free a slot without I/O (page dirtied or address space torn down).
    @raise Invalid_argument on a slot not currently in use. *)

val slot_in_use : t -> int -> bool

val used_slots : t -> int

val peak_slots : t -> int

val compressed_bytes : t -> float
(** Current compressed pool size assuming 4 KB pages; meaningful for
    ZRAM-style devices. *)

val swap_ins : t -> int

val swap_outs : t -> int
