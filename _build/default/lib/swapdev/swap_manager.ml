type t = {
  device : Device.t;
  seed : int;
  mutable ratios : float array; (* slot -> size fraction; nan = free *)
  mutable free : int list;
  mutable next_slot : int;
  mutable used : int;
  mutable peak : int;
  mutable compressed : float; (* sum of in-use size fractions *)
  mutable ins : int;
  mutable outs : int;
}

let create ~device ~seed =
  {
    device;
    seed;
    ratios = Array.make 1024 nan;
    free = [];
    next_slot = 0;
    used = 0;
    peak = 0;
    compressed = 0.0;
    ins = 0;
    outs = 0;
  }

let device t = t.device

let grow t =
  let n = Array.length t.ratios in
  let ratios = Array.make (2 * n) nan in
  Array.blit t.ratios 0 ratios 0 n;
  t.ratios <- ratios

let alloc_slot t =
  match t.free with
  | slot :: rest ->
    t.free <- rest;
    slot
  | [] ->
    let slot = t.next_slot in
    t.next_slot <- slot + 1;
    if slot >= Array.length t.ratios then grow t;
    slot

let swap_out t ~now ~klass ~page_key =
  let slot = alloc_slot t in
  let ratio = Compress.ratio klass ~page_key ~seed:t.seed in
  t.ratios.(slot) <- ratio;
  t.used <- t.used + 1;
  if t.used > t.peak then t.peak <- t.used;
  t.compressed <- t.compressed +. ratio;
  t.outs <- t.outs + 1;
  let completion = t.device.Device.submit ~now ~op:Device.Write ~size_fraction:ratio in
  (slot, completion)

let slot_in_use t slot =
  slot >= 0 && slot < Array.length t.ratios && not (Float.is_nan t.ratios.(slot))

let swap_in t ~now ~slot =
  if not (slot_in_use t slot) then invalid_arg "Swap_manager.swap_in: slot not in use";
  let ratio = t.ratios.(slot) in
  t.ins <- t.ins + 1;
  t.device.Device.submit ~now ~op:Device.Read ~size_fraction:ratio

let release t ~slot =
  if not (slot_in_use t slot) then invalid_arg "Swap_manager.release: slot not in use";
  let ratio = t.ratios.(slot) in
  t.ratios.(slot) <- nan;
  t.free <- slot :: t.free;
  t.used <- t.used - 1;
  t.compressed <- t.compressed -. ratio

let used_slots t = t.used

let peak_slots t = t.peak

let compressed_bytes t = t.compressed *. 4096.0

let swap_ins t = t.ins

let swap_outs t = t.outs
