(** SSD swap model.

    Matches the paper's measured medium: ~7.5 ms for a 4 KB read or
    write (§IV — a slow SATA device under sync swap traffic).  Requests
    queue on a small number of channels; a burst of demand faults
    therefore sees its tail stretched by queueing, which is what makes
    SSD-swap fault *counts* translate linearly into runtime. *)

type config = {
  read_ns : int;
  write_ns : int;
  channels : int;       (** concurrent in-flight operations *)
  jitter : float;       (** multiplicative service-time noise, e.g. 0.05 *)
  cpu_per_op_ns : int;  (** block-layer + interrupt CPU cost *)
}

val default_config : config
(** 7.5 ms / 7.5 ms, 2 channels, 5 % jitter, 3 µs CPU per op. *)

val create : ?config:config -> rng:Engine.Rng.t -> unit -> Device.t
