(** ZRAM swap model.

    A compressed RAM block device (paper §IV: LZO-RLE, 20 µs reads,
    35 µs writes for 4 KB).  Because (de)compression runs on the CPU,
    every operation charges its full service time as host compute — the
    paper uses ZRAM as a stand-in for remote/disaggregated memory tiers,
    and this CPU coupling plus the two-orders-of-magnitude latency drop
    versus SSD is what exposes the scan-speed bottleneck in §V-D. *)

type config = {
  read_ns : int;        (** decompression service for a fully incompressible page *)
  write_ns : int;       (** compression + store service *)
  channels : int;       (** effectively per-CPU; default 12 *)
  jitter : float;
  size_sensitivity : float;
      (** fraction of service time proportional to compressed size:
          [service = base * (1 - s + s * size_fraction / mean)] *)
}

val default_config : config

val create : ?config:config -> rng:Engine.Rng.t -> unit -> Device.t

val stored_bytes_estimate : pages:int -> mean_ratio:float -> int
(** Rough compressed-pool footprint for capacity planning in the
    harness: [pages * 4096 * mean_ratio]. *)
