lib/swapdev/device.ml:
