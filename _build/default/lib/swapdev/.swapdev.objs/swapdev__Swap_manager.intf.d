lib/swapdev/swap_manager.mli: Compress Device
