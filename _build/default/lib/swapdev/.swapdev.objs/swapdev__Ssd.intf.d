lib/swapdev/ssd.mli: Device Engine
