lib/swapdev/swap_manager.ml: Array Compress Device Float
