lib/swapdev/zram.ml: Array Device Engine Float
