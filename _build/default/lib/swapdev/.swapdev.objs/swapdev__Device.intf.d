lib/swapdev/device.mli:
