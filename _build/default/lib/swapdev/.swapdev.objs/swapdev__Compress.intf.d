lib/swapdev/compress.mli:
