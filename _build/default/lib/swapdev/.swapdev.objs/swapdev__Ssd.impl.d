lib/swapdev/ssd.ml: Array Device Engine
