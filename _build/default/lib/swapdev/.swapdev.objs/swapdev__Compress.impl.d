lib/swapdev/compress.ml: Float
