lib/swapdev/zram.mli: Device Engine
