type klass = Zero | Columnar | Graph_csr | Numeric | Kv_item | Random

(* (mean, half-width) of a uniform compressed-size fraction per class. *)
let params = function
  | Zero -> (0.01, 0.0)
  | Columnar -> (0.22, 0.10)
  | Graph_csr -> (0.40, 0.15)
  | Numeric -> (0.45, 0.15)
  | Kv_item -> (0.55, 0.20)
  | Random -> (0.98, 0.02)

let mean_ratio k = fst (params k)

let klass_index = function
  | Zero -> 0
  | Columnar -> 1
  | Graph_csr -> 2
  | Numeric -> 3
  | Kv_item -> 4
  | Random -> 5

(* Cheap deterministic hash to a float in [0, 1). *)
let unit_hash a b =
  let z = (a * 0x9E3779B9) lxor (b * 0x85EBCA6B) in
  let z = (z lxor (z lsr 33)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 29)) land 0xFFFFFF in
  float_of_int z /. 16777216.0

let ratio k ~page_key ~seed =
  let mean, width = params k in
  let u = unit_hash (page_key + (klass_index k * 7919)) seed in
  let r = mean +. (width *. ((2.0 *. u) -. 1.0)) in
  Float.max 0.01 (Float.min 1.0 r)

let klass_name = function
  | Zero -> "zero"
  | Columnar -> "columnar"
  | Graph_csr -> "graph-csr"
  | Numeric -> "numeric"
  | Kv_item -> "kv-item"
  | Random -> "random"
