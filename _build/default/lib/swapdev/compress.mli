(** Page-compressibility model for ZRAM.

    ZRAM stores swapped pages compressed in RAM; the paper configures
    LZO-RLE (§IV).  Real compression ratios depend on page content, so
    the simulator assigns each page a deterministic pseudo-random ratio
    drawn from a per-content-class distribution.  Published LZO-RLE
    numbers on datacenter heaps cluster around 2.5–4x, with zero pages
    collapsing to a marker and high-entropy pages incompressible. *)

type klass =
  | Zero        (** untouched / zeroed pages: stored as a marker *)
  | Columnar    (** TPC-H table data: repetitive, compresses very well *)
  | Graph_csr   (** adjacency structure: moderately compressible *)
  | Numeric     (** rank vectors, hash payloads: moderate *)
  | Kv_item     (** memcached values: mildly compressible *)
  | Random      (** encrypted/high-entropy: incompressible *)

val ratio : klass -> page_key:int -> seed:int -> float
(** Compressed-size fraction in (0, 1]: 0.25 means the 4 KB page stores
    in 1 KB.  Deterministic in [(klass, page_key, seed)]. *)

val mean_ratio : klass -> float
(** Distribution centre for a class; for capacity estimates and tests. *)

val klass_name : klass -> string
