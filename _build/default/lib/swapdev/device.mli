(** Common swap-device interface.

    A device accepts 4 KB page reads/writes and models service time and
    queueing.  [submit] returns both the virtual completion time and the
    host CPU work the operation costs (interrupt handling for the SSD;
    the whole (de)compression for ZRAM, which runs on the faulting CPU
    in the kernel). *)

type op = Read | Write

type completion = {
  finish_ns : int;  (** absolute virtual time the data is available *)
  cpu_ns : int;     (** host compute consumed by this operation *)
}

type t = {
  name : string;
  submit : now:int -> op:op -> size_fraction:float -> completion;
      (** [size_fraction] is the compressed-size fraction for
          compressing devices; plain block devices ignore it. *)
  reads : unit -> int;
  writes : unit -> int;
  busy_until : unit -> int;
      (** latest scheduled completion over all channels; an idleness
          probe for tests *)
}

val op_name : op -> string
