type op = Read | Write

type completion = {
  finish_ns : int;
  cpu_ns : int;
}

type t = {
  name : string;
  submit : now:int -> op:op -> size_fraction:float -> completion;
  reads : unit -> int;
  writes : unit -> int;
  busy_until : unit -> int;
}

let op_name = function Read -> "read" | Write -> "write"
