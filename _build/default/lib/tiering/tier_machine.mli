(** The tiered-memory machine: one trial of a workload over fast + slow
    memory under a migration policy.

    A cut-down sibling of {!Repro_core.Machine} for the §II-C design
    space: there is no swap device and no eviction — every page stays
    mapped after first touch — but touches to slow-tier pages pay a
    latency penalty, poisoned pages take hint faults, and the policy's
    kernel threads migrate pages while competing for the same CPU as the
    application.  The quantity under study is how close a policy gets
    the hot working set to an all-fast placement. *)

type config = {
  hw_threads : int;
  fast_frames : int;
  slow_frames : int;
  costs : Mem.Costs.t;
  slow_extra_ns : int;   (** added to every slow-tier page touch *)
  hint_fault_ns : int;   (** cost of touching a poisoned page *)
  migrate_page_ns : int; (** copy cost per migrated page *)
  segment_pages : int;
  hit_cpu_ns : int;
  barrier_groups : int array option;
  kthread_jitter_ns : int;
  max_runtime_ns : int;
  seed : int;
}

val default_config : fast_frames:int -> slow_frames:int -> seed:int -> config
(** Experiment-scaled costs (DESIGN.md "Scaling"): 3 ms slow-tier
    penalty per touch, 50 µs hint faults, 400 µs per migrated page. *)

type result = {
  runtime_ns : int;
  fast_touches : int;
  slow_touches : int;
  cold_touches : int;   (** first-touch placements *)
  hint_faults : int;
  promotions : int;
  demotions : int;
  failed_promotions : int; (** promote calls rejected (fast tier full) *)
  fast_resident : int;
  slow_resident : int;
  per_thread_finish : int array;
  policy_stats : (string * int) list;
  policy_name : string;
}

val slow_fraction : result -> float
(** Fraction of warm touches served from the slow tier — the headline
    quality metric for a migration policy. *)

val run :
  config ->
  policy:(Migration_intf.env -> Migration_intf.packed) ->
  workload:Workload.Chunk.packed ->
  result
