type spec = Static | Tpp | Thermostat | Autonuma

let name = function
  | Static -> "static"
  | Tpp -> "tpp"
  | Thermostat -> "thermostat"
  | Autonuma -> "autonuma"

let of_name = function
  | "static" -> Some Static
  | "tpp" -> Some Tpp
  | "thermostat" -> Some Thermostat
  | "autonuma" -> Some Autonuma
  | _ -> None

let all = [ Static; Autonuma; Thermostat; Tpp ]

let known_names = List.map name all

let create spec env =
  match spec with
  | Static -> Migration_intf.Packed ((module Static_tier), Static_tier.create env)
  | Tpp -> Migration_intf.Packed ((module Tpp), Tpp.create env)
  | Thermostat ->
    Migration_intf.Packed ((module Thermostat), Thermostat.create env)
  | Autonuma ->
    Migration_intf.Packed ((module Autonuma_policy), Autonuma_policy.create env)
