lib/tiering/tier_machine.mli: Mem Migration_intf Workload
