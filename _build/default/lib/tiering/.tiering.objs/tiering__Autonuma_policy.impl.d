lib/tiering/autonuma_policy.ml: Mem Migration_intf
