lib/tiering/tpp.ml: Array Mem Migration_intf Structures
