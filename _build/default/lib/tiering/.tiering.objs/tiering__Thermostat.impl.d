lib/tiering/thermostat.ml: Array Engine List Mem Migration_intf
