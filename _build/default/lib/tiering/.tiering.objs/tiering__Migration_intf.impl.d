lib/tiering/migration_intf.ml: Engine Mem
