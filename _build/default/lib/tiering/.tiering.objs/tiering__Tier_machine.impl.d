lib/tiering/tier_machine.ml: Array Bytes Engine List Mem Migration_intf Workload
