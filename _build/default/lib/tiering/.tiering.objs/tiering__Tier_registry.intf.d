lib/tiering/tier_registry.mli: Migration_intf
