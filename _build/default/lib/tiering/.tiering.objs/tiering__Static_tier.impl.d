lib/tiering/static_tier.ml: Migration_intf
