lib/tiering/tier_registry.ml: Autonuma_policy List Migration_intf Static_tier Thermostat Tpp
