(** AutoNUMA-style hint-fault balancing (paper §II-C).

    Linux's default tiering mechanism: a scanner walks the address space
    poisoning PTEs in chunks; a hint fault on a slow-tier page promotes
    it toward the faulting task's node.  Crucially — the limitation the
    paper highlights — it was not designed for CPU-less memory nodes and
    {e has no demotion path}: once the fast tier fills, promotions fail
    and the placement freezes wherever it happens to be. *)

type config = {
  scan_chunk : int;     (** pages poisoned per scan step *)
  scan_period_ns : int;
}

let default_config = { scan_chunk = 256; scan_period_ns = 20_000_000 }

type t = {
  env : Migration_intf.env;
  config : config;
  mutable cursor : int;
  mutable just_worked : bool;
  mutable hint_promotions : int;
  mutable failed : int;
  mutable scan_steps : int;
}

let policy_name = "autonuma"

let create_with ?(config = default_config) env =
  { env; config; cursor = 0; just_worked = false; hint_promotions = 0;
    failed = 0; scan_steps = 0 }

let create env = create_with env

let initial_tier t ~vpn:_ =
  if t.env.Migration_intf.fast_free () > 0 then Migration_intf.Fast
  else Migration_intf.Slow

let on_placed _t ~vpn:_ _tier = ()

let on_hint_fault t ~vpn tier ~write:_ =
  match tier with
  | Migration_intf.Fast -> ()
  | Migration_intf.Slow ->
    if t.env.Migration_intf.promote ~vpn then
      t.hint_promotions <- t.hint_promotions + 1
    else t.failed <- t.failed + 1

let kthread t () =
  if t.just_worked then begin
    t.just_worked <- false;
    Migration_intf.Sleep t.config.scan_period_ns
  end
  else begin
    let pages = Mem.Page_table.pages t.env.Migration_intf.pt in
    let c = t.env.Migration_intf.costs in
    let work = ref 1_000 in
    for _ = 1 to t.config.scan_chunk do
      let vpn = t.cursor in
      t.cursor <- (t.cursor + 1) mod pages;
      work := !work + c.Mem.Costs.pte_scan_ns;
      if t.env.Migration_intf.tier_of vpn <> None then
        t.env.Migration_intf.poison ~vpn
    done;
    t.scan_steps <- t.scan_steps + 1;
    t.just_worked <- true;
    Migration_intf.Work !work
  end

let kthreads t = [ { Migration_intf.kname = "numa_balancer"; kstep = kthread t } ]

let stats t =
  [
    ("hint_promotions", t.hint_promotions);
    ("failed_promotions", t.failed);
    ("scan_steps", t.scan_steps);
  ]
