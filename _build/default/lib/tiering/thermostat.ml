(** Thermostat-style sampled page poisoning (Agarwal & Wenisch,
    ASPLOS'17; paper §II-C).

    Epoch-based: each epoch poisons a random sample of pages in both
    tiers and counts the hint faults their regions take.  At the end of
    an epoch, slow-tier regions whose sampled pages faulted are deemed
    hot and promoted wholesale; fast-tier regions whose samples stayed
    silent are demoted — hotness classification at huge-page (region)
    granularity with a bounded, tunable sampling cost, exactly the
    "sampled page poisoning + hotness thresholds" recipe the paper
    attributes to Thermostat and MTM. *)

type config = {
  sample_frac : float;      (** fraction of each region sampled per epoch *)
  epoch_ns : int;
  promote_budget : int;     (** max regions promoted per epoch *)
  demote_headroom : float;  (** keep this fraction of fast frames free *)
}

let default_config =
  { sample_frac = 0.05; epoch_ns = 50_000_000; promote_budget = 16;
    demote_headroom = 0.02 }

(* Arm samples -> let an epoch of traffic hit them -> classify and
   migrate -> repeat. *)
type phase = Arm | Wait | Apply

type t = {
  env : Migration_intf.env;
  config : config;
  region_faults : int array;  (* hint faults per region this epoch *)
  region_sampled : int array; (* samples armed per region this epoch *)
  mutable phase : phase;
  mutable epochs : int;
  mutable promoted_regions : int;
  mutable demoted_regions : int;
  mutable samples_armed : int;
}

let policy_name = "thermostat"

let create_with ?(config = default_config) (env : Migration_intf.env) =
  let regions = Mem.Page_table.regions env.Migration_intf.pt in
  {
    env;
    config;
    region_faults = Array.make regions 0;
    region_sampled = Array.make regions 0;
    phase = Arm;
    epochs = 0;
    promoted_regions = 0;
    demoted_regions = 0;
    samples_armed = 0;
  }

let create env = create_with env

let initial_tier t ~vpn:_ =
  if t.env.Migration_intf.fast_free () > 0 then Migration_intf.Fast
  else Migration_intf.Slow

let on_placed _t ~vpn:_ _tier = ()

let region_of t vpn = Mem.Page_table.region_of t.env.Migration_intf.pt vpn

let on_hint_fault t ~vpn _tier ~write:_ =
  let r = region_of t vpn in
  t.region_faults.(r) <- t.region_faults.(r) + 1

(* Arm this epoch's samples: a random subset of every region. *)
let arm_samples t (work : int ref) =
  let pt = t.env.Migration_intf.pt in
  let c = t.env.Migration_intf.costs in
  Array.fill t.region_faults 0 (Array.length t.region_faults) 0;
  Array.fill t.region_sampled 0 (Array.length t.region_sampled) 0;
  for r = 0 to Mem.Page_table.regions pt - 1 do
    Mem.Page_table.iter_region pt r (fun vpn _pte ->
        if
          t.env.Migration_intf.tier_of vpn <> None
          && Engine.Rng.bool t.env.Migration_intf.rng t.config.sample_frac
        then begin
          t.env.Migration_intf.poison ~vpn;
          work := !work + c.Mem.Costs.pte_scan_ns;
          t.region_sampled.(r) <- t.region_sampled.(r) + 1;
          t.samples_armed <- t.samples_armed + 1
        end)
  done

(* Migrate whole regions by sampled hotness. *)
let apply_epoch t (work : int ref) =
  let pt = t.env.Migration_intf.pt in
  let regions = Mem.Page_table.regions pt in
  let region_tier r =
    (* Classify a region by its first placed page. *)
    let tier = ref None in
    Mem.Page_table.iter_region pt r (fun vpn _ ->
        if !tier = None then tier := t.env.Migration_intf.tier_of vpn);
    !tier
  in
  let migrate_region r ~promote =
    let moved = ref 0 in
    Mem.Page_table.iter_region pt r (fun vpn _ ->
        let ok =
          if promote then
            t.env.Migration_intf.tier_of vpn = Some Migration_intf.Slow
            && t.env.Migration_intf.promote ~vpn
          else
            t.env.Migration_intf.tier_of vpn = Some Migration_intf.Fast
            && t.env.Migration_intf.demote ~vpn
        in
        if ok then begin
          incr moved;
          work := !work + t.env.Migration_intf.migrate_cost_ns
        end);
    !moved > 0
  in
  (* Hot slow regions wanting promotion, hottest first. *)
  let hot =
    List.init regions (fun r -> r)
    |> List.filter (fun r ->
           t.region_faults.(r) > 0 && region_tier r = Some Migration_intf.Slow)
    |> List.sort (fun a b -> compare t.region_faults.(b) t.region_faults.(a))
  in
  (* Demote first: silent sampled fast regions make room for the hot
     ones (plus the standing headroom). *)
  let region_size = Mem.Page_table.region_size pt in
  let wanted =
    min t.config.promote_budget (List.length hot) * region_size
    + max 1
        (int_of_float
           (float_of_int t.env.Migration_intf.fast_capacity
           *. t.config.demote_headroom))
  in
  let r = ref 0 in
  while t.env.Migration_intf.fast_free () < wanted && !r < regions do
    if
      t.region_sampled.(!r) > 0
      && t.region_faults.(!r) = 0
      && region_tier !r = Some Migration_intf.Fast
    then
      if migrate_region !r ~promote:false then
        t.demoted_regions <- t.demoted_regions + 1;
    incr r
  done;
  (* Now promote the hottest regions into the freed space. *)
  List.iteri
    (fun i r ->
      if i < t.config.promote_budget && t.env.Migration_intf.fast_free () > 0 then
        if migrate_region r ~promote:true then
          t.promoted_regions <- t.promoted_regions + 1)
    hot

let kthread t () =
  match t.phase with
  | Arm ->
    let work = ref 1_000 in
    arm_samples t work;
    t.phase <- Wait;
    Migration_intf.Work !work
  | Wait ->
    t.phase <- Apply;
    Migration_intf.Sleep t.config.epoch_ns
  | Apply ->
    t.epochs <- t.epochs + 1;
    let work = ref 1_000 in
    apply_epoch t work;
    t.phase <- Arm;
    Migration_intf.Work !work

let kthreads t = [ { Migration_intf.kname = "thermostat"; kstep = kthread t } ]

let stats t =
  [
    ("epochs", t.epochs);
    ("samples_armed", t.samples_armed);
    ("promoted_regions", t.promoted_regions);
    ("demoted_regions", t.demoted_regions);
  ]
