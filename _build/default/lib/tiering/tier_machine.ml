type config = {
  hw_threads : int;
  fast_frames : int;
  slow_frames : int;
  costs : Mem.Costs.t;
  slow_extra_ns : int;
  hint_fault_ns : int;
  migrate_page_ns : int;
  segment_pages : int;
  hit_cpu_ns : int;
  barrier_groups : int array option;
  kthread_jitter_ns : int;
  max_runtime_ns : int;
  seed : int;
}

let default_config ~fast_frames ~slow_frames ~seed =
  {
    hw_threads = 12;
    fast_frames;
    slow_frames;
    costs =
      Mem.Costs.scaled { Mem.Costs.default with region_size = 64; spatial_scan_max = 64 };
    slow_extra_ns = 3_000_000;
    hint_fault_ns = 50_000;
    migrate_page_ns = 400_000;
    segment_pages = 32;
    hit_cpu_ns = 20;
    barrier_groups = None;
    kthread_jitter_ns = 50_000;
    max_runtime_ns = 50_000_000_000_000;
    seed;
  }

type result = {
  runtime_ns : int;
  fast_touches : int;
  slow_touches : int;
  cold_touches : int;
  hint_faults : int;
  promotions : int;
  demotions : int;
  failed_promotions : int;
  fast_resident : int;
  slow_resident : int;
  per_thread_finish : int array;
  policy_stats : (string * int) list;
  policy_name : string;
}

let slow_fraction r =
  let warm = r.fast_touches + r.slow_touches in
  if warm = 0 then 0.0 else float_of_int r.slow_touches /. float_of_int warm

type kthread_state = {
  kt : Migration_intf.kthread;
  mutable sleeping : bool;
}

type t = {
  cfg : config;
  sim : Engine.Sim.t;
  cpu : Engine.Cpu.t;
  rng : Engine.Rng.t;
  pt : Mem.Page_table.t;
  tier_of : int array; (* vpn -> 0 fast, 1 slow, -1 untouched *)
  poisoned : Bytes.t;
  mutable fast_used : int;
  mutable slow_used : int;
  workload : Workload.Chunk.packed;
  mutable policy : Migration_intf.packed option;
  groups : int array;
  group_size : int array;
  group_arrived : int array;
  group_waiters : int list array;
  finish_ns : int array;
  mutable active_threads : int;
  mutable kthreads : kthread_state array;
  mutable drive : kthread_state -> unit;
  mutable stopped : bool;
  mutable fast_touches : int;
  mutable slow_touches : int;
  mutable cold_touches : int;
  mutable hint_faults : int;
  mutable promotions : int;
  mutable demotions : int;
  mutable failed_promotions : int;
}

let policy_of t =
  match t.policy with
  | Some p -> p
  | None -> invalid_arg "Tier_machine: policy not installed"

let is_poisoned t vpn = Bytes.get t.poisoned vpn = '\001'

let set_poisoned t vpn v = Bytes.set t.poisoned vpn (if v then '\001' else '\000')

let wake_kthreads t =
  Array.iter
    (fun ks ->
      if ks.sleeping then begin
        ks.sleeping <- false;
        Engine.Sim.schedule t.sim ~delay:0 (fun _ -> t.drive ks)
      end)
    t.kthreads

(* Map a page for the first time: ask the policy where it wants it, fall
   back to whichever tier has room. *)
let place_cold t vpn =
  let (Migration_intf.Packed ((module P), p)) = policy_of t in
  let preferred = P.initial_tier p ~vpn in
  let tier =
    match preferred with
    | Migration_intf.Fast when t.fast_used < t.cfg.fast_frames -> 0
    | Migration_intf.Slow when t.slow_used < t.cfg.slow_frames -> 1
    | Migration_intf.Fast -> 1
    | Migration_intf.Slow -> 0
  in
  if tier = 0 then begin
    if t.fast_used >= t.cfg.fast_frames then failwith "Tier_machine: out of memory";
    t.fast_used <- t.fast_used + 1
  end
  else begin
    if t.slow_used >= t.cfg.slow_frames then failwith "Tier_machine: out of memory";
    t.slow_used <- t.slow_used + 1
  end;
  t.tier_of.(vpn) <- tier;
  (* Dummy identity mapping so accessed/dirty bits live in a real PTE. *)
  Mem.Page_table.set t.pt vpn (Mem.Pte.mapped ~pfn:vpn ~file_backed:false);
  P.on_placed p ~vpn
    (if tier = 0 then Migration_intf.Fast else Migration_intf.Slow);
  (* Fast tier filling up is this machine's memory-pressure signal. *)
  if t.fast_used >= t.cfg.fast_frames then wake_kthreads t

let touch t ~(cpu_acc : int ref) ~vpn ~write =
  (match t.tier_of.(vpn) with
  | -1 ->
    t.cold_touches <- t.cold_touches + 1;
    cpu_acc := !cpu_acc + t.cfg.costs.Mem.Costs.fault_trap_ns;
    place_cold t vpn
  | 0 ->
    t.fast_touches <- t.fast_touches + 1;
    cpu_acc := !cpu_acc + t.cfg.hit_cpu_ns
  | _ ->
    t.slow_touches <- t.slow_touches + 1;
    cpu_acc := !cpu_acc + t.cfg.hit_cpu_ns + t.cfg.slow_extra_ns);
  if is_poisoned t vpn then begin
    set_poisoned t vpn false;
    t.hint_faults <- t.hint_faults + 1;
    cpu_acc := !cpu_acc + t.cfg.hint_fault_ns;
    let (Migration_intf.Packed ((module P), p)) = policy_of t in
    let tier = if t.tier_of.(vpn) = 0 then Migration_intf.Fast else Migration_intf.Slow in
    P.on_hint_fault p ~vpn tier ~write
  end;
  let pte = Mem.Page_table.get t.pt vpn in
  let pte = Mem.Pte.set_accessed pte in
  let pte = if write then Mem.Pte.set_dirty pte else pte in
  Mem.Page_table.set t.pt vpn pte

let page_at pages i =
  match pages with
  | Workload.Chunk.Range { start; stride; _ } -> start + (i * stride)
  | Workload.Chunk.Pages a -> a.(i)
  | Workload.Chunk.Single p -> p

let rec run_thread t tid =
  if not t.stopped then
    match Workload.Chunk.packed_next t.workload ~tid with
    | Workload.Chunk.Chunk c -> process_segment t tid c ~index:0
    | Workload.Chunk.Barrier -> barrier_arrive t tid
    | Workload.Chunk.Finished -> thread_finished t tid

and process_segment t tid c ~index =
  let open Workload.Chunk in
  let total = page_count c.pages in
  let seg_len = min t.cfg.segment_pages (total - index) in
  Engine.Cpu.run_begin t.cpu;
  let cpu_acc = ref (if total = 0 then c.cpu_ns else c.cpu_ns * seg_len / total) in
  for i = index to index + seg_len - 1 do
    let write = c.write && i >= c.read_prefix in
    touch t ~cpu_acc ~vpn:(page_at c.pages i) ~write
  done;
  Engine.Cpu.charge t.cpu !cpu_acc;
  let wall =
    int_of_float
      (float_of_int (Engine.Cpu.scale t.cpu !cpu_acc) *. Engine.Rng.jitter t.rng 0.02)
  in
  let next_index = index + seg_len in
  Engine.Sim.schedule t.sim ~delay:wall (fun _ ->
      Engine.Cpu.run_end t.cpu;
      if not t.stopped then
        if next_index >= total then run_thread t tid
        else process_segment t tid c ~index:next_index)

and barrier_arrive t tid =
  let g = t.groups.(tid) in
  t.group_arrived.(g) <- t.group_arrived.(g) + 1;
  t.group_waiters.(g) <- tid :: t.group_waiters.(g);
  if t.group_arrived.(g) >= t.group_size.(g) then begin
    let waiters = t.group_waiters.(g) in
    t.group_arrived.(g) <- 0;
    t.group_waiters.(g) <- [];
    Engine.Sim.schedule t.sim ~delay:t.cfg.costs.Mem.Costs.barrier_ns (fun _ ->
        List.iter (fun w -> run_thread t w) waiters)
  end

and thread_finished t tid =
  if t.finish_ns.(tid) < 0 then begin
    t.finish_ns.(tid) <- Engine.Sim.now t.sim;
    t.active_threads <- t.active_threads - 1;
    if t.active_threads <= 0 then begin
      t.stopped <- true;
      Engine.Sim.stop t.sim
    end
  end

let make_driver t ks =
  let sched_delay () =
    if t.cfg.kthread_jitter_ns <= 0 then 0
    else begin
      let mean = float_of_int t.cfg.kthread_jitter_ns *. Engine.Cpu.load t.cpu in
      int_of_float (Engine.Rng.exponential t.rng ~mean)
    end
  in
  let rec drive () =
    if not t.stopped then
      match ks.kt.Migration_intf.kstep () with
      | Migration_intf.Work w ->
        Engine.Cpu.run_begin t.cpu;
        Engine.Cpu.charge t.cpu w;
        let wall = Engine.Cpu.scale t.cpu w in
        Engine.Sim.schedule t.sim ~delay:(wall + sched_delay ()) (fun _ ->
            Engine.Cpu.run_end t.cpu;
            drive ())
      | Migration_intf.Sleep d ->
        Engine.Sim.schedule t.sim ~delay:(d + sched_delay ()) (fun _ -> drive ())
      | Migration_intf.Sleep_until_woken -> ks.sleeping <- true
  in
  drive

let run cfg ~policy ~workload =
  let footprint = Workload.Chunk.packed_footprint workload in
  if cfg.fast_frames + cfg.slow_frames < footprint then
    invalid_arg "Tier_machine.run: tiers smaller than the footprint";
  let nthreads = Workload.Chunk.packed_threads workload in
  let rng = Engine.Rng.create cfg.seed in
  let groups =
    match cfg.barrier_groups with
    | Some g ->
      if Array.length g <> nthreads then invalid_arg "Tier_machine: barrier_groups size";
      g
    | None -> Array.make nthreads 0
  in
  let ngroups = 1 + Array.fold_left max 0 groups in
  let group_size = Array.make ngroups 0 in
  Array.iter (fun g -> group_size.(g) <- group_size.(g) + 1) groups;
  let t =
    {
      cfg;
      sim = Engine.Sim.create ();
      cpu = Engine.Cpu.create ~hw_threads:cfg.hw_threads;
      rng;
      pt =
        Mem.Page_table.create ~region_size:cfg.costs.Mem.Costs.region_size ~asid:0
          ~pages:footprint ();
      tier_of = Array.make footprint (-1);
      poisoned = Bytes.make footprint '\000';
      fast_used = 0;
      slow_used = 0;
      workload;
      policy = None;
      groups;
      group_size;
      group_arrived = Array.make ngroups 0;
      group_waiters = Array.make ngroups [];
      finish_ns = Array.make nthreads (-1);
      active_threads = nthreads;
      kthreads = [||];
      drive = (fun _ -> ());
      stopped = false;
      fast_touches = 0;
      slow_touches = 0;
      cold_touches = 0;
      hint_faults = 0;
      promotions = 0;
      demotions = 0;
      failed_promotions = 0;
    }
  in
  let promote ~vpn =
    if t.tier_of.(vpn) = 1 && t.fast_used < cfg.fast_frames then begin
      t.tier_of.(vpn) <- 0;
      t.fast_used <- t.fast_used + 1;
      t.slow_used <- t.slow_used - 1;
      t.promotions <- t.promotions + 1;
      true
    end
    else begin
      if t.tier_of.(vpn) = 1 then t.failed_promotions <- t.failed_promotions + 1;
      false
    end
  in
  let demote ~vpn =
    if t.tier_of.(vpn) = 0 && t.slow_used < cfg.slow_frames then begin
      t.tier_of.(vpn) <- 1;
      t.fast_used <- t.fast_used - 1;
      t.slow_used <- t.slow_used + 1;
      t.demotions <- t.demotions + 1;
      true
    end
    else false
  in
  let env =
    {
      Migration_intf.costs = cfg.costs;
      pt = t.pt;
      rng = Engine.Rng.split rng;
      now = (fun () -> Engine.Sim.now t.sim);
      tier_of =
        (fun vpn ->
          match t.tier_of.(vpn) with
          | 0 -> Some Migration_intf.Fast
          | 1 -> Some Migration_intf.Slow
          | _ -> None);
      fast_free = (fun () -> cfg.fast_frames - t.fast_used);
      slow_free = (fun () -> cfg.slow_frames - t.slow_used);
      fast_capacity = cfg.fast_frames;
      migrate_cost_ns = cfg.migrate_page_ns;
      promote;
      demote;
      poison = (fun ~vpn -> set_poisoned t vpn true);
      unpoison = (fun ~vpn -> set_poisoned t vpn false);
    }
  in
  let packed = policy env in
  t.policy <- Some packed;
  let (Migration_intf.Packed ((module P), p)) = packed in
  t.kthreads <-
    Array.of_list (List.map (fun kt -> { kt; sleeping = false }) (P.kthreads p));
  t.drive <- (fun ks -> (make_driver t ks) ());
  Array.iter
    (fun ks -> Engine.Sim.schedule t.sim ~delay:0 (fun _ -> t.drive ks))
    t.kthreads;
  for tid = 0 to nthreads - 1 do
    Engine.Sim.schedule t.sim ~delay:0 (fun _ -> run_thread t tid)
  done;
  Engine.Sim.run ~until:cfg.max_runtime_ns t.sim;
  let runtime =
    Array.fold_left (fun acc f -> max acc f) (Engine.Sim.now t.sim) t.finish_ns
  in
  {
    runtime_ns = runtime;
    fast_touches = t.fast_touches;
    slow_touches = t.slow_touches;
    cold_touches = t.cold_touches;
    hint_faults = t.hint_faults;
    promotions = t.promotions;
    demotions = t.demotions;
    failed_promotions = t.failed_promotions;
    fast_resident = t.fast_used;
    slow_resident = t.slow_used;
    per_thread_finish = Array.copy t.finish_ns;
    policy_stats = P.stats p;
    policy_name = P.policy_name;
  }
