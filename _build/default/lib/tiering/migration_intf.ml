(** The contract between the tiered machine and a page migration policy.

    The paper's §II-C surveys this design space: emerging systems place
    pages across a fast tier (local DRAM) and a slow tier (CXL/remote
    memory) and migrate between them.  Unlike swap-based replacement,
    slow-tier pages remain mapped — every access just pays a latency
    penalty — so policies optimize the {e placement} of the working set
    rather than avoiding faults.

    Two information channels exist, mirroring §II-A:

    - {b accessed-bit scans}: free-ish hints with coarse timing (TPP);
    - {b page poisoning}: a policy may poison PTEs; the next touch takes
      a hint fault — precise and timestamped, but the fault costs the
      application (Thermostat, AutoNUMA).

    Policies act through the machine callbacks in {!env}: [promote]
    moves a page to the fast tier (the machine demotes nothing on its
    own — if the fast tier is full the call fails), [demote] moves one
    to the slow tier, [poison] arms a hint fault.  Costs are charged via
    the returned work of {!kstep}s, as in the replacement-policy
    interface. *)

type tier = Fast | Slow

let tier_name = function Fast -> "fast" | Slow -> "slow"

type env = {
  costs : Mem.Costs.t;
  pt : Mem.Page_table.t;
  rng : Engine.Rng.t;
  now : unit -> int;
  tier_of : int -> tier option;  (** [None] until first touch *)
  fast_free : unit -> int;
  slow_free : unit -> int;
  fast_capacity : int;
  migrate_cost_ns : int;
      (** CPU work to charge per migrated page (copy + remap) *)
  promote : vpn:int -> bool;
      (** false when the fast tier is full or the page is not on slow *)
  demote : vpn:int -> bool;
  poison : vpn:int -> unit;
  unpoison : vpn:int -> unit;
}

type kstep = Work of int | Sleep of int | Sleep_until_woken

type kthread = {
  kname : string;
  kstep : unit -> kstep;
}

module type S = sig
  type t

  val policy_name : string

  val create : env -> t

  val initial_tier : t -> vpn:int -> tier
  (** Placement decision on first touch.  The machine falls back to the
      other tier if the preferred tier is full. *)

  val on_placed : t -> vpn:int -> tier -> unit
  (** The machine placed a cold page (the actual tier may differ from
      the policy's preference when a tier was full). *)

  val on_hint_fault : t -> vpn:int -> tier -> write:bool -> unit
  (** A poisoned page was touched (the machine already charged the
      fault and cleared the poison). *)

  val kthreads : t -> kthread list

  val stats : t -> (string * int) list
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let packed_name (Packed ((module P), _)) = P.policy_name
