(** TPP-style transparent page placement (Maruf et al., ASPLOS'23;
    paper §II-C).

    Directly built on Clock's data structures: the fast tier keeps
    active/inactive lists balanced by accessed-bit scans, and demotion
    targets the inactive tail — "adapting Clock for page migration by
    having evictions target lower memory tiers instead of disk".
    Promotion uses NUMA-hint faults (page poisoning) on slow-tier pages:
    a page hint-faulting twice within the promotion window is considered
    part of the working set and promoted, TPP's defence against
    promoting single-touch pages.

    A headroom of free fast-tier frames is maintained so promotions
    never stall waiting for demotions. *)

type config = {
  headroom_frac : float;   (** keep this fraction of fast frames free *)
  scan_batch : int;
  promotion_window_ns : int;
  poison_batch : int;      (** slow pages poisoned per step *)
  wakeup_ns : int;
}

let default_config =
  {
    headroom_frac = 0.02;
    scan_batch = 32;
    promotion_window_ns = 2_000_000_000;
    poison_batch = 64;
    wakeup_ns = 10_000_000;
  }

let active = 0
let inactive = 1

type t = {
  env : Migration_intf.env;
  config : config;
  lists : Structures.Dlist.t; (* fast-tier pages, keyed by vpn *)
  last_hint_ns : int array;   (* vpn -> last hint-fault time, -1 none *)
  mutable poison_cursor : int;
  mutable just_worked : bool;
  mutable scans : int;
  mutable rotations : int;
  mutable deactivations : int;
  mutable hint_promotions : int;
}

let policy_name = "tpp"

let create_with ?(config = default_config) (env : Migration_intf.env) =
  let pages = Mem.Page_table.pages env.Migration_intf.pt in
  {
    env;
    config;
    lists = Structures.Dlist.create ~nodes:pages ~lists:2;
    last_hint_ns = Array.make pages (-1);
    poison_cursor = 0;
    just_worked = false;
    scans = 0;
    rotations = 0;
    deactivations = 0;
    hint_promotions = 0;
  }

let create env = create_with env

let headroom t =
  max 1 (int_of_float (float_of_int t.env.Migration_intf.fast_capacity
                       *. t.config.headroom_frac))

let initial_tier t ~vpn:_ =
  if t.env.Migration_intf.fast_free () > headroom t then Migration_intf.Fast
  else Migration_intf.Slow

let on_placed t ~vpn = function
  | Migration_intf.Fast -> Structures.Dlist.move_head t.lists ~list:active ~node:vpn
  | Migration_intf.Slow -> ()

(* Scan one fast-tier page from a list tail, Clock style. *)
let scan_one t ~list ~on_idle (work : int ref) =
  match Structures.Dlist.tail t.lists list with
  | None -> false
  | Some vpn ->
    let c = t.env.Migration_intf.costs in
    work := !work + c.Mem.Costs.rmap_walk_ns;
    t.scans <- t.scans + 1;
    let pte = Mem.Page_table.get t.env.Migration_intf.pt vpn in
    if (not (Mem.Pte.present pte)) || t.env.Migration_intf.tier_of vpn <> Some Migration_intf.Fast
    then begin
      Structures.Dlist.remove t.lists ~node:vpn;
      true
    end
    else if Mem.Pte.accessed pte then begin
      Mem.Page_table.set t.env.Migration_intf.pt vpn (Mem.Pte.clear_accessed pte);
      Structures.Dlist.move_head t.lists ~list:active ~node:vpn;
      t.rotations <- t.rotations + 1;
      true
    end
    else begin
      on_idle vpn;
      true
    end

let demote_for_headroom t (work : int ref) =
  let needed = ref (headroom t - t.env.Migration_intf.fast_free ()) in
  let budget = ref (4 * t.config.scan_batch) in
  while !needed > 0 && !budget > 0 do
    (* Rebalance: keep the inactive list populated. *)
    if
      Structures.Dlist.size t.lists inactive * 2
      < Structures.Dlist.size t.lists active
    then
      ignore
        (scan_one t ~list:active
           ~on_idle:(fun vpn ->
             Structures.Dlist.move_head t.lists ~list:inactive ~node:vpn;
             t.deactivations <- t.deactivations + 1)
           work);
    let demoted =
      scan_one t ~list:inactive
        ~on_idle:(fun vpn ->
          if t.env.Migration_intf.demote ~vpn then begin
            Structures.Dlist.remove t.lists ~node:vpn;
            work := !work + t.env.Migration_intf.migrate_cost_ns;
            decr needed
          end)
        work
    in
    if not demoted then begin
      (* Inactive drained: pull from active. *)
      ignore
        (scan_one t ~list:active
           ~on_idle:(fun vpn ->
             Structures.Dlist.move_head t.lists ~list:inactive ~node:vpn)
           work)
    end;
    decr budget
  done

(* Poison a rotating batch of slow-tier pages so their next touches
   produce promotion candidates. *)
let arm_hints t (work : int ref) =
  let pages = Mem.Page_table.pages t.env.Migration_intf.pt in
  let c = t.env.Migration_intf.costs in
  let armed = ref 0 and scanned = ref 0 in
  while !armed < t.config.poison_batch && !scanned < 4 * t.config.poison_batch do
    let vpn = t.poison_cursor in
    t.poison_cursor <- (t.poison_cursor + 1) mod pages;
    incr scanned;
    work := !work + c.Mem.Costs.pte_scan_ns;
    if t.env.Migration_intf.tier_of vpn = Some Migration_intf.Slow then begin
      t.env.Migration_intf.poison ~vpn;
      incr armed
    end
  done

let on_hint_fault t ~vpn tier ~write:_ =
  match tier with
  | Migration_intf.Fast -> ()
  | Migration_intf.Slow ->
    let now = t.env.Migration_intf.now () in
    let last = t.last_hint_ns.(vpn) in
    t.last_hint_ns.(vpn) <- now;
    (* Second touch within the window: working set, promote. *)
    if last >= 0 && now - last <= t.config.promotion_window_ns then begin
      if t.env.Migration_intf.promote ~vpn then begin
        t.hint_promotions <- t.hint_promotions + 1;
        Structures.Dlist.move_head t.lists ~list:active ~node:vpn
      end
    end
    else
      (* First touch: re-arm so a second touch is observable. *)
      t.env.Migration_intf.poison ~vpn

(* One sweep of work, then sleep until the next period. *)
let kthread t () =
  if t.just_worked then begin
    t.just_worked <- false;
    Migration_intf.Sleep t.config.wakeup_ns
  end
  else begin
    let work = ref 1_000 in
    demote_for_headroom t work;
    arm_hints t work;
    t.just_worked <- true;
    Migration_intf.Work !work
  end

let kthreads t = [ { Migration_intf.kname = "tpp"; kstep = kthread t } ]

let stats t =
  [
    ("active", Structures.Dlist.size t.lists active);
    ("inactive", Structures.Dlist.size t.lists inactive);
    ("scans", t.scans);
    ("rotations", t.rotations);
    ("deactivations", t.deactivations);
    ("hint_promotions", t.hint_promotions);
  ]
