(** Migration-policy registry, mirroring {!Policy.Registry}. *)

type spec =
  | Static
  | Tpp
  | Thermostat
  | Autonuma

val name : spec -> string

val of_name : string -> spec option

val all : spec list

val known_names : string list

val create : spec -> Migration_intf.env -> Migration_intf.packed
