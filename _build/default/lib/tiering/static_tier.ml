(** First-touch placement with no migration: pages land in the fast
    tier until it fills, then in the slow tier, and never move.  The
    baseline every migration policy must beat — and what a tiered system
    degenerates to when its policy cannot keep up. *)

type t = {
  env : Migration_intf.env;
}

let policy_name = "static"

let create env = { env }

let initial_tier t ~vpn:_ =
  if t.env.Migration_intf.fast_free () > 0 then Migration_intf.Fast
  else Migration_intf.Slow

let on_placed _t ~vpn:_ _tier = ()

let on_hint_fault _t ~vpn:_ _tier ~write:_ = ()

let kthreads _t = []

let stats _t = []
