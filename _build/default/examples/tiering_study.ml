let () =
  Unix.putenv "REPRO_FAST" "1";
  Repro_core.Tier_study.study ~trials:1 ()
