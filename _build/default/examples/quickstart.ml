(* Quickstart: build a machine by hand, run a custom access pattern
   under MG-LRU, and read the metrics.

     dune exec examples/quickstart.exe

   The pattern is the classic policy stress: a hot set that must be kept
   resident while a large cold region streams past it. *)

let () =
  (* A 1024-page address space: pages 0-63 are hot (touched every pass),
     the rest are streamed once per pass. *)
  let hot = Array.init 64 (fun i -> i) in
  let stream pass =
    Array.init 480 (fun i -> 64 + (((pass * 480) + i) mod 960))
  in
  let steps =
    List.concat_map
      (fun pass -> [ hot; stream pass; hot ])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let workload = Workload.Trace.of_page_lists ~footprint:1024 steps in

  (* Memory for half the footprint, SSD swap, paper-default cost model. *)
  let config = Repro_core.Machine.default_config ~capacity_frames:512 ~seed:42 in

  let result =
    Repro_core.Machine.run config
      ~policy:(Policy.Registry.create Policy.Registry.Mglru_default)
      ~workload:(Workload.Chunk.Packed ((module Workload.Trace), workload))
  in

  let open Repro_core.Machine in
  Printf.printf "policy            : %s\n" result.policy_name;
  Printf.printf "virtual runtime   : %.3f s\n" (float_of_int result.runtime_ns /. 1e9);
  Printf.printf "major faults      : %d\n" result.major_faults;
  Printf.printf "minor faults      : %d (first touches)\n" result.minor_faults;
  Printf.printf "swap reads/writes : %d / %d\n" result.swap_ins result.swap_outs;
  Printf.printf "direct reclaims   : %d\n" result.direct_reclaims;
  Printf.printf "resident at end   : %d pages\n" result.resident_at_end;
  print_newline ();
  print_endline "policy internals:";
  List.iter (fun (k, v) -> Printf.printf "  %-24s %d\n" k v) result.policy_stats;
  print_newline ();
  print_endline
    "A good policy keeps the 64 hot pages resident through the streams;";
  print_endline
    "compare major faults against Policy.Registry.Fifo or Policy.Registry.Clock."
