(* Multi-tenancy (paper SVI-D, future work): two tenants share one
   machine - a latency-sensitive KV cache next to a batch analytics job -
   and fight over the same physical memory under one replacement policy.

     dune exec examples/multi_tenant.exe *)

let make_tenants () =
  let ycsb =
    Workload.Ycsb.create
      ~config:
        {
          Workload.Ycsb.default_config with
          Workload.Ycsb.items = 20_000;
          requests = 120_000;
          threads = 2;
        }
      ~variant:Workload.Ycsb.B
      ~rng:(Engine.Rng.create 7) ()
  in
  let tpch =
    Workload.Tpch.create
      ~config:
        {
          Workload.Tpch.default_config with
          Workload.Tpch.table_pages = 1_200;
          shuffle_pages = 700;
          hash_pages = 300;
          dimension_pages = 200;
          threads = 4;
          queries = 3;
        }
      ~rng:(Engine.Rng.create 8) ()
  in
  Workload.Multi.create
    [
      Workload.Chunk.Packed ((module Workload.Ycsb), ycsb);
      Workload.Chunk.Packed ((module Workload.Tpch), tpch);
    ]

let run policy =
  let tenants = make_tenants () in
  let footprint = Workload.Multi.footprint_pages tenants in
  let config =
    {
      (Repro_core.Machine.default_config
         ~capacity_frames:(footprint / 2)
         ~seed:99)
      with
      Repro_core.Machine.barrier_groups = Some (Workload.Multi.barrier_groups tenants);
    }
  in
  let r =
    Repro_core.Machine.run config
      ~policy:(Policy.Registry.create policy)
      ~workload:(Workload.Chunk.Packed ((module Workload.Multi), tenants))
  in
  (tenants, r)

let () =
  Repro_core.Report.section "Multi-tenant: YCSB-B cache + TPC-H batch, 50% memory";
  let rows =
    List.map
      (fun policy ->
        let tenants, r = run policy in
        (* Tenant 0 = YCSB (threads 0-1), tenant 1 = TPC-H (threads 2-5). *)
        let finish_of_tenant i =
          let finishes = r.Repro_core.Machine.per_thread_finish in
          Array.to_list finishes
          |> List.filteri (fun tid _ -> Workload.Multi.tenant_of_thread tenants tid = i)
          |> List.fold_left max 0
        in
        let reads = r.Repro_core.Machine.read_latencies in
        let p999 =
          if Array.length reads = 0 then 0.0 else Stats.Percentile.quantile reads 0.999
        in
        [
          Policy.Registry.name policy;
          Repro_core.Report.fsec (float_of_int (finish_of_tenant 0) /. 1e9);
          Repro_core.Report.fsec (float_of_int (finish_of_tenant 1) /. 1e9);
          Repro_core.Report.fns p999;
          Repro_core.Report.fcount (float_of_int r.Repro_core.Machine.major_faults);
          string_of_int r.Repro_core.Machine.direct_reclaims;
        ])
      Policy.Registry.[ Clock; Mglru_default; Fifo ]
  in
  Repro_core.Report.table
    ~header:[ "policy"; "cache done"; "batch done"; "cache p99.9"; "faults"; "direct" ]
    rows;
  Repro_core.Report.note
    "The batch tenant's table streams compete with the cache tenant's hot";
  Repro_core.Report.note
    "items inside one set of generations/lists - the isolation problem the";
  Repro_core.Report.note "paper leaves to future work."
