(* Belady bound: how far from offline-optimal are the online policies on
   a zipfian reference string?

     dune exec examples/belady_bound.exe

   OPT needs the future, so it runs as a trace simulation; the online
   numbers come from cache simulations of the same trace. *)

let () =
  let n_pages = 2_000 in
  let capacity = 400 in
  let accesses = 120_000 in
  let zipf = Workload.Zipf.create ~n:n_pages ~exponent:0.9 in
  let rng = Engine.Rng.create 17 in
  let trace = Array.init accesses (fun _ -> Workload.Zipf.sample zipf rng) in
  Repro_core.Report.section
    (Printf.sprintf "Belady bound: zipf(0.9) over %d pages, capacity %d" n_pages
       capacity);
  let opt = Policy.Belady.simulate ~capacity ~trace in
  let lru = Policy.Belady.lru_simulate ~capacity ~trace in
  let fifo = Policy.Belady.fifo_simulate ~capacity ~trace in
  let miss r =
    float_of_int r.Policy.Belady.faults /. float_of_int r.Policy.Belady.accesses
  in
  let rows =
    List.map
      (fun (name, r) ->
        [
          name;
          Repro_core.Report.fcount (float_of_int r.Policy.Belady.faults);
          Printf.sprintf "%.2f%%" (100.0 *. miss r);
          Repro_core.Report.fnorm (miss r /. miss opt);
        ])
      [ ("belady-opt", opt); ("lru", lru); ("fifo", fifo) ]
  in
  Repro_core.Report.table ~header:[ "policy"; "faults"; "miss rate"; "vs OPT" ] rows;
  Repro_core.Report.note
    "On stationary zipfian traffic LRU buys little over FIFO - the";
  Repro_core.Report.note
    "observation behind the paper's remark (SV-B) that KV caches ship FIFO";
  Repro_core.Report.note "variants, and why every MG-LRU variant ties on YCSB."
