examples/tiering_study.mli:
