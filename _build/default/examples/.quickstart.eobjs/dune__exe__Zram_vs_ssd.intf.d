examples/zram_vs_ssd.mli:
