examples/tiering_study.ml: Repro_core Unix
