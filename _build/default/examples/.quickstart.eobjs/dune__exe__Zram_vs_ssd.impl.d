examples/zram_vs_ssd.ml: List Policy Repro_core Unix
