examples/tail_latency.ml: Array List Policy Repro_core Stats Unix Workload
