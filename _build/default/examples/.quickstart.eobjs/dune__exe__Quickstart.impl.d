examples/quickstart.ml: Array List Policy Printf Repro_core Workload
