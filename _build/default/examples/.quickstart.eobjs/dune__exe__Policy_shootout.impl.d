examples/policy_shootout.ml: Float List Policy Repro_core Unix
