examples/quickstart.mli:
