examples/belady_bound.mli:
