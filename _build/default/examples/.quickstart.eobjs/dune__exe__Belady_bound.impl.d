examples/belady_bound.ml: Array Engine List Policy Printf Repro_core Workload
