examples/policy_shootout.mli:
