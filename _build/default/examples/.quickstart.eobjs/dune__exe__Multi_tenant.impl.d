examples/multi_tenant.ml: Array Engine List Policy Repro_core Stats Workload
