(* Command-line interface to the characterization harness.

   repro fig 1 .. 12 | all    reproduce the paper's figures
   repro run ...              run one experiment cell
   repro list                 show available workloads and policies
   repro sweep ...            capacity-ratio sweep for one workload
   repro profile ...          per-phase CPU attribution tables
   repro regret ...           faults-over-Belady scoreboard
   repro trace-summary FILE   aggregate a JSONL trace into tables
   repro fleet ...            multi-tenant containment experiment
   repro chaos ...            runtime-transient resilience report
   repro fuzz ...             config-fuzz soak with shrinking repros
   repro --list-policies      versioned policy descriptor table

   Every subcommand builds one explicit Repro_core.Runner.ctx from its
   flags (scaling profile, fault plan, audit cadence, --jobs, telemetry,
   durability) and threads it through the drivers; the REPRO_TRIALS /
   REPRO_YCSB_TRIALS / REPRO_FAST environment variables remain as
   documented fallbacks, read in exactly one place
   (Runner.profile_from_env).  --trace / --sample-every write their
   files after the experiment output, from the deterministic trace log,
   so traced runs stay byte-identical across --jobs values.

   Durability: --journal FILE appends each completed trial's outcome as
   a checksummed, fsynced JSONL record; --resume warm-starts the cache
   from it so a killed sweep recomputes only what is missing, with
   byte-identical final output.  --trial-timeout SEC cancels runaway
   trials between simulation events; failures render as explicit
   "failed" cells, summarized on stderr at exit, and the exit status is
   non-zero unless --keep-going. *)

open Cmdliner

(* ---------------- the shared run-context terms ---------------- *)

let trials_arg =
  Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N"
         ~doc:"Trials per TPC-H/PageRank cell (default 25, or \\$REPRO_TRIALS).")

let ycsb_trials_arg =
  Arg.(value & opt (some int) None & info [ "ycsb-trials" ] ~docv:"N"
         ~doc:"Trials per YCSB cell (default 2, or \\$REPRO_YCSB_TRIALS).")

let fast_arg =
  Arg.(value & flag & info [ "fast" ] ~doc:"Shrink workloads ~4x for a quick look.")

let scale_arg =
  Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N"
         ~doc:
           "Multiply workload footprints by N toward the paper's native \
            page counts (the default experiments run at 1/256 scale; \
            $(b,--scale 256) reaches 3-4M-page footprints).  Per-page \
            simulated costs shrink by the same factor; $(b,--scale 1) is \
            byte-identical to the default profile.  Also \\$REPRO_SCALE.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:
           "Run trials on N domains in parallel (default: the machine's \
            recommended domain count). Output is bit-identical to $(b,--jobs 1): \
            every trial owns its seeded RNG and simulator, and aggregation \
            is deterministic.")

let fault_plan_conv =
  let parse s =
    match Swapdev.Faulty_device.plan_of_name (String.lowercase_ascii s) with
    | Some plan -> Ok plan
    | None -> Error (`Msg (Printf.sprintf "unknown fault plan %S" s))
  in
  Arg.conv (parse, fun fmt _ -> Format.pp_print_string fmt "<fault-plan>")

let faults_arg =
  Arg.(value & opt fault_plan_conv Swapdev.Faulty_device.none
       & info [ "faults" ] ~docv:"PLAN"
           ~doc:
             "Swap I/O fault-injection plan: none | light | heavy. Deterministic \
              per seed; $(b,none) leaves results bit-identical.")

let audit_every_arg =
  Arg.(value & opt int 0
       & info [ "audit-every" ] ~docv:"MS"
           ~doc:
             "Audit machine-state invariants every MS simulated milliseconds \
              (0 = end-of-run only).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:
             "Record every reclaim/eviction/promotion/swap/OOM event with its \
              simulated timestamp and write them as JSON Lines to FILE after \
              the run. Observation only: results are identical to an untraced \
              run, and the file is byte-identical for every $(b,--jobs) value.")

let sample_every_arg =
  Arg.(value & opt int 0
       & info [ "sample-every" ] ~docv:"NS"
           ~doc:
             "Sample machine state (free frames, residency, refault rate, \
              swap occupancy, per-policy gauges) every NS simulated \
              nanoseconds; 0 disables. Written as long-format CSV (see \
              $(b,--samples)).")

let samples_arg =
  Arg.(value & opt string "samples.csv"
       & info [ "samples" ] ~docv:"FILE"
           ~doc:"Destination for the $(b,--sample-every) time series.")

let folded_arg =
  Arg.(value & opt (some string) None
       & info [ "folded" ] ~docv:"FILE"
           ~doc:
             "Write merged per-cell phase totals as folded stacks \
              (flamegraph.pl / speedscope input) to FILE after the run.  \
              Implies profiling.  Like the profiler itself, observation \
              only: results are identical to an unprofiled run and the \
              file is byte-identical for every $(b,--jobs) value.")

let perfetto_arg =
  Arg.(value & opt (some string) None
       & info [ "perfetto" ] ~docv:"FILE"
           ~doc:
             "Write per-trial phase span timelines as Chrome trace-event \
              JSON (loadable in Perfetto or chrome://tracing) to FILE \
              after the run.  Implies profiling with span recording, \
              which disables $(b,--resume) warm-starts (journal records \
              carry no spans).")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:
             "Append every completed trial's outcome to FILE as a checksummed \
              JSONL record (fsynced per trial): a killed run loses at most \
              its in-flight trials.  Enables $(b,--resume).")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:
             "Warm-start the result cache from the $(b,--journal) file and \
              recompute only the missing trials; final output is \
              byte-identical to an uninterrupted run.  Torn or corrupt tail \
              records are reported on stderr and re-run.")

let trial_timeout_arg =
  Arg.(value & opt float 0.0
       & info [ "trial-timeout" ] ~docv:"SEC"
           ~doc:
             "Per-trial wall-clock deadline in seconds (0 = none).  A trial \
              that exceeds it is cancelled between simulation events and \
              reported as a $(b,failed) cell; the rest of the sweep \
              continues.")

let keep_going_arg =
  Arg.(value & flag
       & info [ "k"; "keep-going" ]
           ~doc:
             "Exit 0 even if some trials failed or timed out.  Without this \
              flag, failed trials still render as explicit $(b,failed) cells \
              and the whole sweep completes, but the exit status is \
              non-zero.")

let cgroups_conv =
  let parse s =
    match Mem.Memcg.parse_spec s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun fmt spec -> Format.pp_print_string fmt (Mem.Memcg.spec_to_string spec))

let cgroups_arg =
  Arg.(value & opt (some cgroups_conv) None
       & info [ "cgroups" ] ~docv:"SPEC"
           ~doc:
             "Partition threads into memory cgroups with Linux-style limits,               e.g. $(b,hot:threads=0-1,max=40%;bg:threads=2-5,low=15%).               Fields per group: $(b,threads=LO-HI) (ranges joined with +),               $(b,low=), $(b,high=), $(b,max=) (pages or % of capacity).               Reserved group $(b,proactive) (interval=, threshold=, step=)               enables the proactive-reclaim probe; $(b,psi) (interval=)               retunes PSI sampling. Without this flag, output is               byte-identical to builds without the controller.")

let chaos_conv =
  let parse s =
    if String.lowercase_ascii s = "none" then Ok None
    else
      match Repro_core.Chaos.parse_spec s with
      | Ok spec -> Ok (Some spec)
      | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt spec ->
        Format.pp_print_string fmt
          (match spec with
          | None -> "none"
          | Some s -> Repro_core.Chaos.spec_to_string s) )

let chaos_arg =
  Arg.(value & opt (some chaos_conv) None
       & info [ "chaos" ] ~docv:"SPEC"
           ~doc:
             "Inject deterministic runtime transients, e.g.               $(b,hotplug:at=5s,shrink=40%,restore=15s;degrade:at=20s,for=8s,latency=8x).               Segments: $(b,hotplug:) (offline/online capacity),               $(b,degrade:) (swap-device latency/error/wear windows),               $(b,churn:) (rewrite a cgroup's low/high/max; needs               $(b,--cgroups)), $(b,burst:) (thread stall pulses), and the               test-only $(b,corrupt:).  Times take ns/us/ms/s suffixes,               amounts are pages or % of capacity.  Every injection forces an               invariant audit and lands in the $(b,--trace) stream.  With               $(b,none) (or unset) output is byte-identical to builds without               the chaos layer.")

(* Everything a subcommand needs: the run context plus where to flush
   its telemetry afterwards and how to treat failed trials at exit. *)
type setup = {
  ctx : Repro_core.Runner.ctx;
  trace_file : string option;
  samples_file : string option;
  folded_file : string option;
  perfetto_file : string option;
  journal : Repro_core.Journal.t option;
  keep_going : bool;
}

(* Flags override the environment fallbacks; the fast flag is sticky in
   the or-direction so REPRO_FAST=1 keeps working under any flags.
   [profile_default] is true only for the profile subcommand, which
   collects phase totals even without --folded/--perfetto;
   [vmstat_default] likewise for the vmstat subcommand. *)
let build_setup profile_default vmstat_default trials ycsb_trials fast scale jobs faults
    audit_every_ms trace sample_every samples folded perfetto journal_path
    resume trial_timeout keep_going cgroups chaos =
  let base = Repro_core.Runner.profile_from_env () in
  let profile =
    {
      Repro_core.Runner.trials =
        (match trials with Some n -> max 1 n | None -> base.Repro_core.Runner.trials);
      ycsb_trials =
        (match ycsb_trials with
        | Some n -> max 1 n
        | None -> base.Repro_core.Runner.ycsb_trials);
      fast = fast || base.Repro_core.Runner.fast;
      scale =
        (match scale with Some n -> max 1 n | None -> base.Repro_core.Runner.scale);
    }
  in
  let jobs =
    match jobs with Some n -> max 1 n | None -> Engine.Pool.default_jobs ()
  in
  let sample_every = max 0 sample_every in
  let obs = { Obs.trace = trace <> None; sample_every_ns = sample_every } in
  let prof =
    {
      Obs.Prof.enabled = profile_default || folded <> None || perfetto <> None;
      spans = perfetto <> None;
    }
  in
  if resume && journal_path = None then
    prerr_endline "repro: warning: --resume has no effect without --journal";
  let journal, records =
    match journal_path with
    | None -> (None, [])
    | Some path ->
      let j, records = Repro_core.Journal.open_ ~path ~resume in
      (Some j, records)
  in
  let ctx =
    Repro_core.Runner.make_ctx ~profile ~fault_plan:faults
      ~audit_every_ns:(max 0 audit_every_ms * 1_000_000)
      ~jobs ~obs ~prof ~vmstat:vmstat_default ~trial_timeout_s:trial_timeout
      ?journal ?cgroups ?chaos:(Option.join chaos) ()
  in
  (* Resume notes go to stderr so stdout stays byte-identical to an
     uninterrupted run. *)
  if resume then begin
    match journal_path with
    | Some path ->
      let n = Repro_core.Runner.warm_start ctx records in
      Printf.eprintf "journal: warm-started %d trial result(s) from %s\n%!" n
        path
    | None -> ()
  end;
  { ctx; trace_file = trace; samples_file = (if sample_every > 0 then Some samples else None);
    folded_file = folded; perfetto_file = perfetto; journal; keep_going }

(* Flush the telemetry recorded under [setup.ctx], close the journal,
   and report failed trials; called by every subcommand after its own
   output.  Exits non-zero on failures unless --keep-going. *)
let finalize setup =
  (match setup.trace_file with
  | None -> ()
  | Some path ->
    let n = Repro_core.Runner.write_trace setup.ctx ~path in
    Printf.printf "wrote %d trace event(s) to %s\n" n path);
  (match setup.samples_file with
  | None -> ()
  | Some path ->
    let n = Repro_core.Runner.write_samples setup.ctx ~path in
    Printf.printf "wrote %d sample row(s) to %s\n" n path);
  (match setup.folded_file with
  | None -> ()
  | Some path ->
    let n = Repro_core.Runner.write_folded setup.ctx ~path in
    Printf.printf "wrote %d folded stack line(s) to %s\n" n path);
  (match setup.perfetto_file with
  | None -> ()
  | Some path ->
    let n = Repro_core.Runner.write_perfetto setup.ctx ~path in
    Printf.printf "wrote %d span event(s) to %s\n" n path);
  (match setup.journal with
  | Some j -> Repro_core.Journal.close j
  | None -> ());
  match Repro_core.Runner.failures setup.ctx with
  | [] -> ()
  | fails ->
    Printf.eprintf "repro: %d trial(s) failed:\n" (List.length fails);
    List.iter
      (fun (e, reason, timed_out) ->
        Printf.eprintf "  %s: %s%s\n"
          (Repro_core.Runner.exp_name e)
          (if timed_out then "[timeout] " else "")
          reason)
      fails;
    if setup.keep_going then
      Printf.eprintf "repro: continuing despite failures (--keep-going)\n%!"
    else begin
      Printf.eprintf
        "repro: exiting non-zero; pass --keep-going to tolerate failed \
         trials\n\
         %!";
      exit 1
    end

let setup_term ?(profile = false) ?(vmstat = false) () =
  Term.(
    const (build_setup profile vmstat) $ trials_arg $ ycsb_trials_arg $ fast_arg
    $ scale_arg $ jobs_arg $ faults_arg $ audit_every_arg $ trace_arg $ sample_every_arg
    $ samples_arg $ folded_arg $ perfetto_arg $ journal_arg $ resume_arg
    $ trial_timeout_arg $ keep_going_arg $ cgroups_arg $ chaos_arg)

(* ---------------- argument converters ---------------- *)

let workload_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "tpch" -> Ok Repro_core.Runner.Tpch
    | "pagerank" -> Ok Repro_core.Runner.Pagerank
    | "ycsb-a" -> Ok (Repro_core.Runner.Ycsb Workload.Ycsb.A)
    | "ycsb-b" -> Ok (Repro_core.Runner.Ycsb Workload.Ycsb.B)
    | "ycsb-c" -> Ok (Repro_core.Runner.Ycsb Workload.Ycsb.C)
    | _ -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  Arg.conv
    (parse, fun fmt w -> Format.pp_print_string fmt (Repro_core.Runner.workload_kind_name w))

let policy_conv =
  let parse s =
    match Policy.Registry.of_name (String.lowercase_ascii s) with
    | Some spec -> Ok spec
    | None ->
      let hint =
        match Policy.Registry.suggest s with
        | Some near -> Printf.sprintf " (did you mean %S?)" near
        | None -> ""
      in
      Error
        (`Msg
          (Printf.sprintf
             "unknown policy %S%s; `repro --list-policies` shows the table" s
             hint))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Policy.Registry.name p))

let swap_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "ssd" -> Ok Repro_core.Runner.Ssd
    | "zram" -> Ok Repro_core.Runner.Zram
    | _ -> Error (`Msg (Printf.sprintf "unknown swap medium %S" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Repro_core.Runner.swap_name s))

(* ---------------- fig ---------------- *)

let fig_cmd =
  let figures =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"FIGURE" ~doc:"Figure numbers (1-12) or $(b,all).")
  in
  let run setup figures =
    let ctx = setup.ctx in
    try
      if List.mem "all" figures then Repro_core.Figures.run_all ctx
      else
        List.iter
          (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 1 && n <= 12 -> Repro_core.Figures.run ctx n
            | Some _ | None ->
              raise (Invalid_argument (Printf.sprintf "no figure %S" s)))
          figures;
      finalize setup;
      `Ok ()
    with Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Reproduce one or more of the paper's figures (1-12).")
    Term.(ret (const run $ setup_term () $ figures))

(* ---------------- run ---------------- *)

let run_cmd =
  let workload =
    Arg.(value & opt workload_conv Repro_core.Runner.Tpch
         & info [ "w"; "workload" ] ~docv:"WORKLOAD"
             ~doc:"tpch | pagerank | ycsb-a | ycsb-b | ycsb-c")
  in
  let policy =
    Arg.(value & opt policy_conv Policy.Registry.Mglru_default
         & info [ "p"; "policy" ] ~docv:"POLICY"
             ~doc:
               "clock | mglru | gen14 | scan-all | scan-none | scan-rand | fifo | \
                random | lru-exact | crash-test (always fails; exercises \
                failure isolation) | s3-fifo | sieve | perceptron (hook-API \
                guests; see $(b,repro --list-policies))")
  in
  let ratio =
    Arg.(value & opt float 0.5
         & info [ "r"; "ratio" ] ~docv:"R" ~doc:"Memory capacity / footprint.")
  in
  let swap =
    Arg.(value & opt swap_conv Repro_core.Runner.Ssd
         & info [ "s"; "swap" ] ~docv:"MEDIUM" ~doc:"ssd | zram")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-policy internal counters.")
  in
  let run setup workload policy ratio swap verbose =
    let ctx = setup.ctx in
    let faults_on =
      not (Swapdev.Faulty_device.is_none (Repro_core.Runner.fault_plan ctx))
    in
    let audits_on = Repro_core.Runner.audit_every_ns ctx > 0 in
    let n = Repro_core.Runner.trials_for ctx workload in
    Printf.printf "%s / %s / %.0f%% / %s  (%d trial%s)\n"
      (Repro_core.Runner.workload_kind_name workload)
      (Policy.Registry.name policy) (ratio *. 100.0)
      (Repro_core.Runner.swap_name swap) n
      (if n = 1 then "" else "s");
    (* The cell's trials compute in parallel; the per-trial lines print
       from the cache afterwards, in trial order.  Failed trials print
       as explicit lines instead of aborting the command. *)
    let outcomes = Repro_core.Runner.try_cell ctx ~workload ~policy ~ratio ~swap in
    List.iteri
      (fun trial o ->
        match o with
        | Repro_core.Runner.Done r ->
          Printf.printf
            "  trial %2d: runtime %10s  major %9s  ins %9s  outs %9s  direct %6d\n%!"
            trial
            (Repro_core.Report.fsec (float_of_int r.Repro_core.Machine.runtime_ns /. 1e9))
            (Repro_core.Report.fcount (float_of_int r.Repro_core.Machine.major_faults))
            (Repro_core.Report.fcount (float_of_int r.Repro_core.Machine.swap_ins))
            (Repro_core.Report.fcount (float_of_int r.Repro_core.Machine.swap_outs))
            r.Repro_core.Machine.direct_reclaims;
          if faults_on || audits_on then Repro_core.Report.fault_summary r;
          (match r.Repro_core.Machine.memcg with
          | Some s ->
            Repro_core.Report.memcg_summary
              ~runtime_ns:r.Repro_core.Machine.runtime_ns s
          | None -> ());
          if verbose then
            List.iter
              (fun (k, v) -> Printf.printf "      %-24s %d\n" k v)
              r.Repro_core.Machine.policy_stats
        | Repro_core.Runner.Failed { reason; timed_out } ->
          Printf.printf "  trial %2d: failed%s: %s\n%!" trial
            (if timed_out then " (timeout)" else "")
            reason)
      outcomes;
    let results =
      List.filter_map
        (function
          | Repro_core.Runner.Done r -> Some r
          | Repro_core.Runner.Failed _ -> None)
        outcomes
    in
    let clean = List.length results = List.length outcomes in
    if n > 1 && clean then begin
      let rt = Stats.Summary.of_array (Repro_core.Runner.runtimes_s results) in
      let fl = Stats.Summary.of_array (Repro_core.Runner.faults results) in
      Printf.printf "  mean runtime %s (min %s, max %s, spread %.2fx)\n"
        (Repro_core.Report.fsec rt.Stats.Summary.mean)
        (Repro_core.Report.fsec rt.Stats.Summary.min)
        (Repro_core.Report.fsec rt.Stats.Summary.max)
        (Stats.Summary.spread rt);
      Printf.printf "  mean faults %s (CV %.3f)\n"
        (Repro_core.Report.fcount fl.Stats.Summary.mean)
        (Stats.Summary.cv fl)
    end;
    (* Pooled latency tails would silently cover only the surviving
       trials, so they print for clean cells only. *)
    let reads =
      if clean then Repro_core.Runner.pooled_read_latencies results else [||]
    in
    if Array.length reads > 0 then
      Format.printf "  read latency: %a@."
        Stats.Percentile.pp_tail
        (Stats.Percentile.tail_of reads);
    let writes =
      if clean then Repro_core.Runner.pooled_write_latencies results else [||]
    in
    if Array.length writes > 0 then
      Format.printf "  write latency: %a@."
        Stats.Percentile.pp_tail
        (Stats.Percentile.tail_of writes);
    (* Telemetry-only digest: printed only when tracing is on, so
       untraced output stays byte-identical to pre-telemetry builds. *)
    if Obs.config_enabled (Repro_core.Runner.obs ctx) then
      List.iter
        (fun (pname, h) ->
          if Stats.Histogram.count h > 0 then
            Printf.printf
              "  direct-reclaim latency [%s]: n=%s p50=%s p90=%s p99=%s max=%s\n"
              pname
              (Repro_core.Report.fcount (float_of_int (Stats.Histogram.count h)))
              (Repro_core.Report.fns (Stats.Histogram.quantile h 0.5))
              (Repro_core.Report.fns (Stats.Histogram.quantile h 0.9))
              (Repro_core.Report.fns (Stats.Histogram.quantile h 0.99))
              (Repro_core.Report.fns (Stats.Histogram.max_seen h)))
        (Repro_core.Runner.merged_reclaim_hists ctx);
    finalize setup
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment cell and print its metrics.")
    Term.(const run $ setup_term () $ workload $ policy $ ratio $ swap $ verbose)

(* ---------------- list ---------------- *)

let policy_table () =
  Repro_core.Report.table
    ~header:[ "policy"; "kind"; "doc"; "default knobs" ]
    (List.map
       (fun d ->
         [
           d.Policy.Registry.d_name;
           Policy.Registry.kind_label d.Policy.Registry.d_kind;
           d.Policy.Registry.d_doc;
           String.concat " "
             (List.map (fun (k, v) -> k ^ "=" ^ v) d.Policy.Registry.d_knobs);
         ])
       Policy.Registry.descriptors)

let list_cmd =
  let run () =
    print_endline "workloads:";
    List.iter
      (fun w -> Printf.printf "  %s\n" (Repro_core.Runner.workload_kind_name w))
      Repro_core.Runner.all_workloads;
    print_endline "policies:";
    policy_table ();
    print_endline "swap media:";
    print_endline "  ssd   (~7.5 ms / 4 KB op, the paper's measured device)";
    print_endline "  zram  (20/35 us, LZO-RLE-like compression)"
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads, policies, and swap media.")
    Term.(const run $ const ())

(* ---------------- sweep ---------------- *)

let sweep_cmd =
  let workload =
    Arg.(value & opt workload_conv Repro_core.Runner.Tpch
         & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload to sweep.")
  in
  let swap =
    Arg.(value & opt swap_conv Repro_core.Runner.Ssd
         & info [ "s"; "swap" ] ~docv:"MEDIUM" ~doc:"ssd | zram")
  in
  let run setup workload swap =
    let ctx = setup.ctx in
    let ratios = [ 0.5; 0.75; 0.9 ] in
    (* Fan the whole policy x ratio grid out through the pool at once. *)
    Repro_core.Runner.prefetch ctx
      (List.concat_map
         (fun policy ->
           List.concat_map
             (fun ratio ->
               Repro_core.Runner.cell_exps ctx ~workload ~policy ~ratio ~swap)
             ratios)
         Policy.Registry.all_paper_specs);
    let header =
      ("policy"
      :: List.map (fun r -> Printf.sprintf "%.0f%% rt" (r *. 100.0)) ratios)
      @ List.map (fun r -> Printf.sprintf "%.0f%% faults" (r *. 100.0)) ratios
    in
    (* A cell with any failed trial renders as "failed" (NaN through the
       formatters) instead of a silently partial mean. *)
    let cell_means policy ratio =
      let outcomes = Repro_core.Runner.try_cell ctx ~workload ~policy ~ratio ~swap in
      let results =
        List.filter_map
          (function
            | Repro_core.Runner.Done r -> Some r
            | Repro_core.Runner.Failed _ -> None)
          outcomes
      in
      if List.length results < List.length outcomes then (Float.nan, Float.nan)
      else
        ( Repro_core.Runner.mean_runtime_s results,
          Repro_core.Runner.mean_faults results )
    in
    let rows =
      List.map
        (fun policy ->
          let cells = List.map (cell_means policy) ratios in
          (Policy.Registry.name policy
          :: List.map (fun (rt, _) -> Repro_core.Report.fsec rt) cells)
          @ List.map (fun (_, fl) -> Repro_core.Report.fcount fl) cells)
        Policy.Registry.all_paper_specs
    in
    Repro_core.Report.section
      (Printf.sprintf "Capacity sweep: %s on %s"
         (Repro_core.Runner.workload_kind_name workload)
         (Repro_core.Runner.swap_name swap));
    Repro_core.Report.table ~header rows;
    finalize setup
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep capacity ratios for every paper policy.")
    Term.(const run $ setup_term () $ workload $ swap)

(* ---------------- ablate ---------------- *)

let ablate_cmd =
  let studies =
    Arg.(
      value & pos_all string [ "all" ]
      & info [] ~docv:"STUDY"
          ~doc:
            "generations | bloom | spatial | readahead | scan-rand | all")
  in
  let run setup studies =
    let ctx = setup.ctx in
    let dispatch = function
      | "generations" -> Repro_core.Ablation.generations ctx
      | "bloom" -> Repro_core.Ablation.bloom_density ctx
      | "spatial" -> Repro_core.Ablation.spatial_scan ctx
      | "readahead" -> Repro_core.Ablation.readahead ctx
      | "scan-rand" -> Repro_core.Ablation.scan_probability ctx
      | "all" -> Repro_core.Ablation.run_all ctx
      | s -> raise (Invalid_argument (Printf.sprintf "no ablation study %S" s))
    in
    try
      List.iter dispatch studies;
      finalize setup;
      `Ok ()
    with Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Ablate MG-LRU/machine design choices (DESIGN.md \\S5).")
    Term.(ret (const run $ setup_term () $ studies))

(* ---------------- tier ---------------- *)

let tier_cmd =
  let fast_frac =
    Arg.(value & opt float 0.5
         & info [ "fast-frac" ] ~docv:"F"
             ~doc:"Fast-tier size as a fraction of the footprint.")
  in
  let tier_trials =
    Arg.(value & opt int 3 & info [ "tier-trials" ] ~docv:"N" ~doc:"Trials per cell.")
  in
  let run setup fast_frac tier_trials =
    Repro_core.Tier_study.study ~fast_frac ~trials:tier_trials setup.ctx ();
    finalize setup
  in
  Cmd.v
    (Cmd.info "tier"
       ~doc:"Compare page-migration policies (TPP/Thermostat/AutoNUMA) on tiered memory.")
    Term.(const run $ setup_term () $ fast_frac $ tier_trials)

(* ---------------- export ---------------- *)

let export_cmd =
  let dir =
    Arg.(value & opt string "figures-csv"
         & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory for CSV files.")
  in
  let run setup dir =
    Repro_core.Csv_export.export_all setup.ctx ~dir;
    Printf.printf "wrote figure CSVs to %s/\n" dir;
    finalize setup
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export every figure's underlying data as CSV.")
    Term.(const run $ setup_term () $ dir)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let workloads =
    Arg.(value & opt_all workload_conv []
         & info [ "w"; "workload" ] ~docv:"WORKLOAD"
             ~doc:
               "Workload to profile (repeatable; default: tpch and \
                pagerank).")
  in
  let policies =
    Arg.(value & opt_all policy_conv []
         & info [ "p"; "policy" ] ~docv:"POLICY"
             ~doc:"Policy to profile (repeatable; default: clock and mglru).")
  in
  let ratios =
    Arg.(value & opt_all float []
         & info [ "r"; "ratio" ] ~docv:"R"
             ~doc:
               "Memory capacity / footprint (repeatable; default: 0.5 and \
                0.9).")
  in
  let swap =
    Arg.(value & opt swap_conv Repro_core.Runner.Ssd
         & info [ "s"; "swap" ] ~docv:"MEDIUM" ~doc:"ssd | zram")
  in
  let run setup workloads policies ratios swap =
    let ctx = setup.ctx in
    let workloads =
      match workloads with
      | [] -> [ Repro_core.Runner.Tpch; Repro_core.Runner.Pagerank ]
      | ws -> ws
    in
    let policies =
      match policies with
      | [] -> [ Policy.Registry.Clock; Policy.Registry.Mglru_default ]
      | ps -> ps
    in
    let ratios = match ratios with [] -> [ 0.5; 0.9 ] | rs -> rs in
    let cells =
      List.concat_map
        (fun workload ->
          List.concat_map
            (fun policy ->
              List.map (fun ratio -> (workload, policy, ratio)) ratios)
            policies)
        workloads
    in
    (* Fan the whole grid out through the pool, then read back serially:
       the per-cell tables below print from the cache in grid order. *)
    Repro_core.Runner.prefetch ctx
      (List.concat_map
         (fun (workload, policy, ratio) ->
           Repro_core.Runner.cell_exps ctx ~workload ~policy ~ratio ~swap)
         cells);
    List.iter
      (fun (workload, policy, ratio) ->
        ignore (Repro_core.Runner.try_cell ctx ~workload ~policy ~ratio ~swap))
      cells;
    List.iter
      (fun (cell, m) ->
        Repro_core.Report.section
          (Printf.sprintf "Profile: %s / %s / %.0f%% / %s"
             (Repro_core.Runner.workload_kind_name cell.Repro_core.Runner.workload)
             (Policy.Registry.name cell.Repro_core.Runner.policy)
             (cell.Repro_core.Runner.ratio *. 100.0)
             (Repro_core.Runner.swap_name cell.Repro_core.Runner.swap));
        Repro_core.Report.profile_table m)
      (Repro_core.Runner.profile_cells ctx);
    finalize setup
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Attribute every simulated CPU nanosecond to a kernel-phase \
          taxonomy (fault handling, rmap walks, PTE scans, aging, \
          eviction, waits) and print a perf-style table per grid cell.  \
          Observation only: simulation results are identical to an \
          unprofiled run, and output is byte-identical for every \
          $(b,--jobs) value.  Combine with $(b,--folded) and \
          $(b,--perfetto) for flamegraph and timeline exports.")
    Term.(const run $ setup_term ~profile:true () $ workloads $ policies
          $ ratios $ swap)

(* ---------------- vmstat ---------------- *)

let vmstat_cmd =
  let workloads =
    Arg.(value & opt_all workload_conv []
         & info [ "w"; "workload" ] ~docv:"WORKLOAD"
             ~doc:"Workload to count (repeatable; default: tpch and pagerank).")
  in
  let policies =
    Arg.(value & opt_all policy_conv []
         & info [ "p"; "policy" ] ~docv:"POLICY"
             ~doc:
               "Policy to count (repeatable; default: clock and mglru, which \
                prints the paper's counter deltas).")
  in
  let ratios =
    Arg.(value & opt_all float []
         & info [ "r"; "ratio" ] ~docv:"R"
             ~doc:"Memory capacity / footprint (repeatable; default: 0.5).")
  in
  let swap =
    Arg.(value & opt swap_conv Repro_core.Runner.Ssd
         & info [ "s"; "swap" ] ~docv:"MEDIUM" ~doc:"ssd | zram")
  in
  let run setup workloads policies ratios swap =
    let ctx = setup.ctx in
    let workloads =
      match workloads with
      | [] -> [ Repro_core.Runner.Tpch; Repro_core.Runner.Pagerank ]
      | ws -> ws
    in
    let policies =
      match policies with
      | [] -> [ Policy.Registry.Clock; Policy.Registry.Mglru_default ]
      | ps -> ps
    in
    let ratios = match ratios with [] -> [ 0.5 ] | rs -> rs in
    Repro_core.Runner.prefetch ctx
      (List.concat_map
         (fun workload ->
           List.concat_map
             (fun policy ->
               List.concat_map
                 (fun ratio ->
                   Repro_core.Runner.cell_exps ctx ~workload ~policy ~ratio
                     ~swap)
                 ratios)
             policies)
         workloads);
    List.iter
      (fun workload ->
        List.iter
          (fun policy ->
            List.iter
              (fun ratio ->
                ignore
                  (Repro_core.Runner.try_cell ctx ~workload ~policy ~ratio
                     ~swap))
              ratios)
          policies)
      workloads;
    let captured = Repro_core.Runner.vmstat_cells ctx in
    (* One section per (workload, ratio), policies as columns: the
       counters line up side by side and the two-policy delta column is
       exactly the Clock-vs-MG-LRU comparison the paper reads. *)
    List.iter
      (fun workload ->
        List.iter
          (fun ratio ->
            let cols =
              List.filter_map
                (fun policy ->
                  List.find_opt
                    (fun ((e : Repro_core.Runner.exp), _) ->
                      e.Repro_core.Runner.workload = workload
                      && e.Repro_core.Runner.policy = policy
                      && e.Repro_core.Runner.ratio = ratio
                      && e.Repro_core.Runner.swap = swap)
                    captured
                  |> Option.map (fun (_, cap) ->
                         (Policy.Registry.name policy, cap)))
                policies
            in
            if cols <> [] then begin
              Repro_core.Report.section
                (Printf.sprintf "Vmstat: %s / %.0f%% / %s"
                   (Repro_core.Runner.workload_kind_name workload)
                   (ratio *. 100.0)
                   (Repro_core.Runner.swap_name swap));
              Repro_core.Report.vmstat_table cols;
              Repro_core.Report.vmstat_refault_hist cols
            end)
          ratios)
      workloads;
    finalize setup
  in
  Cmd.v
    (Cmd.info "vmstat"
       ~doc:
         "Run the grid with the kernel-style counter registry captured \
          and print per-cell $(b,/proc/vmstat)-flavoured tables \
          (pgscan/pgsteal, pgactivate vs mglru_promoted, workingset \
          refault classification, a log2 refault-distance histogram) \
          with a delta column when exactly two policies are compared.  \
          Counting is always on and observation-only: results are \
          identical to an uncounted run, and output is byte-identical \
          for every $(b,--jobs) value.")
    Term.(const run $ setup_term ~vmstat:true () $ workloads $ policies
          $ ratios $ swap)

(* ---------------- heatmap ---------------- *)

let heatmap_cmd =
  let workload =
    Arg.(value & opt workload_conv Repro_core.Runner.Tpch
         & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload to monitor.")
  in
  let policies =
    Arg.(value & opt_all policy_conv []
         & info [ "p"; "policy" ] ~docv:"POLICY"
             ~doc:"Policy to monitor (repeatable; default: clock and mglru).")
  in
  let ratio =
    Arg.(value & opt float 0.5
         & info [ "r"; "ratio" ] ~docv:"R" ~doc:"Memory capacity / footprint.")
  in
  let swap =
    Arg.(value & opt swap_conv Repro_core.Runner.Ssd
         & info [ "s"; "swap" ] ~docv:"MEDIUM" ~doc:"ssd | zram")
  in
  let interval =
    Arg.(value & opt int 100
         & info [ "interval" ] ~docv:"MS"
             ~doc:"Aggregation window in simulated milliseconds (default 100).")
  in
  let max_regions =
    Arg.(value & opt int Mem.Damon.default_config.Mem.Damon.max_regions
         & info [ "max-regions" ] ~docv:"N"
             ~doc:"Adaptive region cap per address space.")
  in
  let out =
    Arg.(value & opt string "heatmap.csv"
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"CSV output path.")
  in
  let gnuplot =
    Arg.(value & opt (some string) None
         & info [ "gnuplot" ] ~docv:"FILE"
             ~doc:
               "Also write a gnuplot script that renders the CSV as a \
                time-vs-address heatmap.")
  in
  let run setup workload policies ratio swap interval max_regions out gnuplot =
    let policies =
      match policies with
      | [] -> [ Policy.Registry.Clock; Policy.Registry.Mglru_default ]
      | ps -> ps
    in
    let config =
      {
        Mem.Damon.default_config with
        Mem.Damon.aggregate_every_ns = max 1 interval * 1_000_000;
        max_regions =
          max Mem.Damon.default_config.Mem.Damon.min_regions max_regions;
      }
    in
    let ctx = Repro_core.Runner.with_damon setup.ctx config in
    Repro_core.Runner.prefetch ctx
      (List.concat_map
         (fun policy ->
           Repro_core.Runner.cell_exps ctx ~workload ~policy ~ratio ~swap)
         policies);
    List.iter
      (fun policy ->
        ignore (Repro_core.Runner.try_cell ctx ~workload ~policy ~ratio ~swap))
      policies;
    let n = Repro_core.Runner.write_heatmap ctx ~path:out in
    Printf.printf "wrote %d heatmap row(s) to %s\n" n out;
    (match gnuplot with
    | None -> ()
    | Some script ->
      (* Column numbers refer to heatmap_csv_header; each point is one
         region snapshot at its band's midpoint, coloured by access
         count.  Filter the CSV by policy first when plotting a
         multi-policy run. *)
      let oc = open_out script in
      Printf.fprintf oc
        "# Heatmap of %s — columns: %s\n\
         set datafile separator ','\n\
         set key off\n\
         set xlabel 'simulated time (s)'\n\
         set ylabel 'virtual page number'\n\
         set cblabel 'accesses / window'\n\
         set palette defined (0 'black', 1 'dark-blue', 2 'red', 3 'yellow')\n\
         plot '%s' skip 1 using ($6/1e9):($8+$9/2):10 with points pt 5 ps \
         0.5 palette\n"
        out Repro_core.Runner.heatmap_csv_header out;
      close_out oc;
      Printf.printf "wrote gnuplot script to %s\n" script);
    finalize { setup with ctx }
  in
  Cmd.v
    (Cmd.info "heatmap"
       ~doc:
         "Attach a DAMON-style adaptive region monitor to each trial and \
          export its access heatmap as CSV (one row per region snapshot: \
          cell, trial, window timestamp, region bounds, access count).  \
          Region splitting and merging adapt to where accesses \
          concentrate, so hot working-set bands stay finely resolved.  \
          Monitoring is observation-only (the access bits are read, \
          never cleared) and the CSV is byte-identical for every \
          $(b,--jobs) value.")
    Term.(const run $ setup_term () $ workload $ policies $ ratio $ swap
          $ interval $ max_regions $ out $ gnuplot)

(* ---------------- fleet ---------------- *)

let fleet_cmd =
  let tenants =
    Arg.(value & opt int 3
         & info [ "tenants" ] ~docv:"N"
             ~doc:"Number of YCSB tenants sharing the machine (2 threads each).")
  in
  let hot =
    Arg.(value & opt int 0
         & info [ "hot" ] ~docv:"I"
             ~doc:"Index of the hot (runaway) tenant: zipf 1.1, double requests.")
  in
  let policy =
    Arg.(value & opt policy_conv Policy.Registry.Mglru_default
         & info [ "p"; "policy" ] ~docv:"POLICY" ~doc:"Replacement policy.")
  in
  let ratio =
    Arg.(value & opt float 0.5
         & info [ "r"; "ratio" ] ~docv:"R" ~doc:"Memory capacity / footprint.")
  in
  let swap =
    Arg.(value & opt swap_conv Repro_core.Runner.Ssd
         & info [ "s"; "swap" ] ~docv:"MEDIUM" ~doc:"ssd | zram")
  in
  let run setup tenants hot policy ratio swap =
    try
      ignore
        (Repro_core.Fleet.run setup.ctx ~tenants ~hot ~policy ~ratio ~swap);
      finalize setup;
      `Ok ()
    with Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run N YCSB tenants of different temperatures under per-tenant           memory cgroups and report per-tenant latency tails, PSI,           throttling and scoped OOM kills.  Without $(b,--cgroups), a           default containment spec is applied: the hot tenant throttled           at 30% and hard-capped at 40% of capacity, neighbours           protected by memory.low, proactive reclaim on.")
    Term.(ret (const run $ setup_term () $ tenants $ hot $ policy $ ratio $ swap))

(* ---------------- regret ---------------- *)

let regret_cmd =
  let workloads =
    Arg.(value & opt_all workload_conv []
         & info [ "w"; "workload" ] ~docv:"WORKLOAD"
             ~doc:"Workload to score (repeatable; default: tpch and pagerank).")
  in
  let policies =
    Arg.(value & opt_all policy_conv []
         & info [ "p"; "policy" ] ~docv:"POLICY"
             ~doc:
               "Policy to score (repeatable; default: clock, mglru, s3-fifo, \
                sieve, perceptron).")
  in
  let ratios =
    Arg.(value & opt_all float []
         & info [ "r"; "ratio" ] ~docv:"R"
             ~doc:
               "Memory capacity / footprint (repeatable; default: 0.5 and \
                0.9).")
  in
  let swap =
    Arg.(value & opt swap_conv Repro_core.Runner.Ssd
         & info [ "s"; "swap" ] ~docv:"MEDIUM" ~doc:"ssd | zram")
  in
  let run setup workloads policies ratios swap =
    let ctx = setup.ctx in
    let workloads =
      match workloads with [] -> Repro_core.Regret.default_workloads | ws -> ws
    in
    let policies =
      match policies with [] -> Repro_core.Regret.default_policies | ps -> ps
    in
    let ratios =
      match ratios with [] -> Repro_core.Regret.default_ratios | rs -> rs
    in
    let cells = Repro_core.Regret.compute ctx ~workloads ~policies ~ratios ~swap in
    Repro_core.Regret.print ~swap cells;
    finalize setup
  in
  Cmd.v
    (Cmd.info "regret"
       ~doc:
         "Score policies against Belady's offline optimum: for each \
          workload x pressure cell, print mean demand faults over the \
          OPT refetch count on the same deterministically derived \
          reference trace.  The standing scoreboard every policy — \
          builtin or hook-API guest — lands on.  Output is byte-identical \
          for every $(b,--jobs) value.")
    Term.(const run $ setup_term () $ workloads $ policies $ ratios $ swap)

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let classes =
    Arg.(value & opt_all string []
         & info [ "class" ] ~docv:"CLASS"
             ~doc:
               "Transient class to report (repeatable): hotplug | degrade | \
                churn.  Default: all three.")
  in
  let workloads =
    Arg.(value & opt_all workload_conv []
         & info [ "w"; "workload" ] ~docv:"WORKLOAD"
             ~doc:"Workload to stress (repeatable; default: tpch and ycsb-a).")
  in
  let policies =
    Arg.(value & opt_all policy_conv []
         & info [ "p"; "policy" ] ~docv:"POLICY"
             ~doc:"Policy to stress (repeatable; default: clock and mglru).")
  in
  let ratio =
    Arg.(value & opt float 0.5
         & info [ "r"; "ratio" ] ~docv:"R" ~doc:"Memory capacity / footprint.")
  in
  let swap =
    Arg.(value & opt swap_conv Repro_core.Runner.Ssd
         & info [ "s"; "swap" ] ~docv:"MEDIUM" ~doc:"ssd | zram")
  in
  let run setup classes workloads policies ratio swap =
    let classes =
      match classes with
      | [] -> Repro_core.Chaos_report.default_classes
      | cs -> List.map String.lowercase_ascii cs
    in
    let workloads =
      match workloads with
      | [] -> [ Repro_core.Runner.Tpch; Repro_core.Runner.Ycsb Workload.Ycsb.A ]
      | ws -> ws
    in
    let policies =
      match policies with
      | [] -> [ Policy.Registry.Clock; Policy.Registry.Mglru_default ]
      | ps -> ps
    in
    try
      Repro_core.Chaos_report.run setup.ctx ~classes ~workloads ~policies
        ~ratio ~swap;
      finalize setup;
      `Ok ()
    with Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Resilience report: calibrate each workload x policy cell with a \
          baseline trial, inject one transient class (memory hotplug, \
          swap-device degradation, cgroup limit churn) into the \
          [0.3R, 0.55R] window, and report fault-latency p99/p999 during \
          vs after the disturbance, time-to-recover to the steady-state \
          fault rate, and OOM/poison counts.  Deterministic: \
          byte-identical for every $(b,--jobs) value.")
    Term.(ret (const run $ setup_term () $ classes $ workloads $ policies
               $ ratio $ swap))

(* ---------------- fuzz ---------------- *)

let fuzz_cmd =
  let iterations =
    Arg.(value & opt int 25
         & info [ "iterations" ] ~docv:"N" ~doc:"Configurations to try.")
  in
  let seed =
    Arg.(value & opt int 9
         & info [ "seed" ] ~docv:"S"
             ~doc:"Base seed; iteration i derives its RNG from S + 7919*i.")
  in
  let with_corrupt =
    Arg.(value & flag
         & info [ "with-corrupt" ]
             ~doc:
               "Let the sampler emit the test-only $(b,corrupt:) chaos \
                segment, which plants an invariant violation the audit \
                oracle must catch (and the shrinker must isolate).")
  in
  let config =
    Arg.(value & opt (some string) None
         & info [ "config" ] ~docv:"STR"
             ~doc:
               "Replay one encoded configuration (as printed by a failing \
                run's 'minimal repro' line) instead of sampling.")
  in
  let run iterations seed with_corrupt config =
    let failures =
      match config with
      | Some line -> Repro_core.Fuzz.replay line
      | None ->
        Repro_core.Fuzz.run ~seed ~iterations:(max 1 iterations) ~with_corrupt
    in
    if failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Config-fuzz soak: run short random configurations (workload, \
          policy, ratio, swap, faults, cgroups, chaos) against the \
          machine's oracles — completion, invariant audits, $(b,--jobs) \
          1-vs-4 byte-identity, journal round-trip/resume identity — and \
          shrink any failure to a minimal deterministic $(b,--config) \
          repro line.  Exits non-zero if any configuration fails.")
    Term.(const run $ iterations $ seed $ with_corrupt $ config)

(* ---------------- trace-summary ---------------- *)

let trace_summary_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"JSONL trace written by $(b,--trace).")
  in
  let run file =
    try
      Repro_core.Report.trace_summary ~path:file;
      `Ok ()
    with
    | Failure msg -> `Error (false, msg)
    | Sys_error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:
         "Aggregate a JSONL trace into per-cell event counts and \
          direct-reclaim latency quantiles.")
    Term.(ret (const run $ file))

let main =
  let doc =
    "reproduction harness for 'Characterizing Emerging Page Replacement Policies'"
  in
  (* `repro --list-policies` (no subcommand) prints the descriptor
     table; any other bare invocation shows help, as before. *)
  let default =
    let list_policies =
      Arg.(value & flag
           & info [ "list-policies" ]
               ~doc:
                 "Print the policy descriptor table (name, kind with hook-API \
                  version, doc, default knobs) and exit.")
    in
    Term.(
      ret
        (const (fun lp ->
             if lp then begin
               policy_table ();
               `Ok ()
             end
             else `Help (`Pager, None))
        $ list_policies))
  in
  Cmd.group ~default
    (Cmd.info "repro" ~version:"1.0.0" ~doc)
    [
      fig_cmd; run_cmd; list_cmd; sweep_cmd; ablate_cmd; tier_cmd; export_cmd;
      profile_cmd; vmstat_cmd; heatmap_cmd; regret_cmd; trace_summary_cmd;
      fleet_cmd; chaos_cmd; fuzz_cmd;
    ]

let () = exit (Cmd.eval main)
