(* Command-line interface to the characterization harness.

   repro fig 1 .. 12 | all    reproduce the paper's figures
   repro run ...              run one experiment cell
   repro list                 show available workloads and policies
   repro sweep ...            capacity-ratio sweep for one workload *)

open Cmdliner

let set_profile_env trials ycsb_trials fast =
  (match trials with
  | Some n -> Unix.putenv "REPRO_TRIALS" (string_of_int n)
  | None -> ());
  (match ycsb_trials with
  | Some n -> Unix.putenv "REPRO_YCSB_TRIALS" (string_of_int n)
  | None -> ());
  if fast then Unix.putenv "REPRO_FAST" "1"

let trials_arg =
  Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N"
         ~doc:"Trials per TPC-H/PageRank cell (default 25, or \\$REPRO_TRIALS).")

let ycsb_trials_arg =
  Arg.(value & opt (some int) None & info [ "ycsb-trials" ] ~docv:"N"
         ~doc:"Trials per YCSB cell (default 2, or \\$REPRO_YCSB_TRIALS).")

let fast_arg =
  Arg.(value & flag & info [ "fast" ] ~doc:"Shrink workloads ~4x for a quick look.")

let workload_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "tpch" -> Ok Repro_core.Runner.Tpch
    | "pagerank" -> Ok Repro_core.Runner.Pagerank
    | "ycsb-a" -> Ok (Repro_core.Runner.Ycsb Workload.Ycsb.A)
    | "ycsb-b" -> Ok (Repro_core.Runner.Ycsb Workload.Ycsb.B)
    | "ycsb-c" -> Ok (Repro_core.Runner.Ycsb Workload.Ycsb.C)
    | _ -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  Arg.conv
    (parse, fun fmt w -> Format.pp_print_string fmt (Repro_core.Runner.workload_kind_name w))

let policy_conv =
  let parse s =
    match Policy.Registry.of_name (String.lowercase_ascii s) with
    | Some spec -> Ok spec
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Policy.Registry.name p))

let swap_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "ssd" -> Ok Repro_core.Runner.Ssd
    | "zram" -> Ok Repro_core.Runner.Zram
    | _ -> Error (`Msg (Printf.sprintf "unknown swap medium %S" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Repro_core.Runner.swap_name s))

(* ---------------- fig ---------------- *)

let fig_cmd =
  let figures =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"FIGURE" ~doc:"Figure numbers (1-12) or $(b,all).")
  in
  let run figures trials ycsb_trials fast =
    set_profile_env trials ycsb_trials fast;
    try
      if List.mem "all" figures then Repro_core.Figures.run_all ()
      else
        List.iter
          (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 1 && n <= 12 -> Repro_core.Figures.run n
            | Some _ | None ->
              raise (Invalid_argument (Printf.sprintf "no figure %S" s)))
          figures;
      `Ok ()
    with Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Reproduce one or more of the paper's figures (1-12).")
    Term.(ret (const run $ figures $ trials_arg $ ycsb_trials_arg $ fast_arg))

(* ---------------- run ---------------- *)

let fault_plan_conv =
  let parse s =
    match Swapdev.Faulty_device.plan_of_name (String.lowercase_ascii s) with
    | Some plan -> Ok plan
    | None -> Error (`Msg (Printf.sprintf "unknown fault plan %S" s))
  in
  Arg.conv (parse, fun fmt _ -> Format.pp_print_string fmt "<fault-plan>")

let run_cmd =
  let workload =
    Arg.(value & opt workload_conv Repro_core.Runner.Tpch
         & info [ "w"; "workload" ] ~docv:"WORKLOAD"
             ~doc:"tpch | pagerank | ycsb-a | ycsb-b | ycsb-c")
  in
  let policy =
    Arg.(value & opt policy_conv Policy.Registry.Mglru_default
         & info [ "p"; "policy" ] ~docv:"POLICY"
             ~doc:
               "clock | mglru | gen14 | scan-all | scan-none | scan-rand | fifo | \
                random | lru-exact")
  in
  let ratio =
    Arg.(value & opt float 0.5
         & info [ "r"; "ratio" ] ~docv:"R" ~doc:"Memory capacity / footprint.")
  in
  let swap =
    Arg.(value & opt swap_conv Repro_core.Runner.Ssd
         & info [ "s"; "swap" ] ~docv:"MEDIUM" ~doc:"ssd | zram")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-policy internal counters.")
  in
  let faults =
    Arg.(value & opt fault_plan_conv Swapdev.Faulty_device.none
         & info [ "faults" ] ~docv:"PLAN"
             ~doc:
               "Swap I/O fault-injection plan: none | light | heavy. Deterministic \
                per seed; $(b,none) leaves results bit-identical.")
  in
  let audit_every =
    Arg.(value & opt int 0
         & info [ "audit-every" ] ~docv:"MS"
             ~doc:
               "Audit machine-state invariants every MS simulated milliseconds \
                (0 = end-of-run only).")
  in
  let run workload policy ratio swap verbose faults audit_every trials ycsb_trials
      fast =
    set_profile_env trials ycsb_trials fast;
    Repro_core.Runner.set_fault_plan faults;
    Repro_core.Runner.set_audit_every_ns (max 0 audit_every * 1_000_000);
    let faults_on = not (Swapdev.Faulty_device.is_none faults) in
    let n = Repro_core.Runner.trials_for workload in
    Printf.printf "%s / %s / %.0f%% / %s  (%d trial%s)\n"
      (Repro_core.Runner.workload_kind_name workload)
      (Policy.Registry.name policy) (ratio *. 100.0)
      (Repro_core.Runner.swap_name swap) n
      (if n = 1 then "" else "s");
    let results = ref [] in
    for trial = 0 to n - 1 do
      let r =
        Repro_core.Runner.run_exp
          { Repro_core.Runner.workload; policy; ratio; swap; trial }
      in
      results := r :: !results;
      Printf.printf
        "  trial %2d: runtime %10s  major %9s  ins %9s  outs %9s  direct %6d\n%!"
        trial
        (Repro_core.Report.fsec (float_of_int r.Repro_core.Machine.runtime_ns /. 1e9))
        (Repro_core.Report.fcount (float_of_int r.Repro_core.Machine.major_faults))
        (Repro_core.Report.fcount (float_of_int r.Repro_core.Machine.swap_ins))
        (Repro_core.Report.fcount (float_of_int r.Repro_core.Machine.swap_outs))
        r.Repro_core.Machine.direct_reclaims;
      if faults_on || audit_every > 0 then Repro_core.Report.fault_summary r;
      if verbose then
        List.iter
          (fun (k, v) -> Printf.printf "      %-24s %d\n" k v)
          r.Repro_core.Machine.policy_stats
    done;
    let results = List.rev !results in
    if n > 1 then begin
      let rt = Stats.Summary.of_array (Repro_core.Runner.runtimes_s results) in
      let fl = Stats.Summary.of_array (Repro_core.Runner.faults results) in
      Printf.printf "  mean runtime %s (min %s, max %s, spread %.2fx)\n"
        (Repro_core.Report.fsec rt.Stats.Summary.mean)
        (Repro_core.Report.fsec rt.Stats.Summary.min)
        (Repro_core.Report.fsec rt.Stats.Summary.max)
        (Stats.Summary.spread rt);
      Printf.printf "  mean faults %s (CV %.3f)\n"
        (Repro_core.Report.fcount fl.Stats.Summary.mean)
        (Stats.Summary.cv fl)
    end;
    let reads = Repro_core.Runner.pooled_read_latencies results in
    if Array.length reads > 0 then
      Format.printf "  read latency: %a@."
        Stats.Percentile.pp_tail
        (Stats.Percentile.tail_of reads);
    let writes = Repro_core.Runner.pooled_write_latencies results in
    if Array.length writes > 0 then
      Format.printf "  write latency: %a@."
        Stats.Percentile.pp_tail
        (Stats.Percentile.tail_of writes)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment cell and print its metrics.")
    Term.(
      const run $ workload $ policy $ ratio $ swap $ verbose $ faults
      $ audit_every $ trials_arg $ ycsb_trials_arg $ fast_arg)

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    print_endline "workloads:";
    List.iter
      (fun w -> Printf.printf "  %s\n" (Repro_core.Runner.workload_kind_name w))
      Repro_core.Runner.all_workloads;
    print_endline "policies:";
    List.iter (fun n -> Printf.printf "  %s\n" n) Policy.Registry.known_names;
    print_endline "swap media:";
    print_endline "  ssd   (~7.5 ms / 4 KB op, the paper's measured device)";
    print_endline "  zram  (20/35 us, LZO-RLE-like compression)"
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads, policies, and swap media.")
    Term.(const run $ const ())

(* ---------------- sweep ---------------- *)

let sweep_cmd =
  let workload =
    Arg.(value & opt workload_conv Repro_core.Runner.Tpch
         & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload to sweep.")
  in
  let swap =
    Arg.(value & opt swap_conv Repro_core.Runner.Ssd
         & info [ "s"; "swap" ] ~docv:"MEDIUM" ~doc:"ssd | zram")
  in
  let run workload swap trials ycsb_trials fast =
    set_profile_env trials ycsb_trials fast;
    let ratios = [ 0.5; 0.75; 0.9 ] in
    let header =
      ("policy"
      :: List.map (fun r -> Printf.sprintf "%.0f%% rt" (r *. 100.0)) ratios)
      @ List.map (fun r -> Printf.sprintf "%.0f%% faults" (r *. 100.0)) ratios
    in
    let rows =
      List.map
        (fun policy ->
          let cells =
            List.map
              (fun ratio -> Repro_core.Runner.run_cell ~workload ~policy ~ratio ~swap)
              ratios
          in
          (Policy.Registry.name policy
          :: List.map
               (fun c -> Repro_core.Report.fsec (Repro_core.Runner.mean_runtime_s c))
               cells)
          @ List.map
              (fun c -> Repro_core.Report.fcount (Repro_core.Runner.mean_faults c))
              cells)
        Policy.Registry.all_paper_specs
    in
    Repro_core.Report.section
      (Printf.sprintf "Capacity sweep: %s on %s"
         (Repro_core.Runner.workload_kind_name workload)
         (Repro_core.Runner.swap_name swap));
    Repro_core.Report.table ~header rows
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep capacity ratios for every paper policy.")
    Term.(const run $ workload $ swap $ trials_arg $ ycsb_trials_arg $ fast_arg)

(* ---------------- ablate ---------------- *)

let ablate_cmd =
  let studies =
    Arg.(
      value & pos_all string [ "all" ]
      & info [] ~docv:"STUDY"
          ~doc:
            "generations | bloom | spatial | readahead | scan-rand | all")
  in
  let run studies trials ycsb_trials fast =
    set_profile_env trials ycsb_trials fast;
    let dispatch = function
      | "generations" -> Repro_core.Ablation.generations ()
      | "bloom" -> Repro_core.Ablation.bloom_density ()
      | "spatial" -> Repro_core.Ablation.spatial_scan ()
      | "readahead" -> Repro_core.Ablation.readahead ()
      | "scan-rand" -> Repro_core.Ablation.scan_probability ()
      | "all" -> Repro_core.Ablation.run_all ()
      | s -> raise (Invalid_argument (Printf.sprintf "no ablation study %S" s))
    in
    try
      List.iter dispatch studies;
      `Ok ()
    with Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Ablate MG-LRU/machine design choices (DESIGN.md \\S5).")
    Term.(ret (const run $ studies $ trials_arg $ ycsb_trials_arg $ fast_arg))

(* ---------------- tier ---------------- *)

let tier_cmd =
  let fast_frac =
    Arg.(value & opt float 0.5
         & info [ "fast-frac" ] ~docv:"F"
             ~doc:"Fast-tier size as a fraction of the footprint.")
  in
  let tier_trials =
    Arg.(value & opt int 3 & info [ "tier-trials" ] ~docv:"N" ~doc:"Trials per cell.")
  in
  let run fast_frac tier_trials trials ycsb_trials fast =
    set_profile_env trials ycsb_trials fast;
    Repro_core.Tier_study.study ~fast_frac ~trials:tier_trials ()
  in
  Cmd.v
    (Cmd.info "tier"
       ~doc:"Compare page-migration policies (TPP/Thermostat/AutoNUMA) on tiered memory.")
    Term.(const run $ fast_frac $ tier_trials $ trials_arg $ ycsb_trials_arg $ fast_arg)

(* ---------------- export ---------------- *)

let export_cmd =
  let dir =
    Arg.(value & opt string "figures-csv"
         & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory for CSV files.")
  in
  let run dir trials ycsb_trials fast =
    set_profile_env trials ycsb_trials fast;
    Repro_core.Csv_export.export_all ~dir;
    Printf.printf "wrote figure CSVs to %s/\n" dir
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export every figure's underlying data as CSV.")
    Term.(const run $ dir $ trials_arg $ ycsb_trials_arg $ fast_arg)

let main =
  let doc =
    "reproduction harness for 'Characterizing Emerging Page Replacement Policies'"
  in
  Cmd.group
    (Cmd.info "repro" ~version:"1.0.0" ~doc)
    [ fig_cmd; run_cmd; list_cmd; sweep_cmd; ablate_cmd; tier_cmd; export_cmd ]

let () = exit (Cmd.eval main)
