(* Reclaim tracing: run one MG-LRU trial with the observability layer
   on, then walk the capture directly — no files involved.

     dune exec examples/reclaim_trace.exe

   The same capture is what `repro run --trace t.jsonl --sample-every
   50000000 --samples s.csv` serializes; this example shows the typed
   in-process view: per-kind event counts, the generation occupancy
   time series, and the direct-reclaim latency histogram. *)

let () =
  let hot = Array.init 64 (fun i -> i) in
  let stream pass =
    Array.init 480 (fun i -> 64 + (((pass * 480) + i) mod 960))
  in
  let steps =
    List.concat_map (fun pass -> [ hot; stream pass; hot ]) [ 0; 1; 2; 3; 4; 5 ]
  in
  let workload = Workload.Trace.of_page_lists ~footprint:1024 steps in

  let base = Repro_core.Machine.default_config ~capacity_frames:512 ~seed:42 in
  let config =
    { base with Repro_core.Machine.obs =
        { Obs.trace = true; sample_every_ns = 20_000_000 } }
  in
  let result =
    Repro_core.Machine.run config
      ~policy:(Policy.Registry.create Policy.Registry.Mglru_default)
      ~workload:(Workload.Chunk.Packed ((module Workload.Trace), workload))
  in

  let capture =
    match result.Repro_core.Machine.trace with
    | Some c -> c
    | None -> failwith "telemetry was enabled; expected a capture"
  in

  (* 1. Event counts by kind. *)
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun (_, ev) ->
      let k = Obs.kind_name ev in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    capture.Obs.events;
  Printf.printf "%d event(s) over %.3f simulated seconds:\n"
    (Array.length capture.Obs.events)
    (float_of_int result.Repro_core.Machine.runtime_ns /. 1e9);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.iter (fun (k, v) -> Printf.printf "  %-12s %6d\n" k v);
  print_newline ();

  (* 2. Generation occupancy over time: the MG-LRU gauges sampled every
     20 simulated ms.  gen_age0 is the youngest generation. *)
  print_endline "time series (youngest three generations, pages):";
  Printf.printf "  %10s  %8s  %8s  %8s  %8s\n" "t_ms" "gen_age0" "gen_age1"
    "gen_age2" "resident";
  Array.iter
    (fun (t_ns, metrics) ->
      let get k = try List.assoc k metrics with Not_found -> 0.0 in
      Printf.printf "  %10.1f  %8.0f  %8.0f  %8.0f  %8.0f\n"
        (float_of_int t_ns /. 1e6)
        (get "policy.gen_age0") (get "policy.gen_age1") (get "policy.gen_age2")
        (get "resident"))
    capture.Obs.samples;
  print_newline ();

  (* 3. Direct-reclaim episode latency (log-binned histogram). *)
  let h = capture.Obs.reclaim_hist in
  if Stats.Histogram.count h > 0 then begin
    Printf.printf "direct reclaim: %d episode(s)\n" (Stats.Histogram.count h);
    List.iter
      (fun q ->
        Printf.printf "  p%-4g %10.0f ns\n" (q *. 100.0)
          (Stats.Histogram.quantile h q))
      [ 0.5; 0.9; 0.99 ];
    Printf.printf "  max  %10.0f ns\n" (Stats.Histogram.max_seen h)
  end
  else print_endline "no direct-reclaim episodes (memory never tight enough)"
