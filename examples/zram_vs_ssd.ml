(* Swap-medium study: how a faster swap device changes both runtime and
   the number of faults (the paper's Figure 11 phenomenon).

     dune exec examples/zram_vs_ssd.exe *)

let () =
  let ctx =
    Repro_core.Runner.make_ctx
      ~profile:{ Repro_core.Runner.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }
      ()
  in
  Repro_core.Report.section "ZRAM vs SSD: PageRank under MG-LRU and Clock (50%)";
  let cell policy swap =
    Repro_core.Runner.run_cell ctx ~workload:Repro_core.Runner.Pagerank ~policy
      ~ratio:0.5 ~swap
  in
  let rows =
    List.map
      (fun policy ->
        let ssd = cell policy Repro_core.Runner.Ssd in
        let zram = cell policy Repro_core.Runner.Zram in
        let rt_ssd = Repro_core.Runner.mean_runtime_s ssd in
        let rt_zram = Repro_core.Runner.mean_runtime_s zram in
        let f_ssd = Repro_core.Runner.mean_faults ssd in
        let f_zram = Repro_core.Runner.mean_faults zram in
        [
          Policy.Registry.name policy;
          Repro_core.Report.fsec rt_ssd;
          Repro_core.Report.fsec rt_zram;
          Repro_core.Report.fnorm (rt_zram /. rt_ssd);
          Repro_core.Report.fcount f_ssd;
          Repro_core.Report.fcount f_zram;
          Repro_core.Report.fnorm (f_zram /. f_ssd);
        ])
      Policy.Registry.[ Mglru_default; Clock ]
  in
  Repro_core.Report.table
    ~header:
      [ "policy"; "ssd rt"; "zram rt"; "rt ratio"; "ssd faults"; "zram faults";
        "fault ratio" ]
    rows;
  Repro_core.Report.note
    "Faster swap means the application outruns accessed-bit scanning, so";
  Repro_core.Report.note
    "runtime drops by much more than fault counts do - and fault counts can";
  Repro_core.Report.note "even rise (paper SVI-B)."
