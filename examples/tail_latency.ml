(* Tail-latency study: YCSB-B request latency distributions under both
   policies (the paper's Figures 3/8/12 methodology).

     dune exec examples/tail_latency.exe *)

let () =
  let ctx =
    Repro_core.Runner.make_ctx
      ~profile:{ Repro_core.Runner.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }
      ()
  in
  Repro_core.Report.section "YCSB-B tail latencies (SSD, 50% capacity)";
  let rows =
    List.concat_map
      (fun policy ->
        let results =
          Repro_core.Runner.run_cell ctx
            ~workload:(Repro_core.Runner.Ycsb Workload.Ycsb.B)
            ~policy ~ratio:0.5 ~swap:Repro_core.Runner.Ssd
        in
        let row kind lat =
          if Array.length lat = 0 then []
          else begin
            let t = Stats.Percentile.tail_of lat in
            [
              [
                Policy.Registry.name policy ^ " " ^ kind;
                Repro_core.Report.fns t.Stats.Percentile.p50;
                Repro_core.Report.fns t.Stats.Percentile.p99;
                Repro_core.Report.fns t.Stats.Percentile.p999;
                Repro_core.Report.fns t.Stats.Percentile.p9999;
              ];
            ]
          end
        in
        row "read" (Repro_core.Runner.pooled_read_latencies results)
        @ row "write" (Repro_core.Runner.pooled_write_latencies results))
      Policy.Registry.[ Clock; Mglru_default ]
  in
  Repro_core.Report.table ~header:[ "policy/op"; "p50"; "p99"; "p99.9"; "p99.99" ] rows;
  Repro_core.Report.note
    "The paper's point: mean throughput hides the policy choice; the tails";
  Repro_core.Report.note "expose it, and which policy wins depends on the op mix."
