let () =
  let ctx =
    Repro_core.Runner.make_ctx
      ~profile:{ Repro_core.Runner.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }
      ()
  in
  Repro_core.Tier_study.study ~trials:1 ctx ()
