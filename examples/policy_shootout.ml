(* Policy shootout: every registered policy on the same TPC-H instance.

     dune exec examples/policy_shootout.exe

   Uses the fast profile so it finishes in seconds; identical workload
   seeds make the comparison paired. *)

let () =
  let ctx =
    Repro_core.Runner.make_ctx
      ~profile:{ Repro_core.Runner.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }
      ()
  in
  let policies =
    List.filter_map Policy.Registry.of_name Policy.Registry.known_names
  in
  Repro_core.Report.section "Policy shootout: TPC-H, SSD swap, 50% capacity";
  let rows =
    List.map
      (fun policy ->
        let results =
          Repro_core.Runner.run_cell ctx ~workload:Repro_core.Runner.Tpch
            ~policy ~ratio:0.5 ~swap:Repro_core.Runner.Ssd
        in
        let rt = Repro_core.Runner.mean_runtime_s results in
        let faults = Repro_core.Runner.mean_faults results in
        (Policy.Registry.name policy, rt, faults))
      policies
  in
  let best_rt =
    List.fold_left (fun acc (_, rt, _) -> Float.min acc rt) infinity rows
  in
  Repro_core.Report.table
    ~header:[ "policy"; "mean runtime"; "vs best"; "mean faults" ]
    (List.map
       (fun (name, rt, faults) ->
         [
           name;
           Repro_core.Report.fsec rt;
           Repro_core.Report.fnorm (rt /. best_rt);
           Repro_core.Report.fcount faults;
         ])
       (List.sort (fun (_, a, _) (_, b, _) -> compare a b) rows));
  Repro_core.Report.note
    "lru-exact uses a per-access oracle no hardware policy gets; fifo and";
  Repro_core.Report.note "random bound the value of recency information from below."
