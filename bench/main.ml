(* Benchmark harness.

   Part 1 — Bechamel microbenchmarks: one Test.make per paper figure,
   timing the core simulation path that figure exercises at reduced
   scale, plus calibration benches for the hot data structures (zipf
   sampling, bloom filter, generation lists, event queue).

   Part 2 — the full figure reproduction: prints every series of
   Figures 1-12 exactly as EXPERIMENTS.md records them.  Scale is
   controlled by REPRO_TRIALS / REPRO_YCSB_TRIALS / REPRO_FAST. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Calibration micro-benchmarks for core data structures.              *)
(* ------------------------------------------------------------------ *)

let bench_zipf =
  let z = Workload.Zipf.create ~n:100_000 ~exponent:0.99 in
  let rng = Engine.Rng.create 1 in
  Test.make ~name:"zipf-sample" (Staged.stage (fun () -> Workload.Zipf.sample z rng))

let bench_bloom =
  let b = Structures.Bloom.create ~bits:(1 lsl 15) ~seed:1 () in
  let i = ref 0 in
  Test.make ~name:"bloom-add-mem"
    (Staged.stage (fun () ->
         incr i;
         Structures.Bloom.add b !i;
         Structures.Bloom.mem b (!i / 2)))

let bench_dlist =
  let d = Structures.Dlist.create ~nodes:4096 ~lists:4 in
  for node = 0 to 4095 do
    Structures.Dlist.push_head d ~list:(node mod 4) ~node
  done;
  let i = ref 0 in
  Test.make ~name:"dlist-move"
    (Staged.stage (fun () ->
         i := (!i + 1) land 4095;
         Structures.Dlist.move_head d ~list:(!i mod 4) ~node:!i))

let bench_event_queue =
  let q = Engine.Event_queue.create () in
  let i = ref 0 in
  Test.make ~name:"event-queue-add-pop"
    (Staged.stage (fun () ->
         incr i;
         Engine.Event_queue.add q ~time:(!i land 1023) ();
         if !i land 1 = 0 then ignore (Engine.Event_queue.pop q)))

let bench_pte =
  let pt = Mem.Page_table.create ~asid:0 ~pages:4096 () in
  let i = ref 0 in
  Test.make ~name:"pte-touch"
    (Staged.stage (fun () ->
         i := (!i + 1) land 4095;
         let pte = Mem.Page_table.get pt !i in
         Mem.Page_table.set pt !i (Mem.Pte.set_accessed pte)))

let bench_rng =
  let rng = Engine.Rng.create 2 in
  Test.make ~name:"rng-int" (Staged.stage (fun () -> Engine.Rng.int rng 1_000_000))

(* ------------------------------------------------------------------ *)
(* One Test.make per figure: a micro-scale version of the simulation   *)
(* each figure rests on (full-scale series are printed afterwards).    *)
(* ------------------------------------------------------------------ *)

let micro_trace ~pages ~passes =
  List.init passes (fun _ -> Array.init pages (fun i -> i))

let micro_run ~policy ~swap ~capacity ~pages ~passes () =
  let w = Workload.Trace.of_page_lists ~footprint:pages (micro_trace ~pages ~passes) in
  let cfg =
    {
      (Repro_core.Machine.default_config ~capacity_frames:capacity ~seed:5) with
      Repro_core.Machine.swap;
      kthread_jitter_ns = 0;
    }
  in
  let r =
    Repro_core.Machine.run cfg
      ~policy:(Policy.Registry.create policy)
      ~workload:(Workload.Chunk.Packed ((module Workload.Trace), w))
  in
  Sys.opaque_identity r.Repro_core.Machine.major_faults

let fig_micro name ~policy ~swap =
  Test.make ~name
    (Staged.stage (micro_run ~policy ~swap ~capacity:64 ~pages:128 ~passes:2))

let figure_micro_tests =
  [
    fig_micro "fig01-mglru-vs-clock-ssd" ~policy:Policy.Registry.Mglru_default
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig02-joint-distribution" ~policy:Policy.Registry.Clock
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig03-tail-latency-ssd" ~policy:Policy.Registry.Mglru_default
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig04-variant-gen14" ~policy:Policy.Registry.Gen14
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig05-variant-scan-all" ~policy:Policy.Registry.Scan_all
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig06-capacity-75" ~policy:Policy.Registry.Scan_none
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig07-fault-distribution" ~policy:(Policy.Registry.Scan_rand 0.5)
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig08-tails-by-capacity" ~policy:Policy.Registry.Clock
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig09-zram-performance" ~policy:Policy.Registry.Mglru_default
      ~swap:Repro_core.Machine.zram;
    fig_micro "fig10-zram-faults" ~policy:Policy.Registry.Clock
      ~swap:Repro_core.Machine.zram;
    fig_micro "fig11-zram-vs-ssd" ~policy:Policy.Registry.Mglru_default
      ~swap:Repro_core.Machine.zram;
    fig_micro "fig12-zram-tails" ~policy:Policy.Registry.Clock
      ~swap:Repro_core.Machine.zram;
  ]

(* ------------------------------------------------------------------ *)

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let tests =
    Test.make_grouped ~name:"pagerepl"
      ([ bench_zipf; bench_bloom; bench_dlist; bench_event_queue; bench_pte; bench_rng ]
      @ figure_micro_tests)
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  print_endline "=== Bechamel microbenchmarks (ns/run, OLS) ===";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> Printf.sprintf "%12.1f" t
        | Some [] | None -> "           ?"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-40s %s ns/run\n" name est)
    (List.sort compare !rows)

let () =
  (match Sys.getenv_opt "REPRO_SKIP_MICRO" with
  | Some _ -> print_endline "(skipping bechamel microbenchmarks)"
  | None -> run_benchmarks ());
  print_newline ();
  print_endline "=== Full figure reproduction ===";
  let profile = Repro_core.Runner.profile_from_env () in
  (* Figure timings default to the serial path so numbers stay
     comparable across machines; REPRO_JOBS opts into the pool. *)
  let jobs =
    match Sys.getenv_opt "REPRO_JOBS" with
    | Some s -> (match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
    | None -> 1
  in
  let ctx = Repro_core.Runner.make_ctx ~profile ~jobs () in
  Printf.printf "profile: trials=%d ycsb_trials=%d fast=%b jobs=%d\n"
    profile.Repro_core.Runner.trials profile.Repro_core.Runner.ycsb_trials
    profile.Repro_core.Runner.fast jobs;
  let t0 = Unix.gettimeofday () in
  Repro_core.Figures.run_all ctx;
  Printf.printf "\n(total figure time: %.1fs)\n" (Unix.gettimeofday () -. t0)
