(* Benchmark harness.

   Part 1 — Bechamel microbenchmarks: one Test.make per paper figure,
   timing the core simulation path that figure exercises at reduced
   scale, plus calibration benches for the hot data structures (zipf
   sampling, bloom filter, generation lists, event queue).

   Part 2 — the full figure reproduction: prints every series of
   Figures 1-12 exactly as EXPERIMENTS.md records them.  Scale is
   controlled by REPRO_TRIALS / REPRO_YCSB_TRIALS / REPRO_FAST. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Calibration micro-benchmarks for core data structures.              *)
(* ------------------------------------------------------------------ *)

let bench_zipf =
  let z = Workload.Zipf.create ~n:100_000 ~exponent:0.99 in
  let rng = Engine.Rng.create 1 in
  Test.make ~name:"zipf-sample" (Staged.stage (fun () -> Workload.Zipf.sample z rng))

let bench_bloom =
  let b = Structures.Bloom.create ~bits:(1 lsl 15) ~seed:1 () in
  let i = ref 0 in
  Test.make ~name:"bloom-add-mem"
    (Staged.stage (fun () ->
         incr i;
         Structures.Bloom.add b !i;
         Structures.Bloom.mem b (!i / 2)))

let bench_dlist =
  let d = Structures.Dlist.create ~nodes:4096 ~lists:4 in
  for node = 0 to 4095 do
    Structures.Dlist.push_head d ~list:(node mod 4) ~node
  done;
  let i = ref 0 in
  Test.make ~name:"dlist-move"
    (Staged.stage (fun () ->
         i := (!i + 1) land 4095;
         Structures.Dlist.move_head d ~list:(!i mod 4) ~node:!i))

let bench_event_queue =
  let q = Engine.Event_queue.create () in
  let i = ref 0 in
  Test.make ~name:"event-queue-add-pop"
    (Staged.stage (fun () ->
         incr i;
         Engine.Event_queue.add q ~time:(!i land 1023) ();
         if !i land 1 = 0 then ignore (Engine.Event_queue.pop q)))

let bench_pte =
  let pt = Mem.Page_table.create ~asid:0 ~pages:4096 () in
  let i = ref 0 in
  Test.make ~name:"pte-touch"
    (Staged.stage (fun () ->
         i := (!i + 1) land 4095;
         let pte = Mem.Page_table.get pt !i in
         Mem.Page_table.set pt !i (Mem.Pte.set_accessed pte)))

let bench_rng =
  let rng = Engine.Rng.create 2 in
  Test.make ~name:"rng-int" (Staged.stage (fun () -> Engine.Rng.int rng 1_000_000))

(* ------------------------------------------------------------------ *)
(* One Test.make per figure: a micro-scale version of the simulation   *)
(* each figure rests on (full-scale series are printed afterwards).    *)
(* ------------------------------------------------------------------ *)

let micro_trace ~pages ~passes =
  List.init passes (fun _ -> Array.init pages (fun i -> i))

let micro_run ~policy ~swap ~capacity ~pages ~passes () =
  let w = Workload.Trace.of_page_lists ~footprint:pages (micro_trace ~pages ~passes) in
  let cfg =
    {
      (Repro_core.Machine.default_config ~capacity_frames:capacity ~seed:5) with
      Repro_core.Machine.swap;
      kthread_jitter_ns = 0;
    }
  in
  let r =
    Repro_core.Machine.run cfg
      ~policy:(Policy.Registry.create policy)
      ~workload:(Workload.Chunk.Packed ((module Workload.Trace), w))
  in
  Sys.opaque_identity r.Repro_core.Machine.major_faults

let fig_micro name ~policy ~swap =
  Test.make ~name
    (Staged.stage (micro_run ~policy ~swap ~capacity:64 ~pages:128 ~passes:2))

let figure_micro_tests =
  [
    fig_micro "fig01-mglru-vs-clock-ssd" ~policy:Policy.Registry.Mglru_default
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig02-joint-distribution" ~policy:Policy.Registry.Clock
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig03-tail-latency-ssd" ~policy:Policy.Registry.Mglru_default
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig04-variant-gen14" ~policy:Policy.Registry.Gen14
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig05-variant-scan-all" ~policy:Policy.Registry.Scan_all
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig06-capacity-75" ~policy:Policy.Registry.Scan_none
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig07-fault-distribution" ~policy:(Policy.Registry.Scan_rand 0.5)
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig08-tails-by-capacity" ~policy:Policy.Registry.Clock
      ~swap:Repro_core.Machine.ssd;
    fig_micro "fig09-zram-performance" ~policy:Policy.Registry.Mglru_default
      ~swap:Repro_core.Machine.zram;
    fig_micro "fig10-zram-faults" ~policy:Policy.Registry.Clock
      ~swap:Repro_core.Machine.zram;
    fig_micro "fig11-zram-vs-ssd" ~policy:Policy.Registry.Mglru_default
      ~swap:Repro_core.Machine.zram;
    fig_micro "fig12-zram-tails" ~policy:Policy.Registry.Clock
      ~swap:Repro_core.Machine.zram;
  ]

(* ------------------------------------------------------------------ *)
(* Policy-SDK hook dispatch overhead.                                  *)
(*                                                                     *)
(* Wall-clock cost of the guest hook surface: the host trampoline in   *)
(* isolation (a no-op guest driven through Guest_host's fault path)    *)
(* and each V1 hook body per guest at steady state (256 resident keys, *)
(* evictions immediately re-faulted).  Results land in                 *)
(* BENCH_policy_sdk.json as ns/hook and minor words/hook.              *)
(* ------------------------------------------------------------------ *)

module V1 = Policy.Hooks.V1

module Null_guest = struct
  type t = unit

  let name = "null"
  let api_version = 1
  let init _ = ()
  let on_fault () _ = ()
  let on_access_sample () _ = ()
  let on_scan_tick () = ()
  let evict_request () ~want:_ = []
  let stats () = []
  let gauges () = []
end

module Null_host = Policy.Guest_host.Host (Null_guest)

let sdk_env () =
  let frames = 256 in
  let pt = Mem.Page_table.create ~asid:0 ~pages:1024 () in
  let ft = Mem.Frame_table.create ~frames in
  let mem = Mem.Phys_mem.create ~frames () in
  {
    Policy.Policy_intf.costs = Mem.Costs.default;
    frames = ft;
    page_table_of = (fun _ -> pt);
    address_spaces = (fun () -> [ pt ]);
    rng = Engine.Rng.create 11;
    now = (fun () -> 0);
    reclaim_page = (fun ~pfn:_ -> ());
    evictable = (fun ~pfn:_ ~force:_ -> true);
    free_count = (fun () -> Mem.Phys_mem.free_count mem);
    total_frames = frames;
    low_watermark = Mem.Phys_mem.low_watermark mem;
    high_watermark = Mem.Phys_mem.high_watermark mem;
    obs = Obs.disabled;
    prof = Obs.Prof.disabled;
    vmstat = Obs.Vmstat.create ();
  }

let bench_dispatch_overhead =
  let p = Null_host.create (sdk_env ()) in
  let i = ref 0 in
  Test.make ~name:"host-dispatch-overhead"
    (Staged.stage (fun () ->
         incr i;
         Null_host.on_page_mapped p ~pfn:(!i land 255) ~asid:0
           ~vpn:(!i land 255) ~refault:false ~file_backed:false
           ~speculative:false))

let sdk_guests =
  [
    ("s3-fifo", (module Policy.S3_fifo : V1.GUEST));
    ("sieve", (module Policy.Sieve : V1.GUEST));
    ("perceptron", (module Policy.Perceptron : V1.GUEST));
  ]

let guest_hook_tests (name, (module G : V1.GUEST)) =
  let n = 256 in
  let rng = Engine.Rng.create 7 in
  let ctx =
    {
      V1.now = (fun () -> 0);
      free_count = (fun () -> n / 8);
      total_frames = n;
      low_watermark = n / 8;
      high_watermark = n / 4;
      page =
        (fun ~pfn ->
          if pfn >= 0 && pfn < n then
            Some
              { V1.accessed = pfn land 1 = 0; dirty = false; file_backed = false }
          else None);
      evictable_hint = (fun ~pfn -> pfn >= 0 && pfn < n);
      rand = (fun bound -> Engine.Rng.int rng bound);
    }
  in
  let g = G.init ctx in
  let fault pfn ~reinserted =
    G.on_fault g
      {
        V1.pfn = pfn land (n - 1);
        key = pfn land (n - 1);
        refault = true;
        file_backed = false;
        speculative = false;
        reinserted;
      }
  in
  for pfn = 0 to n - 1 do
    fault pfn ~reinserted:false
  done;
  let i = ref 0 in
  [
    Test.make ~name:(name ^ "/on_fault")
      (Staged.stage (fun () ->
           incr i;
           fault !i ~reinserted:false));
    Test.make ~name:(name ^ "/on_access_sample")
      (Staged.stage (fun () ->
           incr i;
           G.on_access_sample g { V1.pfn = !i land (n - 1); dirty = false }));
    Test.make ~name:(name ^ "/on_scan_tick")
      (Staged.stage (fun () -> G.on_scan_tick g));
    Test.make ~name:(name ^ "/evict_request")
      (Staged.stage (fun () ->
           (* Re-fault what the guest hands back so occupancy — and
              therefore per-call work — stays constant. *)
           List.iter (fun pfn -> fault pfn ~reinserted:false)
             (G.evict_request g ~want:1)));
  ]

let run_sdk_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let clock = Instance.monotonic_clock in
  let alloc = Instance.minor_allocated in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let tests =
    Test.make_grouped ~name:"policy-sdk"
      (bench_dispatch_overhead :: List.concat_map guest_hook_tests sdk_guests)
  in
  let raw = Benchmark.all cfg [ clock; alloc ] tests in
  let times = Analyze.all ols clock raw in
  let allocs = Analyze.all ols alloc raw in
  let estimate tbl name =
    match Hashtbl.find_opt tbl name with
    | Some r -> (
      match Analyze.OLS.estimates r with Some (t :: _) -> Some t | _ -> None)
    | None -> None
  in
  let names =
    List.sort compare
      (Hashtbl.fold (fun name _ acc -> name :: acc) times [])
  in
  print_endline "=== Policy-SDK hook dispatch (ns/hook, minor words/hook) ===";
  let rows =
    List.map
      (fun name ->
        let ns = estimate times name and words = estimate allocs name in
        Printf.printf "%-44s %10s ns %8s words\n" name
          (match ns with Some t -> Printf.sprintf "%.1f" t | None -> "?")
          (match words with Some w -> Printf.sprintf "%.1f" w | None -> "?");
        (name, ns, words))
      names
  in
  let oc = open_out "BENCH_policy_sdk.json" in
  let j = function Some v -> Printf.sprintf "%.2f" v | None -> "null" in
  output_string oc "{\n";
  output_string oc "  \"benchmark\": \"policy_sdk_hook_dispatch\",\n";
  output_string oc
    "  \"units\": { \"time\": \"ns/hook\", \"alloc\": \"minor words/hook\" },\n";
  output_string oc "  \"results\": [\n";
  List.iteri
    (fun k (name, ns, words) ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"ns_per_hook\": %s, \"minor_words_per_hook\": %s }%s\n"
        name (j ns) (j words)
        (if k = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline "(wrote BENCH_policy_sdk.json)"

(* ------------------------------------------------------------------ *)
(* Engine wall-clock harness.                                          *)
(*                                                                     *)
(* The standing speed trajectory: raw event-loop throughput, machine   *)
(* fault-burst cells at default (1/256) scale under each headline      *)
(* policy, and one full-scale (>= 3 M pages, unscaled costs) smoke     *)
(* cell.  Results land in BENCH_engine.json so each PR can be compared *)
(* wall-clock against the last (DESIGN.md section 13).  Run just this  *)
(* part with `dune exec bench/main.exe -- engine`.                     *)
(* ------------------------------------------------------------------ *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Raw discrete-event loop throughput: 64 self-rescheduling events so
   the heap keeps realistic depth, 2 M pops total. *)
let event_loop_throughput () =
  let n = 2_000_000 in
  let sim = Engine.Sim.create () in
  let remaining = ref n in
  let rec step s =
    decr remaining;
    if !remaining > 0 then Engine.Sim.schedule s ~delay:1 step
  in
  for _ = 1 to 64 do
    Engine.Sim.schedule sim ~delay:0 step
  done;
  let (), wall_s = wall (fun () -> Engine.Sim.run sim) in
  float_of_int n /. wall_s

type engine_cell = {
  ec_name : string;
  ec_pages : int;
  ec_ratio : float;
  ec_wall_s : float;
  ec_sim_ns : int;
  ec_major : int;
  ec_minor : int;
  ec_allocs_per_fault : float; (** minor words per (major + minor) fault *)
}

(* Sequential passes over the footprint at [ratio] capacity: pass 1 is
   all minor faults, later passes re-fault everything the policy had to
   evict — a dense, deterministic fault burst. *)
let fault_burst_cell ?chaos ~name ~policy ~pages ~passes ~ratio ~full_scale () =
  let w =
    Workload.Trace.of_page_lists ~footprint:pages
      (List.init passes (fun _ -> Array.init pages (fun i -> i)))
  in
  let capacity = max 64 (int_of_float (float_of_int pages *. ratio)) in
  let cfg =
    let base =
      Repro_core.Machine.default_config ~capacity_frames:capacity ~seed:42
    in
    if full_scale then
      (* The paper's real footprint: unscaled per-page costs, 512-PTE
         page-table regions. *)
      { base with Repro_core.Machine.costs = Mem.Costs.default;
        kthread_jitter_ns = 0 }
    else { base with Repro_core.Machine.kthread_jitter_ns = 0 }
  in
  let cfg = { cfg with Repro_core.Machine.chaos } in
  let mw0 = Gc.minor_words () in
  let r, wall_s =
    wall (fun () ->
        Repro_core.Machine.run cfg
          ~policy:(Policy.Registry.create policy)
          ~workload:(Workload.Chunk.Packed ((module Workload.Trace), w)))
  in
  let mw1 = Gc.minor_words () in
  let faults =
    max 1 (r.Repro_core.Machine.major_faults + r.Repro_core.Machine.minor_faults)
  in
  {
    ec_name = name;
    ec_pages = pages;
    ec_ratio = ratio;
    ec_wall_s = wall_s;
    ec_sim_ns = r.Repro_core.Machine.runtime_ns;
    ec_major = r.Repro_core.Machine.major_faults;
    ec_minor = r.Repro_core.Machine.minor_faults;
    ec_allocs_per_fault = (mw1 -. mw0) /. float_of_int faults;
  }

let sim_ns_per_wall_ms c = float_of_int c.ec_sim_ns /. (c.ec_wall_s *. 1000.)

let print_cell c =
  Printf.printf
    "%-18s %9d pages  %7.2fs wall  %6.1f sim-s  %8d major  %8d minor  %7.1f words/fault\n%!"
    c.ec_name c.ec_pages c.ec_wall_s
    (float_of_int c.ec_sim_ns /. 1e9)
    c.ec_major c.ec_minor c.ec_allocs_per_fault

let cell_json c =
  Printf.sprintf
    "{ \"name\": \"%s\", \"pages\": %d, \"ratio\": %.2f, \"wall_s\": %.3f, \
     \"sim_ns\": %d, \"major_faults\": %d, \"minor_faults\": %d, \
     \"allocs_per_fault\": %.2f, \"sim_ns_per_wall_ms\": %.1f }"
    c.ec_name c.ec_pages c.ec_ratio c.ec_wall_s c.ec_sim_ns c.ec_major
    c.ec_minor c.ec_allocs_per_fault (sim_ns_per_wall_ms c)

let run_engine_harness () =
  print_endline "=== Engine wall-clock harness ===";
  let events_per_sec = event_loop_throughput () in
  Printf.printf "event loop: %.3e events/sec\n%!" events_per_sec;
  let default_cells =
    [
      fault_burst_cell ~name:"default/clock" ~policy:Policy.Registry.Clock
        ~pages:16_384 ~passes:4 ~ratio:0.5 ~full_scale:false ();
      fault_burst_cell ~name:"default/mglru"
        ~policy:Policy.Registry.Mglru_default ~pages:16_384 ~passes:4
        ~ratio:0.5 ~full_scale:false ();
      (* Same burst under a three-class transient schedule: the cost of
         the chaos layer itself plus the work its injections cause. *)
      fault_burst_cell ~name:"default/chaos"
        ~chaos:
          (match
             Repro_core.Chaos.parse_spec
               "hotplug:at=50ms,shrink=30%,restore=150ms;\
                degrade:at=200ms,for=100ms,latency=4x;burst:at=350ms,for=50ms"
           with
          | Ok s -> s
          | Error e -> failwith e)
        ~policy:Policy.Registry.Mglru_default ~pages:16_384 ~passes:4
        ~ratio:0.5 ~full_scale:false ();
    ]
  in
  List.iter print_cell default_cells;
  let full_scale =
    match Sys.getenv_opt "BENCH_SKIP_FULL_SCALE" with
    | Some _ ->
      print_endline "(skipping full-scale cell: BENCH_SKIP_FULL_SCALE)";
      None
    | None ->
      let c =
        fault_burst_cell ~name:"full-scale/clock" ~policy:Policy.Registry.Clock
          ~pages:3_276_800 ~passes:2 ~ratio:0.5 ~full_scale:true ()
      in
      print_cell c;
      Some c
  in
  (* Headline numbers: worst allocs/fault across the default cells (so a
     regression in any builtin moves the trajectory), sim-speed from the
     clock cell.  The chaos cell is reported but kept out of the
     headline so the trajectory stays comparable with earlier PRs. *)
  let allocs_per_fault =
    List.fold_left
      (fun acc c ->
        if c.ec_name = "default/chaos" then acc
        else max acc c.ec_allocs_per_fault)
      0. default_cells
  in
  let headline = List.hd default_cells in
  let oc = open_out "BENCH_engine.json" in
  output_string oc "{\n";
  output_string oc "  \"benchmark\": \"engine\",\n";
  output_string oc
    "  \"units\": { \"events_per_sec\": \"raw event-loop pops/sec\", \
     \"sim_ns_per_wall_ms\": \"simulated ns per wall-clock ms\", \
     \"allocs_per_fault\": \"minor words per fault\" },\n";
  Printf.fprintf oc "  \"events_per_sec\": %.0f,\n" events_per_sec;
  Printf.fprintf oc "  \"sim_ns_per_wall_ms\": %.1f,\n"
    (sim_ns_per_wall_ms headline);
  Printf.fprintf oc "  \"allocs_per_fault\": %.2f,\n" allocs_per_fault;
  output_string oc "  \"cells\": [\n";
  List.iteri
    (fun k c ->
      Printf.fprintf oc "    %s%s\n" (cell_json c)
        (if k = List.length default_cells - 1 then "" else ","))
    default_cells;
  output_string oc "  ],\n";
  (match full_scale with
  | Some c -> Printf.fprintf oc "  \"full_scale\": %s\n" (cell_json c)
  | None -> output_string oc "  \"full_scale\": null\n");
  output_string oc "}\n";
  close_out oc;
  print_endline "(wrote BENCH_engine.json)"

(* ------------------------------------------------------------------ *)

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let tests =
    Test.make_grouped ~name:"pagerepl"
      ([ bench_zipf; bench_bloom; bench_dlist; bench_event_queue; bench_pte; bench_rng ]
      @ figure_micro_tests)
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  print_endline "=== Bechamel microbenchmarks (ns/run, OLS) ===";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> Printf.sprintf "%12.1f" t
        | Some [] | None -> "           ?"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-40s %s ns/run\n" name est)
    (List.sort compare !rows)

let () =
  (* `bench/main.exe engine` runs only the engine harness (CI's bench
     smoke step); no argument runs everything. *)
  if Array.exists (fun a -> a = "engine") Sys.argv then run_engine_harness ()
  else begin
  (match Sys.getenv_opt "REPRO_SKIP_MICRO" with
  | Some _ -> print_endline "(skipping bechamel microbenchmarks)"
  | None ->
    run_benchmarks ();
    print_newline ();
    run_sdk_benchmarks ());
  print_newline ();
  run_engine_harness ();
  print_newline ();
  print_endline "=== Full figure reproduction ===";
  let profile = Repro_core.Runner.profile_from_env () in
  (* Figure timings default to the serial path so numbers stay
     comparable across machines; REPRO_JOBS opts into the pool. *)
  let jobs =
    match Sys.getenv_opt "REPRO_JOBS" with
    | Some s -> (match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
    | None -> 1
  in
  let ctx = Repro_core.Runner.make_ctx ~profile ~jobs () in
  Printf.printf "profile: trials=%d ycsb_trials=%d fast=%b jobs=%d\n"
    profile.Repro_core.Runner.trials profile.Repro_core.Runner.ycsb_trials
    profile.Repro_core.Runner.fast jobs;
  let t0 = Unix.gettimeofday () in
  Repro_core.Figures.run_all ctx;
  Printf.printf "\n(total figure time: %.1fs)\n" (Unix.gettimeofday () -. t0)
  end
