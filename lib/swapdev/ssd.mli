(** SSD swap model.

    Matches the paper's measured medium: ~7.5 ms for a 4 KB read or
    write (§IV — a slow SATA device under sync swap traffic).  Requests
    queue on a small number of channels; a burst of demand faults
    therefore sees its tail stretched by queueing, which is what makes
    SSD-swap fault *counts* translate linearly into runtime. *)

type config = {
  read_ns : int;
  write_ns : int;
  channels : int;       (** concurrent in-flight operations *)
  jitter : float;       (** multiplicative service-time noise, e.g. 0.05 *)
  cpu_per_op_ns : int;  (** block-layer + interrupt CPU cost *)
  size_sensitivity : float;
      (** how strongly service time tracks [size_fraction]: 0 ignores it
          (whole-page transfers, the default), 1 is fully proportional.
          A transfer with [size_fraction = 1.0] costs the base service
          time at every sensitivity. *)
}

val default_config : config
(** 7.5 ms / 7.5 ms, 8 channels, 5 % jitter, 3 µs CPU per op,
    size-insensitive. *)

val create : ?config:config -> rng:Engine.Rng.t -> unit -> Device.t
