type config = {
  read_ns : int;
  write_ns : int;
  channels : int;
  jitter : float;
  size_sensitivity : float;
}

let default_config =
  { read_ns = 20_000; write_ns = 35_000; channels = 12; jitter = 0.10;
    size_sensitivity = 0.5 }

let create ?(config = default_config) ~rng () =
  if config.channels <= 0 then invalid_arg "Zram.create: channels must be positive";
  let free_at = Array.make config.channels 0 in
  let reads = ref 0 and writes = ref 0 in
  let earliest_channel () =
    let best = ref 0 in
    for i = 1 to config.channels - 1 do
      if free_at.(i) < free_at.(!best) then best := i
    done;
    !best
  in
  let submit ~now ~op ~size_fraction =
    let base =
      match op with
      | Device.Read ->
        incr reads;
        config.read_ns
      | Device.Write ->
        incr writes;
        config.write_ns
    in
    let s = config.size_sensitivity in
    let size_scale = 1.0 -. s +. (s *. (Float.max 0.01 size_fraction /. 0.5)) in
    let service =
      int_of_float
        (float_of_int base *. size_scale *. Engine.Rng.jitter rng config.jitter)
    in
    let ch = earliest_channel () in
    let start = max now free_at.(ch) in
    let finish = start + service in
    free_at.(ch) <- finish;
    (* Compression work runs on the host CPU, not a device controller. *)
    { Device.finish_ns = finish; cpu_ns = service; status = Device.Done }
  in
  {
    Device.name = "zram";
    submit;
    reads = (fun () -> !reads);
    writes = (fun () -> !writes);
    busy_until = (fun () -> Array.fold_left max 0 free_at);
  }

let stored_bytes_estimate ~pages ~mean_ratio =
  int_of_float (float_of_int pages *. 4096.0 *. mean_ratio)
