type plan = {
  read_error_prob : float;
  write_error_prob : float;
  permanent_fraction : float;
  burst_every_ops : int;
  burst_len_ops : int;
  burst_permanent : bool;
  stall_every_ops : int;
  stall_ns : int;
  tail_prob : float;
  tail_multiplier : float;
}

let none =
  {
    read_error_prob = 0.0;
    write_error_prob = 0.0;
    permanent_fraction = 0.0;
    burst_every_ops = 0;
    burst_len_ops = 0;
    burst_permanent = false;
    stall_every_ops = 0;
    stall_ns = 0;
    tail_prob = 0.0;
    tail_multiplier = 1.0;
  }

let is_none p =
  p.read_error_prob = 0.0 && p.write_error_prob = 0.0
  && (p.burst_every_ops <= 0 || p.burst_len_ops <= 0)
  && (p.stall_every_ops <= 0 || p.stall_ns <= 0)
  && (p.tail_prob = 0.0 || p.tail_multiplier <= 1.0)

(* Occasional recoverable hiccups: rare per-op errors, firmware pauses,
   a thin tail of slow completions. *)
let light =
  {
    none with
    read_error_prob = 0.002;
    write_error_prob = 0.002;
    permanent_fraction = 0.02;
    stall_every_ops = 4096;
    stall_ns = 5_000_000;
    tail_prob = 0.005;
    tail_multiplier = 8.0;
  }

(* A device on its way out: dense error bursts that are permanent (worn
   blocks), frequent stalls, a heavy latency tail. *)
let heavy =
  {
    read_error_prob = 0.01;
    write_error_prob = 0.01;
    permanent_fraction = 0.25;
    burst_every_ops = 600;
    burst_len_ops = 400;
    burst_permanent = true;
    stall_every_ops = 1024;
    stall_ns = 20_000_000;
    tail_prob = 0.02;
    tail_multiplier = 20.0;
  }

let plan_of_name = function
  | "none" -> Some none
  | "light" -> Some light
  | "heavy" -> Some heavy
  | _ -> None

type counters = {
  mutable transient_errors : int;
  mutable permanent_errors : int;
  mutable stalls : int;
  mutable tail_spikes : int;
}

let fresh_counters () =
  { transient_errors = 0; permanent_errors = 0; stalls = 0; tail_spikes = 0 }

let injected c =
  c.transient_errors + c.permanent_errors + c.stalls + c.tail_spikes

let wrap ~plan ~rng inner =
  let counters = fresh_counters () in
  let ops = ref 0 in
  let in_burst seq =
    plan.burst_every_ops > 0 && plan.burst_len_ops > 0
    && seq mod plan.burst_every_ops < plan.burst_len_ops
  in
  let submit ~now ~op ~size_fraction =
    let seq = !ops in
    incr ops;
    let c = inner.Device.submit ~now ~op ~size_fraction in
    let error =
      if in_burst seq then
        Some (if plan.burst_permanent then Device.Permanent else Device.Transient)
      else begin
        let p =
          match op with
          | Device.Read -> plan.read_error_prob
          | Device.Write -> plan.write_error_prob
        in
        if p > 0.0 && Engine.Rng.bool rng p then
          Some
            (if plan.permanent_fraction > 0.0
                && Engine.Rng.bool rng plan.permanent_fraction
             then Device.Permanent
             else Device.Transient)
        else None
      end
    in
    match error with
    | Some kind ->
      (match kind with
      | Device.Transient -> counters.transient_errors <- counters.transient_errors + 1
      | Device.Permanent -> counters.permanent_errors <- counters.permanent_errors + 1);
      { c with Device.status = Device.Failed kind }
    | None ->
      (* Stalls and tail spikes delay only this completion (host-visible
         latency: firmware pauses, retries inside the controller); they
         do not extend the device's channel occupancy. *)
      let finish = ref c.Device.finish_ns in
      if plan.stall_every_ops > 0 && plan.stall_ns > 0
         && seq mod plan.stall_every_ops = plan.stall_every_ops - 1
      then begin
        counters.stalls <- counters.stalls + 1;
        finish := !finish + plan.stall_ns
      end;
      if plan.tail_prob > 0.0 && plan.tail_multiplier > 1.0
         && Engine.Rng.bool rng plan.tail_prob
      then begin
        counters.tail_spikes <- counters.tail_spikes + 1;
        let observed = max 1 (!finish - now) in
        finish :=
          now
          + int_of_float (float_of_int observed *. plan.tail_multiplier)
      end;
      { c with Device.finish_ns = !finish }
  in
  ( {
      Device.name = inner.Device.name ^ "+faults";
      submit;
      reads = inner.Device.reads;
      writes = inner.Device.writes;
      busy_until = inner.Device.busy_until;
    },
    counters )
