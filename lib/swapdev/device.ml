type op = Read | Write

type error = Transient | Permanent

type status = Done | Failed of error

type completion = {
  finish_ns : int;
  cpu_ns : int;
  status : status;
}

type t = {
  name : string;
  submit : now:int -> op:op -> size_fraction:float -> completion;
  reads : unit -> int;
  writes : unit -> int;
  busy_until : unit -> int;
}

let op_name = function Read -> "read" | Write -> "write"

let error_name = function Transient -> "transient" | Permanent -> "permanent"

let ok completion = completion.status = Done
