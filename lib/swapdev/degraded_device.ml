(* Runtime swap-device degradation: the chaos `degrade` injector.

   Faulty_device models a *statically* configured failure plan fixed at
   wrap time; chaos transients need knobs a scheduler can turn mid-run.
   This decorator reads a mutable knob block on every submit:

   - [latency_mult] stretches the observed service time of each
     completion (the host-visible effect of throughput collapse on a
     synchronous requester);
   - [error_prob] fails operations with transient errors (link resets
     during a brown-out);
   - [wear_prob] fails operations permanently (media wear — capacity
     loss, since the swap manager retires poisoned slots for good).

   Neutral knobs (1.0 / 0.0 / 0.0) are exact identities: no RNG draw,
   no arithmetic on the completion, so a wrapped-but-quiet device is
   byte-identical to the unwrapped one.  The RNG is dedicated to this
   wrapper (derived from the machine seed, never split from the main
   stream), so runs with and without a degrade schedule share every
   other random draw. *)

type knobs = {
  mutable latency_mult : float;
  mutable error_prob : float;
  mutable wear_prob : float;
}

let neutral () = { latency_mult = 1.0; error_prob = 0.0; wear_prob = 0.0 }

let is_neutral k =
  k.latency_mult = 1.0 && k.error_prob = 0.0 && k.wear_prob = 0.0

type counters = {
  mutable slow_ops : int;
  mutable degraded_transient : int;
  mutable degraded_permanent : int;
}

let fresh_counters () =
  { slow_ops = 0; degraded_transient = 0; degraded_permanent = 0 }

let wrap ~knobs ~rng inner =
  let counters = fresh_counters () in
  let submit ~now ~op ~size_fraction =
    let busy0 = inner.Device.busy_until () in
    let c = inner.Device.submit ~now ~op ~size_fraction in
    (* Wear (permanent) is drawn before transient errors so the two
       probabilities consume a stable number of RNG draws per op while
       their window is open. *)
    if knobs.wear_prob > 0.0 && Engine.Rng.bool rng knobs.wear_prob then begin
      counters.degraded_permanent <- counters.degraded_permanent + 1;
      { c with Device.status = Device.Failed Device.Permanent }
    end
    else if knobs.error_prob > 0.0 && Engine.Rng.bool rng knobs.error_prob
    then begin
      counters.degraded_transient <- counters.degraded_transient + 1;
      { c with Device.status = Device.Failed Device.Transient }
    end
    else if knobs.latency_mult <> 1.0 then begin
      counters.slow_ops <- counters.slow_ops + 1;
      (* Stretch only the service portion — the completion minus the
         device's pre-submit busy floor — never the queueing delta.
         Thread-local cursors legitimately run ahead of simulated time
         here, so a stretched queue delta would be re-observed by the
         next submitter and multiplied again: the skew compounds
         exponentially in the multiplier.  Service time is bounded per
         op, so this keeps the slowdown linear and the window finite. *)
      let service = max 1 (c.Device.finish_ns - max now busy0) in
      { c with
        Device.finish_ns =
          c.Device.finish_ns
          + int_of_float
              (float_of_int service *. (knobs.latency_mult -. 1.0));
      }
    end
    else c
  in
  ( {
      Device.name = inner.Device.name ^ "+degrade";
      submit;
      reads = inner.Device.reads;
      writes = inner.Device.writes;
      busy_until = inner.Device.busy_until;
    },
    counters )
