(** Runtime swap-device degradation — the chaos [degrade] injector.

    Unlike {!Faulty_device}, whose failure plan is fixed at wrap time,
    this decorator reads a mutable {!knobs} block on every submit, so a
    simulated-time scheduler can ramp latency, inject transient error
    windows, and wear blocks out permanently mid-run.  Neutral knobs are
    exact identities — no RNG draw, no completion rewrite — so a wrapped
    device with no active transient behaves byte-identically to the
    unwrapped one. *)

type knobs = {
  mutable latency_mult : float;  (** service-time stretch; 1.0 = none *)
  mutable error_prob : float;    (** per-op transient failure probability *)
  mutable wear_prob : float;     (** per-op permanent failure probability *)
}

val neutral : unit -> knobs
(** Fresh identity knobs: [latency_mult = 1.0], both probabilities 0. *)

val is_neutral : knobs -> bool

type counters = {
  mutable slow_ops : int;            (** completions stretched by latency *)
  mutable degraded_transient : int;  (** transient failures injected *)
  mutable degraded_permanent : int;  (** permanent failures injected *)
}

val wrap : knobs:knobs -> rng:Engine.Rng.t -> Device.t -> Device.t * counters
(** Decorate a device.  [rng] must be dedicated to this wrapper (the
    machine derives it from the seed rather than splitting the main
    stream), and is only consulted while an error or wear window is
    open. *)
