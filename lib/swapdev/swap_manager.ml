type t = {
  device : Device.t;
  seed : int;
  max_retries : int;
  backoff_ns : int;
  obs : Obs.t;
  mutable ratios : float array; (* slot -> size fraction; nan = free *)
  mutable free : int list;
  mutable next_slot : int;
  mutable used : int;
  mutable peak : int;
  mutable compressed : float; (* sum of in-use size fractions *)
  mutable ins : int;
  mutable outs : int;
  mutable retries : int;
  mutable remaps : int;
  mutable read_failures : int;
  mutable write_failures : int;
}

type io = {
  finish_ns : int;
  cpu_ns : int;
  io_retries : int;
  failed : bool;
}

let create ?(max_retries = 4) ?(backoff_ns = 100_000) ?(obs = Obs.disabled)
    ~device ~seed () =
  if max_retries < 0 then invalid_arg "Swap_manager.create: max_retries";
  {
    device;
    seed;
    max_retries;
    backoff_ns;
    obs;
    ratios = Array.make 1024 nan;
    free = [];
    next_slot = 0;
    used = 0;
    peak = 0;
    compressed = 0.0;
    ins = 0;
    outs = 0;
    retries = 0;
    remaps = 0;
    read_failures = 0;
    write_failures = 0;
  }

let device t = t.device

let grow t =
  let n = Array.length t.ratios in
  let ratios = Array.make (2 * n) nan in
  Array.blit t.ratios 0 ratios 0 n;
  t.ratios <- ratios

let alloc_slot t =
  match t.free with
  | slot :: rest ->
    t.free <- rest;
    slot
  | [] ->
    let slot = t.next_slot in
    t.next_slot <- slot + 1;
    if slot >= Array.length t.ratios then grow t;
    slot

let slot_in_use t slot =
  slot >= 0 && slot < Array.length t.ratios && not (Float.is_nan t.ratios.(slot))

let release t ~slot =
  if not (slot_in_use t slot) then invalid_arg "Swap_manager.release: slot not in use";
  let ratio = t.ratios.(slot) in
  t.ratios.(slot) <- nan;
  t.free <- slot :: t.free;
  t.used <- t.used - 1;
  t.compressed <- t.compressed -. ratio

let take_slot t ratio =
  let slot = alloc_slot t in
  t.ratios.(slot) <- ratio;
  t.used <- t.used + 1;
  if t.used > t.peak then t.peak <- t.used;
  t.compressed <- t.compressed +. ratio;
  slot

(* Exponential backoff in *simulated* time: the retry is submitted only
   after the failure was observed plus the backoff delay. *)
let backoff t tries = t.backoff_ns * (1 lsl min tries 10)

let swap_out t ~now ~klass ~page_key =
  let submitted = now in
  let remapped = ref false in
  let ratio = Compress.ratio klass ~page_key ~seed:t.seed in
  let rec attempt ~slot ~now ~tries ~cpu =
    let c = t.device.Device.submit ~now ~op:Device.Write ~size_fraction:ratio in
    let cpu = cpu + c.Device.cpu_ns in
    match c.Device.status with
    | Device.Done ->
      t.outs <- t.outs + 1;
      ( Some slot,
        { finish_ns = c.Device.finish_ns; cpu_ns = cpu; io_retries = tries;
          failed = false } )
    | Device.Failed kind ->
      if tries >= t.max_retries then begin
        release t ~slot;
        t.write_failures <- t.write_failures + 1;
        ( None,
          { finish_ns = c.Device.finish_ns; cpu_ns = cpu; io_retries = tries;
            failed = true } )
      end
      else begin
        t.retries <- t.retries + 1;
        let slot =
          match kind with
          | Device.Transient -> slot
          | Device.Permanent ->
            (* The block is bad: remap the page to a fresh slot. *)
            release t ~slot;
            t.remaps <- t.remaps + 1;
            remapped := true;
            take_slot t ratio
        in
        attempt ~slot ~now:(c.Device.finish_ns + backoff t tries)
          ~tries:(tries + 1) ~cpu
      end
  in
  let ((slot_opt, io) as result) =
    attempt ~slot:(take_slot t ratio) ~now ~tries:0 ~cpu:0
  in
  Obs.emit t.obs ~t_ns:submitted
    (Obs.Swap_write
       {
         slot = (match slot_opt with Some s -> s | None -> -1);
         latency_ns = io.finish_ns - submitted;
         retries = io.io_retries;
         failed = io.failed;
         remapped = !remapped;
       });
  result

let swap_in t ~now ~slot =
  if not (slot_in_use t slot) then invalid_arg "Swap_manager.swap_in: slot not in use";
  let ratio = t.ratios.(slot) in
  let rec attempt ~now ~tries ~cpu =
    let c = t.device.Device.submit ~now ~op:Device.Read ~size_fraction:ratio in
    let cpu = cpu + c.Device.cpu_ns in
    match c.Device.status with
    | Device.Done ->
      t.ins <- t.ins + 1;
      { finish_ns = c.Device.finish_ns; cpu_ns = cpu; io_retries = tries;
        failed = false }
    | Device.Failed Device.Transient when tries < t.max_retries ->
      t.retries <- t.retries + 1;
      attempt ~now:(c.Device.finish_ns + backoff t tries) ~tries:(tries + 1) ~cpu
    | Device.Failed _ ->
      (* Permanent, or transient retries exhausted: the stored page is
         unreachable — the caller must poison the mapping. *)
      t.read_failures <- t.read_failures + 1;
      { finish_ns = c.Device.finish_ns; cpu_ns = cpu; io_retries = tries;
        failed = true }
  in
  let io = attempt ~now ~tries:0 ~cpu:0 in
  Obs.emit t.obs ~t_ns:now
    (Obs.Swap_read
       {
         slot;
         latency_ns = io.finish_ns - now;
         retries = io.io_retries;
         failed = io.failed;
       });
  io

let used_slots t = t.used

let peak_slots t = t.peak

let compressed_bytes t = t.compressed *. 4096.0

let swap_ins t = t.ins

let swap_outs t = t.outs

let io_retries t = t.retries

let io_remaps t = t.remaps

let read_failures t = t.read_failures

let write_failures t = t.write_failures
