type t = {
  device : Device.t;
  seed : int;
  max_retries : int;
  backoff_ns : int;
  obs : Obs.t;
  (* The machine's vmstat registry (a private throwaway when none is
     passed): pswpin/pswpout count at the same points as [ins]/[outs],
     unconditionally — one int store, never a branch on configuration. *)
  vmstat : Obs.Vmstat.t;
  mutable ratios : float array; (* slot -> size fraction; nan = free *)
  mutable free : int list;
  mutable next_slot : int;
  mutable used : int;
  mutable peak : int;
  mutable compressed : float; (* sum of in-use size fractions *)
  mutable ins : int;
  mutable outs : int;
  mutable retries : int;
  mutable remaps : int;
  mutable read_failures : int;
  mutable write_failures : int;
  (* Out-fields of the last swap_out_slot/swap_in_slot: the fault path
     reads these instead of a freshly allocated [io] record. *)
  mutable last_finish_ns : int;
  mutable last_cpu_ns : int;
  mutable last_retries : int;
  mutable last_failed : bool;
  mutable last_remapped : bool;
}

type io = {
  finish_ns : int;
  cpu_ns : int;
  io_retries : int;
  failed : bool;
}

let create ?(max_retries = 4) ?(backoff_ns = 100_000) ?(obs = Obs.disabled)
    ?vmstat ~device ~seed () =
  if max_retries < 0 then invalid_arg "Swap_manager.create: max_retries";
  {
    device;
    seed;
    max_retries;
    backoff_ns;
    obs;
    vmstat =
      (match vmstat with Some v -> v | None -> Obs.Vmstat.create ());
    ratios = Array.make 1024 nan;
    free = [];
    next_slot = 0;
    used = 0;
    peak = 0;
    compressed = 0.0;
    ins = 0;
    outs = 0;
    retries = 0;
    remaps = 0;
    read_failures = 0;
    write_failures = 0;
    last_finish_ns = 0;
    last_cpu_ns = 0;
    last_retries = 0;
    last_failed = false;
    last_remapped = false;
  }

let device t = t.device

let grow t =
  let n = Array.length t.ratios in
  let ratios = Array.make (2 * n) nan in
  Array.blit t.ratios 0 ratios 0 n;
  t.ratios <- ratios

let alloc_slot t =
  match t.free with
  | slot :: rest ->
    t.free <- rest;
    slot
  | [] ->
    let slot = t.next_slot in
    t.next_slot <- slot + 1;
    if slot >= Array.length t.ratios then grow t;
    slot

let slot_in_use t slot =
  slot >= 0 && slot < Array.length t.ratios && not (Float.is_nan t.ratios.(slot))

let release t ~slot =
  if not (slot_in_use t slot) then invalid_arg "Swap_manager.release: slot not in use";
  let ratio = t.ratios.(slot) in
  t.ratios.(slot) <- nan;
  t.free <- slot :: t.free;
  t.used <- t.used - 1;
  t.compressed <- t.compressed -. ratio

let take_slot t ratio =
  let slot = alloc_slot t in
  t.ratios.(slot) <- ratio;
  t.used <- t.used + 1;
  if t.used > t.peak then t.peak <- t.used;
  t.compressed <- t.compressed +. ratio;
  slot

(* Exponential backoff in *simulated* time: the retry is submitted only
   after the failure was observed plus the backoff delay. *)
let backoff t tries = t.backoff_ns * (1 lsl min tries 10)

(* The attempt loops are top-level recursive functions over int
   arguments (no local closure), writing their outcome into the
   [last_*] out-fields: one logical swap operation allocates nothing
   beyond the device layer's completion record per attempt. *)

let rec out_attempt t ratio slot now tries cpu =
  let c = t.device.Device.submit ~now ~op:Device.Write ~size_fraction:ratio in
  let cpu = cpu + c.Device.cpu_ns in
  match c.Device.status with
  | Device.Done ->
    t.outs <- t.outs + 1;
    Obs.Vmstat.incr t.vmstat Obs.Vmstat.pswpout;
    t.last_finish_ns <- c.Device.finish_ns;
    t.last_cpu_ns <- cpu;
    t.last_retries <- tries;
    t.last_failed <- false;
    slot
  | Device.Failed kind ->
    if tries >= t.max_retries then begin
      release t ~slot;
      t.write_failures <- t.write_failures + 1;
      t.last_finish_ns <- c.Device.finish_ns;
      t.last_cpu_ns <- cpu;
      t.last_retries <- tries;
      t.last_failed <- true;
      -1
    end
    else begin
      t.retries <- t.retries + 1;
      let slot =
        match kind with
        | Device.Transient -> slot
        | Device.Permanent ->
          (* The block is bad: remap the page to a fresh slot. *)
          release t ~slot;
          t.remaps <- t.remaps + 1;
          t.last_remapped <- true;
          take_slot t ratio
      in
      out_attempt t ratio slot (c.Device.finish_ns + backoff t tries)
        (tries + 1) cpu
    end

let swap_out_slot t ~now ~klass ~page_key =
  let submitted = now in
  let ratio = Compress.ratio klass ~page_key ~seed:t.seed in
  t.last_remapped <- false;
  let slot = out_attempt t ratio (take_slot t ratio) now 0 0 in
  if Obs.enabled t.obs then
    Obs.emit t.obs ~t_ns:submitted
      (Obs.Swap_write
         {
           slot;
           latency_ns = t.last_finish_ns - submitted;
           retries = t.last_retries;
           failed = t.last_failed;
           remapped = t.last_remapped;
         });
  slot

let swap_out t ~now ~klass ~page_key =
  let slot = swap_out_slot t ~now ~klass ~page_key in
  ( (if slot < 0 then None else Some slot),
    { finish_ns = t.last_finish_ns; cpu_ns = t.last_cpu_ns;
      io_retries = t.last_retries; failed = t.last_failed } )

let rec in_attempt t ratio now tries cpu =
  let c = t.device.Device.submit ~now ~op:Device.Read ~size_fraction:ratio in
  let cpu = cpu + c.Device.cpu_ns in
  match c.Device.status with
  | Device.Done ->
    t.ins <- t.ins + 1;
    Obs.Vmstat.incr t.vmstat Obs.Vmstat.pswpin;
    t.last_finish_ns <- c.Device.finish_ns;
    t.last_cpu_ns <- cpu;
    t.last_retries <- tries;
    t.last_failed <- false
  | Device.Failed Device.Transient when tries < t.max_retries ->
    t.retries <- t.retries + 1;
    in_attempt t ratio (c.Device.finish_ns + backoff t tries) (tries + 1) cpu
  | Device.Failed _ ->
    (* Permanent, or transient retries exhausted: the stored page is
       unreachable — the caller must poison the mapping. *)
    t.read_failures <- t.read_failures + 1;
    t.last_finish_ns <- c.Device.finish_ns;
    t.last_cpu_ns <- cpu;
    t.last_retries <- tries;
    t.last_failed <- true

let swap_in_slot t ~now ~slot =
  if not (slot_in_use t slot) then invalid_arg "Swap_manager.swap_in: slot not in use";
  in_attempt t t.ratios.(slot) now 0 0;
  if Obs.enabled t.obs then
    Obs.emit t.obs ~t_ns:now
      (Obs.Swap_read
         {
           slot;
           latency_ns = t.last_finish_ns - now;
           retries = t.last_retries;
           failed = t.last_failed;
         })

let swap_in t ~now ~slot =
  swap_in_slot t ~now ~slot;
  { finish_ns = t.last_finish_ns; cpu_ns = t.last_cpu_ns;
    io_retries = t.last_retries; failed = t.last_failed }

let last_finish_ns t = t.last_finish_ns

let last_cpu_ns t = t.last_cpu_ns

let last_io_retries t = t.last_retries

let last_failed t = t.last_failed

let used_slots t = t.used

let peak_slots t = t.peak

let compressed_bytes t = t.compressed *. 4096.0

let swap_ins t = t.ins

let swap_outs t = t.outs

let io_retries t = t.retries

let io_remaps t = t.remaps

let read_failures t = t.read_failures

let write_failures t = t.write_failures
