(** Common swap-device interface.

    A device accepts 4 KB page reads/writes and models service time and
    queueing.  [submit] returns both the virtual completion time and the
    host CPU work the operation costs (interrupt handling for the SSD;
    the whole (de)compression for ZRAM, which runs on the faulting CPU
    in the kernel).

    An operation can fail: [status] distinguishes successful completions
    from transient errors (a retry may succeed — link resets, ECC
    recoveries) and permanent ones (the block is gone — media wear,
    controller death).  The physical device models ({!Ssd}, {!Zram})
    never fail; errors are injected by wrapping them in
    {!Faulty_device}. *)

type op = Read | Write

type error =
  | Transient  (** retrying the same operation may succeed *)
  | Permanent  (** the addressed block is unrecoverable *)

type status = Done | Failed of error

type completion = {
  finish_ns : int;  (** absolute virtual time the operation resolved —
                        data available on [Done], error reported on
                        [Failed] *)
  cpu_ns : int;     (** host compute consumed by this operation *)
  status : status;
}

type t = {
  name : string;
  submit : now:int -> op:op -> size_fraction:float -> completion;
      (** [size_fraction] is the compressed-size fraction for
          compressing devices; plain block devices ignore it. *)
  reads : unit -> int;
  writes : unit -> int;
  busy_until : unit -> int;
      (** latest scheduled completion over all channels; an idleness
          probe for tests *)
}

val op_name : op -> string

val error_name : error -> string

val ok : completion -> bool
(** [status = Done]. *)
