type config = {
  read_ns : int;
  write_ns : int;
  channels : int;
  jitter : float;
  cpu_per_op_ns : int;
  size_sensitivity : float;
}

(* 7.5 ms per 4 KB op as the paper measures; 8 concurrent ops reflect a
   SATA NCQ-depth worth of internal parallelism, so sustained thrash is
   bounded by per-thread fault serialization rather than raw device
   bandwidth.  Swap transfers whole 4 KB pages regardless of their
   compressibility, so the default is insensitive to [size_fraction];
   raise [size_sensitivity] to study partial-page transfers. *)
let default_config =
  { read_ns = 7_500_000; write_ns = 7_500_000; channels = 8; jitter = 0.05;
    cpu_per_op_ns = 3_000; size_sensitivity = 0.0 }

let create ?(config = default_config) ~rng () =
  if config.channels <= 0 then invalid_arg "Ssd.create: channels must be positive";
  let free_at = Array.make config.channels 0 in
  let reads = ref 0 and writes = ref 0 in
  let earliest_channel () =
    let best = ref 0 in
    for i = 1 to config.channels - 1 do
      if free_at.(i) < free_at.(!best) then best := i
    done;
    !best
  in
  let submit ~now ~op ~size_fraction =
    let base =
      match op with
      | Device.Read ->
        incr reads;
        config.read_ns
      | Device.Write ->
        incr writes;
        config.write_ns
    in
    (* Interpolate between size-blind (s = 0) and fully proportional
       (s = 1) service time; a full-size transfer always costs [base],
       so [size_sensitivity] never changes whole-page behaviour. *)
    let s = config.size_sensitivity in
    let size_scale = 1.0 -. s +. (s *. Float.max 0.01 size_fraction) in
    let service =
      int_of_float
        (float_of_int base *. size_scale *. Engine.Rng.jitter rng config.jitter)
    in
    let ch = earliest_channel () in
    let start = max now free_at.(ch) in
    let finish = start + service in
    free_at.(ch) <- finish;
    { Device.finish_ns = finish; cpu_ns = config.cpu_per_op_ns; status = Device.Done }
  in
  {
    Device.name = "ssd";
    submit;
    reads = (fun () -> !reads);
    writes = (fun () -> !writes);
    busy_until = (fun () -> Array.fold_left max 0 free_at);
  }
