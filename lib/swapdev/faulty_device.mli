(** Deterministic fault injection over any swap device.

    [wrap] decorates a {!Device.t} with a {!plan}: per-op error
    probabilities split into transient and permanent kinds, periodic
    error bursts (a worn flash block neighbourhood), periodic stall
    windows (firmware garbage collection), and a tail-latency multiplier
    applied to a random fraction of completions.  All randomness comes
    from the caller's seeded {!Engine.Rng.t}, so a faulty trial replays
    exactly.

    The wrapper never perturbs the inner device's queueing state beyond
    what the inner [submit] itself does: failed operations still occupy
    a channel (they ran and then failed), and stall/tail delays extend
    only the observed completion time. *)

type plan = {
  read_error_prob : float;   (** per-read error probability *)
  write_error_prob : float;  (** per-write error probability *)
  permanent_fraction : float;
      (** fraction of probabilistic errors that are permanent *)
  burst_every_ops : int;
      (** period of error bursts in ops; [<= 0] disables bursts *)
  burst_len_ops : int;
      (** ops at the start of each period that all fail *)
  burst_permanent : bool;    (** burst errors are permanent *)
  stall_every_ops : int;
      (** every this many ops, one completion stalls; [<= 0] disables *)
  stall_ns : int;            (** extra latency of a stalled completion *)
  tail_prob : float;         (** per-op probability of a latency spike *)
  tail_multiplier : float;
      (** observed-latency multiplier of a spiked completion *)
}

val none : plan
(** All injection disabled. *)

val is_none : plan -> bool
(** Whether the plan can never inject anything; callers skip wrapping
    entirely for such plans, keeping fault-free runs bit-identical. *)

val light : plan
(** Rare recoverable errors, occasional stalls, thin latency tail. *)

val heavy : plan
(** Dense permanent error bursts, frequent stalls, heavy tail — a dying
    device. *)

val plan_of_name : string -> plan option
(** ["none" | "light" | "heavy"]. *)

type counters = {
  mutable transient_errors : int;
  mutable permanent_errors : int;
  mutable stalls : int;
  mutable tail_spikes : int;
}

val fresh_counters : unit -> counters

val injected : counters -> int
(** Total injected events of any kind. *)

val wrap : plan:plan -> rng:Engine.Rng.t -> Device.t -> Device.t * counters
(** Decorate a device; the returned counters are live. *)
