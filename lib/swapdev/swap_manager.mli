(** Swap-slot management over a device, with fault recovery.

    Allocates slots for swapped-out pages, remembers each slot's
    compressed-size fraction (relevant for ZRAM service time and pool
    accounting), and forwards the I/O to the underlying device.

    Slots survive {!swap_in} — the machine keeps them as a swap cache so
    clean pages can be evicted again without a writeback (as the kernel
    does) — and are freed explicitly with {!release}.

    Device errors (see {!Device.status}) are absorbed here: transient
    errors are retried with exponential backoff in simulated time, a
    permanent write error remaps the page to a fresh slot, and a
    permanent read error (or transient retries exhausted) surfaces as
    [failed = true] so the machine can poison the page.  The {!io}
    result aggregates the timing and CPU of every attempt. *)

type t

val create :
  ?max_retries:int -> ?backoff_ns:int -> ?obs:Obs.t -> ?vmstat:Obs.Vmstat.t ->
  device:Device.t -> seed:int -> unit -> t
(** [max_retries] (default 4) bounds resubmissions per operation;
    [backoff_ns] (default 100 µs) is the base of the exponential
    backoff, doubling per attempt.  [obs] (default {!Obs.disabled})
    receives one [Swap_read]/[Swap_write] event per logical operation,
    stamped with the submission time and carrying the whole-operation
    latency including retries and backoff.  [vmstat] (default: a private
    registry) takes a [pswpin]/[pswpout] bump per successful read/write,
    at the same points as {!swap_ins}/{!swap_outs}. *)

val device : t -> Device.t

(** Outcome of one logical swap operation, including every retry. *)
type io = {
  finish_ns : int;  (** when the final attempt resolved *)
  cpu_ns : int;     (** host CPU summed over all attempts *)
  io_retries : int; (** resubmissions performed *)
  failed : bool;    (** gave up: data unwritten (writes) or lost (reads) *)
}

val swap_out :
  t -> now:int -> klass:Compress.klass -> page_key:int -> int option * io
(** Allocate a slot and write the page; returns [(Some slot, io)] on
    success.  [(None, io)] means the write failed permanently even after
    retries and remapping — no slot holds the page, and the caller must
    keep it resident. *)

val swap_in : t -> now:int -> slot:int -> io
(** Read a slot's page back.  The slot stays allocated (swap cache).
    [failed = true] means the data is unrecoverable; the caller should
    {!release} the slot and poison the page.
    @raise Invalid_argument on a slot not currently in use. *)

(** {2 Allocation-free variants}

    The fault path's entry points: identical semantics to {!swap_out} /
    {!swap_in}, but the per-operation outcome is written into out-fields
    read back through [last_*] instead of a freshly allocated [io]
    record.  The [last_*] values are valid until the next operation on
    this manager. *)

val swap_out_slot : t -> now:int -> klass:Compress.klass -> page_key:int -> int
(** {!swap_out} returning the slot, or [-1] on permanent failure. *)

val swap_in_slot : t -> now:int -> slot:int -> unit
(** {!swap_in}; read the outcome from [last_*].
    @raise Invalid_argument on a slot not currently in use. *)

val last_finish_ns : t -> int

val last_cpu_ns : t -> int

val last_io_retries : t -> int

val last_failed : t -> bool

val release : t -> slot:int -> unit
(** Free a slot without I/O (page dirtied or address space torn down).
    @raise Invalid_argument on a slot not currently in use. *)

val slot_in_use : t -> int -> bool

val used_slots : t -> int

val peak_slots : t -> int

val compressed_bytes : t -> float
(** Current compressed pool size assuming 4 KB pages; meaningful for
    ZRAM-style devices. *)

val swap_ins : t -> int
(** Successful page reads (failed attempts are not counted). *)

val swap_outs : t -> int
(** Successful page writes. *)

val io_retries : t -> int
(** Resubmissions after transient errors (reads and writes). *)

val io_remaps : t -> int
(** Writes moved to a fresh slot after a permanent error. *)

val read_failures : t -> int
(** Reads abandoned: page contents lost. *)

val write_failures : t -> int
(** Writes abandoned: page could not leave memory. *)
