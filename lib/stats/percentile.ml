let quantile_sorted xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Percentile.quantile_sorted: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Percentile.quantile_sorted: q outside [0,1]";
  if n = 1 then xs.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))
  end

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let quantile xs q = quantile_sorted (sorted_copy xs) q

let quantiles xs qs =
  let ys = sorted_copy xs in
  List.map (quantile_sorted ys) qs

let quartiles xs =
  match quantiles xs [ 0.25; 0.5; 0.75 ] with
  | [ q1; q2; q3 ] -> (q1, q2, q3)
  | _ -> assert false

let iqr xs =
  let q1, _, q3 = quartiles xs in
  q3 -. q1

type tail = {
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  p9999 : float;
  max : float;
}

let tail_of xs =
  let ys = sorted_copy xs in
  let q = quantile_sorted ys in
  {
    p50 = q 0.5;
    p90 = q 0.9;
    p99 = q 0.99;
    p999 = q 0.999;
    p9999 = q 0.9999;
    max = ys.(Array.length ys - 1);
  }

let pp_tail fmt t =
  Format.fprintf fmt "p50=%.4g p90=%.4g p99=%.4g p99.9=%.4g p99.99=%.4g max=%.4g"
    t.p50 t.p90 t.p99 t.p999 t.p9999 t.max
