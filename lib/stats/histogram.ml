type t = {
  lo : float;
  hi : float;
  per_decade : int;
  counts : int array; (* counts.(0) = underflow, counts.(n+1) = overflow *)
  mutable total : int;
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

let nbins lo hi per_decade =
  int_of_float (ceil (log10 (hi /. lo) *. float_of_int per_decade))

let create ?(buckets_per_decade = 20) ~lo ~hi () =
  if lo <= 0.0 || hi <= lo then invalid_arg "Histogram.create: need 0 < lo < hi";
  if buckets_per_decade <= 0 then invalid_arg "Histogram.create: buckets_per_decade";
  let n = max 1 (nbins lo hi buckets_per_decade) in
  {
    lo;
    hi;
    per_decade = buckets_per_decade;
    counts = Array.make (n + 2) 0;
    total = 0;
    sum = 0.0;
    min_seen = infinity;
    max_seen = neg_infinity;
  }

let inner_bins t = Array.length t.counts - 2

let index t x =
  if x < t.lo then 0
  else if x >= t.hi then inner_bins t + 1
  else begin
    let i = int_of_float (log10 (x /. t.lo) *. float_of_int t.per_decade) in
    1 + min i (inner_bins t - 1)
  end

let bounds t i =
  (* Bounds of inner bin [i] (1-based index into counts).  The bin count
     is ceil(log10(hi/lo) * per_decade), so the top inner bin's nominal
     upper edge can overshoot [hi]; clamp it so quantile interpolation
     stays within the configured range. *)
  let step j = t.lo *. (10.0 ** (float_of_int j /. float_of_int t.per_decade)) in
  let upper = if i = inner_bins t then t.hi else step i in
  (step (i - 1), upper)

let add t x =
  t.counts.(index t x) <- t.counts.(index t x) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. x;
  if x < t.min_seen then t.min_seen <- x;
  if x > t.max_seen then t.max_seen <- x

let count t = t.total

let quantile t q =
  if t.total = 0 then invalid_arg "Histogram.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0,1]";
  let target = int_of_float (ceil (q *. float_of_int t.total)) in
  let target = max target 1 in
  let rec find i acc =
    if i >= Array.length t.counts then t.max_seen
    else begin
      let acc = acc + t.counts.(i) in
      if acc >= target then
        if i = 0 then t.min_seen
        else if i = inner_bins t + 1 then t.max_seen
        else begin
          let lo, hi = bounds t i in
          sqrt (lo *. hi)
        end
      else find (i + 1) acc
    end
  in
  find 0 0

let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let max_seen t = t.max_seen

let min_seen t = t.min_seen

let merge a b =
  if a.lo <> b.lo || a.hi <> b.hi || a.per_decade <> b.per_decade then
    invalid_arg "Histogram.merge: layouts differ";
  let c = create ~buckets_per_decade:a.per_decade ~lo:a.lo ~hi:a.hi () in
  Array.iteri (fun i n -> c.counts.(i) <- n + b.counts.(i)) a.counts;
  c.total <- a.total + b.total;
  c.sum <- a.sum +. b.sum;
  c.min_seen <- min a.min_seen b.min_seen;
  c.max_seen <- max a.max_seen b.max_seen;
  c

let bins t =
  let acc = ref [] in
  for i = inner_bins t downto 1 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bounds t i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc
