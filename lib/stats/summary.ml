type t = {
  n : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
  sum : float;
}

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty sample";
  Array.iter
    (fun x ->
      if Float.is_nan x then invalid_arg "Summary.of_array: NaN in sample")
    xs;
  let sum = Array.fold_left ( +. ) 0.0 xs in
  let mean = sum /. float_of_int n in
  let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs in
  let variance = if n < 2 then 0.0 else sq /. float_of_int (n - 1) in
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  { n; mean; variance; stddev = sqrt variance; min = mn; max = mx; sum }

let of_list xs = of_array (Array.of_list xs)

let of_ints xs = of_array (Array.map float_of_int xs)

let cv t = if t.mean = 0.0 then 0.0 else t.stddev /. t.mean

let spread t = if t.min = 0.0 then infinity else t.max /. t.min

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n t.mean
    t.stddev t.min t.max
