type cell = {
  workload : Runner.workload_kind;
  policy : Policy.Registry.spec;
  ratio : float;
  swap : Runner.swap_medium;
  outcomes : Runner.trial_outcome list;
  results : Machine.result list;  (** the [Done] outcomes, in trial order *)
  failed : int;
  perf : float;
  mean_faults : float;
}

(* The figure-1 performance metric: total runtime for the batch
   workloads, mean request latency for YCSB (paper Fig. 1 caption). *)
let perf_of workload results =
  match workload with
  | Runner.Tpch | Runner.Pagerank -> Runner.mean_runtime_s results
  | Runner.Ycsb _ | Runner.Fleet _ ->
    let reads = Runner.pooled_read_latencies results in
    let writes = Runner.pooled_write_latencies results in
    let n = Array.length reads + Array.length writes in
    if n = 0 then 0.0
    else
      (Array.fold_left ( +. ) 0.0 reads +. Array.fold_left ( +. ) 0.0 writes)
      /. float_of_int n

(* A cell with any failed trial carries NaN aggregates: arithmetic on
   them stays NaN, and the formatters render NaN as "failed", so a
   failure anywhere in a comparison poisons exactly the derived numbers
   it would have skewed — never a silently partial mean. *)
let cell ctx ~workload ~policy ~ratio ~swap =
  let outcomes = Runner.try_cell ctx ~workload ~policy ~ratio ~swap in
  let results =
    List.filter_map
      (function Runner.Done r -> Some r | Runner.Failed _ -> None)
      outcomes
  in
  let failed = List.length outcomes - List.length results in
  {
    workload;
    policy;
    ratio;
    swap;
    outcomes;
    results;
    failed;
    perf = (if failed > 0 then Float.nan else perf_of workload results);
    mean_faults =
      (if failed > 0 then Float.nan else Runner.mean_faults results);
  }

let cell_mean_runtime c =
  if c.failed > 0 then Float.nan else Runner.mean_runtime_s c.results

(* Full table row for a cell whose statistics cannot be computed. *)
let failed_row label ncols =
  label :: List.init ncols (fun _ -> Report.failed_marker)

let wname = Runner.workload_kind_name

let pname = Policy.Registry.name

let variants = Policy.Registry.[ Mglru_default; Gen14; Scan_all; Scan_none; Scan_rand 0.5 ]

let all_specs = Policy.Registry.all_paper_specs

let ratio_default = 0.5

let clock_vs_mglru = Policy.Registry.[ Clock; Mglru_default ]

let batch_workloads = [ Runner.Tpch; Runner.Pagerank ]

let ycsb_workloads =
  List.map (fun v -> Runner.Ycsb v) Workload.Ycsb.[ A; B; C ]

(* ------------------------------------------------------------------ *)
(* Grid enumeration: which cells a figure touches.  [run] prefetches   *)
(* them through the domain pool before the serial printing pass, so a  *)
(* parallel run computes exactly the cells a serial run would, then    *)
(* prints from the cache.                                              *)
(* ------------------------------------------------------------------ *)

let cross workloads policies ratios swaps =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun policy ->
          List.concat_map
            (fun ratio -> List.map (fun swap -> (workload, policy, ratio, swap)) swaps)
            ratios)
        policies)
    workloads

let cells_of_figure = function
  | 1 -> cross Runner.all_workloads clock_vs_mglru [ ratio_default ] [ Runner.Ssd ]
  | 2 -> cross batch_workloads clock_vs_mglru [ ratio_default ] [ Runner.Ssd ]
  | 3 -> cross ycsb_workloads clock_vs_mglru [ ratio_default ] [ Runner.Ssd ]
  | 4 -> cross Runner.all_workloads variants [ ratio_default ] [ Runner.Ssd ]
  | 5 -> cross batch_workloads variants [ ratio_default ] [ Runner.Ssd ]
  | 6 -> cross Runner.all_workloads all_specs [ 0.75; 0.9 ] [ Runner.Ssd ]
  | 7 -> cross batch_workloads all_specs [ 0.5; 0.75; 0.9 ] [ Runner.Ssd ]
  | 8 -> cross ycsb_workloads clock_vs_mglru [ 0.75; 0.9 ] [ Runner.Ssd ]
  | 9 | 10 -> cross Runner.all_workloads all_specs [ ratio_default ] [ Runner.Zram ]
  | 11 ->
    cross Runner.all_workloads
      [ Policy.Registry.Mglru_default ]
      [ ratio_default ]
      [ Runner.Ssd; Runner.Zram ]
  | 12 -> cross ycsb_workloads clock_vs_mglru [ ratio_default ] [ Runner.Zram ]
  | n -> invalid_arg (Printf.sprintf "Figures.cells_of_figure: no figure %d" n)

let prefetch ctx figures =
  Runner.prefetch ctx
    (List.concat_map
       (fun n ->
         List.concat_map
           (fun (workload, policy, ratio, swap) ->
             Runner.cell_exps ctx ~workload ~policy ~ratio ~swap)
           (cells_of_figure n))
       figures)

(* ------------------------------------------------------------------ *)

let fig1 ctx =
  Report.section "Figure 1: MG-LRU vs Clock, SSD swap, 50% capacity-footprint";
  Report.note "Mean performance and faults normalized to Clock-LRU (lower is better).";
  let rows, data =
    List.fold_left
      (fun (rows, data) workload ->
        let clock = cell ctx ~workload ~policy:Policy.Registry.Clock ~ratio:ratio_default ~swap:Runner.Ssd in
        let mglru =
          cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio:ratio_default ~swap:Runner.Ssd
        in
        let p = mglru.perf /. Float.max 1e-9 clock.perf in
        let f = mglru.mean_faults /. Float.max 1e-9 clock.mean_faults in
        let base =
          if clock.failed > 0 then Report.failed_marker else "1.00x"
        in
        ( rows
          @ [
              [ wname workload; base; Report.fnorm p; base; Report.fnorm f ];
            ],
          data @ [ (wname workload, p, f) ] ))
      ([], []) Runner.all_workloads
  in
  Report.table
    ~header:[ "workload"; "clock perf"; "mglru perf"; "clock faults"; "mglru faults" ]
    rows;
  Report.note
    "Paper shape: MG-LRU matches or outperforms Clock on every workload here,";
  Report.note "via a reduction in swapping (fewer faults).";
  data

(* ------------------------------------------------------------------ *)

let joint_summary c =
  let rt = Runner.runtimes_s c.results in
  let fl = Runner.faults c.results in
  let srt = Stats.Summary.of_array rt in
  let sfl = Stats.Summary.of_array fl in
  let fit = Stats.Regression.fit ~x:fl ~y:rt in
  (srt, sfl, fit)

let joint_rows cells =
  List.map
    (fun c ->
      if c.failed > 0 then failed_row (pname c.policy) 7
      else begin
        let srt, sfl, fit = joint_summary c in
        [
          pname c.policy;
          Report.fsec srt.Stats.Summary.mean;
          Report.fsec srt.Stats.Summary.min;
          Report.fsec srt.Stats.Summary.max;
          Report.fnorm (Stats.Summary.spread srt);
          Report.fcount sfl.Stats.Summary.mean;
          Report.f3 (Stats.Summary.cv sfl);
          Report.f3 fit.Stats.Regression.r2;
        ]
      end)
    cells

let joint_header =
  [ "policy"; "mean rt"; "min rt"; "max rt"; "spread"; "mean faults"; "fault CV"; "r2(rt~faults)" ]

let fig2 ctx =
  Report.section "Figure 2: joint runtime/fault distributions (SSD, 50%)";
  List.iter
    (fun workload ->
      Report.subsection (wname workload);
      let cells =
        List.map
          (fun policy -> cell ctx ~workload ~policy ~ratio:ratio_default ~swap:Runner.Ssd)
          clock_vs_mglru
      in
      Report.table ~header:joint_header (joint_rows cells))
    batch_workloads;
  Report.note "Paper shape: TPC-H runtime is a nearly perfect linear function of its";
  Report.note "fault count (r2 > 0.98) with a ~3x fastest-to-slowest spread; PageRank";
  Report.note "runtime decorrelates from faults, and MG-LRU adds variance that Clock";
  Report.note "does not show."

(* ------------------------------------------------------------------ *)

let tail_rows label lat =
  if Array.length lat = 0 then [ [ label; "-"; "-"; "-"; "-"; "-"; "-" ] ]
  else begin
    let t = Stats.Percentile.tail_of lat in
    [
      [
        label;
        Report.fns t.Stats.Percentile.p50;
        Report.fns t.Stats.Percentile.p90;
        Report.fns t.Stats.Percentile.p99;
        Report.fns t.Stats.Percentile.p999;
        Report.fns t.Stats.Percentile.p9999;
        Report.fns t.Stats.Percentile.max;
      ];
    ]
  end

let tail_header = [ "policy/op"; "p50"; "p90"; "p99"; "p99.9"; "p99.99"; "max" ]

let tail_figure ctx ~swap ~ratio =
  List.iter
    (fun variant ->
      let workload = Runner.Ycsb variant in
      Report.subsection (wname workload);
      let rows =
        List.concat_map
          (fun policy ->
            let c = cell ctx ~workload ~policy ~ratio ~swap in
            if c.failed > 0 then
              [
                failed_row (pname policy ^ " read") 6;
                failed_row (pname policy ^ " write") 6;
              ]
            else begin
              let reads = Runner.pooled_read_latencies c.results in
              let writes = Runner.pooled_write_latencies c.results in
              tail_rows (pname policy ^ " read") reads
              @ tail_rows (pname policy ^ " write") writes
            end)
          clock_vs_mglru
      in
      Report.table ~header:tail_header rows)
    Workload.Ycsb.[ A; B; C ]

let fig3 ctx =
  Report.section "Figure 3: YCSB tail latencies (SSD, 50%)";
  tail_figure ctx ~swap:Runner.Ssd ~ratio:ratio_default;
  Report.note "Paper shape: MG-LRU trades higher read tails (20-40% at p99.99) for";
  Report.note "lower write tails (Clock 10-50% higher past p99)."

(* ------------------------------------------------------------------ *)

let fig4 ctx =
  Report.section "Figure 4: MG-LRU parameter variants (SSD, 50%)";
  Report.note "Mean performance and faults normalized to default MG-LRU.";
  let data = ref [] in
  List.iter
    (fun workload ->
      let base =
        cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio:ratio_default
          ~swap:Runner.Ssd
      in
      let rows =
        List.map
          (fun policy ->
            let c = cell ctx ~workload ~policy ~ratio:ratio_default ~swap:Runner.Ssd in
            let p = c.perf /. Float.max 1e-9 base.perf in
            let f = c.mean_faults /. Float.max 1e-9 base.mean_faults in
            data := (wname workload, pname policy, p, f) :: !data;
            [ pname policy; Report.fnorm p; Report.fnorm f ])
          variants
      in
      Report.subsection (wname workload);
      Report.table ~header:[ "variant"; "perf"; "faults" ] rows)
    Runner.all_workloads;
  Report.note "Paper shape: on TPC-H, Scan-None improves on default MG-LRU by >20%";
  Report.note "while Scan-All degrades it by >60%; the ordering roughly inverts on";
  Report.note "PageRank; all variants tie on YCSB's zipfian traffic.";
  List.rev !data

let fig5 ctx =
  Report.section "Figure 5: variant joint runtime/fault distributions (SSD, 50%)";
  List.iter
    (fun workload ->
      Report.subsection (wname workload);
      let cells =
        List.map
          (fun policy -> cell ctx ~workload ~policy ~ratio:ratio_default ~swap:Runner.Ssd)
          variants
      in
      Report.table ~header:joint_header (joint_rows cells))
    batch_workloads;
  Report.note "Paper shape: TPC-H keeps its linear faults->runtime relation for every";
  Report.note "variant, with Scan-All on a steeper slope (straggler threads); PageRank";
  Report.note "stays decorrelated."

(* ------------------------------------------------------------------ *)

let fig6 ctx =
  Report.section "Figure 6: mean performance at 75% and 90% capacity (SSD)";
  Report.note "Normalized to default MG-LRU at the same ratio; Welch p-value vs MG-LRU.";
  List.iter
    (fun ratio ->
      Report.subsection (Printf.sprintf "capacity-footprint ratio %.0f%%" (ratio *. 100.0));
      let header = "workload" :: List.map pname all_specs @ [ "p(clock=mglru)" ] in
      let rows =
        List.map
          (fun workload ->
            let base = cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio ~swap:Runner.Ssd in
            let per_spec =
              List.map
                (fun policy ->
                  let c = cell ctx ~workload ~policy ~ratio ~swap:Runner.Ssd in
                  Report.fnorm (c.perf /. Float.max 1e-9 base.perf))
                all_specs
            in
            let p_value =
              match workload with
              | Runner.Tpch | Runner.Pagerank ->
                let clock = cell ctx ~workload ~policy:Policy.Registry.Clock ~ratio ~swap:Runner.Ssd in
                if clock.failed > 0 || base.failed > 0 then
                  Report.failed_marker
                else begin
                  let a = Runner.runtimes_s clock.results in
                  let b = Runner.runtimes_s base.results in
                  if Array.length a > 1 && Array.length b > 1 then
                    Report.f3 (Stats.Ttest.welch a b).Stats.Ttest.p_value
                  else "-"
                end
              | Runner.Ycsb _ | Runner.Fleet _ -> "-"
            in
            (wname workload :: per_spec) @ [ p_value ])
          Runner.all_workloads
      in
      Report.table ~header rows)
    [ 0.75; 0.9 ];
  Report.note "Paper shape: every policy lands within a few percent; Clock beats";
  Report.note "MG-LRU by a small (2-5%) but statistically significant margin in some";
  Report.note "cells, inverting the 50% result."

let fig7 ctx =
  Report.section "Figure 7: fault distributions across capacities (SSD)";
  Report.note "Quartiles/min/max of per-trial fault counts, normalized to the mean of";
  Report.note "default MG-LRU at the same ratio.";
  List.iter
    (fun ratio ->
      Report.subsection (Printf.sprintf "ratio %.0f%%" (ratio *. 100.0));
      List.iter
        (fun workload ->
          let base = cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio ~swap:Runner.Ssd in
          let norm = Float.max 1e-9 base.mean_faults in
          let rows =
            List.map
              (fun policy ->
                let c = cell ctx ~workload ~policy ~ratio ~swap:Runner.Ssd in
                if base.failed > 0 || c.failed > 0 then
                  failed_row (pname policy) 5
                else begin
                  let fl = Array.map (fun x -> x /. norm) (Runner.faults c.results) in
                  let q1, q2, q3 = Stats.Percentile.quartiles fl in
                  let s = Stats.Summary.of_array fl in
                  [
                    pname policy;
                    Report.f2 s.Stats.Summary.min;
                    Report.f2 q1;
                    Report.f2 q2;
                    Report.f2 q3;
                    Report.f2 s.Stats.Summary.max;
                  ]
                end)
              all_specs
          in
          Report.subsection (wname workload);
          Report.table ~header:[ "policy"; "min"; "q1"; "median"; "q3"; "max" ] rows)
        batch_workloads)
    [ 0.5; 0.75; 0.9 ];
  Report.note "Paper shape: at 75% PageRank shows rare outlier executions with up to";
  Report.note "~6x the mean fault count under every MG-LRU configuration, while the";
  Report.note "interquartile range stays tight; Clock's distribution stays narrow."

let fig8 ctx =
  Report.section "Figure 8: YCSB tail latencies at 75% and 90% capacity (SSD)";
  List.iter
    (fun ratio ->
      Report.subsection (Printf.sprintf "ratio %.0f%%" (ratio *. 100.0));
      tail_figure ctx ~swap:Runner.Ssd ~ratio)
    [ 0.75; 0.9 ];
  Report.note "Paper shape: Clock keeps lower read tails; write-tail comparisons become";
  Report.note "workload-dependent as capacity grows and read tails converge."

(* ------------------------------------------------------------------ *)

let zram_norm_figure ctx ~metric ~metric_name =
  Report.note (Printf.sprintf "%s normalized to default MG-LRU (ZRAM, 50%%)." metric_name);
  let data = ref [] in
  let header = "workload" :: List.map pname all_specs in
  let rows =
    List.map
      (fun workload ->
        let base =
          cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio:ratio_default
            ~swap:Runner.Zram
        in
        let cols =
          List.map
            (fun policy ->
              let c = cell ctx ~workload ~policy ~ratio:ratio_default ~swap:Runner.Zram in
              let v = metric c /. Float.max 1e-9 (metric base) in
              data := (wname workload, pname policy, v) :: !data;
              Report.fnorm v)
            all_specs
        in
        wname workload :: cols)
      Runner.all_workloads
  in
  Report.table ~header rows;
  List.rev !data

let fig9 ctx =
  Report.section "Figure 9: mean performance with ZRAM swap (50%)";
  let data = zram_norm_figure ctx ~metric:(fun c -> c.perf) ~metric_name:"Performance" in
  Report.note "Paper shape: Clock matches MG-LRU on every workload except PageRank.";
  data

let fig10 ctx =
  Report.section "Figure 10: mean faults with ZRAM swap (50%)";
  let data = zram_norm_figure ctx ~metric:(fun c -> c.mean_faults) ~metric_name:"Faults" in
  Report.note "Paper shape: fault counts track the runtime result - Clock faults as";
  Report.note "much as MG-LRU everywhere but PageRank.";
  data

let fig11 ctx =
  Report.section "Figure 11: ZRAM vs SSD - change in runtime and faults (MG-LRU, 50%)";
  let data = ref [] in
  let rows =
    List.map
      (fun workload ->
        let ssd =
          cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio:ratio_default
            ~swap:Runner.Ssd
        in
        let zr =
          cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio:ratio_default
            ~swap:Runner.Zram
        in
        let rt =
          cell_mean_runtime zr /. Float.max 1e-9 (cell_mean_runtime ssd)
        in
        let fl = zr.mean_faults /. Float.max 1e-9 ssd.mean_faults in
        data := (wname workload, rt, fl) :: !data;
        [ wname workload; Report.fnorm rt; Report.fnorm fl ])
      Runner.all_workloads
  in
  Report.table ~header:[ "workload"; "runtime zram/ssd"; "faults zram/ssd" ] rows;
  Report.note "Paper shape: regular-access workloads run several times faster on ZRAM";
  Report.note "yet fault substantially more (PageRank ~5x faster, ~3x the faults);";
  Report.note "YCSB fault counts stay roughly flat.";
  List.rev !data

let fig12 ctx =
  Report.section "Figure 12: YCSB tail latencies with ZRAM swap (50%)";
  tail_figure ctx ~swap:Runner.Zram ~ratio:ratio_default;
  Report.note "Paper shape: MG-LRU's p99.99 tails inflate 2-5x over Clock for both";
  Report.note "reads and writes - Clock strictly wins the tail in this configuration."

(* ------------------------------------------------------------------ *)

let run ctx n =
  if n < 1 || n > 12 then
    invalid_arg (Printf.sprintf "Figures.run: no figure %d" n);
  prefetch ctx [ n ];
  match n with
  | 1 -> ignore (fig1 ctx)
  | 2 -> fig2 ctx
  | 3 -> fig3 ctx
  | 4 -> ignore (fig4 ctx)
  | 5 -> fig5 ctx
  | 6 -> fig6 ctx
  | 7 -> fig7 ctx
  | 8 -> fig8 ctx
  | 9 -> ignore (fig9 ctx)
  | 10 -> ignore (fig10 ctx)
  | 11 -> ignore (fig11 ctx)
  | 12 -> fig12 ctx
  | _ -> assert false

let all_figures = List.init 12 (fun i -> i + 1)

let run_all ctx =
  (* One bulk prefetch across the union of every figure's grid keeps the
     domain pool saturated instead of draining at each figure boundary
     (prefetch deduplicates shared cells). *)
  prefetch ctx all_figures;
  List.iter (run ctx) all_figures
