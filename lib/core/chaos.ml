(* Deterministic chaos scheduler: parsing, validation and compilation of
   `--chaos SPEC` runtime-transient schedules.

   A spec is a `;`-separated list of injector segments, each in the
   `--cgroups` style `class:key=value,key=value`:

     hotplug:at=T,shrink=A[,restore=T]   offline A frames at T (migrate
                                         or reclaim their contents),
                                         re-online them at restore
     degrade:at=T,for=D[,latency=Nx][,errors=P][,wear=P]
                                         swap-device latency ramp /
                                         transient error window /
                                         permanent wear window
     churn:at=T,cg=NAME[,low=A][,high=A][,max=A]
                                         rewrite memory.{low,high,max}
     burst:at=T,for=D[,threads=RANGES]   stall those threads over [T,T+D)
     corrupt:at=T                        test-only: clear one mapped
                                         frame's owner (a deliberate
                                         invariant violation for the
                                         fuzzer's detection path)

   Times are ns with us/ms/s suffixes; amounts are pages or `%` of
   capacity, as in `--cgroups`.  Parse errors carry `1:COL:` positions
   (specs are single-line).  Everything here is pure data: the machine
   applies compiled actions at their virtual times, so a given (seed,
   config, spec) replays identically at any `--jobs`. *)

type amount =
  | Pages of int
  | Frac of float

type hotplug = {
  h_at : int;
  h_shrink : amount;
  h_restore : int option;
}

type degrade = {
  d_at : int;
  d_for : int;
  d_latency : float;  (* service-time multiplier, >= 1 *)
  d_errors : float;   (* transient error probability *)
  d_wear : float;     (* permanent error probability *)
}

type churn = {
  c_at : int;
  c_cg : string;
  c_low : amount option;
  c_high : amount option;
  c_max : amount option;
}

type burst = {
  b_at : int;
  b_for : int;
  b_threads : (int * int) list;  (* inclusive tid ranges; [] = all *)
}

type injector =
  | Hotplug of hotplug
  | Degrade of degrade
  | Churn of churn
  | Burst of burst
  | Corrupt of { x_at : int }

type spec = { injectors : injector list }

(* ------------------------------------------------------------------ *)
(* Parsing (column-tracked: specs are one line, so errors are 1:COL)   *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

(* [col] is a 0-based offset into the original spec string; error
   positions are printed 1-based. *)
let err col msg = Error (Printf.sprintf "1:%d: %s" (col + 1) msg)

(* ';'-separated (start, text) chunks, 0-based starts, empties kept so
   columns stay exact. *)
let chunks sep s =
  let n = String.length s in
  let out = ref [] in
  let start = ref 0 in
  for i = 0 to n do
    if i = n || s.[i] = sep then begin
      out := (!start, String.sub s !start (i - !start)) :: !out;
      start := i + 1
    end
  done;
  List.rev !out

(* Strip surrounding blanks, keeping the start column honest. *)
let trimmed (col, s) =
  let n = String.length s in
  let b = ref 0 in
  while !b < n && s.[!b] = ' ' do incr b done;
  let e = ref n in
  while !e > !b && s.[!e - 1] = ' ' do decr e done;
  (col + !b, String.sub s !b (!e - !b))

let name_ok s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       s

(* Times: plain ns or us/ms/s suffixes, as in --cgroups durations, but
   negatives are named explicitly (the fuzzer's shrinker and the
   property tests rely on the message). *)
let parse_time ~what ~zero_ok col s =
  if s <> "" && s.[0] = '-' then
    err col (Printf.sprintf "%s: negative time %S" what s)
  else
    let scaled suffix mult =
      let n = String.length s and m = String.length suffix in
      if n > m && String.sub s (n - m) m = suffix then
        match float_of_string_opt (String.sub s 0 (n - m)) with
        | Some f when f >= 0.0 -> Some (int_of_float (f *. mult))
        | _ -> None
      else None
    in
    let v =
      match scaled "us" 1e3 with
      | Some v -> Some v
      | None ->
        (match scaled "ms" 1e6 with
         | Some v -> Some v
         | None ->
           (match scaled "s" 1e9 with
            | Some v -> Some v
            | None ->
              (match int_of_string_opt s with
               | Some v when v >= 0 -> Some v
               | _ -> None)))
    in
    (match v with
     | Some v when v > 0 || zero_ok -> Ok v
     | Some _ -> err col (Printf.sprintf "%s: must be positive" what)
     | None -> err col (Printf.sprintf "%s: bad time %S" what s))

let parse_amount ~what col s =
  let n = String.length s in
  if n = 0 then err col (Printf.sprintf "%s: empty amount" what)
  else if s.[0] = '-' then
    err col (Printf.sprintf "%s: negative amount %S" what s)
  else if s.[n - 1] = '%' then
    match float_of_string_opt (String.sub s 0 (n - 1)) with
    | Some f when f >= 0.0 -> Ok (Frac (f /. 100.0))
    | _ -> err col (Printf.sprintf "%s: bad percentage %S" what s)
  else
    match int_of_string_opt s with
    | Some p when p >= 0 -> Ok (Pages p)
    | _ -> err col (Printf.sprintf "%s: bad page count %S" what s)

let parse_prob ~what col s =
  match float_of_string_opt s with
  | Some f when f >= 0.0 && f <= 1.0 -> Ok f
  | _ -> err col (Printf.sprintf "%s: bad probability %S (want 0..1)" what s)

(* Latency multipliers read like "8x". *)
let parse_mult col s =
  let n = String.length s in
  if n >= 2 && s.[n - 1] = 'x' then
    match float_of_string_opt (String.sub s 0 (n - 1)) with
    | Some f when f >= 1.0 -> Ok f
    | _ -> err col (Printf.sprintf "latency: bad multiplier %S (want >=1x)" s)
  else err col (Printf.sprintf "latency: bad multiplier %S (want e.g. 8x)" s)

let parse_threads col s =
  let parse_range (rcol, r) =
    match String.index_opt r '-' with
    | None ->
      (match int_of_string_opt r with
       | Some t when t >= 0 -> Ok (t, t)
       | _ -> err rcol (Printf.sprintf "threads: bad thread id %S" r))
    | Some i ->
      let lo = String.sub r 0 i
      and hi = String.sub r (i + 1) (String.length r - i - 1) in
      (match (int_of_string_opt lo, int_of_string_opt hi) with
       | Some lo, Some hi when 0 <= lo && lo <= hi -> Ok (lo, hi)
       | _ -> err rcol (Printf.sprintf "threads: bad thread range %S" r))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | r :: rest ->
      let* rg = parse_range (trimmed r) in
      go (rg :: acc) rest
  in
  match List.filter (fun (_, r) -> String.trim r <> "") (chunks '+' s) with
  | [] -> err col "threads: empty thread list"
  | rs ->
    (* Re-base range columns onto the whole-spec coordinate system. *)
    go [] (List.map (fun (c, r) -> (col + c, r)) rs)

(* key=value fields of one segment body, with value columns. *)
let parse_fields col body =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest ->
      let fcol, f = trimmed f in
      if f = "" then go acc rest
      else
        (match String.index_opt f '=' with
         | None -> err fcol (Printf.sprintf "field %S is not key=value" f)
         | Some i ->
           let k = String.sub f 0 i
           and v = String.sub f (i + 1) (String.length f - i - 1) in
           if k = "" || v = "" then
             err fcol (Printf.sprintf "field %S is not key=value" f)
           else go ((k, (fcol + i + 1, v)) :: acc) rest)
  in
  go [] (List.map (fun (c, f) -> (col + c, f)) (chunks ',' body))

let field fields k = List.assoc_opt k fields

let reject_unknown ~cls ~known col fields =
  let rec go = function
    | [] -> Ok ()
    | (k, _) :: rest ->
      if List.mem k known then go rest
      else err col (Printf.sprintf "%s: unknown key %S" cls k)
  in
  go fields

let require ~cls col fields k =
  match field fields k with
  | Some v -> Ok v
  | None -> err col (Printf.sprintf "%s: missing %s=" cls k)

let parse_segment (scol, seg) =
  let name, body_col, body =
    match String.index_opt seg ':' with
    | None -> (seg, scol + String.length seg, "")
    | Some i ->
      (String.sub seg 0 i, scol + i + 1,
       String.sub seg (i + 1) (String.length seg - i - 1))
  in
  let cls = String.trim name in
  let* fields = parse_fields body_col body in
  match cls with
  | "hotplug" ->
    let* () =
      reject_unknown ~cls ~known:[ "at"; "shrink"; "restore" ] scol fields
    in
    let* acol, av = require ~cls scol fields "at" in
    let* at = parse_time ~what:"at" ~zero_ok:true acol av in
    let* kcol, kv = require ~cls scol fields "shrink" in
    let* shrink = parse_amount ~what:"shrink" kcol kv in
    let* () =
      match shrink with
      | Pages 0 | Frac 0.0 -> err kcol "shrink: must offline at least one frame"
      | Frac f when f >= 1.0 ->
        err kcol "shrink: cannot offline all of memory (want < 100%)"
      | _ -> Ok ()
    in
    let* restore =
      match field fields "restore" with
      | None -> Ok None
      | Some (rcol, rv) ->
        let* r = parse_time ~what:"restore" ~zero_ok:false rcol rv in
        if r <= at then err rcol "restore: must be after at="
        else Ok (Some r)
    in
    Ok (Hotplug { h_at = at; h_shrink = shrink; h_restore = restore })
  | "degrade" ->
    let* () =
      reject_unknown ~cls
        ~known:[ "at"; "for"; "latency"; "errors"; "wear" ]
        scol fields
    in
    let* acol, av = require ~cls scol fields "at" in
    let* at = parse_time ~what:"at" ~zero_ok:true acol av in
    let* fcol, fv = require ~cls scol fields "for" in
    let* dur = parse_time ~what:"for" ~zero_ok:false fcol fv in
    let* latency =
      match field fields "latency" with
      | None -> Ok 1.0
      | Some (lcol, lv) -> parse_mult lcol lv
    in
    let* errors =
      match field fields "errors" with
      | None -> Ok 0.0
      | Some (ecol, ev) -> parse_prob ~what:"errors" ecol ev
    in
    let* wear =
      match field fields "wear" with
      | None -> Ok 0.0
      | Some (wcol, wv) -> parse_prob ~what:"wear" wcol wv
    in
    if latency = 1.0 && errors = 0.0 && wear = 0.0 then
      err scol "degrade: needs at least one of latency=, errors=, wear="
    else
      Ok
        (Degrade
           { d_at = at; d_for = dur; d_latency = latency; d_errors = errors;
             d_wear = wear })
  | "churn" ->
    let* () =
      reject_unknown ~cls ~known:[ "at"; "cg"; "low"; "high"; "max" ] scol
        fields
    in
    let* acol, av = require ~cls scol fields "at" in
    let* at = parse_time ~what:"at" ~zero_ok:true acol av in
    let* ccol, cv = require ~cls scol fields "cg" in
    let* () =
      if name_ok cv then Ok ()
      else err ccol (Printf.sprintf "cg: bad cgroup name %S" cv)
    in
    let opt_amount k =
      match field fields k with
      | None -> Ok None
      | Some (vcol, vv) ->
        let* a = parse_amount ~what:k vcol vv in
        Ok (Some a)
    in
    let* low = opt_amount "low" in
    let* high = opt_amount "high" in
    let* max_ = opt_amount "max" in
    if low = None && high = None && max_ = None then
      err scol "churn: needs at least one of low=, high=, max="
    else
      Ok (Churn { c_at = at; c_cg = cv; c_low = low; c_high = high; c_max = max_ })
  | "burst" ->
    let* () = reject_unknown ~cls ~known:[ "at"; "for"; "threads" ] scol fields in
    let* acol, av = require ~cls scol fields "at" in
    let* at = parse_time ~what:"at" ~zero_ok:true acol av in
    let* fcol, fv = require ~cls scol fields "for" in
    let* dur = parse_time ~what:"for" ~zero_ok:false fcol fv in
    let* threads =
      match field fields "threads" with
      | None -> Ok []
      | Some (tcol, tv) -> parse_threads tcol tv
    in
    Ok (Burst { b_at = at; b_for = dur; b_threads = threads })
  | "corrupt" ->
    let* () = reject_unknown ~cls ~known:[ "at" ] scol fields in
    let* acol, av = require ~cls scol fields "at" in
    let* at = parse_time ~what:"at" ~zero_ok:true acol av in
    Ok (Corrupt { x_at = at })
  | _ -> err scol (Printf.sprintf "unknown injector %S" cls)

(* Schedule sanity: same-class windows must not overlap (a hotplug
   without restore= runs to the end of time; bursts only clash when
   their thread sets can intersect; two churns of the same cgroup at the
   same instant would be order-dependent). *)
let window = function
  | Hotplug h -> Some (h.h_at, (match h.h_restore with Some r -> r | None -> max_int))
  | Degrade d -> Some (d.d_at, d.d_at + d.d_for)
  | Burst b -> Some (b.b_at, b.b_at + b.b_for)
  | Churn _ | Corrupt _ -> None

let ranges_intersect a b =
  let one (alo, ahi) (blo, bhi) = alo <= bhi && blo <= ahi in
  match (a, b) with
  | [], _ | _, [] -> true (* [] = every thread *)
  | _ ->
    List.exists (fun ra -> List.exists (fun rb -> one ra rb) b) a

let validate tagged =
  let overlap (a0, a1) (b0, b1) = a0 < b1 && b0 < a1 in
  let rec go seen = function
    | [] -> Ok ()
    | (col, inj) :: rest ->
      let* () =
        let rec against = function
          | [] -> Ok ()
          | (_, prev) :: tl ->
            let clash =
              match (inj, prev) with
              | Hotplug _, Hotplug _ | Degrade _, Degrade _ ->
                (match (window inj, window prev) with
                 | Some w1, Some w2 -> overlap w1 w2
                 | _ -> false)
              | Burst b1, Burst b2 ->
                ranges_intersect b1.b_threads b2.b_threads
                && overlap (b1.b_at, b1.b_at + b1.b_for)
                     (b2.b_at, b2.b_at + b2.b_for)
              | Churn c1, Churn c2 -> c1.c_cg = c2.c_cg && c1.c_at = c2.c_at
              | _ -> false
            in
            if clash then
              let cls =
                match inj with
                | Hotplug _ -> "hotplug"
                | Degrade _ -> "degrade"
                | Burst _ -> "burst"
                | Churn _ -> "churn"
                | Corrupt _ -> "corrupt"
              in
              err col
                (match inj with
                 | Churn _ ->
                   Printf.sprintf
                     "churn: duplicate update of the same cgroup at the same time"
                 | _ ->
                   Printf.sprintf "%s: window overlaps an earlier %s window" cls
                     cls)
            else against tl
        in
        against seen
      in
      go ((col, inj) :: seen) rest
  in
  go [] tagged

let parse_spec s =
  let segs =
    List.filter (fun (_, t) -> t <> "") (List.map trimmed (chunks ';' s))
  in
  if segs = [] then err 0 "empty --chaos spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | seg :: rest ->
        let* inj = parse_segment seg in
        go ((fst seg, inj) :: acc) rest
    in
    let* tagged = go [] segs in
    let* () = validate tagged in
    Ok { injectors = List.map snd tagged }

(* ------------------------------------------------------------------ *)
(* Printing (canonical; parse (spec_to_string s) = Ok s)               *)
(* ------------------------------------------------------------------ *)

let time_to_string v =
  if v > 0 && v mod 1_000_000_000 = 0 then
    Printf.sprintf "%ds" (v / 1_000_000_000)
  else if v > 0 && v mod 1_000_000 = 0 then Printf.sprintf "%dms" (v / 1_000_000)
  else if v > 0 && v mod 1_000 = 0 then Printf.sprintf "%dus" (v / 1_000)
  else string_of_int v

let amount_to_string = function
  | Pages p -> string_of_int p
  | Frac f -> Printf.sprintf "%g%%" (f *. 100.0)

let injector_to_string = function
  | Hotplug h ->
    Printf.sprintf "hotplug:at=%s,shrink=%s%s" (time_to_string h.h_at)
      (amount_to_string h.h_shrink)
      (match h.h_restore with
       | None -> ""
       | Some r -> ",restore=" ^ time_to_string r)
  | Degrade d ->
    Printf.sprintf "degrade:at=%s,for=%s%s%s%s" (time_to_string d.d_at)
      (time_to_string d.d_for)
      (if d.d_latency <> 1.0 then Printf.sprintf ",latency=%gx" d.d_latency
       else "")
      (if d.d_errors <> 0.0 then Printf.sprintf ",errors=%g" d.d_errors else "")
      (if d.d_wear <> 0.0 then Printf.sprintf ",wear=%g" d.d_wear else "")
  | Churn c ->
    let opt k = function
      | None -> ""
      | Some a -> Printf.sprintf ",%s=%s" k (amount_to_string a)
    in
    Printf.sprintf "churn:at=%s,cg=%s%s%s%s" (time_to_string c.c_at) c.c_cg
      (opt "low" c.c_low) (opt "high" c.c_high) (opt "max" c.c_max)
  | Burst b ->
    Printf.sprintf "burst:at=%s,for=%s%s" (time_to_string b.b_at)
      (time_to_string b.b_for)
      (match b.b_threads with
       | [] -> ""
       | rs ->
         ",threads="
         ^ String.concat "+"
             (List.map
                (fun (lo, hi) ->
                  if lo = hi then string_of_int lo
                  else Printf.sprintf "%d-%d" lo hi)
                rs))
  | Corrupt { x_at } -> Printf.sprintf "corrupt:at=%s" (time_to_string x_at)

let spec_to_string spec =
  String.concat ";" (List.map injector_to_string spec.injectors)

(* ------------------------------------------------------------------ *)
(* Compilation to a virtual-time action schedule                       *)
(* ------------------------------------------------------------------ *)

type action =
  | Offline of int
  | Online of int
  | Degrade_set of { latency : float; errors : float; wear : float }
  | Degrade_clear
  | Set_limits of {
      cg : string;
      low : int option;
      high : int option;
      max_limit : int option;
    }
  | Stall of { lo : int; hi : int; until : int }
  | Corrupt_frame

let resolve capacity = function
  | Pages p -> p
  | Frac f -> int_of_float (f *. float_of_int capacity)

let has_degrade spec =
  List.exists (function Degrade _ -> true | _ -> false) spec.injectors

let has_churn spec =
  List.exists (function Churn _ -> true | _ -> false) spec.injectors

let churn_cgs spec =
  List.filter_map
    (function Churn c -> Some c.c_cg | _ -> None)
    spec.injectors

let events spec ~capacity ~nthreads =
  let evs =
    List.concat_map
      (function
        | Hotplug h ->
          (* Leave at least a low-watermark's worth of memory online. *)
          let want =
            max 1 (min (capacity - max 16 (capacity / 8)) (resolve capacity h.h_shrink))
          in
          (h.h_at, Offline want)
          :: (match h.h_restore with
              | None -> []
              | Some r -> [ (r, Online want) ])
        | Degrade d ->
          [
            ( d.d_at,
              Degrade_set
                { latency = d.d_latency; errors = d.d_errors; wear = d.d_wear }
            );
            (d.d_at + d.d_for, Degrade_clear);
          ]
        | Churn c ->
          let lim = Option.map (resolve capacity) in
          [
            ( c.c_at,
              Set_limits
                { cg = c.c_cg; low = lim c.c_low; high = lim c.c_high;
                  max_limit = lim c.c_max } );
          ]
        | Burst b ->
          let until = b.b_at + b.b_for in
          let ranges =
            match b.b_threads with
            | [] -> [ (0, max 0 (nthreads - 1)) ]
            | rs ->
              List.filter_map
                (fun (lo, hi) ->
                  if lo >= nthreads then None
                  else Some (lo, min hi (nthreads - 1)))
                rs
          in
          List.map (fun (lo, hi) -> (b.b_at, Stall { lo; hi; until })) ranges
        | Corrupt { x_at } -> [ (x_at, Corrupt_frame) ])
      spec.injectors
  in
  (* Stable: ties fire in segment order, like same-time sim events. *)
  List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2) evs

let action_injector = function
  | Offline _ | Online _ -> "hotplug"
  | Degrade_set _ | Degrade_clear -> "degrade"
  | Set_limits _ -> "churn"
  | Stall _ -> "burst"
  | Corrupt_frame -> "corrupt"

let action_label = function
  | Offline n -> Printf.sprintf "offline %d frames" n
  | Online n -> Printf.sprintf "online %d frames" n
  | Degrade_set { latency; errors; wear } ->
    Printf.sprintf "degrade latency=%gx errors=%g wear=%g" latency errors wear
  | Degrade_clear -> "degrade end"
  | Set_limits { cg; low; high; max_limit } ->
    let p k = function None -> "" | Some v -> Printf.sprintf " %s=%d" k v in
    Printf.sprintf "limits cg=%s%s%s%s" cg (p "low" low) (p "high" high)
      (p "max" max_limit)
  | Stall { lo; hi; until = _ } -> Printf.sprintf "stall threads %d-%d" lo hi
  | Corrupt_frame -> "corrupt frame owner"

(* ------------------------------------------------------------------ *)
(* Run summary (journaled; absent when chaos is off)                   *)
(* ------------------------------------------------------------------ *)

type summary = {
  mutable s_events : int;          (* actions applied *)
  mutable s_offlined : int;        (* frames taken offline *)
  mutable s_onlined : int;         (* frames brought back *)
  mutable s_migrated : int;        (* pages moved off offlining frames *)
  mutable s_evicted : int;         (* pages reclaimed off offlining frames *)
  mutable s_skipped : int;         (* unmovable frames left online *)
  mutable s_limit_updates : int;
  mutable s_device_phases : int;   (* degrade windows opened *)
  mutable s_stalled_threads : int;
  mutable s_corrupted : int;
}

let fresh_summary () =
  {
    s_events = 0;
    s_offlined = 0;
    s_onlined = 0;
    s_migrated = 0;
    s_evicted = 0;
    s_skipped = 0;
    s_limit_updates = 0;
    s_device_phases = 0;
    s_stalled_threads = 0;
    s_corrupted = 0;
  }

let summary_to_string s =
  Printf.sprintf "ev=%d,off=%d,on=%d,mig=%d,evi=%d,skip=%d,lim=%d,dev=%d,stall=%d,corr=%d"
    s.s_events s.s_offlined s.s_onlined s.s_migrated s.s_evicted s.s_skipped
    s.s_limit_updates s.s_device_phases s.s_stalled_threads s.s_corrupted

let summary_of_string str =
  let fields = String.split_on_char ',' str in
  let get k =
    List.find_map
      (fun f ->
        match String.index_opt f '=' with
        | Some i when String.sub f 0 i = k ->
          int_of_string_opt (String.sub f (i + 1) (String.length f - i - 1))
        | _ -> None)
      fields
  in
  match
    ( get "ev", get "off", get "on", get "mig", get "evi", get "skip",
      get "lim", get "dev", get "stall", get "corr" )
  with
  | ( Some ev, Some off, Some on_, Some mig, Some evi, Some skip, Some lim,
      Some dev, Some stall, Some corr ) ->
    Some
      {
        s_events = ev;
        s_offlined = off;
        s_onlined = on_;
        s_migrated = mig;
        s_evicted = evi;
        s_skipped = skip;
        s_limit_updates = lim;
        s_device_phases = dev;
        s_stalled_threads = stall;
        s_corrupted = corr;
      }
  | _ -> None
