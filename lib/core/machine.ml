module Prof = Obs.Prof

type swap_kind =
  | Ssd_swap of Swapdev.Ssd.config
  | Zram_swap of Swapdev.Zram.config

let ssd = Ssd_swap Swapdev.Ssd.default_config

let zram = Zram_swap Swapdev.Zram.default_config

type config = {
  hw_threads : int;
  capacity_frames : int;
  swap : swap_kind;
  costs : Mem.Costs.t;
  readahead : int;
  direct_reclaim_batch : int;
  segment_pages : int;
  hit_cpu_ns : int;
  minor_fault_ns : int;
  barrier_groups : int array option;
  kthread_jitter_ns : int;
      (** mean scheduling delay between kernel-thread steps; the
          OS-noise term the paper blames for scan-timing variance *)
  max_runtime_ns : int;
  seed : int;
  fault_plan : Swapdev.Faulty_device.plan;
  io_max_retries : int;
  io_retry_backoff_ns : int;
  audit_every_ns : int;
  obs : Obs.config;
  prof : Obs.Prof.config;
  cancel : Engine.Cancel.t;
  cgroups : Mem.Memcg.spec option;
      (** memory cgroups (None = single global pool, the pre-cgroup
          behaviour, byte-identical to builds without the controller) *)
  chaos : Chaos.spec option;
      (** runtime-transient injection schedule (None = no injectors,
          byte-identical to builds without the chaos layer) *)
  vmstat : bool;
      (** capture the vmstat counter registry into [result.vmstat].
          Counters are maintained unconditionally (one int store per
          bump); this flag only controls whether the capture rides the
          result, so [false] keeps results byte-identical to builds
          without the telemetry layer *)
  damon : Mem.Damon.config option;
      (** DAMON-style region access monitor (None = no monitor ticks,
          no capture, byte-identical results) *)
}

let default_config ~capacity_frames ~seed =
  {
    hw_threads = 12;
    capacity_frames;
    (* Footprints are scaled 1/256 from the paper's 12-16 GB: page-table
       regions shrink from 512 to 64 PTEs to keep region granularity
       comparable, and per-page management costs inflate by the same
       factor so scanning overhead keeps its real share of runtime
       (see DESIGN.md, "Scaling"). *)
    costs =
      Mem.Costs.scaled
        { Mem.Costs.default with region_size = 64; spatial_scan_max = 64 };
    swap = ssd;
    readahead = 8;
    direct_reclaim_batch = 8;
    segment_pages = 32;
    hit_cpu_ns = 20;
    minor_fault_ns = 1_000;
    barrier_groups = None;
    kthread_jitter_ns = 50_000;
    max_runtime_ns = 50_000_000_000_000;
    seed;
    fault_plan = Swapdev.Faulty_device.none;
    io_max_retries = 4;
    io_retry_backoff_ns = 100_000;
    audit_every_ns = 0;
    obs = Obs.off;
    prof = Obs.Prof.off;
    cancel = Engine.Cancel.never;
    cgroups = None;
    chaos = None;
    vmstat = false;
    damon = None;
  }

type result = {
  runtime_ns : int;
  major_faults : int;
  minor_faults : int;
  swap_ins : int;
  swap_outs : int;
  direct_reclaims : int;
  direct_reclaim_ns : int;
  read_latencies : float array;
  write_latencies : float array;
  per_thread_finish : int array;
  cpu_busy_ns : int;
  policy_stats : (string * int) list;
  policy_name : string;
  resident_at_end : int;
  (* Fault-injection and degradation accounting. *)
  io_retries : int;
  io_remaps : int;
  injected_transient : int;
  injected_permanent : int;
  injected_stalls : int;
  injected_tail_spikes : int;
  poisoned_reads : int;
  writeback_failures : int;
  oom_kills : int;
  oom_discarded_pages : int;
  invariant_violations : int;
  memcg : Mem.Memcg.summary option;
  chaos : Chaos.summary option;
  trace : Obs.capture option;
  profile : Obs.Prof.capture option;
  vmstat : Obs.Vmstat.capture option;
  heatmap : Mem.Damon.capture option;
}

type kthread_state = {
  kt : Policy.Policy_intf.kthread;
  ktid : int; (* profiler thread id: nthreads + index *)
  kphase : Obs.Prof.phase; (* default attribution phase / span label *)
  mutable sleeping : bool;
  (* Pre-allocated driver and wake event: waking a kthread schedules a
     reused closure instead of building a fresh driver per wakeup. *)
  mutable kdrive : unit -> unit;
  mutable kwake : Engine.Sim.t -> unit;
}

type t = {
  cfg : config;
  obs : Obs.t;
  prof : Obs.Prof.t;
  (* Kernel-fidelity telemetry: the /proc/vmstat counter registry and
     the workingset eviction clock.  Always live — a bump is one array
     store — so the hot paths never branch on configuration; only the
     end-of-run capture is gated by [cfg.vmstat]. *)
  vm : Obs.Vmstat.t;
  ws : Mem.Workingset.t;
  sim : Engine.Sim.t;
  cpu : Engine.Cpu.t;
  rng : Engine.Rng.t;
  pt : Mem.Page_table.t;
  frames : Mem.Frame_table.t;
  mem : Mem.Phys_mem.t;
  swap : Swapdev.Swap_manager.t;
  fault_counters : Swapdev.Faulty_device.counters;
  workload : Workload.Chunk.packed;
  mutable policy : Policy.Policy_intf.packed option;
  retained_slot : int array; (* vpn -> clean swap-cache slot, or -1 *)
  groups : int array;        (* tid -> barrier group *)
  group_size : int array;
  group_arrived : int array;
  group_waiters : int list array;
  waiting : bool array;
      (* tid -> parked at a barrier; keys the waiter set by thread id so
         the OOM killer's membership check is O(1) instead of a
         structural [List.mem] scan *)
  barrier_arrive_ns : int array; (* tid -> when it reached the barrier *)
  finish_ns : int array;
  mutable active_threads : int;
  mutable kthreads : kthread_state array;
  mutable restart_thread : int -> unit;
  mutable stopped : bool;
  (* Fault accounting. *)
  mutable major_faults : int;
  mutable minor_faults : int;
  mutable direct_reclaims : int;
  mutable direct_reclaim_ns : int;
  read_lat : float Structures.Vec.t;
  write_lat : float Structures.Vec.t;
  (* Direct-reclaim context: reclaim_page behaves differently when the
     eviction runs synchronously on a faulting thread. *)
  mutable in_direct : bool;
  mutable reclaim_now : int;
  mutable direct_stall_until : int;
  mutable direct_cpu_extra : int;
  (* Success-adaptive swap readahead, like the kernel's per-VMA scheme:
     each address-space zone keeps its own window, shrunk when its
     speculatively-read pages get evicted untouched. *)
  ra_pending : bool array;
  ra_window : int array; (* per zone *)
  ra_hits : int array;
  ra_misses : int array;
  (* Degradation state: pages whose writeback permanently failed cannot
     leave memory; per-thread residency feeds OOM victim selection. *)
  pinned : bool array;     (* vpn -> unreclaimable *)
  faulted_by : int array;  (* vpn -> tid that faulted the page in, or -1 *)
  owner_tid : int array;   (* like faulted_by, but survives swap-out so
                              the OOM killer can release the victim's
                              swap slots, not just its resident frames *)
  thread_rss : int array;  (* tid -> resident pages it faulted in *)
  killed : bool array;
  (* Memory cgroups; None = no containment, zero behavioural change. *)
  mcg : Mem.Memcg.t option;
  mutable mcg_target : int option; (* reclaim scoped to this cgroup *)
  mutable mcg_breach_low : bool;
  mutable mcg_unproductive : int;
  (* last-resort override of memory.low: armed only after two whole
     direct-reclaim calls in a row freed nothing — the second already
     ran the policy's force escalation (ignoring accessed bits) against
     unprotected memory only, so a second zero means nothing outside
     the protected cgroups is reclaimable *)
  mutable poisoned_reads : int;
  mutable writeback_failures : int;
  mutable oom_kills : int;
  mutable oom_discarded : int;
  mutable invariant_violations : int;
  (* Chaos injector state: all zero/empty when [cfg.chaos] is [None], so
     the hot paths pay one int-array read and nothing else. *)
  chaos_stall_until : int array; (* tid -> burst-stalled until this time *)
  chaos_knobs : Swapdev.Degraded_device.knobs option;
  mutable chaos_offlined : int list; (* offlined pfns, most recent first *)
  mutable chaos_last : string; (* last applied injection, for audit context *)
}

let ra_zone_pages = 512

let ra_zone vpn = vpn / ra_zone_pages

let ra_adapt t z =
  if t.ra_hits.(z) + t.ra_misses.(z) >= 32 then begin
    if t.ra_hits.(z) > 2 * t.ra_misses.(z) then
      t.ra_window.(z) <- min t.cfg.readahead (t.ra_window.(z) + 1)
    else if t.ra_misses.(z) > t.ra_hits.(z) then
      t.ra_window.(z) <- max 1 (t.ra_window.(z) / 2);
    t.ra_hits.(z) <- 0;
    t.ra_misses.(z) <- 0
  end

let ra_note_hit t vpn =
  if t.ra_pending.(vpn) then begin
    t.ra_pending.(vpn) <- false;
    let z = ra_zone vpn in
    t.ra_hits.(z) <- t.ra_hits.(z) + 1;
    ra_adapt t z
  end

let ra_note_evicted t vpn =
  if t.ra_pending.(vpn) then begin
    t.ra_pending.(vpn) <- false;
    let z = ra_zone vpn in
    t.ra_misses.(z) <- t.ra_misses.(z) + 1;
    ra_adapt t z
  end

let policy_of t =
  match t.policy with
  | Some p -> p
  | None -> invalid_arg "Machine: policy not installed"

let on_mapped t ~pfn ~vpn ~refault ~file_backed ~speculative =
  let (Policy.Policy_intf.Packed ((module P), p)) = policy_of t in
  P.on_page_mapped p ~pfn ~asid:0 ~vpn ~refault ~file_backed ~speculative

let on_touched t ~pfn ~write =
  let (Policy.Policy_intf.Packed ((module P), p)) = policy_of t in
  P.on_page_touched p ~pfn ~write

(* Wake every sleeping kthread in one pass.  Scheduling reuses each
   kthread's pre-allocated wake closure, and the flattened event queue
   stores it without boxing, so a wakeup burst allocates nothing. *)
let wake_kthreads t =
  let ks_arr = t.kthreads in
  for i = 0 to Array.length ks_arr - 1 do
    let ks = ks_arr.(i) in
    if ks.sleeping then begin
      ks.sleeping <- false;
      Engine.Sim.schedule t.sim ~delay:0 ks.kwake
    end
  done

let rss_page_mapped t ~tid ~vpn =
  t.faulted_by.(vpn) <- tid;
  t.owner_tid.(vpn) <- tid;
  t.thread_rss.(tid) <- t.thread_rss.(tid) + 1;
  match t.mcg with
  | Some mg -> Mem.Memcg.charge mg ~tid ~vpn
  | None -> ()

let rss_page_unmapped t ~vpn =
  let tid = t.faulted_by.(vpn) in
  if tid >= 0 then begin
    t.thread_rss.(tid) <- t.thread_rss.(tid) - 1;
    t.faulted_by.(vpn) <- -1
  end;
  match t.mcg with
  | Some mg -> Mem.Memcg.uncharge mg ~vpn
  | None -> ()

(* The cgroup gate policies consult before detaching an eviction
   candidate.  A targeted pass (memory.high/max enforcement, the
   proactive probe) only touches the target cgroup's pages — hard, not
   overridden by [force].  Outside a targeted pass, memory.low shields a
   cgroup under its protection; the policy's [force] escalation (which
   also ignores accessed bits) may breach it only after an entire
   direct-reclaim call — force pass included — freed nothing, mirroring
   how the kernel overrides protection only when nothing else is
   reclaimable. *)
let evictable t ~pfn ~force =
  match t.mcg with
  | None -> true
  | Some mg ->
    let vpn = Mem.Frame_table.owner_vpn t.frames pfn in
    if vpn < 0 then true
    else
      let cg = Mem.Memcg.cg_of_page mg vpn in
      if cg < 0 then true
      else (
        match t.mcg_target with
        | Some target -> cg = target
        | None ->
          (force && t.mcg_breach_low) || not (Mem.Memcg.low_protected mg cg))

let mcg_stall t ~tid ~t0 ~t1 =
  match t.mcg with
  | Some mg -> Mem.Memcg.stall mg ~tid ~t0 ~t1
  | None -> ()

(* Per-cgroup memory.stat slices of the vmstat counters.  Fault-side
   counters attribute to the faulting thread's cgroup; reclaim-side
   counters ([pgsteal], [pswpout]) to the cgroup charged for the page
   being evicted, like the kernel's lruvec accounting. *)
let mcg_vm t ~tid i =
  match t.mcg with Some mg -> Mem.Memcg.vm_bump mg ~tid i | None -> ()

let mcg_vm_page t ~vpn i =
  match t.mcg with Some mg -> Mem.Memcg.vm_bump_page mg ~vpn i | None -> ()

(* The machine unmaps, writes back and frees a frame on the policy's
   behalf.  Clean pages with a retained swap-cache copy are dropped
   without I/O; dirty (or never-swapped) pages cost a device write,
   which stalls the faulting thread when reclaim is direct.  A write
   that fails permanently (even after retries and slot remapping) pins
   the page in memory: it cannot leave until the OOM killer tears its
   owner down. *)
let reclaim_page t ~pfn =
  let vpn = Mem.Frame_table.owner_vpn t.frames pfn in
  if vpn >= 0 then begin
    let pte = Mem.Page_table.get t.pt vpn in
    if Mem.Pte.present pte && not t.pinned.(vpn) then begin
      let retained = t.retained_slot.(vpn) in
      let now = t.reclaim_now in
      let needs_writeback = Mem.Pte.dirty pte || retained < 0 in
      let slot =
        if needs_writeback then begin
          if retained >= 0 then begin
            Swapdev.Swap_manager.release t.swap ~slot:retained;
            t.retained_slot.(vpn) <- -1
          end;
          let klass = Workload.Chunk.packed_klass t.workload vpn in
          let slot =
            Swapdev.Swap_manager.swap_out_slot t.swap ~now ~klass ~page_key:vpn
          in
          let io_cpu = Swapdev.Swap_manager.last_cpu_ns t.swap in
          if t.in_direct then begin
            t.direct_stall_until <-
              max t.direct_stall_until
                (Swapdev.Swap_manager.last_finish_ns t.swap);
            t.direct_cpu_extra <- t.direct_cpu_extra + io_cpu;
            Prof.charge_phase t.prof Prof.Evict_scan io_cpu
          end
          else
            Engine.Cpu.charge_tagged t.cpu
              ~phase:(Prof.phase_index Prof.Evict_scan) io_cpu;
          slot
        end
        else retained
      in
      if slot < 0 then begin
        (* Writeback failed for good: the page stays resident and
           becomes unreclaimable. *)
        t.pinned.(vpn) <- true;
        t.writeback_failures <- t.writeback_failures + 1
      end
      else begin
        Obs.Vmstat.incr t.vm Obs.Vmstat.pgsteal;
        mcg_vm_page t ~vpn Mem.Memcg.st_pgsteal;
        if needs_writeback then mcg_vm_page t ~vpn Mem.Memcg.st_pswpout;
        (* Leave a shadow entry behind, like the kernel's
           workingset_eviction: the eviction-clock snapshot plus the
           accessed bit, consumed when the page refaults. *)
        Mem.Page_table.set_shadow t.pt vpn
          (Mem.Workingset.note_eviction t.ws
             ~was_active:(Mem.Pte.accessed pte));
        Mem.Page_table.set t.pt vpn (Mem.Pte.to_swapped pte ~slot);
        t.retained_slot.(vpn) <- -1;
        ra_note_evicted t vpn;
        rss_page_unmapped t ~vpn;
        Mem.Frame_table.clear_owner t.frames ~pfn;
        Mem.Phys_mem.free t.mem pfn;
        if Obs.enabled t.obs then
          Obs.emit t.obs ~t_ns:now (Obs.Evict { vpn; dirty = needs_writeback })
      end
    end
  end

let map_page t ~tid ~pfn ~vpn ~refault ~write ~demand =
  let file_backed = Workload.Chunk.packed_file_backed t.workload vpn in
  Mem.Frame_table.set_owner t.frames ~pfn ~asid:0 ~vpn;
  let pte = Mem.Pte.mapped ~pfn ~file_backed in
  let pte = if demand then Mem.Pte.set_accessed pte else pte in
  let pte = if write then Mem.Pte.set_dirty pte else pte in
  Mem.Page_table.set t.pt vpn pte;
  rss_page_mapped t ~tid ~vpn;
  on_mapped t ~pfn ~vpn ~refault ~file_backed ~speculative:(not demand);
  if demand then on_touched t ~pfn ~write

(* Model the OOM killer: pick the live thread with the largest resident
   share — restricted to cgroup [cg] when the kill is scoped — terminate
   it, and tear down *all* of its address space: resident pages are
   freed without writeback (their contents die with the thread, pinned
   or not), swap-cache copies and the slots of its swapped-out pages are
   released, and every reverse-map entry is cleared.  Returns false only
   if no eligible live thread remains. *)
let oom_kill ?cg t =
  let eligible tid =
    match (cg, t.mcg) with
    | Some c, Some mg -> Mem.Memcg.cg_of_thread mg tid = c
    | _ -> true
  in
  let victim = ref (-1) in
  Array.iteri
    (fun tid finish ->
      if finish < 0 && not t.killed.(tid) && eligible tid then
        if !victim < 0 || t.thread_rss.(tid) > t.thread_rss.(!victim) then
          victim := tid)
    t.finish_ns;
  if !victim < 0 then false
  else begin
    let v = !victim in
    t.killed.(v) <- true;
    t.oom_kills <- t.oom_kills + 1;
    Obs.Vmstat.incr t.vm Obs.Vmstat.oom_kill;
    let discarded_before = t.oom_discarded in
    for vpn = 0 to Mem.Page_table.pages t.pt - 1 do
      if t.owner_tid.(vpn) = v then begin
        let pte = Mem.Page_table.get t.pt vpn in
        if Mem.Pte.present pte then begin
          let pfn = Mem.Pte.pfn pte in
          if t.retained_slot.(vpn) >= 0 then begin
            Swapdev.Swap_manager.release t.swap ~slot:t.retained_slot.(vpn);
            t.retained_slot.(vpn) <- -1
          end;
          Mem.Page_table.set t.pt vpn Mem.Pte.empty;
          Mem.Frame_table.clear_owner t.frames ~pfn;
          Mem.Phys_mem.free t.mem pfn;
          t.pinned.(vpn) <- false;
          t.ra_pending.(vpn) <- false;
          (match t.mcg with
          | Some mg -> Mem.Memcg.uncharge mg ~vpn
          | None -> ());
          t.oom_discarded <- t.oom_discarded + 1
        end
        else if Mem.Pte.swapped pte then begin
          (* The PR-1 killer leaked these: a victim's swapped-out pages
             kept their slots (and rmap entries) forever.  Release the
             slot and empty the PTE so the audit's slot-conservation
             check holds after every kill. *)
          Swapdev.Swap_manager.release t.swap ~slot:(Mem.Pte.swap_slot pte);
          Mem.Page_table.set t.pt vpn Mem.Pte.empty;
          (* The page's contents die with the thread: a later fault on
             this vpn is a fresh minor fault, not a refault, so drop
             the pending shadow entry. *)
          Mem.Page_table.clear_shadow t.pt vpn;
          t.oom_discarded <- t.oom_discarded + 1
        end;
        t.faulted_by.(vpn) <- -1;
        t.owner_tid.(vpn) <- -1
      end
    done;
    t.thread_rss.(v) <- 0;
    (* Future barriers must not wait for the dead thread; if its group
       is already assembled at one, release the survivors. *)
    let g = t.groups.(v) in
    if t.waiting.(v) then begin
      let rec remove = function
        | [] -> []
        | w :: rest -> if w = v then rest else w :: remove rest
      in
      t.group_waiters.(g) <- remove t.group_waiters.(g);
      t.waiting.(v) <- false;
      t.group_arrived.(g) <- t.group_arrived.(g) - 1
    end;
    t.group_size.(g) <- t.group_size.(g) - 1;
    if
      t.group_size.(g) > 0
      && t.group_arrived.(g) >= t.group_size.(g)
      && t.group_waiters.(g) <> []
    then begin
      let waiters = t.group_waiters.(g) in
      t.group_arrived.(g) <- 0;
      t.group_waiters.(g) <- [];
      List.iter (fun w -> t.waiting.(w) <- false) waiters;
      Engine.Sim.schedule t.sim ~delay:t.cfg.costs.Mem.Costs.barrier_ns (fun _ ->
          let now = Engine.Sim.now t.sim in
          List.iter
            (fun w ->
              Prof.wait t.prof ~tid:w ~now Prof.Barrier_wait
                (now - t.barrier_arrive_ns.(w));
              t.restart_thread w)
            waiters)
    end;
    if t.finish_ns.(v) < 0 then begin
      t.finish_ns.(v) <- Engine.Sim.now t.sim;
      t.active_threads <- t.active_threads - 1;
      if t.active_threads <= 0 then begin
        t.stopped <- true;
        Engine.Sim.stop t.sim
      end
    end;
    Prof.mark t.prof ~tid:v ~now:(Engine.Sim.now t.sim) Prof.Oom_kill;
    let discarded = t.oom_discarded - discarded_before in
    Obs.emit t.obs ~t_ns:(Engine.Sim.now t.sim)
      (Obs.Oom_kill { tid = v; discarded });
    (match t.mcg with
    | Some mg ->
      let vcg = Mem.Memcg.cg_of_thread mg v in
      Mem.Memcg.note_oom mg vcg;
      Mem.Memcg.thread_exit mg ~tid:v ~now:(Engine.Sim.now t.sim);
      Obs.emit t.obs ~t_ns:(Engine.Sim.now t.sim)
        (Obs.Cgroup_oom { cg = Mem.Memcg.name mg vcg; tid = v; discarded })
    | None -> ());
    true
  end

(* Allocation slow path: run the policy synchronously and charge its CPU
   and writeback stalls to the faulting thread.  When reclaim cannot
   free memory, degrade through the OOM killer rather than aborting the
   trial; [None] means the faulting thread itself was chosen and its
   fault must unwind. *)
let alloc_frame t ~tid ~(cursor : int ref) =
  let pfn = Mem.Phys_mem.alloc_pfn t.mem in
  if pfn >= 0 then begin
    if Mem.Phys_mem.below_low t.mem then wake_kthreads t;
    pfn
  end
  else begin
    let (Policy.Policy_intf.Packed ((module P), p)) = policy_of t in
    let rec retry attempts =
      if t.killed.(tid) then -1
      else if attempts > 64 then
        if oom_kill t && not t.killed.(tid) then begin
          let pfn = Mem.Phys_mem.alloc_pfn t.mem in
          if pfn >= 0 then pfn else retry 0
        end
        else -1
      else begin
        t.direct_reclaims <- t.direct_reclaims + 1;
        t.in_direct <- true;
        t.reclaim_now <- !cursor;
        t.direct_stall_until <- !cursor;
        t.direct_cpu_extra <- 0;
        (* Scope the episode: attribution accrued inside it is consumed
           by its own aggregate charge below, not by the segment-end
           flush (and vice versa). *)
        let saved_pending = Prof.suspend_pending t.prof in
        Prof.begin_phase t.prof ~now:!cursor Prof.Evict_scan;
        if t.mcg <> None then t.mcg_breach_low <- t.mcg_unproductive >= 2;
        let stats = P.direct_reclaim p ~want:t.cfg.direct_reclaim_batch in
        t.in_direct <- false;
        let cpu = stats.Policy.Policy_intf.cpu_ns + t.direct_cpu_extra in
        Engine.Cpu.charge t.cpu cpu;
        Prof.resume_pending t.prof saved_pending;
        let before = !cursor in
        let cpu_wall = Engine.Cpu.scale t.cpu cpu in
        cursor := max (!cursor + cpu_wall) t.direct_stall_until;
        Prof.end_phase t.prof ~now:(before + cpu_wall);
        Prof.wait t.prof ~tid ~now:!cursor Prof.Writeback_wait
          (!cursor - before - cpu_wall);
        (* The whole direct-reclaim episode is a memory stall, like the
           kernel's psi_memstall_enter around try_to_free_pages. *)
        mcg_stall t ~tid ~t0:before ~t1:!cursor;
        t.direct_reclaim_ns <- t.direct_reclaim_ns + (!cursor - before);
        if Obs.enabled t.obs then
          Obs.emit t.obs ~t_ns:before
            (Obs.Reclaim
               {
                 want = t.cfg.direct_reclaim_batch;
                 freed = stats.Policy.Policy_intf.freed;
                 scanned = stats.Policy.Policy_intf.scanned;
                 latency_ns = !cursor - before;
               });
        wake_kthreads t;
        if t.mcg <> None then
          t.mcg_unproductive <-
            (if stats.Policy.Policy_intf.freed = 0 then t.mcg_unproductive + 1
             else 0);
        let pfn = Mem.Phys_mem.alloc_pfn t.mem in
        if pfn >= 0 then pfn else retry (attempts + 1)
      end
    in
    let frame = retry 0 in
    t.mcg_breach_low <- false;
    t.mcg_unproductive <- 0;
    frame
  end

(* One synchronous cgroup-targeted reclaim pass on a faulting thread:
   the same episode shape as the allocation slow path, but scoped to
   [cg] through [mcg_target] and reported as a [Cgroup_reclaim] trace
   event (so untargeted Reclaim telemetry stays comparable across
   configurations).  Returns the pages freed. *)
let memcg_direct_reclaim t ~tid ~cg ~want ~(cursor : int ref) =
  let (Policy.Policy_intf.Packed ((module P), p)) = policy_of t in
  t.direct_reclaims <- t.direct_reclaims + 1;
  t.mcg_target <- Some cg;
  t.in_direct <- true;
  t.reclaim_now <- !cursor;
  t.direct_stall_until <- !cursor;
  t.direct_cpu_extra <- 0;
  let saved_pending = Prof.suspend_pending t.prof in
  Prof.begin_phase t.prof ~now:!cursor Prof.Evict_scan;
  let stats = P.direct_reclaim p ~want in
  t.in_direct <- false;
  t.mcg_target <- None;
  let cpu = stats.Policy.Policy_intf.cpu_ns + t.direct_cpu_extra in
  Engine.Cpu.charge t.cpu cpu;
  Prof.resume_pending t.prof saved_pending;
  let before = !cursor in
  let cpu_wall = Engine.Cpu.scale t.cpu cpu in
  cursor := max (!cursor + cpu_wall) t.direct_stall_until;
  Prof.end_phase t.prof ~now:(before + cpu_wall);
  Prof.wait t.prof ~tid ~now:!cursor Prof.Writeback_wait
    (!cursor - before - cpu_wall);
  mcg_stall t ~tid ~t0:before ~t1:!cursor;
  t.direct_reclaim_ns <- t.direct_reclaim_ns + (!cursor - before);
  (match t.mcg with
  | Some mg ->
    Obs.emit t.obs ~t_ns:before
      (Obs.Cgroup_reclaim
         {
           cg = Mem.Memcg.name mg cg;
           want;
           freed = stats.Policy.Policy_intf.freed;
           scanned = stats.Policy.Policy_intf.scanned;
           latency_ns = !cursor - before;
         })
  | None -> ());
  wake_kthreads t;
  stats.Policy.Policy_intf.freed

(* memory.max: a charge may not cross the hard cap.  Reclaim inside the
   cgroup until the charge fits; when a whole pass stops making progress
   (everything left is pinned or the group is thrashing faster than it
   writes back), degrade through a *scoped* OOM kill and re-check.  The
   machine-wide killer in the allocation slow path is this same
   mechanism with [cg = None] — the root-cgroup degenerate case. *)
let memcg_enforce_max t ~tid ~(cursor : int ref) =
  match t.mcg with
  | None -> ()
  | Some mg ->
    let cg = Mem.Memcg.cg_of_thread mg tid in
    let rec enforce stalled_passes =
      if (not t.killed.(tid)) && Mem.Memcg.over_max mg cg ~extra:1 then begin
        if stalled_passes >= 8 then begin
          if oom_kill t ~cg then enforce 0
          (* else: nothing left to kill in the group; let the charge
             through rather than deadlocking the machine. *)
        end
        else begin
          let want =
            Mem.Memcg.max_overage mg cg ~extra:1 + t.cfg.direct_reclaim_batch
          in
          let usage_before = Mem.Memcg.usage mg cg in
          ignore (memcg_direct_reclaim t ~tid ~cg ~want ~cursor);
          (* Progress is measured in usage, not the policy's freed count:
             a writeback that fails permanently pins the page and frees
             nothing even though the policy counted it. *)
          enforce
            (if Mem.Memcg.usage mg cg < usage_before then 0
             else stalled_passes + 1)
        end
      end
    in
    enforce 0

(* memory.high: over the soft cap the thread keeps running but pays —
   first one bounded targeted-reclaim attempt, then an exponentially
   growing stall (PR-1's transient-I/O backoff curve, in simulated
   time) for as long as the group stays over. *)
let memcg_after_charge t ~tid ~(cursor : int ref) =
  match t.mcg with
  | None -> ()
  | Some mg ->
    let cg = Mem.Memcg.cg_of_thread mg tid in
    if Mem.Memcg.over_high mg cg then begin
      let want =
        min (Mem.Memcg.high_overage mg cg) t.cfg.direct_reclaim_batch
      in
      if want > 0 then
        ignore (memcg_direct_reclaim t ~tid ~cg ~want ~cursor)
    end;
    let d = Mem.Memcg.throttle_ns mg ~tid ~base_ns:t.cfg.io_retry_backoff_ns in
    if d > 0 then begin
      let t0 = !cursor in
      cursor := !cursor + d;
      Mem.Memcg.stall mg ~tid ~t0 ~t1:!cursor;
      Prof.wait t.prof ~tid ~now:!cursor Prof.Writeback_wait d;
      Obs.emit t.obs ~t_ns:t0
        (Obs.Throttle
           {
             tid;
             cg = Mem.Memcg.name mg cg;
             usage = Mem.Memcg.usage mg cg;
             high = Mem.Memcg.high mg cg;
             stall_ns = d;
           })
    end

(* Asynchronous targeted reclaim for the proactive probe: kswapd-like
   (CPU charged to the contention model, writebacks overlap, nobody
   stalls), but scoped to one cgroup. *)
let memcg_background_reclaim t ~cg ~want ~now =
  let (Policy.Policy_intf.Packed ((module P), p)) = policy_of t in
  t.mcg_target <- Some cg;
  t.reclaim_now <- now;
  let stats = P.direct_reclaim p ~want in
  t.mcg_target <- None;
  Engine.Cpu.charge
    ~phase:(Prof.phase_index Prof.Evict_scan)
    t.cpu stats.Policy.Policy_intf.cpu_ns;
  (match t.mcg with
  | Some mg ->
    Obs.emit t.obs ~t_ns:now
      (Obs.Cgroup_reclaim
         {
           cg = Mem.Memcg.name mg cg;
           want;
           freed = stats.Policy.Policy_intf.freed;
           scanned = stats.Policy.Policy_intf.scanned;
           latency_ns = 0;
         })
  | None -> ());
  wake_kthreads t

(* Workingset refault accounting at swap-in, mirroring the kernel's
   workingset_refault(): consume the shadow entry left at eviction,
   classify the refault distance against memory size, and count.  Runs
   for demand and readahead swap-ins alike — the kernel classifies on
   swap-cache insertion, before anyone touches the page — and before
   the I/O outcome is known, so even a poisoned read was a refault. *)
let note_refault t ~tid ~vpn ~now =
  let shadow = Mem.Page_table.shadow t.pt vpn in
  if shadow = Mem.Workingset.no_shadow then begin
    Obs.Vmstat.incr t.vm Obs.Vmstat.workingset_shadow_miss;
    if Obs.enabled t.obs then
      Obs.emit t.obs ~t_ns:now
        (Obs.Workingset_refault
           {
             vpn;
             distance = -1;
             shadow = false;
             activated = false;
             restored = false;
           })
  end
  else begin
    let r = Mem.Workingset.classify t.ws ~shadow in
    Mem.Page_table.clear_shadow t.pt vpn;
    Obs.Vmstat.incr t.vm Obs.Vmstat.workingset_refault;
    Obs.Vmstat.note_refault_distance t.vm r.Mem.Workingset.distance;
    mcg_vm t ~tid Mem.Memcg.st_ws_refault;
    if r.Mem.Workingset.activated then begin
      Obs.Vmstat.incr t.vm Obs.Vmstat.workingset_activate;
      mcg_vm t ~tid Mem.Memcg.st_ws_activate
    end;
    if r.Mem.Workingset.restored then begin
      Obs.Vmstat.incr t.vm Obs.Vmstat.workingset_restore;
      mcg_vm t ~tid Mem.Memcg.st_ws_restore
    end;
    if Obs.enabled t.obs then
      Obs.emit t.obs ~t_ns:now
        (Obs.Workingset_refault
           {
             vpn;
             distance = r.Mem.Workingset.distance;
             shadow = true;
             activated = r.Mem.Workingset.activated;
             restored = r.Mem.Workingset.restored;
           })
  end

(* Opportunistic swap-in of the sequential neighbours of a demand fault,
   like the kernel's swap readahead cluster.  Only when memory is easy:
   readahead must never trigger reclaim. *)
let readahead t ~tid ~(cursor : int ref) vpn =
  let n = min t.cfg.readahead t.ra_window.(ra_zone vpn) in
  if n > 1 && Mem.Phys_mem.free_count t.mem > n + Mem.Phys_mem.low_watermark t.mem
  then begin
    let limit = min (vpn + n - 1) (Mem.Page_table.pages t.pt - 1) in
    let stop = ref false in
    for v = vpn + 1 to limit do
      if not !stop then begin
        let pte = Mem.Page_table.get t.pt v in
        if Mem.Pte.swapped pte then begin
          let pfn = Mem.Phys_mem.alloc_pfn t.mem in
          if pfn < 0 then stop := true
          else begin
            let slot = Mem.Pte.swap_slot pte in
            Swapdev.Swap_manager.swap_in_slot t.swap ~now:!cursor ~slot;
            (* Tagged: this I/O submit cost is charged here and nowhere
               else, so it must not consume pending attribution. *)
            Engine.Cpu.charge_tagged t.cpu
              ~phase:(Prof.phase_index Prof.Fault_handling)
              (Swapdev.Swap_manager.last_cpu_ns t.swap);
            if Swapdev.Swap_manager.last_failed t.swap then begin
              (* Speculative read failed: abandon the cluster.  The page
                 stays swapped; a demand fault will retry (and poison it
                 if the slot really is gone). *)
              Mem.Phys_mem.free t.mem pfn;
              stop := true
            end
            else begin
              note_refault t ~tid ~vpn:v ~now:!cursor;
              mcg_vm t ~tid Mem.Memcg.st_pswpin;
              t.retained_slot.(v) <- slot;
              t.ra_pending.(v) <- true;
              map_page t ~tid ~pfn ~vpn:v ~refault:true ~write:false ~demand:false
            end
          end
        end
      end
    done
  end

let handle_fault t ~tid ~(cursor : int ref) ~(cpu_acc : int ref) ~vpn ~write =
  Prof.begin_phase t.prof ~now:!cursor Prof.Fault_handling;
  Obs.Vmstat.incr t.vm Obs.Vmstat.pgfault;
  mcg_vm t ~tid Mem.Memcg.st_pgfault;
  cpu_acc := !cpu_acc + t.cfg.costs.Mem.Costs.fault_trap_ns;
  (* The hard cap is enforced before the machine even looks for a free
     frame: a cgroup at memory.max must make room inside itself (or
     sacrifice one of its own) no matter how much global memory is
     free.  May kill [tid]. *)
  memcg_enforce_max t ~tid ~cursor;
  let pfn = if t.killed.(tid) then -1 else alloc_frame t ~tid ~cursor in
  (* pfn < 0: the faulting thread lost the OOM lottery *)
  if pfn >= 0 then begin
    (* Attribute the trap cost after the allocation so the pending
       amount cannot be consumed by a direct-reclaim episode's
       aggregate charge; it flushes with [cpu_acc] at segment end. *)
    Prof.charge_phase t.prof Prof.Fault_handling
      t.cfg.costs.Mem.Costs.fault_trap_ns;
    let pte = Mem.Page_table.get t.pt vpn in
    if Mem.Pte.swapped pte then begin
      t.major_faults <- t.major_faults + 1;
      Obs.Vmstat.incr t.vm Obs.Vmstat.pgmajfault;
      mcg_vm t ~tid Mem.Memcg.st_pgmajfault;
      note_refault t ~tid ~vpn ~now:!cursor;
      let slot = Mem.Pte.swap_slot pte in
      Swapdev.Swap_manager.swap_in_slot t.swap ~now:!cursor ~slot;
      let io_cpu = Swapdev.Swap_manager.last_cpu_ns t.swap in
      let io_finish = Swapdev.Swap_manager.last_finish_ns t.swap in
      let io_failed = Swapdev.Swap_manager.last_failed t.swap in
      cpu_acc := !cpu_acc + io_cpu;
      Prof.charge_phase t.prof Prof.Fault_handling io_cpu;
      let before_wait = !cursor in
      cursor := max !cursor io_finish;
      Prof.wait t.prof ~tid ~now:!cursor Prof.Swap_wait (!cursor - before_wait);
      mcg_stall t ~tid ~t0:before_wait ~t1:!cursor;
      if io_failed then begin
        (* The stored copy is unrecoverable: poison the mapping.  The
           thread continues on a zero-filled page, and the loss is
           visible in [poisoned_reads]. *)
        t.poisoned_reads <- t.poisoned_reads + 1;
        Swapdev.Swap_manager.release t.swap ~slot;
        map_page t ~tid ~pfn ~vpn ~refault:false ~write ~demand:true
      end
      else begin
        mcg_vm t ~tid Mem.Memcg.st_pswpin;
        t.retained_slot.(vpn) <- slot;
        map_page t ~tid ~pfn ~vpn ~refault:true ~write ~demand:true;
        readahead t ~tid ~cursor vpn
      end
    end
    else begin
      t.minor_faults <- t.minor_faults + 1;
      cpu_acc := !cpu_acc + t.cfg.minor_fault_ns;
      Prof.charge_phase t.prof Prof.Fault_handling t.cfg.minor_fault_ns;
      map_page t ~tid ~pfn ~vpn ~refault:false ~write ~demand:true
    end;
    memcg_after_charge t ~tid ~cursor
  end;
  Prof.end_phase t.prof ~now:!cursor

let page_at pages i =
  match pages with
  | Workload.Chunk.Range { start; stride; _ } -> start + (i * stride)
  | Workload.Chunk.Pages a -> a.(i)
  | Workload.Chunk.Single p -> p

(* Touch one page: fast path sets the accessed (and dirty) bits exactly
   like the hardware walker; misses enter the fault path. *)
let touch t ~tid ~cursor ~cpu_acc ~vpn ~write =
  let pte = Mem.Page_table.get t.pt vpn in
  if Mem.Pte.present pte then begin
    let pte = Mem.Pte.set_accessed pte in
    let pte = if write then Mem.Pte.set_dirty pte else pte in
    Mem.Page_table.set t.pt vpn pte;
    cpu_acc := !cpu_acc + t.cfg.hit_cpu_ns;
    ra_note_hit t vpn;
    on_touched t ~pfn:(Mem.Pte.pfn pte) ~write
  end
  else handle_fault t ~tid ~cursor ~cpu_acc ~vpn ~write

let record_latency t ~tid (c : Workload.Chunk.t) ns =
  let cls = c.Workload.Chunk.latency_class in
  if cls = Workload.Chunk.read_class then
    Structures.Vec.push t.read_lat (float_of_int ns)
  else if cls = Workload.Chunk.write_class then
    Structures.Vec.push t.write_lat (float_of_int ns);
  match t.mcg with
  | Some mg -> Mem.Memcg.note_latency mg ~tid ~cls (float_of_int ns)
  | None -> ()

let rec run_thread t tid =
  if not t.stopped && not t.killed.(tid) then begin
    let su = t.chaos_stall_until.(tid) in
    if su > Engine.Sim.now t.sim then
      (* Burst storm: the thread is descheduled until the pulse ends. *)
      Engine.Sim.schedule_at t.sim ~time:su (fun _ -> run_thread t tid)
    else
      match Workload.Chunk.packed_next t.workload ~tid with
      | Workload.Chunk.Chunk c ->
        process_segment t tid c ~index:0 ~chunk_start:(Engine.Sim.now t.sim)
      | Workload.Chunk.Barrier -> barrier_arrive t tid
      | Workload.Chunk.Finished -> thread_finished t tid
  end

(* Process up to [segment_pages] of a chunk atomically, then yield to the
   event loop so kernel threads interleave with large chunks. *)
and process_segment t tid c ~index ~chunk_start =
  let open Workload.Chunk in
  let total = page_count c.pages in
  let seg_len = min t.cfg.segment_pages (total - index) in
  let t0 = Engine.Sim.now t.sim in
  Engine.Cpu.run_begin t.cpu;
  Prof.enter_thread t.prof ~tid;
  t.reclaim_now <- t0;
  let cursor = ref t0 in
  let cpu_acc =
    ref (if total = 0 then c.cpu_ns else c.cpu_ns * seg_len / total)
  in
  for i = index to index + seg_len - 1 do
    if not t.killed.(tid) then begin
      let write = c.write && i >= c.read_prefix in
      touch t ~tid ~cursor ~cpu_acc ~vpn:(page_at c.pages i) ~write
    end
  done;
  Engine.Cpu.charge t.cpu !cpu_acc;
  let cpu_wall =
    int_of_float
      (float_of_int (Engine.Cpu.scale t.cpu !cpu_acc) *. Engine.Rng.jitter t.rng 0.02)
  in
  Prof.span t.prof ~tid Prof.App_compute ~t0 ~t1:(t0 + cpu_wall);
  let io_wait = !cursor - t0 in
  Engine.Sim.schedule t.sim ~delay:cpu_wall (fun _ -> Engine.Cpu.run_end t.cpu);
  if Mem.Phys_mem.below_low t.mem then wake_kthreads t;
  let next_index = index + seg_len in
  Engine.Sim.schedule t.sim ~delay:(cpu_wall + io_wait) (fun _ ->
      if not t.stopped && not t.killed.(tid) then begin
        if next_index >= total then begin
          if c.latency_class >= 0 then
            record_latency t ~tid c (Engine.Sim.now t.sim - chunk_start);
          run_thread t tid
        end
        else begin
          let su = t.chaos_stall_until.(tid) in
          if su > Engine.Sim.now t.sim then
            Engine.Sim.schedule_at t.sim ~time:su (fun _ ->
                if not t.stopped && not t.killed.(tid) then
                  process_segment t tid c ~index:next_index ~chunk_start)
          else process_segment t tid c ~index:next_index ~chunk_start
        end
      end)

and barrier_arrive t tid =
  let g = t.groups.(tid) in
  t.barrier_arrive_ns.(tid) <- Engine.Sim.now t.sim;
  t.group_arrived.(g) <- t.group_arrived.(g) + 1;
  t.group_waiters.(g) <- tid :: t.group_waiters.(g);
  t.waiting.(tid) <- true;
  if t.group_arrived.(g) >= t.group_size.(g) then begin
    let waiters = t.group_waiters.(g) in
    t.group_arrived.(g) <- 0;
    t.group_waiters.(g) <- [];
    List.iter (fun w -> t.waiting.(w) <- false) waiters;
    Engine.Sim.schedule t.sim ~delay:t.cfg.costs.Mem.Costs.barrier_ns (fun _ ->
        let now = Engine.Sim.now t.sim in
        List.iter
          (fun w ->
            Prof.wait t.prof ~tid:w ~now Prof.Barrier_wait
              (now - t.barrier_arrive_ns.(w));
            run_thread t w)
          waiters)
  end

and thread_finished t tid =
  if t.finish_ns.(tid) < 0 then begin
    t.finish_ns.(tid) <- Engine.Sim.now t.sim;
    (match t.mcg with
    | Some mg -> Mem.Memcg.thread_exit mg ~tid ~now:(Engine.Sim.now t.sim)
    | None -> ());
    t.active_threads <- t.active_threads - 1;
    if t.active_threads <= 0 then begin
      t.stopped <- true;
      Engine.Sim.stop t.sim
    end
  end

let make_driver t ks =
  (* Run-queue latency before a kernel thread gets back on a CPU; grows
     with contention.  This is the scheduling noise the paper holds
     responsible for scan-timing variance (§VI-A). *)
  let sched_delay () =
    if t.cfg.kthread_jitter_ns <= 0 then 0
    else begin
      let mean = float_of_int t.cfg.kthread_jitter_ns *. Engine.Cpu.load t.cpu in
      int_of_float (Engine.Rng.exponential t.rng ~mean)
    end
  in
  (* The continuation closures are allocated once per kthread, not once
     per step: a steady-state reclaim cycle schedules only reused
     values. *)
  let rec drive () =
    if not t.stopped then begin
      t.reclaim_now <- Engine.Sim.now t.sim;
      Prof.enter_thread t.prof ~tid:ks.ktid;
      match ks.kt.Policy.Policy_intf.kstep () with
      | Policy.Policy_intf.Work w ->
        Engine.Cpu.run_begin t.cpu;
        Engine.Cpu.charge t.cpu w;
        let wall = Engine.Cpu.scale t.cpu w in
        let n0 = Engine.Sim.now t.sim in
        Prof.span t.prof ~tid:ks.ktid ks.kphase ~t0:n0 ~t1:(n0 + wall);
        Engine.Sim.schedule t.sim ~delay:(wall + sched_delay ()) work_cont
      | Policy.Policy_intf.Sleep d ->
        Engine.Sim.schedule t.sim ~delay:(d + sched_delay ()) sleep_cont
      | Policy.Policy_intf.Sleep_until_woken -> ks.sleeping <- true
    end
  and work_cont _ =
    Engine.Cpu.run_end t.cpu;
    drive ()
  and sleep_cont _ = drive () in
  drive

let audit t =
  Invariants.audit ~memcg:t.mcg
    ~last_chaos:(if t.chaos_last = "" then None else Some t.chaos_last)
    ~owners:(Some (t.owner_tid, t.killed))
    ~pt:t.pt ~frames:t.frames ~mem:t.mem ~swap:t.swap
    ~retained_slot:t.retained_slot

(* ---- Chaos injection --------------------------------------------- *)

(* Move a resident page off an offlining frame: allocate a destination
   (always lower-numbered — every higher frame is already offline),
   rewrite the PTE and reverse map, and re-announce the page to the
   policy.  Policies tolerate the stale source pfn exactly as they
   tolerate a frame the OOM killer freed behind their back. *)
let chaos_migrate t ~src ~vpn =
  let dst = Mem.Phys_mem.alloc_pfn t.mem in
  if dst < 0 then false
  else begin
    let pte = Mem.Page_table.get t.pt vpn in
    let file_backed = Mem.Pte.file_backed pte in
    let npte = Mem.Pte.to_mapped pte ~pfn:dst in
    let npte = if Mem.Pte.accessed pte then Mem.Pte.set_accessed npte else npte in
    let npte = if Mem.Pte.dirty pte then Mem.Pte.set_dirty npte else npte in
    Mem.Page_table.set t.pt vpn npte;
    Mem.Frame_table.clear_owner t.frames ~pfn:src;
    Mem.Frame_table.set_owner t.frames ~pfn:dst ~asid:0 ~vpn;
    (* Page-copy cost, charged like kswapd work. *)
    Engine.Cpu.charge_tagged t.cpu
      ~phase:(Prof.phase_index Prof.Evict_scan)
      t.cfg.minor_fault_ns;
    on_mapped t ~pfn:dst ~vpn ~refault:true ~file_backed ~speculative:false;
    true
  end

(* Offline [want] frames from the top of the physical range, kernel
   memory-hotplug style: free frames come straight off the free stack,
   mapped ones are migrated to lower frames (or evicted when no
   destination exists), and pinned pages keep their frame online. *)
let chaos_offline t ~want ~now ~(cs : Chaos.summary) =
  let offlined = ref 0 in
  let pfn = ref (Mem.Phys_mem.frames t.mem - 1) in
  while !offlined < want && !pfn >= 0 do
    let p = !pfn in
    if Mem.Phys_mem.is_online t.mem p then begin
      if Mem.Phys_mem.is_free t.mem p then begin
        Mem.Phys_mem.offline_free t.mem p;
        t.chaos_offlined <- p :: t.chaos_offlined;
        incr offlined
      end
      else begin
        let vpn = Mem.Frame_table.owner_vpn t.frames p in
        if vpn >= 0 && not t.pinned.(vpn) then begin
          if chaos_migrate t ~src:p ~vpn then begin
            Mem.Phys_mem.offline_used t.mem p;
            t.chaos_offlined <- p :: t.chaos_offlined;
            cs.Chaos.s_migrated <- cs.Chaos.s_migrated + 1;
            incr offlined
          end
          else begin
            (* No free destination anywhere: evict the page instead. *)
            t.reclaim_now <- now;
            reclaim_page t ~pfn:p;
            if Mem.Phys_mem.is_free t.mem p then begin
              Mem.Phys_mem.offline_free t.mem p;
              t.chaos_offlined <- p :: t.chaos_offlined;
              cs.Chaos.s_evicted <- cs.Chaos.s_evicted + 1;
              incr offlined
            end
            else cs.Chaos.s_skipped <- cs.Chaos.s_skipped + 1
          end
        end
        else cs.Chaos.s_skipped <- cs.Chaos.s_skipped + 1
      end
    end;
    decr pfn
  done;
  cs.Chaos.s_offlined <- cs.Chaos.s_offlined + !offlined;
  (* Capacity just shrank under the watermarks: get kswapd moving. *)
  wake_kthreads t

let chaos_online t ~want ~(cs : Chaos.summary) =
  let n = ref 0 in
  while !n < want && t.chaos_offlined <> [] do
    (match t.chaos_offlined with
    | [] -> ()
    | p :: rest ->
      t.chaos_offlined <- rest;
      Mem.Phys_mem.online t.mem p;
      incr n)
  done;
  cs.Chaos.s_onlined <- cs.Chaos.s_onlined + !n

(* Test-only fault: clear the lowest-numbered mapped frame's reverse-map
   entry so the next audit must flag the machine.  The fuzzer plants
   this to prove the invariant net catches real corruption. *)
let chaos_corrupt t ~(cs : Chaos.summary) =
  let total = Mem.Phys_mem.frames t.mem in
  let p = ref 0 in
  while !p < total && Mem.Frame_table.owner_vpn t.frames !p < 0 do incr p done;
  if !p < total then begin
    Mem.Frame_table.clear_owner t.frames ~pfn:!p;
    cs.Chaos.s_corrupted <- cs.Chaos.s_corrupted + 1;
    !p
  end
  else -1

let apply_chaos t (cs : Chaos.summary) action =
  let now = Engine.Sim.now t.sim in
  let arg =
    match action with
    | Chaos.Offline want ->
      chaos_offline t ~want ~now ~cs;
      want
    | Chaos.Online want ->
      chaos_online t ~want ~cs;
      want
    | Chaos.Degrade_set { latency; errors; wear } ->
      (match t.chaos_knobs with
      | Some k ->
        k.Swapdev.Degraded_device.latency_mult <- latency;
        k.Swapdev.Degraded_device.error_prob <- errors;
        k.Swapdev.Degraded_device.wear_prob <- wear
      | None -> ());
      cs.Chaos.s_device_phases <- cs.Chaos.s_device_phases + 1;
      int_of_float (latency *. 100.)
    | Chaos.Degrade_clear ->
      (match t.chaos_knobs with
      | Some k ->
        k.Swapdev.Degraded_device.latency_mult <- 1.0;
        k.Swapdev.Degraded_device.error_prob <- 0.0;
        k.Swapdev.Degraded_device.wear_prob <- 0.0
      | None -> ());
      0
    | Chaos.Set_limits { cg; low; high; max_limit } -> (
      match t.mcg with
      | None -> 0
      | Some mg -> (
        match Mem.Memcg.find mg cg with
        | None -> 0
        | Some idx ->
          Mem.Memcg.set_limits mg idx ?low ?high ?max_limit ();
          cs.Chaos.s_limit_updates <- cs.Chaos.s_limit_updates + 1;
          (* Writing memory.max below usage reclaims immediately, like
             echoing a lower limit into a live cgroup's control file. *)
          let over = Mem.Memcg.max_overage mg idx ~extra:0 in
          if over > 0 then memcg_background_reclaim t ~cg:idx ~want:over ~now;
          (match max_limit with
          | Some m -> m
          | None -> (
            match high with
            | Some h -> h
            | None -> Option.value low ~default:0))))
    | Chaos.Stall { lo; hi; until } ->
      let n = ref 0 in
      for tid = lo to min hi (Array.length t.chaos_stall_until - 1) do
        if (not t.killed.(tid)) && t.finish_ns.(tid) < 0 then begin
          t.chaos_stall_until.(tid) <- max t.chaos_stall_until.(tid) until;
          incr n
        end
      done;
      cs.Chaos.s_stalled_threads <- cs.Chaos.s_stalled_threads + !n;
      !n
    | Chaos.Corrupt_frame ->
      let p = chaos_corrupt t ~cs in
      max p 0
  in
  cs.Chaos.s_events <- cs.Chaos.s_events + 1;
  t.chaos_last <- Printf.sprintf "%s@%dns" (Chaos.action_label action) now;
  if Obs.enabled t.obs then
    Obs.emit t.obs ~t_ns:now
      (Obs.Chaos
         {
           injector = Chaos.action_injector action;
           action = Chaos.action_label action;
           arg;
         });
  (* Every injection is followed by a forced audit, independent of
     [audit_every_ns]. *)
  t.invariant_violations <- t.invariant_violations + List.length (audit t)

let run cfg ~policy ~workload =
  if cfg.capacity_frames <= 0 then invalid_arg "Machine.run: capacity_frames";
  let footprint = Workload.Chunk.packed_footprint workload in
  let nthreads = Workload.Chunk.packed_threads workload in
  let obs = Obs.create cfg.obs in
  let prof = Prof.create cfg.prof in
  let vm = Obs.Vmstat.create () in
  let rng = Engine.Rng.create cfg.seed in
  let base_device =
    match cfg.swap with
    | Ssd_swap c -> Swapdev.Ssd.create ~config:c ~rng:(Engine.Rng.split rng) ()
    | Zram_swap c -> Swapdev.Zram.create ~config:c ~rng:(Engine.Rng.split rng) ()
  in
  (* A disabled plan must not even split the RNG, so fault-free runs are
     bit-identical to builds that predate the fault layer. *)
  let device, fault_counters =
    if Swapdev.Faulty_device.is_none cfg.fault_plan then
      (base_device, Swapdev.Faulty_device.fresh_counters ())
    else
      Swapdev.Faulty_device.wrap ~plan:cfg.fault_plan
        ~rng:(Engine.Rng.split rng) base_device
  in
  (* Chaos device degradation: the wrapper exists only when the spec has
     a degrade window, with an RNG derived from the seed rather than
     split from the main stream — chaos-free runs draw exactly the same
     numbers as before this layer existed. *)
  let chaos_knobs =
    match cfg.chaos with
    | Some spec when Chaos.has_degrade spec ->
      Some (Swapdev.Degraded_device.neutral ())
    | _ -> None
  in
  let device =
    match chaos_knobs with
    | None -> device
    | Some knobs ->
      fst
        (Swapdev.Degraded_device.wrap ~knobs
           ~rng:(Engine.Rng.create (cfg.seed lxor 0x5EED0C4A))
           device)
  in
  let groups =
    match cfg.barrier_groups with
    | Some g ->
      if Array.length g <> nthreads then invalid_arg "Machine.run: barrier_groups size";
      g
    | None -> Array.make nthreads 0
  in
  let ngroups = 1 + Array.fold_left max 0 groups in
  let group_size = Array.make ngroups 0 in
  Array.iter (fun g -> group_size.(g) <- group_size.(g) + 1) groups;
  let mcg =
    Option.map
      (fun spec ->
        Mem.Memcg.create spec ~capacity_frames:cfg.capacity_frames ~nthreads
          ~footprint_pages:footprint)
      cfg.cgroups
  in
  (* Churn segments name cgroups; reject dangling references up front
     rather than silently no-opping mid-run. *)
  (match cfg.chaos with
  | None -> ()
  | Some spec ->
    List.iter
      (fun cgn ->
        let known =
          match mcg with
          | None -> false
          | Some mg -> Mem.Memcg.find mg cgn <> None
        in
        if not known then
          invalid_arg
            (Printf.sprintf
               "Machine.run: chaos churn targets unknown cgroup %S (is \
                --cgroups set?)"
               cgn))
      (Chaos.churn_cgs spec));
  let t =
    {
      cfg;
      obs;
      prof;
      vm;
      ws = Mem.Workingset.create ~capacity:cfg.capacity_frames;
      sim = Engine.Sim.create ();
      cpu = Engine.Cpu.create ~hw_threads:cfg.hw_threads;
      rng;
      pt =
        Mem.Page_table.create ~region_size:cfg.costs.Mem.Costs.region_size ~asid:0
          ~pages:footprint ();
      frames = Mem.Frame_table.create ~frames:cfg.capacity_frames;
      mem = Mem.Phys_mem.create ~frames:cfg.capacity_frames ();
      swap =
        Swapdev.Swap_manager.create ~max_retries:cfg.io_max_retries
          ~backoff_ns:cfg.io_retry_backoff_ns ~obs ~vmstat:vm ~device
          ~seed:(Engine.Rng.int rng (1 lsl 30)) ();
      fault_counters;
      workload;
      policy = None;
      retained_slot = Array.make footprint (-1);
      groups;
      group_size;
      group_arrived = Array.make ngroups 0;
      group_waiters = Array.make ngroups [];
      waiting = Array.make nthreads false;
      barrier_arrive_ns = Array.make nthreads 0;
      finish_ns = Array.make nthreads (-1);
      active_threads = nthreads;
      kthreads = [||];
      restart_thread = (fun _ -> ());
      stopped = false;
      major_faults = 0;
      minor_faults = 0;
      direct_reclaims = 0;
      direct_reclaim_ns = 0;
      read_lat = Structures.Vec.create ~capacity:1024 ~dummy:0.0 ();
      write_lat = Structures.Vec.create ~capacity:1024 ~dummy:0.0 ();
      in_direct = false;
      reclaim_now = 0;
      direct_stall_until = 0;
      direct_cpu_extra = 0;
      ra_pending = Array.make footprint false;
      ra_window = Array.make ((footprint / ra_zone_pages) + 1) (max 1 cfg.readahead);
      ra_hits = Array.make ((footprint / ra_zone_pages) + 1) 0;
      ra_misses = Array.make ((footprint / ra_zone_pages) + 1) 0;
      pinned = Array.make footprint false;
      faulted_by = Array.make footprint (-1);
      owner_tid = Array.make footprint (-1);
      thread_rss = Array.make nthreads 0;
      killed = Array.make nthreads false;
      mcg;
      mcg_target = None;
      mcg_breach_low = false;
      mcg_unproductive = 0;
      poisoned_reads = 0;
      writeback_failures = 0;
      oom_kills = 0;
      oom_discarded = 0;
      invariant_violations = 0;
      chaos_stall_until = Array.make nthreads 0;
      chaos_knobs;
      chaos_offlined = [];
      chaos_last = "";
    }
  in
  let env =
    {
      Policy.Policy_intf.costs = cfg.costs;
      frames = t.frames;
      page_table_of =
        (fun asid ->
          if asid <> 0 then invalid_arg "Machine: unknown address space";
          t.pt);
      address_spaces = (fun () -> [ t.pt ]);
      rng = Engine.Rng.split rng;
      now = (fun () -> Engine.Sim.now t.sim);
      reclaim_page = (fun ~pfn -> reclaim_page t ~pfn);
      evictable = (fun ~pfn ~force -> evictable t ~pfn ~force);
      free_count = (fun () -> Mem.Phys_mem.free_count t.mem);
      total_frames = cfg.capacity_frames;
      low_watermark = Mem.Phys_mem.low_watermark t.mem;
      high_watermark = Mem.Phys_mem.high_watermark t.mem;
      obs;
      prof;
      vmstat = vm;
    }
  in
  if Prof.enabled prof then begin
    Engine.Cpu.set_hook t.cpu (fun phase ns -> Prof.on_cpu_charge prof phase ns);
    for tid = 0 to nthreads - 1 do
      Prof.register_thread prof ~tid
        ~name:(Printf.sprintf "app%d" tid)
        ~klass:Prof.App ~default:Prof.App_compute
    done
  end;
  let packed = policy env in
  t.policy <- Some packed;
  let (Policy.Policy_intf.Packed ((module P), p)) = packed in
  t.kthreads <-
    Array.of_list
      (List.mapi
         (fun i kt ->
           let ktid = nthreads + i in
           let kname = kt.Policy.Policy_intf.kname in
           (* Aging walkers default to the linear-walk phase; everything
              else (kswapd and kin) defaults to eviction scanning. *)
           let kphase =
             if kname = "lru_gen_aging" then Prof.Aging_walk
             else Prof.Evict_scan
           in
           Prof.register_thread prof ~tid:ktid ~name:kname ~klass:Prof.Kthread
             ~default:kphase;
           {
             kt;
             ktid;
             kphase;
             sleeping = false;
             kdrive = (fun () -> ());
             kwake = ignore;
           })
         (P.kthreads p));
  Array.iter
    (fun ks ->
      ks.kdrive <- make_driver t ks;
      ks.kwake <- (fun _ -> ks.kdrive ()))
    t.kthreads;
  t.restart_thread <- (fun tid -> run_thread t tid);
  Array.iter (fun ks -> Engine.Sim.schedule t.sim ~delay:0 ks.kwake) t.kthreads;
  for tid = 0 to nthreads - 1 do
    Engine.Sim.schedule t.sim ~delay:0 (fun _ -> run_thread t tid)
  done;
  (* Compile and schedule the chaos timeline.  [None] schedules nothing
     at all — zero extra events, zero extra RNG draws. *)
  let chaos_summary =
    match cfg.chaos with
    | None -> None
    | Some spec ->
      let cs = Chaos.fresh_summary () in
      List.iter
        (fun (time, action) ->
          Engine.Sim.schedule_at t.sim ~time (fun _ ->
              if not t.stopped then apply_chaos t cs action))
        (Chaos.events spec ~capacity:cfg.capacity_frames ~nthreads);
      Some cs
  in
  if cfg.audit_every_ns > 0 then begin
    let rec tick _ =
      if not t.stopped && t.active_threads > 0 then begin
        t.invariant_violations <-
          t.invariant_violations + List.length (audit t);
        Engine.Sim.schedule t.sim ~delay:cfg.audit_every_ns tick
      end
    in
    Engine.Sim.schedule t.sim ~delay:cfg.audit_every_ns tick
  end;
  (* PSI tick: fold stall intervals forward, publish per-cgroup Psi
     trace events, and drive the proactive (Senpai-style) probe.  Only
     scheduled when cgroups are on — a plain run has no extra events,
     no extra RNG draws, no extra CPU charges. *)
  (match t.mcg with
  | None -> ()
  | Some mg ->
    let every = Mem.Memcg.psi_interval_ns mg in
    let n = Mem.Memcg.ncgroups mg in
    let last_some = Array.make n 0 and last_full = Array.make n 0 in
    let rec tick _ =
      if not t.stopped && t.active_threads > 0 then begin
        let now = Engine.Sim.now t.sim in
        Mem.Memcg.advance mg ~now;
        for cg = 0 to n - 1 do
          let s = Mem.Memcg.psi_some mg cg and f = Mem.Memcg.psi_full mg cg in
          let limit =
            let l = Mem.Memcg.eff_limit mg cg in
            if l = max_int then -1 else l
          in
          Obs.emit t.obs ~t_ns:now
            (Obs.Psi
               {
                 cg = Mem.Memcg.name mg cg;
                 some_ns = s - last_some.(cg);
                 full_ns = f - last_full.(cg);
                 window_ns = every;
                 limit;
               });
          last_some.(cg) <- s;
          last_full.(cg) <- f
        done;
        if Mem.Memcg.proactive_on mg then
          for cg = 1 to n - 1 do
            let want, _pressure_ppm = Mem.Memcg.proactive_step mg cg in
            if want > 0 then memcg_background_reclaim t ~cg ~want ~now
          done;
        Engine.Sim.schedule t.sim ~delay:every tick
      end
    in
    Engine.Sim.schedule t.sim ~delay:every tick);
  (* DAMON-style region monitor: a recurring aggregation tick that
     reads (never clears) accessed bits and adapts its region layout.
     Pure observation on the simulated clock — it charges no CPU and
     draws no randomness, so results with the monitor on are identical
     to results with it off, and [None] schedules nothing at all. *)
  let damon =
    match cfg.damon with
    | None -> None
    | Some dcfg ->
      let d = Mem.Damon.create dcfg in
      let tables = [| t.pt |] in
      let every = Mem.Damon.aggregate_every_ns d in
      let rec tick _ =
        if not t.stopped && t.active_threads > 0 then begin
          Mem.Damon.tick d ~now:(Engine.Sim.now t.sim) ~tables;
          Engine.Sim.schedule t.sim ~delay:every tick
        end
      in
      Engine.Sim.schedule t.sim ~delay:every tick;
      Some d
  in
  let sample_every = Obs.sample_every_ns obs in
  if sample_every > 0 then begin
    (* Same recurring-tick shape as the audit above.  Counters named
       *_faults/swap_*/direct_reclaims are cumulative; refault_rate_per_s
       is the per-interval major-fault delta scaled to a rate. *)
    let last_major = ref 0 in
    let sample _ =
      let d_major = t.major_faults - !last_major in
      last_major := t.major_faults;
      let metrics =
        [
          ("free_frames", float_of_int (Mem.Phys_mem.free_count t.mem));
          ("resident", float_of_int (Mem.Page_table.resident t.pt));
          ("swap_used_slots",
           float_of_int (Swapdev.Swap_manager.used_slots t.swap));
          ("major_faults", float_of_int t.major_faults);
          ("minor_faults", float_of_int t.minor_faults);
          ("refault_rate_per_s",
           float_of_int d_major *. 1e9 /. float_of_int sample_every);
          ("swap_ins", float_of_int (Swapdev.Swap_manager.swap_ins t.swap));
          ("swap_outs", float_of_int (Swapdev.Swap_manager.swap_outs t.swap));
          ("direct_reclaims", float_of_int t.direct_reclaims);
          ("oom_kills", float_of_int t.oom_kills);
        ]
        @ List.map (fun (k, v) -> ("policy." ^ k, v)) (P.gauges p)
        @ (match t.mcg with
          | None -> []
          | Some mg ->
            Mem.Memcg.advance mg ~now:(Engine.Sim.now t.sim);
            ("psi.some_ns", float_of_int (Mem.Memcg.machine_some mg))
            :: ("psi.full_ns", float_of_int (Mem.Memcg.machine_full mg))
            :: List.concat
                 (List.init (Mem.Memcg.ncgroups mg) (fun cg ->
                      let pre = "memcg." ^ Mem.Memcg.name mg cg ^ "." in
                      [
                        (pre ^ "usage", float_of_int (Mem.Memcg.usage mg cg));
                        ( pre ^ "psi_some_ns",
                          float_of_int (Mem.Memcg.psi_some mg cg) );
                        ( pre ^ "psi_full_ns",
                          float_of_int (Mem.Memcg.psi_full mg cg) );
                        ( pre ^ "throttled_ns",
                          float_of_int (Mem.Memcg.throttled_ns mg cg) );
                      ])))
      in
      Obs.push_sample obs ~t_ns:(Engine.Sim.now t.sim) metrics
    in
    let rec tick _ =
      if not t.stopped && t.active_threads > 0 then begin
        sample ();
        Engine.Sim.schedule t.sim ~delay:sample_every tick
      end
    in
    Engine.Sim.schedule t.sim ~delay:sample_every tick
  end;
  Engine.Sim.run ~until:cfg.max_runtime_ns ~cancel:cfg.cancel t.sim;
  t.invariant_violations <- t.invariant_violations + List.length (audit t);
  let runtime =
    Array.fold_left (fun acc f -> max acc f) (Engine.Sim.now t.sim) t.finish_ns
  in
  {
    runtime_ns = runtime;
    major_faults = t.major_faults;
    minor_faults = t.minor_faults;
    swap_ins = Swapdev.Swap_manager.swap_ins t.swap;
    swap_outs = Swapdev.Swap_manager.swap_outs t.swap;
    direct_reclaims = t.direct_reclaims;
    direct_reclaim_ns = t.direct_reclaim_ns;
    read_latencies = Structures.Vec.to_array t.read_lat;
    write_latencies = Structures.Vec.to_array t.write_lat;
    per_thread_finish = Array.copy t.finish_ns;
    cpu_busy_ns = Engine.Cpu.busy_ns t.cpu;
    policy_stats = P.stats p;
    policy_name = P.policy_name;
    resident_at_end = Mem.Page_table.resident t.pt;
    io_retries = Swapdev.Swap_manager.io_retries t.swap;
    io_remaps = Swapdev.Swap_manager.io_remaps t.swap;
    injected_transient = t.fault_counters.Swapdev.Faulty_device.transient_errors;
    injected_permanent = t.fault_counters.Swapdev.Faulty_device.permanent_errors;
    injected_stalls = t.fault_counters.Swapdev.Faulty_device.stalls;
    injected_tail_spikes = t.fault_counters.Swapdev.Faulty_device.tail_spikes;
    poisoned_reads = t.poisoned_reads;
    writeback_failures = t.writeback_failures;
    oom_kills = t.oom_kills;
    oom_discarded_pages = t.oom_discarded;
    invariant_violations = t.invariant_violations;
    memcg = Option.map (fun mg -> Mem.Memcg.summary mg ~now:runtime) t.mcg;
    chaos = chaos_summary;
    trace = Obs.capture obs;
    profile = Prof.capture prof;
    vmstat = (if cfg.vmstat then Some (Obs.Vmstat.capture vm) else None);
    heatmap = Option.map Mem.Damon.capture damon;
  }
