let workloads = [ Runner.Tpch; Runner.Pagerank ]

(* Warm the trial cache for every (config-derived) policy in one pool
   batch, so a sweep's cells compute in parallel while the tables below
   still print in deterministic serial order. *)
let prefetch_policies ctx policies =
  Runner.prefetch ctx
    (List.concat_map
       (fun policy ->
         List.concat_map
           (fun workload ->
             Runner.cell_exps ctx ~workload ~policy ~ratio:0.5 ~swap:Runner.Ssd)
           workloads)
       policies)

(* A failed trial turns the cell's means into NaN, which the formatters
   in [row_of] render as "failed" — the sweep's other cells still
   print. *)
let cells ctx ~policy =
  List.map
    (fun workload ->
      let outcomes =
        Runner.try_cell ctx ~workload ~policy ~ratio:0.5 ~swap:Runner.Ssd
      in
      let results =
        List.filter_map
          (function Runner.Done r -> Some r | Runner.Failed _ -> None)
          outcomes
      in
      if List.length results < List.length outcomes then
        (workload, Float.nan, Float.nan)
      else (workload, Runner.mean_runtime_s results, Runner.mean_faults results))
    workloads

let sweep_table ~rows =
  let header =
    "configuration"
    :: List.concat_map
         (fun w ->
           [ Runner.workload_kind_name w ^ " rt"; Runner.workload_kind_name w ^ " faults" ])
         workloads
  in
  Report.table ~header rows

let row_of label cell_list =
  label
  :: List.concat_map
       (fun (_w, rt, faults) -> [ Report.fsec rt; Report.fcount faults ])
       cell_list

let mglru_sweep ctx ~label_of configs =
  let policies = List.map (fun c -> Policy.Registry.Mglru_custom c) configs in
  prefetch_policies ctx policies;
  List.map2
    (fun config policy -> row_of (label_of config) (cells ctx ~policy))
    configs policies

let generations ctx =
  Report.section "Ablation: generation-window cap (SSD, 50%)";
  let configs =
    List.map
      (fun max_gens -> { Policy.Mglru.default_config with Policy.Mglru.max_gens })
      [ 2; 4; 8; 16; 1 lsl 14 ]
  in
  prefetch_policies ctx
    (Policy.Registry.Clock
    :: List.map (fun c -> Policy.Registry.Mglru_custom c) configs);
  sweep_table
    ~rows:
      (row_of "clock (2 lists)" (cells ctx ~policy:Policy.Registry.Clock)
      :: mglru_sweep ctx
           ~label_of:(fun c ->
             Printf.sprintf "mglru max_gens=%d" c.Policy.Mglru.max_gens)
           configs);
  Report.note "Paper SV-B: the cap barely moves the means because promotion and";
  Report.note "eviction rules are unchanged - only the recency resolution grows."

let bloom_density ctx =
  Report.section "Ablation: Bloom-filter admission density (SSD, 50%)";
  let configs =
    List.map
      (fun shift ->
        { Policy.Mglru.default_config with Policy.Mglru.bloom_density_shift = shift })
      [ 0; 1; 3; 5 ]
  in
  sweep_table
    ~rows:
      (mglru_sweep ctx
         ~label_of:(fun c ->
           Printf.sprintf "density >= 1/%d of region"
             (1 lsl c.Policy.Mglru.bloom_density_shift))
         configs);
  Report.note "Shift 0 admits only fully-accessed regions (filter nearly empty);";
  Report.note "large shifts admit everything (converging on Scan-All behaviour)."

let spatial_scan ctx =
  Report.section "Ablation: eviction-side spatial scan (SSD, 50%)";
  let configs =
    [
      ("look-around on", { Policy.Mglru.default_config with Policy.Mglru.spatial_scan = true });
      ("look-around off", { Policy.Mglru.default_config with Policy.Mglru.spatial_scan = false });
    ]
  in
  prefetch_policies ctx
    (List.map (fun (_, config) -> Policy.Registry.Mglru_custom config) configs);
  sweep_table
    ~rows:
      (List.map
         (fun (label, config) ->
           row_of label (cells ctx ~policy:(Policy.Registry.Mglru_custom config)))
         configs);
  Report.note "Without the look-around, every rescue costs a full rmap walk - the";
  Report.note "Clock cost structure the paper says MG-LRU amortizes (SIII-C)."

let readahead ctx =
  Report.section "Ablation: swap readahead window (machine-level, SSD, 50%)";
  (* Readahead is a machine knob, so bypass the cached runner.  The
     (window, workload) grid still runs through the domain pool: results
     come back in input order, so the table is schedule-independent. *)
  let windows = [ 0; 2; 8; 32 ] in
  let grid =
    List.concat_map
      (fun window -> List.map (fun kind -> (window, kind)) workloads)
      windows
  in
  let run_one (window, kind) =
    let workload = Runner.make_workload ctx kind ~trial:0 in
    let footprint = Workload.Chunk.packed_footprint workload in
    let cfg =
      {
        (Machine.default_config
           ~capacity_frames:(footprint / 2)
           ~seed:4242)
        with
        Machine.readahead = window;
      }
    in
    let r =
      Machine.run cfg
        ~policy:(Policy.Registry.create Policy.Registry.Mglru_default)
        ~workload
    in
    ( kind,
      float_of_int r.Machine.runtime_ns /. 1e9,
      float_of_int r.Machine.major_faults )
  in
  let results =
    Engine.Pool.with_pool
      ~jobs:(min (Runner.jobs ctx) (List.length grid))
      (fun pool -> Engine.Pool.map_list pool run_one grid)
  in
  let per_window = List.length workloads in
  let rows =
    List.mapi
      (fun i window ->
        let cells = List.filteri (fun j _ -> j / per_window = i) results in
        row_of (Printf.sprintf "window=%d" window) cells)
      windows
  in
  sweep_table ~rows;
  Report.note "Sequential regions benefit; the per-zone success heuristic keeps";
  Report.note "random regions from being polluted even at large windows."

let scan_probability ctx =
  Report.section "Ablation: Scan-Rand probability (SSD, 50%)";
  let configs =
    List.map
      (fun p ->
        Policy.Mglru.with_mode (Policy.Mglru.Scan_rand p) Policy.Mglru.default_config)
      [ 0.1; 0.25; 0.5; 0.75; 0.9 ]
  in
  sweep_table
    ~rows:
      (mglru_sweep ctx
         ~label_of:(fun c ->
           match c.Policy.Mglru.scan_mode with
           | Policy.Mglru.Scan_rand p -> Printf.sprintf "p=%.2f" p
           | _ -> "?")
         configs);
  Report.note "The paper fixes p=0.5 and asks (SVI-C) whether principled randomness";
  Report.note "can replace the Bloom filter outright."

let run_all ctx =
  generations ctx;
  bloom_density ctx;
  spatial_scan ctx;
  readahead ctx;
  scan_probability ctx
