(** The [repro fuzz] soak driver: random configurations, short trials,
    machine-checkable oracles, and shrinking of failures to a minimal
    deterministic repro command line.

    Each iteration derives a configuration (workload, policy, ratio,
    swap medium, fault plan, optional cgroup spec, optional chaos spec)
    from the iteration-seeded RNG and runs it through four oracles, in
    order:

    + {b complete} — the trial finishes without raising;
    + {b invariants} — a 25 ms audit cadence reports zero violations
      (the test-only [corrupt:] injector exists to make this fire);
    + {b jobs-identity} — results and traced event streams are
      structurally identical at [--jobs 1] and [--jobs 4];
    + {b journal-roundtrip} — every result survives
      encode/decode/re-encode through {!Journal} byte-identically, and
      a warm-started fresh context serves back the identical record (the
      kill/resume path).

    A failing configuration is shrunk greedily — drop chaos segments one
    at a time, then the chaos spec, the cgroup spec, the fault plan,
    then default the swap/workload/policy/ratio — re-running the failed
    oracle at each step and keeping any smaller configuration that still
    fails it, to a fixpoint.  The minimal configuration prints as a
    [repro fuzz --config '...'] line that reproduces deterministically. *)

type config = {
  fz_workload : Runner.workload_kind;
  fz_policy : Policy.Registry.spec;
  fz_ratio : float;
  fz_swap : Runner.swap_medium;
  fz_faults : string;  (** fault plan name: none | light | heavy *)
  fz_cgroups : string option;  (** [--cgroups] spec string *)
  fz_chaos : string option;  (** [--chaos] spec string *)
}

val config_to_string : config -> string
(** Space-separated [k=v] encoding ([w= p= r= s= f= cg= ch=]); both
    spec grammars are space-free, so the line splits unambiguously. *)

val config_of_string : string -> (config, string) result

val check : config -> (string * string) option
(** Run every oracle against one configuration; [Some (oracle, detail)]
    for the first failure, [None] if all pass.  Raises [Failure] if the
    configuration's cgroup or chaos spec does not parse. *)

val shrink : config -> failing:string -> config
(** Greedy fixpoint shrink: the smallest derived configuration whose
    first failing oracle is still [failing]. *)

val run : seed:int -> iterations:int -> with_corrupt:bool -> int
(** The soak loop; returns the number of failing iterations.  Each
    failure prints its oracle, detail, and shrunken repro line.
    [with_corrupt] lets the sampler emit test-only [corrupt:] segments,
    which the invariants oracle must catch. *)

val replay : string -> int
(** [replay line] re-checks one encoded configuration (the [--config]
    flag); returns the number of failures (0 or 1).  Prints the verdict. *)
