(** The [repro chaos] resilience report.

    For each transient class x workload x policy cell, run one traced
    baseline trial to calibrate the cell's runtime R, synthesize a
    chaos spec whose disturbance window covers [0.3R, 0.55R] (rounded
    to milliseconds), re-run the trial under that spec, and report how
    the policy degraded and recovered:

    - demand-fault p99/p999 latency inside the window vs before/after,
    - time from the end of the window until the fault rate returns to
      within 25% of the pre-window steady state,
    - OOM kills, poisoned reads, and the injection tallies.

    Everything derives from cached deterministic trials and the traced
    event stream, so the report is byte-identical for every [--jobs]
    value. *)

val default_classes : string list
(** ["hotplug"; "degrade"; "churn"] — the resilience classes of the
    report (burst and corrupt are fuzzer fodder, not report rows). *)

val run :
  Runner.ctx ->
  classes:string list ->
  workloads:Runner.workload_kind list ->
  policies:Policy.Registry.spec list ->
  ratio:float ->
  swap:Runner.swap_medium ->
  unit
(** Print one section per class.  Raises [Invalid_argument] on an
    unknown class name. *)
