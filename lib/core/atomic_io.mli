(** Crash-safe file writing: write-to-temp, fsync, rename.

    Every result artifact the harness produces (figure CSVs, trace
    JSONL, sample CSVs, journal segments) goes through this module, so a
    crash — or an exception mid-write — can never leave a torn or
    half-written file under the destination name:

    - the data is written to [path ^ ".tmp.<pid>"] in the same
      directory;
    - the channel is flushed and fsynced, then atomically renamed over
      [path];
    - on exception the channel is closed and the partial temp file
      removed ([Fun.protect]), the original [path] untouched.

    Readers therefore observe either the previous complete file or the
    new complete file, never an intermediate state. *)

val replace : path:string -> (out_channel -> 'a) -> 'a
(** [replace ~path f] runs [f] on a channel to a temp file next to
    [path], then fsyncs and renames it over [path].  The callback's
    result is returned after the rename.  On exception, the temp file is
    removed and the exception re-raised; [path] is left as it was. *)

val fsync_out : out_channel -> unit
(** Flush the channel and fsync its file descriptor: the written bytes
    are durable (not merely in the page cache) when this returns. *)
