(* Multi-tenant containment experiment: N YCSB tenants of different
   temperatures (Workload.Multi) under per-tenant memory cgroups.  The
   hot tenant is a runaway — tighter zipf, double the requests, and a
   hard memory.max — so the question the table answers is the paper's
   graceful-degradation one: does the blast radius stay inside the hot
   tenant's cgroup while the neighbours keep their tails? *)

let tenant_name ~hot i = if i = hot then "hot" else Printf.sprintf "tenant%d" i

(* Auto spec when the CLI supplied none: each tenant (2 threads, laid
   out consecutively by Workload.Multi) gets its own cgroup.  The hot
   tenant is capped hard at ~40% of physical capacity with throttling
   from 30%; the neighbours get ~15% of reclaim protection each.  The
   proactive probe nudges the hot tenant's effective limit down while
   its PSI stays calm. *)
let default_spec ~tenants ~hot =
  {
    Mem.Memcg.groups =
      List.init tenants (fun i ->
          let base =
            {
              Mem.Memcg.g_name = tenant_name ~hot i;
              g_threads = [ (2 * i, (2 * i) + 1) ];
              g_low = None;
              g_high = None;
              g_max = None;
            }
          in
          if i = hot then
            {
              base with
              Mem.Memcg.g_high = Some (Mem.Memcg.Frac 0.30);
              g_max = Some (Mem.Memcg.Frac 0.40);
            }
          else { base with Mem.Memcg.g_low = Some (Mem.Memcg.Frac 0.15) });
    proactive =
      Some
        {
          Mem.Memcg.p_interval_ns = 100_000_000;
          p_threshold = 0.10;
          p_step = Mem.Memcg.Frac 0.01;
        };
    psi_interval_ns = 100_000_000;
  }

(* Pooled per-cgroup aggregates over a cell's successful trials, in
   group order (root first, like Memcg.summary). *)
type tenant_agg = {
  a_name : string;
  mutable a_usage : int;
  mutable a_throttles : int;
  mutable a_throttled_ns : int;
  mutable a_ooms : int;
  mutable a_some_ns : int;
  mutable a_full_ns : int;
  mutable a_reads : float array list;
}

let aggregate results =
  let groups : (string, tenant_agg) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let runtime = ref 0 in
  List.iter
    (fun (r : Machine.result) ->
      runtime := !runtime + r.Machine.runtime_ns;
      match r.Machine.memcg with
      | None -> ()
      | Some s ->
        List.iter
          (fun (g : Mem.Memcg.report) ->
            let a =
              match Hashtbl.find_opt groups g.Mem.Memcg.r_name with
              | Some a -> a
              | None ->
                let a =
                  {
                    a_name = g.Mem.Memcg.r_name;
                    a_usage = 0;
                    a_throttles = 0;
                    a_throttled_ns = 0;
                    a_ooms = 0;
                    a_some_ns = 0;
                    a_full_ns = 0;
                    a_reads = [];
                  }
                in
                Hashtbl.add groups g.Mem.Memcg.r_name a;
                order := a :: !order;
                a
            in
            a.a_usage <- a.a_usage + g.Mem.Memcg.r_usage;
            a.a_throttles <- a.a_throttles + g.Mem.Memcg.r_throttles;
            a.a_throttled_ns <- a.a_throttled_ns + g.Mem.Memcg.r_throttled_ns;
            a.a_ooms <- a.a_ooms + g.Mem.Memcg.r_oom_kills;
            a.a_some_ns <- a.a_some_ns + g.Mem.Memcg.r_psi_some_ns;
            a.a_full_ns <- a.a_full_ns + g.Mem.Memcg.r_psi_full_ns;
            a.a_reads <- g.Mem.Memcg.r_read_latencies :: a.a_reads)
          s.Mem.Memcg.s_groups)
    results;
  (List.rev !order, !runtime)

let run ctx ~tenants ~hot ~policy ~ratio ~swap =
  if tenants < 2 then invalid_arg "Fleet.run: need at least 2 tenants";
  if hot < 0 || hot >= tenants then invalid_arg "Fleet.run: hot out of range";
  let ctx =
    match Runner.cgroups ctx with
    | Some _ -> ctx
    | None -> Runner.with_cgroups ctx (default_spec ~tenants ~hot)
  in
  let workload = Runner.Fleet { fl_tenants = tenants; fl_hot = hot } in
  Report.section
    (Printf.sprintf "Fleet: %d tenants (hot=%d) / %s / %.0f%% / %s" tenants hot
       (Policy.Registry.name policy) (ratio *. 100.0) (Runner.swap_name swap));
  let outcomes = Runner.try_cell ctx ~workload ~policy ~ratio ~swap in
  let results =
    List.filter_map
      (function Runner.Done r -> Some r | Runner.Failed _ -> None)
      outcomes
  in
  let failed = List.length outcomes - List.length results in
  if failed > 0 then
    Report.note (Printf.sprintf "%d of %d trial(s) failed" failed (List.length outcomes));
  let aggs, runtime_ns = aggregate results in
  let psi stall =
    if runtime_ns <= 0 then "-"
    else
      Printf.sprintf "%.1f%%" (100.0 *. float_of_int stall /. float_of_int runtime_ns)
  in
  let q reads p =
    let pooled = Array.concat reads in
    if Array.length pooled = 0 then "-"
    else Report.fns (Stats.Percentile.quantile pooled p)
  in
  Report.table
    ~header:
      [
        "cgroup"; "usage"; "p50"; "p99"; "p999"; "throttles"; "throttled";
        "oom"; "psi_some"; "psi_full";
      ]
    (List.map
       (fun a ->
         [
           a.a_name;
           string_of_int (a.a_usage / max 1 (List.length results));
           q a.a_reads 0.5;
           q a.a_reads 0.99;
           q a.a_reads 0.999;
           string_of_int a.a_throttles;
           Report.fns (float_of_int a.a_throttled_ns);
           string_of_int a.a_ooms;
           psi a.a_some_ns;
           psi a.a_full_ns;
         ])
       aggs);
  (match results with
  | r :: _ ->
    Report.note
      (Printf.sprintf "mean runtime %s over %d trial(s); oom kills %d"
         (Report.fsec (Runner.mean_runtime_s results))
         (List.length results)
         (List.fold_left (fun n x -> n + x.Machine.oom_kills) 0 results));
    ignore r
  | [] -> ());
  outcomes
