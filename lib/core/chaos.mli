(** Deterministic chaos scheduler: the [--chaos SPEC] grammar, its
    validation, and compilation to a virtual-time action schedule.

    A spec composes runtime-transient injectors in the [--cgroups]
    segment style:

    {v
    SPEC     := segment (';' segment)*
    segment  := hotplug:at=T,shrink=A[,restore=T]
              | degrade:at=T,for=D[,latency=Nx][,errors=P][,wear=P]
              | churn:at=T,cg=NAME[,low=A][,high=A][,max=A]
              | burst:at=T,for=D[,threads=RANGES]
              | corrupt:at=T
    T, D     := ns integer, or float with us/ms/s suffix
    A        := page count, or percentage of capacity ('30%')
    P        := probability in 0..1
    RANGES   := LO-HI ('+'-joined, as in --cgroups threads=)
    v}

    Parsing rejects malformed fields, negative times, and overlapping
    same-class windows, with [1:COL:] positions (specs are single-line).
    This module is pure data — {!Machine} applies compiled {!action}s at
    their virtual times, so a (seed, config, spec) triple replays
    identically at any [--jobs]. *)

type amount =
  | Pages of int
  | Frac of float  (** fraction of capacity *)

type hotplug = {
  h_at : int;
  h_shrink : amount;
  h_restore : int option;  (** re-online time; [None] = never *)
}

type degrade = {
  d_at : int;
  d_for : int;
  d_latency : float;  (** service-time multiplier, >= 1 *)
  d_errors : float;   (** per-op transient error probability *)
  d_wear : float;     (** per-op permanent error probability *)
}

type churn = {
  c_at : int;
  c_cg : string;
  c_low : amount option;
  c_high : amount option;
  c_max : amount option;
}

type burst = {
  b_at : int;
  b_for : int;
  b_threads : (int * int) list;  (** inclusive tid ranges; [[]] = all *)
}

type injector =
  | Hotplug of hotplug
  | Degrade of degrade
  | Churn of churn
  | Burst of burst
  | Corrupt of { x_at : int }
      (** test-only: clear one mapped frame's owner at [x_at] — a
          deliberate invariant violation the fuzzer must detect *)

type spec = { injectors : injector list }

val parse_spec : string -> (spec, string) result
(** Errors read ["1:COL: message"], column 1-based. *)

val spec_to_string : spec -> string
(** Canonical rendering; [parse_spec (spec_to_string s) = Ok s] for any
    parseable [s]. *)

(** {1 Compiled schedule} *)

type action =
  | Offline of int  (** offline this many frames (migrate/reclaim off them) *)
  | Online of int   (** bring the most recently offlined frames back *)
  | Degrade_set of { latency : float; errors : float; wear : float }
  | Degrade_clear
  | Set_limits of {
      cg : string;
      low : int option;
      high : int option;
      max_limit : int option;
    }
  | Stall of { lo : int; hi : int; until : int }
  | Corrupt_frame

val events : spec -> capacity:int -> nthreads:int -> (int * action) list
(** Resolve amounts against [capacity] and thread ranges against
    [nthreads]; sorted by time, same-time actions in segment order. *)

val has_degrade : spec -> bool
(** Whether the machine needs to interpose {!Swapdev.Degraded_device}. *)

val has_churn : spec -> bool

val churn_cgs : spec -> string list
(** Cgroup names referenced by churn segments, in segment order. *)

val action_injector : action -> string
(** Segment class of an action: ["hotplug"], ["degrade"], ... *)

val action_label : action -> string
(** Human label for the trace stream and audit context. *)

(** {1 Run summary} *)

type summary = {
  mutable s_events : int;
  mutable s_offlined : int;
  mutable s_onlined : int;
  mutable s_migrated : int;
  mutable s_evicted : int;
  mutable s_skipped : int;
  mutable s_limit_updates : int;
  mutable s_device_phases : int;
  mutable s_stalled_threads : int;
  mutable s_corrupted : int;
}

val fresh_summary : unit -> summary

val summary_to_string : summary -> string
(** Compact single-line encoding for the result journal; inverse of
    {!summary_of_string}. *)

val summary_of_string : string -> summary option
