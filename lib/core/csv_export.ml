let quote field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

(* Atomic replacement (temp + fsync + rename): a crash mid-export can
   never leave a torn CSV where a complete one stood. *)
let write ~path ~header rows =
  Atomic_io.replace ~path (fun out ->
      let put row = output_string out (String.concat "," (List.map quote row) ^ "\n") in
      put header;
      List.iter put rows)

(* NaN marks a cell with failed trials; export it explicitly rather
   than as the platform's "nan" spelling. *)
let f x = if Float.is_nan x then Report.failed_marker else Printf.sprintf "%.6g" x

let wname = Runner.workload_kind_name

let pname = Policy.Registry.name

let specs = Policy.Registry.all_paper_specs

let norm_file ctx ~path ~metric ~base_policy ~ratio ~swap =
  let rows =
    List.concat_map
      (fun workload ->
        let base =
          Figures.cell ctx ~workload ~policy:base_policy ~ratio ~swap
        in
        List.map
          (fun policy ->
            let c = Figures.cell ctx ~workload ~policy ~ratio ~swap in
            [
              wname workload;
              pname policy;
              f (metric c /. Float.max 1e-9 (metric base));
            ])
          specs)
      Runner.all_workloads
  in
  write ~path ~header:[ "workload"; "policy"; "normalized" ] rows

let points_file ctx ~path ~policies =
  let rows =
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun policy ->
            let c = Figures.cell ctx ~workload ~policy ~ratio:0.5 ~swap:Runner.Ssd in
            List.mapi
              (fun trial o ->
                match o with
                | Runner.Done r ->
                  [
                    wname workload;
                    pname policy;
                    string_of_int trial;
                    f (float_of_int r.Machine.runtime_ns /. 1e9);
                    string_of_int r.Machine.major_faults;
                  ]
                | Runner.Failed _ ->
                  [
                    wname workload;
                    pname policy;
                    string_of_int trial;
                    Report.failed_marker;
                    Report.failed_marker;
                  ])
              c.Figures.outcomes)
          policies)
      [ Runner.Tpch; Runner.Pagerank ]
  in
  write ~path
    ~header:[ "workload"; "policy"; "trial"; "runtime_s"; "major_faults" ]
    rows

let tails_file ctx ~path ~ratio ~swap =
  let rows =
    List.concat_map
      (fun variant ->
        let workload = Runner.Ycsb variant in
        List.concat_map
          (fun policy ->
            let c = Figures.cell ctx ~workload ~policy ~ratio ~swap in
            if c.Figures.failed > 0 then
              List.map
                (fun op ->
                  wname workload :: pname policy :: op
                  :: List.init 6 (fun _ -> Report.failed_marker))
                [ "read"; "write" ]
            else begin
              let row op lat =
                if Array.length lat = 0 then []
                else begin
                  let t = Stats.Percentile.tail_of lat in
                  [
                    [
                      wname workload; pname policy; op;
                      f t.Stats.Percentile.p50; f t.Stats.Percentile.p90;
                      f t.Stats.Percentile.p99; f t.Stats.Percentile.p999;
                      f t.Stats.Percentile.p9999; f t.Stats.Percentile.max;
                    ];
                  ]
                end
              in
              row "read" (Runner.pooled_read_latencies c.Figures.results)
              @ row "write" (Runner.pooled_write_latencies c.Figures.results)
            end)
          Policy.Registry.[ Clock; Mglru_default ])
      Workload.Ycsb.[ A; B; C ]
  in
  write ~path
    ~header:
      [ "workload"; "policy"; "op"; "p50_ns"; "p90_ns"; "p99_ns"; "p999_ns";
        "p9999_ns"; "max_ns" ]
    rows

let box_file ctx ~path =
  let rows =
    List.concat_map
      (fun ratio ->
        List.concat_map
          (fun workload ->
            let base =
              Figures.cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio
                ~swap:Runner.Ssd
            in
            let norm = Float.max 1e-9 base.Figures.mean_faults in
            List.map
              (fun policy ->
                let c = Figures.cell ctx ~workload ~policy ~ratio ~swap:Runner.Ssd in
                if base.Figures.failed > 0 || c.Figures.failed > 0 then
                  f ratio :: wname workload :: pname policy
                  :: List.init 5 (fun _ -> Report.failed_marker)
                else begin
                  let fl = Array.map (fun x -> x /. norm) (Runner.faults c.Figures.results) in
                  let q1, q2, q3 = Stats.Percentile.quartiles fl in
                  let s = Stats.Summary.of_array fl in
                  [
                    f ratio; wname workload; pname policy;
                    f s.Stats.Summary.min; f q1; f q2; f q3; f s.Stats.Summary.max;
                  ]
                end)
              specs)
          [ Runner.Tpch; Runner.Pagerank ])
      [ 0.5; 0.75; 0.9 ]
  in
  write ~path
    ~header:[ "ratio"; "workload"; "policy"; "min"; "q1"; "median"; "q3"; "max" ]
    rows

let ratio_file ctx ~path =
  let rows =
    List.concat_map
      (fun ratio ->
        List.concat_map
          (fun workload ->
            let base =
              Figures.cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio
                ~swap:Runner.Ssd
            in
            List.map
              (fun policy ->
                let c = Figures.cell ctx ~workload ~policy ~ratio ~swap:Runner.Ssd in
                [
                  f ratio; wname workload; pname policy;
                  f (c.Figures.perf /. Float.max 1e-9 base.Figures.perf);
                ])
              specs)
          Runner.all_workloads)
      [ 0.75; 0.9 ]
  in
  write ~path ~header:[ "ratio"; "workload"; "policy"; "normalized_perf" ] rows

let zram_vs_ssd_file ctx ~path =
  let rows =
    List.map
      (fun workload ->
        let ssd =
          Figures.cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio:0.5
            ~swap:Runner.Ssd
        in
        let zr =
          Figures.cell ctx ~workload ~policy:Policy.Registry.Mglru_default ~ratio:0.5
            ~swap:Runner.Zram
        in
        [
          wname workload;
          f (Figures.cell_mean_runtime zr
             /. Float.max 1e-9 (Figures.cell_mean_runtime ssd));
          f (zr.Figures.mean_faults /. Float.max 1e-9 ssd.Figures.mean_faults);
        ])
      Runner.all_workloads
  in
  write ~path
    ~header:[ "workload"; "runtime_zram_over_ssd"; "faults_zram_over_ssd" ]
    rows

let export_all ctx ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* One bulk parallel prefetch of every figure's grid; the writers
     below then read the warm cache serially. *)
  Figures.prefetch ctx (List.init 12 (fun i -> i + 1));
  let p name = Filename.concat dir name in
  (* fig1: vs clock at ssd/50 *)
  norm_file ctx ~path:(p "fig1.csv") ~metric:(fun c -> c.Figures.perf)
    ~base_policy:Policy.Registry.Clock ~ratio:0.5 ~swap:Runner.Ssd;
  points_file ctx ~path:(p "fig2_points.csv")
    ~policies:Policy.Registry.[ Clock; Mglru_default ];
  tails_file ctx ~path:(p "fig3_tails.csv") ~ratio:0.5 ~swap:Runner.Ssd;
  norm_file ctx ~path:(p "fig4.csv") ~metric:(fun c -> c.Figures.perf)
    ~base_policy:Policy.Registry.Mglru_default ~ratio:0.5 ~swap:Runner.Ssd;
  points_file ctx ~path:(p "fig5_points.csv")
    ~policies:
      Policy.Registry.[ Mglru_default; Gen14; Scan_all; Scan_none; Scan_rand 0.5 ];
  ratio_file ctx ~path:(p "fig6.csv");
  box_file ctx ~path:(p "fig7_box.csv");
  tails_file ctx ~path:(p "fig8_tails.csv") ~ratio:0.75 ~swap:Runner.Ssd;
  norm_file ctx ~path:(p "fig9.csv") ~metric:(fun c -> c.Figures.perf)
    ~base_policy:Policy.Registry.Mglru_default ~ratio:0.5 ~swap:Runner.Zram;
  norm_file ctx ~path:(p "fig10.csv") ~metric:(fun c -> c.Figures.mean_faults)
    ~base_policy:Policy.Registry.Mglru_default ~ratio:0.5 ~swap:Runner.Zram;
  zram_vs_ssd_file ctx ~path:(p "fig11.csv");
  tails_file ctx ~path:(p "fig12_tails.csv") ~ratio:0.5 ~swap:Runner.Zram
