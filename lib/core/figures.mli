(** Reproductions of the paper's Figures 1-12.

    Each [figN] runs (or fetches from the {!Runner.ctx} trial cache) the
    grid cells the corresponding figure needs and prints the same series
    the paper plots: normalized means, joint runtime/fault
    distributions, tail latencies, quartile boxes.  [run_all]
    regenerates the entire evaluation section.  EXPERIMENTS.md records
    the paper-vs-measured comparison for every figure.

    {!run} first {!prefetch}es the figure's whole grid through the
    context's domain pool, then prints serially from the cache — so the
    bytes a figure emits are identical for every [Runner.jobs] value.

    Numeric data is also returned so tests and the bench harness can
    assert the paper's qualitative shapes without re-parsing text. *)

type cell = {
  workload : Runner.workload_kind;
  policy : Policy.Registry.spec;
  ratio : float;
  swap : Runner.swap_medium;
  outcomes : Runner.trial_outcome list;
      (** every trial's outcome, in trial order *)
  results : Machine.result list;
      (** the successful ([Done]) results only, in trial order *)
  failed : int;  (** how many trials raised or timed out *)
  perf : float;
      (** mean runtime (s) for TPC-H/PageRank; mean request latency (ns)
          for YCSB — the metric Figure 1 normalizes.  NaN if any trial
          failed: arithmetic on a failed cell stays NaN and the
          formatters render it as "failed", so a failure can never hide
          inside a partial mean *)
  mean_faults : float;  (** NaN if any trial failed, like [perf] *)
}

val cell :
  Runner.ctx -> workload:Runner.workload_kind -> policy:Policy.Registry.spec ->
  ratio:float -> swap:Runner.swap_medium -> cell
(** Runs (or fetches) the cell's trials failure-tolerantly
    ({!Runner.try_cell}): failed trials surface in [outcomes]/[failed],
    never as an exception. *)

val cell_mean_runtime : cell -> float
(** Mean runtime over the cell's trials; NaN if any trial failed. *)

val all_figures : int list
(** [1; 2; ...; 12]. *)

val cells_of_figure :
  int ->
  (Runner.workload_kind * Policy.Registry.spec * float * Runner.swap_medium) list
(** The grid cells figure [n] reads, in deterministic order.
    @raise Invalid_argument outside 1-12. *)

val prefetch : Runner.ctx -> int list -> unit
(** Compute every listed figure's uncached cells through the context's
    domain pool (deduplicated across figures). *)

val fig1 : Runner.ctx -> (string * float * float) list
(** [(workload, mglru_perf/clock_perf, mglru_faults/clock_faults)] —
    SSD, 50 % ratio. *)

val fig2 : Runner.ctx -> unit

val fig3 : Runner.ctx -> unit

val fig4 : Runner.ctx -> (string * string * float * float) list
(** [(workload, variant, perf/default, faults/default)]. *)

val fig5 : Runner.ctx -> unit

val fig6 : Runner.ctx -> unit

val fig7 : Runner.ctx -> unit

val fig8 : Runner.ctx -> unit

val fig9 : Runner.ctx -> (string * string * float) list
(** [(workload, policy, perf/mglru)] under ZRAM at 50 %. *)

val fig10 : Runner.ctx -> (string * string * float) list

val fig11 : Runner.ctx -> (string * float * float) list
(** [(workload, runtime_zram/runtime_ssd, faults_zram/faults_ssd)] for
    default MG-LRU. *)

val fig12 : Runner.ctx -> unit

val run : Runner.ctx -> int -> unit
(** Prefetch and run one figure by number.
    @raise Invalid_argument outside 1-12. *)

val run_all : Runner.ctx -> unit
(** Bulk-prefetch the union of every figure's grid, then print all 12
    figures in order. *)
