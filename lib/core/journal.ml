type status = Trial_ok | Trial_failed | Trial_timeout

type record = {
  key : string;
  status : status;
  reason : string;
  result : Machine.result option;
}

let status_name = function
  | Trial_ok -> "ok"
  | Trial_failed -> "failed"
  | Trial_timeout -> "timeout"

let status_of_name = function
  | "ok" -> Some Trial_ok
  | "failed" -> Some Trial_failed
  | "timeout" -> Some Trial_timeout
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Result (de)serialization.  Scalars are JSON ints; arrays are space- *)
(* joined strings — floats in %h (hex) form so latencies round-trip    *)
(* bit-exactly and a resumed sweep stays byte-identical to an          *)
(* uninterrupted one.  policy_stats keys are identifier-like by        *)
(* convention, so "k=v;k=v" needs no quoting.                          *)
(* ------------------------------------------------------------------ *)

let floats_to_s a =
  String.concat " " (List.map (Printf.sprintf "%h") (Array.to_list a))

let floats_of_s s =
  if s = "" then [||]
  else Array.of_list (List.map float_of_string (String.split_on_char ' ' s))

let ints_to_s a = String.concat " " (List.map string_of_int (Array.to_list a))

let ints_of_s s =
  if s = "" then [||]
  else Array.of_list (List.map int_of_string (String.split_on_char ' ' s))

let stats_to_s l =
  String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) l)

let stats_of_s s =
  if s = "" then []
  else
    List.map
      (fun kv ->
        let i = String.index kv '=' in
        ( String.sub kv 0 i,
          int_of_string (String.sub kv (i + 1) (String.length kv - i - 1)) ))
      (String.split_on_char ';' s)

let result_fields (r : Machine.result) =
  [
    ("runtime_ns", Obs.Int r.runtime_ns);
    ("major_faults", Obs.Int r.major_faults);
    ("minor_faults", Obs.Int r.minor_faults);
    ("swap_ins", Obs.Int r.swap_ins);
    ("swap_outs", Obs.Int r.swap_outs);
    ("direct_reclaims", Obs.Int r.direct_reclaims);
    ("direct_reclaim_ns", Obs.Int r.direct_reclaim_ns);
    ("read_latencies", Obs.Str (floats_to_s r.read_latencies));
    ("write_latencies", Obs.Str (floats_to_s r.write_latencies));
    ("per_thread_finish", Obs.Str (ints_to_s r.per_thread_finish));
    ("cpu_busy_ns", Obs.Int r.cpu_busy_ns);
    ("policy_stats", Obs.Str (stats_to_s r.policy_stats));
    ("policy_name", Obs.Str r.policy_name);
    ("resident_at_end", Obs.Int r.resident_at_end);
    ("io_retries", Obs.Int r.io_retries);
    ("io_remaps", Obs.Int r.io_remaps);
    ("injected_transient", Obs.Int r.injected_transient);
    ("injected_permanent", Obs.Int r.injected_permanent);
    ("injected_stalls", Obs.Int r.injected_stalls);
    ("injected_tail_spikes", Obs.Int r.injected_tail_spikes);
    ("poisoned_reads", Obs.Int r.poisoned_reads);
    ("writeback_failures", Obs.Int r.writeback_failures);
    ("oom_kills", Obs.Int r.oom_kills);
    ("oom_discarded_pages", Obs.Int r.oom_discarded_pages);
    ("invariant_violations", Obs.Int r.invariant_violations);
  ]
  (* Emitted only when present so profiler-off journals stay
     byte-identical to builds without the profiler.  Spans are dropped
     by the encoding (the runner never warm-starts span-bearing runs). *)
  @ (match r.profile with
    | None -> []
    | Some cap -> [ ("profile", Obs.Str (Obs.Prof.encode_capture cap)) ])
  (* Same pattern for the cgroup summary: absent without [--cgroups]. *)
  @ (match r.memcg with
    | None -> []
    | Some s -> [ ("cgroups", Obs.Str (Mem.Memcg.summary_to_string s)) ])
  (* And for the chaos tallies: absent without [--chaos]. *)
  @ (match r.chaos with
    | None -> []
    | Some s -> [ ("chaos", Obs.Str (Chaos.summary_to_string s)) ])
  (* And for the vmstat counters: absent unless [config.vmstat] was
     set, so telemetry-off journals are byte-identical to builds
     without the counter registry.  The heatmap is stripped like the
     trace — region rows are bulky and the runner never warm-starts
     monitor-bearing runs. *)
  @ (match r.vmstat with
    | None -> []
    | Some cap -> [ ("vmstat", Obs.Str (Obs.Vmstat.encode_capture cap)) ])

exception Decode of string

let req fields name =
  match Obs.field fields name with
  | Some v -> v
  | None -> raise (Decode (Printf.sprintf "missing field %S" name))

let req_int fields name =
  match Obs.field_int fields name with
  | Some v -> v
  | None -> raise (Decode (Printf.sprintf "missing int field %S" name))

let req_str fields name =
  match req fields name with
  | Obs.Str s -> s
  | _ -> raise (Decode (Printf.sprintf "field %S is not a string" name))

let result_of_fields fields : Machine.result =
  let int = req_int fields and str = req_str fields in
  {
    runtime_ns = int "runtime_ns";
    major_faults = int "major_faults";
    minor_faults = int "minor_faults";
    swap_ins = int "swap_ins";
    swap_outs = int "swap_outs";
    direct_reclaims = int "direct_reclaims";
    direct_reclaim_ns = int "direct_reclaim_ns";
    read_latencies = floats_of_s (str "read_latencies");
    write_latencies = floats_of_s (str "write_latencies");
    per_thread_finish = ints_of_s (str "per_thread_finish");
    cpu_busy_ns = int "cpu_busy_ns";
    policy_stats = stats_of_s (str "policy_stats");
    policy_name = str "policy_name";
    resident_at_end = int "resident_at_end";
    io_retries = int "io_retries";
    io_remaps = int "io_remaps";
    injected_transient = int "injected_transient";
    injected_permanent = int "injected_permanent";
    injected_stalls = int "injected_stalls";
    injected_tail_spikes = int "injected_tail_spikes";
    poisoned_reads = int "poisoned_reads";
    writeback_failures = int "writeback_failures";
    oom_kills = int "oom_kills";
    oom_discarded_pages = int "oom_discarded_pages";
    invariant_violations = int "invariant_violations";
    memcg =
      (match Obs.field_string fields "cgroups" with
      | None -> None
      | Some s -> (
        match Mem.Memcg.summary_of_string s with
        | Some _ as sm -> sm
        | None -> raise (Decode "malformed cgroups summary")));
    chaos =
      (match Obs.field_string fields "chaos" with
      | None -> None
      | Some s -> (
        match Chaos.summary_of_string s with
        | Some _ as cs -> cs
        | None -> raise (Decode "malformed chaos summary")));
    trace = None;
    profile =
      (match Obs.field_string fields "profile" with
      | None -> None
      | Some s -> (
        try Some (Obs.Prof.decode_capture s)
        with Failure msg -> raise (Decode msg)));
    vmstat =
      (match Obs.field_string fields "vmstat" with
      | None -> None
      | Some s -> (
        try Some (Obs.Vmstat.decode_capture s)
        with Failure msg -> raise (Decode msg)));
    heatmap = None;
  }

(* ------------------------------------------------------------------ *)
(* Line framing: {"sum":"<32 hex md5>",<payload>  where the digest     *)
(* covers everything after the 42-byte prefix.  The whole line is      *)
(* still one flat JSON object, so Obs.parse_line reads it unchanged.   *)
(* ------------------------------------------------------------------ *)

let frame_prefix = "{\"sum\":\""
let frame_prefix_len = String.length frame_prefix (* 8 *)
let digest_hex_len = 32
let payload_start = frame_prefix_len + digest_hex_len + 2 (* quote+comma = 42 *)

let frame payload =
  let sum = Digest.to_hex (Digest.string payload) in
  String.concat "" [ frame_prefix; sum; "\","; payload ]

let unframe line =
  let len = String.length line in
  if len <= payload_start then Error "truncated record (framing)"
  else if
    String.sub line 0 frame_prefix_len <> frame_prefix
    || line.[payload_start - 2] <> '"'
    || line.[payload_start - 1] <> ','
  then Error "malformed checksum framing"
  else
    let sum = String.sub line frame_prefix_len digest_hex_len in
    let payload = String.sub line payload_start (len - payload_start) in
    if Digest.to_hex (Digest.string payload) <> String.lowercase_ascii sum then
      Error "checksum mismatch (torn or corrupt record)"
    else Ok payload

let record_to_line r =
  let fields =
    ("key", Obs.Str r.key)
    :: ("status", Obs.Str (status_name r.status))
    :: ("reason", Obs.Str r.reason)
    :: (match r.result with Some res -> result_fields res | None -> [])
  in
  let obj = Obs.json_object fields in
  (* Drop the opening brace: the frame supplies it ahead of "sum". *)
  frame (String.sub obj 1 (String.length obj - 1))

let record_of_line line =
  match unframe line with
  | Error _ as e -> e
  | Ok _ -> (
    match Obs.parse_line line with
    | Error e -> Error e
    | Ok fields -> (
      try
        let key = req_str fields "key" in
        let status =
          match status_of_name (req_str fields "status") with
          | Some s -> s
          | None -> raise (Decode "unknown status")
        in
        let reason = req_str fields "reason" in
        let result =
          match status with
          | Trial_ok -> Some (result_of_fields fields)
          | Trial_failed | Trial_timeout -> None
        in
        Ok { key; status; reason; result }
      with Decode msg -> Error msg))

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

(* Last occurrence of a key wins: a resumed run's retry of a previously
   failed trial supersedes the failure record. *)
let dedup_last records =
  let seen = Hashtbl.create 64 in
  List.rev
    (List.filter
       (fun r ->
         if Hashtbl.mem seen r.key then false
         else begin
           Hashtbl.add seen r.key ();
           true
         end)
       (List.rev records))

let load ~path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let records = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lineno = ref 0 in
        let offset = ref 0 in
        try
          while true do
            let line = input_line ic in
            incr lineno;
            (match record_of_line line with
            | Ok r -> records := r :: !records
            | Error msg ->
              Printf.eprintf
                "journal: %s: skipping invalid record at line %d (byte \
                 offset %d): %s\n\
                 %!"
                path !lineno !offset msg);
            offset := !offset + String.length line + 1
          done
        with End_of_file -> ());
    dedup_last (List.rev !records)
  end

(* ------------------------------------------------------------------ *)
(* Handles                                                             *)
(* ------------------------------------------------------------------ *)

type t = { oc : out_channel; lock : Mutex.t; mutable closed : bool }

let open_ ~path ~resume =
  let records = if resume then load ~path else [] in
  (* Rewrite the compacted segment atomically, then append to it: the
     file on disk is wholly valid (no torn tail, no duplicates) from the
     first new append on.  A fresh / non-resume open writes an empty
     segment, replacing any previous journal. *)
  Atomic_io.replace ~path (fun oc ->
      List.iter
        (fun r ->
          output_string oc (record_to_line r);
          output_char oc '\n')
        records);
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  ({ oc; lock = Mutex.create (); closed = false }, records)

let append t r =
  let line = record_to_line r in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      Atomic_io.fsync_out t.oc)

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc
  end;
  Mutex.unlock t.lock
