(** The multi-tenant containment experiment behind [repro fleet].

    Runs a {!Runner.Fleet} cell — [tenants] YCSB instances sharing one
    machine, tenant [hot] a runaway — under per-tenant memory cgroups,
    and prints a per-cgroup table: mean resident usage, pooled request
    latency tail (p50/p99/p999), throttle and scoped-OOM counters, and
    PSI some/full as shares of total simulated time. *)

val tenant_name : hot:int -> int -> string
(** ["hot"] for the hot tenant, ["tenant<i>"] otherwise — the cgroup
    names {!default_spec} assigns. *)

val default_spec : tenants:int -> hot:int -> Mem.Memcg.spec
(** The auto spec used when the context carries none: one cgroup per
    tenant (threads [2i, 2i+1]); the hot tenant throttled from 30% and
    hard-capped at 40% of capacity, the others protected by a 15%
    [memory.low]; Senpai-style proactive probe on (100 ms interval,
    0.10 PSI threshold, 1% step). *)

val run :
  Runner.ctx ->
  tenants:int ->
  hot:int ->
  policy:Policy.Registry.spec ->
  ratio:float ->
  swap:Runner.swap_medium ->
  Runner.trial_outcome list
(** Run (and print) the cell; returns the per-trial outcomes so callers
    can exit non-zero on failures.  When the context has no cgroup spec
    installed, {!default_spec} is applied via {!Runner.with_cgroups}.
    @raise Invalid_argument on [tenants < 2] or [hot] out of range. *)
