let run_one ctx ~workload ~policy ~fast_frac ~trial =
  let w = Runner.make_workload ctx workload ~trial in
  let footprint = Workload.Chunk.packed_footprint w in
  let fast = max 64 (int_of_float (float_of_int footprint *. fast_frac)) in
  let slow = footprint - fast + (footprint / 10) in
  let cfg =
    Tiering.Tier_machine.default_config ~fast_frames:fast ~slow_frames:slow
      ~seed:(1_000_003 * (trial + 1))
  in
  Tiering.Tier_machine.run cfg
    ~policy:(Tiering.Tier_registry.create policy)
    ~workload:w

let study_workloads = [ Runner.Tpch; Runner.Pagerank; Runner.Ycsb Workload.Ycsb.B ]

let study ?(fast_frac = 0.5) ?(trials = 3) ctx () =
  Report.section
    (Printf.sprintf "Tiered memory study: fast tier = %.0f%% of footprint"
       (fast_frac *. 100.0));
  Report.note
    "Runtime, slow-tier access share and migration traffic per policy; no";
  Report.note "swap device - every touch completes, slow ones just cost more.";
  (* The whole workload x policy x trial grid runs through the domain
     pool in one batch; each trial builds its own workload and tier
     machine, so cells are independent.  Results come back in input
     order and feed the serial table pass below. *)
  let grid =
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun policy ->
            List.init trials (fun trial -> (workload, policy, trial)))
          Tiering.Tier_registry.all)
      study_workloads
  in
  let all_results =
    Engine.Pool.with_pool
      ~jobs:(min (Runner.jobs ctx) (List.length grid))
      (fun pool ->
        Engine.Pool.map_list pool
          (fun (workload, policy, trial) ->
            run_one ctx ~workload ~policy ~fast_frac ~trial)
          grid)
  in
  let results_of =
    let tbl = Hashtbl.create 16 in
    List.iter2
      (fun (workload, policy, _trial) r ->
        let key = (workload, Tiering.Tier_registry.name policy) in
        Hashtbl.replace tbl key
          (match Hashtbl.find_opt tbl key with
          | Some rs -> rs @ [ r ]
          | None -> [ r ]))
      grid all_results;
    fun workload policy ->
      match Hashtbl.find_opt tbl (workload, Tiering.Tier_registry.name policy) with
      | Some rs -> rs
      | None -> []
  in
  List.iter
    (fun workload ->
      Report.subsection (Runner.workload_kind_name workload);
      let rows =
        List.map
          (fun policy ->
            let results = results_of workload policy in
            let mean f =
              List.fold_left (fun acc r -> acc +. f r) 0.0 results
              /. float_of_int trials
            in
            [
              Tiering.Tier_registry.name policy;
              Report.fsec
                (mean (fun r ->
                     float_of_int r.Tiering.Tier_machine.runtime_ns /. 1e9));
              Printf.sprintf "%.1f%%"
                (100.0 *. mean Tiering.Tier_machine.slow_fraction);
              Report.fcount
                (mean (fun r -> float_of_int r.Tiering.Tier_machine.promotions));
              Report.fcount
                (mean (fun r -> float_of_int r.Tiering.Tier_machine.demotions));
              Report.fcount
                (mean (fun r -> float_of_int r.Tiering.Tier_machine.hint_faults));
              Report.fcount
                (mean (fun r ->
                     float_of_int r.Tiering.Tier_machine.failed_promotions));
            ])
          Tiering.Tier_registry.all
      in
      Report.table
        ~header:
          [ "policy"; "runtime"; "slow touches"; "promotions"; "demotions";
            "hint faults"; "failed promo" ]
        rows)
    study_workloads;
  Report.note
    "Expected shape (paper SII-C): static pins whatever loaded first;";
  Report.note
    "autonuma promotes but cannot demote, so it stalls once the fast tier";
  Report.note
    "fills (failed promotions); thermostat and tpp keep migrating and hold";
  Report.note "the lowest slow-touch share."
