(** Belady regret scoreboard: demand faults over the offline optimum.

    The standing comparison surface every policy — builtin or guest —
    lands on: for each workload x pressure cell, the mean demand-fault
    count of the online policy divided by the mean refetch count of
    Belady's OPT on a deterministically derived reference trace of the
    same seeded workload instances.  Rides the {!Runner} cache/journal/
    jobs machinery, so `repro regret` output is byte-identical for every
    [--jobs] value. *)

type cell = {
  c_workload : Runner.workload_kind;
  c_policy : Policy.Registry.spec;
  c_ratio : float;
  c_trials : int;
  c_failed : int;  (** trials that raised or timed out *)
  c_policy_faults : float;  (** mean major faults; NaN if all failed *)
  c_belady_faults : float;  (** mean Belady refetches (faults - cold) *)
  c_regret : float;  (** [c_policy_faults /. c_belady_faults] *)
}

val default_policies : Policy.Registry.spec list
(** Scoreboard default: clock, mglru, s3-fifo, sieve, perceptron. *)

val default_workloads : Runner.workload_kind list
(** TPC-H and PageRank. *)

val default_ratios : float list
(** 50% and 90% memory pressure. *)

val reference_trace : Workload.Chunk.packed -> int array
(** Dry-run a fresh workload instance into a page-reference string:
    threads interleaved round-robin at chunk granularity, rendezvousing
    at barriers.  Consumes the instance — pass a freshly made one. *)

val capacity_for : footprint:int -> ratio:float -> int
(** The machine-sizing formula the runner uses, exposed so Belady runs
    against exactly the cell's frame count. *)

val compute :
  Runner.ctx ->
  workloads:Runner.workload_kind list ->
  policies:Policy.Registry.spec list ->
  ratios:float list ->
  swap:Runner.swap_medium ->
  cell list
(** Prefetch the whole grid through the ctx pool, then assemble cells
    serially (workload-major, then ratio, then policy) — deterministic
    for every [jobs] value. *)

val print : swap:Runner.swap_medium -> cell list -> unit
