(* The [repro chaos] resilience report: calibrate each cell's runtime
   with a traced baseline trial, inject one transient class into the
   [0.3R, 0.55R] window, and measure degradation and recovery from the
   deterministic trace stream.  Every number comes from cached trials
   read back serially, so the report is byte-identical across --jobs. *)

let default_classes = [ "hotplug"; "degrade"; "churn" ]

let ms = 1_000_000

(* Window edges snap to whole milliseconds so the spec strings in the
   report stay readable ("12ms", not "12345678ns"). *)
let round_to_ms t = max ms (t / ms * ms)

let traced_obs = { Obs.trace = true; sample_every_ns = 0 }

(* The limit-churn class needs a cgroup to churn: one group covering
   every thread of the workload, initially unlimited. *)
let app_cgroups nthreads : Mem.Memcg.spec =
  {
    groups =
      [
        {
          Mem.Memcg.g_name = "app";
          g_threads = [ (0, max 0 (nthreads - 1)) ];
          g_low = None;
          g_high = None;
          g_max = None;
        };
      ];
    proactive = None;
    psi_interval_ns = 100_000_000;
  }

(* One synthesized spec per (class, calibrated runtime).  The window is
   [w_start, w_end); churn is a pair of instantaneous limit rewrites at
   the window edges (clamp to half capacity, then release). *)
let spec_for ~klass ~w_start ~w_end : Chaos.spec =
  match klass with
  | "hotplug" ->
    {
      Chaos.injectors =
        [
          Chaos.Hotplug
            { h_at = w_start; h_shrink = Chaos.Frac 0.4; h_restore = Some w_end };
        ];
    }
  | "degrade" ->
    {
      Chaos.injectors =
        [
          Chaos.Degrade
            {
              d_at = w_start;
              d_for = w_end - w_start;
              d_latency = 8.0;
              d_errors = 0.02;
              d_wear = 0.0;
            };
        ];
    }
  | "churn" ->
    {
      Chaos.injectors =
        [
          Chaos.Churn
            {
              c_at = w_start;
              c_cg = "app";
              c_low = None;
              c_high = None;
              c_max = Some (Chaos.Frac 0.5);
            };
          Chaos.Churn
            {
              c_at = w_end;
              c_cg = "app";
              c_low = None;
              c_high = None;
              c_max = Some (Chaos.Frac 1.0);
            };
        ];
    }
  | k -> raise (Invalid_argument (Printf.sprintf "no chaos class %S" k))

(* Demand-fault (swap read) completions from the traced event stream:
   (t_ns, latency_ns) in emit order. *)
let fault_events (r : Machine.result) =
  match r.Machine.trace with
  | None -> [||]
  | Some cap ->
    let out = ref [] in
    Array.iter
      (fun (t, ev) ->
        match ev with
        | Obs.Swap_read { latency_ns; failed = false; _ } ->
          out := (t, float_of_int latency_ns) :: !out
        | _ -> ())
      cap.Obs.events;
    Array.of_list (List.rev !out)

let latencies_in events ~lo ~hi =
  Array.of_list
    (List.filter_map
       (fun (t, l) -> if t >= lo && t < hi then Some l else None)
       (Array.to_list events))

let p events ~lo ~hi q =
  let xs = latencies_in events ~lo ~hi in
  if Array.length xs = 0 then Float.nan else Stats.Percentile.quantile xs q

(* Events per second over [lo, hi). *)
let rate events ~lo ~hi =
  if hi <= lo then 0.0
  else
    float_of_int (Array.length (latencies_in events ~lo ~hi))
    /. (float_of_int (hi - lo) /. 1e9)

(* Time from the end of the window until the first slice whose fault
   rate is back within 25% of the pre-window steady state; NaN if the
   run ends still degraded. *)
let recovery_ns events ~w_end ~runtime ~slice ~pre_rate =
  let target = (pre_rate *. 1.25) +. 1e-9 in
  let rec scan k =
    let lo = w_end + (k * slice) in
    if lo >= runtime then Float.nan
    else
      let hi = min runtime (lo + slice) in
      if rate events ~lo ~hi <= target then float_of_int (lo - w_end)
      else scan (k + 1)
  in
  scan 0

let fms ns =
  if Float.is_nan ns then "failed" else Printf.sprintf "%.1fms" (ns /. 1e6)

let run ctx ~classes ~workloads ~policies ~ratio ~swap =
  List.iter
    (fun klass ->
      if not (List.mem klass default_classes) then
        raise (Invalid_argument (Printf.sprintf "no chaos class %S" klass)))
    classes;
  (* Baseline trials calibrate R per cell; shared across classes. *)
  let base_ctx = Runner.with_chaos ~obs:traced_obs ctx None in
  let cells =
    List.concat_map
      (fun w -> List.map (fun p -> (w, p)) policies)
      workloads
  in
  Runner.prefetch base_ctx
    (List.map
       (fun (workload, policy) ->
         { Runner.workload; policy; ratio; swap; trial = 0 })
       cells);
  List.iter
    (fun klass ->
      Report.section
        (Printf.sprintf "Chaos: %s transients at %.0f%% / %s" klass
           (ratio *. 100.0) (Runner.swap_name swap));
      let rows =
        List.map
          (fun (workload, policy) ->
            let exp = { Runner.workload; policy; ratio; swap; trial = 0 } in
            let name =
              Printf.sprintf "%s/%s"
                (Runner.workload_kind_name workload)
                (Policy.Registry.name policy)
            in
            match Runner.try_exp base_ctx exp with
            | Runner.Failed { reason; _ } ->
              Report.note (Printf.sprintf "%s: baseline failed: %s" name reason);
              [ name; "failed"; "-"; "-"; "-"; "-"; "-"; "-" ]
            | Runner.Done base ->
              let runtime = base.Machine.runtime_ns in
              let w_start = round_to_ms (runtime * 3 / 10) in
              let w_end = max (w_start + ms) (round_to_ms (runtime * 55 / 100)) in
              let spec = spec_for ~klass ~w_start ~w_end in
              let cgroups =
                if klass = "churn" then
                  Some
                    (app_cgroups
                       (Workload.Chunk.packed_threads
                          (Runner.make_workload ctx workload ~trial:0)))
                else None
              in
              let cctx =
                Runner.with_chaos ?cgroups ~obs:traced_obs ctx (Some spec)
              in
              (match Runner.try_exp cctx exp with
              | Runner.Failed { reason; _ } ->
                Report.note
                  (Printf.sprintf "%s under %s: failed: %s" name
                     (Chaos.spec_to_string spec) reason);
                [ name; "failed"; "-"; "-"; "-"; "-"; "-"; "-" ]
              | Runner.Done r ->
                Report.note
                  (Printf.sprintf "%s: --chaos '%s'%s" name
                     (Chaos.spec_to_string spec)
                     (match r.Machine.chaos with
                     | Some s ->
                       Printf.sprintf "  (%s)" (Chaos.summary_to_string s)
                     | None -> ""));
                let ev = fault_events r in
                let pre_rate = rate ev ~lo:0 ~hi:w_start in
                let slice = max ms (runtime / 64) in
                [
                  name;
                  Report.fns (p ev ~lo:0 ~hi:w_start 0.99);
                  Report.fns (p ev ~lo:w_start ~hi:w_end 0.99);
                  Report.fns (p ev ~lo:w_start ~hi:w_end 0.999);
                  Report.fns (p ev ~lo:w_end ~hi:r.Machine.runtime_ns 0.99);
                  fms
                    (recovery_ns ev ~w_end ~runtime:r.Machine.runtime_ns ~slice
                       ~pre_rate);
                  string_of_int r.Machine.oom_kills;
                  string_of_int r.Machine.poisoned_reads;
                ]))
          cells
      in
      Report.table
        ~header:
          [
            "cell"; "pre p99"; "during p99"; "during p999"; "post p99";
            "recovery"; "oom"; "poison";
          ]
        rows)
    classes
