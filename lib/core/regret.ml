(* Belady regret scoreboard: every policy's demand-fault count over the
   offline optimum, per workload x pressure cell.

   The reference trace for a cell is derived by dry-running a fresh
   workload instance of the same (workload, trial) seed the runner uses,
   so Belady sees exactly the page-reference string the online policies
   face.  Threads are interleaved round-robin at chunk granularity with
   barrier rendezvous — a deterministic, policy-independent serialization
   (the machine's actual interleaving depends on timing, which is itself
   policy-dependent and therefore unusable as a reference).

   The denominator is Belady's refetch count (faults minus cold misses):
   cold misses are zero-fill minor faults in the machine and cost no
   device read, while [Machine.result.major_faults] — the numerator —
   counts demand device reads only.  Regret ~1.0 is optimal; readahead
   can push a policy slightly below the bound since OPT here models pure
   demand paging. *)

type cell = {
  c_workload : Runner.workload_kind;
  c_policy : Policy.Registry.spec;
  c_ratio : float;
  c_trials : int;
  c_failed : int;
  c_policy_faults : float; (* mean major faults; NaN if all trials failed *)
  c_belady_faults : float; (* mean Belady refetches *)
  c_regret : float; (* c_policy_faults / c_belady_faults *)
}

let default_policies =
  [
    Policy.Registry.Clock;
    Policy.Registry.Mglru_default;
    Policy.Registry.S3_fifo;
    Policy.Registry.Sieve;
    Policy.Registry.Perceptron;
  ]

let default_workloads = [ Runner.Tpch; Runner.Pagerank ]
let default_ratios = [ 0.5; 0.9 ]

(* ------------------------------------------------------------------ *)
(* Reference trace                                                     *)

let reference_trace (w : Workload.Chunk.packed) =
  let threads = Workload.Chunk.packed_threads w in
  let finished = Array.make threads false in
  let blocked = Array.make threads false in
  let buf = ref (Array.make 4096 0) in
  let len = ref 0 in
  let push page =
    if !len = Array.length !buf then begin
      let nb = Array.make (2 * !len) 0 in
      Array.blit !buf 0 nb 0 !len;
      buf := nb
    end;
    !buf.(!len) <- page;
    incr len
  in
  let live () = Array.exists not finished in
  let progress = ref true in
  while live () && !progress do
    progress := false;
    for tid = 0 to threads - 1 do
      if (not finished.(tid)) && not blocked.(tid) then begin
        (match Workload.Chunk.packed_next w ~tid with
        | Workload.Chunk.Finished -> finished.(tid) <- true
        | Workload.Chunk.Barrier -> blocked.(tid) <- true
        | Workload.Chunk.Chunk c ->
          Workload.Chunk.iter_pages push c.Workload.Chunk.pages);
        progress := true
      end
    done;
    (* Release the barrier once every live thread has reached it. *)
    if Array.for_all2 (fun f b -> f || b) finished blocked then
      Array.fill blocked 0 threads false
  done;
  Array.sub !buf 0 !len

(* Same formula the runner uses to size the machine for a cell. *)
let capacity_for ~footprint ~ratio =
  max 64 (int_of_float (float_of_int footprint *. ratio))

(* ------------------------------------------------------------------ *)
(* Scoreboard                                                          *)

let compute ctx ~workloads ~policies ~ratios ~swap =
  (* Fill the runner cache across domains first; everything after reads
     back serially, so output is byte-identical for every jobs value. *)
  let exps =
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun ratio ->
            List.concat_map
              (fun policy ->
                Runner.cell_exps ctx ~workload ~policy ~ratio ~swap)
              policies)
          ratios)
      workloads
  in
  Runner.prefetch ctx exps;
  (* Belady refetches per (workload, trial, ratio); the trace is derived
     once per (workload, trial) and shared across ratios. *)
  let traces = Hashtbl.create 8 in
  let trace_for workload ~trial =
    let key = (Runner.workload_kind_name workload, trial) in
    match Hashtbl.find_opt traces key with
    | Some tf -> tf
    | None ->
      let w = Runner.make_workload ctx workload ~trial in
      let footprint = Workload.Chunk.packed_footprint w in
      let tf = (reference_trace w, footprint) in
      Hashtbl.add traces key tf;
      tf
  in
  let belady = Hashtbl.create 16 in
  let belady_for workload ~trial ~ratio =
    let key = (Runner.workload_kind_name workload, trial, ratio) in
    match Hashtbl.find_opt belady key with
    | Some v -> v
    | None ->
      let trace, footprint = trace_for workload ~trial in
      let r =
        Policy.Belady.simulate ~capacity:(capacity_for ~footprint ~ratio) ~trace
      in
      let v = float_of_int (r.Policy.Belady.faults - r.Policy.Belady.cold_faults) in
      Hashtbl.add belady key v;
      v
  in
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun ratio ->
          List.map
            (fun policy ->
              let outcomes =
                Runner.try_cell ctx ~workload ~policy ~ratio ~swap
              in
              let done_ =
                List.filter_map
                  (function
                    | Runner.Done r -> Some r
                    | Runner.Failed _ -> None)
                  outcomes
              in
              let trials = List.length outcomes in
              let failed = trials - List.length done_ in
              let policy_faults =
                if done_ = [] then Float.nan
                else
                  List.fold_left
                    (fun acc (r : Machine.result) ->
                      acc +. float_of_int r.Machine.major_faults)
                    0.0 done_
                  /. float_of_int (List.length done_)
              in
              let belady_faults =
                let sum = ref 0.0 in
                for trial = 0 to trials - 1 do
                  sum := !sum +. belady_for workload ~trial ~ratio
                done;
                !sum /. float_of_int (max 1 trials)
              in
              {
                c_workload = workload;
                c_policy = policy;
                c_ratio = ratio;
                c_trials = trials;
                c_failed = failed;
                c_policy_faults = policy_faults;
                c_belady_faults = belady_faults;
                c_regret =
                  (if belady_faults > 0.0 then policy_faults /. belady_faults
                   else Float.nan);
              })
            policies)
        ratios)
    workloads

let print ~swap cells =
  Report.section
    (Printf.sprintf "Belady regret scoreboard (swap=%s)"
       (Runner.swap_name swap));
  Report.note
    "regret = mean demand faults / mean Belady refetches on the same \
     reference trace; 1.00 is optimal";
  let rows =
    List.map
      (fun c ->
        [
          Runner.workload_kind_name c.c_workload;
          Printf.sprintf "%.2f" c.c_ratio;
          Policy.Registry.name c.c_policy;
          Policy.Registry.kind_label
            (Policy.Registry.describe c.c_policy).Policy.Registry.d_kind;
          Report.fcount c.c_policy_faults;
          Report.fcount c.c_belady_faults;
          Report.f2 c.c_regret;
          (if c.c_failed = 0 then string_of_int c.c_trials
           else Printf.sprintf "%d(-%d)" c.c_trials c.c_failed);
        ])
      cells
  in
  Report.table
    ~header:
      [ "workload"; "ratio"; "policy"; "kind"; "faults"; "belady"; "regret";
        "trials" ]
    rows
