(** CSV export of every figure's underlying data, for external plotting.

    [export_all ctx ~dir] writes one file per figure family into [dir]
    (created if missing):

    - [fig1.csv], [fig4.csv], [fig6.csv], [fig9.csv], [fig10.csv],
      [fig11.csv] — normalized means;
    - [fig2_points.csv], [fig5_points.csv] — per-trial (runtime, faults)
      joint-distribution points;
    - [fig3_tails.csv], [fig8_tails.csv], [fig12_tails.csv] — tail
      latency landmarks;
    - [fig7_box.csv] — per-policy fault-count quartile boxes.

    Cells come from the context's trial cache — [export_all] first
    prefetches every figure's grid through the domain pool
    ([Runner.jobs ctx] wide), and exporting after a figure run on the
    same ctx reuses its results.  The bytes written are identical for
    every [jobs] value. *)

val write : path:string -> header:string list -> string list list -> unit
(** Minimal CSV writer with quoting of commas/quotes/newlines. *)

val norm_file :
  Runner.ctx -> path:string -> metric:(Figures.cell -> float) ->
  base_policy:Policy.Registry.spec -> ratio:float -> swap:Runner.swap_medium ->
  unit
(** One normalized-means family (workload x policy, metric normalized to
    [base_policy]) — the fig 1/4/9/10 format. *)

val export_all : Runner.ctx -> dir:string -> unit
