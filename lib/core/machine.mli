(** The simulated machine: one trial of a workload under a policy.

    Mirrors the paper's testbed (§IV): application threads share a
    6-core/12-thread CPU with the policy's kernel threads; physical
    memory is capped at a fraction of the workload footprint; demand
    faults read pages from the swap device, with sequential readahead
    clustering and a swap-cache that lets clean pages be evicted without
    a writeback.  Direct reclaim — entered when the free list is empty —
    runs the policy synchronously and charges its CPU time and any
    synchronous writeback stalls to the faulting thread, which is where
    the tail-latency differences between policies come from (§VI-A).

    The machine also survives storage faults (see {!Swapdev.Faulty_device}):
    transient errors are retried with backoff, permanent read errors
    poison the page (the thread continues on zero-fill), permanent write
    errors pin the page in memory, and when reclaim can no longer free
    anything an OOM killer terminates the fattest thread instead of
    aborting the trial.  {!Invariants.audit} cross-checks machine state
    after every run and optionally on a cadence. *)

type swap_kind =
  | Ssd_swap of Swapdev.Ssd.config
  | Zram_swap of Swapdev.Zram.config

val ssd : swap_kind
(** Paper defaults: ~7.5 ms per 4 KB operation. *)

val zram : swap_kind
(** Paper defaults: 20 µs reads / 35 µs writes, CPU-coupled. *)

type config = {
  hw_threads : int;
  capacity_frames : int;
  swap : swap_kind;
  costs : Mem.Costs.t;
  readahead : int;           (** swap-in cluster size; 0 disables *)
  direct_reclaim_batch : int;
  segment_pages : int;       (** max pages processed per scheduler event *)
  hit_cpu_ns : int;          (** per-page compute on a resident touch *)
  minor_fault_ns : int;      (** zero-fill fault cost *)
  barrier_groups : int array option;
      (** thread -> rendezvous group; default: all threads in group 0 *)
  kthread_jitter_ns : int;
      (** mean run-queue latency added between kernel-thread steps,
          scaled by CPU load — the OS scheduling noise the paper blames
          for scan-timing variance (§VI-A); 0 disables *)
  max_runtime_ns : int;      (** safety stop *)
  seed : int;
  fault_plan : Swapdev.Faulty_device.plan;
      (** swap I/O fault injection; {!Swapdev.Faulty_device.none} keeps
          runs bit-identical to a build without the fault layer *)
  io_max_retries : int;      (** per-op retry budget on transient errors *)
  io_retry_backoff_ns : int; (** base of the exponential retry backoff *)
  audit_every_ns : int;
      (** run {!Invariants.audit} every this many simulated ns; 0 =
          end-of-run only *)
  obs : Obs.config;
      (** telemetry: trace events and/or periodic machine-state samples
          into a per-trial sink, returned as [result.trace].  {!Obs.off}
          keeps runs bit-identical to a build without the layer *)
  prof : Obs.Prof.config;
      (** simulated-time CPU profiler: per-phase attribution of every
          nanosecond charged through [Engine.Cpu.charge], plus modeled
          waits (swap, writeback, barriers), returned as
          [result.profile].  The profiler only observes — it never draws
          randomness, schedules events, or charges CPU — so
          {!Obs.Prof.off} and an enabled profiler produce identical
          simulation results *)
  cancel : Engine.Cancel.t;
      (** cooperative cancellation, checked between simulation events;
          {!Engine.Cancel.never} (the default) never fires.  A firing
          token aborts the trial with {!Engine.Cancel.Cancelled} after
          the in-flight event completes, so machine state is never torn
          mid-event — this is how the runner enforces per-trial
          wall-clock deadlines *)
  cgroups : Mem.Memcg.spec option;
      (** memory cgroups: per-thread-group [memory.low]/[high]/[max]
          limits, PSI accounting and the proactive-reclaim probe (see
          {!Mem.Memcg} and the README's [--cgroups] grammar).  [None]
          (the default) is a single global pool — byte-identical
          behaviour to builds without the controller *)
  chaos : Chaos.spec option;
      (** deterministic runtime-transient injection: memory hotplug,
          swap-device degradation windows, cgroup limit churn, workload
          burst storms (see {!Chaos} and the README's [--chaos]
          grammar).  Every injection fires at a compiled simulated time
          and is followed by a forced {!Invariants.audit}.  [None] (the
          default) schedules nothing and draws no randomness —
          byte-identical behaviour to builds without the chaos layer *)
  vmstat : bool;
      (** capture the kernel-style vmstat counter registry (pgfault,
          pgsteal, pswpin/pswpout, workingset_*, mglru_*; see
          {!Obs.Vmstat}) into [result.vmstat].  The counters themselves
          are maintained unconditionally — a bump is one array store,
          never a branch on configuration — so this flag only gates the
          end-of-run capture, and [false] (the default) leaves results
          byte-identical to builds without the telemetry layer *)
  damon : Mem.Damon.config option;
      (** DAMON-style adaptive region access monitor (see {!Mem.Damon}):
          a recurring aggregation tick that reads — never clears —
          accessed bits and records per-region access counts into
          [result.heatmap].  Pure observation: no CPU charges, no
          randomness, so a monitored run's metrics equal an unmonitored
          one's.  [None] (the default) schedules nothing *)
}

val default_config : capacity_frames:int -> seed:int -> config
(** SSD swap, 12 hardware threads, experiment-scaled cost model
    (64-PTE page-table regions; see DESIGN.md on footprint scaling).
    Fault injection disabled. *)

type result = {
  runtime_ns : int;
  major_faults : int;        (** demand faults that required device reads *)
  minor_faults : int;        (** zero-fill first touches *)
  swap_ins : int;            (** successful device reads, incl. readahead *)
  swap_outs : int;           (** successful device writes *)
  direct_reclaims : int;
  direct_reclaim_ns : int;   (** total fault-path reclaim latency *)
  read_latencies : float array;  (** per-request ns, latency class 0 *)
  write_latencies : float array; (** latency class 1 *)
  per_thread_finish : int array;
  cpu_busy_ns : int;
  policy_stats : (string * int) list;
  policy_name : string;
  resident_at_end : int;
  io_retries : int;          (** resubmissions after transient errors *)
  io_remaps : int;           (** writes moved off a bad slot *)
  injected_transient : int;  (** faults the injector produced *)
  injected_permanent : int;
  injected_stalls : int;
  injected_tail_spikes : int;
  poisoned_reads : int;      (** demand reads whose data was lost *)
  writeback_failures : int;  (** evictions abandoned; page pinned *)
  oom_kills : int;
  oom_discarded_pages : int;
      (** pages torn down by OOM kills: resident frames freed plus
          swapped-out pages whose slots were released *)
  invariant_violations : int;
      (** total across periodic and end-of-run audits; 0 expected *)
  memcg : Mem.Memcg.summary option;
      (** per-cgroup usage, limits, throttle/OOM counters, PSI totals
          and per-tenant request latencies; [None] without [--cgroups] *)
  chaos : Chaos.summary option;
      (** injection tallies (events applied, frames offlined/onlined,
          pages migrated/evicted off offlining frames, limit rewrites,
          device phases, stalled threads); [None] without [--chaos] *)
  trace : Obs.capture option;
      (** everything the trial's telemetry sink recorded; [None] when
          [config.obs] was {!Obs.off} *)
  profile : Obs.Prof.capture option;
      (** per-phase CPU/wait totals (and, when [config.prof.spans] was
          set, the span timeline); [None] when [config.prof] was
          {!Obs.Prof.off} *)
  vmstat : Obs.Vmstat.capture option;
      (** final machine-wide vmstat counters plus the refault-distance
          histogram; [None] when [config.vmstat] was [false] *)
  heatmap : Mem.Damon.capture option;
      (** the region monitor's aggregation rows in tick order; [None]
          when [config.damon] was [None] *)
}

val run :
  config ->
  policy:(Policy.Policy_intf.env -> Policy.Policy_intf.packed) ->
  workload:Workload.Chunk.packed ->
  result
(** Execute one trial to completion (every workload thread [Finished] or
    OOM-killed) and collect the metrics the paper reports. *)
