(** Ablation studies over the design choices the paper calls out.

    Each study sweeps one mechanism while holding everything else at the
    paper's defaults, on TPC-H and PageRank at SSD/50 % — the regime
    where replacement decisions matter most:

    - {!generations}: the generation-window cap (Clock's 2 lists → the
      default 4 → Gen-14's 2¹⁴), §V-B's first knob;
    - {!bloom_density}: the accessed-PTE density a region needs to enter
      the aging Bloom filter (the kernel's "one per cache line");
    - {!spatial_scan}: the eviction walker's page-table look-around, the
      mechanism §V-B credits for Scan-None beating Clock;
    - {!readahead}: the machine's swap readahead window (not a policy
      knob, but it interacts with every policy's fault counts);
    - {!scan_probability}: Scan-Rand's probability, which the paper
      fixes at 50 % (§VI-C asks whether other points are better).

    Every study prefetches its sweep through the context's domain pool
    and prints from the cache, so output does not depend on
    [Runner.jobs].  [run_all] prints every study. *)

val generations : Runner.ctx -> unit

val bloom_density : Runner.ctx -> unit

val spatial_scan : Runner.ctx -> unit

val readahead : Runner.ctx -> unit

val scan_probability : Runner.ctx -> unit

val run_all : Runner.ctx -> unit
