(** Comparison harness for the §II-C migration-policy design space.

    Runs the paper's workloads over the two-tier machine (no swap; fast
    DRAM + slow CXL-like tier) under every registered migration policy
    and reports runtime, the slow-tier access fraction, and migration
    traffic — the tiering analogue of the replacement figures.  Not part
    of the paper's evaluation, but the design space its background
    section frames (and the context in which it reads MG-LRU's
    data structures).

    The workload x policy x trial grid is fanned out through the
    context's domain pool ({!Runner.jobs}); every trial seeds its own
    workload and machine, and results are aggregated in input order, so
    the printed tables do not depend on the parallelism. *)

val run_one :
  Runner.ctx ->
  workload:Runner.workload_kind ->
  policy:Tiering.Tier_registry.spec ->
  fast_frac:float ->
  trial:int ->
  Tiering.Tier_machine.result
(** One trial: fast tier sized at [fast_frac] of the footprint, the slow
    tier holding the rest (plus slack). *)

val study : ?fast_frac:float -> ?trials:int -> Runner.ctx -> unit -> unit
(** Print the full comparison table for TPC-H, PageRank and YCSB-B at
    [fast_frac] (default 0.5) of the footprint in the fast tier. *)
