let fsync_out oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* The pid suffix keeps concurrent processes targeting the same [path]
   from clobbering each other's in-flight temp file; rename stays atomic
   either way because the temp lives in the destination directory. *)
let temp_name path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let replace ~path f =
  let tmp = temp_name path in
  let oc = open_out tmp in
  let committed = ref false in
  Fun.protect
    ~finally:(fun () ->
      (* Exception path: drop the partial file.  (After a successful
         rename the temp name no longer exists.) *)
      if not !committed then begin
        close_out_noerr oc;
        try Sys.remove tmp with Sys_error _ -> ()
      end)
    (fun () ->
      let v = f oc in
      fsync_out oc;
      close_out oc;
      Sys.rename tmp path;
      committed := true;
      v)
