(** Experiment configurations and the cached trial runner.

    An {!exp} names one cell of the paper's grid: workload x policy x
    capacity ratio x swap medium x trial index.  Workload seeds depend
    only on (workload, trial), so different policies face identical
    workload instances within a trial — the simulator's analogue of the
    paper's paired comparisons — while each fresh trial is a fresh
    "reboot".

    Results are memoized in-process: figures that share cells (1 and 2,
    4 and 5, 9-11) do not recompute them. *)

type workload_kind =
  | Tpch
  | Pagerank
  | Ycsb of Workload.Ycsb.variant

type swap_medium = Ssd | Zram

type exp = {
  workload : workload_kind;
  policy : Policy.Registry.spec;
  ratio : float; (** memory capacity / workload footprint, e.g. 0.5 *)
  swap : swap_medium;
  trial : int;
}

val workload_kind_name : workload_kind -> string

val all_workloads : workload_kind list
(** The paper's five, in figure order: TPC-H, PageRank, YCSB A/B/C. *)

val swap_name : swap_medium -> string

val exp_name : exp -> string

(** Scaling profile, read once from the environment:
    [REPRO_TRIALS] (default 25) — trials per TPC-H/PageRank cell;
    [REPRO_YCSB_TRIALS] (default 2) — trials per YCSB cell;
    [REPRO_FAST] (any value) — shrink workloads ~4x for quick runs. *)
type profile = {
  trials : int;
  ycsb_trials : int;
  fast : bool;
}

val profile : unit -> profile

val trials_for : workload_kind -> int

val make_workload : workload_kind -> trial:int -> Workload.Chunk.packed

val run_exp : exp -> Machine.result
(** Run (or fetch from cache) one trial. *)

val run_cell :
  workload:workload_kind -> policy:Policy.Registry.spec -> ratio:float ->
  swap:swap_medium -> Machine.result list
(** All trials of one grid cell, per {!profile}. *)

val clear_cache : unit -> unit

val set_fault_plan : Swapdev.Faulty_device.plan -> unit
(** Inject swap I/O faults into every subsequent trial (default
    {!Swapdev.Faulty_device.none}).  Clears the result cache. *)

val set_audit_every_ns : int -> unit
(** Periodic {!Invariants} audit cadence in simulated ns (0 = end-of-run
    only, the default).  Clears the result cache. *)

val runtimes_s : Machine.result list -> float array

val faults : Machine.result list -> float array
(** Major (demand) fault counts. *)

val mean_runtime_s : Machine.result list -> float

val mean_faults : Machine.result list -> float

val mean_read_latency_ns : Machine.result list -> float
(** Mean read-request latency pooled over trials (YCSB). *)

val pooled_read_latencies : Machine.result list -> float array

val pooled_write_latencies : Machine.result list -> float array
