(** Experiment configurations and the cached, parallel trial runner.

    An {!exp} names one cell of the paper's grid: workload x policy x
    capacity ratio x swap medium x trial index.  Workload seeds depend
    only on (workload, trial), so different policies face identical
    workload instances within a trial — the simulator's analogue of the
    paper's paired comparisons — while each fresh trial is a fresh
    "reboot".

    Every run happens under an explicit {!ctx}: the scaling profile,
    fault-injection plan, invariant-audit cadence and parallelism are
    fields of a value threaded through the drivers, not process-global
    state.  Each [ctx] owns its own result cache (keyed by a stable
    string, sharded and mutex-protected), so figures that share cells
    (1 and 2, 4 and 5, 9-11) do not recompute them, and two contexts
    with different fault plans can never serve each other stale results.

    {b Parallelism and determinism.}  Trials are embarrassingly
    parallel: each owns its seeded RNG, workload instance and simulated
    machine.  {!prefetch} shards uncached trials across a domain pool
    ({!Engine.Pool}) and stores the results; the drivers then read,
    aggregate and print serially from the cache, so output is
    bit-identical for every [jobs] value. *)

type workload_kind =
  | Tpch
  | Pagerank
  | Ycsb of Workload.Ycsb.variant
  | Fleet of { fl_tenants : int; fl_hot : int }
      (** [fl_tenants] YCSB tenants sharing one machine via
          {!Workload.Multi} (2 threads each); tenant [fl_hot] is a hot
          runaway (zipf 1.1, double the requests), the rest are lukewarm
          (zipf 0.8).  The containment workload of [repro fleet]. *)

type swap_medium = Ssd | Zram

type exp = {
  workload : workload_kind;
  policy : Policy.Registry.spec;
  ratio : float; (** memory capacity / workload footprint, e.g. 0.5 *)
  swap : swap_medium;
  trial : int;
}

val workload_kind_name : workload_kind -> string

val all_workloads : workload_kind list
(** The paper's five, in figure order: TPC-H, PageRank, YCSB A/B/C. *)

val swap_name : swap_medium -> string

val exp_name : exp -> string
(** Human-readable cell name (display only; not injective for
    parameterized policies — see {!exp_key}). *)

val exp_key : exp -> string
(** Stable, injective cache key: encodes every policy parameter via
    {!Policy.Registry.cache_key}, so distinct [Mglru_custom] configs
    never alias, and no structural hashing of closures can occur. *)

(** Scaling profile: trials per TPC-H/PageRank cell, trials per YCSB
    cell, whether workloads are shrunk ~4x for quick runs, and the
    footprint multiplier. *)
type profile = {
  trials : int;
  ycsb_trials : int;
  fast : bool;
  scale : int;
      (** [--scale N]: multiply every workload's page-count dimensions
          by [N] and shrink simulated per-page costs by the same factor
          (the default experiments run at 1/256 of the paper's page
          counts; [N = 256] reaches the native 3-4M-page footprints).
          [1] is byte-identical to the historical profile.  Like
          [fast], this is ctx-level and not part of {!exp_key}: never
          mix journals or caches across scales. *)
}

val default_profile : profile
(** The paper's trial counts: 25 trials, 2 YCSB trials, full-size
    workloads, scale 1. *)

val profile_from_env : unit -> profile
(** {!default_profile} overridden by the documented fallback variables
    [REPRO_TRIALS], [REPRO_YCSB_TRIALS], [REPRO_FAST] (any value) and
    [REPRO_SCALE].  This is the only place those variables are read;
    CLI flags build a {!ctx} on top of this. *)

(** {1 Run contexts} *)

type ctx
(** An immutable run context: profile, fault plan, audit cadence,
    parallelism, per-trial deadline and optional result journal, plus
    this context's private result cache. *)

(** What became of one trial.  Failures are first-class: a raising or
    deadline-hit trial is cached and journaled as [Failed] and rendered
    as an explicit "failed" cell, while the other trials of the sweep
    run to completion. *)
type trial_outcome =
  | Done of Machine.result
  | Failed of { reason : string; timed_out : bool }

val make_ctx :
  ?profile:profile ->
  ?fault_plan:Swapdev.Faulty_device.plan ->
  ?audit_every_ns:int ->
  ?jobs:int ->
  ?obs:Obs.config ->
  ?prof:Obs.Prof.config ->
  ?trial_timeout_s:float ->
  ?journal:Journal.t ->
  ?cgroups:Mem.Memcg.spec ->
  ?chaos:Chaos.spec ->
  ?vmstat:bool ->
  ?damon:Mem.Damon.config ->
  unit ->
  ctx
(** Defaults: [profile_from_env ()], no fault injection, end-of-run
    audits only, [jobs = 1] (serial), telemetry off ({!Obs.off} keeps
    runs bit-identical to a build without the obs layer), no per-trial
    deadline, no journal.  [jobs] is clamped to at least 1;
    [audit_every_ns] to at least 0; [trial_timeout_s <= 0] means no
    deadline.

    With a [journal], every freshly computed trial outcome — success or
    failure — is appended (checksummed, fsynced) the moment it
    completes; cache hits, including warm-started records, are not
    re-journaled.

    [cgroups] installs a memory-cgroup spec into every machine this
    context runs.  Like [fault_plan] it is ctx-level and not part of
    {!exp_key}, so never mix journals or caches across specs.

    [chaos] installs a runtime-transient injection schedule the same
    way (see {!Chaos}); omitting it schedules nothing and keeps runs
    byte-identical to builds without the chaos layer.

    [vmstat] makes every machine capture its kernel-style counter
    registry into [result.vmstat] (the counters are always maintained;
    the flag only gates the capture, so [false] — the default — keeps
    results byte-identical to builds without the telemetry layer).
    [damon] installs a DAMON-style region access monitor whose
    per-region rows land in [result.heatmap]; both are ctx-level like
    [fault_plan] and not part of {!exp_key}. *)

val profile : ctx -> profile

val fault_plan : ctx -> Swapdev.Faulty_device.plan

val audit_every_ns : ctx -> int

val jobs : ctx -> int

val obs : ctx -> Obs.config

val prof : ctx -> Obs.Prof.config
(** The profiler configuration passed to every machine this context
    runs; {!Obs.Prof.off} by default. *)

val trial_timeout_s : ctx -> float
(** The per-trial wall-clock deadline in seconds; 0 when disabled. *)

val cgroups : ctx -> Mem.Memcg.spec option

val with_cgroups : ctx -> Mem.Memcg.spec -> ctx
(** A derived context with [cgroups] installed and a {e fresh} result
    cache and experiment log (the spec is not part of {!exp_key}, so
    sharing the parent's cache would alias results across specs). *)

val chaos : ctx -> Chaos.spec option

val with_chaos :
  ?cgroups:Mem.Memcg.spec -> ?obs:Obs.config -> ctx -> Chaos.spec option -> ctx
(** A derived context with [chaos] replaced ([None] strips any installed
    spec) and a fresh cache/log, like {!with_cgroups}.  [?cgroups]
    additionally replaces the cgroup spec in the same derivation — the
    limit-churn chaos class needs one — and [?obs] the telemetry config
    (the resilience report needs traced derived runs whatever the parent
    context records). *)

val vmstat : ctx -> bool

val damon : ctx -> Mem.Damon.config option

val with_damon : ctx -> Mem.Damon.config -> ctx
(** A derived context with the region monitor installed and a fresh
    cache/log, like {!with_cgroups} (monitored results carry heatmap
    captures, so they must not alias an unmonitored cache). *)

val cached_results : ctx -> int
(** Number of trial outcomes currently memoized in this context. *)

val warm_start : ctx -> Journal.record list -> int
(** Install the successful records of a loaded journal into the cache,
    returning how many were installed.  Failure records are skipped (a
    resumed run retries them), and the whole warm-start is skipped —
    with a stderr note — when the context has telemetry enabled
    (journal records carry no traces), span profiling enabled (they
    carry no spans) or the region monitor enabled (they carry no
    heatmaps).  Under totals-only profiling, only records that carry
    phase totals are installed; the rest recompute — and likewise, with
    [vmstat] on, only records that carry counter captures.  Call once,
    before running anything, on a fresh context. *)

(** {1 Running trials} *)

val trials_for : ctx -> workload_kind -> int

val make_workload : ctx -> workload_kind -> trial:int -> Workload.Chunk.packed

val run_exp : ctx -> exp -> Machine.result
(** Run (or fetch from this context's cache) one trial.  Raises
    [Failure] if the trial's outcome is [Failed] — use {!try_exp} where
    failures must not abort the caller. *)

val try_exp : ctx -> exp -> trial_outcome
(** Like {!run_exp}, but a raising or timed-out trial yields [Failed]
    instead of raising: the failure is cached (never retried within this
    context) and journaled like any other outcome. *)

val cell_exps :
  ctx -> workload:workload_kind -> policy:Policy.Registry.spec -> ratio:float ->
  swap:swap_medium -> exp list
(** The trials of one grid cell under [ctx]'s profile, in trial order. *)

val prefetch : ctx -> exp list -> unit
(** Compute every uncached experiment in the list (deduplicated) across
    [jobs ctx] domains and memoize the results.  With [jobs = 1] this
    degenerates to a serial loop in the calling domain.  Drivers call
    this with a figure's whole grid before printing; the serial
    read-back then hits only the cache, which is how parallel runs stay
    bit-identical to serial ones. *)

val run_cell :
  ctx -> workload:workload_kind -> policy:Policy.Registry.spec -> ratio:float ->
  swap:swap_medium -> Machine.result list
(** All trials of one grid cell, prefetched in parallel per the ctx.
    Raises on the first failed trial, like {!run_exp}. *)

val try_cell :
  ctx -> workload:workload_kind -> policy:Policy.Registry.spec -> ratio:float ->
  swap:swap_medium -> trial_outcome list
(** Failure-tolerant {!run_cell}: one {!trial_outcome} per trial, in
    trial order. *)

val failures : ctx -> (exp * string * bool) list
(** Every failed trial this context has seen — [(exp, reason,
    timed_out)] — in deterministic first-request order, the same for
    every [jobs] value.  Empty after a clean sweep. *)

(** {1 Aggregation helpers} *)

val runtimes_s : Machine.result list -> float array

val faults : Machine.result list -> float array
(** Major (demand) fault counts. *)

val mean_runtime_s : Machine.result list -> float

val mean_faults : Machine.result list -> float

val mean_read_latency_ns : Machine.result list -> float
(** Mean read-request latency pooled over trials (YCSB). *)

val pooled_read_latencies : Machine.result list -> float array

val pooled_write_latencies : Machine.result list -> float array

(** {1 Telemetry}

    When the context's {!Obs.config} enables tracing or sampling, every
    computed trial's capture is kept (attached to its cached result) and
    the experiment is appended to an ordered log.  The log is written
    only from the dispatching domain — {!prefetch} records its whole
    deduplicated batch in list order before any worker starts, and
    direct {!run_exp} misses occur in the drivers' serial read-back — so
    the files these writers produce are byte-identical for every
    [jobs] value. *)

val traced_exps : ctx -> exp list
(** Every experiment this context has been asked to run, in
    deterministic first-request order.  The telemetry writers serialize
    the captures of these, in this order. *)

val write_trace : ctx -> path:string -> int
(** Write every captured event as JSON Lines (one flat object per event:
    workload/policy/ratio/swap/trial, [t_ns], [kind], payload); returns
    the number of events written.  Like every writer, goes through
    {!Atomic_io.replace}: [path] is replaced atomically or not at all. *)

val write_samples : ctx -> path:string -> int
(** Write every machine-state sample as long-format CSV
    ([workload,policy,ratio,swap,trial,t_ns,metric,value]); returns the
    number of data rows written.  Atomic like {!write_trace}. *)

val merged_reclaim_hists : ctx -> (string * Stats.Histogram.t) list
(** Per-policy direct-reclaim latency histograms, merged across every
    traced trial, in first-appearance order. *)

(** {1 Profiling}

    When the context's {!Obs.Prof.config} is enabled, every computed
    trial carries a phase-attribution capture.  Like the telemetry
    writers, everything below reads the deterministic experiment log,
    so outputs are byte-identical for every [jobs] value. *)

val profiled : ctx -> (exp * Obs.Prof.capture) list
(** Every experiment whose cached result carries a profile capture, in
    deterministic first-request order. *)

val profile_cells : ctx -> (exp * Obs.Prof.merged) list
(** Per-cell phase totals: captures grouped by grid cell (the [exp]
    returned has [trial = 0]) and merged across trials in trial order,
    cells in first-appearance order. *)

val write_folded : ctx -> path:string -> int
(** Write merged per-cell phase totals as folded stacks
    ([cell;class;phase;...;leaf <self ns>] per line — flamegraph.pl /
    speedscope input); returns the number of lines.  Atomic like
    {!write_trace}. *)

val write_perfetto : ctx -> path:string -> int
(** Write the per-trial span timelines as Chrome trace-event JSON
    (loadable in Perfetto / chrome://tracing): one trace process per
    profiled trial, thread-name metadata, and one "X" event per span.
    Returns the number of span events.  Requires the profiler's [spans]
    flag to record anything.  Atomic like {!write_trace}. *)

(** {1 Vmstat and heatmaps}

    Like the profiling readers: everything reads the deterministic
    experiment log, so outputs are byte-identical for every [jobs]
    value. *)

val vmstatted : ctx -> (exp * Obs.Vmstat.capture) list
(** Every experiment whose cached result carries a vmstat capture, in
    deterministic first-request order. *)

val vmstat_cells : ctx -> (exp * Obs.Vmstat.capture) list
(** Per-cell counter totals: captures grouped by grid cell (the [exp]
    returned has [trial = 0]) and summed across trials, cells in
    first-appearance order. *)

val heatmap_csv_header : string
(** [workload,policy,ratio,swap,trial,t_ns,asid,start_vpn,pages,accessed] *)

val write_heatmap : ctx -> path:string -> int
(** Write every cached heatmap capture as CSV rows under
    {!heatmap_csv_header} (one line per region snapshot, trials in
    deterministic log order, rows in tick order); returns the number of
    data rows.  Atomic like {!write_trace}. *)
