(* The [repro fuzz] soak driver.  Configurations are derived from the
   iteration-seeded RNG, run through the oracles (completion, invariant
   audits, jobs 1-vs-4 identity, journal round-trip + warm start), and
   failures shrink greedily to a minimal deterministic repro line.  The
   driver itself never consults wall time or a global RNG: iteration i
   of seed s is the same configuration and verdict everywhere. *)

type config = {
  fz_workload : Runner.workload_kind;
  fz_policy : Policy.Registry.spec;
  fz_ratio : float;
  fz_swap : Runner.swap_medium;
  fz_faults : string;
  fz_cgroups : string option;
  fz_chaos : string option;
}

(* ------------------------------------------------------------------ *)
(* Encoding.  Space-separated k=v tokens; the cgroup and chaos spec    *)
(* grammars are space-free, so the line re-splits unambiguously.       *)
(* ------------------------------------------------------------------ *)

let config_to_string c =
  String.concat " "
    ([
       "w=" ^ Runner.workload_kind_name c.fz_workload;
       "p=" ^ Policy.Registry.name c.fz_policy;
       Printf.sprintf "r=%g" c.fz_ratio;
       "s=" ^ Runner.swap_name c.fz_swap;
       "f=" ^ c.fz_faults;
     ]
    @ (match c.fz_cgroups with Some s -> [ "cg=" ^ s ] | None -> [])
    @ (match c.fz_chaos with Some s -> [ "ch=" ^ s ] | None -> []))

let workload_of_name = function
  | "tpch" -> Some Runner.Tpch
  | "pagerank" -> Some Runner.Pagerank
  | "ycsb-a" -> Some (Runner.Ycsb Workload.Ycsb.A)
  | "ycsb-b" -> Some (Runner.Ycsb Workload.Ycsb.B)
  | "ycsb-c" -> Some (Runner.Ycsb Workload.Ycsb.C)
  | _ -> None

let config_of_string line =
  let default =
    {
      fz_workload = Runner.Tpch;
      fz_policy = Policy.Registry.Clock;
      fz_ratio = 0.5;
      fz_swap = Runner.Ssd;
      fz_faults = "none";
      fz_cgroups = None;
      fz_chaos = None;
    }
  in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let tokens =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line))
  in
  let rec go cfg = function
    | [] -> Ok cfg
    | tok :: rest -> (
      match String.index_opt tok '=' with
      | None -> err "malformed token %S (expected k=v)" tok
      | Some i -> (
        let k = String.sub tok 0 i in
        let v = String.sub tok (i + 1) (String.length tok - i - 1) in
        match k with
        | "w" -> (
          match workload_of_name v with
          | Some w -> go { cfg with fz_workload = w } rest
          | None -> err "unknown workload %S" v)
        | "p" -> (
          match Policy.Registry.of_name v with
          | Some p -> go { cfg with fz_policy = p } rest
          | None -> err "unknown policy %S" v)
        | "r" -> (
          match float_of_string_opt v with
          | Some r when r > 0.0 && r <= 1.5 -> go { cfg with fz_ratio = r } rest
          | _ -> err "bad ratio %S" v)
        | "s" -> (
          match v with
          | "ssd" -> go { cfg with fz_swap = Runner.Ssd } rest
          | "zram" -> go { cfg with fz_swap = Runner.Zram } rest
          | _ -> err "unknown swap medium %S" v)
        | "f" -> (
          match Swapdev.Faulty_device.plan_of_name v with
          | Some _ -> go { cfg with fz_faults = v } rest
          | None -> err "unknown fault plan %S" v)
        | "cg" -> (
          match Mem.Memcg.parse_spec v with
          | Ok _ -> go { cfg with fz_cgroups = Some v } rest
          | Error e -> err "bad cgroups spec: %s" e)
        | "ch" -> (
          match Chaos.parse_spec v with
          | Ok _ -> go { cfg with fz_chaos = Some v } rest
          | Error e -> err "bad chaos spec: %s" e)
        | _ -> err "unknown key %S" k))
  in
  go default tokens

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

exception Fail of string * string

let fail oracle fmt = Printf.ksprintf (fun s -> raise (Fail (oracle, s))) fmt

(* Short trials: 2 per cell, fast workloads, 25 ms audit cadence. *)
let profile = { Runner.trials = 2; ycsb_trials = 2; fast = true; scale = 1 }

let traced = { Obs.trace = true; sample_every_ns = 0 }

let mk_ctx ~jobs ~obs cfg =
  let fault_plan =
    match Swapdev.Faulty_device.plan_of_name cfg.fz_faults with
    | Some p -> p
    | None -> failwith (Printf.sprintf "unknown fault plan %S" cfg.fz_faults)
  in
  let cgroups =
    Option.map
      (fun s ->
        match Mem.Memcg.parse_spec s with
        | Ok v -> v
        | Error e -> failwith ("bad cgroups spec: " ^ e))
      cfg.fz_cgroups
  in
  let chaos =
    Option.map
      (fun s ->
        match Chaos.parse_spec s with
        | Ok v -> v
        | Error e -> failwith ("bad chaos spec: " ^ e))
      cfg.fz_chaos
  in
  Runner.make_ctx ~profile ~fault_plan ~audit_every_ns:25_000_000 ~jobs ~obs
    ?cgroups ?chaos ()

let exps_of cfg =
  List.map
    (fun trial ->
      {
        Runner.workload = cfg.fz_workload;
        policy = cfg.fz_policy;
        ratio = cfg.fz_ratio;
        swap = cfg.fz_swap;
        trial;
      })
    [ 0; 1 ]

let record_line e (r : Machine.result) =
  Journal.record_to_line
    {
      Journal.key = Runner.exp_key e;
      status = Journal.Trial_ok;
      reason = "";
      result = Some r;
    }

let check cfg =
  let exps = exps_of cfg in
  let run_all ctx =
    Runner.prefetch ctx exps;
    List.map
      (fun e ->
        match Runner.try_exp ctx e with
        | Runner.Done r -> (e, r)
        | Runner.Failed { reason; timed_out = _ } ->
          fail "complete" "trial %d raised: %s" e.Runner.trial reason)
      exps
  in
  try
    (* complete + invariants, at jobs 1 *)
    let ctx1 = mk_ctx ~jobs:1 ~obs:traced cfg in
    let results = run_all ctx1 in
    List.iter
      (fun (e, r) ->
        if r.Machine.invariant_violations > 0 then
          fail "invariants" "trial %d: %d violation(s)" e.Runner.trial
            r.Machine.invariant_violations)
      results;
    (* jobs 1-vs-4 identity: journal encodings and traced event streams *)
    let ctx4 = mk_ctx ~jobs:4 ~obs:traced cfg in
    let results4 = run_all ctx4 in
    List.iter2
      (fun (e, r1) (_, r4) ->
        if record_line e r1 <> record_line e r4 then
          fail "jobs-identity" "trial %d: results differ between --jobs 1 and 4"
            e.Runner.trial;
        if r1.Machine.trace <> r4.Machine.trace then
          fail "jobs-identity"
            "trial %d: traced event streams differ between --jobs 1 and 4"
            e.Runner.trial)
      results results4;
    (* journal round-trip, then kill/resume via warm start *)
    let records =
      List.map
        (fun (e, r) ->
          let line = record_line e r in
          match Journal.record_of_line line with
          | Error msg -> fail "journal-roundtrip" "decode failed: %s" msg
          | Ok rec2 ->
            if Journal.record_to_line rec2 <> line then
              fail "journal-roundtrip" "trial %d: re-encode differs"
                e.Runner.trial;
            (e, line, rec2))
        results
    in
    let ctxw = mk_ctx ~jobs:1 ~obs:Obs.off cfg in
    let installed =
      Runner.warm_start ctxw (List.map (fun (_, _, r) -> r) records)
    in
    if installed <> List.length records then
      fail "journal-roundtrip" "warm start installed %d of %d record(s)"
        installed (List.length records);
    List.iter
      (fun (e, line, _) ->
        match Runner.try_exp ctxw e with
        | Runner.Done r when record_line e r = line -> ()
        | Runner.Done _ ->
          fail "journal-roundtrip" "trial %d: resumed record differs"
            e.Runner.trial
        | Runner.Failed { reason; _ } ->
          fail "journal-roundtrip" "trial %d: resume failed: %s" e.Runner.trial
            reason)
      records;
    None
  with Fail (oracle, detail) -> Some (oracle, detail)

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

let pick rng l = List.nth l (Engine.Rng.int rng (List.length l))

(* Segment classes are sampled distinct, so the generated specs never
   trip the parser's same-class overlap check; every sampled spec is
   re-parsed as a sanity net before use. *)
let sample_chaos rng ~with_corrupt ~has_cg =
  let classes = [ "hotplug"; "degrade"; "burst" ] @ if has_cg then [ "churn" ] else [] in
  let n = Engine.Rng.int rng 3 (* 0, 1 or 2 segments *) in
  let rec take acc pool k =
    if k = 0 || pool = [] then acc
    else
      let c = pick rng pool in
      take (c :: acc) (List.filter (fun x -> x <> c) pool) (k - 1)
  in
  let chosen = List.rev (take [] classes n) in
  let seg = function
    | "hotplug" ->
      let at = pick rng [ 2; 5; 10 ] in
      Printf.sprintf "hotplug:at=%ds,shrink=%d%%,restore=%ds" at
        (pick rng [ 25; 40; 60 ])
        (at + pick rng [ 5; 10 ])
    | "degrade" ->
      Printf.sprintf "degrade:at=%ds,for=%ds,latency=%dx,errors=%s"
        (pick rng [ 1; 3; 8 ])
        (pick rng [ 4; 10 ])
        (pick rng [ 4; 8 ])
        (pick rng [ "0"; "0.01" ])
    | "burst" ->
      Printf.sprintf "burst:at=%ds,for=%ds" (pick rng [ 1; 2; 6 ])
        (pick rng [ 2; 5 ])
    | "churn" ->
      Printf.sprintf "churn:at=%ds,cg=app,max=%d%%" (pick rng [ 2; 4 ])
        (pick rng [ 40; 60 ])
    | _ -> assert false
  in
  let segments = List.map seg chosen in
  let segments =
    if with_corrupt && Engine.Rng.bool rng 0.25 then
      segments @ [ Printf.sprintf "corrupt:at=%ds" (pick rng [ 1; 2; 3 ]) ]
    else segments
  in
  match segments with
  | [] -> None
  | segs ->
    let s = String.concat ";" segs in
    (match Chaos.parse_spec s with
    | Ok _ -> Some s
    | Error e -> failwith (Printf.sprintf "sampler produced bad spec %S: %s" s e))

let sample rng ~with_corrupt =
  let fz_workload =
    pick rng
      [
        Runner.Tpch; Runner.Pagerank; Runner.Ycsb Workload.Ycsb.A;
        Runner.Ycsb Workload.Ycsb.B;
      ]
  in
  let fz_policy =
    pick rng
      Policy.Registry.
        [ Clock; Mglru_default; Fifo; Random; Lru_exact; S3_fifo; Sieve ]
  in
  let fz_cgroups =
    (* threads 0-1 is valid for every workload (all run >= 2 threads);
       uncovered threads simply stay uncharged, like the fleet groups. *)
    if Engine.Rng.bool rng 0.4 then
      Some (Printf.sprintf "app:threads=0-1,max=%d%%" (pick rng [ 50; 60; 75 ]))
    else None
  in
  {
    fz_workload;
    fz_policy;
    fz_ratio = pick rng [ 0.4; 0.5; 0.6; 0.75; 0.9 ];
    fz_swap = pick rng [ Runner.Ssd; Runner.Zram ];
    fz_faults = pick rng [ "none"; "none"; "light" ];
    fz_cgroups;
    fz_chaos = sample_chaos rng ~with_corrupt ~has_cg:(fz_cgroups <> None);
  }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* One generation of strictly smaller candidates, most aggressive
   reductions last so single-segment drops are tried first. *)
let candidates cfg =
  let chaos_drops =
    match cfg.fz_chaos with
    | None -> []
    | Some s -> (
      match Chaos.parse_spec s with
      | Ok spec when List.length spec.Chaos.injectors > 1 ->
        List.init
          (List.length spec.Chaos.injectors)
          (fun i ->
            {
              cfg with
              fz_chaos =
                Some
                  (Chaos.spec_to_string
                     { Chaos.injectors = drop_nth spec.Chaos.injectors i });
            })
      | _ -> [])
  in
  chaos_drops
  @ (if cfg.fz_chaos <> None then [ { cfg with fz_chaos = None } ] else [])
  @ (if cfg.fz_cgroups <> None then [ { cfg with fz_cgroups = None } ] else [])
  @ (if cfg.fz_faults <> "none" then [ { cfg with fz_faults = "none" } ] else [])
  @ (if cfg.fz_swap <> Runner.Ssd then [ { cfg with fz_swap = Runner.Ssd } ]
     else [])
  @ (if Runner.workload_kind_name cfg.fz_workload <> "tpch" then
       [ { cfg with fz_workload = Runner.Tpch } ]
     else [])
  @ (if Policy.Registry.name cfg.fz_policy <> "clock" then
       [ { cfg with fz_policy = Policy.Registry.Clock } ]
     else [])
  @ if cfg.fz_ratio <> 0.5 then [ { cfg with fz_ratio = 0.5 } ] else []

let shrink cfg ~failing =
  let still_fails c =
    match check c with Some (f, _) -> f = failing | None -> false
  in
  let rec go cfg =
    match List.find_opt still_fails (candidates cfg) with
    | Some smaller -> go smaller
    | None -> cfg
  in
  go cfg

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ~seed ~iterations ~with_corrupt =
  let failures = ref 0 in
  for i = 0 to iterations - 1 do
    let rng = Engine.Rng.create (seed + (7919 * i)) in
    let cfg = sample rng ~with_corrupt in
    Printf.printf "iter %2d: %s\n%!" i (config_to_string cfg);
    match check cfg with
    | None -> Printf.printf "         ok\n%!"
    | Some (oracle, detail) ->
      incr failures;
      Printf.printf "         FAIL [%s] %s\n%!" oracle detail;
      let minimal = shrink cfg ~failing:oracle in
      Printf.printf "         minimal repro: repro fuzz --config '%s'\n%!"
        (config_to_string minimal);
      (match check minimal with
      | Some (o, d) when o = oracle ->
        Printf.printf "         repro confirmed: [%s] %s\n%!" o d
      | Some (o, d) ->
        Printf.printf "         warning: minimal config fails differently: [%s] %s\n%!"
          o d
      | None ->
        Printf.printf "         warning: minimal config no longer fails\n%!")
  done;
  if !failures = 0 then
    Printf.printf "fuzz: %d iteration(s), no failures\n%!" iterations
  else
    Printf.printf "fuzz: %d failure(s) in %d iteration(s)\n%!" !failures
      iterations;
  !failures

let replay line =
  match config_of_string line with
  | Error e ->
    Printf.eprintf "fuzz: invalid --config: %s\n%!" e;
    1
  | Ok cfg -> (
    Printf.printf "config: %s\n%!" (config_to_string cfg);
    match check cfg with
    | None ->
      Printf.printf "ok\n%!";
      0
    | Some (oracle, detail) ->
      Printf.printf "FAIL [%s] %s\n%!" oracle detail;
      1)
