(** Machine-state consistency audit.

    Cross-checks the four structures that must agree at every event
    boundary: the frame table (reverse map ground truth), the page
    table, the physical-memory allocator, and the swap-slot manager —
    plus the machine's swap-cache array ([retained_slot]).  The audit is
    read-only and draws no randomness, so wiring it into a run at any
    cadence never perturbs simulated behaviour.

    The machine runs it after every trial and, optionally, every
    [audit_every_ns] of simulated time (see {!Machine.config}). *)

type violation = {
  check : string;  (** stable kebab-case identifier of the failed check *)
  subject : int;   (** the pfn / vpn / count the check tripped on *)
  detail : string;
}

val audit :
  last_chaos:string option ->
  memcg:Mem.Memcg.t option ->
  owners:(int array * bool array) option ->
  pt:Mem.Page_table.t ->
  frames:Mem.Frame_table.t ->
  mem:Mem.Phys_mem.t ->
  swap:Swapdev.Swap_manager.t ->
  retained_slot:int array ->
  violation list
(** Empty list = consistent.  [retained_slot.(vpn)] is the machine's
    clean swap-cache slot for a resident page, or [-1].

    [owners] is [(owner_tid, killed)]: per-vpn owning thread (surviving
    swap-out) and the per-thread killed flags; enables the OOM-teardown
    checks — no page, resident or swapped, may still belong to a killed
    thread, and every live swap slot must be accounted for by exactly
    one swapped PTE or swap-cache entry.

    [memcg] enables the cgroup audits: per-cgroup charged-page counts
    are recomputed from the page table and must match the controller
    and sum to the resident population, only resident pages carry
    charges, effective protection never exceeds usage, and a dead
    cgroup (every member thread killed) charges nothing.

    Hotplug checks run unconditionally: no PTE or reverse-map entry may
    reference an offlined frame, the allocator's online counter must
    match a full scan, and [free + used] must equal the online
    population.  [last_chaos] (the machine's most recent injection, when
    chaos is active) is appended to every failure's detail so a
    violation names its likely trigger. *)

val pp_violation : Format.formatter -> violation -> unit

val report : violation list -> string
(** Multi-line human-readable summary. *)
