type workload_kind =
  | Tpch
  | Pagerank
  | Ycsb of Workload.Ycsb.variant

type swap_medium = Ssd | Zram

type exp = {
  workload : workload_kind;
  policy : Policy.Registry.spec;
  ratio : float;
  swap : swap_medium;
  trial : int;
}

let workload_kind_name = function
  | Tpch -> "tpch"
  | Pagerank -> "pagerank"
  | Ycsb v -> Workload.Ycsb.variant_name v

let all_workloads =
  [ Tpch; Pagerank; Ycsb Workload.Ycsb.A; Ycsb Workload.Ycsb.B; Ycsb Workload.Ycsb.C ]

let swap_name = function Ssd -> "ssd" | Zram -> "zram"

let exp_name e =
  Printf.sprintf "%s/%s/%.0f%%/%s/t%d"
    (workload_kind_name e.workload)
    (Policy.Registry.name e.policy)
    (e.ratio *. 100.0) (swap_name e.swap) e.trial

type profile = {
  trials : int;
  ycsb_trials : int;
  fast : bool;
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try max 1 (int_of_string (String.trim v)) with Failure _ -> default)
  | None -> default

let profile_memo = ref None

let profile () =
  match !profile_memo with
  | Some p -> p
  | None ->
    let p =
      {
        trials = env_int "REPRO_TRIALS" 25;
        ycsb_trials = env_int "REPRO_YCSB_TRIALS" 2;
        fast = Sys.getenv_opt "REPRO_FAST" <> None;
      }
    in
    profile_memo := Some p;
    p

let trials_for = function
  | Tpch | Pagerank -> (profile ()).trials
  | Ycsb _ -> (profile ()).ycsb_trials

let kind_id = function
  | Tpch -> 1
  | Pagerank -> 2
  | Ycsb Workload.Ycsb.A -> 3
  | Ycsb Workload.Ycsb.B -> 4
  | Ycsb Workload.Ycsb.C -> 5

(* Workload seed: (kind, trial) only — policies share workload
   instances within a trial. *)
let workload_seed kind ~trial = 0x5EED + (kind_id kind * 7919) + (trial * 104729)

let fast_tpch =
  {
    Workload.Tpch.default_config with
    Workload.Tpch.table_pages = 1_750;
    shuffle_pages = 1_125;
    hash_pages = 500;
    queries = 4;
  }

let fast_pagerank =
  {
    Workload.Pagerank.default_config with
    Workload.Pagerank.graph =
      {
        Workload.Pagerank.default_config.Workload.Pagerank.graph with
        Workload.Graph.n = 393_216;
      };
    iterations = 6;
  }

let fast_ycsb =
  {
    Workload.Ycsb.default_config with
    Workload.Ycsb.items = 28_000;
    requests = 220_000;
  }

let make_workload kind ~trial =
  let seed = workload_seed kind ~trial in
  let fast = (profile ()).fast in
  match kind with
  | Tpch ->
    let config = if fast then fast_tpch else Workload.Tpch.default_config in
    let rng = Engine.Rng.create seed in
    Workload.Chunk.Packed
      ((module Workload.Tpch), Workload.Tpch.create ~config ~rng ())
  | Pagerank ->
    let config = if fast then fast_pagerank else Workload.Pagerank.default_config in
    Workload.Chunk.Packed
      ((module Workload.Pagerank), Workload.Pagerank.create ~config ~seed ())
  | Ycsb variant ->
    let config = if fast then fast_ycsb else Workload.Ycsb.default_config in
    let rng = Engine.Rng.create seed in
    Workload.Chunk.Packed
      ((module Workload.Ycsb), Workload.Ycsb.create ~config ~variant ~rng ())

let machine_swap = function
  | Ssd -> Machine.ssd
  | Zram -> Machine.zram

let cache : (exp, Machine.result) Hashtbl.t = Hashtbl.create 256

let clear_cache () = Hashtbl.reset cache

(* Session-wide fault-injection / audit settings.  Cached results are
   invalidated on change: they were produced under other conditions. *)
let fault_plan = ref Swapdev.Faulty_device.none

let audit_every = ref 0

let set_fault_plan p =
  fault_plan := p;
  clear_cache ()

let set_audit_every_ns ns =
  audit_every := max 0 ns;
  clear_cache ()

let run_exp e =
  match Hashtbl.find_opt cache e with
  | Some r -> r
  | None ->
    let workload = make_workload e.workload ~trial:e.trial in
    let footprint = Workload.Chunk.packed_footprint workload in
    let capacity = max 64 (int_of_float (float_of_int footprint *. e.ratio)) in
    let cfg =
      {
        (Machine.default_config ~capacity_frames:capacity
           ~seed:(workload_seed e.workload ~trial:e.trial + 17))
        with
        Machine.swap = machine_swap e.swap;
        fault_plan = !fault_plan;
        audit_every_ns = !audit_every;
      }
    in
    let r = Machine.run cfg ~policy:(Policy.Registry.create e.policy) ~workload in
    Hashtbl.add cache e r;
    r

let run_cell ~workload ~policy ~ratio ~swap =
  List.init (trials_for workload) (fun trial ->
      run_exp { workload; policy; ratio; swap; trial })

let runtimes_s results =
  Array.of_list
    (List.map (fun r -> float_of_int r.Machine.runtime_ns /. 1e9) results)

let faults results =
  Array.of_list (List.map (fun r -> float_of_int r.Machine.major_faults) results)

let mean arr = Array.fold_left ( +. ) 0.0 arr /. float_of_int (max 1 (Array.length arr))

let mean_runtime_s results = mean (runtimes_s results)

let mean_faults results = mean (faults results)

let pooled pick results = Array.concat (List.map pick results)

let pooled_read_latencies results = pooled (fun r -> r.Machine.read_latencies) results

let pooled_write_latencies results =
  pooled (fun r -> r.Machine.write_latencies) results

let mean_read_latency_ns results = mean (pooled_read_latencies results)
