type workload_kind =
  | Tpch
  | Pagerank
  | Ycsb of Workload.Ycsb.variant
  | Fleet of { fl_tenants : int; fl_hot : int }

type swap_medium = Ssd | Zram

type exp = {
  workload : workload_kind;
  policy : Policy.Registry.spec;
  ratio : float;
  swap : swap_medium;
  trial : int;
}

let workload_kind_name = function
  | Tpch -> "tpch"
  | Pagerank -> "pagerank"
  | Ycsb v -> Workload.Ycsb.variant_name v
  | Fleet { fl_tenants; fl_hot } -> Printf.sprintf "fleet%d-h%d" fl_tenants fl_hot

let all_workloads =
  [ Tpch; Pagerank; Ycsb Workload.Ycsb.A; Ycsb Workload.Ycsb.B; Ycsb Workload.Ycsb.C ]

let swap_name = function Ssd -> "ssd" | Zram -> "zram"

let exp_name e =
  Printf.sprintf "%s/%s/%.0f%%/%s/t%d"
    (workload_kind_name e.workload)
    (Policy.Registry.name e.policy)
    (e.ratio *. 100.0) (swap_name e.swap) e.trial

(* Cache key: like [exp_name] but injective — the policy part encodes
   every parameter (two distinct [Mglru_custom] configs must not alias),
   and the ratio keeps full precision. *)
let exp_key e =
  Printf.sprintf "%s/%s/%.9g/%s/t%d"
    (workload_kind_name e.workload)
    (Policy.Registry.cache_key e.policy)
    e.ratio (swap_name e.swap) e.trial

type profile = {
  trials : int;
  ycsb_trials : int;
  fast : bool;
  scale : int;
}

let default_profile = { trials = 25; ycsb_trials = 2; fast = false; scale = 1 }

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n -> max 1 n
    | None ->
      Printf.eprintf "warning: ignoring %s=%S (not an integer); using %d\n%!"
        name v default;
      default)

(* The single place the REPRO_* fallback variables are read. *)
let profile_from_env () =
  {
    trials = env_int "REPRO_TRIALS" default_profile.trials;
    ycsb_trials = env_int "REPRO_YCSB_TRIALS" default_profile.ycsb_trials;
    fast = Sys.getenv_opt "REPRO_FAST" <> None;
    scale = env_int "REPRO_SCALE" default_profile.scale;
  }

(* ------------------------------------------------------------------ *)
(* Run context: everything that shapes a trial's result, as one        *)
(* explicit value instead of process-global mutation.                  *)
(* ------------------------------------------------------------------ *)

(* The result cache is sharded so parallel trials can publish results
   without serializing on one lock.  Shard count is a power of two well
   above any sane [jobs]. *)
let cache_shards = 32

(* What became of one trial.  Failures are first-class cache entries:
   a raising or deadline-hit trial is computed once, rendered as an
   explicit "failed" cell, and never silently retried within a run. *)
type trial_outcome =
  | Done of Machine.result
  | Failed of { reason : string; timed_out : bool }

type shard = {
  lock : Mutex.t;
  tbl : (string, trial_outcome) Hashtbl.t;
}

type ctx = {
  profile : profile;
  fault_plan : Swapdev.Faulty_device.plan;
  audit_every_ns : int;
  jobs : int;
  obs : Obs.config;
  prof : Obs.Prof.config;
  trial_timeout_s : float;
  journal : Journal.t option;
  cgroups : Mem.Memcg.spec option;
  chaos : Chaos.spec option;
  vmstat : bool;
  damon : Mem.Damon.config option;
  cache : shard array;
  (* Bookkeeping: every requested experiment, in first-request program
     order.  Appended only from the dispatching domain (prefetch logs
     its whole deduplicated todo list before any worker starts; direct
     [run_exp] misses happen in the callers' serial read-back), so the
     order — and hence the trace files and the end-of-run failure
     summary — is identical for every [jobs] value. *)
  logged : (string, unit) Hashtbl.t;
  log : exp list ref;
  log_lock : Mutex.t;
}

let make_ctx ?profile ?(fault_plan = Swapdev.Faulty_device.none)
    ?(audit_every_ns = 0) ?(jobs = 1) ?(obs = Obs.off)
    ?(prof = Obs.Prof.off) ?(trial_timeout_s = 0.0) ?journal ?cgroups ?chaos
    ?(vmstat = false) ?damon () =
  let profile =
    match profile with Some p -> p | None -> profile_from_env ()
  in
  {
    profile;
    fault_plan;
    audit_every_ns = max 0 audit_every_ns;
    jobs = max 1 jobs;
    obs;
    prof;
    trial_timeout_s = (if trial_timeout_s > 0.0 then trial_timeout_s else 0.0);
    journal;
    cgroups;
    chaos;
    vmstat;
    damon;
    cache =
      Array.init cache_shards (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 32 });
    logged = Hashtbl.create 64;
    log = ref [];
    log_lock = Mutex.create ();
  }

let profile ctx = ctx.profile

let fault_plan ctx = ctx.fault_plan

let audit_every_ns ctx = ctx.audit_every_ns

let jobs ctx = ctx.jobs

let obs ctx = ctx.obs

let prof ctx = ctx.prof

let trial_timeout_s ctx = ctx.trial_timeout_s

let cgroups ctx = ctx.cgroups

let chaos ctx = ctx.chaos

let vmstat ctx = ctx.vmstat

let damon ctx = ctx.damon

(* A derived context with a cgroup spec installed.  The cache, log and
   dedup tables are fresh: [cgroups] is ctx-level (like [fault_plan])
   and deliberately not part of {!exp_key}, so sharing the parent's
   cache would alias runs computed under different specs. *)
let with_cgroups ctx spec =
  {
    ctx with
    cgroups = Some spec;
    cache =
      Array.init cache_shards (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 32 });
    logged = Hashtbl.create 64;
    log = ref [];
    log_lock = Mutex.create ();
  }

(* Same derivation for chaos specs ([None] = strip any installed spec);
   [?cgroups] lets a chaos class that needs a cgroup (limit churn)
   install one in the same derived context. *)
let with_chaos ?cgroups ?obs ctx chaos =
  {
    ctx with
    chaos;
    cgroups = (match cgroups with Some _ as c -> c | None -> ctx.cgroups);
    obs = (match obs with Some o -> o | None -> ctx.obs);
    cache =
      Array.init cache_shards (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 32 });
    logged = Hashtbl.create 64;
    log = ref [];
    log_lock = Mutex.create ();
  }

(* Same derivation for the DAMON region monitor: monitored results
   carry heatmap captures, so they must never alias a cache populated
   without the monitor (results are otherwise identical — the monitor
   observes without perturbing — but the capture field differs). *)
let with_damon ctx config =
  {
    ctx with
    damon = Some config;
    cache =
      Array.init cache_shards (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 32 });
    logged = Hashtbl.create 64;
    log = ref [];
    log_lock = Mutex.create ();
  }

let log_exp ctx e key =
  Mutex.lock ctx.log_lock;
  if not (Hashtbl.mem ctx.logged key) then begin
    Hashtbl.add ctx.logged key ();
    ctx.log := e :: !(ctx.log)
  end;
  Mutex.unlock ctx.log_lock

let traced_exps ctx =
  Mutex.lock ctx.log_lock;
  let l = List.rev !(ctx.log) in
  Mutex.unlock ctx.log_lock;
  l

let shard_of ctx key =
  ctx.cache.(Hashtbl.hash key land (cache_shards - 1))

let cache_find ctx key =
  let s = shard_of ctx key in
  Mutex.lock s.lock;
  let r = Hashtbl.find_opt s.tbl key in
  Mutex.unlock s.lock;
  r

(* First insert wins, so concurrent duplicate computations (which are
   deterministic and identical anyway) keep physical equality stable for
   later lookups. *)
let cache_store ctx key result =
  let s = shard_of ctx key in
  Mutex.lock s.lock;
  let kept =
    match Hashtbl.find_opt s.tbl key with
    | Some existing -> existing
    | None ->
      Hashtbl.add s.tbl key result;
      result
  in
  Mutex.unlock s.lock;
  kept

let cached_results ctx =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = acc + Hashtbl.length s.tbl in
      Mutex.unlock s.lock;
      n)
    0 ctx.cache

(* ------------------------------------------------------------------ *)

let trials_for ctx = function
  | Tpch | Pagerank -> ctx.profile.trials
  | Ycsb _ | Fleet _ -> ctx.profile.ycsb_trials

let kind_id = function
  | Tpch -> 1
  | Pagerank -> 2
  | Ycsb Workload.Ycsb.A -> 3
  | Ycsb Workload.Ycsb.B -> 4
  | Ycsb Workload.Ycsb.C -> 5
  (* Offset past the fixed kinds and spread by both parameters so
     distinct fleet shapes never share a workload seed. *)
  | Fleet { fl_tenants; fl_hot } -> 6 + (fl_tenants * 13) + (fl_hot * 131)

(* Workload seed: (kind, trial) only — policies share workload
   instances within a trial. *)
let workload_seed kind ~trial = 0x5EED + (kind_id kind * 7919) + (trial * 104729)

let fast_tpch =
  {
    Workload.Tpch.default_config with
    Workload.Tpch.table_pages = 1_750;
    shuffle_pages = 1_125;
    hash_pages = 500;
    queries = 4;
  }

let fast_pagerank =
  {
    Workload.Pagerank.default_config with
    Workload.Pagerank.graph =
      {
        Workload.Pagerank.default_config.Workload.Pagerank.graph with
        Workload.Graph.n = 393_216;
      };
    iterations = 6;
  }

let fast_ycsb =
  {
    Workload.Ycsb.default_config with
    Workload.Ycsb.items = 28_000;
    requests = 220_000;
  }

(* --scale N: grow every workload's page-count dimensions by N toward
   the paper's native footprints (3-4M pages around N=256), while
   {!compute_exp} shrinks simulated per-page costs by the same factor —
   one simulated page at the default seed scale stands for 256 real
   pages.  N = 1 changes nothing, so default-scale figure output stays
   byte-identical. *)
let scale_tpch s (c : Workload.Tpch.config) =
  if s = 1 then c
  else
    {
      c with
      Workload.Tpch.table_pages = c.Workload.Tpch.table_pages * s;
      shuffle_pages = c.Workload.Tpch.shuffle_pages * s;
      hash_pages = c.Workload.Tpch.hash_pages * s;
      dimension_pages = c.Workload.Tpch.dimension_pages * s;
    }

let scale_pagerank s (c : Workload.Pagerank.config) =
  if s = 1 then c
  else
    {
      c with
      Workload.Pagerank.graph =
        {
          c.Workload.Pagerank.graph with
          Workload.Graph.n = c.Workload.Pagerank.graph.Workload.Graph.n * s;
        };
    }

let scale_ycsb s (c : Workload.Ycsb.config) =
  if s = 1 then c
  else
    {
      c with
      Workload.Ycsb.items = c.Workload.Ycsb.items * s;
      requests = c.Workload.Ycsb.requests * s;
    }

(* One fleet tenant: a YCSB instance with its own temperature.  The
   [hot] tenant runs a tighter zipf (1.1) over twice the requests — the
   runaway neighbour of the containment experiments; the rest are
   lukewarm (zipf 0.8). *)
let fleet_tenant ctx ~seed ~tenant ~hot =
  let base = if ctx.profile.fast then fast_ycsb else Workload.Ycsb.default_config in
  let base = scale_ycsb ctx.profile.scale base in
  let config =
    if tenant = hot then
      { base with Workload.Ycsb.zipf_exponent = 1.1; requests = 2 * base.Workload.Ycsb.requests }
    else { base with Workload.Ycsb.zipf_exponent = 0.8 }
  in
  let config = { config with Workload.Ycsb.threads = 2 } in
  let rng = Engine.Rng.create (seed + (tenant * 7919)) in
  Workload.Chunk.Packed
    ((module Workload.Ycsb), Workload.Ycsb.create ~config ~variant:Workload.Ycsb.A ~rng ())

let make_fleet ctx ~tenants ~hot ~trial =
  let seed = workload_seed (Fleet { fl_tenants = tenants; fl_hot = hot }) ~trial in
  Workload.Multi.create
    (List.init tenants (fun tenant -> fleet_tenant ctx ~seed ~tenant ~hot))

let make_workload ctx kind ~trial =
  let seed = workload_seed kind ~trial in
  let fast = ctx.profile.fast in
  let scale = ctx.profile.scale in
  match kind with
  | Tpch ->
    let config = if fast then fast_tpch else Workload.Tpch.default_config in
    let config = scale_tpch scale config in
    let rng = Engine.Rng.create seed in
    Workload.Chunk.Packed
      ((module Workload.Tpch), Workload.Tpch.create ~config ~rng ())
  | Pagerank ->
    let config = if fast then fast_pagerank else Workload.Pagerank.default_config in
    let config = scale_pagerank scale config in
    Workload.Chunk.Packed
      ((module Workload.Pagerank), Workload.Pagerank.create ~config ~seed ())
  | Ycsb variant ->
    let config = if fast then fast_ycsb else Workload.Ycsb.default_config in
    let config = scale_ycsb scale config in
    let rng = Engine.Rng.create seed in
    Workload.Chunk.Packed
      ((module Workload.Ycsb), Workload.Ycsb.create ~config ~variant ~rng ())
  | Fleet { fl_tenants; fl_hot } ->
    Workload.Chunk.Packed
      ((module Workload.Multi), make_fleet ctx ~tenants:fl_tenants ~hot:fl_hot ~trial)

let machine_swap = function
  | Ssd -> Machine.ssd
  | Zram -> Machine.zram

(* Per-trial wall-clock deadline as a cooperative cancellation token.
   The probe runs between simulation events, so it rate-limits the
   actual clock reads; cancellation can therefore overshoot the deadline
   by a few hundred events, which is fine for a watchdog. *)
let deadline_cancel timeout_s =
  if timeout_s <= 0.0 then Engine.Cancel.never
  else begin
    let deadline = Unix.gettimeofday () +. timeout_s in
    let calls = ref 0 in
    Engine.Cancel.of_probe
      ~reason:
        (Printf.sprintf "exceeded %gs wall-clock trial deadline" timeout_s)
      (fun () ->
        incr calls;
        !calls land 255 = 0 && Unix.gettimeofday () > deadline)
  end

(* One trial, computed from scratch: deterministic in (ctx, e) — the
   workload, machine and policy all seed from (kind, trial). *)
let compute_exp ctx e =
  (* Fleet trials keep the Multi.t visible: its per-tenant barrier
     groups must reach the machine so one tenant's rendezvous never
     blocks another's threads. *)
  let workload, barrier_groups =
    match e.workload with
    | Fleet { fl_tenants; fl_hot } ->
      let m = make_fleet ctx ~tenants:fl_tenants ~hot:fl_hot ~trial:e.trial in
      ( Workload.Chunk.Packed ((module Workload.Multi), m),
        Some (Workload.Multi.barrier_groups m) )
    | _ -> (make_workload ctx e.workload ~trial:e.trial, None)
  in
  let footprint = Workload.Chunk.packed_footprint workload in
  let capacity = max 64 (int_of_float (float_of_int footprint *. e.ratio)) in
  let cfg =
    {
      (Machine.default_config ~capacity_frames:capacity
         ~seed:(workload_seed e.workload ~trial:e.trial + 17))
      with
      Machine.swap = machine_swap e.swap;
      barrier_groups;
      fault_plan = ctx.fault_plan;
      audit_every_ns = ctx.audit_every_ns;
      obs = ctx.obs;
      prof = ctx.prof;
      cancel = deadline_cancel ctx.trial_timeout_s;
      cgroups = ctx.cgroups;
      chaos = ctx.chaos;
      vmstat = ctx.vmstat;
      damon = ctx.damon;
    }
  in
  (* Under --scale N the per-page cost factor shrinks as the footprint
     grows (see [scale_tpch]): region granularity coarsens toward the
     paper's 512-PTE leaves and the 256x seed-scale compression unwinds
     proportionally.  N = 1 leaves the machine config untouched. *)
  let cfg =
    let s = ctx.profile.scale in
    if s = 1 then cfg
    else
      {
        cfg with
        Machine.costs =
          Mem.Costs.scaled
            ~factor:(max 1 (256 / s))
            {
              Mem.Costs.default with
              Mem.Costs.region_size = min 512 (64 * s);
              spatial_scan_max = min 512 (64 * s);
            };
      }
  in
  Machine.run cfg ~policy:(Policy.Registry.create e.policy) ~workload

let journal_outcome ctx key outcome =
  match ctx.journal with
  | None -> ()
  | Some j ->
    let record =
      match outcome with
      | Done r ->
        {
          Journal.key;
          status = Journal.Trial_ok;
          reason = "";
          (* Captures are not journaled (see Journal's docs); strip them
             so the record is what a warm-started cache would hold.
             Vmstat captures are the exception — they are compact and
             encode losslessly, so they ride the record. *)
          result = Some { r with Machine.trace = None; heatmap = None };
        }
      | Failed { reason; timed_out } ->
        {
          Journal.key;
          status =
            (if timed_out then Journal.Trial_timeout else Journal.Trial_failed);
          reason;
          result = None;
        }
    in
    Journal.append j record

let try_exp ctx e =
  let key = exp_key e in
  (* Log before the cache probe: a warm-started (journal-installed)
     record is a hit that was never computed here, and the telemetry
     and profile writers replay the log. *)
  log_exp ctx e key;
  match cache_find ctx key with
  | Some o -> o
  | None ->
    let outcome =
      match compute_exp ctx e with
      | r -> Done r
      | exception Engine.Cancel.Cancelled reason ->
        Failed { reason; timed_out = true }
      | exception exn ->
        Failed { reason = Printexc.to_string exn; timed_out = false }
    in
    let kept = cache_store ctx key outcome in
    (* Journal only the outcome that won the (theoretical) publication
       race, so the segment mirrors the cache. *)
    if kept == outcome then journal_outcome ctx key kept;
    kept

let run_exp ctx e =
  match try_exp ctx e with
  | Done r -> r
  | Failed { reason; _ } ->
    failwith (Printf.sprintf "trial %s failed: %s" (exp_name e) reason)

(* Install journal records into the cache so a resumed sweep recomputes
   only what is missing.  Failure records are deliberately not
   installed: a resumed run retries them (the retry's record supersedes
   the old one at the next load).  Skipped under telemetry, because
   journal records carry no captures. *)
let warm_start ctx records =
  if Obs.config_enabled ctx.obs then begin
    prerr_endline
      "journal: telemetry enabled; skipping warm-start (journaled results \
       carry no traces)";
    0
  end
  else if ctx.prof.Obs.Prof.spans then begin
    prerr_endline
      "journal: span profiling enabled; skipping warm-start (journaled \
       results carry no spans)";
    0
  end
  else if ctx.damon <> None then begin
    prerr_endline
      "journal: region monitor enabled; skipping warm-start (journaled \
       results carry no heatmaps)";
    0
  end
  else begin
    (* Under totals-only profiling, journaled results from an unprofiled
       run carry no phase totals; skip those so the resumed sweep
       recomputes them with the profiler on.  Same for vmstat captures:
       a record journaled with counters off is recomputed when this run
       wants them. *)
    let want_profile = Obs.Prof.config_enabled ctx.prof in
    List.fold_left
      (fun n (r : Journal.record) ->
        match (r.status, r.result) with
        | Journal.Trial_ok, Some res
          when ((not want_profile) || res.Machine.profile <> None)
               && ((not ctx.vmstat) || res.Machine.vmstat <> None) ->
          ignore (cache_store ctx r.key (Done res));
          n + 1
        | _ -> n)
      0 records
  end

let failures ctx =
  List.filter_map
    (fun e ->
      match cache_find ctx (exp_key e) with
      | Some (Failed { reason; timed_out }) -> Some (e, reason, timed_out)
      | _ -> None)
    (traced_exps ctx)

(* Parallel fill of the cache.  Uncached experiments are deduplicated,
   then sharded across a transient domain pool; the results land in the
   cache, so subsequent serial reads (table printing, aggregation) see
   exactly what a serial run would have computed.  [jobs = 1] runs them
   in the calling domain. *)
let prefetch ctx exps =
  let seen = Hashtbl.create 64 in
  let fresh =
    List.filter
      (fun e ->
        let key = exp_key e in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      exps
  in
  (* Log the whole batch here, in list order, before any domain starts:
     workers then find every key already logged, so the trace order and
     the failure summary never depend on completion order.  Cache hits
     are logged too — a warm-started record was never computed in this
     process, yet must appear in the log, in the same position as in an
     uninterrupted run, for the writers that replay it. *)
  List.iter (fun e -> log_exp ctx e (exp_key e)) fresh;
  let todo = List.filter (fun e -> cache_find ctx (exp_key e) = None) fresh in
  match todo with
  | [] -> ()
  | [ e ] -> ignore (try_exp ctx e)
  | todo ->
    if ctx.jobs = 1 then List.iter (fun e -> ignore (try_exp ctx e)) todo
    else
      (* [try_exp] already converts trial exceptions into [Failed]
         cache entries; the supervised map is the backstop for anything
         raised outside it (e.g. journal I/O), so one broken task can
         never abort the rest of the batch silently mid-sweep. *)
      Engine.Pool.with_pool
        ~jobs:(min ctx.jobs (List.length todo))
        (fun pool ->
          let outcomes =
            Engine.Pool.map_supervised pool
              (fun e -> ignore (try_exp ctx e))
              (Array.of_list todo)
          in
          let todo = Array.of_list todo in
          Array.iteri
            (fun i o ->
              match o with
              | Engine.Pool.Ok () -> ()
              | Engine.Pool.Error { exn; _ } ->
                ignore
                  (cache_store ctx
                     (exp_key todo.(i))
                     (Failed
                        { reason = Printexc.to_string exn; timed_out = false })))
            outcomes)

let cell_exps ctx ~workload ~policy ~ratio ~swap =
  List.init (trials_for ctx workload) (fun trial ->
      { workload; policy; ratio; swap; trial })

let run_cell ctx ~workload ~policy ~ratio ~swap =
  let exps = cell_exps ctx ~workload ~policy ~ratio ~swap in
  prefetch ctx exps;
  List.map (run_exp ctx) exps

let try_cell ctx ~workload ~policy ~ratio ~swap =
  let exps = cell_exps ctx ~workload ~policy ~ratio ~swap in
  prefetch ctx exps;
  List.map (try_exp ctx) exps

let runtimes_s results =
  Array.of_list
    (List.map (fun r -> float_of_int r.Machine.runtime_ns /. 1e9) results)

let faults results =
  Array.of_list (List.map (fun r -> float_of_int r.Machine.major_faults) results)

let mean arr = Array.fold_left ( +. ) 0.0 arr /. float_of_int (max 1 (Array.length arr))

let mean_runtime_s results = mean (runtimes_s results)

let mean_faults results = mean (faults results)

let pooled pick results = Array.concat (List.map pick results)

let pooled_read_latencies results = pooled (fun r -> r.Machine.read_latencies) results

let pooled_write_latencies results =
  pooled (fun r -> r.Machine.write_latencies) results

let mean_read_latency_ns results = mean (pooled_read_latencies results)

(* ------------------------------------------------------------------ *)
(* Telemetry writers: serialize the captures of every traced            *)
(* experiment, in the deterministic log order.                          *)
(* ------------------------------------------------------------------ *)

let captured ctx =
  List.filter_map
    (fun e ->
      match cache_find ctx (exp_key e) with
      | Some (Done { Machine.trace = Some cap; _ }) -> Some (e, cap)
      | _ -> None)
    (traced_exps ctx)

let cell_fields e =
  [
    ("workload", Obs.Str (workload_kind_name e.workload));
    ("policy", Obs.Str (Policy.Registry.name e.policy));
    ("ratio", Obs.Float e.ratio);
    ("swap", Obs.Str (swap_name e.swap));
    ("trial", Obs.Int e.trial);
  ]

let write_trace ctx ~path =
  Atomic_io.replace ~path (fun oc ->
      let written = ref 0 in
      List.iter
        (fun (e, cap) ->
          let cell = cell_fields e in
          Array.iter
            (fun (t_ns, ev) ->
              output_string oc (Obs.jsonl_line ~cell ~t_ns ev);
              output_char oc '\n';
              incr written)
            cap.Obs.events)
        (captured ctx);
      !written)

let sample_csv_header = "workload,policy,ratio,swap,trial,t_ns,metric,value"

let write_samples ctx ~path =
  Atomic_io.replace ~path (fun oc ->
      let written = ref 0 in
      output_string oc sample_csv_header;
      output_char oc '\n';
      List.iter
        (fun (e, cap) ->
          let prefix =
            Printf.sprintf "%s,%s,%.9g,%s,%d,"
              (workload_kind_name e.workload)
              (Policy.Registry.name e.policy)
              e.ratio (swap_name e.swap) e.trial
          in
          Array.iter
            (fun (t_ns, metrics) ->
              List.iter
                (fun (metric, v) ->
                  output_string oc prefix;
                  output_string oc
                    (Printf.sprintf "%d,%s,%.9g\n" t_ns metric v);
                  incr written)
                metrics)
            cap.Obs.samples)
        (captured ctx);
      !written)

let merged_reclaim_hists ctx =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e, cap) ->
      let pname = Policy.Registry.name e.policy in
      match Hashtbl.find_opt tbl pname with
      | Some h ->
        Hashtbl.replace tbl pname
          (Stats.Histogram.merge h cap.Obs.reclaim_hist)
      | None ->
        order := pname :: !order;
        Hashtbl.add tbl pname cap.Obs.reclaim_hist)
    (captured ctx);
  List.rev_map (fun p -> (p, Hashtbl.find tbl p)) !order

(* ------------------------------------------------------------------ *)
(* Profiling: per-cell merges of the per-trial phase captures, in the  *)
(* same deterministic log order as the telemetry writers.              *)
(* ------------------------------------------------------------------ *)

let profiled ctx =
  List.filter_map
    (fun e ->
      match cache_find ctx (exp_key e) with
      | Some (Done { Machine.profile = Some cap; _ }) -> Some (e, cap)
      | _ -> None)
    (traced_exps ctx)

let profile_cells ctx =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e, cap) ->
      (* Cell identity: the experiment minus its trial index. *)
      let cell = { e with trial = 0 } in
      let key = exp_key cell in
      match Hashtbl.find_opt tbl key with
      | Some caps -> Hashtbl.replace tbl key (cap :: caps)
      | None ->
        order := (key, cell) :: !order;
        Hashtbl.add tbl key [ cap ])
    (profiled ctx);
  List.rev_map
    (fun (key, cell) ->
      (cell, Obs.Prof.merge (List.rev (Hashtbl.find tbl key))))
    !order

let cell_label e =
  Printf.sprintf "%s/%s/%.0f%%/%s"
    (workload_kind_name e.workload)
    (Policy.Registry.name e.policy)
    (e.ratio *. 100.0) (swap_name e.swap)

(* Folded-stack lines (flamegraph.pl / speedscope input):
   cell;class;phase;...;leaf <self ns>, merged over a cell's trials. *)
let write_folded ctx ~path =
  Atomic_io.replace ~path (fun oc ->
      let written = ref 0 in
      List.iter
        (fun (cell, m) ->
          let label = cell_label cell in
          Array.iter
            (fun (cls, code, ns) ->
              if ns > 0 then begin
                let frames =
                  List.map Obs.Prof.phase_name (Obs.Prof.path_phases code)
                in
                output_string oc
                  (String.concat ";"
                     (label :: m.Obs.Prof.m_classes.(cls) :: frames));
                output_string oc (Printf.sprintf " %d\n" ns);
                incr written
              end)
            m.Obs.Prof.m_totals)
        (profile_cells ctx);
      !written)

(* ------------------------------------------------------------------ *)
(* Vmstat: per-cell merges of the per-trial counter captures, and the  *)
(* heatmap CSV writer — both in the deterministic log order.           *)
(* ------------------------------------------------------------------ *)

let vmstatted ctx =
  List.filter_map
    (fun e ->
      match cache_find ctx (exp_key e) with
      | Some (Done { Machine.vmstat = Some cap; _ }) -> Some (e, cap)
      | _ -> None)
    (traced_exps ctx)

let vmstat_cells ctx =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e, cap) ->
      (* Cell identity: the experiment minus its trial index. *)
      let cell = { e with trial = 0 } in
      let key = exp_key cell in
      match Hashtbl.find_opt tbl key with
      | Some caps -> Hashtbl.replace tbl key (cap :: caps)
      | None ->
        order := (key, cell) :: !order;
        Hashtbl.add tbl key [ cap ])
    (vmstatted ctx);
  List.rev_map
    (fun (key, cell) ->
      (cell, Obs.Vmstat.merge (List.rev (Hashtbl.find tbl key))))
    !order

let heatmap_csv_header =
  "workload,policy,ratio,swap,trial,t_ns,asid,start_vpn,pages,accessed"

let write_heatmap ctx ~path =
  Atomic_io.replace ~path (fun oc ->
      let written = ref 0 in
      output_string oc heatmap_csv_header;
      output_char oc '\n';
      List.iter
        (fun e ->
          match cache_find ctx (exp_key e) with
          | Some (Done { Machine.heatmap = Some cap; _ }) ->
            let prefix =
              Printf.sprintf "%s,%s,%.9g,%s,%d,"
                (workload_kind_name e.workload)
                (Policy.Registry.name e.policy)
                e.ratio (swap_name e.swap) e.trial
            in
            Array.iter
              (fun (row : Mem.Damon.row) ->
                output_string oc prefix;
                output_string oc
                  (Printf.sprintf "%d,%d,%d,%d,%d\n" row.Mem.Damon.w_t_ns
                     row.Mem.Damon.w_asid row.Mem.Damon.w_start
                     row.Mem.Damon.w_pages row.Mem.Damon.w_accessed);
                incr written)
              cap.Mem.Damon.rows
          | _ -> ())
        (traced_exps ctx);
      !written)

(* Chrome trace-event JSON ("X" complete events, ts/dur in µs) from the
   span timelines; one trace process per profiled trial.  Requires the
   profiler's [spans] flag — trials profiled totals-only contribute
   nothing but their process metadata. *)
let write_perfetto ctx ~path =
  Atomic_io.replace ~path (fun oc ->
      let written = ref 0 in
      let first = ref true in
      let emit s =
        if !first then first := false else output_char oc ',';
        output_char oc '\n';
        output_string oc s
      in
      output_string oc "{\"traceEvents\":[";
      List.iteri
        (fun i (e, (cap : Obs.Prof.capture)) ->
          let pid = i + 1 in
          emit
            (Printf.sprintf
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
                \"args\":{\"name\":%s}}"
               pid
               (Obs.json_string
                  (Printf.sprintf "%s/t%d" (cell_label e) e.trial)));
          Array.iter
            (fun (tid, name, _cls) ->
              emit
                (Printf.sprintf
                   "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\
                    \"tid\":%d,\"args\":{\"name\":%s}}"
                   pid tid (Obs.json_string name)))
            cap.Obs.Prof.threads;
          Array.iter
            (fun (tid, phase, t0, t1) ->
              emit
                (Printf.sprintf
                   "{\"name\":%s,\"cat\":\"phase\",\"ph\":\"X\",\
                    \"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d}"
                   (Obs.json_string
                      (Obs.Prof.phase_name (Obs.Prof.phase_of_index phase)))
                   (float_of_int t0 /. 1e3)
                   (float_of_int (t1 - t0) /. 1e3)
                   pid tid);
              incr written)
            cap.Obs.Prof.spans)
        (profiled ctx);
      output_string oc "\n],\"displayTimeUnit\":\"ns\"}\n";
      !written)
