type violation = {
  check : string;
  subject : int;
  detail : string;
}

let v check subject fmt = Printf.ksprintf (fun detail -> { check; subject; detail }) fmt

let audit ~last_chaos ~memcg ~owners ~pt ~frames ~mem ~swap ~retained_slot =
  let out = ref [] in
  let add x = out := x :: !out in
  let nswapped = ref 0 and nretained = ref 0 in
  (* Name the owning cgroup in page-side failures so a violation under
     chaos churn points straight at the group whose limits moved. *)
  let owning_cg vpn =
    match memcg with
    | None -> ""
    | Some mg ->
      let cg = Mem.Memcg.cg_of_page mg vpn in
      if cg < 0 || cg >= Mem.Memcg.ncgroups mg then ""
      else Printf.sprintf " (cg=%s)" (Mem.Memcg.name mg cg)
  in
  (* Frame side: every mapped frame points at a present PTE that points
     back, and an allocated (non-free) physical frame. *)
  for pfn = 0 to Mem.Frame_table.frames frames - 1 do
    match Mem.Frame_table.owner frames pfn with
    | None -> ()
    | Some (asid, vpn) ->
      if asid <> 0 then add (v "frame-asid" pfn "unknown asid %d" asid);
      if Mem.Phys_mem.is_free mem pfn then
        add (v "frame-free" pfn "mapped frame is on the free list");
      if not (Mem.Phys_mem.is_online mem pfn) then
        add (v "frame-offline" pfn "mapped frame is offline");
      if vpn < 0 || vpn >= Mem.Page_table.pages pt then
        add (v "frame-vpn-range" pfn "owner vpn %d out of range" vpn)
      else begin
        let pte = Mem.Page_table.get pt vpn in
        if not (Mem.Pte.present pte) then
          add (v "frame-pte-absent" pfn "owner vpn %d has a non-present PTE" vpn)
        else if Mem.Pte.pfn pte <> pfn then
          add (v "frame-pte-mismatch" pfn "owner vpn %d maps pfn %d" vpn
                 (Mem.Pte.pfn pte))
      end
  done;
  (* Page-table side: present PTEs own their frame; swapped PTEs name a
     live slot; the swap cache only covers resident pages. *)
  for vpn = 0 to Mem.Page_table.pages pt - 1 do
    let pte = Mem.Page_table.get pt vpn in
    if Mem.Pte.present pte && Mem.Pte.swapped pte then
      add (v "pte-state" vpn "PTE both present and swapped");
    if Mem.Pte.present pte then begin
      let pfn = Mem.Pte.pfn pte in
      if not (Mem.Phys_mem.is_online mem pfn) then
        add
          (v "pte-offline-frame" vpn "present PTE maps offline pfn %d%s" pfn
             (owning_cg vpn));
      match Mem.Frame_table.owner frames pfn with
      | None ->
        add
          (v "pte-unowned-frame" vpn "present PTE maps unowned pfn %d%s" pfn
             (owning_cg vpn))
      | Some (_, owner_vpn) ->
        if owner_vpn <> vpn then
          add (v "pte-rmap-mismatch" vpn "pfn %d owned by vpn %d" pfn owner_vpn)
    end;
    if Mem.Pte.swapped pte then begin
      incr nswapped;
      let slot = Mem.Pte.swap_slot pte in
      if not (Swapdev.Swap_manager.slot_in_use swap slot) then
        add (v "pte-dead-slot" vpn "swapped PTE names freed slot %d" slot)
    end;
    let retained = retained_slot.(vpn) in
    if retained >= 0 then begin
      incr nretained;
      if not (Mem.Pte.present pte) then
        add (v "swap-cache-nonresident" vpn "retained slot %d without a resident page"
               retained);
      if not (Swapdev.Swap_manager.slot_in_use swap retained) then
        add (v "swap-cache-dead-slot" vpn "retained slot %d is freed" retained)
    end;
    (* Ownership: a page (resident or swapped out) must never belong to
       a killed thread — the OOM killer tears down the victim's whole
       address space, swap slots and rmap entries included. *)
    (match owners with
    | None -> ()
    | Some (owner_tid, killed) ->
      let o = owner_tid.(vpn) in
      if o >= 0 && o < Array.length killed && killed.(o) then
        add (v "owner-killed" vpn "page still owned by killed thread %d" o);
      if Mem.Pte.present pte && o < 0 then
        add (v "owner-missing" vpn "resident page has no owning thread"))
  done;
  (* Slot conservation: every live swap slot is referenced by exactly
     one swapped PTE or one swap-cache entry.  A leak (e.g. an OOM kill
     forgetting a victim's swapped pages) breaks the equality. *)
  let used_slots = Swapdev.Swap_manager.used_slots swap in
  if used_slots <> !nswapped + !nretained then
    add
      (v "count-swap-slots" used_slots
         "%d slots in use <> %d swapped PTEs + %d retained" used_slots !nswapped
         !nretained);
  (* Global accounting ties the three structures together. *)
  let mapped = Mem.Frame_table.mapped_count frames in
  let resident = Mem.Page_table.resident pt in
  (* The O(1) resident counter is maintained incrementally by
     [Page_table.set]; check it against the full-scan oracle. *)
  let resident_scan = Mem.Page_table.resident_scan pt in
  if resident <> resident_scan then
    add
      (v "count-resident-counter" resident
         "incremental resident %d <> scanned %d" resident resident_scan);
  if mapped <> resident then
    add (v "count-mapped-resident" mapped "mapped frames %d <> resident PTEs %d"
           mapped resident);
  let used = Mem.Phys_mem.used_count mem in
  if used <> mapped then
    add (v "count-used-mapped" used "allocated frames %d <> mapped frames %d" used
           mapped);
  (* Hotplug accounting: the online population, recomputed by scan, must
     match the allocator's counter, and free + used must cover exactly
     the online frames — an offlined frame is neither free nor mapped. *)
  let online_scan = ref 0 in
  for pfn = 0 to Mem.Frame_table.frames frames - 1 do
    if Mem.Phys_mem.is_online mem pfn then incr online_scan
    else begin
      if Mem.Phys_mem.is_free mem pfn then
        add (v "hotplug-offline-free" pfn "offline frame is on the free list");
      if Mem.Frame_table.is_mapped frames pfn then
        add (v "hotplug-offline-mapped" pfn "offline frame is mapped")
    end
  done;
  let online = Mem.Phys_mem.online_count mem in
  if !online_scan <> online then
    add
      (v "hotplug-online-count" online "online counter %d <> scanned %d" online
         !online_scan);
  if Mem.Phys_mem.free_count mem + used <> online then
    add
      (v "hotplug-balance" online "free %d + used %d <> online %d"
         (Mem.Phys_mem.free_count mem) used online);
  (* Cgroup accounting: recomputed per-cgroup charges must match the
     controller's counters and sum to the global resident population;
     exactly the resident pages are charged; protection never exceeds
     what the group actually uses; a dead cgroup (every thread killed)
     holds nothing. *)
  (match memcg with
  | None -> ()
  | Some mg ->
    let n = Mem.Memcg.ncgroups mg in
    let recount = Array.make n 0 in
    for vpn = 0 to Mem.Page_table.pages pt - 1 do
      let cg = Mem.Memcg.cg_of_page mg vpn in
      let present = Mem.Pte.present (Mem.Page_table.get pt vpn) in
      if cg < -1 || cg >= n then
        add (v "memcg-range" vpn "page charged to unknown cgroup %d" cg)
      else if present && cg < 0 then
        add (v "memcg-uncharged" vpn "resident page is not charged")
      else if (not present) && cg >= 0 then
        add (v "memcg-stale-charge" vpn "non-resident page charged to cgroup %d" cg)
      else if cg >= 0 then recount.(cg) <- recount.(cg) + 1
    done;
    let total = ref 0 in
    for cg = 0 to n - 1 do
      let usage = Mem.Memcg.usage mg cg in
      total := !total + usage;
      if usage <> recount.(cg) then
        add
          (v "memcg-usage" cg "cgroup charges %d pages but owns %d" usage
             recount.(cg));
      let protection = min (Mem.Memcg.low mg cg) usage in
      if protection > usage then
        add (v "memcg-protection" cg "protection %d exceeds usage %d" protection usage)
    done;
    if !total <> resident then
      add
        (v "memcg-total" !total "per-cgroup charges sum to %d <> %d resident"
           !total resident);
    (match owners with
    | None -> ()
    | Some (_, killed) ->
      for cg = 1 to n - 1 do
        let members = ref 0 and live = ref 0 in
        Array.iteri
          (fun tid k ->
            if Mem.Memcg.cg_of_thread mg tid = cg then begin
              incr members;
              if not k then incr live
            end)
          killed;
        if !members > 0 && !live = 0 && Mem.Memcg.usage mg cg > 0 then
          add
            (v "memcg-dead" cg "dead cgroup (all %d threads killed) still charges %d pages"
               !members (Mem.Memcg.usage mg cg))
      done));
  let vs = List.rev !out in
  (* Stamp every failure with the most recent chaos injection: a
     violation surfacing right after a transient names its trigger. *)
  match last_chaos with
  | None -> vs
  | Some lc ->
    List.map (fun x -> { x with detail = x.detail ^ "; last chaos: " ^ lc }) vs

let pp_violation fmt x =
  Format.fprintf fmt "[%s] subject %d: %s" x.check x.subject x.detail

let report violations =
  match violations with
  | [] -> "invariants: ok"
  | vs ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "invariants: %d violation(s)\n" (List.length vs));
    List.iter
      (fun x ->
        Buffer.add_string buf
          (Printf.sprintf "  [%s] subject %d: %s\n" x.check x.subject x.detail))
      vs;
    Buffer.contents buf
