type violation = {
  check : string;
  subject : int;
  detail : string;
}

let v check subject fmt = Printf.ksprintf (fun detail -> { check; subject; detail }) fmt

let audit ~pt ~frames ~mem ~swap ~retained_slot =
  let out = ref [] in
  let add x = out := x :: !out in
  (* Frame side: every mapped frame points at a present PTE that points
     back, and an allocated (non-free) physical frame. *)
  for pfn = 0 to Mem.Frame_table.frames frames - 1 do
    match Mem.Frame_table.owner frames pfn with
    | None -> ()
    | Some (asid, vpn) ->
      if asid <> 0 then add (v "frame-asid" pfn "unknown asid %d" asid);
      if Mem.Phys_mem.is_free mem pfn then
        add (v "frame-free" pfn "mapped frame is on the free list");
      if vpn < 0 || vpn >= Mem.Page_table.pages pt then
        add (v "frame-vpn-range" pfn "owner vpn %d out of range" vpn)
      else begin
        let pte = Mem.Page_table.get pt vpn in
        if not (Mem.Pte.present pte) then
          add (v "frame-pte-absent" pfn "owner vpn %d has a non-present PTE" vpn)
        else if Mem.Pte.pfn pte <> pfn then
          add (v "frame-pte-mismatch" pfn "owner vpn %d maps pfn %d" vpn
                 (Mem.Pte.pfn pte))
      end
  done;
  (* Page-table side: present PTEs own their frame; swapped PTEs name a
     live slot; the swap cache only covers resident pages. *)
  for vpn = 0 to Mem.Page_table.pages pt - 1 do
    let pte = Mem.Page_table.get pt vpn in
    if Mem.Pte.present pte && Mem.Pte.swapped pte then
      add (v "pte-state" vpn "PTE both present and swapped");
    if Mem.Pte.present pte then begin
      let pfn = Mem.Pte.pfn pte in
      match Mem.Frame_table.owner frames pfn with
      | None -> add (v "pte-unowned-frame" vpn "present PTE maps unowned pfn %d" pfn)
      | Some (_, owner_vpn) ->
        if owner_vpn <> vpn then
          add (v "pte-rmap-mismatch" vpn "pfn %d owned by vpn %d" pfn owner_vpn)
    end;
    if Mem.Pte.swapped pte then begin
      let slot = Mem.Pte.swap_slot pte in
      if not (Swapdev.Swap_manager.slot_in_use swap slot) then
        add (v "pte-dead-slot" vpn "swapped PTE names freed slot %d" slot)
    end;
    let retained = retained_slot.(vpn) in
    if retained >= 0 then begin
      if not (Mem.Pte.present pte) then
        add (v "swap-cache-nonresident" vpn "retained slot %d without a resident page"
               retained);
      if not (Swapdev.Swap_manager.slot_in_use swap retained) then
        add (v "swap-cache-dead-slot" vpn "retained slot %d is freed" retained)
    end
  done;
  (* Global accounting ties the three structures together. *)
  let mapped = Mem.Frame_table.mapped_count frames in
  let resident = Mem.Page_table.resident pt in
  if mapped <> resident then
    add (v "count-mapped-resident" mapped "mapped frames %d <> resident PTEs %d"
           mapped resident);
  let used = Mem.Phys_mem.used_count mem in
  if used <> mapped then
    add (v "count-used-mapped" used "allocated frames %d <> mapped frames %d" used
           mapped);
  List.rev !out

let pp_violation fmt x =
  Format.fprintf fmt "[%s] subject %d: %s" x.check x.subject x.detail

let report violations =
  match violations with
  | [] -> "invariants: ok"
  | vs ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "invariants: %d violation(s)\n" (List.length vs));
    List.iter
      (fun x ->
        Buffer.add_string buf
          (Printf.sprintf "  [%s] subject %d: %s\n" x.check x.subject x.detail))
      vs;
    Buffer.contents buf
