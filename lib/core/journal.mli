(** Durable, resumable result store for experiment sweeps.

    A journal is an append-only JSONL file holding one record per
    {e completed} trial — the full {!Machine.result} for successes, or
    the failure reason for trials that raised or hit their wall-clock
    deadline.  Because every record is appended (and fsynced) the moment
    its trial finishes, a sweep killed at any point loses at most the
    trials that were in flight: re-running with [--resume] warm-starts
    the result cache from the journal and recomputes only what is
    missing, producing output byte-identical to an uninterrupted run.

    {b Record framing.}  Each line is one flat JSON object whose first
    field is an MD5 checksum of the rest of the line:

    {v {"sum":"<32 hex>","key":"tpch/lru/0.2/ssd/t0","status":"ok",...} v}

    The checksum makes torn writes (a crash mid-append) and bit rot
    detectable per record: on load, any line that fails framing,
    checksum or schema validation is reported to stderr with its line
    number and byte offset, then skipped — a corrupt record costs one
    re-run, never the whole journal.

    {b Rotation.}  Opening a journal for resume compacts it: the valid
    records are rewritten through {!Atomic_io.replace} (temp file,
    fsync, rename), so torn tails and duplicate keys are dropped
    atomically and the segment on disk is always wholly valid before new
    appends begin.

    {b What is not journaled.}  Telemetry captures ([result.trace]) are
    too large and are rebuilt by re-running; the runner skips journal
    warm-start when tracing is enabled. *)

type status =
  | Trial_ok
  | Trial_failed   (** the trial raised; [reason] holds the exception *)
  | Trial_timeout  (** the trial exceeded its wall-clock deadline *)

type record = {
  key : string;  (** injective trial key ({!Runner.exp_key}) *)
  status : status;
  reason : string;  (** empty for [Trial_ok] *)
  result : Machine.result option;
      (** [Some] iff [Trial_ok]; its [trace] field is always [None] *)
}

val status_name : status -> string
(** ["ok"], ["failed"] or ["timeout"] — the on-disk [status] field. *)

type t
(** An open journal.  Appends are mutex-protected and fsynced, so any
    domain may record a finished trial directly. *)

val open_ : path:string -> resume:bool -> t * record list
(** [open_ ~path ~resume] opens (creating if needed) the journal at
    [path] for appending and returns the surviving records.

    With [resume = true], existing records are loaded first: invalid
    lines are logged and skipped, duplicate keys keep the {e last}
    occurrence (a retried trial supersedes its earlier failure), and the
    compacted segment is atomically rewritten before the handle is
    returned.  With [resume = false] any existing file is replaced by an
    empty journal and the record list is empty. *)

val append : t -> record -> unit
(** Serialize, checksum, append and fsync one record.  Durable when this
    returns. *)

val close : t -> unit
(** Close the underlying channel.  Idempotent. *)

val load : path:string -> record list
(** Read-only variant of the [resume] load: the surviving records of
    [path] (empty if the file does not exist), without rewriting or
    opening anything. *)

(**/**)

val record_to_line : record -> string
(** The exact line [append] writes (without the newline) — exposed for
    tests. *)

val record_of_line : string -> (record, string) result
(** Validate framing + checksum and decode one line — exposed for
    tests. *)
