let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c w ->
        let cell = match List.nth_opt row c with Some s -> s | None -> "" in
        if c = 0 then Printf.printf "%-*s" w cell else Printf.printf "  %*s" w cell)
      widths;
    print_newline ()
  in
  print_row header;
  List.iteri
    (fun c w -> if c = 0 then print_string (String.make w '-') else Printf.printf "  %s" (String.make w '-'))
    widths;
  print_newline ();
  List.iter print_row rows

(* Failed cells flow through aggregation as NaN (any arithmetic with a
   failed trial poisons the derived value), and every formatter renders
   NaN as the explicit "failed" marker.  Clean runs never produce NaN,
   so their output is byte-identical to builds without this path. *)
let failed_marker = "failed"

let unless_failed fmt x = if Float.is_nan x then failed_marker else fmt x

let f2 = unless_failed (Printf.sprintf "%.2f")

let f3 = unless_failed (Printf.sprintf "%.3f")

let fnorm = unless_failed (Printf.sprintf "%.2fx")

let fsec =
  unless_failed (fun x ->
      if Float.abs x >= 100.0 then Printf.sprintf "%.0fs" x
      else if Float.abs x >= 1.0 then Printf.sprintf "%.1fs" x
      else Printf.sprintf "%.3fs" x)

let fcount =
  unless_failed (fun x ->
      let s = Printf.sprintf "%.0f" x in
      (* Group digits only: separating from the end of the full string
         would misplace a comma right after the sign when the digit
         count is a multiple of three ("-,774,600"). *)
      let neg = String.length s > 0 && s.[0] = '-' in
      let digits = if neg then String.sub s 1 (String.length s - 1) else s in
      let n = String.length digits in
      let buf = Buffer.create (n + (n / 3) + 1) in
      if neg then Buffer.add_char buf '-';
      String.iteri
        (fun i c ->
          if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
          Buffer.add_char buf c)
        digits;
      Buffer.contents buf)

let fns =
  unless_failed (fun x ->
      if Float.abs x >= 1e9 then Printf.sprintf "%.2fs" (x /. 1e9)
      else if Float.abs x >= 1e6 then Printf.sprintf "%.2fms" (x /. 1e6)
      else if Float.abs x >= 1e3 then Printf.sprintf "%.1fus" (x /. 1e3)
      else Printf.sprintf "%.0fns" x)

let note s = Printf.printf "  %s\n" s

(* ------------------------------------------------------------------ *)
(* Trace summary: aggregate a JSONL trace file back into tables.       *)
(* ------------------------------------------------------------------ *)

(* Per-(cell, cgroup) accumulator for the cgroup subsection. *)
type cg_stats = {
  mutable c_ooms : int;
  mutable c_throttles : int;
  mutable c_throttled_ns : int;
  mutable c_reclaims : int;
  mutable c_reclaim_freed : int;
  mutable c_psi_some_ns : int;
  mutable c_psi_full_ns : int;
  mutable c_psi_window_ns : int;
}

type trace_group = {
  mutable g_events : int;
  mutable g_trials : int list; (* distinct trial ids, insertion order *)
  g_kinds : (string, int) Hashtbl.t;
  g_reclaim : Stats.Histogram.t;
  g_swap_read : Stats.Histogram.t;
  g_swap_write : Stats.Histogram.t;
  g_cgroups : (string, cg_stats) Hashtbl.t;
  mutable g_cg_order : string list; (* appearance order, reversed *)
  mutable g_ws_hits : int; (* refaults whose shadow entry survived *)
  mutable g_ws_misses : int;
  mutable g_ws_activated : int;
  mutable g_ws_restored : int;
}

let trace_kinds =
  [
    "evict"; "reclaim"; "promote"; "demote"; "aging_pass"; "swap_read";
    "swap_write"; "oom_kill"; "workingset_refault";
  ]

let trace_summary ~path =
  let ic = open_in path in
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  let lineno = ref 0 in
  (* Byte offset of the current line's first character: pinpoints the
     first malformed record precisely enough to inspect it with dd or a
     hex editor, which a line number alone does not when records are
     long. *)
  let offset = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          incr lineno;
          let malformed msg =
            failwith
              (Printf.sprintf
                 "%s: malformed record at line %d (byte offset %d): %s" path
                 !lineno !offset msg)
          in
          if String.trim line <> "" then begin
            let fields =
              match Obs.parse_line line with
              | Ok fields -> fields
              | Error msg -> malformed msg
            in
            let str k =
              match Obs.field_string fields k with
              | Some s -> s
              | None -> malformed (Printf.sprintf "missing field %S" k)
            in
            let num k =
              match Obs.field fields k with
              | Some (Obs.Int i) -> float_of_int i
              | Some (Obs.Float f) -> f
              | _ -> malformed (Printf.sprintf "missing field %S" k)
            in
            let key =
              Printf.sprintf "%s/%s/%g%%/%s" (str "workload") (str "policy")
                (num "ratio" *. 100.0)
                (str "swap")
            in
            let g =
              match Hashtbl.find_opt groups key with
              | Some g -> g
              | None ->
                (* Swap I/O latencies share the reclaim histograms'
                   log-binned layout, so quantile tables render with the
                   same resolution across subsections. *)
                let hist () =
                  Stats.Histogram.create ~buckets_per_decade:10
                    ~lo:Obs.reclaim_hist_lo ~hi:Obs.reclaim_hist_hi ()
                in
                let g =
                  {
                    g_events = 0;
                    g_trials = [];
                    g_kinds = Hashtbl.create 8;
                    g_reclaim = hist ();
                    g_swap_read = hist ();
                    g_swap_write = hist ();
                    g_cgroups = Hashtbl.create 4;
                    g_cg_order = [];
                    g_ws_hits = 0;
                    g_ws_misses = 0;
                    g_ws_activated = 0;
                    g_ws_restored = 0;
                  }
                in
                Hashtbl.add groups key g;
                order := key :: !order;
                g
            in
            g.g_events <- g.g_events + 1;
            (match Obs.field_int fields "trial" with
            | Some t when not (List.mem t g.g_trials) ->
              g.g_trials <- t :: g.g_trials
            | _ -> ());
            let kind = str "kind" in
            Hashtbl.replace g.g_kinds kind
              (1 + Option.value ~default:0 (Hashtbl.find_opt g.g_kinds kind));
            let latency_into h =
              match Obs.field_int fields "latency_ns" with
              | Some ns -> Stats.Histogram.add h (float_of_int (max 1 ns))
              | None -> ()
            in
            let cg_of () =
              let name = str "cg" in
              match Hashtbl.find_opt g.g_cgroups name with
              | Some c -> c
              | None ->
                let c =
                  {
                    c_ooms = 0;
                    c_throttles = 0;
                    c_throttled_ns = 0;
                    c_reclaims = 0;
                    c_reclaim_freed = 0;
                    c_psi_some_ns = 0;
                    c_psi_full_ns = 0;
                    c_psi_window_ns = 0;
                  }
                in
                Hashtbl.add g.g_cgroups name c;
                g.g_cg_order <- name :: g.g_cg_order;
                c
            in
            let int_f k =
              match Obs.field_int fields k with
              | Some i -> i
              | None -> malformed (Printf.sprintf "missing field %S" k)
            in
            (match kind with
            | "reclaim" -> latency_into g.g_reclaim
            | "swap_read" -> latency_into g.g_swap_read
            | "swap_write" -> latency_into g.g_swap_write
            | "throttle" ->
              let c = cg_of () in
              c.c_throttles <- c.c_throttles + 1;
              c.c_throttled_ns <- c.c_throttled_ns + int_f "stall_ns"
            | "cgroup_oom" ->
              let c = cg_of () in
              c.c_ooms <- c.c_ooms + 1
            | "cgroup_reclaim" ->
              let c = cg_of () in
              c.c_reclaims <- c.c_reclaims + 1;
              c.c_reclaim_freed <- c.c_reclaim_freed + int_f "freed"
            | "psi" ->
              let c = cg_of () in
              c.c_psi_some_ns <- c.c_psi_some_ns + int_f "some_ns";
              c.c_psi_full_ns <- c.c_psi_full_ns + int_f "full_ns";
              c.c_psi_window_ns <- c.c_psi_window_ns + int_f "window_ns"
            | "workingset_refault" -> begin
              let flag k =
                match Obs.field fields k with
                | Some (Obs.Bool b) -> b
                | _ -> malformed (Printf.sprintf "missing field %S" k)
              in
              if flag "shadow" then begin
                g.g_ws_hits <- g.g_ws_hits + 1;
                if flag "activated" then
                  g.g_ws_activated <- g.g_ws_activated + 1;
                if flag "restored" then g.g_ws_restored <- g.g_ws_restored + 1
              end
              else g.g_ws_misses <- g.g_ws_misses + 1
            end
            | _ -> ())
          end;
          offset := !offset + String.length line + 1
        done
      with End_of_file -> ());
  let cells = List.rev !order in
  section (Printf.sprintf "Trace summary: %s" path);
  let kind_count g k = Option.value ~default:0 (Hashtbl.find_opt g.g_kinds k) in
  table
    ~header:("cell" :: "trials" :: "events" :: trace_kinds)
    (List.map
       (fun key ->
         let g = Hashtbl.find groups key in
         key
         :: string_of_int (List.length g.g_trials)
         :: fcount (float_of_int g.g_events)
         :: List.map (fun k -> fcount (float_of_int (kind_count g k))) trace_kinds)
       cells);
  let with_reclaims =
    List.filter
      (fun key -> Stats.Histogram.count (Hashtbl.find groups key).g_reclaim > 0)
      cells
  in
  if with_reclaims <> [] then begin
    subsection "direct-reclaim episode latency";
    table
      ~header:[ "cell"; "episodes"; "p50"; "p90"; "p99"; "max"; "mean" ]
      (List.map
         (fun key ->
           let h = (Hashtbl.find groups key).g_reclaim in
           let q p = fns (Stats.Histogram.quantile h p) in
           [
             key;
             fcount (float_of_int (Stats.Histogram.count h));
             q 0.5; q 0.9; q 0.99;
             fns (Stats.Histogram.max_seen h);
             fns (Stats.Histogram.mean h);
           ])
         with_reclaims)
  end;
  (* One row per (cell, direction) that saw any swap I/O, cells in
     appearance order, reads before writes. *)
  let swap_rows =
    List.concat_map
      (fun key ->
        let g = Hashtbl.find groups key in
        List.filter_map
          (fun (op, h) ->
            if Stats.Histogram.count h = 0 then None
            else
              let q p = fns (Stats.Histogram.quantile h p) in
              Some
                [
                  key; op;
                  fcount (float_of_int (Stats.Histogram.count h));
                  q 0.5; q 0.9; q 0.99;
                  fns (Stats.Histogram.max_seen h);
                  fns (Stats.Histogram.mean h);
                ])
          [ ("read", g.g_swap_read); ("write", g.g_swap_write) ])
      cells
  in
  if swap_rows <> [] then begin
    subsection "swap I/O latency";
    table
      ~header:[ "cell"; "op"; "ops"; "p50"; "p90"; "p99"; "max"; "mean" ]
      swap_rows
  end;
  (* Cgroup containment: one row per (cell, cgroup) that emitted any
     throttle / cgroup_reclaim / cgroup_oom / psi event.  PSI averages
     are stall time over observed window time. *)
  let psi_avg stall window =
    if window = 0 then "-"
    else Printf.sprintf "%.1f%%" (100.0 *. float_of_int stall /. float_of_int window)
  in
  let cg_rows =
    List.concat_map
      (fun key ->
        let g = Hashtbl.find groups key in
        List.map
          (fun name ->
            let c = Hashtbl.find g.g_cgroups name in
            [
              key; name;
              fcount (float_of_int c.c_ooms);
              fcount (float_of_int c.c_throttles);
              fns (float_of_int c.c_throttled_ns);
              fcount (float_of_int c.c_reclaims);
              fcount (float_of_int c.c_reclaim_freed);
              psi_avg c.c_psi_some_ns c.c_psi_window_ns;
              psi_avg c.c_psi_full_ns c.c_psi_window_ns;
            ])
          (List.rev g.g_cg_order))
      cells
  in
  if cg_rows <> [] then begin
    subsection "cgroups";
    table
      ~header:
        [
          "cell"; "cgroup"; "oom_kills"; "throttles"; "throttled";
          "reclaims"; "reclaimed"; "psi_some"; "psi_full";
        ]
      cg_rows
  end;
  (* Workingset refault classification: one row per cell that emitted
     any workingset_refault event, splitting refaults into shadow hits
     (a surviving shadow entry yielded a distance) and misses, with the
     activated / restored verdicts among the hits. *)
  let ws_cells =
    List.filter
      (fun key ->
        let g = Hashtbl.find groups key in
        g.g_ws_hits + g.g_ws_misses > 0)
      cells
  in
  if ws_cells <> [] then begin
    subsection "workingset refaults";
    table
      ~header:
        [ "cell"; "shadow_hits"; "shadow_misses"; "activated"; "restored" ]
      (List.map
         (fun key ->
           let g = Hashtbl.find groups key in
           [
             key;
             fcount (float_of_int g.g_ws_hits);
             fcount (float_of_int g.g_ws_misses);
             fcount (float_of_int g.g_ws_activated);
             fcount (float_of_int g.g_ws_restored);
           ])
         ws_cells)
  end

(* ------------------------------------------------------------------ *)
(* Vmstat tables: kernel counter names as rows, cells as columns.      *)
(* ------------------------------------------------------------------ *)

let vmstat_table cols =
  let caps = List.map snd cols in
  (* A two-column table is almost always a policy pair; the delta
     column is what the paper's Clock-vs-MG-LRU comparisons read. *)
  let delta =
    match caps with
    | [ a; b ] ->
      Some (fun i -> b.Obs.Vmstat.counters.(i) - a.Obs.Vmstat.counters.(i))
    | _ -> None
  in
  table
    ~header:
      (("counter" :: List.map fst cols)
      @ match delta with Some _ -> [ "delta" ] | None -> [])
    (List.init Obs.Vmstat.nr_counters (fun i ->
         (Obs.Vmstat.name i
         :: List.map
              (fun (c : Obs.Vmstat.capture) ->
                fcount (float_of_int c.Obs.Vmstat.counters.(i)))
              caps)
         @
         match delta with
         | Some d -> [ fcount (float_of_int (d i)) ]
         | None -> []))

let vmstat_refault_hist cols =
  let caps = List.map snd cols in
  (* Trim trailing all-zero buckets so small runs stay compact; the
     bucket layout itself is fixed (log2, bucket 0 = {0,1}). *)
  let last =
    List.fold_left
      (fun acc (c : Obs.Vmstat.capture) ->
        let m = ref (-1) in
        Array.iteri (fun i n -> if n > 0 then m := i) c.Obs.Vmstat.refault_dist;
        max acc !m)
      (-1) caps
  in
  if last >= 0 then begin
    subsection "refault distance (pages evicted between eviction and refault)";
    let label i =
      if i = 0 then "0-1"
      else if i = Obs.Vmstat.dist_buckets - 1 then
        Printf.sprintf ">=%d" (1 lsl i)
      else Printf.sprintf "%d-%d" (1 lsl i) ((1 lsl (i + 1)) - 1)
    in
    table
      ~header:("distance" :: List.map fst cols)
      (List.init (last + 1) (fun i ->
           label i
           :: List.map
                (fun (c : Obs.Vmstat.capture) ->
                  fcount (float_of_int c.Obs.Vmstat.refault_dist.(i)))
                caps))
  end

(* ------------------------------------------------------------------ *)
(* Profile table: perf-style rendering of merged phase totals.         *)
(* ------------------------------------------------------------------ *)

let profile_table (m : Obs.Prof.merged) =
  let n = Obs.Prof.n_phases in
  let ncls = Array.length m.Obs.Prof.m_classes in
  let self = Array.make_matrix ncls n 0 in
  let incl = Array.make n 0 in
  Array.iter
    (fun (cls, code, ns) ->
      let phases = Obs.Prof.path_phases code in
      (match List.rev phases with
      | leaf :: _ ->
        let i = Obs.Prof.phase_index leaf in
        self.(cls).(i) <- self.(cls).(i) + ns
      | [] -> ());
      (* Inclusive time counts a nanosecond once per phase on its path
         even if the phase recurs (it cannot, but dedup keeps the
         invariant explicit). *)
      List.iter
        (fun p ->
          let i = Obs.Prof.phase_index p in
          incl.(i) <- incl.(i) + ns)
        (List.sort_uniq compare phases))
    m.Obs.Prof.m_totals;
  let self_total i =
    let s = ref 0 in
    for c = 0 to ncls - 1 do
      s := !s + self.(c).(i)
    done;
    !s
  in
  (* Core-seconds denominator: CPU phases only — waits are simulated
     stalls, not processor time, so they get a "-" share. *)
  let cpu_total = ref 0 in
  for i = 0 to n - 1 do
    if not (Obs.Prof.wait_phase (Obs.Prof.phase_of_index i)) then
      cpu_total := !cpu_total + self_total i
  done;
  (* Guest-hook phases appear only when a guest policy actually charged
     them, keeping builtin-only tables identical to pre-SDK output. *)
  let visible =
    List.filter
      (fun p ->
        let i = Obs.Prof.phase_index p in
        (not (Obs.Prof.guest_phase p)) || self_total i > 0 || incl.(i) > 0)
      (Array.to_list Obs.Prof.all_phases)
  in
  let rows =
    List.map
      (fun p ->
        let i = Obs.Prof.phase_index p in
        let st = self_total i in
        Obs.Prof.phase_name p
        :: List.init ncls (fun c -> fns (float_of_int self.(c).(i)))
        @ [
            fns (float_of_int st);
            fns (float_of_int incl.(i));
            (if Obs.Prof.wait_phase p || !cpu_total = 0 then "-"
             else
               Printf.sprintf "%.1f%%"
                 (100.0 *. float_of_int st /. float_of_int !cpu_total));
          ])
      visible
  in
  table
    ~header:
      (("phase" :: Array.to_list m.Obs.Prof.m_classes)
      @ [ "self"; "total"; "cpu%" ])
    rows

(* Per-cgroup end-of-run table for `repro run` / `repro fleet`:
   usage against limits, throttle and OOM counters, PSI shares of the
   run, and the read-latency tail where the group recorded requests. *)
let memcg_summary ~runtime_ns (s : Mem.Memcg.summary) =
  let psi stall =
    if runtime_ns <= 0 then "-"
    else
      Printf.sprintf "%.1f%%"
        (100.0 *. float_of_int stall /. float_of_int runtime_ns)
  in
  let lim v = if v < 0 then "-" else string_of_int v in
  let p99 lats =
    if Array.length lats = 0 then "-"
    else fns (Stats.Percentile.quantile lats 0.99)
  in
  subsection "cgroups";
  table
    ~header:
      [
        "cgroup"; "usage"; "low"; "high"; "max"; "limit"; "throttles";
        "throttled"; "oom"; "psi_some"; "psi_full"; "p99_read";
      ]
    (List.map
       (fun (g : Mem.Memcg.report) ->
         [
           g.Mem.Memcg.r_name;
           string_of_int g.Mem.Memcg.r_usage;
           string_of_int g.Mem.Memcg.r_low;
           lim g.Mem.Memcg.r_high;
           lim g.Mem.Memcg.r_max;
           lim g.Mem.Memcg.r_limit;
           string_of_int g.Mem.Memcg.r_throttles;
           fns (float_of_int g.Mem.Memcg.r_throttled_ns);
           string_of_int g.Mem.Memcg.r_oom_kills;
           psi g.Mem.Memcg.r_psi_some_ns;
           psi g.Mem.Memcg.r_psi_full_ns;
           p99 g.Mem.Memcg.r_read_latencies;
         ])
       s.Mem.Memcg.s_groups);
  note
    (Printf.sprintf "machine-wide psi: some %s, full %s"
       (psi s.Mem.Memcg.s_some_ns) (psi s.Mem.Memcg.s_full_ns));
  (* memory.stat: stat names as rows, one column per cgroup.  Root's
     column is the hierarchical total (every bump lands there too). *)
  let any_stat =
    List.exists
      (fun (g : Mem.Memcg.report) -> Array.exists (fun v -> v > 0) g.Mem.Memcg.r_vm)
      s.Mem.Memcg.s_groups
  in
  if any_stat then begin
    subsection "memory.stat";
    table
      ~header:
        ("counter"
        :: List.map (fun (g : Mem.Memcg.report) -> g.Mem.Memcg.r_name)
             s.Mem.Memcg.s_groups)
      (List.init Mem.Memcg.nr_stats (fun i ->
           Mem.Memcg.stat_names.(i)
           :: List.map
                (fun (g : Mem.Memcg.report) ->
                  fcount (float_of_int g.Mem.Memcg.r_vm.(i)))
                s.Mem.Memcg.s_groups))
  end

let fault_summary (r : Machine.result) =
  let injected =
    r.Machine.injected_transient + r.Machine.injected_permanent
    + r.Machine.injected_stalls + r.Machine.injected_tail_spikes
  in
  Printf.printf
    "      injected %d (transient %d, permanent %d, stalls %d, tail spikes %d)\n"
    injected r.Machine.injected_transient r.Machine.injected_permanent
    r.Machine.injected_stalls r.Machine.injected_tail_spikes;
  Printf.printf
    "      recovery: retries %d, slot remaps %d, poisoned reads %d, pinned \
     writebacks %d\n"
    r.Machine.io_retries r.Machine.io_remaps r.Machine.poisoned_reads
    r.Machine.writeback_failures;
  if r.Machine.oom_kills > 0 then
    Printf.printf "      oom: %d kill(s), %d page(s) discarded\n"
      r.Machine.oom_kills r.Machine.oom_discarded_pages;
  Printf.printf "      invariants: %s\n"
    (if r.Machine.invariant_violations = 0 then "ok"
     else Printf.sprintf "%d violation(s)" r.Machine.invariant_violations)
