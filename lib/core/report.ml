let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c w ->
        let cell = match List.nth_opt row c with Some s -> s | None -> "" in
        if c = 0 then Printf.printf "%-*s" w cell else Printf.printf "  %*s" w cell)
      widths;
    print_newline ()
  in
  print_row header;
  List.iteri
    (fun c w -> if c = 0 then print_string (String.make w '-') else Printf.printf "  %s" (String.make w '-'))
    widths;
  print_newline ();
  List.iter print_row rows

let f2 x = Printf.sprintf "%.2f" x

let f3 x = Printf.sprintf "%.3f" x

let fnorm x = Printf.sprintf "%.2fx" x

let fsec x =
  if Float.abs x >= 100.0 then Printf.sprintf "%.0fs" x
  else if Float.abs x >= 1.0 then Printf.sprintf "%.1fs" x
  else Printf.sprintf "%.3fs" x

let fcount x =
  let s = Printf.sprintf "%.0f" x in
  let n = String.length s in
  let buf = Buffer.create (n + (n / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 && c <> '-' then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fns x =
  if Float.abs x >= 1e9 then Printf.sprintf "%.2fs" (x /. 1e9)
  else if Float.abs x >= 1e6 then Printf.sprintf "%.2fms" (x /. 1e6)
  else if Float.abs x >= 1e3 then Printf.sprintf "%.1fus" (x /. 1e3)
  else Printf.sprintf "%.0fns" x

let note s = Printf.printf "  %s\n" s

let fault_summary (r : Machine.result) =
  let injected =
    r.Machine.injected_transient + r.Machine.injected_permanent
    + r.Machine.injected_stalls + r.Machine.injected_tail_spikes
  in
  Printf.printf
    "      injected %d (transient %d, permanent %d, stalls %d, tail spikes %d)\n"
    injected r.Machine.injected_transient r.Machine.injected_permanent
    r.Machine.injected_stalls r.Machine.injected_tail_spikes;
  Printf.printf
    "      recovery: retries %d, slot remaps %d, poisoned reads %d, pinned \
     writebacks %d\n"
    r.Machine.io_retries r.Machine.io_remaps r.Machine.poisoned_reads
    r.Machine.writeback_failures;
  if r.Machine.oom_kills > 0 then
    Printf.printf "      oom: %d kill(s), %d page(s) discarded\n"
      r.Machine.oom_kills r.Machine.oom_discarded_pages;
  Printf.printf "      invariants: %s\n"
    (if r.Machine.invariant_violations = 0 then "ok"
     else Printf.sprintf "%d violation(s)" r.Machine.invariant_violations)
