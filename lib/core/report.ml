let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c w ->
        let cell = match List.nth_opt row c with Some s -> s | None -> "" in
        if c = 0 then Printf.printf "%-*s" w cell else Printf.printf "  %*s" w cell)
      widths;
    print_newline ()
  in
  print_row header;
  List.iteri
    (fun c w -> if c = 0 then print_string (String.make w '-') else Printf.printf "  %s" (String.make w '-'))
    widths;
  print_newline ();
  List.iter print_row rows

(* Failed cells flow through aggregation as NaN (any arithmetic with a
   failed trial poisons the derived value), and every formatter renders
   NaN as the explicit "failed" marker.  Clean runs never produce NaN,
   so their output is byte-identical to builds without this path. *)
let failed_marker = "failed"

let unless_failed fmt x = if Float.is_nan x then failed_marker else fmt x

let f2 = unless_failed (Printf.sprintf "%.2f")

let f3 = unless_failed (Printf.sprintf "%.3f")

let fnorm = unless_failed (Printf.sprintf "%.2fx")

let fsec =
  unless_failed (fun x ->
      if Float.abs x >= 100.0 then Printf.sprintf "%.0fs" x
      else if Float.abs x >= 1.0 then Printf.sprintf "%.1fs" x
      else Printf.sprintf "%.3fs" x)

let fcount =
  unless_failed (fun x ->
      let s = Printf.sprintf "%.0f" x in
      let n = String.length s in
      let buf = Buffer.create (n + (n / 3)) in
      String.iteri
        (fun i c ->
          if i > 0 && (n - i) mod 3 = 0 && c <> '-' then Buffer.add_char buf ',';
          Buffer.add_char buf c)
        s;
      Buffer.contents buf)

let fns =
  unless_failed (fun x ->
      if Float.abs x >= 1e9 then Printf.sprintf "%.2fs" (x /. 1e9)
      else if Float.abs x >= 1e6 then Printf.sprintf "%.2fms" (x /. 1e6)
      else if Float.abs x >= 1e3 then Printf.sprintf "%.1fus" (x /. 1e3)
      else Printf.sprintf "%.0fns" x)

let note s = Printf.printf "  %s\n" s

(* ------------------------------------------------------------------ *)
(* Trace summary: aggregate a JSONL trace file back into tables.       *)
(* ------------------------------------------------------------------ *)

type trace_group = {
  mutable g_events : int;
  mutable g_trials : int list; (* distinct trial ids, insertion order *)
  g_kinds : (string, int) Hashtbl.t;
  g_reclaim : Stats.Histogram.t;
}

let trace_kinds =
  [
    "evict"; "reclaim"; "promote"; "demote"; "aging_pass"; "swap_read";
    "swap_write"; "oom_kill";
  ]

let trace_summary ~path =
  let ic = open_in path in
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  let lineno = ref 0 in
  (* Byte offset of the current line's first character: pinpoints the
     first malformed record precisely enough to inspect it with dd or a
     hex editor, which a line number alone does not when records are
     long. *)
  let offset = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          incr lineno;
          let malformed msg =
            failwith
              (Printf.sprintf
                 "%s: malformed record at line %d (byte offset %d): %s" path
                 !lineno !offset msg)
          in
          if String.trim line <> "" then begin
            let fields =
              match Obs.parse_line line with
              | Ok fields -> fields
              | Error msg -> malformed msg
            in
            let str k =
              match Obs.field_string fields k with
              | Some s -> s
              | None -> malformed (Printf.sprintf "missing field %S" k)
            in
            let num k =
              match Obs.field fields k with
              | Some (Obs.Int i) -> float_of_int i
              | Some (Obs.Float f) -> f
              | _ -> malformed (Printf.sprintf "missing field %S" k)
            in
            let key =
              Printf.sprintf "%s/%s/%g%%/%s" (str "workload") (str "policy")
                (num "ratio" *. 100.0)
                (str "swap")
            in
            let g =
              match Hashtbl.find_opt groups key with
              | Some g -> g
              | None ->
                let g =
                  {
                    g_events = 0;
                    g_trials = [];
                    g_kinds = Hashtbl.create 8;
                    g_reclaim =
                      Stats.Histogram.create ~buckets_per_decade:10
                        ~lo:Obs.reclaim_hist_lo ~hi:Obs.reclaim_hist_hi ();
                  }
                in
                Hashtbl.add groups key g;
                order := key :: !order;
                g
            in
            g.g_events <- g.g_events + 1;
            (match Obs.field_int fields "trial" with
            | Some t when not (List.mem t g.g_trials) ->
              g.g_trials <- t :: g.g_trials
            | _ -> ());
            let kind = str "kind" in
            Hashtbl.replace g.g_kinds kind
              (1 + Option.value ~default:0 (Hashtbl.find_opt g.g_kinds kind));
            if kind = "reclaim" then
              match Obs.field_int fields "latency_ns" with
              | Some ns -> Stats.Histogram.add g.g_reclaim (float_of_int (max 1 ns))
              | None -> ()
          end;
          offset := !offset + String.length line + 1
        done
      with End_of_file -> ());
  let cells = List.rev !order in
  section (Printf.sprintf "Trace summary: %s" path);
  let kind_count g k = Option.value ~default:0 (Hashtbl.find_opt g.g_kinds k) in
  table
    ~header:("cell" :: "trials" :: "events" :: trace_kinds)
    (List.map
       (fun key ->
         let g = Hashtbl.find groups key in
         key
         :: string_of_int (List.length g.g_trials)
         :: fcount (float_of_int g.g_events)
         :: List.map (fun k -> fcount (float_of_int (kind_count g k))) trace_kinds)
       cells);
  let with_reclaims =
    List.filter
      (fun key -> Stats.Histogram.count (Hashtbl.find groups key).g_reclaim > 0)
      cells
  in
  if with_reclaims <> [] then begin
    subsection "direct-reclaim episode latency";
    table
      ~header:[ "cell"; "episodes"; "p50"; "p90"; "p99"; "max"; "mean" ]
      (List.map
         (fun key ->
           let h = (Hashtbl.find groups key).g_reclaim in
           let q p = fns (Stats.Histogram.quantile h p) in
           [
             key;
             fcount (float_of_int (Stats.Histogram.count h));
             q 0.5; q 0.9; q 0.99;
             fns (Stats.Histogram.max_seen h);
             fns (Stats.Histogram.mean h);
           ])
         with_reclaims)
  end

let fault_summary (r : Machine.result) =
  let injected =
    r.Machine.injected_transient + r.Machine.injected_permanent
    + r.Machine.injected_stalls + r.Machine.injected_tail_spikes
  in
  Printf.printf
    "      injected %d (transient %d, permanent %d, stalls %d, tail spikes %d)\n"
    injected r.Machine.injected_transient r.Machine.injected_permanent
    r.Machine.injected_stalls r.Machine.injected_tail_spikes;
  Printf.printf
    "      recovery: retries %d, slot remaps %d, poisoned reads %d, pinned \
     writebacks %d\n"
    r.Machine.io_retries r.Machine.io_remaps r.Machine.poisoned_reads
    r.Machine.writeback_failures;
  if r.Machine.oom_kills > 0 then
    Printf.printf "      oom: %d kill(s), %d page(s) discarded\n"
      r.Machine.oom_kills r.Machine.oom_discarded_pages;
  Printf.printf "      invariants: %s\n"
    (if r.Machine.invariant_violations = 0 then "ok"
     else Printf.sprintf "%d violation(s)" r.Machine.invariant_violations)
