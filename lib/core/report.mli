(** Plain-text table rendering for the figure harness. *)

val section : string -> unit
(** Print a figure banner. *)

val subsection : string -> unit

val table : header:string list -> string list list -> unit
(** Fixed-width aligned table with a separator under the header. *)

val failed_marker : string
(** ["failed"] — how every formatter renders NaN, the sentinel that
    failed trials inject into aggregates.  Clean runs never produce NaN,
    so their rendering is unchanged. *)

val f2 : float -> string
(** Two-decimal formatting. *)

val f3 : float -> string

val fnorm : float -> string
(** Normalized-value formatting ("1.00x"). *)

val fsec : float -> string
(** Seconds with adaptive precision. *)

val fcount : float -> string
(** Large counts with thousands separators. *)

val fns : float -> string
(** Nanoseconds rendered with an adaptive unit (ns/us/ms/s). *)

val note : string -> unit
(** Indented free-form commentary line. *)

val trace_summary : path:string -> unit
(** Parse a JSONL trace (as written by {!Runner.write_trace}) and print
    per-cell event-kind counts plus latency quantiles rebuilt from the
    [reclaim] events (direct-reclaim episodes) and the
    [swap_read]/[swap_write] events (per-operation device latency).
    @raise Failure on the first malformed record, citing file, line
    number and byte offset — the CI smoke step relies on this to
    validate traces.

    Traces from cgroup-enabled runs additionally get a "cgroups"
    subsection: per (cell, cgroup) OOM kills, throttle episodes with
    total throttled simulated time, targeted-reclaim episodes and pages
    freed, and PSI some/full averaged over the observed windows —
    exercising (and validating) the [throttle] / [cgroup_reclaim] /
    [cgroup_oom] / [psi] event schemas.

    Traces containing [workingset_refault] events additionally get a
    "workingset refaults" subsection: per-cell shadow-entry hits and
    misses, plus activated/restored verdicts among the hits. *)

val vmstat_table : (string * Obs.Vmstat.capture) list -> unit
(** One labelled column per capture, kernel counter names as rows.
    With exactly two columns a [delta] column (second minus first) is
    appended — the shape the paper's Clock-vs-MG-LRU counter
    comparisons read. *)

val vmstat_refault_hist : (string * Obs.Vmstat.capture) list -> unit
(** Log2-bucketed refault-distance histogram, one labelled column per
    capture, trailing all-zero buckets trimmed.  Prints nothing when no
    capture recorded a refault. *)

val profile_table : Obs.Prof.merged -> unit
(** Perf-style phase table for one grid cell: rows in taxonomy order,
    one self-time column per aggregation class ("app", "kswapd", ...),
    then total self, inclusive time, and the phase's share of
    core-seconds (CPU phases only — wait phases render "-"). *)

val memcg_summary : runtime_ns:int -> Mem.Memcg.summary -> unit
(** Per-cgroup end-of-run table (usage vs. limits, throttles, scoped
    OOM kills, PSI shares of the run, p99 read latency) plus the
    machine-wide PSI note, and — when any counter fired — a
    [memory.stat] table (stat names as rows, one column per cgroup;
    root's column is the hierarchical total). *)

val fault_summary : Machine.result -> unit
(** Per-trial fault-injection block: injected faults by kind, recovery
    actions (retries / remaps / poisons / pins), OOM kills, and the
    invariant-audit verdict. *)
