(** Plain-text table rendering for the figure harness. *)

val section : string -> unit
(** Print a figure banner. *)

val subsection : string -> unit

val table : header:string list -> string list list -> unit
(** Fixed-width aligned table with a separator under the header. *)

val failed_marker : string
(** ["failed"] — how every formatter renders NaN, the sentinel that
    failed trials inject into aggregates.  Clean runs never produce NaN,
    so their rendering is unchanged. *)

val f2 : float -> string
(** Two-decimal formatting. *)

val f3 : float -> string

val fnorm : float -> string
(** Normalized-value formatting ("1.00x"). *)

val fsec : float -> string
(** Seconds with adaptive precision. *)

val fcount : float -> string
(** Large counts with thousands separators. *)

val fns : float -> string
(** Nanoseconds rendered with an adaptive unit (ns/us/ms/s). *)

val note : string -> unit
(** Indented free-form commentary line. *)

val trace_summary : path:string -> unit
(** Parse a JSONL trace (as written by {!Runner.write_trace}) and print
    per-cell event-kind counts plus latency quantiles rebuilt from the
    [reclaim] events (direct-reclaim episodes) and the
    [swap_read]/[swap_write] events (per-operation device latency).
    @raise Failure on the first malformed record, citing file, line
    number and byte offset — the CI smoke step relies on this to
    validate traces. *)

val profile_table : Obs.Prof.merged -> unit
(** Perf-style phase table for one grid cell: rows in taxonomy order,
    one self-time column per aggregation class ("app", "kswapd", ...),
    then total self, inclusive time, and the phase's share of
    core-seconds (CPU phases only — wait phases render "-"). *)

val fault_summary : Machine.result -> unit
(** Per-trial fault-injection block: injected faults by kind, recovery
    actions (retries / remaps / poisons / pins), OOM kills, and the
    invariant-audit verdict. *)
