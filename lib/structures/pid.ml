type t = {
  kp : float;
  ki : float;
  kd : float;
  integral_limit : float;
  mutable setpoint : float;
  mutable integral : float;
  mutable prev_error : float option;
  mutable output : float;
}

let create ?(kp = 1.0) ?(ki = 0.0) ?(kd = 0.0) ?(integral_limit = 1e9) ~setpoint () =
  if integral_limit < 0.0 then invalid_arg "Pid.create: negative integral_limit";
  { kp; ki; kd; integral_limit; setpoint; integral = 0.0; prev_error = None; output = 0.0 }

let setpoint t = t.setpoint

let set_setpoint t sp = t.setpoint <- sp

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let update t ~measurement ~dt =
  if dt <= 0.0 then invalid_arg "Pid.update: dt must be positive";
  let error = t.setpoint -. measurement in
  t.integral <-
    clamp (-.t.integral_limit) t.integral_limit (t.integral +. (error *. dt));
  let derivative =
    match t.prev_error with
    | None -> 0.0
    | Some e -> (error -. e) /. dt
  in
  t.prev_error <- Some error;
  t.output <- (t.kp *. error) +. (t.ki *. t.integral) +. (t.kd *. derivative);
  t.output

let output t = t.output

let last_error t = match t.prev_error with None -> 0.0 | Some e -> e

let reset t =
  t.integral <- 0.0;
  t.prev_error <- None;
  t.output <- 0.0
