(** Intrusive doubly-linked lists over dense integer node ids.

    One {!t} value manages a fixed population of [nodes] (numbered
    [0 .. nodes-1]) and a fixed set of [lists] (numbered [0 .. lists-1]).
    Every node is on at most one list at a time.  All operations are O(1)
    except iteration.

    This mirrors how the Linux kernel threads page frames onto LRU lists:
    the link fields live in per-frame arrays, so moving a page between
    generations or between the active and inactive lists never allocates. *)

type t

val create : nodes:int -> lists:int -> t
(** All nodes start detached (on no list). *)

val nodes : t -> int

val lists : t -> int

val list_of : t -> int -> int option
(** [list_of t node] is the list currently holding [node], if any. *)

val size : t -> int -> int
(** Number of nodes currently on the given list. *)

val is_empty : t -> int -> bool

val push_head : t -> list:int -> node:int -> unit
(** Insert at the head.  @raise Invalid_argument if [node] is already on a
    list. *)

val push_tail : t -> list:int -> node:int -> unit

val remove : t -> node:int -> unit
(** Detach [node] from its list.  No-op if already detached. *)

val move_head : t -> list:int -> node:int -> unit
(** Detach (if attached) then [push_head]. *)

val move_tail : t -> list:int -> node:int -> unit

val head : t -> int -> int option

val tail : t -> int -> int option

val pop_tail : t -> int -> int option
(** Remove and return the tail node. *)

val pop_head : t -> int -> int option

val head_node : t -> int -> int
(** Allocation-free {!head}: the head node, or [-1] when empty. *)

val tail_node : t -> int -> int
(** Allocation-free {!tail}: the tail node, or [-1] when empty. *)

val pop_tail_node : t -> int -> int
(** Allocation-free {!pop_tail}: remove and return the tail node, or
    [-1] when the list is empty. *)

val next_towards_head : t -> int -> int option
(** [next_towards_head t node] is the neighbour of [node] one step closer
    to its list's head, if any. *)

val iter_from_tail : t -> list:int -> (int -> unit) -> unit
(** Iterate tail-to-head.  The callback must not mutate the list. *)

val splice_all : t -> src:int -> dst:int -> unit
(** Move every node of [src] onto the tail side of [dst], preserving
    relative order (head of [src] ends nearer [dst]'s head side than the
    tail of [src]).  O(length of [src]). *)

val check_invariants : t -> unit
(** Walk every list verifying link symmetry and size accounting.
    @raise Failure on corruption.  For tests. *)
