(** Discrete proportional-integral-derivative controllers.

    MG-LRU balances eviction between page "tiers" with a feedback
    controller driven by refault rates (paper §III-D).  This module
    provides the generic controller; the tier-protection policy built on
    it lives in the [policy] library. *)

type t

val create :
  ?kp:float -> ?ki:float -> ?kd:float ->
  ?integral_limit:float -> setpoint:float -> unit -> t
(** [create ~setpoint ()] builds a controller targeting [setpoint].
    Gains default to a pure proportional controller ([kp = 1.0],
    [ki = kd = 0.0]).  The integral term is clamped to
    [±integral_limit] (default [1e9]) to prevent windup. *)

val setpoint : t -> float

val set_setpoint : t -> float -> unit

val update : t -> measurement:float -> dt:float -> float
(** One control step: feeds back [setpoint - measurement] over the time
    interval [dt] (which must be positive) and returns the control
    output. *)

val output : t -> float
(** Last computed output (0 before any update). *)

val last_error : t -> float
(** Error term of the last update (0 before any update). *)

val reset : t -> unit
(** Clear the integral and derivative history. *)
