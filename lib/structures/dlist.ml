let nil = -1

type t = {
  next : int array; (* towards tail *)
  prev : int array; (* towards head *)
  owner : int array; (* node -> list id, or nil *)
  heads : int array;
  tails : int array;
  sizes : int array;
}

let create ~nodes ~lists =
  if nodes < 0 || lists < 0 then invalid_arg "Dlist.create";
  {
    next = Array.make (max nodes 1) nil;
    prev = Array.make (max nodes 1) nil;
    owner = Array.make (max nodes 1) nil;
    heads = Array.make (max lists 1) nil;
    tails = Array.make (max lists 1) nil;
    sizes = Array.make (max lists 1) 0;
  }

let nodes t = Array.length t.next

let lists t = Array.length t.heads

let list_of t node = if t.owner.(node) = nil then None else Some t.owner.(node)

let size t l = t.sizes.(l)

let is_empty t l = t.sizes.(l) = 0

let attached t node = t.owner.(node) <> nil

let push_head t ~list ~node =
  if attached t node then invalid_arg "Dlist.push_head: node already on a list";
  let h = t.heads.(list) in
  t.prev.(node) <- nil;
  t.next.(node) <- h;
  if h <> nil then t.prev.(h) <- node else t.tails.(list) <- node;
  t.heads.(list) <- node;
  t.owner.(node) <- list;
  t.sizes.(list) <- t.sizes.(list) + 1

let push_tail t ~list ~node =
  if attached t node then invalid_arg "Dlist.push_tail: node already on a list";
  let tl = t.tails.(list) in
  t.next.(node) <- nil;
  t.prev.(node) <- tl;
  if tl <> nil then t.next.(tl) <- node else t.heads.(list) <- node;
  t.tails.(list) <- node;
  t.owner.(node) <- list;
  t.sizes.(list) <- t.sizes.(list) + 1

let remove t ~node =
  let l = t.owner.(node) in
  if l <> nil then begin
    let p = t.prev.(node) and n = t.next.(node) in
    if p <> nil then t.next.(p) <- n else t.heads.(l) <- n;
    if n <> nil then t.prev.(n) <- p else t.tails.(l) <- p;
    t.prev.(node) <- nil;
    t.next.(node) <- nil;
    t.owner.(node) <- nil;
    t.sizes.(l) <- t.sizes.(l) - 1
  end

let move_head t ~list ~node =
  remove t ~node;
  push_head t ~list ~node

let move_tail t ~list ~node =
  remove t ~node;
  push_tail t ~list ~node

let opt x = if x = nil then None else Some x

let head t l = opt t.heads.(l)

let tail t l = opt t.tails.(l)

(* Unboxed accessors for policy scan loops: [nil] (-1) instead of None,
   so a per-page candidate probe allocates nothing. *)
let head_node t l = t.heads.(l)

let tail_node t l = t.tails.(l)

let pop_tail_node t l =
  let node = t.tails.(l) in
  if node <> nil then remove t ~node;
  node

let pop_tail t l =
  match tail t l with
  | None -> None
  | Some node ->
    remove t ~node;
    Some node

let pop_head t l =
  match head t l with
  | None -> None
  | Some node ->
    remove t ~node;
    Some node

let next_towards_head t node = opt t.prev.(node)

let iter_from_tail t ~list f =
  let rec loop node =
    if node <> nil then begin
      let p = t.prev.(node) in
      f node;
      loop p
    end
  in
  loop t.tails.(list)

let splice_all t ~src ~dst =
  if src <> dst then begin
    let rec loop () =
      match pop_tail t src with
      | None -> ()
      | Some node ->
        push_tail t ~list:dst ~node;
        loop ()
    in
    loop ()
  end

let check_invariants t =
  let seen = Array.make (nodes t) false in
  for l = 0 to lists t - 1 do
    let count = ref 0 in
    let rec walk node prev_node =
      if node <> nil then begin
        if seen.(node) then failwith "Dlist: node on two lists";
        seen.(node) <- true;
        if t.owner.(node) <> l then failwith "Dlist: owner mismatch";
        if t.prev.(node) <> prev_node then failwith "Dlist: prev link broken";
        incr count;
        walk t.next.(node) node
      end
      else if t.tails.(l) <> prev_node then failwith "Dlist: tail mismatch"
    in
    walk t.heads.(l) nil;
    if !count <> t.sizes.(l) then failwith "Dlist: size mismatch"
  done;
  Array.iteri
    (fun node s ->
      if (not s) && t.owner.(node) <> nil then failwith "Dlist: phantom owner")
    seen
