(* Linux-style workingset (shadow entry) accounting.

   The machine owns one [t] per run: a monotonic eviction clock plus the
   memory capacity in frames.  When a page is evicted, a shadow token —
   the clock snapshot and whether the accessed bit was still set — is
   left in its page-table slot (Page_table.set_shadow); when the page
   refaults, the token is consumed and classified.

   Refault distance is the number of *other* evictions between a page's
   eviction and its refault: the snapshot is taken before the clock
   advances for the evicted page itself, and [classify] subtracts that
   eviction back out.  A distance within capacity means an idealized LRU
   of the same size would still have held the page — the kernel's
   workingset_activate condition. *)

type t = {
  capacity : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Workingset.create: capacity must be positive";
  { capacity; evictions = 0 }

let capacity t = t.capacity

let evictions t = t.evictions

(* Shadow tokens are packed, non-zero ints so they fit Page_table's
   shadow array (0 = no shadow): bit 0 marks presence, bit 1 the
   was-active flag, the rest the clock snapshot. *)

let no_shadow = 0

let note_eviction t ~was_active =
  let snap = t.evictions in
  t.evictions <- snap + 1;
  (snap lsl 2) lor (if was_active then 0b11 else 0b01)

let shadow_was_active token = token land 0b10 <> 0

let shadow_eviction token = token lsr 2

type refault = {
  distance : int;
  activated : bool;
  restored : bool;
}

let classify t ~shadow =
  if shadow = no_shadow then invalid_arg "Workingset.classify: no shadow";
  let distance = t.evictions - shadow_eviction shadow - 1 in
  {
    distance;
    activated = distance <= t.capacity;
    restored = shadow_was_active shadow;
  }
