type t = {
  total : int;
  stack : int array;
  free_flag : bool array;
  online : bool array;
  mutable top : int; (* number of free frames on the stack *)
  mutable online_count : int;
  low_watermark : int;
  high_watermark : int;
}

let create ?low_watermark ?high_watermark ~frames () =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  (* Kernel-like fractions: the free cushion is a small slice of memory,
     so bursty demand can outrun kswapd and fall into direct reclaim. *)
  let low =
    match low_watermark with
    | Some l -> l
    | None -> min (max 1 (frames / 4)) (max 16 (frames / 100))
  in
  let high =
    match high_watermark with
    | Some h -> h
    | None -> min (max low (frames / 2)) (max 32 (frames / 50))
  in
  if low < 0 || low > high || high > frames then
    invalid_arg "Phys_mem.create: bad watermarks";
  let stack = Array.init frames (fun i -> frames - 1 - i) in
  {
    total = frames;
    stack;
    free_flag = Array.make frames true;
    online = Array.make frames true;
    top = frames;
    online_count = frames;
    low_watermark = low;
    high_watermark = high;
  }

let frames t = t.total

let free_count t = t.top

let used_count t = t.online_count - t.top

let online_count t = t.online_count

let low_watermark t = t.low_watermark

let high_watermark t = t.high_watermark

(* Unboxed allocator for the fault path: -1 instead of None, so a
   successful allocation allocates nothing on the OCaml heap.  Offline
   frames are never on the stack, so hotplug costs nothing here. *)
let alloc_pfn t =
  if t.top = 0 then -1
  else begin
    t.top <- t.top - 1;
    let pfn = t.stack.(t.top) in
    t.free_flag.(pfn) <- false;
    pfn
  end

let alloc t =
  let pfn = alloc_pfn t in
  if pfn < 0 then None else Some pfn

let free t pfn =
  if pfn < 0 || pfn >= t.total then invalid_arg "Phys_mem.free: pfn out of range";
  if t.free_flag.(pfn) then invalid_arg "Phys_mem.free: double free";
  if not t.online.(pfn) then invalid_arg "Phys_mem.free: frame is offline";
  t.free_flag.(pfn) <- true;
  t.stack.(t.top) <- pfn;
  t.top <- t.top + 1

let is_free t pfn =
  if pfn < 0 || pfn >= t.total then invalid_arg "Phys_mem.is_free: pfn out of range";
  t.free_flag.(pfn)

let is_online t pfn =
  if pfn < 0 || pfn >= t.total then
    invalid_arg "Phys_mem.is_online: pfn out of range";
  t.online.(pfn)

(* Memory hotplug (chaos injectors).  Offlining a free frame pulls it
   off the free stack (swap-remove: the stack is unordered between
   refills, and alloc order stays deterministic because offline events
   land at fixed virtual times); offlining an allocated frame is the
   second half of a migration — the caller has already moved the
   contents, so the frame is simply no longer accounted anywhere. *)
let offline_free t pfn =
  if pfn < 0 || pfn >= t.total then
    invalid_arg "Phys_mem.offline_free: pfn out of range";
  if not t.online.(pfn) then invalid_arg "Phys_mem.offline_free: already offline";
  if not t.free_flag.(pfn) then invalid_arg "Phys_mem.offline_free: frame in use";
  let i = ref (-1) in
  for k = 0 to t.top - 1 do
    if t.stack.(k) = pfn then i := k
  done;
  if !i < 0 then invalid_arg "Phys_mem.offline_free: frame not on free stack";
  t.top <- t.top - 1;
  t.stack.(!i) <- t.stack.(t.top);
  t.free_flag.(pfn) <- false;
  t.online.(pfn) <- false;
  t.online_count <- t.online_count - 1

let offline_used t pfn =
  if pfn < 0 || pfn >= t.total then
    invalid_arg "Phys_mem.offline_used: pfn out of range";
  if not t.online.(pfn) then invalid_arg "Phys_mem.offline_used: already offline";
  if t.free_flag.(pfn) then invalid_arg "Phys_mem.offline_used: frame is free";
  t.online.(pfn) <- false;
  t.online_count <- t.online_count - 1

let online t pfn =
  if pfn < 0 || pfn >= t.total then
    invalid_arg "Phys_mem.online: pfn out of range";
  if t.online.(pfn) then invalid_arg "Phys_mem.online: already online";
  t.online.(pfn) <- true;
  t.online_count <- t.online_count + 1;
  t.free_flag.(pfn) <- true;
  t.stack.(t.top) <- pfn;
  t.top <- t.top + 1

let below_low t = t.top < t.low_watermark

let above_high t = t.top >= t.high_watermark
