type t = {
  total : int;
  stack : int array;
  free_flag : bool array;
  mutable top : int; (* number of free frames on the stack *)
  low_watermark : int;
  high_watermark : int;
}

let create ?low_watermark ?high_watermark ~frames () =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  (* Kernel-like fractions: the free cushion is a small slice of memory,
     so bursty demand can outrun kswapd and fall into direct reclaim. *)
  let low =
    match low_watermark with
    | Some l -> l
    | None -> min (max 1 (frames / 4)) (max 16 (frames / 100))
  in
  let high =
    match high_watermark with
    | Some h -> h
    | None -> min (max low (frames / 2)) (max 32 (frames / 50))
  in
  if low < 0 || low > high || high > frames then
    invalid_arg "Phys_mem.create: bad watermarks";
  let stack = Array.init frames (fun i -> frames - 1 - i) in
  {
    total = frames;
    stack;
    free_flag = Array.make frames true;
    top = frames;
    low_watermark = low;
    high_watermark = high;
  }

let frames t = t.total

let free_count t = t.top

let used_count t = t.total - t.top

let low_watermark t = t.low_watermark

let high_watermark t = t.high_watermark

(* Unboxed allocator for the fault path: -1 instead of None, so a
   successful allocation allocates nothing on the OCaml heap. *)
let alloc_pfn t =
  if t.top = 0 then -1
  else begin
    t.top <- t.top - 1;
    let pfn = t.stack.(t.top) in
    t.free_flag.(pfn) <- false;
    pfn
  end

let alloc t =
  let pfn = alloc_pfn t in
  if pfn < 0 then None else Some pfn

let free t pfn =
  if pfn < 0 || pfn >= t.total then invalid_arg "Phys_mem.free: pfn out of range";
  if t.free_flag.(pfn) then invalid_arg "Phys_mem.free: double free";
  t.free_flag.(pfn) <- true;
  t.stack.(t.top) <- pfn;
  t.top <- t.top + 1

let is_free t pfn =
  if pfn < 0 || pfn >= t.total then invalid_arg "Phys_mem.is_free: pfn out of range";
  t.free_flag.(pfn)

let below_low t = t.top < t.low_watermark

let above_high t = t.top >= t.high_watermark
