type t = {
  pte_scan_ns : int;
  rmap_walk_ns : int;
  bloom_query_ns : int;
  bloom_update_ns : int;
  list_op_ns : int;
  fault_trap_ns : int;
  region_size : int;
  spatial_scan_max : int;
  barrier_ns : int;
  hook_dispatch_ns : int; (* guest-hook call overhead (Policy_hooks V1) *)
}

let default =
  {
    pte_scan_ns = 2;
    rmap_walk_ns = 1500;
    bloom_query_ns = 40;
    bloom_update_ns = 60;
    list_op_ns = 30;
    fault_trap_ns = 2500;
    region_size = 512;
    spatial_scan_max = 512;
    barrier_ns = 5_000;
    (* A restricted guest call prices like an eBPF program invocation:
       trampoline + bounds checks, well under a rmap walk but far from
       free once multiplied by every fault and access sample. *)
    hook_dispatch_ns = 80;
  }

let scaled ?(factor = 256) t =
  {
    t with
    pte_scan_ns = t.pte_scan_ns * factor;
    (* Reverse-map walks batch several mappings per folio lock in
       practice, so their effective per-page cost scales at half the
       factor of raw PTE scans. *)
    rmap_walk_ns = t.rmap_walk_ns * factor / 2;
    bloom_query_ns = t.bloom_query_ns * factor;
    bloom_update_ns = t.bloom_update_ns * factor;
    list_op_ns = t.list_op_ns * factor;
    fault_trap_ns = t.fault_trap_ns * 20;
    hook_dispatch_ns = t.hook_dispatch_ns * factor;
  }

let pp fmt t =
  Format.fprintf fmt
    "pte_scan=%dns rmap=%dns bloom=%d/%dns list=%dns trap=%dns region=%d \
     spatial<=%d hook=%dns"
    t.pte_scan_ns t.rmap_walk_ns t.bloom_query_ns t.bloom_update_ns t.list_op_ns
    t.fault_trap_ns t.region_size t.spatial_scan_max t.hook_dispatch_ns
