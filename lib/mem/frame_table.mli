(** Physical frame metadata.

    One record per physical frame: which (address space, virtual page)
    owns it.  This doubles as the reverse map's ground truth — see
    {!Rmap} for the cost model of walking it. *)

type t

val create : frames:int -> t

val frames : t -> int

val set_owner : t -> pfn:int -> asid:int -> vpn:int -> unit

val clear_owner : t -> pfn:int -> unit

val owner : t -> int -> (int * int) option
(** [(asid, vpn)] of the owning mapping, if mapped. *)

val owner_asid : t -> int -> int
(** Owning address-space id, or [-1] when unmapped (allocation-free). *)

val owner_vpn : t -> int -> int
(** Owning virtual page, or [-1] when unmapped (allocation-free). *)

val is_mapped : t -> int -> bool

val mapped_count : t -> int
