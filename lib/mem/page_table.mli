(** Per-process page tables with leaf-region structure.

    The virtual address space is a flat array of PTEs grouped into
    regions of [region_size] entries (512 by default — one x86-64 leaf
    page table).  MG-LRU's aging walker iterates region by region and its
    Bloom filter is keyed by region index (paper §III-B); the eviction
    walker's spatial scan also stays within one region. *)

type t

val create : ?region_size:int -> asid:int -> pages:int -> unit -> t
(** [pages] virtual pages, all initially empty. *)

val asid : t -> int

val pages : t -> int

val region_size : t -> int

val regions : t -> int
(** Number of leaf regions, [ceil (pages / region_size)]. *)

val get : t -> int -> Pte.t
(** @raise Invalid_argument when the vpn is out of range. *)

val set : t -> int -> Pte.t -> unit

val shadow : t -> int -> int
(** The workingset shadow token left for a vpn by the last eviction, or
    {!Workingset.no_shadow} when none.  O(1).
    @raise Invalid_argument when the vpn is out of range. *)

val set_shadow : t -> int -> int -> unit
(** Store a shadow token for a vpn (see {!Workingset.note_eviction}).
    The shadow array is allocated lazily on the first non-empty store,
    so address spaces that never evict pay nothing. *)

val clear_shadow : t -> int -> unit
(** [set_shadow t vpn Workingset.no_shadow]. *)

val region_of : t -> int -> int
(** Region index containing a vpn. *)

val region_bounds : t -> int -> int * int
(** [(first_vpn, last_vpn)] of a region, inclusive; the last region may
    be short. *)

val resident : t -> int
(** Number of present entries.  O(1): maintained incrementally by
    {!set}, so gauges can sample it every tick at multi-million-page
    scale. *)

val resident_scan : t -> int
(** Full O(pages) recount of present entries — the oracle
    {!Repro_core.Invariants.audit} checks the incremental counter
    against. *)

val iter_region : t -> int -> (int -> Pte.t -> unit) -> unit
(** Apply to every (vpn, pte) in a region. *)
