(* DAMON-style adaptive region access monitor.

   Like the kernel's data-access monitor, each address space is covered
   by a small set of contiguous regions that split where access is
   non-uniform and merge back where neighbours look alike, so the
   row count per snapshot stays bounded however large the footprint is.

   Unlike the kernel we can afford an exact read: every aggregation
   tick counts the present pages whose accessed bit is set in each
   region — no random sampling, so the monitor is deterministic.  The
   bits are read, never cleared; clearing belongs to the policies'
   scanners, and a region's count therefore reflects accesses since the
   *policy* last scanned it.  Observation only: the monitor draws no
   randomness and schedules nothing, so a monitored run's results are
   identical to an unmonitored one. *)

type config = {
  aggregate_every_ns : int;
  min_regions : int;
  max_regions : int;
  merge_threshold_pct : int;
}

let default_config =
  {
    aggregate_every_ns = 100_000_000;
    min_regions = 10;
    max_regions = 100;
    merge_threshold_pct = 10;
  }

type region = {
  mutable r_start : int;
  mutable r_end : int; (* exclusive *)
}

type row = {
  w_t_ns : int;
  w_asid : int;
  w_start : int;
  w_pages : int;
  w_accessed : int;
}

type t = {
  config : config;
  spaces : (int, region list ref) Hashtbl.t;
  mutable rows_rev : row list;
  mutable nr_rows : int;
}

let create config =
  if config.aggregate_every_ns <= 0 then
    invalid_arg "Damon.create: aggregate_every_ns must be positive";
  if config.min_regions <= 0 || config.max_regions < config.min_regions then
    invalid_arg "Damon.create: need 0 < min_regions <= max_regions";
  { config; spaces = Hashtbl.create 8; rows_rev = []; nr_rows = 0 }

let aggregate_every_ns t = t.config.aggregate_every_ns

(* Initial layout: the address space cut into [min_regions] even chunks
   (fewer when the space is smaller than that). *)
let initial_regions config ~pages =
  let n = min config.min_regions pages in
  let chunk = pages / n in
  let rem = pages mod n in
  let rec build i start acc =
    if i >= n then List.rev acc
    else
      let len = chunk + if i < rem then 1 else 0 in
      build (i + 1) (start + len)
        ({ r_start = start; r_end = start + len } :: acc)
  in
  build 0 0 []

let regions_of t pt =
  let asid = Page_table.asid pt in
  match Hashtbl.find_opt t.spaces asid with
  | Some r -> r
  | None ->
    let r = ref (initial_regions t.config ~pages:(Page_table.pages pt)) in
    Hashtbl.add t.spaces asid r;
    r

let count_accessed pt ~start ~stop =
  let a = ref 0 in
  for vpn = start to stop - 1 do
    let pte = Page_table.get pt vpn in
    if Pte.present pte && Pte.accessed pte then a := !a + 1
  done;
  !a

let pct ~accessed ~pages = if pages = 0 then 0 else 100 * accessed / pages

(* Merge adjacent regions whose access fractions differ by at most the
   threshold, never dropping below [min_regions]. *)
let merge_pass config regions access =
  let nr = ref (List.length regions) in
  let rec go = function
    | a :: b :: rest when !nr > config.min_regions ->
      let pa = pct ~accessed:(access a) ~pages:(a.r_end - a.r_start) in
      let pb = pct ~accessed:(access b) ~pages:(b.r_end - b.r_start) in
      if abs (pa - pb) <= config.merge_threshold_pct then begin
        a.r_end <- b.r_end;
        nr := !nr - 1;
        go (a :: rest)
      end
      else a :: go (b :: rest)
    | l -> l
  in
  go regions

(* Split regions whose two halves disagree by more than the threshold —
   the deterministic stand-in for DAMON's random split probes — while
   staying within [max_regions]. *)
let split_pass config pt regions =
  let nr = ref (List.length regions) in
  let rec go = function
    | [] -> []
    | r :: rest ->
      let pages = r.r_end - r.r_start in
      if pages >= 2 && !nr < config.max_regions then begin
        let mid = r.r_start + (pages / 2) in
        let la = count_accessed pt ~start:r.r_start ~stop:mid in
        let ra = count_accessed pt ~start:mid ~stop:r.r_end in
        let lp = pct ~accessed:la ~pages:(mid - r.r_start) in
        let rp = pct ~accessed:ra ~pages:(r.r_end - mid) in
        if abs (lp - rp) > config.merge_threshold_pct then begin
          let right = { r_start = mid; r_end = r.r_end } in
          r.r_end <- mid;
          nr := !nr + 1;
          r :: go (right :: rest)
        end
        else r :: go rest
      end
      else r :: go rest
  in
  go regions

let tick t ~now ~tables =
  Array.iter
    (fun pt ->
      let asid = Page_table.asid pt in
      let cell = regions_of t pt in
      (* Count, snapshot, then adapt the layout for the next tick. *)
      let counts = Hashtbl.create 16 in
      List.iter
        (fun r ->
          let a = count_accessed pt ~start:r.r_start ~stop:r.r_end in
          Hashtbl.replace counts r.r_start a;
          t.rows_rev <-
            {
              w_t_ns = now;
              w_asid = asid;
              w_start = r.r_start;
              w_pages = r.r_end - r.r_start;
              w_accessed = a;
            }
            :: t.rows_rev;
          t.nr_rows <- t.nr_rows + 1)
        !cell;
      let access r = try Hashtbl.find counts r.r_start with Not_found -> 0 in
      let merged = merge_pass t.config !cell access in
      cell := split_pass t.config pt merged)
    tables

type capture = {
  rows : row array; (* tick order, address spaces in table order *)
}

let capture t =
  let rows = Array.make t.nr_rows
      { w_t_ns = 0; w_asid = 0; w_start = 0; w_pages = 0; w_accessed = 0 }
  in
  List.iteri (fun i r -> rows.(t.nr_rows - 1 - i) <- r) t.rows_rev;
  { rows }
