(** CPU cost model for memory-management operations.

    All costs are in nanoseconds of pure compute (the {!Engine.Cpu}
    model stretches them under contention).  The relative magnitudes
    encode the paper's central asymmetry: walking the reverse map is a
    pointer chase costing three orders of magnitude more per page than a
    linear page-table scan (§III-B), which is why MG-LRU's aging walker
    exists at all. *)

type t = {
  pte_scan_ns : int;      (** linear page-table scan, per PTE *)
  rmap_walk_ns : int;     (** one physical-to-virtual reverse-map walk *)
  bloom_query_ns : int;   (** Bloom-filter membership test, per region *)
  bloom_update_ns : int;  (** Bloom-filter insertion *)
  list_op_ns : int;       (** O(1) LRU/generation list move *)
  fault_trap_ns : int;    (** page-fault entry/exit, allocation, bookkeeping *)
  region_size : int;      (** PTEs per page-table leaf region *)
  spatial_scan_max : int; (** max PTEs scanned around an eviction-side hit *)
  barrier_ns : int;       (** synchronization cost at a workload barrier *)
  hook_dispatch_ns : int; (** one guest-hook invocation (trampoline +
                              capability checks), per call *)
}

val default : t
(** Kernel-realistic per-operation costs on contemporary hardware. *)

val scaled : ?factor:int -> t -> t
(** Scale per-page management costs up by [factor] (default 256, the
    footprint scale-down of the experiment harness).  With 256x fewer
    pages than the paper's testbed, each per-page management event must
    carry 256x the cost for scanning overhead to claim the same share of
    runtime — the quantity whose interplay with swap speed is the
    paper's central subject.  Device latencies and workload compute are
    calibrated the same way (DESIGN.md, "Scaling").  [fault_trap_ns]
    scales only 20x: trap overhead is partially per-fault-event real
    time. *)

val pp : Format.formatter -> t -> unit
