type t = {
  asid : int;
  ptes : int array;
  (* Workingset shadow tokens (see Workingset), parallel to [ptes]
     because a swapped PTE's payload already holds its swap slot.
     0 = no shadow.  Lazily allocated on the first [set_shadow] so
     runs that never evict pay nothing. *)
  mutable shadows : int array;
  region_size : int;
  mutable resident : int; (* pages with Pte.present, maintained by [set] *)
}

let create ?(region_size = 512) ~asid ~pages () =
  if pages <= 0 then invalid_arg "Page_table.create: pages must be positive";
  if region_size <= 0 then invalid_arg "Page_table.create: region_size must be positive";
  { asid; ptes = Array.make pages Pte.empty; shadows = [||]; region_size;
    resident = 0 }

let asid t = t.asid

let pages t = Array.length t.ptes

let region_size t = t.region_size

let regions t = (pages t + t.region_size - 1) / t.region_size

let check t vpn =
  if vpn < 0 || vpn >= pages t then invalid_arg "Page_table: vpn out of range"

let get t vpn =
  check t vpn;
  t.ptes.(vpn)

let set t vpn pte =
  check t vpn;
  (* Keep the resident count incremental: gauges sample it every tick,
     and a full scan per sample dominates at multi-million-page scale. *)
  let old = t.ptes.(vpn) in
  if Pte.present pte then begin
    if not (Pte.present old) then t.resident <- t.resident + 1
  end
  else if Pte.present old then t.resident <- t.resident - 1;
  t.ptes.(vpn) <- pte

let shadow t vpn =
  check t vpn;
  if Array.length t.shadows = 0 then Workingset.no_shadow else t.shadows.(vpn)

let set_shadow t vpn token =
  check t vpn;
  if Array.length t.shadows = 0 then begin
    if token <> Workingset.no_shadow then begin
      t.shadows <- Array.make (pages t) Workingset.no_shadow;
      t.shadows.(vpn) <- token
    end
  end
  else t.shadows.(vpn) <- token

let clear_shadow t vpn = set_shadow t vpn Workingset.no_shadow

let region_of t vpn =
  check t vpn;
  vpn / t.region_size

let region_bounds t r =
  if r < 0 || r >= regions t then invalid_arg "Page_table.region_bounds";
  let first = r * t.region_size in
  (first, min (first + t.region_size - 1) (pages t - 1))

let resident t = t.resident

(* O(pages) recount, kept as the oracle the invariants audit checks the
   incremental counter against. *)
let resident_scan t =
  Array.fold_left (fun acc pte -> if Pte.present pte then acc + 1 else acc) 0 t.ptes

let iter_region t r f =
  let first, last = region_bounds t r in
  for vpn = first to last do
    f vpn t.ptes.(vpn)
  done
