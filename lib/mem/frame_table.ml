type t = {
  owner_asid : int array; (* -1 = unmapped *)
  owner_vpn : int array;
  mutable mapped : int;
}

let create ~frames =
  if frames <= 0 then invalid_arg "Frame_table.create: frames must be positive";
  { owner_asid = Array.make frames (-1); owner_vpn = Array.make frames (-1); mapped = 0 }

let frames t = Array.length t.owner_asid

let check t pfn =
  if pfn < 0 || pfn >= frames t then invalid_arg "Frame_table: pfn out of range"

let set_owner t ~pfn ~asid ~vpn =
  check t pfn;
  if t.owner_asid.(pfn) = -1 then t.mapped <- t.mapped + 1;
  t.owner_asid.(pfn) <- asid;
  t.owner_vpn.(pfn) <- vpn

let clear_owner t ~pfn =
  check t pfn;
  if t.owner_asid.(pfn) <> -1 then begin
    t.mapped <- t.mapped - 1;
    t.owner_asid.(pfn) <- -1;
    t.owner_vpn.(pfn) <- -1
  end

let owner t pfn =
  check t pfn;
  if t.owner_asid.(pfn) = -1 then None else Some (t.owner_asid.(pfn), t.owner_vpn.(pfn))

(* Unboxed owner lookups for reclaim loops: -1 = unmapped, no option or
   tuple allocated. *)
let owner_asid t pfn =
  check t pfn;
  t.owner_asid.(pfn)

let owner_vpn t pfn =
  check t pfn;
  t.owner_vpn.(pfn)

let is_mapped t pfn =
  check t pfn;
  t.owner_asid.(pfn) <> -1

let mapped_count t = t.mapped
