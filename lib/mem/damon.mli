(** DAMON-style adaptive region access monitor.

    Mirrors the kernel's data-access monitor: each address space is
    covered by contiguous regions that {e split} where the two halves
    disagree about access frequency and {e merge} back where adjacent
    regions look alike, keeping the per-snapshot row count within
    [[min_regions, max_regions]] regardless of footprint.  Every
    aggregation tick records one row per region — simulated time,
    address space, start vpn, size and the exact count of present pages
    whose accessed bit is set.

    Determinism: exact counts instead of the kernel's random sampling,
    midpoint splits instead of random split points, and the accessed
    bits are read but {e never cleared} (clearing belongs to the
    policies' scanners).  The monitor draws no randomness and schedules
    nothing, so a monitored run's results are identical to an
    unmonitored one, and captures are byte-identical at any [--jobs]. *)

type config = {
  aggregate_every_ns : int;  (** snapshot cadence in simulated ns *)
  min_regions : int;         (** per-address-space region floor *)
  max_regions : int;         (** per-address-space region cap *)
  merge_threshold_pct : int;
      (** adjacent regions whose access percentages differ by at most
          this merge; halves that differ by more split *)
}

val default_config : config
(** 100 ms cadence, 10–100 regions, 10 % threshold. *)

type t

val create : config -> t
(** @raise Invalid_argument on a non-positive cadence or an empty
    region range. *)

val aggregate_every_ns : t -> int

val tick : t -> now:int -> tables:Page_table.t array -> unit
(** Take one aggregation snapshot over every address space and adapt
    the region layouts for the next tick. *)

(** One region snapshot row. *)
type row = {
  w_t_ns : int;
  w_asid : int;
  w_start : int;
  w_pages : int;
  w_accessed : int;  (** present pages with the accessed bit set *)
}

type capture = { rows : row array (** tick order *) }

val capture : t -> capture
