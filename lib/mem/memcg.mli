(** Cgroup-style memory containment (Linux memory controller, simulated).

    Every thread belongs to a memory cgroup.  Cgroup 0 is the root:
    unlimited, and the home of any thread a spec does not claim.  Each
    cgroup carries the three Linux limits, in pages:

    - [memory.low] — reclaim {e protection}: pages charged to a cgroup
      at or under its low bound are skipped by reclaim while unprotected
      memory remains (the policy's force escalation overrides, exactly
      as Linux overrides protection when nothing else is reclaimable).
    - [memory.high] — {e throttling}: a cgroup over high keeps running,
      but each further charge costs the faulting thread a synchronous
      targeted-reclaim attempt plus an exponentially growing stall in
      simulated time.
    - [memory.max] — the {e hard cap}: a charge that would cross max
      forces per-cgroup direct reclaim and, if that cannot make room, a
      scoped OOM kill confined to the offending cgroup.

    The module is pure bookkeeping — charging, PSI stall accounting,
    throttle state, and the proactive (Senpai-style) limit probe.  The
    machine owns every side effect: stalls, reclaim passes, kills. *)

(** {1 Spec} *)

type amount =
  | Pages of int        (** absolute page count *)
  | Frac of float       (** fraction of [capacity_frames] *)

type group_spec = {
  g_name : string;                (** [A-Za-z0-9_-]+ *)
  g_threads : (int * int) list;   (** inclusive tid ranges *)
  g_low : amount option;
  g_high : amount option;
  g_max : amount option;
}

type proactive_spec = {
  p_interval_ns : int;  (** probe period in simulated ns *)
  p_threshold : float;  (** PSI [some] fraction that stops tightening *)
  p_step : amount;      (** limit adjustment per probe tick *)
}

type spec = {
  groups : group_spec list;
  proactive : proactive_spec option;
  psi_interval_ns : int;  (** PSI sampling/trace cadence *)
}

val parse_spec : string -> (spec, string) result
(** Grammar (documented in README):

    {v
    SPEC      := group (';' group)*
    group     := NAME ':' field (',' field)*
    field     := KEY '=' VALUE
    v}

    Ordinary groups take [threads=LO-HI] (or [threads=N], or several
    ranges joined with [+]) plus optional [low=], [high=], [max=] — each
    either a page count ([4096]) or a percentage of physical capacity
    ([35%]).  The reserved group name [proactive] enables the probe
    controller and takes [interval=] (ns; [us]/[ms]/[s] suffixes
    accepted), [threshold=] (PSI fraction) and [step=] (pages or %).
    The reserved name [psi] takes [interval=] to retune the PSI tick. *)

val spec_to_string : spec -> string
(** Canonical round-trippable rendering (used for cache keys). *)

(** {1 Runtime state} *)

type t

val create :
  spec -> capacity_frames:int -> nthreads:int -> footprint_pages:int -> t
(** Resolves percentage limits against [capacity_frames] and assigns
    threads; tids not named by any group (and kthreads) charge the
    root.  @raise Invalid_argument on overlapping or out-of-range
    thread assignments. *)

val ncgroups : t -> int
(** Including the root at index 0. *)

val name : t -> int -> string

val find : t -> string -> int option
(** Cgroup index by name ([Some 0] for ["root"]). *)

val capacity : t -> int
(** The [capacity_frames] the spec's percentage limits were resolved
    against. *)

val set_limits :
  t -> int -> ?low:int -> ?high:int -> ?max_limit:int -> unit -> unit
(** Rewrite [memory.{low,high,max}] on a live cgroup (the chaos
    limit-churn injector).  Omitted limits are untouched; values are
    resolved frame counts, [max_int] meaning unlimited for high/max.
    Takes effect on the next charge; the caller triggers any reclaim a
    newly lowered max demands. *)

val cg_of_thread : t -> int -> int

val cg_of_page : t -> int -> int
(** [-1] when the page is uncharged. *)

val usage : t -> int -> int
val low : t -> int -> int

val high : t -> int -> int
(** [max_int] when unlimited. *)

val max_limit : t -> int -> int
(** [max_int] when unlimited. *)

val eff_limit : t -> int -> int
(** The proactive probe's current effective limit ([max_int] until the
    controller first tightens it). *)

(** {1 Charging} *)

val charge : t -> tid:int -> vpn:int -> unit
(** Page [vpn] became resident on behalf of [tid]. *)

val uncharge : t -> vpn:int -> unit
(** Page [vpn] left memory (eviction or teardown). *)

val thread_exit : t -> tid:int -> now:int -> unit
(** [tid] finished or was killed; shrinks the cgroup's live count used
    by the PSI [full] criterion, after sweeping stalls recorded up to
    [now] against the live set the thread still belonged to. *)

(** {1 Limit queries} *)

val over_high : t -> int -> bool
val high_overage : t -> int -> int
val over_max : t -> int -> extra:int -> bool
(** Would charging [extra] more pages cross [memory.max]? *)

val max_overage : t -> int -> extra:int -> int
val low_protected : t -> int -> bool
(** Under (or at) its [memory.low] protection, which is > 0. *)

val throttle_ns : t -> tid:int -> base_ns:int -> int
(** Post-charge [memory.high] penalty for [tid]: 0 when its cgroup is
    within high (and the thread's streak resets); otherwise
    [base_ns * 2^streak], capped, with counters updated. *)

(** {1 PSI} *)

val stall : t -> tid:int -> t0:int -> t1:int -> unit
(** Record that [tid] was memory-stalled over [(t0, t1)] in simulated
    time — swap-in waits, direct-reclaim writeback waits, and
    [memory.high] throttle stalls.  Feeds both the thread's cgroup and
    the machine-wide tracker. *)

val advance : t -> now:int -> unit
(** Fold recorded stall intervals into [some]/[full] totals up to
    [now].  [some] counts time at least one thread was stalled; [full]
    counts time every live thread of the group was. *)

val psi_some : t -> int -> int
val psi_full : t -> int -> int
val machine_some : t -> int
val machine_full : t -> int
val psi_interval_ns : t -> int

(** {1 Proactive probe} *)

val proactive_on : t -> bool

val proactive_step : t -> int -> int * int
(** One Senpai-style probe tick for a cgroup: measures PSI pressure
    over the window since the last tick, tightens the effective limit
    while pressure is under the threshold, backs it off when over, and
    returns [(reclaim_want, pressure_ppm)] — the pages the machine
    should reclaim from the group to meet the new limit, and the
    measured pressure in parts-per-million. *)

(** {1 Counters and reports} *)

val note_oom : t -> int -> unit
val oom_kills : t -> int -> int
val throttles : t -> int -> int
val throttled_ns : t -> int -> int
val note_latency : t -> tid:int -> cls:int -> float -> unit
(** Request latency attributed to [tid]'s cgroup; [cls] 0 = read,
    1 = write (see {!Workload.Chunk.read_class}). *)

(** {2 memory.stat}

    The per-cgroup slice of the machine's vmstat registry.  Counters
    are indexed by the [st_*] constants below; every bump lands on the
    owning group {e and} the root, so root's row is the hierarchical
    total like a cgroup-v2 parent's [memory.stat]. *)

val st_pgfault : int
val st_pgmajfault : int
val st_pgsteal : int
val st_pswpin : int
val st_pswpout : int
val st_ws_refault : int
val st_ws_activate : int
val st_ws_restore : int
val nr_stats : int

val stat_names : string array
(** Kernel [memory.stat] names, in index order. *)

val vm_bump : t -> tid:int -> int -> unit
(** Bump a [memory.stat] counter for [tid]'s cgroup (and root). *)

val vm_bump_page : t -> vpn:int -> int -> unit
(** Bump for the cgroup currently charged for page [vpn] (root when
    uncharged) — reclaim-side attribution, like [pgsteal]. *)

val vm_count : t -> int -> int -> int
(** [vm_count t cg i] reads counter [i] of cgroup [cg]. *)

type report = {
  r_name : string;
  r_usage : int;          (** resident pages at end of run *)
  r_low : int;
  r_high : int;           (** -1 when unlimited *)
  r_max : int;            (** -1 when unlimited *)
  r_limit : int;          (** final proactive effective limit; -1 if untouched *)
  r_throttles : int;
  r_throttled_ns : int;
  r_oom_kills : int;
  r_psi_some_ns : int;
  r_psi_full_ns : int;
  r_read_latencies : float array;
  r_write_latencies : float array;
  r_vm : int array;  (** [memory.stat] counters, [nr_stats] long *)
}

type summary = {
  s_groups : report list;  (** root first, then spec order *)
  s_some_ns : int;         (** machine-wide PSI some *)
  s_full_ns : int;         (** machine-wide PSI full *)
}

val summary : t -> now:int -> summary
(** Advances PSI to [now] first. *)

val summary_to_string : summary -> string
(** Compact single-line encoding (hex floats for latencies) for the
    result journal; inverse of {!summary_of_string}. *)

val summary_of_string : string -> summary option
