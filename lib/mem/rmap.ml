type result = {
  mapping : (int * int) option;
  cost_ns : int;
}

let walk frames ~costs ~pfn =
  { mapping = Frame_table.owner frames pfn; cost_ns = costs.Costs.rmap_walk_ns }

(* Caller-owned batch buffer: parallel int arrays reused across walks,
   so a reclaim batch resolves every frame without allocating a result
   list (the old [walk_many] built one record per frame per batch). *)
type buffer = {
  mutable asids : int array; (* -1 = unmapped *)
  mutable vpns : int array;
  mutable n : int;
}

let create_buffer ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { asids = Array.make capacity (-1); vpns = Array.make capacity (-1); n = 0 }

let ensure_capacity b n =
  if Array.length b.asids < n then begin
    let cap = max n (2 * Array.length b.asids) in
    let asids = Array.make cap (-1) and vpns = Array.make cap (-1) in
    Array.blit b.asids 0 asids 0 b.n;
    Array.blit b.vpns 0 vpns 0 b.n;
    b.asids <- asids;
    b.vpns <- vpns
  end

let walk_into frames ~costs ~pfns buffer =
  let per_walk = costs.Costs.rmap_walk_ns in
  buffer.n <- 0;
  List.fold_left
    (fun total pfn ->
      ensure_capacity buffer (buffer.n + 1);
      buffer.asids.(buffer.n) <- Frame_table.owner_asid frames pfn;
      buffer.vpns.(buffer.n) <- Frame_table.owner_vpn frames pfn;
      buffer.n <- buffer.n + 1;
      total + per_walk)
    0 pfns
