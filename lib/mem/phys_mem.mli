(** Physical memory: frame allocation and reclaim watermarks.

    Mirrors the kernel's zone watermarks: background reclaim (kswapd)
    wakes when free frames drop below the low watermark and sleeps once
    they recover past the high watermark; an allocation that finds no
    free frame enters direct reclaim. *)

type t

val create : ?low_watermark:int -> ?high_watermark:int -> frames:int -> unit -> t
(** Watermarks default to 1 % / 2 % of [frames] (at least 16 / 32
    frames), kernel-like fractions small enough that bursty allocation
    can outrun background reclaim.  @raise Invalid_argument unless
    [0 <= low_watermark <= high_watermark <= frames]. *)

val frames : t -> int

val free_count : t -> int

val used_count : t -> int

val low_watermark : t -> int

val high_watermark : t -> int

val alloc : t -> int option
(** Take a free frame (LIFO), or [None] when memory is exhausted. *)

val alloc_pfn : t -> int
(** Allocation-free {!alloc}: the frame number, or [-1] when memory is
    exhausted.  The fault path's allocator. *)

val free : t -> int -> unit
(** Return a frame.  @raise Invalid_argument on double free. *)

val is_free : t -> int -> bool

val below_low : t -> bool
(** Free count strictly below the low watermark — kswapd should run. *)

val above_high : t -> bool
(** Free count at or above the high watermark — kswapd can sleep. *)
