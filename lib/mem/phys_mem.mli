(** Physical memory: frame allocation and reclaim watermarks.

    Mirrors the kernel's zone watermarks: background reclaim (kswapd)
    wakes when free frames drop below the low watermark and sleeps once
    they recover past the high watermark; an allocation that finds no
    free frame enters direct reclaim. *)

type t

val create : ?low_watermark:int -> ?high_watermark:int -> frames:int -> unit -> t
(** Watermarks default to 1 % / 2 % of [frames] (at least 16 / 32
    frames), kernel-like fractions small enough that bursty allocation
    can outrun background reclaim.  @raise Invalid_argument unless
    [0 <= low_watermark <= high_watermark <= frames]. *)

val frames : t -> int
(** Total frame-number range, including offlined frames. *)

val free_count : t -> int

val used_count : t -> int
(** Allocated online frames: [online_count - free_count]. *)

val online_count : t -> int
(** Frames currently online (all of them until a hotplug injector
    offlines some). *)

val low_watermark : t -> int

val high_watermark : t -> int

val alloc : t -> int option
(** Take a free frame (LIFO), or [None] when memory is exhausted. *)

val alloc_pfn : t -> int
(** Allocation-free {!alloc}: the frame number, or [-1] when memory is
    exhausted.  The fault path's allocator. *)

val free : t -> int -> unit
(** Return a frame.  @raise Invalid_argument on double free. *)

val is_free : t -> int -> bool

val is_online : t -> int -> bool

val offline_free : t -> int -> unit
(** Memory-hotplug offline of a {e free} frame: remove it from the free
    stack and from the online count.  @raise Invalid_argument if the
    frame is allocated or already offline. *)

val offline_used : t -> int -> unit
(** Offline an {e allocated} frame whose contents the caller has already
    migrated or reclaimed-and-refreed elsewhere: the frame leaves the
    online count without ever returning to the free stack.
    @raise Invalid_argument if the frame is free or already offline. *)

val online : t -> int -> unit
(** Re-online a previously offlined frame; it rejoins the free stack.
    @raise Invalid_argument if the frame is already online. *)

val below_low : t -> bool
(** Free count strictly below the low watermark — kswapd should run. *)

val above_high : t -> bool
(** Free count at or above the high watermark — kswapd can sleep. *)
