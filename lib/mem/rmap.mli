(** Reverse-map walks with cost accounting.

    Clock scans accessed bits by iterating physical frames and resolving
    each back to its PTE through the reverse map — an expensive
    pointer-based walk (paper §III-B).  MG-LRU's eviction walker pays the
    same price per candidate but amortizes it by spatially scanning the
    surrounding page-table region.  Every call returns the owning mapping
    along with the modelled cost so callers charge it to the CPU. *)

type result = {
  mapping : (int * int) option; (** (asid, vpn), if the frame is mapped *)
  cost_ns : int;
}

val walk : Frame_table.t -> costs:Costs.t -> pfn:int -> result

(** Caller-owned batch destination: parallel [(asid, vpn)] arrays
    ([-1] = unmapped), reused — and grown geometrically — across walks
    so batch reverse-mapping allocates nothing per frame. *)
type buffer = {
  mutable asids : int array;
  mutable vpns : int array;
  mutable n : int; (** valid prefix length after a {!walk_into} *)
}

val create_buffer : ?capacity:int -> unit -> buffer

val walk_into : Frame_table.t -> costs:Costs.t -> pfns:int list -> buffer -> int
(** Resolve every frame of the batch into [buffer] (overwriting it) and
    return the summed walk cost.  Replaces the allocating
    [walk_many]. *)
