(** Linux-style workingset (shadow entry) accounting.

    Mirrors [mm/workingset.c]: every eviction advances a machine-wide
    eviction clock and leaves a {e shadow token} — the clock snapshot
    plus whether the page's accessed bit was still set — in the evicted
    page's page-table slot ({!Page_table.set_shadow}).  When the page
    refaults, {!classify} turns the token into a refault {e distance}
    (the number of other evictions between eviction and refault) and
    the kernel's activate/restore verdicts.

    Pure counter arithmetic: no allocation after {!create}, no
    dependence on policy internals, fully deterministic.  The machine
    feeds the results to {!Obs.Vmstat} ([workingset_refault] /
    [activate] / [restore]) and the trace stream; nothing here ever
    feeds back into an eviction decision. *)

type t

val create : capacity:int -> t
(** [capacity] is the machine's memory size in frames — the activation
    threshold.  @raise Invalid_argument when non-positive. *)

val capacity : t -> int

val evictions : t -> int
(** Current eviction-clock value (total {!note_eviction} calls). *)

(** {1 Shadow tokens} *)

val no_shadow : int
(** The absent token, [0] — what {!Page_table.shadow} returns for slots
    without one. *)

val note_eviction : t -> was_active:bool -> int
(** Advance the eviction clock and return the (non-zero) shadow token
    to store for the evicted page.  [was_active] records whether the
    page's accessed bit was set at eviction. *)

val shadow_was_active : int -> bool

val shadow_eviction : int -> int
(** The clock snapshot packed in a token (exposed for the tests). *)

(** {1 Refault classification} *)

type refault = {
  distance : int;
      (** evictions between this page's eviction and its refault *)
  activated : bool;
      (** [distance <= capacity]: an idealized LRU of the same size
          would still have held the page *)
  restored : bool;  (** the accessed bit was set when it was evicted *)
}

val classify : t -> shadow:int -> refault
(** Classify a refault from its shadow token.
    @raise Invalid_argument on {!no_shadow}. *)
