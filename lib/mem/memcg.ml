type amount =
  | Pages of int
  | Frac of float

type group_spec = {
  g_name : string;
  g_threads : (int * int) list;
  g_low : amount option;
  g_high : amount option;
  g_max : amount option;
}

type proactive_spec = {
  p_interval_ns : int;
  p_threshold : float;
  p_step : amount;
}

type spec = {
  groups : group_spec list;
  proactive : proactive_spec option;
  psi_interval_ns : int;
}

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)

let default_psi_interval_ns = 100_000_000 (* 100 ms simulated *)

let name_ok s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       s

let split_on sep s =
  String.split_on_char sep s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_amount s =
  let n = String.length s in
  if n = 0 then Error "empty amount"
  else if s.[n - 1] = '%' then
    match float_of_string_opt (String.sub s 0 (n - 1)) with
    | Some f when f >= 0.0 -> Ok (Frac (f /. 100.0))
    | _ -> Error (Printf.sprintf "bad percentage %S" s)
  else
    match int_of_string_opt s with
    | Some p when p >= 0 -> Ok (Pages p)
    | _ -> Error (Printf.sprintf "bad page count %S" s)

(* Durations: a plain integer is nanoseconds; us/ms/s suffixes scale. *)
let parse_duration s =
  let scaled suffix mult =
    let n = String.length s and m = String.length suffix in
    if n > m && String.sub s (n - m) m = suffix then
      match float_of_string_opt (String.sub s 0 (n - m)) with
      | Some f when f > 0.0 -> Some (int_of_float (f *. mult))
      | _ -> None
    else None
  in
  match scaled "us" 1e3 with
  | Some v -> Ok v
  | None ->
    (match scaled "ms" 1e6 with
     | Some v -> Ok v
     | None ->
       (match scaled "s" 1e9 with
        | Some v -> Ok v
        | None ->
          (match int_of_string_opt s with
           | Some v when v > 0 -> Ok v
           | _ -> Error (Printf.sprintf "bad duration %S" s))))

let parse_threads s =
  let parse_range r =
    match String.index_opt r '-' with
    | None ->
      (match int_of_string_opt r with
       | Some t when t >= 0 -> Ok (t, t)
       | _ -> Error (Printf.sprintf "bad thread id %S" r))
    | Some i ->
      let lo = String.sub r 0 i
      and hi = String.sub r (i + 1) (String.length r - i - 1) in
      (match (int_of_string_opt lo, int_of_string_opt hi) with
       | Some lo, Some hi when 0 <= lo && lo <= hi -> Ok (lo, hi)
       | _ -> Error (Printf.sprintf "bad thread range %S" r))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | r :: rest ->
      (match parse_range r with
       | Ok rg -> go (rg :: acc) rest
       | Error e -> Error e)
  in
  match split_on '+' s with
  | [] -> Error "empty thread list"
  | rs -> go [] rs

let parse_fields s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest ->
      (match String.index_opt f '=' with
       | None -> Error (Printf.sprintf "field %S is not key=value" f)
       | Some i ->
         let k = String.trim (String.sub f 0 i)
         and v = String.trim (String.sub f (i + 1) (String.length f - i - 1)) in
         if k = "" || v = "" then
           Error (Printf.sprintf "field %S is not key=value" f)
         else go ((k, v) :: acc) rest)
  in
  go [] (split_on ',' s)

let ( let* ) = Result.bind

let parse_group name fields =
  let threads = ref [] and low = ref None and high = ref None and max_ = ref None in
  let rec go = function
    | [] -> Ok ()
    | (k, v) :: rest ->
      let* () =
        match k with
        | "threads" ->
          let* t = parse_threads v in
          threads := t;
          Ok ()
        | "low" ->
          let* a = parse_amount v in
          low := Some a;
          Ok ()
        | "high" ->
          let* a = parse_amount v in
          high := Some a;
          Ok ()
        | "max" ->
          let* a = parse_amount v in
          max_ := Some a;
          Ok ()
        | _ -> Error (Printf.sprintf "cgroup %s: unknown key %S" name k)
      in
      go rest
  in
  let* () = go fields in
  if !threads = [] then
    Error (Printf.sprintf "cgroup %s: missing threads=" name)
  else
    Ok { g_name = name; g_threads = !threads; g_low = !low; g_high = !high;
         g_max = !max_ }

let parse_proactive fields =
  let interval = ref 100_000_000 and threshold = ref 0.10 and step = ref (Frac 0.01) in
  let rec go = function
    | [] -> Ok ()
    | (k, v) :: rest ->
      let* () =
        match k with
        | "interval" ->
          let* d = parse_duration v in
          interval := d;
          Ok ()
        | "threshold" ->
          (match float_of_string_opt v with
           | Some f when f >= 0.0 && f <= 1.0 ->
             threshold := f;
             Ok ()
           | _ -> Error (Printf.sprintf "proactive: bad threshold %S" v))
        | "step" ->
          let* a = parse_amount v in
          step := a;
          Ok ()
        | _ -> Error (Printf.sprintf "proactive: unknown key %S" k)
      in
      go rest
  in
  let* () = go fields in
  Ok { p_interval_ns = !interval; p_threshold = !threshold; p_step = !step }

let parse_spec s =
  let rec go groups proactive psi = function
    | [] ->
      if groups = [] && proactive = None then
        Error "empty --cgroups spec"
      else
        Ok { groups = List.rev groups; proactive;
             psi_interval_ns = (match psi with Some p -> p | None -> default_psi_interval_ns) }
    | seg :: rest ->
      let name, fields_s =
        match String.index_opt seg ':' with
        | None -> (String.trim seg, "")
        | Some i ->
          (String.trim (String.sub seg 0 i),
           String.sub seg (i + 1) (String.length seg - i - 1))
      in
      (match name with
       | "proactive" ->
         let* fields = parse_fields fields_s in
         let* p = parse_proactive fields in
         go groups (Some p) psi rest
       | "psi" ->
         let* fields = parse_fields fields_s in
         (match fields with
          | [ ("interval", v) ] ->
            let* d = parse_duration v in
            go groups proactive (Some d) rest
          | _ -> Error "psi: takes exactly interval=")
       | _ ->
         if not (name_ok name) then
           Error (Printf.sprintf "bad cgroup name %S" name)
         else if name = "root" then Error "cgroup name 'root' is reserved"
         else if List.exists (fun g -> g.g_name = name) groups then
           Error (Printf.sprintf "duplicate cgroup %S" name)
         else
           let* fields = parse_fields fields_s in
           let* g = parse_group name fields in
           go (g :: groups) proactive psi rest)
  in
  go [] None None (split_on ';' s)

let amount_to_string = function
  | Pages p -> string_of_int p
  | Frac f -> Printf.sprintf "%g%%" (f *. 100.0)

let spec_to_string spec =
  let buf = Buffer.create 128 in
  let seg s = if Buffer.length buf > 0 then Buffer.add_char buf ';'; Buffer.add_string buf s in
  List.iter
    (fun g ->
      let fields =
        [ Printf.sprintf "threads=%s"
            (String.concat "+"
               (List.map
                  (fun (lo, hi) ->
                    if lo = hi then string_of_int lo
                    else Printf.sprintf "%d-%d" lo hi)
                  g.g_threads)) ]
        @ (match g.g_low with None -> [] | Some a -> [ "low=" ^ amount_to_string a ])
        @ (match g.g_high with None -> [] | Some a -> [ "high=" ^ amount_to_string a ])
        @ (match g.g_max with None -> [] | Some a -> [ "max=" ^ amount_to_string a ])
      in
      seg (g.g_name ^ ":" ^ String.concat "," fields))
    spec.groups;
  (match spec.proactive with
   | None -> ()
   | Some p ->
     seg
       (Printf.sprintf "proactive:interval=%d,threshold=%g,step=%s" p.p_interval_ns
          p.p_threshold (amount_to_string p.p_step)));
  if spec.psi_interval_ns <> default_psi_interval_ns then
    seg (Printf.sprintf "psi:interval=%d" spec.psi_interval_ns);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Runtime state                                                       *)

(* Stall intervals arrive with non-decreasing start times (the machine
   records them as simulated time moves forward), are clipped to the
   window since the last advance, and folded into some/full by an
   endpoint sweep.  Deterministic: no wall clock, no randomness. *)
type psi_tracker = {
  mutable pending : (int * int) list; (* (start, end), newest first *)
  mutable last_advance : int;
  mutable some_ns : int;
  mutable full_ns : int;
}

let fresh_tracker () = { pending = []; last_advance = 0; some_ns = 0; full_ns = 0 }

(* memory.stat counter indices (see [stat_names]): the per-cgroup slice
   of the machine-wide vmstat registry.  The machine bumps these at its
   fault/reclaim points; every bump lands on the owning group *and* the
   root, so root's row is the hierarchical total, like a cgroup-v2
   parent's memory.stat. *)
let st_pgfault = 0
let st_pgmajfault = 1
let st_pgsteal = 2
let st_pswpin = 3
let st_pswpout = 4
let st_ws_refault = 5
let st_ws_activate = 6
let st_ws_restore = 7
let nr_stats = 8

let stat_names =
  [|
    "pgfault"; "pgmajfault"; "pgsteal"; "pswpin"; "pswpout";
    "workingset_refault"; "workingset_activate"; "workingset_restore";
  |]

(* One record for everything a cgroup accounts (as opposed to enforces):
   PSI, throttle and OOM tallies, request latencies, memory.stat.  Kept
   separate from the limit fields so the accounting surface has a single
   shape wherever it is swept or reported. *)
type stats = {
  mutable st_throttles : int;
  mutable st_throttled_ns : int;
  mutable st_ooms : int;
  mutable st_probe_some : int; (* some_ns at the last proactive tick *)
  st_psi : psi_tracker;
  mutable st_read_lat : float list; (* newest first *)
  mutable st_write_lat : float list;
  st_vm : int array; (* memory.stat counters, [nr_stats] long *)
}

let fresh_stats () =
  {
    st_throttles = 0;
    st_throttled_ns = 0;
    st_ooms = 0;
    st_probe_some = 0;
    st_psi = fresh_tracker ();
    st_read_lat = [];
    st_write_lat = [];
    st_vm = Array.make nr_stats 0;
  }

type cgroup = {
  cg_name : string;
  (* Limits are mutable because chaos limit-churn injectors rewrite
     memory.{low,high,max} mid-run, exactly like echoing into the cgroup
     files on a live system. *)
  mutable cg_low : int;
  mutable cg_high : int;      (* max_int = unlimited *)
  mutable cg_max : int;       (* max_int = unlimited *)
  mutable cg_eff : int;       (* proactive effective limit *)
  mutable cg_eff_set : bool;  (* probe has touched cg_eff *)
  mutable cg_usage : int;
  mutable cg_live : int;
  cg_stats : stats;
}

type resolved_proactive = {
  rp_threshold : float;
  rp_step : int;
}

type t = {
  cgs : cgroup array;          (* 0 = root *)
  tid_cg : int array;          (* tid -> cgroup index *)
  page_cg : int array;         (* vpn -> cgroup index, -1 = uncharged *)
  streak : int array;          (* tid -> consecutive over-high charges *)
  global : psi_tracker;
  mutable global_live : int;
  capacity : int;
  proactive : resolved_proactive option;
  psi_every : int;
}

let resolve_amount capacity = function
  | Pages p -> p
  | Frac f -> int_of_float (f *. float_of_int capacity)

let create spec ~capacity_frames ~nthreads ~footprint_pages =
  let limit capacity = function
    | None -> max_int
    | Some a -> resolve_amount capacity a
  in
  let mk_group g live =
    {
      cg_name = g.g_name;
      cg_low = (match g.g_low with None -> 0 | Some a -> resolve_amount capacity_frames a);
      cg_high = limit capacity_frames g.g_high;
      cg_max = limit capacity_frames g.g_max;
      cg_eff = max_int;
      cg_eff_set = false;
      cg_usage = 0;
      cg_live = live;
      cg_stats = fresh_stats ();
    }
  in
  let tid_cg = Array.make (max nthreads 1) 0 in
  let claimed = Array.make (max nthreads 1) false in
  List.iteri
    (fun i g ->
      List.iter
        (fun (lo, hi) ->
          for tid = lo to hi do
            if tid >= nthreads then
              invalid_arg
                (Printf.sprintf "cgroup %s: thread %d out of range (%d threads)"
                   g.g_name tid nthreads);
            if claimed.(tid) then
              invalid_arg
                (Printf.sprintf "cgroup %s: thread %d already assigned" g.g_name tid);
            claimed.(tid) <- true;
            tid_cg.(tid) <- i + 1
          done)
        g.g_threads)
    spec.groups;
  let live_of cg =
    let n = ref 0 in
    Array.iteri (fun tid c -> if tid < nthreads && c = cg then incr n) tid_cg;
    !n
  in
  let root =
    mk_group
      { g_name = "root"; g_threads = []; g_low = None; g_high = None; g_max = None }
      0
  in
  let cgs =
    Array.of_list (root :: List.map (fun g -> mk_group g 0) spec.groups)
  in
  Array.iteri (fun i cg -> cg.cg_live <- live_of i) cgs;
  {
    cgs;
    tid_cg;
    page_cg = Array.make (max footprint_pages 1) (-1);
    streak = Array.make (max nthreads 1) 0;
    global = fresh_tracker ();
    global_live = nthreads;
    capacity = capacity_frames;
    proactive =
      Option.map
        (fun p ->
          { rp_threshold = p.p_threshold;
            rp_step = max 1 (resolve_amount capacity_frames p.p_step) })
        spec.proactive;
    psi_every =
      (match spec.proactive with
       | Some p -> min spec.psi_interval_ns p.p_interval_ns
       | None -> spec.psi_interval_ns);
  }

let ncgroups t = Array.length t.cgs
let name t cg = t.cgs.(cg).cg_name

let find t cg_name =
  let n = Array.length t.cgs in
  let rec go i =
    if i >= n then None
    else if String.equal t.cgs.(i).cg_name cg_name then Some i
    else go (i + 1)
  in
  go 0

let capacity t = t.capacity

(* Rewrite memory.{low,high,max} on a live group — the chaos limit-churn
   injector.  [None] leaves a limit untouched; [Some] values are resolved
   frame counts ([max_int] = unlimited for high/max).  The new limits
   take effect on the next charge/uncharge; the caller decides whether to
   trigger reclaim for a group now over its max. *)
let set_limits t cg ?low ?high ?max_limit () =
  let g = t.cgs.(cg) in
  (match low with Some v -> g.cg_low <- max 0 v | None -> ());
  (match high with Some v -> g.cg_high <- max 0 v | None -> ());
  (match max_limit with Some v -> g.cg_max <- max 0 v | None -> ())

let cg_of_thread t tid =
  if tid >= 0 && tid < Array.length t.tid_cg then t.tid_cg.(tid) else 0

let cg_of_page t vpn = t.page_cg.(vpn)
let usage t cg = t.cgs.(cg).cg_usage
let low t cg = t.cgs.(cg).cg_low
let high t cg = t.cgs.(cg).cg_high
let max_limit t cg = t.cgs.(cg).cg_max
let eff_limit t cg = t.cgs.(cg).cg_eff

let charge t ~tid ~vpn =
  let cg = cg_of_thread t tid in
  (* A page can only be charged once: the machine maps each vpn to at
     most one frame, and uncharges on eviction. *)
  t.page_cg.(vpn) <- cg;
  t.cgs.(cg).cg_usage <- t.cgs.(cg).cg_usage + 1

let uncharge t ~vpn =
  let cg = t.page_cg.(vpn) in
  if cg >= 0 then begin
    t.page_cg.(vpn) <- -1;
    t.cgs.(cg).cg_usage <- t.cgs.(cg).cg_usage - 1
  end


let over_high t cg =
  let g = t.cgs.(cg) in
  g.cg_high < max_int && g.cg_usage > g.cg_high

let high_overage t cg =
  let g = t.cgs.(cg) in
  if g.cg_high = max_int then 0 else max 0 (g.cg_usage - g.cg_high)

let over_max t cg ~extra =
  let g = t.cgs.(cg) in
  g.cg_max < max_int && g.cg_usage + extra > g.cg_max

let max_overage t cg ~extra =
  let g = t.cgs.(cg) in
  if g.cg_max = max_int then 0 else max 0 (g.cg_usage + extra - g.cg_max)

let low_protected t cg =
  let g = t.cgs.(cg) in
  g.cg_low > 0 && g.cg_usage <= g.cg_low

(* memory.high penalty: doubles per consecutive over-high charge, like
   the transient-I/O retry backoff, capped at 2^10 * base and 100 ms. *)
let throttle_cap_ns = 100_000_000

let throttle_ns t ~tid ~base_ns =
  let cg = cg_of_thread t tid in
  if over_high t cg then begin
    let s = t.streak.(tid) in
    t.streak.(tid) <- s + 1;
    let d = min (base_ns * (1 lsl min s 10)) throttle_cap_ns in
    let st = t.cgs.(cg).cg_stats in
    st.st_throttles <- st.st_throttles + 1;
    st.st_throttled_ns <- st.st_throttled_ns + d;
    d
  end
  else begin
    t.streak.(tid) <- 0;
    0
  end

(* ------------------------------------------------------------------ *)
(* PSI                                                                 *)

let record tracker ~t0 ~t1 =
  if t1 > t0 then tracker.pending <- (t0, t1) :: tracker.pending

let stall t ~tid ~t0 ~t1 =
  if t1 > t0 then begin
    record t.cgs.(cg_of_thread t tid).cg_stats.st_psi ~t0 ~t1;
    record t.global ~t0 ~t1
  end

let advance_tracker p ~live ~now =
  if now > p.last_advance then begin
    let lo = p.last_advance in
    if p.pending <> [] then begin
      let evs = ref [] in
      List.iter
        (fun (s, e) ->
          let s = max s lo and e = min e now in
          if e > s then evs := (s, 1) :: (e, -1) :: !evs)
        p.pending;
      let evs =
        List.sort
          (fun (a, da) (b, db) ->
            if a <> b then compare a b else compare db da)
          !evs
      in
      let cur = ref 0 and last_t = ref lo and some = ref 0 and full = ref 0 in
      List.iter
        (fun (tm, d) ->
          let dt = tm - !last_t in
          if dt > 0 then begin
            if !cur >= 1 then some := !some + dt;
            if live > 0 && !cur >= live then full := !full + dt
          end;
          last_t := tm;
          cur := !cur + d)
        evs;
      p.some_ns <- p.some_ns + !some;
      p.full_ns <- p.full_ns + !full;
      p.pending <- List.filter (fun (_, e) -> e > now) p.pending
    end;
    p.last_advance <- now
  end

(* The one stall sweep, shared by the PSI tick, thread exit and the
   end-of-run summary: fold every tracker's pending intervals forward to
   [now] against the live set they were recorded under. *)
let advance t ~now =
  Array.iter
    (fun cg -> advance_tracker cg.cg_stats.st_psi ~live:cg.cg_live ~now)
    t.cgs;
  advance_tracker t.global ~live:t.global_live ~now

let thread_exit t ~tid ~now =
  (* Sweep stalls recorded up to the exit first, so the thread's final
     stall intervals still count against the live set it belonged to —
     otherwise a single-thread cgroup's last stall would be some-only. *)
  advance t ~now;
  let cg = cg_of_thread t tid in
  t.cgs.(cg).cg_live <- max 0 (t.cgs.(cg).cg_live - 1);
  t.global_live <- max 0 (t.global_live - 1)

let psi_some t cg = t.cgs.(cg).cg_stats.st_psi.some_ns
let psi_full t cg = t.cgs.(cg).cg_stats.st_psi.full_ns
let machine_some t = t.global.some_ns
let machine_full t = t.global.full_ns
let psi_interval_ns t = t.psi_every

(* ------------------------------------------------------------------ *)
(* Proactive probe (Senpai): tighten the effective limit while the
   group's PSI pressure over the last window stays under the threshold,
   back off (twice as fast) once it crosses. *)

let proactive_on t = t.proactive <> None

let proactive_step t cg =
  match t.proactive with
  | None -> (0, 0)
  | Some p ->
    let g = t.cgs.(cg) in
    let st = g.cg_stats in
    let window = t.psi_every in
    let delta = st.st_psi.some_ns - st.st_probe_some in
    st.st_probe_some <- st.st_psi.some_ns;
    let pressure_ppm = delta * 1_000_000 / max 1 window in
    let ceiling = min g.cg_max t.capacity in
    let floor_ = max g.cg_low (min 16 ceiling) in
    if float_of_int pressure_ppm < p.rp_threshold *. 1e6 then begin
      let base = if g.cg_eff_set then min g.cg_eff g.cg_usage else g.cg_usage in
      g.cg_eff <- max floor_ (base - p.rp_step);
      g.cg_eff_set <- true
    end
    else if g.cg_eff_set then
      g.cg_eff <- min ceiling (g.cg_eff + (2 * p.rp_step));
    let want = if g.cg_eff_set then max 0 (g.cg_usage - g.cg_eff) else 0 in
    (want, pressure_ppm)

(* ------------------------------------------------------------------ *)
(* Counters and reports                                                *)

let note_oom t cg =
  let st = t.cgs.(cg).cg_stats in
  st.st_ooms <- st.st_ooms + 1

let oom_kills t cg = t.cgs.(cg).cg_stats.st_ooms
let throttles t cg = t.cgs.(cg).cg_stats.st_throttles
let throttled_ns t cg = t.cgs.(cg).cg_stats.st_throttled_ns

let note_latency t ~tid ~cls ns =
  let st = t.cgs.(cg_of_thread t tid).cg_stats in
  if cls = 0 then st.st_read_lat <- ns :: st.st_read_lat
  else if cls = 1 then st.st_write_lat <- ns :: st.st_write_lat

(* memory.stat bumps: the owning group and, hierarchically, the root.
   Root's own events (cg = 0) land once. *)
let vm_bump_cg t cg i =
  t.cgs.(cg).cg_stats.st_vm.(i) <- t.cgs.(cg).cg_stats.st_vm.(i) + 1;
  if cg <> 0 then t.cgs.(0).cg_stats.st_vm.(i) <- t.cgs.(0).cg_stats.st_vm.(i) + 1

let vm_bump t ~tid i = vm_bump_cg t (cg_of_thread t tid) i

let vm_bump_page t ~vpn i =
  let cg = t.page_cg.(vpn) in
  vm_bump_cg t (if cg >= 0 then cg else 0) i

let vm_count t cg i = t.cgs.(cg).cg_stats.st_vm.(i)

type report = {
  r_name : string;
  r_usage : int;
  r_low : int;
  r_high : int;
  r_max : int;
  r_limit : int;
  r_throttles : int;
  r_throttled_ns : int;
  r_oom_kills : int;
  r_psi_some_ns : int;
  r_psi_full_ns : int;
  r_read_latencies : float array;
  r_write_latencies : float array;
  r_vm : int array; (* memory.stat counters, [nr_stats] long *)
}

type summary = {
  s_groups : report list;
  s_some_ns : int;
  s_full_ns : int;
}

let summary t ~now =
  advance t ~now;
  let groups =
    Array.to_list
      (Array.map
         (fun g ->
           {
             r_name = g.cg_name;
             r_usage = g.cg_usage;
             r_low = g.cg_low;
             r_high = (if g.cg_high = max_int then -1 else g.cg_high);
             r_max = (if g.cg_max = max_int then -1 else g.cg_max);
             r_limit = (if g.cg_eff_set then g.cg_eff else -1);
             r_throttles = g.cg_stats.st_throttles;
             r_throttled_ns = g.cg_stats.st_throttled_ns;
             r_oom_kills = g.cg_stats.st_ooms;
             r_psi_some_ns = g.cg_stats.st_psi.some_ns;
             r_psi_full_ns = g.cg_stats.st_psi.full_ns;
             r_read_latencies = Array.of_list (List.rev g.cg_stats.st_read_lat);
             r_write_latencies = Array.of_list (List.rev g.cg_stats.st_write_lat);
             r_vm = Array.copy g.cg_stats.st_vm;
           })
         t.cgs)
  in
  { s_groups = groups; s_some_ns = t.global.some_ns; s_full_ns = t.global.full_ns }

(* Journal encoding.  Groups joined with '|', fields with ';', each
   field 'k=v'; latency arrays are space-separated hex floats so the
   round-trip is bit-exact.  Cgroup names are [A-Za-z0-9_-]+ by
   construction, so the separators are safe. *)

let floats_enc a =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") a))

let floats_dec s =
  if String.trim s = "" then Some [||]
  else
    let parts = split_on ' ' s in
    let out = Array.make (List.length parts) 0.0 in
    let ok = ref true in
    List.iteri
      (fun i p ->
        match float_of_string_opt p with
        | Some f -> out.(i) <- f
        | None -> ok := false)
      parts;
    if !ok then Some out else None

let report_enc r =
  String.concat ";"
    [
      "name=" ^ r.r_name;
      Printf.sprintf "usage=%d" r.r_usage;
      Printf.sprintf "low=%d" r.r_low;
      Printf.sprintf "high=%d" r.r_high;
      Printf.sprintf "max=%d" r.r_max;
      Printf.sprintf "limit=%d" r.r_limit;
      Printf.sprintf "throttles=%d" r.r_throttles;
      Printf.sprintf "throttled_ns=%d" r.r_throttled_ns;
      Printf.sprintf "oom_kills=%d" r.r_oom_kills;
      Printf.sprintf "psi_some_ns=%d" r.r_psi_some_ns;
      Printf.sprintf "psi_full_ns=%d" r.r_psi_full_ns;
      "rlat=" ^ floats_enc r.r_read_latencies;
      "wlat=" ^ floats_enc r.r_write_latencies;
      "vm="
      ^ String.concat " "
          (Array.to_list (Array.map string_of_int r.r_vm));
    ]

let summary_to_string s =
  Printf.sprintf "some=%d,full=%d%s" s.s_some_ns s.s_full_ns
    (String.concat ""
       (List.map (fun r -> "|" ^ report_enc r) s.s_groups))

let report_dec s =
  let fields =
    List.filter_map
      (fun f ->
        match String.index_opt f '=' with
        | None -> None
        | Some i ->
          Some
            ( String.sub f 0 i,
              String.sub f (i + 1) (String.length f - i - 1) ))
      (String.split_on_char ';' s)
  in
  let str k = List.assoc_opt k fields in
  let int k = Option.bind (str k) int_of_string_opt in
  match
    ( str "name", int "usage", int "low", int "high", int "max", int "limit",
      int "throttles", int "throttled_ns", int "oom_kills", int "psi_some_ns",
      int "psi_full_ns" )
  with
  | ( Some name, Some usage, Some low, Some high, Some max_, Some limit,
      Some throttles, Some throttled_ns, Some ooms, Some some, Some full ) ->
    let lat k =
      match str k with None -> Some [||] | Some v -> floats_dec v
    in
    let vm =
      (* Older records have no vm= field; zero-fill so they decode. *)
      let a = Array.make nr_stats 0 in
      (match str "vm" with
       | None -> ()
       | Some v ->
         List.iteri
           (fun i p ->
             if i < nr_stats then
               match int_of_string_opt p with
               | Some n -> a.(i) <- n
               | None -> ())
           (split_on ' ' v));
      a
    in
    (match (lat "rlat", lat "wlat") with
     | Some rlat, Some wlat ->
       Some
         {
           r_name = name;
           r_usage = usage;
           r_low = low;
           r_high = high;
           r_max = max_;
           r_limit = limit;
           r_throttles = throttles;
           r_throttled_ns = throttled_ns;
           r_oom_kills = ooms;
           r_psi_some_ns = some;
           r_psi_full_ns = full;
           r_read_latencies = rlat;
           r_write_latencies = wlat;
           r_vm = vm;
         }
     | _ -> None)
  | _ -> None

let summary_of_string s =
  match String.split_on_char '|' s with
  | [] -> None
  | head :: groups ->
    let kv =
      List.filter_map
        (fun f ->
          match String.index_opt f '=' with
          | None -> None
          | Some i ->
            Some
              ( String.sub f 0 i,
                String.sub f (i + 1) (String.length f - i - 1) ))
        (String.split_on_char ',' head)
    in
    (match
       ( Option.bind (List.assoc_opt "some" kv) int_of_string_opt,
         Option.bind (List.assoc_opt "full" kv) int_of_string_opt )
     with
     | Some some, Some full ->
       let rec decode acc = function
         | [] -> Some (List.rev acc)
         | g :: rest ->
           (match report_dec g with
            | Some r -> decode (r :: acc) rest
            | None -> None)
       in
       Option.map
         (fun gs -> { s_groups = gs; s_some_ns = some; s_full_ns = full })
         (decode [] groups)
     | _ -> None)
