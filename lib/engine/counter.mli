(** Named integer counters for simulation metrics.

    A lightweight metrics registry: policies and devices report how many
    PTEs they scanned, rmap walks they performed, pages they promoted,
    and so on.  Hot-path counts inside the machine itself use plain
    mutable fields; this registry is for everything else.

    {b Domain ownership.}  A registry is single-domain state: it is not
    locked, and concurrent mutation from several domains would lose
    updates.  Under the parallel trial engine each domain accumulates
    into its own registry and the results are combined {e after} the
    domains have been joined, with {!merge_into} or {!merge_all} —
    never by sharing one registry across running domains. *)

type t

val create : unit -> t

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val get : t -> string -> int
(** 0 for counters never touched. *)

val reset : t -> unit

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val merge_into : src:t -> dst:t -> unit
(** Add every counter of [src] into [dst].  Both registries must be
    quiescent (no domain is mutating them) — merge per-domain registries
    post-join, not mid-flight. *)

val merge_all : t list -> t
(** A fresh registry holding the sum of every input: the post-join
    aggregation step for per-domain registries. *)
