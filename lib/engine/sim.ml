type t = {
  queue : (t -> unit) Event_queue.t;
  mutable now : int;
  mutable stop_requested : bool;
}

let create () = { queue = Event_queue.create (); now = 0; stop_requested = false }

let now t = t.now

let schedule t ~delay f =
  let delay = max delay 0 in
  Event_queue.add t.queue ~time:(t.now + delay) f

let schedule_at t ~time f = Event_queue.add t.queue ~time:(max time t.now) f

let pending t = Event_queue.size t.queue

let run ?(until = max_int) ?(cancel = Cancel.never) t =
  t.stop_requested <- false;
  let rec loop () =
    if not t.stop_requested then begin
      (* Cooperative cancellation, checked between events: the in-flight
         event always completes, so callers never observe state torn mid
         event. *)
      Cancel.check cancel;
      match Event_queue.peek_time t.queue with
      | None -> ()
      | Some time when time > until -> ()
      | Some _ -> (
        match Event_queue.pop t.queue with
        | None -> ()
        | Some (time, f) ->
          t.now <- time;
          f t;
          loop ())
    end
  in
  loop ()

let stop t = t.stop_requested <- true
