type t = {
  queue : (t -> unit) Event_queue.t;
  mutable now : int;
  mutable stop_requested : bool;
}

(* An explicit dummy keeps popped closures collectable without pinning
   the first real event (see Event_queue.create). *)
let create () =
  { queue = Event_queue.create ~dummy:ignore (); now = 0; stop_requested = false }

let now t = t.now

let schedule t ~delay f =
  let delay = max delay 0 in
  Event_queue.add t.queue ~time:(t.now + delay) f

let schedule_at t ~time f = Event_queue.add t.queue ~time:(max time t.now) f

let pending t = Event_queue.size t.queue

let run ?(until = max_int) ?(cancel = Cancel.never) t =
  t.stop_requested <- false;
  let rec loop () =
    if not t.stop_requested then begin
      (* Cooperative cancellation, checked between events: the in-flight
         event always completes, so callers never observe state torn mid
         event. *)
      Cancel.check cancel;
      (* next_time/pop_payload instead of peek/pop: no option or tuple
         is allocated per event. *)
      let time = Event_queue.next_time t.queue in
      if time >= 0 && time <= until then begin
        let f = Event_queue.pop_payload t.queue in
        t.now <- time;
        f t;
        loop ()
      end
    end
  in
  loop ()

let stop t = t.stop_requested <- true
