type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let add t name n =
  let c = cell t name in
  c := !c + n

let incr t name = add t name 1

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let reset t = Hashtbl.reset t

let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~src ~dst = Hashtbl.iter (fun name r -> add dst name !r) src

let merge_all ts =
  let dst = create () in
  List.iter (fun src -> merge_into ~src ~dst) ts;
  dst
