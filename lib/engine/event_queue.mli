(** Priority queue of timestamped events.

    A binary min-heap keyed by [(time, sequence)]: events at equal times
    pop in insertion order, which keeps trials deterministic.  The heap
    is stored as unboxed parallel int arrays (time, sequence) plus a
    payload table, so no per-event record is ever allocated. *)

type 'a t

val create : ?dummy:'a -> unit -> 'a t
(** [dummy] overwrites vacated payload slots on {!pop} so popped
    payloads become collectable; when omitted, the first payload ever
    added is used (and therefore stays reachable for the queue's
    lifetime). *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> time:int -> 'a -> unit
(** @raise Invalid_argument if [time] is negative. *)

val peek_time : 'a t -> int option
(** Timestamp of the next event without removing it. *)

val next_time : 'a t -> int
(** Allocation-free {!peek_time}: the next event's timestamp, or [-1]
    when the queue is empty (times are validated non-negative). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)]. *)

val pop_payload : 'a t -> 'a
(** Allocation-free {!pop}: remove and return the earliest payload
    (its timestamp is {!next_time}, read before popping).
    @raise Invalid_argument if the queue is empty. *)

val clear : 'a t -> unit
(** Drop every pending event and release the backing arrays, resetting
    capacity (payloads are no longer reachable through the queue). *)
