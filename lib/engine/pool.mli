(** A fixed-size pool of OCaml 5 domains for embarrassingly parallel
    task batches.

    The experiment grid (workload x policy x ratio x swap x trial) is
    embarrassingly parallel: every trial owns its seeded RNG, workload
    instance and simulated machine, so trials never share mutable state.
    The pool schedules such independent tasks across domains with
    chunked self-scheduling (each worker claims the next unclaimed index
    under a mutex — cheap work stealing for coarse tasks) and returns
    results {e in task order}, so callers that print or aggregate
    serially produce output bit-identical to a serial run.

    Exceptions raised by tasks are caught per task; after the batch
    completes, the exception of the {e lowest-indexed} failing task is
    re-raised in the caller, regardless of which domain ran it or when —
    error reporting is deterministic too.

    A pool with [jobs = 1] spawns no domains at all and runs every task
    in the calling domain: the degenerate case is plain serial code.

    Pools are not re-entrant: tasks must not submit to the pool that is
    running them (they may create their own). *)

type t

val create : jobs:int -> t
(** A pool that runs batches on [max 1 jobs] domains.  [jobs - 1]
    worker domains are spawned eagerly (the submitting domain is the
    remaining worker); they idle on a condition variable between
    batches. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], capped to a sane ceiling for
    coarse simulation trials (at least 1). *)

(** The per-task result of a supervised batch.  An [Error] captures the
    task's exception and backtrace instead of re-raising, so one failing
    task cannot abort the other N-1. *)
type 'a outcome =
  | Ok of 'a
  | Error of { exn : exn; backtrace : Printexc.raw_backtrace }

val map_supervised : t -> ('a -> 'b) -> 'a array -> 'b outcome array
(** [map_supervised pool f tasks] applies [f] to every element, in
    parallel across the pool's domains, and returns one {!outcome} per
    task in input order.  Every task runs to completion (or failure)
    regardless of how many others fail — fault-isolating execution for
    long sweeps where a raising trial must not poison the batch. *)

val run_supervised : t -> (unit -> 'a) list -> 'a outcome list
(** [run_supervised pool thunks] = supervised [run]: one outcome per
    thunk, in order, never raising a task's exception. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f tasks] applies [f] to every element, in parallel across
    the pool's domains, and returns the results in input order.
    Re-raises the lowest-indexed task exception, if any, after every
    task has finished. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] = [map_list pool (fun f -> f ()) thunks]. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool cannot be used
    afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run the callback, and [shutdown] (also on exception). *)
