type t = {
  hw_threads : int;
  mutable runnable : int;
  mutable busy_ns : int;
  mutable hook : (int -> int -> unit) option;
}

let create ~hw_threads =
  if hw_threads <= 0 then invalid_arg "Cpu.create: hw_threads must be positive";
  { hw_threads; runnable = 0; busy_ns = 0; hook = None }

let hw_threads t = t.hw_threads

let runnable t = t.runnable

let run_begin t = t.runnable <- t.runnable + 1

let run_end t =
  if t.runnable <= 0 then invalid_arg "Cpu.run_end: no runnable entities";
  t.runnable <- t.runnable - 1

let load t =
  if t.runnable <= t.hw_threads then 1.0
  else float_of_int t.runnable /. float_of_int t.hw_threads

let scale t work =
  if work <= 0 then 0
  else int_of_float (float_of_int work *. load t)

let busy_ns t = t.busy_ns

let set_hook t f = t.hook <- Some f

let no_phase = -1

(* Allocation-free tagged charge: the optional-argument form boxes a
   [Some phase] at every call site that passes [~phase]. *)
let charge_tagged t ~phase work =
  if work > 0 then begin
    t.busy_ns <- t.busy_ns + work;
    match t.hook with None -> () | Some f -> f phase work
  end

let charge ?(phase = no_phase) t work = charge_tagged t ~phase work
