(** Processor-sharing CPU contention model.

    The simulated machine mirrors the paper's testbed: 6 cores / 12
    hardware threads shared by the application threads and the kernel's
    reclaim machinery (Clock's kswapd, MG-LRU's aging and eviction
    walkers).  When more entities are runnable than there are hardware
    threads, every entity's compute stretches proportionally — this is
    the mechanism behind the paper's finding that heavyweight scanning
    (Scan-All) slows the application down and perturbs per-thread
    progress. *)

type t

val create : hw_threads:int -> t
(** @raise Invalid_argument if [hw_threads <= 0]. *)

val hw_threads : t -> int

val runnable : t -> int
(** Entities currently executing or waiting for a hardware thread. *)

val run_begin : t -> unit
(** Declare one more runnable entity. *)

val run_end : t -> unit
(** Declare one runnable entity done (or blocked on I/O). *)

val scale : t -> int -> int
(** [scale t work] converts [work] nanoseconds of pure compute into
    wall-clock nanoseconds under the current load: [work] itself while
    [runnable <= hw_threads], stretched by [runnable / hw_threads]
    beyond that.  The caller should already be counted in [runnable]. *)

val load : t -> float
(** Current stretch factor, [>= 1.0]. *)

val busy_ns : t -> int
(** Total compute-nanoseconds charged so far (for utilization metrics). *)

val no_phase : int
(** The phase tag of an untagged {!charge} ([-1]). *)

val set_hook : t -> (int -> int -> unit) -> unit
(** Install an observation hook called as [f phase work] on every
    positive {!charge}.  [phase] is the caller's opaque tag
    ({!no_phase} when the charge was untagged).  The engine knows
    nothing about tags — the profiler layer above assigns meaning — and
    no hook is installed by default, so uninstrumented machines pay one
    branch per charge. *)

val charge : ?phase:int -> t -> int -> unit
(** Account [work] nanoseconds of compute against [busy_ns].  [phase]
    is forwarded verbatim to the hook, if any; it never affects timing
    or accounting. *)

val charge_tagged : t -> phase:int -> int -> unit
(** Allocation-free [charge ~phase]: a non-optional tag, so hot call
    sites do not box a [Some phase] per charge. *)
