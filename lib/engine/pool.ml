(* Chunked self-scheduling across domains: one mutex-protected claim
   index per batch.  Tasks here are whole simulation trials (seconds),
   so a claim under a mutex costs nothing relative to the work and gives
   dynamic load balancing — a slow trial does not hold up the queue the
   way a static block partition would. *)

type batch = {
  run_task : int -> unit; (* must not raise; map wraps exceptions *)
  total : int;
  mutable next : int;     (* next unclaimed index *)
  mutable finished : int; (* tasks fully executed *)
}

type t = {
  n_jobs : int;
  mu : Mutex.t;
  work : Condition.t;  (* workers: a batch arrived, or shutdown *)
  done_ : Condition.t; (* submitter: the current batch completed *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = max 1 (min (Domain.recommended_domain_count ()) 16)

(* Run claimable tasks of [b] until none remain.  Called (and returns)
   with [t.mu] held. *)
let drain t b =
  while b.next < b.total do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock t.mu;
    b.run_task i;
    Mutex.lock t.mu;
    b.finished <- b.finished + 1;
    if b.finished = b.total then begin
      t.batch <- None;
      Condition.broadcast t.done_
    end
  done

let worker t =
  Mutex.lock t.mu;
  let rec idle () =
    match t.batch with
    | Some b when b.next < b.total ->
      drain t b;
      idle ()
    | Some _ | None ->
      if t.stop then Mutex.unlock t.mu
      else begin
        Condition.wait t.work t.mu;
        idle ()
      end
  in
  idle ()

let create ~jobs =
  let n_jobs = max 1 jobs in
  let t =
    {
      n_jobs;
      mu = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      batch = None;
      stop = false;
      workers = [];
    }
  in
  (* The submitting domain is worker number [n_jobs]. *)
  t.workers <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.n_jobs

let exec t run_task total =
  if total > 0 then
    if t.n_jobs = 1 then
      (* Degenerate pool: no domains, no locking — plain serial code. *)
      for i = 0 to total - 1 do
        run_task i
      done
    else begin
      Mutex.lock t.mu;
      if t.stop then begin
        Mutex.unlock t.mu;
        invalid_arg "Pool.exec: pool is shut down"
      end;
      let b = { run_task; total; next = 0; finished = 0 } in
      t.batch <- Some b;
      Condition.broadcast t.work;
      drain t b;
      (* Our claimable work is gone, but stolen tasks may still be in
         flight on other domains. *)
      while b.finished < b.total do
        Condition.wait t.done_ t.mu
      done;
      Mutex.unlock t.mu
    end

type 'a outcome =
  | Ok of 'a
  | Error of { exn : exn; backtrace : Printexc.raw_backtrace }

let map_supervised t f tasks =
  let n = Array.length tasks in
  let outcomes = Array.make n None in
  (* Slots are written by at most one domain each, so the array needs no
     lock; the batch-completion handshake publishes them to the caller. *)
  let run_task i =
    outcomes.(i) <-
      Some
        (match f tasks.(i) with
        | v -> Ok v
        | exception e -> Error { exn = e; backtrace = Printexc.get_raw_backtrace () })
  in
  exec t run_task n;
  Array.map
    (function
      | Some o -> o
      | None -> assert false)
    outcomes

let run_supervised t thunks =
  Array.to_list (map_supervised t (fun f -> f ()) (Array.of_list thunks))

let map t f tasks =
  let outcomes = map_supervised t f tasks in
  (* Re-raise the lowest-indexed failure, deterministically. *)
  Array.iter
    (function
      | Error { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace
      | Ok _ -> ())
    outcomes;
  Array.map
    (function
      | Ok v -> v
      | Error _ -> assert false)
    outcomes

let map_list t f tasks = Array.to_list (map t f (Array.of_list tasks))

let run t thunks = map_list t (fun f -> f ()) thunks

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mu;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
