(* Binary min-heap over parallel arrays.

   Keys live in two unboxed int arrays (time, insertion sequence) so
   sift comparisons never chase a pointer; payloads sit in a third
   array indexed the same way.  [pop] overwrites the vacated payload
   slot with [dummy] so popped payloads are collectable the moment the
   caller drops them, and [clear] discards the arrays entirely so a
   drained queue does not pin its high-water-mark capacity. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable len : int;
  mutable next_seq : int;
  mutable dummy : 'a option;
      (* overwrites vacated slots; defaults to the first payload ever
         added, which then stays reachable — pass [~dummy] to [create]
         when that matters *)
}

let create ?dummy () =
  { times = [||]; seqs = [||]; payloads = [||]; len = 0; next_seq = 0; dummy }

let size t = t.len

let is_empty t = t.len = 0

let before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let time = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- time;
  let seq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- seq;
  let payload = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- payload

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t l !smallest then smallest := l;
  if r < t.len && before t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t payload =
  let cap = max 16 (2 * t.len) in
  let times = Array.make cap 0 in
  let seqs = Array.make cap 0 in
  let fill = match t.dummy with Some d -> d | None -> payload in
  let payloads = Array.make cap fill in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.payloads 0 payloads 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.payloads <- payloads

let add t ~time payload =
  if time < 0 then invalid_arg "Event_queue.add: negative time";
  (match t.dummy with None -> t.dummy <- Some payload | Some _ -> ());
  if t.len = Array.length t.times then grow t payload;
  t.times.(t.len) <- time;
  t.seqs.(t.len) <- t.next_seq;
  t.payloads.(t.len) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

(* Remove the root: move the last element up, then blank the vacated
   slot so its payload is not kept alive by the spare capacity. *)
let drop_min t =
  let last = t.len - 1 in
  t.len <- last;
  if last > 0 then begin
    t.times.(0) <- t.times.(last);
    t.seqs.(0) <- t.seqs.(last);
    t.payloads.(0) <- t.payloads.(last)
  end;
  (match t.dummy with
  | Some d -> t.payloads.(last) <- d
  | None -> ());
  if last > 1 then sift_down t 0

let next_time t = if t.len = 0 then -1 else t.times.(0)

let pop_payload t =
  if t.len = 0 then invalid_arg "Event_queue.pop_payload: empty";
  let payload = t.payloads.(0) in
  drop_min t;
  payload

let peek_time t = if t.len = 0 then None else Some t.times.(0)

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    let payload = t.payloads.(0) in
    drop_min t;
    Some (time, payload)
  end

let clear t =
  t.times <- [||];
  t.seqs <- [||];
  t.payloads <- [||];
  t.len <- 0
