(** Cooperative cancellation tokens.

    A token answers one question — "should this computation stop?" —
    through a caller-supplied probe.  The simulation loop ({!Sim.run})
    polls its token between events, which makes simulation-event
    granularity the cancellation latency: a trial is never torn mid
    event, so machine state stays consistent when a cancellation
    unwinds.

    The engine stays dependency-free: it never reads a clock itself.
    Deadline enforcement is built by the caller, e.g. a probe closing
    over [Unix.gettimeofday () +. timeout] (see [Runner]), typically
    rate-limited so the clock is not read on every event.

    Once a probe reports true the token {e latches}: every later
    {!cancelled} call returns true without consulting the probe again,
    so a flapping probe cannot un-cancel a run. *)

type t

exception Cancelled of string
(** Raised by cancellation-aware loops (e.g. {!Sim.run}) when their
    token fires; the payload is the token's {!reason}. *)

val never : t
(** The null token: {!cancelled} is always false.  Shared; do not
    {!cancel} it. *)

val of_probe : ?reason:string -> (unit -> bool) -> t
(** A token driven by [probe], polled by {!cancelled} until it first
    returns true.  [reason] (default ["cancelled"]) is carried by
    {!Cancelled}. *)

val cancel : t -> unit
(** Latch the token manually, regardless of its probe. *)

val cancelled : t -> bool
(** Whether the token has fired (probe returned true once, or
    {!cancel} was called). *)

val reason : t -> string

val check : t -> unit
(** Raise [Cancelled (reason t)] if the token has fired. *)
