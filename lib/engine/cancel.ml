type t = {
  probe : unit -> bool;
  reason : string;
  mutable fired : bool;
}

exception Cancelled of string

let never = { probe = (fun () -> false); reason = "cancelled"; fired = false }

let of_probe ?(reason = "cancelled") probe = { probe; reason; fired = false }

let cancel t = t.fired <- true

let cancelled t =
  t.fired
  ||
  if t.probe () then begin
    t.fired <- true;
    true
  end
  else false

let reason t = t.reason

let check t = if cancelled t then raise (Cancelled t.reason)
