(** Discrete-event simulation driver.

    Time is virtual, in integer nanoseconds.  Events are closures; the
    loop pops them in [(time, insertion order)] order, so a trial with a
    fixed seed replays identically. *)

type t

val create : unit -> t

val now : t -> int
(** Current virtual time in nanoseconds. *)

val schedule : t -> delay:int -> (t -> unit) -> unit
(** Run the closure [delay] ns from now.  Negative delays are clamped to
    zero. *)

val schedule_at : t -> time:int -> (t -> unit) -> unit
(** Run the closure at an absolute time, clamped to be no earlier than
    [now]. *)

val pending : t -> int
(** Number of scheduled events not yet executed. *)

val run : ?until:int -> ?cancel:Cancel.t -> t -> unit
(** Execute events until the queue drains or virtual time would exceed
    [until].  Safe to call again after it returns.

    [cancel] is polled between events (simulation-event granularity —
    the in-flight event always finishes); a fired token raises
    {!Cancel.Cancelled}, leaving undrained events in the queue. *)

val stop : t -> unit
(** Make the current [run] return after the in-flight event finishes. *)
