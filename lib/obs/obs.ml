module Prof = Prof
module Vmstat = Vmstat

type promote_reason =
  | Aging
  | Evict_scan
  | Spatial
  | Second_chance

type event =
  | Evict of { vpn : int; dirty : bool }
  | Promote of { pfn : int; reason : promote_reason }
  | Demote of { pfn : int }
  | Aging_pass of { pass : int; max_seq : int; min_seq : int }
  | Reclaim of { want : int; freed : int; scanned : int; latency_ns : int }
  | Swap_read of { slot : int; latency_ns : int; retries : int; failed : bool }
  | Swap_write of {
      slot : int;
      latency_ns : int;
      retries : int;
      failed : bool;
      remapped : bool;
    }
  | Oom_kill of { tid : int; discarded : int }
  | Throttle of { tid : int; cg : string; usage : int; high : int; stall_ns : int }
  | Cgroup_reclaim of {
      cg : string;
      want : int;
      freed : int;
      scanned : int;
      latency_ns : int;
    }
  | Cgroup_oom of { cg : string; tid : int; discarded : int }
  | Psi of {
      cg : string;
      some_ns : int;
      full_ns : int;
      window_ns : int;
      limit : int;
    }
  | Chaos of { injector : string; action : string; arg : int }
  | Workingset_refault of {
      vpn : int;
      distance : int;
      shadow : bool;
      activated : bool;
      restored : bool;
    }

let kind_name = function
  | Evict _ -> "evict"
  | Promote _ -> "promote"
  | Demote _ -> "demote"
  | Aging_pass _ -> "aging_pass"
  | Reclaim _ -> "reclaim"
  | Swap_read _ -> "swap_read"
  | Swap_write _ -> "swap_write"
  | Oom_kill _ -> "oom_kill"
  | Throttle _ -> "throttle"
  | Cgroup_reclaim _ -> "cgroup_reclaim"
  | Cgroup_oom _ -> "cgroup_oom"
  | Psi _ -> "psi"
  | Chaos _ -> "chaos"
  | Workingset_refault _ -> "workingset_refault"

let promote_reason_name = function
  | Aging -> "aging"
  | Evict_scan -> "evict_scan"
  | Spatial -> "spatial"
  | Second_chance -> "second_chance"

type config = {
  trace : bool;
  sample_every_ns : int;
}

let off = { trace = false; sample_every_ns = 0 }

let config_enabled c = c.trace || c.sample_every_ns > 0

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

(* Direct-reclaim latencies span sub-microsecond list pops to multi-
   second writeback stalls; one shared layout lets per-trial histograms
   merge into per-policy ones. *)
let reclaim_hist_lo = 100.0

let reclaim_hist_hi = 1e11

type sink = {
  config : config;
  mutable ev_times : int array;
  mutable ev : event array;
  mutable ev_len : int;
  mutable samples_rev : (int * (string * float) list) list;
  mutable samples_n : int;
  hist : Stats.Histogram.t;
}

type t = sink option

let disabled : t = None

let create config =
  if not (config_enabled config) then None
  else
    Some
      {
        config;
        ev_times = [||];
        ev = [||];
        ev_len = 0;
        samples_rev = [];
        samples_n = 0;
        hist =
          Stats.Histogram.create ~buckets_per_decade:10 ~lo:reclaim_hist_lo
            ~hi:reclaim_hist_hi ();
      }

let enabled = function None -> false | Some _ -> true

let tracing = function None -> false | Some s -> s.config.trace

let sample_every_ns = function None -> 0 | Some s -> s.config.sample_every_ns

let push s ~t_ns ev =
  let cap = Array.length s.ev in
  if s.ev_len >= cap then begin
    let cap' = max 256 (2 * cap) in
    let times' = Array.make cap' 0 in
    let ev' = Array.make cap' ev in
    Array.blit s.ev_times 0 times' 0 s.ev_len;
    Array.blit s.ev 0 ev' 0 s.ev_len;
    s.ev_times <- times';
    s.ev <- ev'
  end;
  s.ev_times.(s.ev_len) <- t_ns;
  s.ev.(s.ev_len) <- ev;
  s.ev_len <- s.ev_len + 1

let emit t ~t_ns ev =
  match t with
  | None -> ()
  | Some s ->
    (match ev with
    | Reclaim { latency_ns; _ } ->
      Stats.Histogram.add s.hist (float_of_int (max 1 latency_ns))
    | _ -> ());
    if s.config.trace then push s ~t_ns ev

let push_sample t ~t_ns metrics =
  match t with
  | None -> ()
  | Some s ->
    s.samples_rev <- (t_ns, metrics) :: s.samples_rev;
    s.samples_n <- s.samples_n + 1

type capture = {
  events : (int * event) array;
  samples : (int * (string * float) list) array;
  reclaim_hist : Stats.Histogram.t;
}

let capture = function
  | None -> None
  | Some s ->
    let events = Array.init s.ev_len (fun i -> (s.ev_times.(i), s.ev.(i))) in
    let samples = Array.make s.samples_n (0, []) in
    List.iteri
      (fun i sm -> samples.(s.samples_n - 1 - i) <- sm)
      s.samples_rev;
    Some { events; samples; reclaim_hist = s.hist }

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

type value = Int of int | Float of float | Bool of bool | Str of string

let event_fields = function
  | Evict { vpn; dirty } -> [ ("vpn", Int vpn); ("dirty", Bool dirty) ]
  | Promote { pfn; reason } ->
    [ ("pfn", Int pfn); ("reason", Str (promote_reason_name reason)) ]
  | Demote { pfn } -> [ ("pfn", Int pfn) ]
  | Aging_pass { pass; max_seq; min_seq } ->
    [ ("pass", Int pass); ("max_seq", Int max_seq); ("min_seq", Int min_seq) ]
  | Reclaim { want; freed; scanned; latency_ns } ->
    [
      ("want", Int want); ("freed", Int freed); ("scanned", Int scanned);
      ("latency_ns", Int latency_ns);
    ]
  | Swap_read { slot; latency_ns; retries; failed } ->
    [
      ("slot", Int slot); ("latency_ns", Int latency_ns);
      ("retries", Int retries); ("failed", Bool failed);
    ]
  | Swap_write { slot; latency_ns; retries; failed; remapped } ->
    [
      ("slot", Int slot); ("latency_ns", Int latency_ns);
      ("retries", Int retries); ("failed", Bool failed);
      ("remapped", Bool remapped);
    ]
  | Oom_kill { tid; discarded } ->
    [ ("tid", Int tid); ("discarded", Int discarded) ]
  | Throttle { tid; cg; usage; high; stall_ns } ->
    [
      ("tid", Int tid); ("cg", Str cg); ("usage", Int usage);
      ("high", Int high); ("stall_ns", Int stall_ns);
    ]
  | Cgroup_reclaim { cg; want; freed; scanned; latency_ns } ->
    [
      ("cg", Str cg); ("want", Int want); ("freed", Int freed);
      ("scanned", Int scanned); ("latency_ns", Int latency_ns);
    ]
  | Cgroup_oom { cg; tid; discarded } ->
    [ ("cg", Str cg); ("tid", Int tid); ("discarded", Int discarded) ]
  | Chaos { injector; action; arg } ->
    [ ("injector", Str injector); ("action", Str action); ("arg", Int arg) ]
  | Psi { cg; some_ns; full_ns; window_ns; limit } ->
    [
      ("cg", Str cg); ("some_ns", Int some_ns); ("full_ns", Int full_ns);
      ("window_ns", Int window_ns); ("limit", Int limit);
    ]
  | Workingset_refault { vpn; distance; shadow; activated; restored } ->
    [
      ("vpn", Int vpn); ("distance", Int distance); ("shadow", Bool shadow);
      ("activated", Bool activated); ("restored", Bool restored);
    ]

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f
  | Bool b -> if b then "true" else "false"
  | Str s -> "\"" ^ escape_string s ^ "\""

let json_string s = "\"" ^ escape_string s ^ "\""

let json_object fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string k);
      Buffer.add_string buf "\":";
      Buffer.add_string buf (value_to_json v))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let jsonl_line ~cell ~t_ns ev =
  json_object
    (cell
    @ (("t_ns", Int t_ns) :: ("kind", Str (kind_name ev)) :: event_fields ev))

(* Flat-object JSON parser: exactly the subset [jsonl_line] emits
   (strings, numbers, booleans, null), with standard escapes.  Kept
   dependency-free so `repro trace-summary` and the CI parse check need
   nothing beyond this library. *)

exception Parse_error of string

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub line !pos 4 in
            pos := !pos + 4;
            (* Strict hex digits only: [int_of_string "0x.."] would
               also accept underscores ("\u00_1"). *)
            let hex_digit c =
              match c with
              | '0' .. '9' -> Char.code c - Char.code '0'
              | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
              | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
              | _ -> fail "bad \\u escape"
            in
            let code =
              String.fold_left (fun acc c -> (acc * 16) + hex_digit c) 0 hex
            in
            (* Only BMP code points below 0x80 round-trip from our
               writer; encode the rest as UTF-8 for robustness. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> fail "unknown escape");
          loop ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub line !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char line.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    let s = String.sub line start (!pos - start) in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "malformed number")
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some 't' -> parse_literal "true" (Bool true)
    | Some 'f' -> parse_literal "false" (Bool false)
    | Some 'n' -> parse_literal "null" (Str "null")
    | Some _ -> parse_number ()
    | None -> fail "expected a value"
  in
  try
    skip_ws ();
    expect '{';
    skip_ws ();
    let fields = ref [] in
    (match peek () with
    | Some '}' -> advance ()
    | _ ->
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ());
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    Ok (List.rev !fields)
  with Parse_error msg -> Error msg

let field fields k = List.assoc_opt k fields

let field_int fields k =
  match field fields k with
  | Some (Int i) -> Some i
  | Some (Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let field_string fields k =
  match field fields k with Some (Str s) -> Some s | _ -> None
