(* Deterministic simulated-time CPU profiler.

   A profiler sink attributes every nanosecond charged through
   [Engine.Cpu.charge] (and the waits the machine models outside the
   CPU) to a fixed phase taxonomy mirroring the kernel functions the
   paper names.  Like the trace sink in [Obs], a sink only observes:
   it never draws random numbers, schedules events, or charges CPU, so
   a profiled run's simulation results are identical to an unprofiled
   one, and [disabled] is free. *)

type phase =
  | App_compute
  | Fault_handling
  | Rmap_walk
  | Pte_scan
  | Aging_walk
  | Evict_scan
  | Writeback_wait
  | Swap_wait
  | Barrier_wait
  | Oom_kill
  | Hook_fault
  | Hook_access
  | Hook_tick
  | Hook_evict

let all_phases =
  [| App_compute; Fault_handling; Rmap_walk; Pte_scan; Aging_walk;
     Evict_scan; Writeback_wait; Swap_wait; Barrier_wait; Oom_kill;
     Hook_fault; Hook_access; Hook_tick; Hook_evict |]

let n_phases = Array.length all_phases

let phase_index = function
  | App_compute -> 0
  | Fault_handling -> 1
  | Rmap_walk -> 2
  | Pte_scan -> 3
  | Aging_walk -> 4
  | Evict_scan -> 5
  | Writeback_wait -> 6
  | Swap_wait -> 7
  | Barrier_wait -> 8
  | Oom_kill -> 9
  | Hook_fault -> 10
  | Hook_access -> 11
  | Hook_tick -> 12
  | Hook_evict -> 13

let phase_of_index i =
  if i < 0 || i >= n_phases then
    invalid_arg (Printf.sprintf "Prof.phase_of_index: %d" i);
  all_phases.(i)

let phase_name = function
  | App_compute -> "app_compute"
  | Fault_handling -> "fault_handling"
  | Rmap_walk -> "rmap_walk"
  | Pte_scan -> "pte_scan"
  | Aging_walk -> "aging_walk"
  | Evict_scan -> "evict_scan"
  | Writeback_wait -> "writeback_wait"
  | Swap_wait -> "swap_wait"
  | Barrier_wait -> "barrier_wait"
  | Oom_kill -> "oom_kill"
  | Hook_fault -> "hook_on_fault"
  | Hook_access -> "hook_on_access_sample"
  | Hook_tick -> "hook_on_scan_tick"
  | Hook_evict -> "hook_evict_request"

let wait_phase = function
  | Writeback_wait | Swap_wait | Barrier_wait -> true
  | _ -> false

(* The guest-hook phases exist only for runs that host a guest policy
   behind the Policy_hooks V1 API; builtin-only runs never charge them,
   and the report tables hide their rows when empty so pre-SDK output
   is byte-identical. *)
let guest_phase = function
  | Hook_fault | Hook_access | Hook_tick | Hook_evict -> true
  | _ -> false

(* Paths: an int encodes a root-first stack of phases, 4 bits per
   frame ([phase_index + 1]; 0 terminates).  Fourteen phases fit in 4
   bits and realistic stacks are <= 4 deep, far below the 15-frame
   capacity of a 63-bit int. *)

let path_code phases =
  List.fold_left (fun acc p -> (acc * 16) + phase_index p + 1) 0 phases

let path_phases code =
  if code < 0 then invalid_arg "Prof.path_phases: negative code";
  let rec go code acc =
    if code = 0 then acc
    else begin
      let f = code mod 16 in
      if f = 0 then invalid_arg "Prof.path_phases: embedded zero frame";
      go (code / 16) (phase_of_index (f - 1) :: acc)
    end
  in
  go code []

type config = { enabled : bool; spans : bool }

let off = { enabled = false; spans = false }

let config_enabled c = c.enabled

type thread_class = App | Kthread

type tinfo = {
  t_name : string;
  t_class : int;
  t_default : int; (* phase index *)
  mutable t_stack : (int * int) list; (* (phase index, begin ns), innermost first *)
  mutable t_path : int;
}

type sink = {
  cfg : config;
  mutable classes : string array;
  mutable threads : tinfo option array; (* indexed by tid *)
  mutable cur : int;
  mutable pending : int;
  totals : (int * int, int ref) Hashtbl.t; (* (class, path) -> ns *)
  mutable spans : (int * int * int * int) list; (* (tid, phase, t0, t1), reversed *)
}

type t = sink option

let disabled = None

let create cfg =
  if not cfg.enabled then None
  else
    Some
      {
        cfg;
        classes = [| "app" |];
        threads = Array.make 8 None;
        cur = 0;
        pending = 0;
        totals = Hashtbl.create 64;
        spans = [];
      }

let enabled = function None -> false | Some _ -> true

let spans_on = function None -> false | Some s -> s.cfg.spans

let class_index s name =
  let n = Array.length s.classes in
  let rec find i =
    if i >= n then begin
      s.classes <- Array.append s.classes [| name |];
      n
    end
    else if String.equal s.classes.(i) name then i
    else find (i + 1)
  in
  find 0

let thread s tid =
  if tid >= 0 && tid < Array.length s.threads then s.threads.(tid) else None

let register_thread t ~tid ~name ~klass ~default =
  match t with
  | None -> ()
  | Some s ->
      if tid < 0 then invalid_arg "Prof.register_thread: negative tid";
      if tid >= Array.length s.threads then begin
        let bigger = Array.make (max (tid + 1) (2 * Array.length s.threads)) None in
        Array.blit s.threads 0 bigger 0 (Array.length s.threads);
        s.threads <- bigger
      end;
      let cls = match klass with App -> 0 | Kthread -> class_index s name in
      let d = phase_index default in
      s.threads.(tid) <-
        Some { t_name = name; t_class = cls; t_default = d;
               t_stack = []; t_path = d + 1 }

let enter_thread t ~tid =
  match t with
  | None -> ()
  | Some s ->
      s.cur <- tid;
      (* Any attribution the previous thread accrued but never pushed
         through an untagged [Cpu.charge] (e.g. a kthread step that
         went back to sleep) must not leak into this thread's charges. *)
      s.pending <- 0;
      (match thread s tid with
      | None -> ()
      | Some ti ->
          ti.t_stack <- [];
          ti.t_path <- ti.t_default + 1)

let add s cls path ns =
  match Hashtbl.find_opt s.totals (cls, path) with
  | Some r -> r := !r + ns
  | None -> Hashtbl.add s.totals (cls, path) (ref ns)

let cur_phase ti =
  match ti.t_stack with (p, _) :: _ -> p | [] -> ti.t_default

(* Where a charge tagged with phase index [i] lands: the current path
   when [i] is already the innermost phase, otherwise one frame
   deeper. *)
let tag_path ti i =
  if i = cur_phase ti then ti.t_path else (ti.t_path * 16) + i + 1

let begin_phase t ~now phase =
  match t with
  | None -> ()
  | Some s -> (
      match thread s s.cur with
      | None -> ()
      | Some ti ->
          let i = phase_index phase in
          ti.t_stack <- (i, now) :: ti.t_stack;
          ti.t_path <- (ti.t_path * 16) + i + 1)

let end_phase t ~now =
  match t with
  | None -> ()
  | Some s -> (
      match thread s s.cur with
      | None -> ()
      | Some ti -> (
          match ti.t_stack with
          | [] -> ()
          | (i, t0) :: rest ->
              ti.t_stack <- rest;
              ti.t_path <- ti.t_path / 16;
              if s.cfg.spans then
                s.spans <- (s.cur, i, t0, max t0 now) :: s.spans))

let with_phase t ~now phase f =
  match t with
  | None -> f ()
  | Some _ ->
      begin_phase t ~now:(now ()) phase;
      Fun.protect ~finally:(fun () -> end_phase t ~now:(now ())) f

let charge t ?phase ns =
  match t with
  | None -> ()
  | Some s ->
      if ns > 0 then
        match thread s s.cur with
        | None -> ()
        | Some ti -> (
            match phase with
            | None -> add s ti.t_class ti.t_path ns
            | Some p ->
                add s ti.t_class (tag_path ti (phase_index p)) ns;
                (* The caller accrues this same work into a counter the
                   machine later pushes through an untagged
                   [Cpu.charge]; remember how much is already
                   attributed so the aggregate only contributes its
                   unattributed remainder. *)
                s.pending <- s.pending + ns)

(* Allocation-free [charge ~phase]: scan loops call this per scanned
   page, and the optional argument would box a [Some phase] at the call
   site even when profiling is off. *)
let charge_phase t phase ns =
  match t with
  | None -> ()
  | Some s ->
      if ns > 0 then
        match thread s s.cur with
        | None -> ()
        | Some ti ->
            add s ti.t_class (tag_path ti (phase_index phase)) ns;
            s.pending <- s.pending + ns

(* Scoping for nested flush points: a direct-reclaim episode runs in
   the middle of a fault handler, and its aggregate untagged charge
   must consume only the attribution accrued inside the episode — not
   the fault costs accrued earlier in the segment, which flush at
   segment end. *)
let suspend_pending t =
  match t with
  | None -> 0
  | Some s ->
      let saved = s.pending in
      s.pending <- 0;
      saved

let resume_pending t saved =
  match t with None -> () | Some s -> s.pending <- s.pending + saved

let on_cpu_charge t phase_idx ns =
  match t with
  | None -> ()
  | Some s ->
      if ns > 0 then
        match thread s s.cur with
        | None -> ()
        | Some ti ->
            if phase_idx >= 0 then add s ti.t_class (tag_path ti phase_idx) ns
            else begin
              let covered = min s.pending ns in
              s.pending <- s.pending - covered;
              let rest = ns - covered in
              if rest > 0 then add s ti.t_class ti.t_path rest
            end

let wait t ~tid ~now phase ns =
  match t with
  | None -> ()
  | Some s ->
      if ns > 0 then
        match thread s tid with
        | None -> ()
        | Some ti ->
            let i = phase_index phase in
            add s ti.t_class (i + 1) ns;
            if s.cfg.spans then s.spans <- (tid, i, now - ns, now) :: s.spans

let span t ~tid phase ~t0 ~t1 =
  match t with
  | None -> ()
  | Some s ->
      if s.cfg.spans && t1 >= t0 then
        s.spans <- (tid, phase_index phase, t0, t1) :: s.spans

let mark t ~tid ~now phase = span t ~tid phase ~t0:now ~t1:now

type capture = {
  classes : string array;
  threads : (int * string * int) array; (* (tid, name, class) sorted by tid *)
  totals : (int * int * int) array; (* (class, path, ns) sorted *)
  spans : (int * int * int * int) array; (* (tid, phase, t0, t1) in record order *)
}

let capture (t : t) =
  match t with
  | None -> None
  | Some s ->
      let tarr = s.threads in
      let threads = ref [] in
      for tid = Array.length tarr - 1 downto 0 do
        match tarr.(tid) with
        | None -> ()
        | Some ti -> threads := (tid, ti.t_name, ti.t_class) :: !threads
      done;
      let totals =
        Hashtbl.fold (fun (c, p) r acc -> (c, p, !r) :: acc) s.totals []
        |> List.sort compare |> Array.of_list
      in
      Some
        {
          classes = Array.copy s.classes;
          threads = Array.of_list !threads;
          totals;
          spans = Array.of_list (List.rev s.spans);
        }

(* Journal encoding: three '|'-separated sections — comma-separated
   class names, then semicolon-separated [tid:name:class] threads,
   then semicolon-separated [class:path-hex:ns] totals.  Spans are
   deliberately dropped: they exist only for --perfetto, which
   disables warm-starting instead.  Names ("app3", "kswapd",
   "lru_gen_aging") contain none of the delimiters. *)

let encode_capture c =
  let b = Buffer.create 256 in
  Array.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b name)
    c.classes;
  Buffer.add_char b '|';
  Array.iteri
    (fun i (tid, name, cls) ->
      if i > 0 then Buffer.add_char b ';';
      Printf.bprintf b "%d:%s:%d" tid name cls)
    c.threads;
  Buffer.add_char b '|';
  Array.iteri
    (fun i (cls, path, ns) ->
      if i > 0 then Buffer.add_char b ';';
      Printf.bprintf b "%d:%x:%d" cls path ns)
    c.totals;
  Buffer.contents b

let decode_failure what = failwith ("Prof.decode_capture: malformed " ^ what)

let strict_int what str =
  (* [int_of_string] alone would accept "0x10" or "1_0". *)
  if str = "" then decode_failure what;
  String.iter (fun ch -> if ch < '0' || ch > '9' then decode_failure what) str;
  match int_of_string_opt str with
  | Some n -> n
  | None -> decode_failure what

let strict_hex what str =
  if str = "" then decode_failure what;
  String.iter
    (fun ch ->
      match ch with
      | '0' .. '9' | 'a' .. 'f' -> ()
      | _ -> decode_failure what)
    str;
  match int_of_string_opt ("0x" ^ str) with
  | Some n -> n
  | None -> decode_failure what

let decode_capture str =
  match String.split_on_char '|' str with
  | [ classes_s; threads_s; totals_s ] ->
      let classes =
        if classes_s = "" then [||]
        else Array.of_list (String.split_on_char ',' classes_s)
      in
      let split_items s =
        if s = "" then [] else String.split_on_char ';' s
      in
      let class_index what i =
        if i >= Array.length classes then decode_failure what else i
      in
      let threads =
        split_items threads_s
        |> List.map (fun item ->
               match String.split_on_char ':' item with
               | [ tid; name; cls ] ->
                   ( strict_int "thread tid" tid,
                     name,
                     class_index "thread class" (strict_int "thread class" cls) )
               | _ -> decode_failure "thread")
        |> Array.of_list
      in
      let totals =
        split_items totals_s
        |> List.map (fun item ->
               match String.split_on_char ':' item with
               | [ cls; path; ns ] ->
                   let path = strict_hex "total path" path in
                   (try ignore (path_phases path)
                    with Invalid_argument _ -> decode_failure "total path");
                   ( class_index "total class" (strict_int "total class" cls),
                     path,
                     strict_int "total ns" ns )
               | _ -> decode_failure "total")
        |> Array.of_list
      in
      { classes; threads; totals; spans = [||] }
  | _ -> decode_failure "capture"

type merged = {
  m_classes : string array;
  m_totals : (int * int * int) array;
}

let merge caps =
  let idx = Hashtbl.create 8 in
  let names = ref [] in
  let totals = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let remap =
        Array.map
          (fun name ->
            match Hashtbl.find_opt idx name with
            | Some i -> i
            | None ->
                let i = Hashtbl.length idx in
                Hashtbl.add idx name i;
                names := name :: !names;
                i)
          c.classes
      in
      Array.iter
        (fun (cls, path, ns) ->
          if cls < 0 || cls >= Array.length remap then
            failwith "Prof.merge: class index out of range";
          let key = (remap.(cls), path) in
          match Hashtbl.find_opt totals key with
          | Some r -> r := !r + ns
          | None -> Hashtbl.add totals key (ref ns))
        c.totals)
    caps;
  let m_totals =
    Hashtbl.fold (fun (c, p) r acc -> (c, p, !r) :: acc) totals []
    |> List.sort compare |> Array.of_list
  in
  { m_classes = Array.of_list (List.rev !names); m_totals }
