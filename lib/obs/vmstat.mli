(** Deterministic [/proc/vmstat]-style counter registry.

    One {!t} per simulated machine, with a fixed set of integer counters
    mirroring the kernel names the paper reads: fault and reclaim
    activity ([pgfault], [pgmajfault], [pgscan_kswapd]/[pgscan_direct],
    [pgsteal], [pgactivate]/[pgdeactivate]), swap traffic
    ([pswpin]/[pswpout]), OOM kills, the Linux workingset counters fed
    by shadow entries ([workingset_refault]/[activate]/[restore] plus a
    shadow-miss counter for refaults whose shadow was torn down), and
    MG-LRU generation/tier counters.  A log2-bucketed refault-distance
    histogram rides along.

    {b Determinism and cost.}  Incrementing a counter is one array
    store — no allocation, no branching on configuration — so the
    machine and the policies count unconditionally; whether the totals
    ever leave the machine is decided by the run configuration
    ({!Machine.config}'s [vmstat] flag), which is how vmstat-off runs
    stay byte-identical to builds without this module.  Counting never
    feeds back into any policy decision. *)

type t
(** A live counter registry.  Not thread-safe: one per trial, written
    only by the domain running that trial. *)

val create : unit -> t

(** {1 Counter indices}

    Stable indices into the registry; {!encode_capture} serializes in
    index order, so new counters must only append. *)

val pgfault : int
val pgmajfault : int
val pgscan_kswapd : int
val pgscan_direct : int
val pgsteal : int
val pgactivate : int
val pgdeactivate : int
val pswpin : int
val pswpout : int
val oom_kill : int
val workingset_refault : int
val workingset_activate : int
val workingset_restore : int
val workingset_shadow_miss : int
val mglru_aging_passes : int
val mglru_promoted : int
val mglru_tier_protected : int

val nr_counters : int

val names : string array
(** Kernel-style snake_case names, in index order. *)

val name : int -> string
(** @raise Invalid_argument when out of range. *)

val incr : t -> int -> unit

val add : t -> int -> int -> unit
(** Add [n] to a counter; non-positive [n] is a no-op (scan deltas). *)

val get : t -> int -> int

val dist_buckets : int
(** Number of refault-distance histogram buckets: bucket [i] holds
    distances in [[2^i, 2^(i+1))], bucket 0 holds 0 and 1, the last
    bucket is open-ended. *)

val dist_bucket : int -> int
(** Bucket index for one distance (exposed for the tests). *)

val note_refault_distance : t -> int -> unit

(** {1 Captures} *)

type capture = {
  counters : int array;      (** [nr_counters] totals, index order *)
  refault_dist : int array;  (** [dist_buckets] histogram counts *)
}

val capture : t -> capture
(** A snapshot copy of the registry. *)

val empty_capture : capture

val merge : capture list -> capture
(** Element-wise sum — per-cell totals across trials.  Deterministic for
    any grouping order (addition only). *)

val refaults : capture -> int
(** Total refault-distance samples (= sum of the histogram). *)

val encode_capture : capture -> string
(** Compact single-line form for the result journal. *)

val decode_capture : string -> capture
(** Inverse of {!encode_capture}.  Decoding a capture encoded by an
    older build with fewer counters zero-fills the tail.
    @raise Failure on malformed input. *)
