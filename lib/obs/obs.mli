(** Observability: typed trace events, periodic machine-state samples,
    and reclaim-latency histograms.

    The paper's characterization rests on time-varying behaviour —
    refault rates, generation/list occupancy, swap pressure over a run —
    which end-of-run aggregates cannot show.  This module is the
    policy-introspection layer: the machine, the policies and the swap
    manager all hold an {!t} sink and report what they do as {e typed}
    events stamped with simulated time.

    {b Determinism.}  A sink only observes; it never draws randomness or
    schedules simulator events, so an enabled sink cannot perturb a run,
    and {!disabled} makes every hook a no-op — runs without telemetry
    are bit-identical to a build without this layer.  Each trial owns a
    private sink (sinks are single-domain, like the trials themselves);
    the runner merges captures after the domains join, in trial order,
    so traces are byte-identical for every [--jobs] value.

    {b Schemas.}  Events serialize to JSON Lines ({!jsonl_line}, one
    flat object per event; {!parse_line} reads them back) and samples to
    long-format CSV rows (one [metric,value] pair per row), the shapes
    DESIGN.md documents for plotting the paper-style time series. *)

module Prof = Prof
(** Deterministic simulated-time CPU profiler (phase attribution, span
    timelines); threaded through the machine alongside the trace sink. *)

module Vmstat = Vmstat
(** Deterministic [/proc/vmstat]-style counter registry (fault, scan,
    steal, swap, workingset and MG-LRU counters plus a refault-distance
    histogram); threaded through the machine and both builtin policies
    alongside the trace sink. *)

(** Why a page moved toward the young end of its policy's structure. *)
type promote_reason =
  | Aging        (** MG-LRU aging walk found the accessed bit set *)
  | Evict_scan   (** eviction-side second chance *)
  | Spatial      (** MG-LRU spatial neighbourhood scan *)
  | Second_chance (** Clock inactive-tail rescue to the active list *)

(** One reclaim-path occurrence, stamped with simulated time by the
    emitter.  Counters inside events are per-event deltas, never
    cumulative. *)
type event =
  | Evict of { vpn : int; dirty : bool }
      (** the machine unmapped and freed a page (writeback if dirty) *)
  | Promote of { pfn : int; reason : promote_reason }
  | Demote of { pfn : int }
      (** Clock moved an unreferenced active page to the inactive list *)
  | Aging_pass of { pass : int; max_seq : int; min_seq : int }
      (** an MG-LRU aging walk completed and opened generation [max_seq] *)
  | Reclaim of { want : int; freed : int; scanned : int; latency_ns : int }
      (** one synchronous direct-reclaim episode on a faulting thread;
          [latency_ns] includes writeback stalls *)
  | Swap_read of { slot : int; latency_ns : int; retries : int; failed : bool }
  | Swap_write of {
      slot : int;  (** final slot, or -1 when the write was abandoned *)
      latency_ns : int;
      retries : int;
      failed : bool;
      remapped : bool;  (** moved off a bad block at least once *)
    }
  | Oom_kill of { tid : int; discarded : int }
  | Throttle of { tid : int; cg : string; usage : int; high : int; stall_ns : int }
      (** a [memory.high] breach stalled the faulting thread for
          [stall_ns] of simulated time *)
  | Cgroup_reclaim of {
      cg : string;
      want : int;
      freed : int;
      scanned : int;
      latency_ns : int;
    }
      (** one cgroup-targeted reclaim episode ([memory.high]/[max]
          enforcement or the proactive probe) *)
  | Cgroup_oom of { cg : string; tid : int; discarded : int }
      (** a scoped OOM kill confined to cgroup [cg]; the machine-wide
          [Oom_kill] event is emitted alongside *)
  | Psi of {
      cg : string;
      some_ns : int;   (** stall time accrued this window, some *)
      full_ns : int;   (** stall time accrued this window, full *)
      window_ns : int;
      limit : int;     (** proactive effective limit; -1 when untouched *)
    }
  | Chaos of { injector : string; action : string; arg : int }
      (** a chaos injection was applied: [injector] is the segment class
          ([hotplug], [degrade], [churn], [burst], [corrupt]), [action]
          a short human label, [arg] the action's magnitude (frames
          offlined, new limit, stalled threads, ...) *)
  | Workingset_refault of {
      vpn : int;
      distance : int;   (** evictions between this page's eviction and
                            its refault; -1 when no shadow survived *)
      shadow : bool;    (** a shadow entry was found (hit) or had been
                            torn down (miss — e.g. after an OOM kill) *)
      activated : bool; (** distance within capacity: the kernel would
                            refault this page straight to active *)
      restored : bool;  (** the page's accessed bit was still set when
                            it was evicted *)
    }
      (** a swapped-out page faulted back in and its shadow entry (if
          any) was consumed *)

val kind_name : event -> string
(** Stable lowercase kind tag used in the JSONL [kind] field. *)

val promote_reason_name : promote_reason -> string

(** {1 Sink configuration} *)

type config = {
  trace : bool;           (** record events *)
  sample_every_ns : int;  (** machine-state sample cadence; 0 = off *)
}

val off : config

val config_enabled : config -> bool

(** {1 Sinks} *)

type t
(** An event/sample sink.  Not thread-safe: one sink per trial, written
    only by the domain running that trial. *)

val disabled : t
(** The no-op sink: every hook returns immediately, {!capture} is
    [None]. *)

val create : config -> t
(** A fresh sink per {!config}; [create off] is {!disabled}. *)

val enabled : t -> bool

val tracing : t -> bool

val sample_every_ns : t -> int

val emit : t -> t_ns:int -> event -> unit
(** Record one event at simulated time [t_ns].  [Reclaim] events also
    feed the reclaim-latency histogram.  No-op when not tracing. *)

val push_sample : t -> t_ns:int -> (string * float) list -> unit
(** Record one machine-state sample (metric name, value). *)

(** {1 Captures} *)

val reclaim_hist_lo : float
val reclaim_hist_hi : float
(** Bounds of the reclaim-latency histograms (ns), shared by every sink
    so per-policy captures merge with {!Stats.Histogram.merge}. *)

type capture = {
  events : (int * event) array;           (** (t_ns, event), emit order *)
  samples : (int * (string * float) list) array;
  reclaim_hist : Stats.Histogram.t;
      (** direct-reclaim episode latencies, log-binned *)
}

val capture : t -> capture option
(** Everything the sink recorded; [None] for {!disabled}. *)

(** {1 JSONL serialization} *)

type value = Int of int | Float of float | Bool of bool | Str of string

val event_fields : event -> (string * value) list
(** The event's payload, without the [kind] tag. *)

val json_string : string -> string
(** [s] as a quoted, escaped JSON string literal — the exact escaping
    {!json_object} applies to [Str] values and keys. *)

val json_object : (string * value) list -> string
(** One flat JSON object (no trailing newline) with the fields in list
    order; the exact subset {!parse_line} reads back.  Shared by the
    trace writer and the result journal. *)

val jsonl_line : cell:(string * value) list -> t_ns:int -> event -> string
(** One flat JSON object (no trailing newline): the [cell] fields
    (workload/policy/ratio/swap/trial), then [t_ns], [kind] and the
    event payload. *)

val parse_line : string -> ((string * value) list, string) result
(** Parse one flat JSON object as written by {!jsonl_line} (strings,
    numbers, booleans, null).  [Error] describes the first offence. *)

val field : (string * value) list -> string -> value option

val field_int : (string * value) list -> string -> int option
(** [Int] or integral [Float]. *)

val field_string : (string * value) list -> string -> string option
