(* Deterministic /proc/vmstat-style counter registry.

   One flat int array per machine: incrementing a counter is one array
   store, so the hot fault/reclaim paths stay allocation-free whether or
   not anyone reads the counters afterwards.  Captures are taken (and
   serialized) only when the run asks for them, which is how vmstat-off
   runs stay byte-identical to builds without this module. *)

(* Counter indices.  Order is the wire format ([encode_capture] joins
   the array in index order), so new counters append only. *)
let pgfault = 0
let pgmajfault = 1
let pgscan_kswapd = 2
let pgscan_direct = 3
let pgsteal = 4
let pgactivate = 5
let pgdeactivate = 6
let pswpin = 7
let pswpout = 8
let oom_kill = 9
let workingset_refault = 10
let workingset_activate = 11
let workingset_restore = 12
let workingset_shadow_miss = 13
let mglru_aging_passes = 14
let mglru_promoted = 15
let mglru_tier_protected = 16
let nr_counters = 17

let names =
  [|
    "pgfault"; "pgmajfault"; "pgscan_kswapd"; "pgscan_direct"; "pgsteal";
    "pgactivate"; "pgdeactivate"; "pswpin"; "pswpout"; "oom_kill";
    "workingset_refault"; "workingset_activate"; "workingset_restore";
    "workingset_shadow_miss"; "mglru_aging_passes"; "mglru_promoted";
    "mglru_tier_protected";
  |]

let name i =
  if i < 0 || i >= nr_counters then invalid_arg "Vmstat.name";
  names.(i)

(* Refault-distance histogram: log2 buckets, bucket i holds distances in
   [2^i, 2^(i+1)), bucket 0 holds {0, 1}, the last bucket is open. *)
let dist_buckets = 24

type t = {
  c : int array;
  dist : int array;
}

let create () = { c = Array.make nr_counters 0; dist = Array.make dist_buckets 0 }

let incr t i = t.c.(i) <- t.c.(i) + 1

let add t i n = if n > 0 then t.c.(i) <- t.c.(i) + n

let get t i = t.c.(i)

let dist_bucket d =
  if d <= 1 then 0
  else begin
    let b = ref 0 in
    let d = ref d in
    while !d > 1 do
      d := !d lsr 1;
      b := !b + 1
    done;
    min !b (dist_buckets - 1)
  end

let note_refault_distance t d =
  let b = dist_bucket (max 0 d) in
  t.dist.(b) <- t.dist.(b) + 1

type capture = {
  counters : int array;
  refault_dist : int array;
}

let capture t = { counters = Array.copy t.c; refault_dist = Array.copy t.dist }

let empty_capture =
  { counters = Array.make nr_counters 0; refault_dist = Array.make dist_buckets 0 }

let merge caps =
  let counters = Array.make nr_counters 0 in
  let refault_dist = Array.make dist_buckets 0 in
  List.iter
    (fun cap ->
      Array.iteri (fun i v -> counters.(i) <- counters.(i) + v) cap.counters;
      Array.iteri
        (fun i v -> refault_dist.(i) <- refault_dist.(i) + v)
        cap.refault_dist)
    caps;
  { counters; refault_dist }

let refaults cap = Array.fold_left ( + ) 0 cap.refault_dist

(* Compact single-line codec for the journal: "v1:" then the counters
   ';'-joined in index order, '|', then the distance buckets. *)

let ints_to_string a =
  String.concat ";" (Array.to_list (Array.map string_of_int a))

let ints_of_string ~what ~len s =
  let parts = String.split_on_char ';' s in
  let a = Array.make len 0 in
  (* Tolerate shorter arrays from older records (counters append only);
     longer ones are a format error. *)
  List.iteri
    (fun i p ->
      if i >= len then failwith (Printf.sprintf "Vmstat: too many %s" what);
      match int_of_string_opt p with
      | Some v -> a.(i) <- v
      | None -> failwith (Printf.sprintf "Vmstat: bad %s %S" what p))
    parts;
  a

let encode_capture cap =
  "v1:" ^ ints_to_string cap.counters ^ "|" ^ ints_to_string cap.refault_dist

let decode_capture s =
  let body =
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "v1" ->
      String.sub s (i + 1) (String.length s - i - 1)
    | _ -> failwith "Vmstat: unknown capture version"
  in
  match String.index_opt body '|' with
  | None -> failwith "Vmstat: missing distance section"
  | Some i ->
    let counters =
      ints_of_string ~what:"counter" ~len:nr_counters (String.sub body 0 i)
    in
    let refault_dist =
      ints_of_string ~what:"bucket" ~len:dist_buckets
        (String.sub body (i + 1) (String.length body - i - 1))
    in
    { counters; refault_dist }
