(** Deterministic simulated-time CPU profiler.

    Attributes every nanosecond charged through [Engine.Cpu.charge]
    (plus the waits the machine models outside the CPU) to a fixed
    phase taxonomy mirroring the kernel functions the paper names.
    Like the trace sink in {!Obs}, a profiler sink only observes: it
    never draws random numbers, schedules events, or charges CPU, so a
    profiled run's simulation results are bit-identical to an
    unprofiled one, and {!disabled} is free.

    Attribution has three sources which together must count each
    nanosecond exactly once:

    - {!charge}: a policy or the machine attributes work at the point
      of accrual, tagging it with a phase.  Because the same work is
      also accumulated into a counter that the machine later pushes
      through an untagged [Cpu.charge], the sink remembers the
      attributed amount as {e pending}.
    - untagged [Cpu.charge]: reaches the sink via the hook installed
      with [Engine.Cpu.set_hook].  Pending attribution is subtracted
      first; only the unattributed remainder lands in the enclosing
      phase span (or the thread's default phase).
    - tagged [Cpu.charge ?phase]: work charged nowhere else; the full
      amount is attributed to the given phase and pending is left
      alone.

    Waits ({!wait}) are simulated stalls, never CPU, so they bypass the
    pending machinery entirely. *)

type phase =
  | App_compute
  | Fault_handling
  | Rmap_walk
  | Pte_scan
  | Aging_walk
  | Evict_scan
  | Writeback_wait
  | Swap_wait
  | Barrier_wait
  | Oom_kill
  | Hook_fault   (** guest [on_fault] dispatch (Policy_hooks V1) *)
  | Hook_access  (** guest [on_access_sample] dispatch *)
  | Hook_tick    (** guest [on_scan_tick] dispatch *)
  | Hook_evict   (** guest [evict_request] dispatch + host validation *)

val all_phases : phase array
(** Taxonomy order; also the rendering order of report tables. *)

val n_phases : int

val phase_index : phase -> int
(** Position in {!all_phases}; also the tag passed through the
    [Engine.Cpu] hook. *)

val phase_of_index : int -> phase
(** @raise Invalid_argument outside [0 .. n_phases - 1]. *)

val phase_name : phase -> string
(** Stable snake_case name used in every output format. *)

val wait_phase : phase -> bool
(** True for phases that measure stall time rather than compute
    ([Writeback_wait], [Swap_wait], [Barrier_wait]). *)

val guest_phase : phase -> bool
(** True for the guest-hook phases ([Hook_*]).  Builtin-only runs never
    charge them; report tables render their rows only when nonzero, so
    pre-SDK output is unchanged. *)

val path_code : phase list -> int
(** Encode a root-first phase stack as an int, 4 bits per frame. *)

val path_phases : int -> phase list
(** Inverse of {!path_code}.
    @raise Invalid_argument on a malformed code. *)

(** {1 Configuration} *)

type config = { enabled : bool; spans : bool }
(** [spans] additionally records the per-thread span timeline (needed
    only for [--perfetto]); phase totals are always collected when
    [enabled]. *)

val off : config

val config_enabled : config -> bool

(** {1 Sinks} *)

type t

val disabled : t
(** Every operation on [disabled] is a no-op. *)

val create : config -> t
(** [create cfg] is {!disabled} when [cfg.enabled] is false. *)

val enabled : t -> bool

val spans_on : t -> bool

(** {1 Thread registry}

    Threads are registered once before the simulation starts.  App
    threads all share aggregation class ["app"]; each distinct kthread
    name ("kswapd", "lru_gen_aging", ...) gets its own class, so the
    per-policy tables separate application time from reclaim-machinery
    time the way the paper's §V does. *)

type thread_class = App | Kthread

val register_thread :
  t -> tid:int -> name:string -> klass:thread_class -> default:phase -> unit
(** [default] is the phase that absorbs this thread's unattributed
    charges when no phase span is open. *)

val enter_thread : t -> tid:int -> unit
(** Make [tid] the attribution target for subsequent charges.  Called
    at the top of every scheduler callback; resets the thread's span
    stack and clears pending attribution so a thread that accrued
    attribution but never flushed it (e.g. a kthread step that went
    back to sleep) cannot leak into its successor. *)

(** {1 Phase spans} *)

val begin_phase : t -> now:int -> phase -> unit
(** Push [phase] onto the current thread's stack; until the matching
    {!end_phase}, untagged charges land here and tagged charges nest
    under it.  [now] is simulated time, used only for the recorded
    span. *)

val end_phase : t -> now:int -> unit
(** Pop the innermost phase (no-op on an empty stack) and, when spans
    are on, record it as [[begin, max begin now]]. *)

val with_phase : t -> now:(unit -> int) -> phase -> (unit -> 'a) -> 'a
(** [with_phase t ~now phase f] brackets [f] with
    {!begin_phase}/{!end_phase}, reading [now] at entry and exit. *)

(** {1 Attribution} *)

val charge : t -> ?phase:phase -> int -> unit
(** Attribute [ns] to the current thread.  With [?phase], the work is
    credited to that phase {e and} remembered as pending (see the
    module preamble); without, it lands in the enclosing span. *)

val charge_phase : t -> phase -> int -> unit
(** Exactly [charge t ~phase ns] but with a non-optional phase, so hot
    scan loops do not box a [Some phase] per scanned page. *)

val suspend_pending : t -> int
(** Save and zero the pending-attribution counter.  Brackets a nested
    flush point (a direct-reclaim episode inside a fault handler) so
    its aggregate untagged charge consumes only attribution accrued
    inside the bracket; pair with {!resume_pending}. *)

val resume_pending : t -> int -> unit
(** Add a saved pending amount back (inverse of {!suspend_pending}). *)

val on_cpu_charge : t -> int -> int -> unit
(** [on_cpu_charge t phase_idx ns] is the [Engine.Cpu.set_hook]
    target: [phase_idx] is a {!phase_index} or [Engine.Cpu.no_phase]
    for untagged charges, whose pending-covered portion is dropped. *)

val wait : t -> tid:int -> now:int -> phase -> int -> unit
(** Attribute [ns] of stall ending at [now] to [phase] on thread
    [tid] (flat — waits do not nest), recording a span when spans are
    on.  Unlike charges, waits may target a thread other than the
    current one (barrier releases attribute to the waiter). *)

val span : t -> tid:int -> phase -> t0:int -> t1:int -> unit
(** Record a span without touching totals (timeline-only context such
    as a kthread's work window).  No-op unless spans are on. *)

val mark : t -> tid:int -> now:int -> phase -> unit
(** Zero-duration {!span} (instant events such as an OOM kill). *)

(** {1 Capture and merging} *)

type capture = {
  classes : string array;  (** aggregation classes, index 0 = ["app"] *)
  threads : (int * string * int) array;
      (** [(tid, name, class)] sorted by tid *)
  totals : (int * int * int) array;
      (** [(class, path code, ns)] sorted for determinism *)
  spans : (int * int * int * int) array;
      (** [(tid, phase index, t0, t1)] in record order; empty unless
          spans were on *)
}

val capture : t -> capture option
(** [None] iff the sink is {!disabled}. *)

val encode_capture : capture -> string
(** Compact single-line encoding for the result journal.  Spans are
    dropped: they exist only for [--perfetto], which disables
    warm-starting instead. *)

val decode_capture : string -> capture
(** Inverse of {!encode_capture} (with [spans = [||]]).
    @raise Failure on malformed input. *)

type merged = {
  m_classes : string array;
  m_totals : (int * int * int) array;
      (** [(class, path code, ns)] sorted; class indexes into
          [m_classes] *)
}

val merge : capture list -> merged
(** Sum totals across trials.  Classes are unified by name in first-
    appearance order, so merging the same captures in the same order
    always yields byte-identical renderings regardless of [--jobs]. *)
