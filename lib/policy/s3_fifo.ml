(* S3-FIFO (Yang et al., SOSP'23) as a Hooks.V1 guest: a small
   probationary FIFO in front of a main FIFO, with a ghost FIFO of
   recently evicted page identities.  One-hit wonders die out of the
   small queue quickly; a ghost hit on re-fault admits the page straight
   into main.  Frequency is capped at 3 and decays on main-queue
   reinsertion, exactly as in the paper's pseudocode — except the access
   signal here is the host's accessed-bit sample stream rather than a
   per-request trace. *)

module V1 = Hooks.V1

type t = {
  ctx : V1.ctx;
  queues : Structures.Dlist.t; (* list 0 = small, list 1 = main *)
  state : int array; (* 0 absent, 1 small, 2 main *)
  freq : int array;
  key_of : int array;
  small_target : int;
  ghost_ring : int array;
  ghost_tbl : (int, int) Hashtbl.t; (* key -> ring refcount *)
  mutable ghost_pos : int;
  mutable inserts : int;
  mutable ghost_hits : int;
  mutable promotions : int;
  mutable small_evicts : int;
  mutable main_evicts : int;
  mutable reinserts : int;
}

let name = "s3-fifo"
let api_version = 1
let small_list = 0
let main_list = 1

let init (ctx : V1.ctx) =
  let n = max 1 ctx.V1.total_frames in
  let small_target = max 1 (n / 10) in
  {
    ctx;
    queues = Structures.Dlist.create ~nodes:n ~lists:2;
    state = Array.make n 0;
    freq = Array.make n 0;
    key_of = Array.make n (-1);
    small_target;
    ghost_ring = Array.make (max 16 (n - small_target)) (-1);
    ghost_tbl = Hashtbl.create 64;
    ghost_pos = 0;
    inserts = 0;
    ghost_hits = 0;
    promotions = 0;
    small_evicts = 0;
    main_evicts = 0;
    reinserts = 0;
  }

let ghost_mem t key = Hashtbl.mem t.ghost_tbl key

let ghost_insert t key =
  if key >= 0 then begin
    let old = t.ghost_ring.(t.ghost_pos) in
    if old >= 0 then begin
      match Hashtbl.find_opt t.ghost_tbl old with
      | Some 1 -> Hashtbl.remove t.ghost_tbl old
      | Some c -> Hashtbl.replace t.ghost_tbl old (c - 1)
      | None -> ()
    end;
    t.ghost_ring.(t.ghost_pos) <- key;
    Hashtbl.replace t.ghost_tbl key
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.ghost_tbl key));
    t.ghost_pos <- (t.ghost_pos + 1) mod Array.length t.ghost_ring
  end

let drop t pfn =
  Structures.Dlist.remove t.queues ~node:pfn;
  t.state.(pfn) <- 0

let on_fault t (f : V1.fault) =
  let pfn = f.V1.pfn in
  if pfn >= 0 && pfn < Array.length t.state then begin
    (* A tracked pfn faulting again means our entry is stale (the host
       reclaimed the frame behind our back): restart its life. *)
    if t.state.(pfn) <> 0 then drop t pfn;
    t.inserts <- t.inserts + 1;
    t.key_of.(pfn) <- f.V1.key;
    if f.V1.reinserted then begin
      (* Gate-rejected nomination handed back: keep it in main, keep its
         frequency, so a protected page is not hammered again at once. *)
      t.reinserts <- t.reinserts + 1;
      Structures.Dlist.push_head t.queues ~list:main_list ~node:pfn;
      t.state.(pfn) <- 2
    end
    else if ghost_mem t f.V1.key then begin
      t.ghost_hits <- t.ghost_hits + 1;
      t.freq.(pfn) <- 0;
      Structures.Dlist.push_head t.queues ~list:main_list ~node:pfn;
      t.state.(pfn) <- 2
    end
    else begin
      t.freq.(pfn) <- 0;
      Structures.Dlist.push_head t.queues ~list:small_list ~node:pfn;
      t.state.(pfn) <- 1
    end
  end

let on_access_sample t (s : V1.sample) =
  let pfn = s.V1.pfn in
  if pfn >= 0 && pfn < Array.length t.state && t.state.(pfn) <> 0 then
    t.freq.(pfn) <- min 3 (t.freq.(pfn) + 1)

let on_scan_tick _t = ()

let evict_request t ~want =
  let out = ref [] in
  let count = ref 0 in
  let budget = ref ((2 * Array.length t.state) + 8) in
  let emit pfn =
    t.state.(pfn) <- 0;
    out := pfn :: !out;
    incr count
  in
  let continue_ = ref true in
  while !count < want && !continue_ && !budget > 0 do
    decr budget;
    let small_len = Structures.Dlist.size t.queues small_list in
    let main_len = Structures.Dlist.size t.queues main_list in
    if small_len = 0 && main_len = 0 then continue_ := false
    else if small_len >= t.small_target || main_len = 0 then begin
      match Structures.Dlist.pop_tail t.queues small_list with
      | None -> continue_ := false
      | Some pfn ->
        if t.freq.(pfn) > 1 then begin
          t.promotions <- t.promotions + 1;
          Structures.Dlist.push_head t.queues ~list:main_list ~node:pfn;
          t.state.(pfn) <- 2
        end
        else begin
          t.small_evicts <- t.small_evicts + 1;
          ghost_insert t t.key_of.(pfn);
          emit pfn
        end
    end
    else begin
      match Structures.Dlist.pop_tail t.queues main_list with
      | None -> continue_ := false
      | Some pfn ->
        if t.freq.(pfn) > 0 then begin
          t.freq.(pfn) <- t.freq.(pfn) - 1;
          Structures.Dlist.push_head t.queues ~list:main_list ~node:pfn
        end
        else begin
          t.main_evicts <- t.main_evicts + 1;
          emit pfn
        end
    end
  done;
  List.rev !out

let stats t =
  [
    ("inserts", t.inserts);
    ("ghost_hits", t.ghost_hits);
    ("promotions", t.promotions);
    ("small_evicts", t.small_evicts);
    ("main_evicts", t.main_evicts);
    ("reinserts", t.reinserts);
  ]

let gauges t =
  [
    ("small_len", float_of_int (Structures.Dlist.size t.queues small_list));
    ("main_len", float_of_int (Structures.Dlist.size t.queues main_list));
    ("ghost_keys", float_of_int (Hashtbl.length t.ghost_tbl));
    ("ghost_hits", float_of_int t.ghost_hits);
  ]
