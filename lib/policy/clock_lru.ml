module Prof = Obs.Prof

type config = {
  scan_batch : int;
  inactive_ratio : int;
  new_page_active : bool;
}

(* The classic kernel adds newly mapped anonymous pages to the active
   list; speculative readahead pages start inactive regardless. *)
let default_config = { scan_batch = 32; inactive_ratio = 2; new_page_active = true }

let active = 0
let inactive = 1

type t = {
  env : Policy_intf.env;
  config : config;
  lists : Structures.Dlist.t;
  mutable refaults : int;
  mutable evictions : int;
  mutable active_scans : int;
  mutable inactive_scans : int;
  mutable rotations : int;
}

let policy_name = "clock"

let create_with ?(config = default_config) env =
  {
    env;
    config;
    lists = Structures.Dlist.create ~nodes:env.Policy_intf.total_frames ~lists:2;
    refaults = 0;
    evictions = 0;
    active_scans = 0;
    inactive_scans = 0;
    rotations = 0;
  }

let create env = create_with env

let active_size t = Structures.Dlist.size t.lists active

let inactive_size t = Structures.Dlist.size t.lists inactive

let on_page_mapped t ~pfn ~asid:_ ~vpn:_ ~refault ~file_backed:_ ~speculative =
  if refault then t.refaults <- t.refaults + 1;
  let list =
    if speculative || not t.config.new_page_active then inactive else active
  in
  Structures.Dlist.move_head t.lists ~list ~node:pfn

let on_page_touched _t ~pfn:_ ~write:_ = ()

let costs t = t.env.Policy_intf.costs

let vm t = t.env.Policy_intf.vmstat

(* Examine one active-tail page: accessed -> rotate to head, else demote.
   The scan loops read the frame owner through the unboxed accessors
   ([-1] sentinels) so examining a page allocates nothing. *)
let deactivate_one t (stats : Policy_intf.reclaim_stats) =
  let pfn = Structures.Dlist.tail_node t.lists active in
  if pfn < 0 then false
  else begin
    stats.scanned <- stats.scanned + 1;
    stats.rmap_walks <- stats.rmap_walks + 1;
    stats.cpu_ns <- stats.cpu_ns + (costs t).Mem.Costs.rmap_walk_ns;
    Prof.charge_phase t.env.Policy_intf.prof Prof.Rmap_walk
      (costs t).Mem.Costs.rmap_walk_ns;
    t.active_scans <- t.active_scans + 1;
    let frames = t.env.Policy_intf.frames in
    let vpn = Mem.Frame_table.owner_vpn frames pfn in
    if vpn < 0 then begin
      (* Raced with an unmap; drop from our lists. *)
      Structures.Dlist.remove t.lists ~node:pfn;
      true
    end
    else begin
      let pt =
        t.env.Policy_intf.page_table_of (Mem.Frame_table.owner_asid frames pfn)
      in
      let pte = Mem.Page_table.get pt vpn in
      stats.cpu_ns <- stats.cpu_ns + (costs t).Mem.Costs.list_op_ns;
      Prof.charge_phase t.env.Policy_intf.prof Prof.Evict_scan
        (costs t).Mem.Costs.list_op_ns;
      if Mem.Pte.accessed pte then begin
        Mem.Page_table.set pt vpn (Mem.Pte.clear_accessed pte);
        Structures.Dlist.move_head t.lists ~list:active ~node:pfn;
        t.rotations <- t.rotations + 1
      end
      else begin
        Structures.Dlist.move_head t.lists ~list:inactive ~node:pfn;
        Obs.Vmstat.incr (vm t) Obs.Vmstat.pgdeactivate;
        if Obs.enabled t.env.Policy_intf.obs then
          Obs.emit t.env.Policy_intf.obs ~t_ns:(t.env.Policy_intf.now ())
            (Obs.Demote { pfn })
      end;
      true
    end
  end

let rebalance t stats =
  let continue_ = ref true in
  while
    !continue_
    && active_size t > 0
    && inactive_size t * t.config.inactive_ratio < active_size t
  do
    continue_ := deactivate_one t stats
  done

(* Examine one inactive-tail page: accessed -> second chance, else evict. *)
let evict_one t ~force (stats : Policy_intf.reclaim_stats) =
  let pfn = Structures.Dlist.tail_node t.lists inactive in
  if pfn < 0 then `Empty
  else begin
    stats.scanned <- stats.scanned + 1;
    stats.rmap_walks <- stats.rmap_walks + 1;
    stats.cpu_ns <- stats.cpu_ns + (costs t).Mem.Costs.rmap_walk_ns;
    Prof.charge_phase t.env.Policy_intf.prof Prof.Rmap_walk
      (costs t).Mem.Costs.rmap_walk_ns;
    t.inactive_scans <- t.inactive_scans + 1;
    let frames = t.env.Policy_intf.frames in
    let vpn = Mem.Frame_table.owner_vpn frames pfn in
    if vpn < 0 then begin
      Structures.Dlist.remove t.lists ~node:pfn;
      `Scanned
    end
    else begin
      let pt =
        t.env.Policy_intf.page_table_of (Mem.Frame_table.owner_asid frames pfn)
      in
      let pte = Mem.Page_table.get pt vpn in
      stats.cpu_ns <- stats.cpu_ns + (costs t).Mem.Costs.list_op_ns;
      Prof.charge_phase t.env.Policy_intf.prof Prof.Evict_scan
        (costs t).Mem.Costs.list_op_ns;
      if Mem.Pte.accessed pte && not force then begin
        Mem.Page_table.set pt vpn (Mem.Pte.clear_accessed pte);
        Structures.Dlist.move_head t.lists ~list:active ~node:pfn;
        stats.promoted <- stats.promoted + 1;
        (* The kernel's pgactivate: a second chance is a promotion back
           to the active list.  MG-LRU's generational promotions count
           under [mglru_promoted] instead, so this counter isolates the
           active/inactive ping-pong the paper attributes to Clock. *)
        Obs.Vmstat.incr (vm t) Obs.Vmstat.pgactivate;
        if Obs.enabled t.env.Policy_intf.obs then
          Obs.emit t.env.Policy_intf.obs ~t_ns:(t.env.Policy_intf.now ())
            (Obs.Promote { pfn; reason = Obs.Second_chance });
        `Scanned
      end
      else if not (t.env.Policy_intf.evictable ~pfn ~force) then begin
        (* Cgroup gate: rotate back to the inactive head instead of
           evicting; the scan budget keeps the pass bounded. *)
        Structures.Dlist.move_head t.lists ~list:inactive ~node:pfn;
        `Protected
      end
      else begin
        Structures.Dlist.remove t.lists ~node:pfn;
        t.env.Policy_intf.reclaim_page ~pfn;
        t.evictions <- t.evictions + 1;
        stats.freed <- stats.freed + 1;
        `Freed
      end
    end
  end

let shrink t ~want ~force stats =
  rebalance t stats;
  let budget = ref (max (2 * t.config.scan_batch) (4 * want)) in
  while stats.Policy_intf.freed < want && !budget > 0 do
    (match evict_one t ~force stats with
    | `Empty ->
      (* Nothing inactive: pull from the active list directly. *)
      if not (deactivate_one t stats) then budget := 0
    | `Protected ->
      (* A protected-only inactive list must not starve the pass:
         rotation cycles the same shielded pages between head and tail
         forever, so feed fresh active pages in behind them. *)
      ignore (deactivate_one t stats)
    | `Scanned | `Freed -> ());
    decr budget
  done

let direct_reclaim t ~want =
  let stats = Policy_intf.fresh_stats () in
  shrink t ~want ~force:false stats;
  if stats.Policy_intf.freed = 0 then
    (* Priority escalation: ignore accessed bits rather than deadlock. *)
    shrink t ~want ~force:true stats;
  Obs.Vmstat.add (vm t) Obs.Vmstat.pgscan_direct stats.Policy_intf.scanned;
  stats

let kswapd t () =
  let env = t.env in
  if env.Policy_intf.free_count () >= env.Policy_intf.high_watermark then
    Policy_intf.Sleep_until_woken
  else begin
    let stats = Policy_intf.fresh_stats () in
    shrink t ~want:t.config.scan_batch ~force:false stats;
    Obs.Vmstat.add (vm t) Obs.Vmstat.pgscan_kswapd stats.Policy_intf.scanned;
    if stats.Policy_intf.freed = 0 && stats.Policy_intf.scanned = 0 then
      Policy_intf.Sleep_until_woken
    else Policy_intf.Work (max stats.Policy_intf.cpu_ns 1_000)
  end

let kthreads t = [ { Policy_intf.kname = "kswapd"; kstep = kswapd t } ]

let stats t =
  [
    ("active", active_size t);
    ("inactive", inactive_size t);
    ("refaults", t.refaults);
    ("evictions", t.evictions);
    ("active_scans", t.active_scans);
    ("inactive_scans", t.inactive_scans);
    ("rotations", t.rotations);
  ]

let gauges t =
  [
    ("active", float_of_int (active_size t));
    ("inactive", float_of_int (inactive_size t));
    ("refaults", float_of_int t.refaults);
    ("rotations", float_of_int t.rotations);
  ]

let check_invariants t = Structures.Dlist.check_invariants t.lists
