(** SIEVE as a guest policy: a single FIFO whose hand spares visited
    pages in place (no list movement) and evicts the first unvisited
    one.  Runs entirely behind {!Hooks.V1}. *)

include Hooks.V1.GUEST
