type t = {
  env : Policy_intf.env;
  mutable evictions : int;
  mutable refaults : int;
}

let policy_name = "random"

let create env = { env; evictions = 0; refaults = 0 }

let on_page_mapped t ~pfn:_ ~asid:_ ~vpn:_ ~refault ~file_backed:_ ~speculative:_ =
  if refault then t.refaults <- t.refaults + 1

let on_page_touched _t ~pfn:_ ~write:_ = ()

(* Rejection-sample a mapped, evictable frame; bounded then linear
   fallback.  With cgroups off [evictable] is constant [true], so the
   RNG draw sequence is unchanged. *)
let pick_victim t ~force =
  let frames = t.env.Policy_intf.frames in
  let n = t.env.Policy_intf.total_frames in
  let ok pfn =
    Mem.Frame_table.is_mapped frames pfn
    && t.env.Policy_intf.evictable ~pfn ~force
  in
  let rec sample tries =
    if tries = 0 then None
    else begin
      let pfn = Engine.Rng.int t.env.Policy_intf.rng n in
      if ok pfn then Some pfn else sample (tries - 1)
    end
  in
  match sample 64 with
  | Some pfn -> Some pfn
  | None ->
    let rec linear pfn =
      if pfn >= n then None else if ok pfn then Some pfn else linear (pfn + 1)
    in
    linear 0

let evict_one t ~force (stats : Policy_intf.reclaim_stats) =
  match pick_victim t ~force with
  | None -> false
  | Some pfn ->
    stats.scanned <- stats.scanned + 1;
    stats.cpu_ns <- stats.cpu_ns + 100;
    Obs.Prof.charge t.env.Policy_intf.prof ~phase:Obs.Prof.Evict_scan 100;
    t.env.Policy_intf.reclaim_page ~pfn;
    t.evictions <- t.evictions + 1;
    stats.freed <- stats.freed + 1;
    true

let shrink t ~want ~force stats =
  let continue_ = ref true in
  while stats.Policy_intf.freed < want && !continue_ do
    continue_ := evict_one t ~force stats
  done

let direct_reclaim t ~want =
  let stats = Policy_intf.fresh_stats () in
  shrink t ~want ~force:false stats;
  if stats.Policy_intf.freed = 0 then
    shrink t ~want ~force:true stats;
  stats

let kswapd t () =
  let env = t.env in
  if env.Policy_intf.free_count () >= env.Policy_intf.high_watermark then
    Policy_intf.Sleep_until_woken
  else begin
    let stats = Policy_intf.fresh_stats () in
    shrink t ~want:32 ~force:false stats;
    if stats.Policy_intf.freed = 0 then Policy_intf.Sleep_until_woken
    else Policy_intf.Work (max stats.Policy_intf.cpu_ns 500)
  end

let kthreads t = [ { Policy_intf.kname = "kswapd"; kstep = kswapd t } ]

let stats t = [ ("evictions", t.evictions); ("refaults", t.refaults) ]

let gauges t =
  [
    ("free_frames", float_of_int (t.env.Policy_intf.free_count ()));
    ("evictions", float_of_int t.evictions);
    ("refaults", float_of_int t.refaults);
  ]

let check_invariants _t = ()
