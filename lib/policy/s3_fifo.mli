(** S3-FIFO (simple, scalable FIFO with three queues) as a guest policy.

    Small probationary FIFO + main FIFO + ghost FIFO of evicted page
    identities; quick demotion for one-hit wonders, ghost-hit admission
    straight into main.  Runs entirely behind {!Hooks.V1} — it never
    touches page tables or frees frames itself. *)

include Hooks.V1.GUEST
