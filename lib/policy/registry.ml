type spec =
  | Clock
  | Mglru_default
  | Gen14
  | Scan_all
  | Scan_none
  | Scan_rand of float
  | Mglru_custom of Mglru.config
  | Fifo
  | Random
  | Lru_exact
  | Crash_test

let name = function
  | Clock -> "clock"
  | Mglru_default -> "mglru"
  | Gen14 -> "gen14"
  | Scan_all -> "scan-all"
  | Scan_none -> "scan-none"
  | Scan_rand _ -> "scan-rand"
  | Mglru_custom _ -> "mglru-custom"
  | Fifo -> "fifo"
  | Random -> "random"
  | Lru_exact -> "lru-exact"
  | Crash_test -> "crash-test"

let scan_mode_key = function
  | Mglru.Bloom_filtered -> "bloom"
  | Mglru.Scan_all -> "all"
  | Mglru.Scan_none -> "none"
  | Mglru.Scan_rand p -> Printf.sprintf "rand%.6g" p

(* Every config field goes into the key: two distinct custom configs
   must never alias one cache entry. *)
let mglru_config_key (c : Mglru.config) =
  Printf.sprintf "g%d.%d-%s-b%d.%d.%d-t%d%s-e%d-a%d-s%b" c.Mglru.max_gens
    c.Mglru.min_gens (scan_mode_key c.Mglru.scan_mode) c.Mglru.bloom_bits
    c.Mglru.bloom_hashes c.Mglru.bloom_density_shift c.Mglru.tiers
    (if c.Mglru.tier_protection then "p" else "")
    c.Mglru.evict_batch c.Mglru.aging_regions_per_step c.Mglru.spatial_scan

let cache_key = function
  | Scan_rand p -> Printf.sprintf "scan-rand:%.6g" p
  | Mglru_custom c -> "mglru-custom:" ^ mglru_config_key c
  | (Clock | Mglru_default | Gen14 | Scan_all | Scan_none | Fifo | Random
    | Lru_exact | Crash_test) as spec ->
    name spec

let of_name = function
  | "clock" -> Some Clock
  | "mglru" -> Some Mglru_default
  | "gen14" -> Some Gen14
  | "scan-all" -> Some Scan_all
  | "scan-none" -> Some Scan_none
  | "scan-rand" -> Some (Scan_rand 0.5)
  | "fifo" -> Some Fifo
  | "random" -> Some Random
  | "lru-exact" -> Some Lru_exact
  | "crash-test" -> Some Crash_test
  | _ -> None

let known_names =
  [ "clock"; "mglru"; "gen14"; "scan-all"; "scan-none"; "scan-rand"; "fifo";
    "random"; "lru-exact"; "crash-test" ]

let all_paper_specs =
  [ Clock; Mglru_default; Gen14; Scan_all; Scan_none; Scan_rand 0.5 ]

let mglru_config = function
  | Mglru_default -> Mglru.default_config
  | Gen14 -> Mglru.gen14_config
  | Scan_all -> Mglru.with_mode Mglru.Scan_all Mglru.default_config
  | Scan_none -> Mglru.with_mode Mglru.Scan_none Mglru.default_config
  | Scan_rand p -> Mglru.with_mode (Mglru.Scan_rand p) Mglru.default_config
  | Mglru_custom c -> c
  | Clock | Fifo | Random | Lru_exact | Crash_test ->
    invalid_arg "Registry.mglru_config"

let create spec env =
  match spec with
  | Clock -> Policy_intf.Packed ((module Clock_lru), Clock_lru.create env)
  | Mglru_default | Gen14 | Scan_all | Scan_none | Scan_rand _ | Mglru_custom _ ->
    Policy_intf.Packed
      ((module Mglru), Mglru.create_with ~config:(mglru_config spec) env)
  | Fifo -> Policy_intf.Packed ((module Fifo), Fifo.create env)
  | Random -> Policy_intf.Packed ((module Random_policy), Random_policy.create env)
  | Lru_exact -> Policy_intf.Packed ((module Lru_exact), Lru_exact.create env)
  | Crash_test -> failwith "crash-test policy: deliberate failure"
