type spec =
  | Clock
  | Mglru_default
  | Gen14
  | Scan_all
  | Scan_none
  | Scan_rand of float
  | Mglru_custom of Mglru.config
  | Fifo
  | Random
  | Lru_exact
  | Crash_test
  | S3_fifo
  | Sieve
  | Perceptron

let name = function
  | Clock -> "clock"
  | Mglru_default -> "mglru"
  | Gen14 -> "gen14"
  | Scan_all -> "scan-all"
  | Scan_none -> "scan-none"
  | Scan_rand _ -> "scan-rand"
  | Mglru_custom _ -> "mglru-custom"
  | Fifo -> "fifo"
  | Random -> "random"
  | Lru_exact -> "lru-exact"
  | Crash_test -> "crash-test"
  | S3_fifo -> "s3-fifo"
  | Sieve -> "sieve"
  | Perceptron -> "perceptron"

let scan_mode_key = function
  | Mglru.Bloom_filtered -> "bloom"
  | Mglru.Scan_all -> "all"
  | Mglru.Scan_none -> "none"
  | Mglru.Scan_rand p -> Printf.sprintf "rand%.6g" p

(* Every config field goes into the key: two distinct custom configs
   must never alias one cache entry. *)
let mglru_config_key (c : Mglru.config) =
  Printf.sprintf "g%d.%d-%s-b%d.%d.%d-t%d%s-e%d-a%d-s%b" c.Mglru.max_gens
    c.Mglru.min_gens (scan_mode_key c.Mglru.scan_mode) c.Mglru.bloom_bits
    c.Mglru.bloom_hashes c.Mglru.bloom_density_shift c.Mglru.tiers
    (if c.Mglru.tier_protection then "p" else "")
    c.Mglru.evict_batch c.Mglru.aging_regions_per_step c.Mglru.spatial_scan

let cache_key = function
  | Scan_rand p -> Printf.sprintf "scan-rand:%.6g" p
  | Mglru_custom c -> "mglru-custom:" ^ mglru_config_key c
  | ( Clock | Mglru_default | Gen14 | Scan_all | Scan_none | Fifo | Random
    | Lru_exact | Crash_test | S3_fifo | Sieve | Perceptron ) as spec ->
    name spec

let of_name = function
  | "clock" -> Some Clock
  | "mglru" -> Some Mglru_default
  | "gen14" -> Some Gen14
  | "scan-all" -> Some Scan_all
  | "scan-none" -> Some Scan_none
  | "scan-rand" -> Some (Scan_rand 0.5)
  | "fifo" -> Some Fifo
  | "random" -> Some Random
  | "lru-exact" -> Some Lru_exact
  | "crash-test" -> Some Crash_test
  | "s3-fifo" -> Some S3_fifo
  | "sieve" -> Some Sieve
  | "perceptron" -> Some Perceptron
  | _ -> None

let known_names =
  [ "clock"; "mglru"; "gen14"; "scan-all"; "scan-none"; "scan-rand"; "fifo";
    "random"; "lru-exact"; "crash-test"; "s3-fifo"; "sieve"; "perceptron" ]

let all_paper_specs =
  [ Clock; Mglru_default; Gen14; Scan_all; Scan_none; Scan_rand 0.5 ]

let guest_specs = [ S3_fifo; Sieve; Perceptron ]

(* ------------------------------------------------------------------ *)
(* Versioned policy descriptors                                        *)

type kind = Builtin | Guest of int | Oracle

type descriptor = {
  d_name : string;
  d_kind : kind;
  d_doc : string;
  d_knobs : (string * string) list;
}

let describe spec =
  let builtin doc knobs =
    { d_name = name spec; d_kind = Builtin; d_doc = doc; d_knobs = knobs }
  in
  let guest doc knobs =
    {
      d_name = name spec;
      d_kind = Guest Hooks.current_version;
      d_doc = doc;
      d_knobs = knobs;
    }
  in
  match spec with
  | Clock ->
    builtin "active/inactive Clock-LRU with rmap second chance (paper baseline)"
      []
  | Mglru_default ->
    builtin "multi-generational LRU, Bloom-filtered aging walker (paper default)"
      [ ("gens", "4"); ("scan", "bloom") ]
  | Gen14 -> builtin "MG-LRU with 14 generations" [ ("gens", "14") ]
  | Scan_all -> builtin "MG-LRU aging walker scanning every region" [ ("scan", "all") ]
  | Scan_none -> builtin "MG-LRU with the aging walker disabled" [ ("scan", "none") ]
  | Scan_rand p ->
    builtin "MG-LRU scanning a random region subset"
      [ ("scan", Printf.sprintf "rand p=%.6g" p) ]
  | Mglru_custom c -> builtin "MG-LRU with a custom config" [ ("key", mglru_config_key c) ]
  | Fifo -> builtin "first-in first-out baseline" []
  | Random -> builtin "uniform-random eviction baseline" []
  | Lru_exact -> builtin "oracle-assisted exact LRU baseline" []
  | Crash_test -> builtin "deliberately fails at construction (failure-isolation probe)" []
  | S3_fifo ->
    guest "S3-FIFO: small/main FIFOs + ghost admission (SOSP'23)"
      [ ("small", "10%"); ("freq_cap", "3") ]
  | Sieve ->
    guest "SIEVE: single FIFO, in-place visited-bit sieving (NSDI'24)" []
  | Perceptron ->
    guest "online perceptron eviction trained from access samples (LearnedCache-style)"
      [ ("features", "7"); ("weight_cap", "64") ]

let belady_descriptor =
  {
    d_name = "belady";
    d_kind = Oracle;
    d_doc =
      "Belady's OPT: offline minimum-faults oracle; the denominator of \
       `repro regret`, not runnable as a machine policy";
    d_knobs = [];
  }

let descriptors =
  List.map
    (fun n -> describe (Option.get (of_name n)))
    known_names
  @ [ belady_descriptor ]

let kind_label = function
  | Builtin -> "builtin"
  | Guest v -> Printf.sprintf "guest/v%d" v
  | Oracle -> "oracle"

(* ------------------------------------------------------------------ *)
(* Nearest-match suggestion for unknown names                          *)

let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest unknown =
  let u = String.lowercase_ascii unknown in
  let best =
    List.fold_left
      (fun acc cand ->
        let d = edit_distance u cand in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ -> Some (cand, d))
      None
      (List.map (fun d -> d.d_name) descriptors)
  in
  match best with
  | Some (cand, d) when d <= 3 -> Some cand
  | _ -> None

let mglru_config = function
  | Mglru_default -> Mglru.default_config
  | Gen14 -> Mglru.gen14_config
  | Scan_all -> Mglru.with_mode Mglru.Scan_all Mglru.default_config
  | Scan_none -> Mglru.with_mode Mglru.Scan_none Mglru.default_config
  | Scan_rand p -> Mglru.with_mode (Mglru.Scan_rand p) Mglru.default_config
  | Mglru_custom c -> c
  | Clock | Fifo | Random | Lru_exact | Crash_test | S3_fifo | Sieve
  | Perceptron ->
    invalid_arg "Registry.mglru_config"

module S3_host = Guest_host.Host (S3_fifo)
module Sieve_host = Guest_host.Host (Sieve)
module Perceptron_host = Guest_host.Host (Perceptron)

let create spec env =
  match spec with
  | Clock -> Policy_intf.Packed ((module Clock_lru), Clock_lru.create env)
  | Mglru_default | Gen14 | Scan_all | Scan_none | Scan_rand _ | Mglru_custom _ ->
    Policy_intf.Packed
      ((module Mglru), Mglru.create_with ~config:(mglru_config spec) env)
  | Fifo -> Policy_intf.Packed ((module Fifo), Fifo.create env)
  | Random -> Policy_intf.Packed ((module Random_policy), Random_policy.create env)
  | Lru_exact -> Policy_intf.Packed ((module Lru_exact), Lru_exact.create env)
  | Crash_test -> failwith "crash-test policy: deliberate failure"
  | S3_fifo -> Policy_intf.Packed ((module S3_host), S3_host.create env)
  | Sieve -> Policy_intf.Packed ((module Sieve_host), Sieve_host.create env)
  | Perceptron ->
    Policy_intf.Packed ((module Perceptron_host), Perceptron_host.create env)
