module Prof = Obs.Prof

type scan_mode =
  | Bloom_filtered
  | Scan_all
  | Scan_none
  | Scan_rand of float

type config = {
  max_gens : int;
  min_gens : int;
  scan_mode : scan_mode;
  bloom_bits : int;
  bloom_hashes : int;
  bloom_density_shift : int;
  tiers : int;
  tier_protection : bool;
  evict_batch : int;
  aging_regions_per_step : int;
  spatial_scan : bool;
}

let default_config =
  {
    max_gens = 4;
    min_gens = 2;
    scan_mode = Bloom_filtered;
    bloom_bits = 1 lsl 15;
    bloom_hashes = 2;
    bloom_density_shift = 3;
    tiers = 4;
    tier_protection = true;
    evict_batch = 32;
    aging_regions_per_step = 16;
    spatial_scan = true;
  }

let gen14_config = { default_config with max_gens = 1 lsl 14 }

let with_mode scan_mode config = { config with scan_mode }

type t = {
  env : Policy_intf.env;
  config : config;
  lists : Structures.Dlist.t; (* slot = seq mod max_gens *)
  gen_of : int array;         (* pfn -> generation seq; -1 detached *)
  tier_of : int array;        (* pfn -> access tier *)
  mutable max_seq : int;
  mutable min_seq : int;
  mutable bloom_cur : Structures.Bloom.t;
  mutable bloom_next : Structures.Bloom.t;
  mutable bloom_primed : bool; (* first pass scans everything *)
  (* Aging walker state: a pass walks this region list.  A pass is
     requested only when eviction hits the bottom of the generation
     window (try_to_inc_max_seq), and eviction that fully drains the
     oldest generation before the pass completes must wait for it — the
     serialization behind MG-LRU's reclaim stalls (paper §VI-A).
     The list is flattened into parallel arrays (page table / region
     index) rebuilt only when the region count changes, so starting a
     pass does not rebuild a tuple list every time. *)
  mutable walk_pts : Mem.Page_table.t array;
  mutable walk_regions : int array;
  mutable walk_len : int;
  mutable walk_pos : int;
  mutable aging_active : bool;
  mutable aging_requested : bool;
  (* Refault bookkeeping for tiers. *)
  refault_table : (int, int * int) Hashtbl.t; (* key -> (evict seq, tier) *)
  pid : Structures.Pid.t;
  mutable protected_tiers : int;
  tier_evictions : int array;
  tier_refaults : int array;
  (* Metrics. *)
  mutable aging_passes : int;
  mutable regions_scanned : int;
  mutable regions_skipped : int;
  mutable ptes_scanned : int;
  mutable aging_promotions : int;
  mutable evict_promotions : int;
  mutable spatial_promotions : int;
  mutable evictions : int;
  mutable refaults : int;
  mutable forced_evictions : int;
  mutable tier_protected_saves : int;
  mutable stuck_full_window : int; (* aging wanted a new gen but was at cap *)
}

let policy_name = "mglru"

let create_with ?(config = default_config) (env : Policy_intf.env) =
  if config.max_gens < config.min_gens then invalid_arg "Mglru: max_gens < min_gens";
  if config.min_gens < 1 then invalid_arg "Mglru: min_gens < 1";
  let nodes = env.Policy_intf.total_frames in
  let mk_bloom () =
    Structures.Bloom.create ~hashes:config.bloom_hashes ~bits:config.bloom_bits
      ~seed:(Engine.Rng.int env.Policy_intf.rng max_int)
      ()
  in
  {
    env;
    config;
    lists = Structures.Dlist.create ~nodes ~lists:config.max_gens;
    gen_of = Array.make nodes (-1);
    tier_of = Array.make nodes 0;
    max_seq = config.min_gens - 1;
    min_seq = 0;
    bloom_cur = mk_bloom ();
    bloom_next = mk_bloom ();
    bloom_primed = false;
    walk_pts = [||];
    walk_regions = [||];
    walk_len = 0;
    walk_pos = 0;
    aging_active = false;
    aging_requested = false;
    refault_table = Hashtbl.create 4096;
    pid = Structures.Pid.create ~kp:0.5 ~ki:0.2 ~integral_limit:10.0 ~setpoint:0.0 ();
    protected_tiers = 0;
    tier_evictions = Array.make config.tiers 0;
    tier_refaults = Array.make config.tiers 0;
    aging_passes = 0;
    regions_scanned = 0;
    regions_skipped = 0;
    ptes_scanned = 0;
    aging_promotions = 0;
    evict_promotions = 0;
    spatial_promotions = 0;
    evictions = 0;
    refaults = 0;
    forced_evictions = 0;
    tier_protected_saves = 0;
    stuck_full_window = 0;
  }

let create env = create_with env

let max_seq t = t.max_seq

let min_seq t = t.min_seq

let nr_gens t = t.max_seq - t.min_seq + 1

let slot t seq = seq mod t.config.max_gens

let gen_size t seq = Structures.Dlist.size t.lists (slot t seq)

let protected_tiers t = t.protected_tiers

let config_of t = t.config

let costs t = t.env.Policy_intf.costs

let vm t = t.env.Policy_intf.vmstat

let refault_key ~asid ~vpn = (asid lsl 44) lor vpn

(* Attach a frame to a generation list (detaching it first if needed). *)
let place t ~pfn ~seq ~tier =
  t.gen_of.(pfn) <- seq;
  t.tier_of.(pfn) <- tier;
  Structures.Dlist.move_head t.lists ~list:(slot t seq) ~node:pfn

let promote_to_youngest t ~pfn =
  if t.gen_of.(pfn) <> t.max_seq then place t ~pfn ~seq:t.max_seq ~tier:t.tier_of.(pfn)
  else Structures.Dlist.move_head t.lists ~list:(slot t t.max_seq) ~node:pfn

let on_page_mapped t ~pfn ~asid ~vpn ~refault ~file_backed ~speculative =
  let tier, distance =
    if not refault then (0, None)
    else begin
      t.refaults <- t.refaults + 1;
      match Hashtbl.find_opt t.refault_table (refault_key ~asid ~vpn) with
      | None -> (0, None)
      | Some (evict_seq, old_tier) ->
        Hashtbl.remove t.refault_table (refault_key ~asid ~vpn);
        let tier =
          if file_backed then min (old_tier + 1) (t.config.tiers - 1) else 0
        in
        t.tier_refaults.(tier) <- t.tier_refaults.(tier) + 1;
        (tier, Some (t.max_seq - evict_seq))
    end
  in
  (* Workingset detection: pages refaulting within one generation window
     of their eviction are working set and start young; pages that
     stayed out longer — and speculative readahead and fresh file pages
     — start one generation above the eviction generation, so one-hit
     and long-idle pages cannot flood the young generations (file pages
     then climb by tier, paper §III-D). *)
  let old_seq = min (t.min_seq + 1) t.max_seq in
  let seq =
    if file_backed || speculative then old_seq
    else
      match distance with
      | Some d when d > t.config.max_gens -> old_seq
      | Some _ | None -> t.max_seq
  in
  place t ~pfn ~seq ~tier

let on_page_touched _t ~pfn:_ ~write:_ = ()

(* ------------------------------------------------------------------ *)
(* Aging: linear page-table walks filtered by the Bloom filter.        *)
(* ------------------------------------------------------------------ *)

let inc_max_seq t =
  if nr_gens t < t.config.max_gens then begin
    t.max_seq <- t.max_seq + 1;
    true
  end
  else begin
    t.stuck_full_window <- t.stuck_full_window + 1;
    false
  end

let should_scan_region t region =
  match t.config.scan_mode with
  | Scan_all -> true
  | Scan_none -> false
  | Scan_rand p -> Engine.Rng.bool t.env.Policy_intf.rng p
  | Bloom_filtered ->
    (not t.bloom_primed) || Structures.Bloom.mem t.bloom_cur region

let scan_region t pt region (work : int ref) =
  let c = costs t in
  let prof = t.env.Policy_intf.prof in
  let accessed_here = ref 0 in
  let entries = ref 0 in
  Mem.Page_table.iter_region pt region (fun vpn pte ->
      incr entries;
      work := !work + c.Mem.Costs.pte_scan_ns;
      t.ptes_scanned <- t.ptes_scanned + 1;
      if Mem.Pte.present pte && Mem.Pte.accessed pte then begin
        incr accessed_here;
        Mem.Page_table.set pt vpn (Mem.Pte.clear_accessed pte);
        let pfn = Mem.Pte.pfn pte in
        promote_to_youngest t ~pfn;
        t.aging_promotions <- t.aging_promotions + 1;
        (* Generational promotion, not a Clock-style pgactivate: the
           paper's "fewer ping-pongs" claim is exactly this split. *)
        Obs.Vmstat.incr (vm t) Obs.Vmstat.mglru_promoted;
        if Obs.enabled t.env.Policy_intf.obs then
          Obs.emit t.env.Policy_intf.obs ~t_ns:(t.env.Policy_intf.now ())
            (Obs.Promote { pfn; reason = Obs.Aging });
        work := !work + c.Mem.Costs.list_op_ns
      end);
  Prof.charge_phase prof Prof.Pte_scan (!entries * c.Mem.Costs.pte_scan_ns);
  Prof.charge_phase prof Prof.Aging_walk
    (!accessed_here * c.Mem.Costs.list_op_ns);
  let threshold = max 1 (!entries lsr t.config.bloom_density_shift) in
  if !accessed_here >= threshold then begin
    Structures.Bloom.add t.bloom_next region;
    work := !work + c.Mem.Costs.bloom_update_ns;
    Prof.charge_phase prof Prof.Aging_walk c.Mem.Costs.bloom_update_ns
  end

let update_tier_protection t =
  if t.config.tier_protection && t.config.tiers > 1 then begin
    let rate k =
      let ev = t.tier_evictions.(k) and rf = t.tier_refaults.(k) in
      if ev + rf = 0 then 0.0 else float_of_int rf /. float_of_int (ev + rf)
    in
    let base = rate 0 in
    let hi = ref 0.0 and n = ref 0 in
    for k = 1 to t.config.tiers - 1 do
      if t.tier_evictions.(k) + t.tier_refaults.(k) > 0 then begin
        hi := !hi +. rate k;
        incr n
      end
    done;
    if !n > 0 then begin
      let measurement = base -. (!hi /. float_of_int !n) in
      (* Setpoint 0: positive output means higher tiers refault more than
         tier 0 and deserve protection. *)
      let out = Structures.Pid.update t.pid ~measurement ~dt:1.0 in
      let level = int_of_float (Float.round (out *. float_of_int (t.config.tiers - 1))) in
      t.protected_tiers <- max 0 (min (t.config.tiers - 1) level)
    end;
    Array.fill t.tier_evictions 0 t.config.tiers 0;
    Array.fill t.tier_refaults 0 t.config.tiers 0
  end

let start_aging_pass t =
  (match t.config.scan_mode with
  | Scan_none -> t.walk_len <- 0 (* pure generation rotation, no walk *)
  | Bloom_filtered | Scan_all | Scan_rand _ ->
    let spaces = t.env.Policy_intf.address_spaces () in
    let total =
      List.fold_left (fun acc pt -> acc + Mem.Page_table.regions pt) 0 spaces
    in
    (* Address spaces are fixed for a machine's lifetime, so the region
       count changing is the only rebuild trigger in practice. *)
    if total <> Array.length t.walk_regions then begin
      match spaces with
      | [] ->
        t.walk_pts <- [||];
        t.walk_regions <- [||]
      | pt0 :: _ ->
        let pts = Array.make total pt0 in
        let regs = Array.make total 0 in
        let i = ref 0 in
        List.iter
          (fun pt ->
            for r = 0 to Mem.Page_table.regions pt - 1 do
              pts.(!i) <- pt;
              regs.(!i) <- r;
              incr i
            done)
          spaces;
        t.walk_pts <- pts;
        t.walk_regions <- regs
    end;
    t.walk_len <- total);
  t.walk_pos <- 0;
  t.aging_active <- true

let finish_aging_pass t =
  t.aging_active <- false;
  t.aging_requested <- false;
  t.aging_passes <- t.aging_passes + 1;
  Obs.Vmstat.incr (vm t) Obs.Vmstat.mglru_aging_passes;
  ignore (inc_max_seq t);
  (* The filter built during this pass guides the next one. *)
  let cur = t.bloom_cur in
  t.bloom_cur <- t.bloom_next;
  Structures.Bloom.clear cur;
  t.bloom_next <- cur;
  t.bloom_primed <- true;
  update_tier_protection t;
  Obs.emit t.env.Policy_intf.obs ~t_ns:(t.env.Policy_intf.now ())
    (Obs.Aging_pass
       { pass = t.aging_passes; max_seq = t.max_seq; min_seq = t.min_seq })

(* One bounded aging step; returns CPU work consumed. *)
let aging_step t ~budget:step_budget =
  if not t.aging_active then start_aging_pass t;
  let c = costs t in
  let work = ref 0 in
  let budget = ref step_budget in
  while !budget > 0 && t.walk_pos < t.walk_len do
    let pt = t.walk_pts.(t.walk_pos) in
    let region = t.walk_regions.(t.walk_pos) in
    t.walk_pos <- t.walk_pos + 1;
    work := !work + c.Mem.Costs.bloom_query_ns;
    if should_scan_region t region then begin
      t.regions_scanned <- t.regions_scanned + 1;
      scan_region t pt region work
    end
    else t.regions_skipped <- t.regions_skipped + 1;
    decr budget
  done;
  Prof.charge_phase t.env.Policy_intf.prof Prof.Aging_walk
    ((step_budget - !budget) * c.Mem.Costs.bloom_query_ns);
  if t.walk_pos >= t.walk_len then finish_aging_pass t;
  max !work 200

(* ------------------------------------------------------------------ *)
(* Eviction: scan the oldest generation through the reverse map.       *)
(* ------------------------------------------------------------------ *)

let request_aging t = t.aging_requested <- true

(* Advance min_seq past empty generations, but never shrink the window
   below [min_gens] (the kernel's MIN_NR_GENS invariant): once at the
   bottom, a new generation must come from an aging pass. *)
let refresh_min_seq t =
  while
    nr_gens t > t.config.min_gens
    && Structures.Dlist.is_empty t.lists (slot t t.min_seq)
  do
    t.min_seq <- t.min_seq + 1
  done

let spatial_scan_region t pt region (stats : Policy_intf.reclaim_stats) =
  let c = costs t in
  let prof = t.env.Policy_intf.prof in
  let scanned = ref 0 in
  let promoted = ref 0 in
  Mem.Page_table.iter_region pt region (fun vpn pte ->
      if !scanned < c.Mem.Costs.spatial_scan_max then begin
        incr scanned;
        stats.pte_scans <- stats.pte_scans + 1;
        stats.cpu_ns <- stats.cpu_ns + c.Mem.Costs.pte_scan_ns;
        t.ptes_scanned <- t.ptes_scanned + 1;
        if Mem.Pte.present pte && Mem.Pte.accessed pte then begin
          Mem.Page_table.set pt vpn (Mem.Pte.clear_accessed pte);
          let pfn = Mem.Pte.pfn pte in
          promote_to_youngest t ~pfn;
          incr promoted;
          t.spatial_promotions <- t.spatial_promotions + 1;
          Obs.Vmstat.incr (vm t) Obs.Vmstat.mglru_promoted;
          if Obs.enabled t.env.Policy_intf.obs then
            Obs.emit t.env.Policy_intf.obs ~t_ns:(t.env.Policy_intf.now ())
              (Obs.Promote { pfn; reason = Obs.Spatial });
          stats.cpu_ns <- stats.cpu_ns + c.Mem.Costs.list_op_ns
        end
      end);
  Prof.charge_phase prof Prof.Pte_scan (!scanned * c.Mem.Costs.pte_scan_ns);
  Prof.charge_phase prof Prof.Evict_scan (!promoted * c.Mem.Costs.list_op_ns);
  Structures.Bloom.add t.bloom_next region;
  stats.cpu_ns <- stats.cpu_ns + c.Mem.Costs.bloom_update_ns;
  Prof.charge_phase prof Prof.Evict_scan c.Mem.Costs.bloom_update_ns

let evict_candidate t ~force (stats : Policy_intf.reclaim_stats) =
  refresh_min_seq t;
  if nr_gens t <= t.config.min_gens then request_aging t;
  let pfn = Structures.Dlist.tail_node t.lists (slot t t.min_seq) in
  if pfn < 0 then
    if force && t.min_seq < t.max_seq then begin
      (* Emergency: eat into a younger generation rather than deadlock. *)
      t.min_seq <- t.min_seq + 1;
      `Scanned
    end
    else begin
      (* Window at the bottom and its oldest generation is drained:
         reclaim must wait for the aging walk. *)
      request_aging t;
      `Need_aging
    end
  else begin
    let c = costs t in
    stats.scanned <- stats.scanned + 1;
    stats.rmap_walks <- stats.rmap_walks + 1;
    stats.cpu_ns <- stats.cpu_ns + c.Mem.Costs.rmap_walk_ns;
    Prof.charge_phase t.env.Policy_intf.prof Prof.Rmap_walk
      c.Mem.Costs.rmap_walk_ns;
    let frames = t.env.Policy_intf.frames in
    let vpn = Mem.Frame_table.owner_vpn frames pfn in
    if vpn < 0 then begin
      Structures.Dlist.remove t.lists ~node:pfn;
      t.gen_of.(pfn) <- -1;
      `Scanned
    end
    else begin
      let asid = Mem.Frame_table.owner_asid frames pfn in
      let pt = t.env.Policy_intf.page_table_of asid in
      let pte = Mem.Page_table.get pt vpn in
      if Mem.Pte.accessed pte && not force then begin
        Mem.Page_table.set pt vpn (Mem.Pte.clear_accessed pte);
        promote_to_youngest t ~pfn;
        t.evict_promotions <- t.evict_promotions + 1;
        stats.promoted <- stats.promoted + 1;
        Obs.Vmstat.incr (vm t) Obs.Vmstat.mglru_promoted;
        if Obs.enabled t.env.Policy_intf.obs then
          Obs.emit t.env.Policy_intf.obs ~t_ns:(t.env.Policy_intf.now ())
            (Obs.Promote { pfn; reason = Obs.Evict_scan });
        stats.cpu_ns <- stats.cpu_ns + c.Mem.Costs.list_op_ns;
        Prof.charge_phase t.env.Policy_intf.prof Prof.Evict_scan
          c.Mem.Costs.list_op_ns;
        (* Unlike Clock, exploit page-table locality around the hit and
           feed the region back to the aging filter (paper §III-C). *)
        if t.config.spatial_scan then
          spatial_scan_region t pt (Mem.Page_table.region_of pt vpn) stats;
        `Scanned
      end
      else begin
        let tier = t.tier_of.(pfn) in
        if
          (not force) && t.config.tier_protection && Mem.Pte.file_backed pte
          && tier > 0
          && tier <= t.protected_tiers
        then begin
          (* Shielded tier: give it one more generation instead. *)
          place t ~pfn ~seq:(min (t.min_seq + 1) t.max_seq) ~tier;
          t.tier_protected_saves <- t.tier_protected_saves + 1;
          Obs.Vmstat.incr (vm t) Obs.Vmstat.mglru_tier_protected;
          stats.cpu_ns <- stats.cpu_ns + c.Mem.Costs.list_op_ns;
          Prof.charge_phase t.env.Policy_intf.prof Prof.Evict_scan
            c.Mem.Costs.list_op_ns;
          `Scanned
        end
        else if not (t.env.Policy_intf.evictable ~pfn ~force) then begin
          (* Cgroup gate: outside the targeted group or shielded by
             memory.low — park it one generation up, like a protected
             tier, and keep scanning. *)
          place t ~pfn ~seq:(min (t.min_seq + 1) t.max_seq) ~tier;
          stats.cpu_ns <- stats.cpu_ns + c.Mem.Costs.list_op_ns;
          Prof.charge_phase t.env.Policy_intf.prof Prof.Evict_scan
            c.Mem.Costs.list_op_ns;
          `Scanned
        end
        else begin
          Structures.Dlist.remove t.lists ~node:pfn;
          t.gen_of.(pfn) <- -1;
          t.tier_evictions.(min tier (t.config.tiers - 1)) <-
            t.tier_evictions.(min tier (t.config.tiers - 1)) + 1;
          Hashtbl.replace t.refault_table
            (refault_key ~asid ~vpn)
            (t.max_seq, tier);
          t.env.Policy_intf.reclaim_page ~pfn;
          t.evictions <- t.evictions + 1;
          if force then t.forced_evictions <- t.forced_evictions + 1;
          stats.freed <- stats.freed + 1;
          `Freed
        end
      end
    end
  end

let shrink t ~want ~force stats =
  let budget = ref (max (4 * t.config.evict_batch) (8 * want)) in
  let progress = ref true in
  while stats.Policy_intf.freed < want && !budget > 0 && !progress do
    (match evict_candidate t ~force stats with
    | `Need_aging -> progress := false
    | `Scanned | `Freed -> ());
    decr budget
  done

(* Run the pending aging pass to completion in the caller's context,
   charging its CPU to [stats] — a direct reclaimer stalls for exactly
   this long. *)
let finish_aging_synchronously t (stats : Policy_intf.reclaim_stats) =
  let guard = ref (t.walk_len + (t.env.Policy_intf.total_frames / 8) + 64) in
  while (t.aging_active || t.aging_requested) && !guard > 0 do
    stats.Policy_intf.cpu_ns <-
      stats.Policy_intf.cpu_ns + aging_step t ~budget:t.config.aging_regions_per_step;
    decr guard
  done

let direct_reclaim t ~want =
  let stats = Policy_intf.fresh_stats () in
  shrink t ~want ~force:false stats;
  if stats.Policy_intf.freed = 0 && (t.aging_active || t.aging_requested) then begin
    finish_aging_synchronously t stats;
    shrink t ~want ~force:false stats
  end;
  if stats.Policy_intf.freed = 0 then begin
    (* The whole window may be freshly accessed; escalate rather than
       deadlock (the kernel's priority mechanism). *)
    request_aging t;
    finish_aging_synchronously t stats;
    shrink t ~want ~force:true stats
  end;
  Obs.Vmstat.add (vm t) Obs.Vmstat.pgscan_direct stats.Policy_intf.scanned;
  stats

let kswapd t () =
  let env = t.env in
  if env.Policy_intf.free_count () >= env.Policy_intf.high_watermark then
    Policy_intf.Sleep_until_woken
  else begin
    let stats = Policy_intf.fresh_stats () in
    shrink t ~want:t.config.evict_batch ~force:false stats;
    Obs.Vmstat.add (vm t) Obs.Vmstat.pgscan_kswapd stats.Policy_intf.scanned;
    if stats.Policy_intf.freed = 0 then
      if t.aging_active || t.aging_requested then
        (* Blocked on the walk: lend this kswapd step to it. *)
        Policy_intf.Work
          (stats.Policy_intf.cpu_ns
          + aging_step t ~budget:t.config.aging_regions_per_step)
      else begin
        request_aging t;
        Policy_intf.Sleep 50_000
      end
    else Policy_intf.Work (max stats.Policy_intf.cpu_ns 1_000)
  end

let aging_thread t () =
  (* Demand-driven, as in the kernel: a pass starts only when eviction
     finds the generation window too small (try_to_inc_max_seq). *)
  if t.aging_active || t.aging_requested then
    Policy_intf.Work (aging_step t ~budget:t.config.aging_regions_per_step)
  else Policy_intf.Sleep_until_woken

let kthreads t =
  [
    { Policy_intf.kname = "kswapd"; kstep = kswapd t };
    { Policy_intf.kname = "lru_gen_aging"; kstep = aging_thread t };
  ]

let stats t =
  [
    ("max_seq", t.max_seq);
    ("min_seq", t.min_seq);
    ("nr_gens", nr_gens t);
    ("aging_passes", t.aging_passes);
    ("regions_scanned", t.regions_scanned);
    ("regions_skipped", t.regions_skipped);
    ("ptes_scanned", t.ptes_scanned);
    ("aging_promotions", t.aging_promotions);
    ("evict_promotions", t.evict_promotions);
    ("spatial_promotions", t.spatial_promotions);
    ("evictions", t.evictions);
    ("refaults", t.refaults);
    ("forced_evictions", t.forced_evictions);
    ("tier_protected_saves", t.tier_protected_saves);
    ("stuck_full_window", t.stuck_full_window);
    ("protected_tiers", t.protected_tiers);
  ]

(* Per-generation occupancy keyed by age (0 = youngest) so series stay
   comparable across trials; gen14's 16k-generation window collapses
   into age buckets 0-7 plus an "older" remainder. *)
let gauges t =
  let ages = min (nr_gens t) 8 in
  let by_age =
    List.init ages (fun age ->
        ( Printf.sprintf "gen_age%d" age,
          float_of_int (gen_size t (t.max_seq - age)) ))
  in
  let older = ref 0 in
  for seq = t.min_seq to t.max_seq - ages do
    older := !older + gen_size t seq
  done;
  by_age
  @ [
      ("gen_older", float_of_int !older);
      ("nr_gens", float_of_int (nr_gens t));
      ("max_seq", float_of_int t.max_seq);
      ("min_seq", float_of_int t.min_seq);
      ("refaults", float_of_int t.refaults);
      ("protected_tiers", float_of_int t.protected_tiers);
      ("pid_error", Structures.Pid.last_error t.pid);
      ("pid_output", Structures.Pid.output t.pid);
    ]

let check_invariants t =
  Structures.Dlist.check_invariants t.lists;
  if t.min_seq > t.max_seq then failwith "Mglru: min_seq > max_seq";
  if nr_gens t > t.config.max_gens then failwith "Mglru: window exceeds max_gens";
  Array.iteri
    (fun pfn seq ->
      match Structures.Dlist.list_of t.lists pfn with
      | None -> if seq <> -1 then failwith "Mglru: detached frame has a generation"
      | Some l ->
        if seq < t.min_seq || seq > t.max_seq then
          failwith "Mglru: generation outside window";
        if l <> slot t seq then failwith "Mglru: frame on wrong generation list")
    t.gen_of
