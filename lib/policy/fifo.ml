type t = {
  env : Policy_intf.env;
  queue : Structures.Dlist.t; (* single list 0: head = newest *)
  mutable evictions : int;
  mutable refaults : int;
}

let policy_name = "fifo"

let create env =
  {
    env;
    queue = Structures.Dlist.create ~nodes:env.Policy_intf.total_frames ~lists:1;
    evictions = 0;
    refaults = 0;
  }

let on_page_mapped t ~pfn ~asid:_ ~vpn:_ ~refault ~file_backed:_ ~speculative:_ =
  if refault then t.refaults <- t.refaults + 1;
  Structures.Dlist.move_head t.queue ~list:0 ~node:pfn

let on_page_touched _t ~pfn:_ ~write:_ = ()

let evict_one t ~force (stats : Policy_intf.reclaim_stats) =
  let pfn = Structures.Dlist.pop_tail_node t.queue 0 in
  if pfn < 0 then false
  else begin
    stats.scanned <- stats.scanned + 1;
    stats.cpu_ns <- stats.cpu_ns + t.env.Policy_intf.costs.Mem.Costs.list_op_ns;
    Obs.Prof.charge_phase t.env.Policy_intf.prof Obs.Prof.Evict_scan
      t.env.Policy_intf.costs.Mem.Costs.list_op_ns;
    if Mem.Frame_table.is_mapped t.env.Policy_intf.frames pfn then
      if t.env.Policy_intf.evictable ~pfn ~force then begin
        t.env.Policy_intf.reclaim_page ~pfn;
        t.evictions <- t.evictions + 1;
        stats.freed <- stats.freed + 1
      end
      else
        (* Cgroup gate: re-queue at the head; FIFO order among
           evictable pages is preserved. *)
        Structures.Dlist.move_head t.queue ~list:0 ~node:pfn;
    true
  end

(* Rotation can make the queue cycle, so bound each pass.  The budget
   never binds when cgroups are off: every step then frees or drops a
   node, and the queue holds at most [total_frames] of them. *)
let shrink t ~want ~force stats =
  let budget = ref ((2 * t.env.Policy_intf.total_frames) + 8) in
  let continue_ = ref true in
  while stats.Policy_intf.freed < want && !continue_ && !budget > 0 do
    continue_ := evict_one t ~force stats;
    decr budget
  done

let direct_reclaim t ~want =
  let stats = Policy_intf.fresh_stats () in
  shrink t ~want ~force:false stats;
  if stats.Policy_intf.freed = 0 then
    (* Escalate past memory.low rather than report an empty pass. *)
    shrink t ~want ~force:true stats;
  stats

let kswapd t () =
  let env = t.env in
  if env.Policy_intf.free_count () >= env.Policy_intf.high_watermark then
    Policy_intf.Sleep_until_woken
  else begin
    let stats = Policy_intf.fresh_stats () in
    shrink t ~want:32 ~force:false stats;
    if stats.Policy_intf.freed = 0 then Policy_intf.Sleep_until_woken
    else Policy_intf.Work (max stats.Policy_intf.cpu_ns 500)
  end

let kthreads t = [ { Policy_intf.kname = "kswapd"; kstep = kswapd t } ]

let stats t = [ ("evictions", t.evictions); ("refaults", t.refaults) ]

let gauges t =
  [
    ("queue_len", float_of_int (Structures.Dlist.size t.queue 0));
    ("evictions", float_of_int t.evictions);
    ("refaults", float_of_int t.refaults);
  ]

let check_invariants t = Structures.Dlist.check_invariants t.queue
