(** Policy registry: construct any policy by its experiment name.

    The names match the paper's figure legends: ["clock"], ["mglru"],
    ["gen14"], ["scan-all"], ["scan-none"], ["scan-rand"], plus the
    extra baselines ["fifo"], ["random"], ["lru-exact"] and the
    fault-isolation probe ["crash-test"]. *)

type spec =
  | Clock
  | Mglru_default
  | Gen14
  | Scan_all
  | Scan_none
  | Scan_rand of float
  | Mglru_custom of Mglru.config
  | Fifo
  | Random
  | Lru_exact
  | Crash_test
      (** deliberately raises at construction — exercises the runner's
          failure isolation (a crash-test trial must surface as an
          explicit "failed" cell while the rest of a sweep completes);
          excluded from {!all_paper_specs} *)

val name : spec -> string
(** Stable display/CLI name.  Not injective: every [Mglru_custom] and
    every [Scan_rand] probability shares one display name. *)

val cache_key : spec -> string
(** A stable string that {e is} injective over specs (parameters and
    custom-config fields included), usable as a memo-table key.  Unlike
    structural hashing of a spec, this stays total even if a future
    config variant carries closures. *)

val of_name : string -> spec option
(** Inverse of {!name} for the CLI names; [Scan_rand] parses as
    ["scan-rand"] with probability 0.5. *)

val all_paper_specs : spec list
(** The six configurations the paper evaluates, in figure order. *)

val create : spec -> Policy_intf.env -> Policy_intf.packed

val known_names : string list
