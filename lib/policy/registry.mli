(** Policy registry: construct any policy by its experiment name, and
    describe the whole population through versioned descriptors.

    The names match the paper's figure legends: ["clock"], ["mglru"],
    ["gen14"], ["scan-all"], ["scan-none"], ["scan-rand"], plus the
    extra baselines ["fifo"], ["random"], ["lru-exact"], the
    fault-isolation probe ["crash-test"], and the {!Hooks.V1} guest
    policies ["s3-fifo"], ["sieve"], ["perceptron"] hosted behind
    {!Guest_host.Host}. *)

type spec =
  | Clock
  | Mglru_default
  | Gen14
  | Scan_all
  | Scan_none
  | Scan_rand of float
  | Mglru_custom of Mglru.config
  | Fifo
  | Random
  | Lru_exact
  | Crash_test
      (** deliberately raises at construction — exercises the runner's
          failure isolation (a crash-test trial must surface as an
          explicit "failed" cell while the rest of a sweep completes);
          excluded from {!all_paper_specs} *)
  | S3_fifo  (** guest: S3-FIFO behind the V1 hook API *)
  | Sieve  (** guest: SIEVE behind the V1 hook API *)
  | Perceptron  (** guest: online perceptron behind the V1 hook API *)

val name : spec -> string
(** Stable display/CLI name.  Not injective: every [Mglru_custom] and
    every [Scan_rand] probability shares one display name. *)

val cache_key : spec -> string
(** A stable string that {e is} injective over specs (parameters and
    custom-config fields included), usable as a memo-table key.  Unlike
    structural hashing of a spec, this stays total even if a future
    config variant carries closures. *)

val of_name : string -> spec option
(** Inverse of {!name} for the CLI names; [Scan_rand] parses as
    ["scan-rand"] with probability 0.5. *)

val all_paper_specs : spec list
(** The six configurations the paper evaluates, in figure order. *)

val guest_specs : spec list
(** The hook-API guests, in scoreboard order. *)

val create : spec -> Policy_intf.env -> Policy_intf.packed

val known_names : string list

(** {1 Versioned descriptors}

    The descriptor surface replaces ad-hoc string lookup as the way
    tools enumerate policies: every runnable name plus the Belady
    oracle, each tagged with its kind and the hook-API version guests
    were compiled against. *)

type kind =
  | Builtin  (** privileged [Policy_intf.S] implementation *)
  | Guest of int  (** hook-API guest; payload is its API version *)
  | Oracle  (** offline reference, not constructible by {!create} *)

type descriptor = {
  d_name : string;
  d_kind : kind;
  d_doc : string;
  d_knobs : (string * string) list;  (** default knob settings, for display *)
}

val describe : spec -> descriptor

val descriptors : descriptor list
(** One per CLI name (in {!known_names} order) plus the ["belady"]
    oracle entry. *)

val kind_label : kind -> string
(** ["builtin"], ["guest/v1"], ["oracle"] — stable display strings. *)

val suggest : string -> string option
(** Nearest descriptor name within Levenshtein distance 3 of an unknown
    name, for "did you mean" errors. *)
