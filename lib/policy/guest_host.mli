(** Host adapter: run a {!Hooks.V1} guest behind the privileged
    {!Policy_intf.S} contract.

    The adapter is the trust boundary of the policy SDK.  It negotiates
    the hook API version at construction (an incompatible guest fails
    loudly through the registry's failure-isolation path), performs the
    accessed-bit scan that feeds [on_access_sample], validates every
    [evict_request] nomination against the frame table and the cgroup
    [evictable] gate before freeing anything, re-injects rejected
    candidates back into the guest, and keeps a linear failsafe sweep so
    forward progress never depends on guest quality.

    Every guest interaction is priced ([Mem.Costs.hook_dispatch_ns] per
    dispatch plus metered context queries) and charged into the same CPU
    channels builtin policies use, attributed to the [Hook_*] phases of
    {!Obs.Prof}: direct-reclaim dispatches flow through
    [reclaim_stats.cpu_ns], background-scan dispatches through the
    ["guest_scan"] kthread's [Work] steps, and fault-path dispatches are
    accrued as a debt flushed into the next of either. *)

module Host (G : Hooks.V1.GUEST) : Policy_intf.S
