(* LearnedCache-style perceptron eviction as a Hooks.V1 guest.

   A single online perceptron classifies "safe to evict" over a small
   binary feature vector (backing type, refault history, sampled access
   frequency, age, protection history).  Candidates are drawn FIFO from
   the tail; pages the perceptron predicts live are rotated back to the
   head.  Training needs no oracle: every eviction parks the victim's
   feature vector in a ghost ring keyed by page identity.  A ghost hit
   on a later fault means the eviction was a mistake (the page came
   back) — weights move toward "keep" for those features; a ghost entry
   that ages out of the ring without refaulting confirms the eviction —
   weights move toward "evict".  With zero weights the score ties at 0
   and everything is evictable, so the policy starts as plain FIFO and
   specializes as evidence arrives. *)

module V1 = Hooks.V1

let nfeat = 7
let weight_cap = 64

(* Feature indices (bit positions in a packed mask). *)
let f_bias = 0
let f_file = 1
let f_refault = 2
let f_freq1 = 3
let f_freq2 = 4
let f_old = 5
let f_reinserted = 6

let old_age_ticks = 8
let refault_horizon_ticks = 64

type t = {
  queue : Structures.Dlist.t; (* single list 0: head = newest *)
  resident : bool array;
  file_backed : bool array;
  refaulted : bool array;
  reinserted : bool array;
  freq : int array;
  birth : int array; (* scan tick at insertion *)
  key_of : int array;
  weights : int array;
  ghost_ring : int array; (* keys, -1 = empty *)
  ghost_tbl : (int, int * int) Hashtbl.t; (* key -> (feature mask, tick) *)
  mutable ghost_pos : int;
  mutable tick : int;
  mutable inserts : int;
  mutable evictions : int;
  mutable rotations : int;
  mutable ghost_hits : int;
  mutable trained_keep : int; (* mistake updates: should have kept *)
  mutable trained_evict : int; (* confirmations: eviction was right *)
}

let name = "perceptron"
let api_version = 1

let init (ctx : V1.ctx) =
  let n = max 1 ctx.V1.total_frames in
  {
    queue = Structures.Dlist.create ~nodes:n ~lists:1;
    resident = Array.make n false;
    file_backed = Array.make n false;
    refaulted = Array.make n false;
    reinserted = Array.make n false;
    freq = Array.make n 0;
    birth = Array.make n 0;
    key_of = Array.make n (-1);
    weights = Array.make nfeat 0;
    ghost_ring = Array.make n (-1);
    ghost_tbl = Hashtbl.create 64;
    ghost_pos = 0;
    tick = 0;
    inserts = 0;
    evictions = 0;
    rotations = 0;
    ghost_hits = 0;
    trained_keep = 0;
    trained_evict = 0;
  }

let feature_mask t pfn =
  let m = ref (1 lsl f_bias) in
  if t.file_backed.(pfn) then m := !m lor (1 lsl f_file);
  if t.refaulted.(pfn) then m := !m lor (1 lsl f_refault);
  if t.freq.(pfn) >= 1 then m := !m lor (1 lsl f_freq1);
  if t.freq.(pfn) >= 2 then m := !m lor (1 lsl f_freq2);
  if t.tick - t.birth.(pfn) >= old_age_ticks then m := !m lor (1 lsl f_old);
  if t.reinserted.(pfn) then m := !m lor (1 lsl f_reinserted);
  !m

let score t mask =
  let s = ref 0 in
  for i = 0 to nfeat - 1 do
    if mask land (1 lsl i) <> 0 then s := !s + t.weights.(i)
  done;
  !s

let clamp w = max (-weight_cap) (min weight_cap w)

let train t mask delta =
  for i = 0 to nfeat - 1 do
    if mask land (1 lsl i) <> 0 then
      t.weights.(i) <- clamp (t.weights.(i) + delta)
  done

(* Retire the ring slot's current occupant.  Still being in the table
   means it never refaulted inside the ring's lifetime: the eviction
   decision is confirmed correct. *)
let ghost_insert t key mask =
  if key >= 0 then begin
    let old = t.ghost_ring.(t.ghost_pos) in
    if old >= 0 then begin
      match Hashtbl.find_opt t.ghost_tbl old with
      | Some (old_mask, _) ->
        t.trained_evict <- t.trained_evict + 1;
        train t old_mask 1;
        Hashtbl.remove t.ghost_tbl old
      | None -> ()
    end;
    t.ghost_ring.(t.ghost_pos) <- key;
    Hashtbl.replace t.ghost_tbl key (mask, t.tick);
    t.ghost_pos <- (t.ghost_pos + 1) mod Array.length t.ghost_ring
  end

let drop t pfn =
  Structures.Dlist.remove t.queue ~node:pfn;
  t.resident.(pfn) <- false

let on_fault t (f : V1.fault) =
  let pfn = f.V1.pfn in
  if pfn >= 0 && pfn < Array.length t.resident then begin
    if t.resident.(pfn) then drop t pfn (* stale: host reused the frame *);
    (* A quick return of a page we evicted is the mistake signal. *)
    (match Hashtbl.find_opt t.ghost_tbl f.V1.key with
    | Some (mask, evicted_at) ->
      Hashtbl.remove t.ghost_tbl f.V1.key;
      if t.tick - evicted_at <= refault_horizon_ticks then begin
        t.ghost_hits <- t.ghost_hits + 1;
        t.trained_keep <- t.trained_keep + 1;
        train t mask (-1)
      end
    | None -> ());
    t.inserts <- t.inserts + 1;
    t.file_backed.(pfn) <- f.V1.file_backed;
    t.refaulted.(pfn) <- f.V1.refault;
    t.reinserted.(pfn) <- f.V1.reinserted;
    t.freq.(pfn) <- 0;
    t.birth.(pfn) <- t.tick;
    t.key_of.(pfn) <- f.V1.key;
    Structures.Dlist.push_head t.queue ~list:0 ~node:pfn;
    t.resident.(pfn) <- true
  end

let on_access_sample t (s : V1.sample) =
  let pfn = s.V1.pfn in
  if pfn >= 0 && pfn < Array.length t.resident && t.resident.(pfn) then
    t.freq.(pfn) <- min 3 (t.freq.(pfn) + 1)

let on_scan_tick t = t.tick <- t.tick + 1

let evict_request t ~want =
  let out = ref [] in
  let count = ref 0 in
  let limit = ref (max (4 * want) 32) in
  let continue_ = ref true in
  while !count < want && !continue_ && !limit > 0 do
    decr limit;
    match Structures.Dlist.pop_tail t.queue 0 with
    | None -> continue_ := false
    | Some pfn ->
      let mask = feature_mask t pfn in
      if score t mask >= 0 then begin
        t.resident.(pfn) <- false;
        t.evictions <- t.evictions + 1;
        ghost_insert t t.key_of.(pfn) mask;
        out := pfn :: !out;
        incr count
      end
      else begin
        (* Predicted live: rotate to the head, demoting its sampled
           frequency so a page cannot ride one burst forever. *)
        t.rotations <- t.rotations + 1;
        t.freq.(pfn) <- max 0 (t.freq.(pfn) - 1);
        Structures.Dlist.push_head t.queue ~list:0 ~node:pfn
      end
  done;
  (* Liveness fallback: if every examined page scored "keep", evict the
     current tail anyway — a cache that refuses to evict is wrong. *)
  if !count = 0 then begin
    match Structures.Dlist.pop_tail t.queue 0 with
    | None -> ()
    | Some pfn ->
      t.resident.(pfn) <- false;
      t.evictions <- t.evictions + 1;
      ghost_insert t t.key_of.(pfn) (feature_mask t pfn);
      out := [ pfn ]
  end;
  List.rev !out

let stats t =
  [
    ("inserts", t.inserts);
    ("evictions", t.evictions);
    ("rotations", t.rotations);
    ("ghost_hits", t.ghost_hits);
    ("trained_keep", t.trained_keep);
    ("trained_evict", t.trained_evict);
  ]

let gauges t =
  [
    ("queue_len", float_of_int (Structures.Dlist.size t.queue 0));
    ("w_bias", float_of_int t.weights.(f_bias));
    ("w_freq1", float_of_int t.weights.(f_freq1));
    ("w_old", float_of_int t.weights.(f_old));
    ("ghost_keys", float_of_int (Hashtbl.length t.ghost_tbl));
  ]
