(* Host adapter: runs a Hooks.V1 guest behind the privileged
   Policy_intf.S contract.

   The host keeps every capability the hook API withholds: it owns the
   accessed-bit scanner, validates each eviction nomination against the
   frame table and the cgroup [evictable] gate before calling
   [reclaim_page], and prices every guest interaction (dispatch
   trampoline + metered context queries) into the same CPU channels
   builtins use — [reclaim_stats.cpu_ns] for direct reclaim, kthread
   [Work] for background scanning — tagging it with the Hook_* profiler
   phases.  Fault-path dispatches have no CPU channel of their own, so
   their cost is accrued as a debt and flushed into the next channel. *)

module V1 = Hooks.V1

let h_fault = 0
let h_access = 1
let h_tick = 2
let h_evict = 3

(* Simulated-time gap between accessed-bit scan batches; mirrors the
   cadence of a kswapd-style walker rather than a hot loop. *)
let scan_interval_ns = 2_000_000

let page_key ~asid ~vpn = (asid lsl 40) lor vpn

module Host (G : V1.GUEST) = struct
  type t = {
    env : Policy_intf.env;
    guest : G.t;
    meter : V1.meter;
    hook_calls : int array; (* indexed by h_* *)
    hook_ns : int array;
    mutable deferred_fault_ns : int;
    mutable offered : int;
    mutable accepted : int;
    mutable rejected : int; (* mapped but gate-refused; re-injected *)
    mutable invalid : int; (* out of range / unmapped / stale *)
    mutable fallback_freed : int;
    mutable samples : int;
    mutable ticks : int;
    mutable scan_cursor : int;
    mutable fallback_cursor : int;
    mutable next_scan_ns : int;
  }

  let policy_name = G.name

  let create (env : Policy_intf.env) =
    (match V1.negotiate ~guest_version:G.api_version with
    | Ok _ -> ()
    | Error msg -> failwith (G.name ^ ": " ^ msg));
    let meter = V1.fresh_meter () in
    let frames = env.Policy_intf.frames in
    let n = env.Policy_intf.total_frames in
    let page ~pfn =
      meter.V1.page_queries <- meter.V1.page_queries + 1;
      if pfn < 0 || pfn >= n then None
      else
        match Mem.Frame_table.owner frames pfn with
        | None -> None
        | Some (asid, vpn) ->
          let pte = Mem.Page_table.get (env.Policy_intf.page_table_of asid) vpn in
          if not (Mem.Pte.present pte) then None
          else
            Some
              {
                V1.accessed = Mem.Pte.accessed pte;
                dirty = Mem.Pte.dirty pte;
                file_backed = Mem.Pte.file_backed pte;
              }
    in
    let evictable_hint ~pfn =
      meter.V1.evictable_queries <- meter.V1.evictable_queries + 1;
      pfn >= 0 && pfn < n && env.Policy_intf.evictable ~pfn ~force:false
    in
    let ctx =
      {
        V1.now = env.Policy_intf.now;
        free_count = env.Policy_intf.free_count;
        total_frames = n;
        low_watermark = env.Policy_intf.low_watermark;
        high_watermark = env.Policy_intf.high_watermark;
        page;
        evictable_hint;
        rand = (fun bound -> Engine.Rng.int env.Policy_intf.rng bound);
      }
    in
    (* Queries made during [init] stay in the meter and fold into the
       first dispatch's price — setup is not free either. *)
    {
      env;
      guest = G.init ctx;
      meter;
      hook_calls = Array.make 4 0;
      hook_ns = Array.make 4 0;
      deferred_fault_ns = 0;
      offered = 0;
      accepted = 0;
      rejected = 0;
      invalid = 0;
      fallback_freed = 0;
      samples = 0;
      ticks = 0;
      scan_cursor = 0;
      fallback_cursor = 0;
      next_scan_ns = 0;
    }

  let query_ns t =
    V1.drain_meter t.meter
      ~page_ns:t.env.Policy_intf.costs.Mem.Costs.pte_scan_ns
      ~evictable_ns:t.env.Policy_intf.costs.Mem.Costs.list_op_ns

  (* Price one hook dispatch: trampoline plus whatever context queries
     the guest made inside it. *)
  let dispatched t idx f =
    let r = f () in
    let ns = t.env.Policy_intf.costs.Mem.Costs.hook_dispatch_ns + query_ns t in
    t.hook_calls.(idx) <- t.hook_calls.(idx) + 1;
    t.hook_ns.(idx) <- t.hook_ns.(idx) + ns;
    (r, ns)

  let add t (stats : Policy_intf.reclaim_stats) ~phase ns =
    stats.Policy_intf.cpu_ns <- stats.Policy_intf.cpu_ns + ns;
    Obs.Prof.charge t.env.Policy_intf.prof ~phase ns

  let flush_deferred t stats =
    if t.deferred_fault_ns > 0 then begin
      add t stats ~phase:Obs.Prof.Hook_fault t.deferred_fault_ns;
      t.deferred_fault_ns <- 0
    end

  let fault_hook t ~pfn ~key ~refault ~file_backed ~speculative ~reinserted =
    let (), ns =
      dispatched t h_fault (fun () ->
          G.on_fault t.guest
            { V1.pfn; key; refault; file_backed; speculative; reinserted })
    in
    ns

  let on_page_mapped t ~pfn ~asid ~vpn ~refault ~file_backed ~speculative =
    let ns =
      fault_hook t ~pfn ~key:(page_key ~asid ~vpn) ~refault ~file_backed
        ~speculative ~reinserted:false
    in
    t.deferred_fault_ns <- t.deferred_fault_ns + ns

  let on_page_touched _t ~pfn:_ ~write:_ = ()

  let reinject t stats pfn =
    match Mem.Frame_table.owner t.env.Policy_intf.frames pfn with
    | None -> ()
    | Some (asid, vpn) ->
      let pte = Mem.Page_table.get (t.env.Policy_intf.page_table_of asid) vpn in
      let ns =
        fault_hook t ~pfn ~key:(page_key ~asid ~vpn) ~refault:false
          ~file_backed:(Mem.Pte.file_backed pte) ~speculative:false
          ~reinserted:true
      in
      add t stats ~phase:Obs.Prof.Hook_fault ns

  let evict_round t ~want ~force (stats : Policy_intf.reclaim_stats) =
    let cands, ns = dispatched t h_evict (fun () -> G.evict_request t.guest ~want) in
    add t stats ~phase:Obs.Prof.Hook_evict ns;
    List.iter
      (fun pfn ->
        t.offered <- t.offered + 1;
        stats.Policy_intf.scanned <- stats.Policy_intf.scanned + 1;
        (* Host validation is real work: one list op per nomination. *)
        add t stats ~phase:Obs.Prof.Hook_evict
          t.env.Policy_intf.costs.Mem.Costs.list_op_ns;
        if
          pfn < 0
          || pfn >= t.env.Policy_intf.total_frames
          || not (Mem.Frame_table.is_mapped t.env.Policy_intf.frames pfn)
        then t.invalid <- t.invalid + 1
        else if t.env.Policy_intf.evictable ~pfn ~force then begin
          t.env.Policy_intf.reclaim_page ~pfn;
          t.accepted <- t.accepted + 1;
          stats.Policy_intf.freed <- stats.Policy_intf.freed + 1
        end
        else begin
          t.rejected <- t.rejected + 1;
          reinject t stats pfn
        end)
      cands

  (* Failsafe: forward progress must not depend on guest quality.  When
     the guest nominates nothing freeable, sweep the frame table
     linearly (priced like a pte scan) and free evictable frames
     directly.  The guest's stale entries wash out later as invalid
     nominations. *)
  let host_fallback t ~want ~force (stats : Policy_intf.reclaim_stats) =
    let n = t.env.Policy_intf.total_frames in
    let examined = ref 0 in
    while stats.Policy_intf.freed < want && !examined < n do
      let pfn = t.fallback_cursor in
      t.fallback_cursor <- (t.fallback_cursor + 1) mod n;
      incr examined;
      stats.Policy_intf.scanned <- stats.Policy_intf.scanned + 1;
      stats.Policy_intf.pte_scans <- stats.Policy_intf.pte_scans + 1;
      add t stats ~phase:Obs.Prof.Evict_scan
        t.env.Policy_intf.costs.Mem.Costs.pte_scan_ns;
      if
        Mem.Frame_table.is_mapped t.env.Policy_intf.frames pfn
        && t.env.Policy_intf.evictable ~pfn ~force
      then begin
        t.env.Policy_intf.reclaim_page ~pfn;
        t.fallback_freed <- t.fallback_freed + 1;
        stats.Policy_intf.freed <- stats.Policy_intf.freed + 1
      end
    done

  let direct_reclaim t ~want =
    let stats = Policy_intf.fresh_stats () in
    flush_deferred t stats;
    let rounds = ref 0 in
    let progress = ref true in
    while stats.Policy_intf.freed < want && !progress && !rounds < 8 do
      let before = stats.Policy_intf.freed in
      evict_round t ~want:(want - before) ~force:false stats;
      progress := stats.Policy_intf.freed > before;
      incr rounds
    done;
    if stats.Policy_intf.freed = 0 then evict_round t ~want ~force:true stats;
    if stats.Policy_intf.freed = 0 then
      host_fallback t ~want:(max want 1) ~force:true stats;
    Obs.Vmstat.add t.env.Policy_intf.vmstat Obs.Vmstat.pgscan_direct
      stats.Policy_intf.scanned;
    stats

  let sample_batch t (stats : Policy_intf.reclaim_stats) =
    let env = t.env in
    let n = env.Policy_intf.total_frames in
    if n > 0 then begin
      let batch = min n (max 64 (n / 32)) in
      for _ = 1 to batch do
        let pfn = t.scan_cursor in
        t.scan_cursor <- (t.scan_cursor + 1) mod n;
        stats.Policy_intf.pte_scans <- stats.Policy_intf.pte_scans + 1;
        add t stats ~phase:Obs.Prof.Pte_scan
          env.Policy_intf.costs.Mem.Costs.pte_scan_ns;
        match Mem.Frame_table.owner env.Policy_intf.frames pfn with
        | None -> ()
        | Some (asid, vpn) ->
          let pt = env.Policy_intf.page_table_of asid in
          let pte = Mem.Page_table.get pt vpn in
          if Mem.Pte.present pte && Mem.Pte.accessed pte then begin
            Mem.Page_table.set pt vpn (Mem.Pte.clear_accessed pte);
            t.samples <- t.samples + 1;
            let (), ns =
              dispatched t h_access (fun () ->
                  G.on_access_sample t.guest
                    { V1.pfn; dirty = Mem.Pte.dirty pte })
            in
            add t stats ~phase:Obs.Prof.Hook_access ns
          end
      done
    end;
    t.ticks <- t.ticks + 1;
    let (), ns = dispatched t h_tick (fun () -> G.on_scan_tick t.guest) in
    add t stats ~phase:Obs.Prof.Hook_tick ns

  let guest_scan t () =
    let env = t.env in
    let now = env.Policy_intf.now () in
    let pressure =
      env.Policy_intf.free_count () < env.Policy_intf.low_watermark
    in
    if (not pressure) && t.deferred_fault_ns = 0 && now < t.next_scan_ns then
      Policy_intf.Sleep (t.next_scan_ns - now)
    else begin
      let stats = Policy_intf.fresh_stats () in
      flush_deferred t stats;
      if now >= t.next_scan_ns then begin
        sample_batch t stats;
        t.next_scan_ns <- now + scan_interval_ns
      end;
      if pressure then begin
        evict_round t ~want:32 ~force:false stats;
        if stats.Policy_intf.freed = 0 then
          evict_round t ~want:32 ~force:true stats
      end;
      (* The guest's background walker is its kswapd: candidate
         examinations on this thread count as kswapd scan work. *)
      Obs.Vmstat.add env.Policy_intf.vmstat Obs.Vmstat.pgscan_kswapd
        stats.Policy_intf.scanned;
      Policy_intf.Work (max stats.Policy_intf.cpu_ns 500)
    end

  let kthreads t = [ { Policy_intf.kname = "guest_scan"; kstep = guest_scan t } ]

  let stats t =
    let hook name idx =
      [ (name ^ "_calls", t.hook_calls.(idx)); (name ^ "_ns", t.hook_ns.(idx)) ]
    in
    hook "hook_fault" h_fault
    @ hook "hook_access" h_access
    @ hook "hook_tick" h_tick
    @ hook "hook_evict" h_evict
    @ [
        ("evict_offered", t.offered);
        ("evict_accepted", t.accepted);
        ("evict_rejected", t.rejected);
        ("evict_invalid", t.invalid);
        ("host_fallback_freed", t.fallback_freed);
        ("access_samples", t.samples);
        ("scan_ticks", t.ticks);
      ]
    @ List.map (fun (k, v) -> ("guest." ^ k, v)) (G.stats t.guest)

  let gauges t =
    ("hook_ns_total", float_of_int (Array.fold_left ( + ) 0 t.hook_ns))
    :: ("hook_calls_total", float_of_int (Array.fold_left ( + ) 0 t.hook_calls))
    :: ("deferred_fault_ns", float_of_int t.deferred_fault_ns)
    :: List.map (fun (k, v) -> ("guest." ^ k, v)) (G.gauges t.guest)

  let check_invariants t =
    if t.deferred_fault_ns < 0 then failwith "guest_host: negative deferred ns";
    Array.iter
      (fun ns -> if ns < 0 then failwith "guest_host: negative hook ns")
      t.hook_ns;
    if t.accepted + t.fallback_freed < 0 then
      failwith "guest_host: negative eviction counters"
end
