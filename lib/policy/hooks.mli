(** Versioned, capability-restricted hook API for guest eviction
    policies.

    {!Policy_intf.S} is the privileged contract: a builtin policy
    (Clock, MG-LRU) holds the frame table, walks raw page tables, and
    calls [reclaim_page] itself.  Guests get none of that.  Following
    the cachebpf / LearnedCache line of work, a guest programs against a
    narrow, versioned surface of exactly four hooks, and the host — the
    {!Guest_host.Host} adapter — retains every dangerous capability:

    - the guest never sees [reclaim_page]; {!V1.GUEST.evict_request}
      only {e nominates} candidate PFNs, and the host validates each one
      (in range, still mapped, and past the cgroup / [memory.low]
      [evictable] gate) before freeing it;
    - the guest never touches raw page tables; {!V1.ctx.page} returns a
      read-only {!V1.page_info} snapshot, and the accessed-bit stream
      reaches it pre-digested through {!V1.GUEST.on_access_sample};
    - every hook dispatch and every context query is priced through
      {!Mem.Costs} ([hook_dispatch_ns], plus per-query costs metered by
      {!V1.meter}) and attributed to the [Hook_*] phases of
      {!Obs.Prof}, so guest overhead shows up in results and profiles
      exactly like kernel reclaim work — never for free.

    Version negotiation is explicit: a guest declares
    {!V1.GUEST.api_version} and the host refuses construction unless
    {!V1.negotiate} succeeds, so an incompatible guest fails loudly at
    registry-construction time (surfacing through the runner's failure
    isolation), not silently mid-run. *)

module V1 : sig
  val version : int
  (** This revision of the hook surface: [1]. *)

  type page_info = { accessed : bool; dirty : bool; file_backed : bool }
  (** Read-only per-page metadata snapshot.  There is deliberately no
      way back from a [page_info] to a PTE. *)

  type fault = {
    pfn : int;          (** frame just mapped *)
    key : int;          (** stable identity of the backing virtual page,
                            opaque to the guest; survives eviction, so
                            ghost structures (S3-FIFO, perceptron
                            training) key on it rather than on the
                            recycled [pfn] *)
    refault : bool;     (** contents came back from swap *)
    file_backed : bool;
    speculative : bool; (** readahead, not a demand access *)
    reinserted : bool;  (** host re-injection: the guest nominated this
                            frame for eviction but the host rejected it
                            (cgroup-protected); the guest must track it
                            again *)
  }

  type sample = { pfn : int; dirty : bool }
  (** One element of the accessed-bit stream: the host's scanner found
      this frame's A bit set (and cleared it). *)

  type meter = { mutable page_queries : int; mutable evictable_queries : int }
  (** Context-query counters the host converts to nanoseconds when the
      enclosing hook dispatch is priced. *)

  val fresh_meter : unit -> meter

  val drain_meter : meter -> page_ns:int -> evictable_ns:int -> int
  (** Convert and zero the counters; returns the owed nanoseconds. *)

  type ctx = {
    now : unit -> int;            (** simulated time *)
    free_count : unit -> int;
    total_frames : int;
    low_watermark : int;
    high_watermark : int;
    page : pfn:int -> page_info option;
        (** metadata handle; [None] when out of range or unmapped.
            Priced per query. *)
    evictable_hint : pfn:int -> bool;
        (** advisory preview of the host's [evictable] gate; the host
            re-checks every nomination regardless.  Priced per query. *)
    rand : int -> int;
        (** [rand n] is uniform in [0, n), drawn from the trial's
            deterministic stream *)
  }
  (** Everything a guest may observe.  All capabilities are queries;
      nothing here mutates machine state. *)

  module type GUEST = sig
    type t

    val name : string

    val api_version : int
    (** Must equal {!version}; checked by {!negotiate} at construction. *)

    val init : ctx -> t

    val on_fault : t -> fault -> unit
    (** A page was mapped (demand fault, readahead, or host
        re-injection).  A [fault] for a key or pfn the guest already
        tracks means its prior entry is stale — the host may have
        reclaimed the frame behind the guest's back (failsafe sweep) and
        reused it — and must be treated as a fresh insertion. *)

    val on_access_sample : t -> sample -> unit
    (** Fed from the accessed-bit stream by the host's periodic scan. *)

    val on_scan_tick : t -> unit
    (** End of one host scan batch; a coarse clock for aging logic. *)

    val evict_request : t -> want:int -> int list
    (** Nominate up to roughly [want] candidate PFNs, best victims
        first.  Ownership transfers: the guest must forget nominated
        frames; the host re-injects any rejected-but-still-mapped frame
        via {!on_fault} with [reinserted = true].  Candidates that are
        invalid (out of range, unmapped, stale) are discarded without
        effect, which is also how stale entries for frames the host
        reclaimed itself eventually wash out. *)

    val stats : t -> (string * int) list

    val gauges : t -> (string * float) list
    (** Non-empty; same contract as {!Policy_intf.S.gauges}. *)
  end

  val negotiate : guest_version:int -> (int, string) result
  (** [Ok version] when the host speaks the guest's declared version. *)
end

val current_version : int
(** Newest hook API revision this host implements (= {!V1.version}). *)
