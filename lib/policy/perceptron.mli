(** LearnedCache-style online perceptron eviction as a guest policy.

    Classifies "safe to evict" over binary page features (backing type,
    refault history, sampled frequency, age, protection history),
    trained online with no oracle: ghost-hit refaults punish mistaken
    evictions, ghost entries that age out quietly confirm good ones.
    Runs entirely behind {!Hooks.V1}. *)

include Hooks.V1.GUEST
