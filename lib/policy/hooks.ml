(* Versioned guest hook API.  See hooks.mli for the contract; this file
   is deliberately dependency-free so a guest policy compiles against
   types only and can never reach machine internals. *)

module V1 = struct
  let version = 1

  type page_info = { accessed : bool; dirty : bool; file_backed : bool }

  type fault = {
    pfn : int;
    key : int;
    refault : bool;
    file_backed : bool;
    speculative : bool;
    reinserted : bool;
  }

  type sample = { pfn : int; dirty : bool }

  type meter = { mutable page_queries : int; mutable evictable_queries : int }

  let fresh_meter () = { page_queries = 0; evictable_queries = 0 }

  let drain_meter m ~page_ns ~evictable_ns =
    let ns = (m.page_queries * page_ns) + (m.evictable_queries * evictable_ns) in
    m.page_queries <- 0;
    m.evictable_queries <- 0;
    ns

  type ctx = {
    now : unit -> int;
    free_count : unit -> int;
    total_frames : int;
    low_watermark : int;
    high_watermark : int;
    page : pfn:int -> page_info option;
    evictable_hint : pfn:int -> bool;
    rand : int -> int;
  }

  module type GUEST = sig
    type t

    val name : string
    val api_version : int
    val init : ctx -> t
    val on_fault : t -> fault -> unit
    val on_access_sample : t -> sample -> unit
    val on_scan_tick : t -> unit
    val evict_request : t -> want:int -> int list
    val stats : t -> (string * int) list
    val gauges : t -> (string * float) list
  end

  let negotiate ~guest_version =
    if guest_version = version then Ok version
    else
      Error
        (Printf.sprintf
           "guest requires hook API v%d, host speaks only v%d" guest_version
           version)
end

let current_version = V1.version
