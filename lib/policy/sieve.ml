(* SIEVE (Zhang et al., NSDI'24) as a Hooks.V1 guest: one FIFO with a
   visited bit and a hand that moves from tail toward head, sparing
   visited pages (clearing the bit in place — survivors are NOT moved,
   which is the whole trick) and evicting the first unvisited one.  The
   visited bit is fed by the host's accessed-bit sample stream. *)

module V1 = Hooks.V1

type t = {
  queue : Structures.Dlist.t; (* single list 0: head = newest *)
  resident : bool array;
  visited : bool array;
  mutable hand : int; (* node id, or -1 = restart from tail *)
  mutable inserts : int;
  mutable evictions : int;
  mutable spared : int;
  mutable reinserts : int;
}

let name = "sieve"
let api_version = 1

let init (ctx : V1.ctx) =
  let n = max 1 ctx.V1.total_frames in
  {
    queue = Structures.Dlist.create ~nodes:n ~lists:1;
    resident = Array.make n false;
    visited = Array.make n false;
    hand = -1;
    inserts = 0;
    evictions = 0;
    spared = 0;
    reinserts = 0;
  }

(* Step the hand one node toward the head; -1 wraps to the tail on the
   next use. *)
let advance t pfn =
  t.hand <-
    (match Structures.Dlist.next_towards_head t.queue pfn with
    | Some next -> next
    | None -> -1)

let drop t pfn =
  if t.hand = pfn then advance t pfn;
  Structures.Dlist.remove t.queue ~node:pfn;
  t.resident.(pfn) <- false

let on_fault t (f : V1.fault) =
  let pfn = f.V1.pfn in
  if pfn >= 0 && pfn < Array.length t.resident then begin
    if t.resident.(pfn) then drop t pfn (* stale: host reused the frame *);
    t.inserts <- t.inserts + 1;
    if f.V1.reinserted then t.reinserts <- t.reinserts + 1;
    Structures.Dlist.push_head t.queue ~list:0 ~node:pfn;
    t.resident.(pfn) <- true;
    (* Reinserted (gate-protected) pages start visited so the hand does
       not nominate them again immediately. *)
    t.visited.(pfn) <- f.V1.reinserted
  end

let on_access_sample t (s : V1.sample) =
  let pfn = s.V1.pfn in
  if pfn >= 0 && pfn < Array.length t.resident && t.resident.(pfn) then
    t.visited.(pfn) <- true

let on_scan_tick _t = ()

let evict_request t ~want =
  let out = ref [] in
  let count = ref 0 in
  let budget = ref ((2 * Array.length t.resident) + 8) in
  let continue_ = ref true in
  while !count < want && !continue_ && !budget > 0 do
    decr budget;
    let cur =
      if t.hand >= 0 && t.resident.(t.hand) then Some t.hand
      else Structures.Dlist.tail t.queue 0
    in
    match cur with
    | None -> continue_ := false
    | Some pfn ->
      if t.visited.(pfn) then begin
        t.visited.(pfn) <- false;
        t.spared <- t.spared + 1;
        advance t pfn
      end
      else begin
        advance t pfn;
        Structures.Dlist.remove t.queue ~node:pfn;
        t.resident.(pfn) <- false;
        t.evictions <- t.evictions + 1;
        out := pfn :: !out;
        incr count
      end
  done;
  List.rev !out

let stats t =
  [
    ("inserts", t.inserts);
    ("evictions", t.evictions);
    ("spared", t.spared);
    ("reinserts", t.reinserts);
  ]

let gauges t =
  [
    ("queue_len", float_of_int (Structures.Dlist.size t.queue 0));
    ("spared", float_of_int t.spared);
    ("evictions", float_of_int t.evictions);
  ]
